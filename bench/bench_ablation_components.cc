// Ablation (beyond the paper's figures, supporting its Sec. V-B1 claim):
// accuracy and learned effective component count as a function of the
// initial number of Gaussian components K in {1, 2, 4, 8}.
//
// Claim under test: K = 4 is the best initial setting; the learned
// effective number of components saturates at 1-2 regardless of K (K = 1
// degenerates to an adaptive L2).

#include <iostream>

#include "bench_util.h"
#include "core/gm_regularizer.h"
#include "core/merge.h"
#include "data/preprocess.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "models/logistic_regression.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;
  bench::PrintHeader(
      "Ablation: initial number of Gaussian components K",
      "LR + GM Reg on four datasets, K in {1, 2, 4, 8}, 3 subsamples each.");

  const int ks[] = {1, 2, 4, 8};
  const char* datasets[] = {"conn-sonar", "ionosphere", "horse-colic",
                            "breast-canc-pro"};
  int subsamples = ScalePick(1, 3, 5);
  int epochs = ScalePick(15, 60, 150);

  TablePrinter table({"Dataset", "K=1", "K=2", "K=4", "K=8",
                      "learned K (from K=8)"});
  CsvWriter csv(bench::CsvPath("ablation_components"),
                {"dataset", "k", "mean_accuracy", "effective_components"});
  bench::JsonSummary summary("ablation_components", "synthetic-uci");
  for (const char* name : datasets) {
    TabularData raw = MakeUciLike(name, 29);
    std::vector<std::string> row = {name};
    int learned_k_from_8 = 0;
    for (int k : ks) {
      std::vector<double> accs;
      int effective = 0;
      Rng split_rng(31);
      for (int s = 0; s < subsamples; ++s) {
        TrainTestIndices split = StratifiedSplit(raw.labels, 0.2, &split_rng);
        Preprocessor prep;
        Status st = prep.Fit(raw, split.train);
        GMREG_CHECK(st.ok());
        Dataset train = prep.Transform(raw, split.train);
        Dataset test = prep.Transform(raw, split.test);
        LogisticRegression::Options lr;
        lr.epochs = epochs;
        Rng rng(100 + static_cast<std::uint64_t>(s));
        LogisticRegression model(train.num_features(), lr, &rng);
        GmOptions gm;
        gm.num_components = k;
        gm.gamma = 0.0005;
        GmRegularizer reg("w", train.num_features(), gm);
        model.Train(train, &reg, &rng);
        accs.push_back(model.EvaluateAccuracy(test));
        effective = MergeSimilarComponents(reg.mixture(), 3.0)
                        .EffectiveComponents();
      }
      double mean = Mean(accs);
      row.push_back(StrFormat("%.3f", mean));
      csv.WriteRow({name, StrFormat("%d", k), StrFormat("%.4f", mean),
                    StrFormat("%d", effective)});
      if (k == 8) learned_k_from_8 = effective;
      summary.Add(std::string(name) + ".mean_accuracy_k" + StrFormat("%d", k),
                  mean);
    }
    summary.AddInt(std::string(name) + ".effective_k_from_8",
                   learned_k_from_8);
    row.push_back(StrFormat("%d", learned_k_from_8));
    table.AddRow(row);
    std::printf("finished %s\n", name);
    std::fflush(stdout);
  }
  std::printf("\n");
  table.Print(std::cout);
  summary.Write();
  std::printf(
      "\nClaim (paper Sec. V-B1): K = 4 found best; the mixture converges\n"
      "to 1-2 effective components regardless of the initial K.\n");
  return 0;
}
