// Checkpoint I/O cost vs. model size — the number that justifies (or
// condemns) a per-epoch TrainOptions::checkpoint_every. For each synthetic
// model size this measures serialize, durable save (temp + fsync + rename,
// with rotation), and load + verify, and reports MB/s plus the absolute
// per-checkpoint cost to weigh against an epoch's training time.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "io/checkpoint.h"
#include "util/atomic_file.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace gmreg {
namespace {

TrainingCheckpoint MakeCheckpoint(std::int64_t num_params, Rng* rng) {
  TrainingCheckpoint ckpt;
  ckpt.epoch = 12;
  ckpt.iteration = 4800;
  ckpt.learning_rate = 0.005;
  ckpt.has_rng = true;
  ckpt.rng = rng->SaveState();
  // One big weight matrix + a bias, like a wide dense layer: the tensor
  // payload dominates, which is the regime that matters for sizing.
  std::int64_t cols = 64;
  std::int64_t rows = (num_params + cols - 1) / cols;
  Tensor w({rows, cols});
  Tensor v({rows, cols});
  for (std::int64_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<float>(rng->NextGaussian(0.0, 0.1));
    v.data()[i] = static_cast<float>(rng->NextGaussian(0.0, 0.01));
  }
  ckpt.param_names = {"fc/weight"};
  ckpt.params.push_back(std::move(w));
  ckpt.velocity.push_back(std::move(v));
  ckpt.reg_states.emplace_back(
      "fc/weight",
      "gmreg-state v2 4 0.25 0.25 0.25 0.25 10 40 160 640 hyper 1.1 10 2 2 "
      "2 2 counters 100 100 50 0 0 greg 0");
  return ckpt;
}

double Mb(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace
}  // namespace gmreg

int main() {
  using namespace gmreg;
  bench::PrintHeader(
      "checkpoint I/O microbenchmark (docs/CHECKPOINTING.md)",
      "serialize / durable save / load+verify cost vs. model size");

  std::vector<std::int64_t> sizes;
  int reps;
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      sizes = {1 << 12, 1 << 14};
      reps = 3;
      break;
    case BenchScale::kFull:
      sizes = {1 << 14, 1 << 17, 1 << 20, 1 << 22};
      reps = 10;
      break;
    case BenchScale::kDefault:
    default:
      sizes = {1 << 14, 1 << 17, 1 << 20};
      reps = 5;
      break;
  }

  bench::JsonSummary summary("checkpoint_io", "synthetic-dense");
  TablePrinter table({"params", "file_MB", "serialize_ms", "save_ms",
                      "load_ms", "save_MB_s", "load_MB_s"});
  Rng rng(20260806);
  std::string path = "bench_checkpoint_io.ckpt";

  for (std::int64_t n : sizes) {
    TrainingCheckpoint ckpt = MakeCheckpoint(n, &rng);
    std::string text = SerializeCheckpoint(ckpt);

    Stopwatch watch;
    for (int r = 0; r < reps; ++r) text = SerializeCheckpoint(ckpt);
    double serialize_ms = watch.ElapsedSeconds() * 1e3 / reps;

    watch = Stopwatch();
    for (int r = 0; r < reps; ++r) {
      Status st = SaveCheckpoint(ckpt, path);
      GMREG_CHECK(st.ok()) << st.ToString();
    }
    double save_ms = watch.ElapsedSeconds() * 1e3 / reps;

    TrainingCheckpoint loaded;
    watch = Stopwatch();
    for (int r = 0; r < reps; ++r) {
      Status st = LoadCheckpoint(path, &loaded);
      GMREG_CHECK(st.ok()) << st.ToString();
    }
    double load_ms = watch.ElapsedSeconds() * 1e3 / reps;
    GMREG_CHECK_EQ(loaded.iteration, ckpt.iteration);

    double mb = Mb(text.size());
    table.AddRow({StrFormat("%lld", static_cast<long long>(n)),
                  StrFormat("%.2f", mb), StrFormat("%.3f", serialize_ms),
                  StrFormat("%.3f", save_ms), StrFormat("%.3f", load_ms),
                  StrFormat("%.1f", mb / (save_ms / 1e3)),
                  StrFormat("%.1f", mb / (load_ms / 1e3))});

    std::string tag = StrFormat("p%lld", static_cast<long long>(n));
    summary.Add(tag + ".file_mb", mb);
    summary.Add(tag + ".serialize_ms", serialize_ms);
    summary.Add(tag + ".save_ms", save_ms);
    summary.Add(tag + ".load_ms", load_ms);
  }
  table.Print(std::cout);
  std::remove(path.c_str());
  std::remove(PreviousCheckpointPath(path).c_str());
  std::remove((path + ".tmp").c_str());

  std::printf(
      "\nRule of thumb: checkpoint_every=1 is free while save_ms stays two\n"
      "orders of magnitude under the epoch time; otherwise raise it.\n");
  summary.Write();
  return 0;
}
