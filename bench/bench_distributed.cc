// Distributed data-parallel training bench (docs/DISTRIBUTED.md): hosp-fa
// scale MLP + GM regularizer, trained three ways — the vanilla single-
// process trainer, the in-process local-sharded reference, and the real
// fork()ed coordinator/worker deployment at 1/2/4/8 workers over loopback
// sockets. Reports per-epoch wall time, speedup vs the single-process
// baseline, and (the property the subsystem exists for) whether every
// distributed run matched its same-world reference bit for bit. Speedups
// are honest wall-clock measurements: on a single-core box every world
// size shares one CPU, so the interesting headline is that dist overhead
// stays small, not that it scales. Writes BENCH_distributed.json.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dist/launcher.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace gmreg;

double MeanEpochSeconds(const DistRunResult& r) {
  if (r.stats.empty()) return 0.0;
  double sum = 0.0;
  for (const EpochStats& es : r.stats) sum += es.elapsed_seconds;
  return sum / static_cast<double>(r.stats.size());
}

bool BitwiseEqual(const DistRunResult& a, const DistRunResult& b) {
  if (a.stats.size() != b.stats.size() || a.params.size() != b.params.size())
    return false;
  for (std::size_t e = 0; e < a.stats.size(); ++e) {
    if (std::memcmp(&a.stats[e].mean_loss, &b.stats[e].mean_loss,
                    sizeof(double)) != 0 ||
        std::memcmp(&a.stats[e].penalty, &b.stats[e].penalty,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  for (std::size_t p = 0; p < a.params.size(); ++p) {
    if (a.params[p].size() != b.params[p].size()) return false;
    if (std::memcmp(a.params[p].data(), b.params[p].data(),
                    static_cast<std::size_t>(a.params[p].size()) *
                        sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

int Main() {
  bench::PrintHeader(
      "distributed data-parallel training (docs/DISTRIBUTED.md)",
      "hosp-fa MLP + GM regularizer: single-process baseline vs fork()ed\n"
      "coordinator/worker training over loopback, with bitwise-equality\n"
      "checks against the same-world local-sharded reference");

  DistJobSpec spec;
  spec.dataset = "hosp-fa";
  spec.epochs = ScalePick(1, 2, 4);
  spec.batch_size = 64;
  spec.hidden = ScalePick(16, 64, 128);
  spec.run_label = "bench_distributed";

  bench::JsonSummary summary("distributed", spec.dataset);
  summary.AddInt("epochs", spec.epochs);
  summary.AddInt("hidden", spec.hidden);
  summary.AddInt("batch_size", spec.batch_size);

  DistRunResult single;
  GMREG_CHECK(RunSingleProcessJob(spec, &single).ok());
  double single_epoch = MeanEpochSeconds(single);
  summary.Add("single.epoch_seconds", single_epoch);

  TablePrinter table({"mode", "workers", "epoch s", "speedup", "bitwise"});
  table.AddRow({"single", "-", StrFormat("%.3f", single_epoch), "1.00", "-"});

  const std::vector<int> worlds =
      ScalePick<std::vector<int>>({1, 2, 4}, {1, 2, 4, 8}, {1, 2, 4, 8});
  bool all_match = true;
  for (int world : worlds) {
    // The same-world reference this dist run must reproduce exactly:
    // world 1 is the vanilla trainer, otherwise the local-sharded path.
    DistRunResult reference;
    if (world == 1) {
      reference = single;
    } else {
      GMREG_CHECK(RunLocalShardedJob(spec, world, &reference).ok());
    }
    DistRunResult dist;
    GMREG_CHECK(RunDistJob(spec, world, WorkerLaunch::kFork, &dist).ok());
    double epoch = MeanEpochSeconds(dist);
    double speedup = epoch > 0.0 ? single_epoch / epoch : 0.0;
    bool match = BitwiseEqual(dist, reference);
    all_match = all_match && match;
    std::string prefix = StrFormat("dist%d.", world);
    summary.Add(prefix + "epoch_seconds", epoch);
    summary.Add(prefix + "speedup", speedup);
    summary.AddInt(prefix + "bitwise_match", match ? 1 : 0);
    table.AddRow({"dist", std::to_string(world), StrFormat("%.3f", epoch),
                  StrFormat("%.2f", speedup), match ? "yes" : "NO"});
  }
  summary.AddInt("all_bitwise_match", all_match ? 1 : 0);

  table.Print(std::cout);
  std::printf("\nfinal mean_loss=%.17g penalty=%.17g\n",
              single.stats.back().mean_loss, single.stats.back().penalty);
  summary.Write();
  GMREG_CHECK(all_match);
  return 0;
}

}  // namespace

int main() { return Main(); }
