// Regenerates Fig. 3: the mixture probability densities the tool learns on
// the horse-colic and conn-sonar datasets, including the crossover points
// A/B where the small-variance and large-variance components exchange
// dominance.
//
// Paper's shape: two learned components per dataset; the small-variance
// one dominates near zero (strong regularization of noisy weights), the
// large-variance one beyond the A/B points; the two datasets' shapes
// differ substantially (adaptivity across datasets).

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/gm_regularizer.h"
#include "core/merge.h"
#include "data/preprocess.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/logistic_regression.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace {

using namespace gmreg;

// Trains LR + GM on one dataset with gamma selected by validation over the
// paper's grid upper half (the same selection the Table VII protocol
// performs), preferring among near-tied gammas the mixture that kept two
// effective components. Returns the merged learned mixture.
GaussianMixture LearnMixture(const std::string& name, CsvWriter* csv) {
  TabularData raw = MakeUciLike(name, 5);
  Rng rng(23);
  TrainTestIndices split = StratifiedSplit(raw.labels, 0.2, &rng);
  Preprocessor prep;
  Status st = prep.Fit(raw, split.train);
  GMREG_CHECK(st.ok()) << st.ToString();
  Dataset train = prep.Transform(raw, split.train);
  Dataset test = prep.Transform(raw, split.test);
  Rng inner(29);
  TrainTestIndices val_split = StratifiedSplit(train.labels, 0.25, &inner);
  Dataset fit = SelectRows(train, val_split.train);
  Dataset val = SelectRows(train, val_split.test);
  LogisticRegression::Options opts;
  opts.epochs = ScalePick(20, 120, 250);
  double best_score = -1.0;
  double best_gamma = 0.005;
  for (double gamma : {0.0005, 0.002, 0.005, 0.02}) {
    Rng val_rng(31);
    LogisticRegression probe(fit.num_features(), opts, &val_rng);
    GmOptions gm_opts;
    gm_opts.gamma = gamma;
    GmRegularizer reg("w", fit.num_features(), gm_opts);
    probe.Train(fit, &reg, &val_rng);
    double score =
        probe.EvaluateAccuracy(val) +
        (MergeSimilarComponents(reg.mixture(), 3.0).num_components() >= 2
             ? 0.005
             : 0.0);
    if (score > best_score) {
      best_score = score;
      best_gamma = gamma;
    }
  }
  LogisticRegression model(train.num_features(), opts, &rng);
  GmOptions gm_opts;
  gm_opts.gamma = best_gamma;
  GmRegularizer reg("w", train.num_features(), gm_opts);
  model.Train(train, &reg, &rng);
  std::printf("%s: gamma %g (validation-selected), test accuracy %.3f\n",
              name.c_str(), best_gamma, model.EvaluateAccuracy(test));
  GaussianMixture merged = MergeSimilarComponents(reg.mixture(), 3.0);
  for (double x = -2.0; x <= 2.0 + 1e-9; x += 0.02) {
    csv->WriteRow({name, StrFormat("%.3f", x),
                   StrFormat("%.6f", merged.Density(x))});
  }
  return merged;
}

// Finds the positive crossover point where the wide component overtakes the
// narrow one (point B; A is its mirror image), via responsibility = 0.5.
double CrossoverPoint(const GaussianMixture& gm) {
  if (gm.num_components() < 2) return std::nan("");
  // Identify the two dominant components: narrow has max lambda.
  std::size_t narrow = 0, wide = 0;
  for (std::size_t k = 1; k < gm.lambda().size(); ++k) {
    if (gm.lambda()[k] > gm.lambda()[narrow]) narrow = k;
    if (gm.lambda()[k] < gm.lambda()[wide]) wide = k;
  }
  double lo = 0.0, hi = 50.0;
  std::vector<double> r(gm.lambda().size());
  for (int it = 0; it < 200; ++it) {
    double mid = 0.5 * (lo + hi);
    gm.Responsibilities(mid, r.data());
    (r[narrow] > r[wide] ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

void Sketch(const GaussianMixture& gm, double xmax) {
  double peak = gm.Density(0.0);
  for (int row = 8; row >= 1; --row) {
    std::printf("  |");
    for (double x = -xmax; x <= xmax + 1e-9; x += xmax / 30.0) {
      std::printf("%c",
                  gm.Density(x) >= peak * (row - 0.5) / 8.0 ? '#' : ' ');
    }
    std::printf("\n");
  }
  std::printf("  +");
  for (int i = 0; i < 61; ++i) std::printf("-");
  std::printf("\n  %-8.2f%*c0%*c%8.2f\n", -xmax, 22, ' ', 22, ' ', xmax);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 3: learned mixture densities (horse-colic, conn-sonar)",
      "LR + GM Reg per dataset; density series written to CSV; A/B points.");

  CsvWriter csv(bench::CsvPath("fig3_learned_density"),
                {"dataset", "w", "density"});
  bench::JsonSummary summary("fig3_learned_density", "synthetic-uci");
  for (const char* name : {"horse-colic", "conn-sonar"}) {
    GaussianMixture gm = LearnMixture(name, &csv);
    double b = CrossoverPoint(gm);
    std::printf("%s learned mixture: %s\n", name, gm.ToString().c_str());
    std::printf("%s crossover points: A = %.3f, B = %.3f\n", name, -b, b);
    Sketch(gm, 4.0 / std::sqrt(*std::min_element(gm.lambda().begin(),
                                                 gm.lambda().end())));
    std::printf("\n");
    std::string prefix = name;
    summary.AddList(prefix + ".lambda", gm.lambda());
    summary.AddList(prefix + ".pi", gm.pi());
    summary.Add(prefix + ".crossover_b", b);
  }
  summary.Write();
  std::printf(
      "Paper reference (Fig. 3): horse-colic pi=[0.326,0.674],\n"
      "lambda=[1.270,31.295]; conn-sonar pi=[0.345,0.655],\n"
      "lambda=[0.062,0.607]. Expected shape: two components per dataset,\n"
      "narrow component dominant near zero, dataset-specific scales\n"
      "(horse-colic's narrow component much more precise than conn-sonar's).\n");
  return 0;
}
