// Regenerates Fig. 5: training time vs. epoch for lazy-update intervals
// Im in {1, 2, 5, 10, 20, 50} (with Ig = Im, E = 2) plus the L2 baseline,
// and the convergence-time bar chart, for both deep models.
//
// Paper's shape: time grows linearly in epochs for every setting; Im = 1
// is the slowest and Im = 50 the fastest (paper: ~4x apart on their
// GPU-conv / CPU-EM stack); accuracy does not drop with larger Im.
//
// Substrate note: here conv and EM run on the SAME single CPU core, so the
// EM share of an iteration — and hence the Im=1 : Im=50 gap — is smaller
// than the paper's. A small batch size is used so the per-iteration EM cost
// is visible at all; the orderings and linear growth are the reproduced
// shape.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "deep_bench_util.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;
  bench::PrintHeader(
      "Fig. 5: time vs epoch for update intervals Im (Ig = Im, E = 2)",
      "6 Im settings + L2 baseline, both models; cumulative seconds/epoch.");

  CifarLikePair data = bench::DeepSweepData();
  const std::int64_t ims[] = {1, 2, 5, 10, 20, 50};
  CsvWriter csv(bench::CsvPath("fig5_lazy_update"),
                {"model", "setting", "epoch", "cumulative_seconds",
                 "accuracy"});
  bench::JsonSummary summary("fig5_lazy_update", "cifar-like-sweep");
  for (int m = 0; m < 2; ++m) {
    DeepModel model = m == 0 ? DeepModel::kAlexCifar10 : DeepModel::kResNet;
    DeepExperimentOptions opts = bench::DeepOptions(model, data);
    opts.batch_size = 4;  // per-iteration EM cost must be visible (see top)
    opts.epochs = ScalePick(4, 8, 20);
    opts.gm.lazy.warmup_epochs = 2;

    TablePrinter table({"Setting", "total time (s)", "s/epoch after warmup",
                        "test accuracy"});
    std::vector<double> totals;
    auto record = [&](const std::string& label,
                      const DeepExperimentResult& r) {
      for (const EpochStats& es : r.epoch_stats) {
        csv.WriteRow({DeepModelName(model), label,
                      StrFormat("%d", es.epoch + 1),
                      StrFormat("%.3f", es.elapsed_seconds),
                      StrFormat("%.4f", r.test_accuracy)});
      }
      double tail = r.epoch_stats.back().elapsed_seconds;
      double warm = r.epoch_stats[1].elapsed_seconds;
      auto lazy_epochs = static_cast<double>(r.epoch_stats.size()) - 2.0;
      double per_epoch =
          lazy_epochs > 0.0 ? (tail - warm) / lazy_epochs : tail / 2.0;
      table.AddRow({label, StrFormat("%.2f", tail),
                    StrFormat("%.3f", per_epoch),
                    StrFormat("%.3f", r.test_accuracy)});
      totals.push_back(tail);
    };
    for (std::int64_t im : ims) {
      opts.gm.lazy.greg_interval = im;
      opts.gm.lazy.gm_interval = im;
      record(StrFormat("Im=%lld", static_cast<long long>(im)),
             RunDeepExperiment(data, opts, DeepRegKind::kGm));
    }
    record("baseline (L2)", RunDeepExperiment(data, opts, DeepRegKind::kL2));
    std::printf("-- %s --\n", DeepModelName(model));
    table.Print(std::cout);
    std::printf("speedup Im=1 -> Im=50: %.2fx (baseline/Im=50: %.2fx)\n\n",
                totals[0] / totals[5], totals[6] / totals[5]);
    std::string prefix = DeepModelName(model);
    summary.Add(prefix + ".total_seconds_im1", totals[0]);
    summary.Add(prefix + ".total_seconds_im50", totals[5]);
    summary.Add(prefix + ".total_seconds_l2", totals[6]);
    summary.Add(prefix + ".speedup_im1_to_im50", totals[0] / totals[5]);
  }
  summary.Write();
  std::printf(
      "Paper reference (Fig. 5): linear growth per setting; Im=1 slowest,\n"
      "Im=50 fastest at ~1/4 the Im=1 time, accuracy unchanged; baseline\n"
      "(L2) below Im=50. Expected here: same orderings, smaller gap (see\n"
      "substrate note in the source header).\n");
  return 0;
}
