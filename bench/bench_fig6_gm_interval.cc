// Regenerates Fig. 6: convergence time for GM-parameter update intervals
// Ig in {50, 100, 200, 500} with Im fixed at 50, for both deep models.
//
// Paper's shape: time decreases monotonically as Ig grows, because the
// M-step re-reads the whole high-dimensional parameter vector (computing
// responsibilities plus new lambda/pi) every Ig iterations. The effect is
// small even at paper scale (~4% of total time); alongside wall time we
// therefore report the actual number of M-step passes executed — the
// quantity Ig amortizes — which decreases exactly as scheduled even when
// the wall-time saving sits inside measurement noise at reduced scale.

#include <iostream>

#include "bench_util.h"
#include "deep_bench_util.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;
  bench::PrintHeader(
      "Fig. 6: convergence time for Ig & Im combinations (Im = 50)",
      "Ig in {50, 100, 200, 500}, both models.");

  CifarLikePair data = bench::DeepSweepData();
  const std::int64_t igs[] = {50, 100, 200, 500};
  CsvWriter csv(bench::CsvPath("fig6_gm_interval"),
                {"model", "ig", "im", "total_seconds", "msteps", "esteps",
                 "accuracy"});
  bench::JsonSummary summary("fig6_gm_interval", "cifar-like-sweep");
  for (int m = 0; m < 2; ++m) {
    DeepModel model = m == 0 ? DeepModel::kAlexCifar10 : DeepModel::kResNet;
    DeepExperimentOptions opts = bench::DeepOptions(model, data);
    opts.batch_size = 2;  // see bench_fig5's substrate note
    opts.epochs = ScalePick(2, 8, 20);
    opts.gm.lazy.warmup_epochs = 1;
    opts.gm.lazy.greg_interval = 50;
    TablePrinter table({"Ig & Im", "total time (s)", "M-step passes",
                        "test accuracy"});
    std::vector<double> msteps_per_ig;
    std::vector<double> seconds_per_ig;
    for (std::int64_t ig : igs) {
      opts.gm.lazy.gm_interval = ig;
      DeepExperimentResult r = RunDeepExperiment(data, opts, DeepRegKind::kGm);
      table.AddRow({StrFormat("%lld&50", static_cast<long long>(ig)),
                    StrFormat("%.2f", r.total_seconds),
                    StrFormat("%lld", static_cast<long long>(r.total_msteps)),
                    StrFormat("%.3f", r.test_accuracy)});
      csv.WriteRow({DeepModelName(model),
                    StrFormat("%lld", static_cast<long long>(ig)), "50",
                    StrFormat("%.3f", r.total_seconds),
                    StrFormat("%lld", static_cast<long long>(r.total_msteps)),
                    StrFormat("%lld", static_cast<long long>(r.total_esteps)),
                    StrFormat("%.4f", r.test_accuracy)});
      msteps_per_ig.push_back(static_cast<double>(r.total_msteps));
      seconds_per_ig.push_back(r.total_seconds);
    }
    std::printf("-- %s --\n", DeepModelName(model));
    table.Print(std::cout);
    std::printf("\n");
    std::string prefix = DeepModelName(model);
    summary.AddList(prefix + ".msteps_per_ig", msteps_per_ig);
    summary.AddList(prefix + ".total_seconds_per_ig", seconds_per_ig);
  }
  summary.Write();
  std::printf(
      "Paper reference (Fig. 6): convergence time shrinks as Ig grows\n"
      "(Alex ~990 -> ~950 s, ResNet ~5850 -> ~5600 s at their scale, ~4%%).\n"
      "Expected here: monotonically fewer M-step passes (the quantity Ig\n"
      "controls), with a wall-time saving at or below measurement noise at\n"
      "this reduced scale; accuracy flat across settings.\n");
  return 0;
}
