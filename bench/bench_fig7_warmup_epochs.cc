// Regenerates Fig. 7: training time vs. epoch and total (convergence) time
// for warm-up lengths E in {50, 20, 10, 5, 2, 1} — the number of initial
// epochs during which the lazy update is disabled (Im = Ig = 50 after).
//
// Paper's shape: curves with larger E rise faster during their eager
// phase; total time decreases roughly in proportion to E, with E = 1
// costing ~70% of E = 50, at no accuracy loss.

#include <iostream>

#include "bench_util.h"
#include "deep_bench_util.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;
  bench::PrintHeader(
      "Fig. 7: time for warm-up epoch counts E (Im = Ig = 50 afterwards)",
      "E in {50, 20, 10, 5, 2, 1} scaled to this run's epoch budget.");

  CifarLikePair data = bench::DeepSweepData();
  CsvWriter csv(bench::CsvPath("fig7_warmup_epochs"),
                {"model", "E", "epoch", "cumulative_seconds", "accuracy"});
  bench::JsonSummary summary("fig7_warmup_epochs", "cifar-like-sweep");
  for (int m = 0; m < 2; ++m) {
    DeepModel model = m == 0 ? DeepModel::kAlexCifar10 : DeepModel::kResNet;
    DeepExperimentOptions opts = bench::DeepOptions(model, data);
    opts.batch_size = 4;  // see bench_fig5's substrate note
    // The paper trains 70 epochs with E up to 50. Keep the same E:epochs
    // ratios at this scale.
    opts.epochs = ScalePick(4, 14, 70);
    const int warmups_full[] = {50, 20, 10, 5, 2, 1};
    opts.gm.lazy.greg_interval = 50;
    opts.gm.lazy.gm_interval = 50;
    TablePrinter table({"E", "total time (s)", "test accuracy"});
    double first_total = 0.0;
    double last_total = 0.0;
    int prev_e = -1;
    for (int e_full : warmups_full) {
      int e = std::max(1, e_full * opts.epochs / 70);
      // Scaling the paper's E list to a short epoch budget can collide;
      // skip duplicates except the terminal E = 1 row.
      if (e == prev_e && e_full != 1) continue;
      prev_e = e;
      opts.gm.lazy.warmup_epochs = e;
      DeepExperimentResult r = RunDeepExperiment(data, opts, DeepRegKind::kGm);
      for (const EpochStats& es : r.epoch_stats) {
        csv.WriteRow({DeepModelName(model), StrFormat("%d", e),
                      StrFormat("%d", es.epoch + 1),
                      StrFormat("%.3f", es.elapsed_seconds),
                      StrFormat("%.4f", r.test_accuracy)});
      }
      table.AddRow({StrFormat("%d (paper E=%d)", e, e_full),
                    StrFormat("%.2f", r.total_seconds),
                    StrFormat("%.3f", r.test_accuracy)});
      if (e_full == 50) first_total = r.total_seconds;
      if (e_full == 1) last_total = r.total_seconds;
    }
    std::printf("-- %s --\n", DeepModelName(model));
    table.Print(std::cout);
    std::printf("time(E=1) / time(E=max) = %.2f\n\n",
                last_total / first_total);
    std::string prefix = DeepModelName(model);
    summary.Add(prefix + ".total_seconds_emax", first_total);
    summary.Add(prefix + ".total_seconds_e1", last_total);
    summary.Add(prefix + ".time_ratio_e1_over_emax",
                last_total / first_total);
  }
  summary.Write();
  std::printf(
      "Paper reference (Fig. 7): larger E -> more eager epochs -> more\n"
      "total time; E=1 takes ~70%% of E=50's time with no accuracy drop.\n");
  return 0;
}
