// Micro-benchmarks (google-benchmark) of the kernels behind the paper's
// cost model: the E-step (responsibility + greg) and M-step passes that
// the lazy update amortizes, the baseline regularizer gradients they are
// compared against, and the GEMM that dominates the network substrate.

#include <benchmark/benchmark.h>

#include "core/em.h"
#include "core/gm_regularizer.h"
#include "reg/norms.h"
#include "tensor/random.h"
#include "tensor/tensor_ops.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

Tensor MakeWeights(std::int64_t n) {
  Rng rng(7);
  Tensor w({n});
  for (std::int64_t i = 0; i < n; ++i) {
    w[i] = static_cast<float>(rng.NextBernoulli(0.8)
                                  ? rng.NextGaussian(0.0, 0.05)
                                  : rng.NextGaussian(0.0, 0.8));
  }
  return w;
}

void BM_EStepGreg(benchmark::State& state) {
  std::int64_t n = state.range(0);
  int k = static_cast<int>(state.range(1));
  Tensor w = MakeWeights(n);
  Tensor greg({n});
  GaussianMixture gm =
      GaussianMixture::Initialize(k, GmInitMethod::kLinear, 10.0);
  for (auto _ : state) {
    EStep(gm, w.data(), n, greg.data(), nullptr);
    benchmark::DoNotOptimize(greg.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EStepGreg)
    ->Args({89440, 4})    // Alex-CIFAR-10's M (paper Sec. V-A)
    ->Args({270896, 4})   // ResNet-20's M
    ->Args({89440, 2})
    ->Args({89440, 8});

// Thread scaling of the sharded E-step (the pass the lazy update
// amortizes): same kernel, explicit thread budgets. The 1-thread row is the
// exact serial path, so speedup = row(1) / row(T) at equal M.
void BM_EStepGregThreads(benchmark::State& state) {
  std::int64_t n = state.range(0);
  int threads = static_cast<int>(state.range(1));
  Tensor w = MakeWeights(n);
  Tensor greg({n});
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  for (auto _ : state) {
    EStep(gm, w.data(), n, greg.data(), nullptr, threads);
    benchmark::DoNotOptimize(greg.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(StrFormat("threads=%d shards=%d", threads,
                           ComputeNumShards(n, kEStepGrain, threads)));
}
BENCHMARK(BM_EStepGregThreads)
    ->Args({1 << 17, 1})
    ->Args({1 << 17, 2})
    ->Args({1 << 17, 4})
    ->Args({1 << 17, 8})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

// Thread scaling of the full M-step pass (E-step with sufficient statistics
// + closed-form update), the second full pass of the paper's cost model.
void BM_MStepPassThreads(benchmark::State& state) {
  std::int64_t n = state.range(0);
  int threads = static_cast<int>(state.range(1));
  Tensor w = MakeWeights(n);
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  GmHyperParams hyper = GmHyperParams::FromRules(n, 4, 0.001, 0.01, 0.5);
  GmSuffStats stats;
  for (auto _ : state) {
    stats.Reset(4);
    EStep(gm, w.data(), n, nullptr, &stats, threads);
    MStep(stats, hyper, GmBounds{}, &gm);
    benchmark::DoNotOptimize(gm.lambda().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(StrFormat("threads=%d", threads));
}
BENCHMARK(BM_MStepPassThreads)
    ->Args({1 << 17, 1})
    ->Args({1 << 17, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

// Thread scaling of the row-sharded GEMM (uses the process-wide default
// budget, which is what the NN substrate sees).
void BM_GemmThreads(benchmark::State& state) {
  std::int64_t n = state.range(0);
  int threads = static_cast<int>(state.range(1));
  Rng rng(3);
  Tensor a({n, n}), b({n, n}), c({n, n});
  FillUniform(&rng, -1.0, 1.0, &a);
  FillUniform(&rng, -1.0, 1.0, &b);
  SetDefaultNumThreads(threads);
  for (auto _ : state) {
    Gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  SetDefaultNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(StrFormat("threads=%d", threads));
}
BENCHMARK(BM_GemmThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

void BM_MStepPass(benchmark::State& state) {
  std::int64_t n = state.range(0);
  Tensor w = MakeWeights(n);
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  GmHyperParams hyper = GmHyperParams::FromRules(n, 4, 0.001, 0.01, 0.5);
  GmSuffStats stats;
  for (auto _ : state) {
    stats.Reset(4);
    EStep(gm, w.data(), n, nullptr, &stats);
    MStep(stats, hyper, GmBounds{}, &gm);
    benchmark::DoNotOptimize(gm.lambda().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MStepPass)->Arg(89440)->Arg(270896);

void BM_GmRegularizerStep(benchmark::State& state) {
  // Full AccumulateGradient at Im = Ig = 1 (eager) vs cached-only.
  std::int64_t n = 89440;
  bool eager = state.range(0) != 0;
  Tensor w = MakeWeights(n);
  Tensor grad({n});
  GmOptions opts;
  opts.lazy.warmup_epochs = eager ? 1000000 : 0;
  opts.lazy.greg_interval = 1000000;  // off-grid -> cached when not eager
  opts.lazy.gm_interval = 1000000;
  GmRegularizer reg("w", n, opts);
  Tensor warm_grad({n});
  reg.AccumulateGradient(w, 0, 0, 1.0, &warm_grad);  // prime the cache
  std::int64_t it = 1;
  for (auto _ : state) {
    grad.SetZero();
    reg.AccumulateGradient(w, it++, 0, 1.0, &grad);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(eager ? "eager (E-step + M-step each call)"
                       : "lazy cached (Axpy only)");
}
BENCHMARK(BM_GmRegularizerStep)->Arg(1)->Arg(0);

void BM_BaselineRegularizers(benchmark::State& state) {
  std::int64_t n = 89440;
  Tensor w = MakeWeights(n);
  Tensor grad({n});
  L2Reg l2(1.0);
  L1Reg l1(1.0);
  ElasticNetReg elastic(1.0, 0.5);
  HuberReg huber(1.0, 0.1);
  Regularizer* regs[] = {&l1, &l2, &elastic, &huber};
  Regularizer* reg = regs[state.range(0)];
  for (auto _ : state) {
    grad.SetZero();
    reg->AccumulateGradient(w, 0, 0, 1.0, &grad);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(reg->Name());
}
BENCHMARK(BM_BaselineRegularizers)->DenseRange(0, 3);

void BM_Gemm(benchmark::State& state) {
  std::int64_t n = state.range(0);
  Rng rng(3);
  Tensor a({n, n}), b({n, n}), c({n, n});
  FillUniform(&rng, -1.0, 1.0, &a);
  FillUniform(&rng, -1.0, 1.0, &b);
  for (auto _ : state) {
    Gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_ResponsibilitySingle(benchmark::State& state) {
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  double r[4];
  double x = 0.123;
  for (auto _ : state) {
    gm.Responsibilities(x, r);
    benchmark::DoNotOptimize(r);
    x = -x;
  }
}
BENCHMARK(BM_ResponsibilitySingle);

}  // namespace
}  // namespace gmreg

BENCHMARK_MAIN();
