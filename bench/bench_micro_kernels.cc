// Micro-benchmarks (google-benchmark) of the kernels behind the paper's
// cost model: the E-step (responsibility + greg) and M-step passes that
// the lazy update amortizes, the baseline regularizer gradients they are
// compared against, and the GEMM that dominates the network substrate.
//
// Custom main: before the google-benchmark suite runs, a fixed GEMM sweep
// times the packed kernel against a naive scalar baseline at 1 thread and
// writes BENCH_kernels.json (GFLOP/s + speedup per shape) — the record CI
// archives on every run. Passing --benchmark_filter that matches nothing
// runs just the sweep.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>
#include <thread>

#include "bench_util.h"
#include "core/em.h"
#include "core/gm_regularizer.h"
#include "reg/norms.h"
#include "tensor/gemm_kernel.h"
#include "tensor/random.h"
#include "tensor/tensor_ops.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

Tensor MakeWeights(std::int64_t n) {
  Rng rng(7);
  Tensor w({n});
  for (std::int64_t i = 0; i < n; ++i) {
    w[i] = static_cast<float>(rng.NextBernoulli(0.8)
                                  ? rng.NextGaussian(0.0, 0.05)
                                  : rng.NextGaussian(0.0, 0.8));
  }
  return w;
}

void BM_EStepGreg(benchmark::State& state) {
  std::int64_t n = state.range(0);
  int k = static_cast<int>(state.range(1));
  Tensor w = MakeWeights(n);
  Tensor greg({n});
  GaussianMixture gm =
      GaussianMixture::Initialize(k, GmInitMethod::kLinear, 10.0);
  for (auto _ : state) {
    EStep(gm, w.data(), n, greg.data(), nullptr);
    benchmark::DoNotOptimize(greg.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EStepGreg)
    ->Args({89440, 4})    // Alex-CIFAR-10's M (paper Sec. V-A)
    ->Args({270896, 4})   // ResNet-20's M
    ->Args({89440, 2})
    ->Args({89440, 8});

// Thread scaling of the sharded E-step (the pass the lazy update
// amortizes): same kernel, explicit thread budgets. The 1-thread row is the
// exact serial path, so speedup = row(1) / row(T) at equal M.
void BM_EStepGregThreads(benchmark::State& state) {
  std::int64_t n = state.range(0);
  int threads = static_cast<int>(state.range(1));
  Tensor w = MakeWeights(n);
  Tensor greg({n});
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  for (auto _ : state) {
    EStep(gm, w.data(), n, greg.data(), nullptr, threads);
    benchmark::DoNotOptimize(greg.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(StrFormat("threads=%d shards=%d", threads,
                           ComputeNumShards(n, kEStepGrain, threads)));
}
BENCHMARK(BM_EStepGregThreads)
    ->Args({1 << 17, 1})
    ->Args({1 << 17, 2})
    ->Args({1 << 17, 4})
    ->Args({1 << 17, 8})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

// Thread scaling of the full M-step pass (E-step with sufficient statistics
// + closed-form update), the second full pass of the paper's cost model.
void BM_MStepPassThreads(benchmark::State& state) {
  std::int64_t n = state.range(0);
  int threads = static_cast<int>(state.range(1));
  Tensor w = MakeWeights(n);
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  GmHyperParams hyper = GmHyperParams::FromRules(n, 4, 0.001, 0.01, 0.5);
  GmSuffStats stats;
  for (auto _ : state) {
    stats.Reset(4);
    EStep(gm, w.data(), n, nullptr, &stats, threads);
    MStep(stats, hyper, GmBounds{}, &gm);
    benchmark::DoNotOptimize(gm.lambda().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(StrFormat("threads=%d", threads));
}
BENCHMARK(BM_MStepPassThreads)
    ->Args({1 << 17, 1})
    ->Args({1 << 17, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

// Thread scaling of the row-sharded GEMM (uses the process-wide default
// budget, which is what the NN substrate sees).
void BM_GemmThreads(benchmark::State& state) {
  std::int64_t n = state.range(0);
  int threads = static_cast<int>(state.range(1));
  Rng rng(3);
  Tensor a({n, n}), b({n, n}), c({n, n});
  FillUniform(&rng, -1.0, 1.0, &a);
  FillUniform(&rng, -1.0, 1.0, &b);
  SetDefaultNumThreads(threads);
  for (auto _ : state) {
    Gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  SetDefaultNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(StrFormat("threads=%d", threads));
}
BENCHMARK(BM_GemmThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

void BM_MStepPass(benchmark::State& state) {
  std::int64_t n = state.range(0);
  Tensor w = MakeWeights(n);
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  GmHyperParams hyper = GmHyperParams::FromRules(n, 4, 0.001, 0.01, 0.5);
  GmSuffStats stats;
  for (auto _ : state) {
    stats.Reset(4);
    EStep(gm, w.data(), n, nullptr, &stats);
    MStep(stats, hyper, GmBounds{}, &gm);
    benchmark::DoNotOptimize(gm.lambda().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MStepPass)->Arg(89440)->Arg(270896);

void BM_GmRegularizerStep(benchmark::State& state) {
  // Full AccumulateGradient at Im = Ig = 1 (eager) vs cached-only.
  std::int64_t n = 89440;
  bool eager = state.range(0) != 0;
  Tensor w = MakeWeights(n);
  Tensor grad({n});
  GmOptions opts;
  opts.lazy.warmup_epochs = eager ? 1000000 : 0;
  opts.lazy.greg_interval = 1000000;  // off-grid -> cached when not eager
  opts.lazy.gm_interval = 1000000;
  GmRegularizer reg("w", n, opts);
  Tensor warm_grad({n});
  reg.AccumulateGradient(w, 0, 0, 1.0, &warm_grad);  // prime the cache
  std::int64_t it = 1;
  for (auto _ : state) {
    grad.SetZero();
    reg.AccumulateGradient(w, it++, 0, 1.0, &grad);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(eager ? "eager (E-step + M-step each call)"
                       : "lazy cached (Axpy only)");
}
BENCHMARK(BM_GmRegularizerStep)->Arg(1)->Arg(0);

void BM_BaselineRegularizers(benchmark::State& state) {
  std::int64_t n = 89440;
  Tensor w = MakeWeights(n);
  Tensor grad({n});
  L2Reg l2(1.0);
  L1Reg l1(1.0);
  ElasticNetReg elastic(1.0, 0.5);
  HuberReg huber(1.0, 0.1);
  Regularizer* regs[] = {&l1, &l2, &elastic, &huber};
  Regularizer* reg = regs[state.range(0)];
  for (auto _ : state) {
    grad.SetZero();
    reg->AccumulateGradient(w, 0, 0, 1.0, &grad);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(reg->Name());
}
BENCHMARK(BM_BaselineRegularizers)->DenseRange(0, 3);

void BM_Gemm(benchmark::State& state) {
  std::int64_t n = state.range(0);
  Rng rng(3);
  Tensor a({n, n}), b({n, n}), c({n, n});
  FillUniform(&rng, -1.0, 1.0, &a);
  FillUniform(&rng, -1.0, 1.0, &b);
  for (auto _ : state) {
    Gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_ResponsibilitySingle(benchmark::State& state) {
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  double r[4];
  double x = 0.123;
  for (auto _ : state) {
    gm.Responsibilities(x, r);
    benchmark::DoNotOptimize(r);
    x = -x;
  }
}
BENCHMARK(BM_ResponsibilitySingle);

// ---------------------------------------------------------------------------
// BENCH_kernels.json sweep: packed GEMM vs the naive scalar baseline.
// ---------------------------------------------------------------------------

// The pre-kernel scalar GEMM (the seed implementation, minus its
// NaN-swallowing zero-skip): the baseline the speedup column is against.
void BaselineGemm(std::int64_t m, std::int64_t n, std::int64_t k,
                  const float* a, const float* b, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) c_row[j] = 0.0f;
    for (std::int64_t p = 0; p < k; ++p) {
      float a_ip = a[i * k + p];
      const float* b_row = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
    }
  }
}

// Wall-time per call: one warmup, then repeat until `min_seconds` elapses.
double TimePerCall(const std::function<void()>& fn, double min_seconds) {
  fn();
  Stopwatch watch;
  std::int64_t iters = 0;
  do {
    fn();
    ++iters;
  } while (watch.ElapsedSeconds() < min_seconds);
  return watch.ElapsedSeconds() / static_cast<double>(iters);
}

// Times the packed Gemm and the baseline on the standard shapes at a
// 1-thread budget and writes BENCH_kernels.json.
void RunKernelSweep() {
  SetDefaultNumThreads(1);
  bench::JsonSummary summary("kernels", "synthetic-gemm-sweep");
  summary.AddText("kernel", GetKernelOps().name);
  summary.AddInt("simd", SimdKernelsEnabled() ? 1 : 0);
  double min_seconds = GetBenchScale() == BenchScale::kSmoke ? 0.05 : 0.25;
  struct Shape {
    const char* key;  // JSON key prefix
    std::int64_t m, n, k;
  };
  // The BM_Gemm squares plus a conv-layer shape (Cout=32, 32x32 output,
  // 3x3x32 patch — the per-sample forward GEMM of the Alex-CIFAR-10 model).
  const Shape shapes[] = {
      {"gemm_64", 64, 64, 64},
      {"gemm_128", 128, 128, 128},
      {"gemm_256", 256, 256, 256},
      {"gemm_512", 512, 512, 512},
      {"conv_32x1024x288", 32, 1024, 288},
  };
  std::printf("GEMM kernel sweep (1 thread, kernel=%s)\n",
              GetKernelOps().name);
  std::printf("%-20s %12s %12s %9s\n", "shape", "base GF/s", "packed GF/s",
              "speedup");
  for (const Shape& s : shapes) {
    Rng rng(3);
    Tensor a({s.m, s.k}), b({s.k, s.n}), c({s.m, s.n});
    FillUniform(&rng, -1.0, 1.0, &a);
    FillUniform(&rng, -1.0, 1.0, &b);
    double flops = 2.0 * static_cast<double>(s.m) *
                   static_cast<double>(s.n) * static_cast<double>(s.k);
    double base_s = TimePerCall(
        [&] { BaselineGemm(s.m, s.n, s.k, a.data(), b.data(), c.data()); },
        min_seconds);
    double packed_s = TimePerCall(
        [&] {
          Gemm(false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(),
               s.n, 0.0f, c.data(), s.n);
        },
        min_seconds);
    double base_gflops = flops / base_s / 1e9;
    double packed_gflops = flops / packed_s / 1e9;
    std::printf("%-20s %12.2f %12.2f %8.2fx\n", s.key, base_gflops,
                packed_gflops, packed_gflops / base_gflops);
    std::string key(s.key);
    summary.Add(key + ".baseline_gflops", base_gflops);
    summary.Add(key + ".gflops", packed_gflops);
    summary.Add(key + ".speedup", packed_gflops / base_gflops);
  }
  std::printf("\n");

  // Thread-scaling sweep of the 2D work-queue GEMM: budgets 1/2/4/8 per
  // shape, speedup vs the same packed kernel at budget 1. The mtN.speedup
  // rows are scheduling-dependent (a 1-core CI runner legitimately reports
  // ~1.0x, as BENCH_distributed.json documents for the allreduce rows), so
  // tools/bench_compare.py treats them as informational; the mtN.gflops
  // rows gate like every other throughput metric.
  summary.AddInt("hardware_concurrency",
                 static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  const int kBudgets[] = {1, 2, 4, 8};
  std::printf("GEMM thread scaling (2D work queue, kernel=%s)\n",
              GetKernelOps().name);
  std::printf("%-20s %9s %12s %9s\n", "shape", "threads", "GF/s", "speedup");
  for (const Shape& s : shapes) {
    Rng rng(3);
    Tensor a({s.m, s.k}), b({s.k, s.n}), c({s.m, s.n});
    FillUniform(&rng, -1.0, 1.0, &a);
    FillUniform(&rng, -1.0, 1.0, &b);
    double flops = 2.0 * static_cast<double>(s.m) *
                   static_cast<double>(s.n) * static_cast<double>(s.k);
    double mt1_gflops = 0.0;
    for (int budget : kBudgets) {
      SetDefaultNumThreads(budget);
      double secs = TimePerCall(
          [&] {
            Gemm(false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(),
                 s.n, 0.0f, c.data(), s.n);
          },
          min_seconds);
      double gflops = flops / secs / 1e9;
      if (budget == 1) mt1_gflops = gflops;
      double speedup = mt1_gflops > 0.0 ? gflops / mt1_gflops : 0.0;
      std::printf("%-20s %9d %12.2f %8.2fx\n", s.key, budget, gflops,
                  speedup);
      std::string key = StrFormat("%s.mt%d", s.key, budget);
      summary.Add(key + ".gflops", gflops);
      summary.Add(key + ".speedup", speedup);
    }
  }
  std::printf("\n");
  summary.Write();
  SetDefaultNumThreads(0);
}

}  // namespace
}  // namespace gmreg

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  gmreg::RunKernelSweep();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
