// Cross-prior comparison grid: one canonical configuration of every
// adaptive prior (GM, EP-GIG Laplace, EP-GIG Student, dynamic prior) plus
// an L2 baseline, trained on a slate of small tabular datasets. Where the
// Table-7 driver tunes each method's grid per dataset, this driver holds
// each prior at its canonical factory config — the apples-to-apples sweep
// behind docs/REGULARIZERS.md's family comparison. Emits
// BENCH_regularizer_grid.json with the full accuracy grid.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "eval/method_grid.h"
#include "eval/small_data_experiment.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace gmreg;

struct PriorCell {
  std::string key;     // short JSON/CSV key, e.g. "epgig_laplace"
  std::string config;  // factory config string
};

// The prior axis: canonical factory configs, kind-level (the Table-7
// driver owns per-dataset tuning). Every entry must parse — the factory
// negative tests keep the grammar honest.
std::vector<PriorCell> PriorSlate() {
  return {
      {"l2", "l2:beta=1"},
      {"gm", "gm:gamma=0.005,k=3"},
      {"epgig_laplace", "epgig:mode=laplace,alpha=1"},
      {"epgig_student", "epgig:mode=student,nu=4,tau=1"},
      {"dynprior", "dynprior:beta=1,schedule=exp,decay=0.9"},
  };
}

// Each prior becomes a single-candidate "method", so the small-data
// protocol runs it as-is with no model selection.
std::vector<RegMethod> MethodsFromSlate(const std::vector<PriorCell>& slate) {
  std::vector<RegMethod> methods;
  for (const PriorCell& cell : slate) {
    RegMethod m{cell.key, {}};
    std::string config = cell.config;
    m.grid.push_back({config, [config](std::int64_t num_dims, double) {
                        std::unique_ptr<Regularizer> reg;
                        Status st =
                            MakeRegularizerFromConfig(config, num_dims, &reg);
                        GMREG_CHECK(st.ok());
                        return reg;
                      }});
    methods.push_back(std::move(m));
  }
  return methods;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Cross-prior regularizer grid (docs/REGULARIZERS.md)",
      "Canonical config of each prior x small tabular datasets, LR.");

  std::vector<PriorCell> slate = PriorSlate();
  std::vector<RegMethod> methods = MethodsFromSlate(slate);

  // Even the smoke slate keeps >= 2 datasets and the full prior axis: the
  // point of this driver is the cross-prior grid, so neither axis may
  // collapse to a single line.
  std::vector<std::string> dataset_names = {"Hosp-FA"};
  int extra = ScalePick(1, 2, 5);
  const std::vector<std::string>& uci = UciDatasetNames();
  for (int i = 0; i < extra && i < static_cast<int>(uci.size()); ++i) {
    dataset_names.push_back(uci[static_cast<std::size_t>(i)]);
  }

  SmallDataOptions opts;
  opts.num_subsamples = ScalePick(1, 3, 5);
  opts.cv_folds = 2;  // single-candidate grids: CV is a no-op pass
  opts.lr.epochs = ScalePick(8, 40, 120);
  opts.seed = 20180416;

  std::vector<std::string> headers = {"Dataset"};
  for (const PriorCell& cell : slate) headers.push_back(cell.key);
  TablePrinter table(headers);
  CsvWriter csv(bench::CsvPath("regularizer_grid"),
                {"dataset", "prior", "config", "mean_accuracy", "stderr"});

  bench::JsonSummary summary("regularizer_grid", "synthetic-uci+hosp-fa");
  summary.AddInt("priors", static_cast<std::int64_t>(slate.size()));
  summary.AddInt("datasets", static_cast<std::int64_t>(dataset_names.size()));
  for (const PriorCell& cell : slate) {
    summary.AddText("config." + cell.key, cell.config);
  }

  for (const std::string& name : dataset_names) {
    TabularData raw =
        name == "Hosp-FA" ? MakeHospFaLike(17) : MakeUciLike(name, 17);
    std::vector<MethodResult> results =
        RunSmallDataComparison(raw, methods, opts);
    std::vector<std::string> row = {name};
    for (std::size_t i = 0; i < results.size(); ++i) {
      const MethodResult& r = results[i];
      row.push_back(FormatMeanErr(r.mean_accuracy, r.stderr_accuracy));
      csv.WriteRow({name, r.method, slate[i].config,
                    StrFormat("%.4f", r.mean_accuracy),
                    StrFormat("%.4f", r.stderr_accuracy)});
      summary.Add("acc." + name + "." + r.method, r.mean_accuracy);
    }
    table.AddRow(row);
    std::printf("finished %s\n", name.c_str());
    std::fflush(stdout);
  }

  std::printf("\n");
  table.Print(std::cout);
  summary.Write();
  std::printf(
      "\n%zu priors x %zu datasets; every cell is the canonical factory "
      "config,\nno per-dataset tuning (see bench_table7 for tuned grids).\n",
      slate.size(), dataset_names.size());
  return 0;
}
