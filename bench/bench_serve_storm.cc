// Open-loop serving storm — the latency/throughput knee of the HTTP front
// door (docs/LOAD_TESTING.md). Paced client threads offer a fixed QPS to
// the real epoll server over loopback sockets, sweeping the offered rate
// past saturation, in two transport modes:
//
//   keepalive  one persistent connection per client (the event loop's
//              intended operating point)
//   close      a fresh connection per request (the old thread-per-
//              connection behavior: every response was Connection: close)
//
// Latency is measured from each request's *scheduled* send time, not the
// actual one, so queueing delay from falling behind the pace is charged to
// the server (coordinated-omission correction). A mode's ladder stops one
// level after achieved throughput drops below 70% of offered — that level
// is past the knee. Results go to BENCH_serve_storm.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "io/checkpoint.h"
#include "serve/server.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace gmreg;

struct LevelResult {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;  ///< completed 200s per second of wall time
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::int64_t ok = 0;
  std::int64_t shed = 0;    ///< 429 responses (with Retry-After)
  std::int64_t errors = 0;  ///< transport failures / unexpected statuses
};

double Percentile(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0.0;
  auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples->size() - 1));
  std::nth_element(samples->begin(),
                   samples->begin() + static_cast<std::ptrdiff_t>(idx),
                   samples->end());
  return (*samples)[idx];
}

/// One paced load level: `clients` threads each offer qps/clients for
/// `seconds`, measuring from scheduled send times.
LevelResult RunLevel(int port, bool keepalive, double offered_qps,
                     int clients, double seconds,
                     const std::string& predict_body) {
  using clock = std::chrono::steady_clock;
  LevelResult result;
  result.offered_qps = offered_qps;
  std::vector<std::vector<double>> latency_ms(
      static_cast<std::size_t>(clients));
  std::vector<std::int64_t> ok(static_cast<std::size_t>(clients), 0);
  std::vector<std::int64_t> shed(static_cast<std::size_t>(clients), 0);
  std::vector<std::int64_t> errors(static_cast<std::size_t>(clients), 0);

  auto bench_start = clock::now();
  auto bench_end =
      bench_start + std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double>(seconds));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      double per_client = offered_qps / static_cast<double>(clients);
      auto interval = std::chrono::duration_cast<clock::duration>(
          std::chrono::duration<double>(1.0 / per_client));
      HttpClient client(port);
      std::size_t ci = static_cast<std::size_t>(c);
      // Stagger the start so the client threads do not fire in phase.
      auto next = bench_start + interval * c / clients;
      while (next < bench_end) {
        std::this_thread::sleep_until(next);
        int status = 0;
        std::string body;
        Status st;
        if (keepalive) {
          st = client.Request("POST", "/v1/predict", predict_body, &status,
                              &body);
        } else {
          st = HttpRequest(port, "POST", "/v1/predict", predict_body,
                           &status, &body);
        }
        double ms = std::chrono::duration_cast<
                        std::chrono::duration<double, std::milli>>(
                        clock::now() - next)
                        .count();
        if (st.ok() && status == 200) {
          ok[ci] += 1;
          latency_ms[ci].push_back(ms);
        } else if (st.ok() && status == 429) {
          shed[ci] += 1;
        } else {
          errors[ci] += 1;
          client.Close();  // reconnect after a transport error
        }
        next += interval;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double elapsed = std::chrono::duration_cast<std::chrono::duration<double>>(
                       clock::now() - bench_start)
                       .count();

  std::vector<double> merged;
  for (std::size_t c = 0; c < latency_ms.size(); ++c) {
    merged.insert(merged.end(), latency_ms[c].begin(), latency_ms[c].end());
    result.ok += ok[c];
    result.shed += shed[c];
    result.errors += errors[c];
  }
  result.achieved_qps = static_cast<double>(result.ok) / elapsed;
  result.p50_ms = Percentile(&merged, 0.50);
  result.p95_ms = Percentile(&merged, 0.95);
  result.p99_ms = Percentile(&merged, 0.99);
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Serving storm: offered-QPS sweep to the latency/throughput knee",
      "Open-loop paced clients vs the epoll HTTP server, keep-alive vs "
      "close-per-request.");

  // A deliberately small model (mlp:16:32:4) so the connection/transport
  // cost — the thing this bench isolates — dominates the forward pass.
  ModelSpec spec;
  GMREG_CHECK(ParseModelSpec("mlp:16:32:4", &spec).ok());
  std::unique_ptr<Layer> net = spec.factory();
  std::vector<ParamRef> params;
  net->CollectParams(&params);
  TrainingCheckpoint ckpt;
  ckpt.epoch = 1;
  ckpt.learning_rate = 0.01;
  for (const ParamRef& p : params) {
    ckpt.param_names.push_back(p.name);
    ckpt.params.push_back(*p.value);
    ckpt.velocity.push_back(Tensor(p.value->shape()));
  }
  const std::string path = "bench_serve_storm.gmckpt";
  GMREG_CHECK(SaveCheckpoint(ckpt, path).ok());
  ModelRegistry registry(path);
  GMREG_CHECK(registry.Reload().ok());

  ServerOptions options;
  options.port = 0;
  options.batcher.max_batch_size = 16;
  // No artificial batch-fill delay: with it, the ~1ms latency floor it
  // imposes — not the transport — would set the knee for both modes.
  options.batcher.max_delay_ms = 0;
  options.batcher.num_workers = 2;
  options.batcher.max_queue_depth = 256;
  options.num_handler_threads = 8;
  Server server(&registry, spec, options);
  GMREG_CHECK(server.Start().ok());

  std::string predict_body;
  {
    Rng rng(7);
    JsonWriter w;
    w.BeginObject().Key("input").BeginArray();
    for (int j = 0; j < 16; ++j) w.Double(rng.NextGaussian());
    w.EndArray().EndObject();
    predict_body = w.str();
  }

  const int kClients = 16;
  const double seconds_per_level = ScalePick(0.3, 1.0, 2.5);
  const std::vector<double> ladder = {500,  1000,  2000,  4000, 8000,
                                      16000, 32000, 64000, 128000};

  TablePrinter table({"mode", "offered qps", "achieved qps", "p50 ms",
                      "p95 ms", "p99 ms", "shed", "errors"});
  bench::JsonSummary summary("serve_storm", "mlp-16-32-4-loopback");
  summary.AddInt("clients", kClients);
  summary.Add("seconds_per_level", seconds_per_level);

  double knee_qps[2] = {0.0, 0.0};  // [close, keepalive]
  for (bool keepalive : {false, true}) {
    const char* mode = keepalive ? "keepalive" : "close";
    std::vector<double> offered, achieved, p50, p95, p99, shed_counts;
    for (double qps : ladder) {
      LevelResult r = RunLevel(server.port(), keepalive, qps, kClients,
                               seconds_per_level, predict_body);
      table.AddRow({mode, StrFormat("%.0f", r.offered_qps),
                    StrFormat("%.0f", r.achieved_qps),
                    StrFormat("%.2f", r.p50_ms), StrFormat("%.2f", r.p95_ms),
                    StrFormat("%.2f", r.p99_ms), std::to_string(r.shed),
                    std::to_string(r.errors)});
      offered.push_back(r.offered_qps);
      achieved.push_back(r.achieved_qps);
      p50.push_back(r.p50_ms);
      p95.push_back(r.p95_ms);
      p99.push_back(r.p99_ms);
      shed_counts.push_back(static_cast<double>(r.shed));
      knee_qps[keepalive ? 1 : 0] =
          std::max(knee_qps[keepalive ? 1 : 0], r.achieved_qps);
      // One level past the knee is enough: the ladder has shown both the
      // linear region and the plateau.
      if (r.achieved_qps < 0.7 * r.offered_qps) break;
    }
    std::string prefix = std::string(mode) + ".";
    summary.AddList(prefix + "offered_qps", offered);
    summary.AddList(prefix + "achieved_qps", achieved);
    summary.AddList(prefix + "p50_ms", p50);
    summary.AddList(prefix + "p95_ms", p95);
    summary.AddList(prefix + "p99_ms", p99);
    summary.AddList(prefix + "shed", shed_counts);
  }
  table.Print(std::cout);

  double speedup = knee_qps[0] > 0.0 ? knee_qps[1] / knee_qps[0] : 0.0;
  std::printf("\nknee: close-per-request %.0f qps, keep-alive %.0f qps "
              "(%.2fx)\n",
              knee_qps[0], knee_qps[1], speedup);
  summary.Add("knee.close_qps", knee_qps[0]);
  summary.Add("knee.keepalive_qps", knee_qps[1]);
  summary.Add("knee.keepalive_speedup", speedup);
  summary.Write();

  server.Stop();
  std::remove(path.c_str());
  std::remove(PreviousCheckpointPath(path).c_str());
  return 0;
}
