// Serving throughput vs. micro-batch size — the number that justifies the
// batcher's existence. Concurrent client threads hammer one Batcher with
// single-example requests while the handler runs a real MLP forward; the
// sweep shows how coalescing requests into larger model calls trades a
// bounded queueing delay (BatcherOptions::max_delay_ms) for throughput.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "io/checkpoint.h"
#include "serve/batcher.h"
#include "serve/inference_session.h"
#include "serve/model_registry.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;
  bench::PrintHeader(
      "Serving throughput vs. micro-batch size",
      "8 client threads, single-example requests, MLP 64->128->8 forward.");

  // A trained-shaped checkpoint: the spec's factory gives us the network,
  // and its randomly initialized weights are as expensive to run as real
  // ones.
  ModelSpec spec;
  GMREG_CHECK(ParseModelSpec("mlp:64:128:8", &spec).ok());
  std::unique_ptr<Layer> net = spec.factory();
  std::vector<ParamRef> params;
  net->CollectParams(&params);
  TrainingCheckpoint ckpt;
  ckpt.epoch = 1;
  ckpt.learning_rate = 0.01;
  for (const ParamRef& p : params) {
    ckpt.param_names.push_back(p.name);
    ckpt.params.push_back(*p.value);
    ckpt.velocity.push_back(Tensor(p.value->shape()));
  }
  const std::string path = "bench_serve_throughput.gmckpt";
  GMREG_CHECK(SaveCheckpoint(ckpt, path).ok());
  ModelRegistry registry(path);
  GMREG_CHECK(registry.Reload().ok());

  const int kClients = 8;
  const int requests_per_client = ScalePick(200, 2000, 10000);
  const int batch_sizes[] = {1, 4, 16, 64};

  TablePrinter table({"max_batch", "workers", "requests/s", "mean batch",
                      "p50 ms", "p95 ms", "p99 ms"});
  bench::JsonSummary summary("serve_throughput", "mlp-64-128-8");
  summary.AddInt("clients", kClients);
  summary.AddInt("requests_per_client", requests_per_client);
  for (int workers : {1, 2}) {
    for (int max_batch : batch_sizes) {
      std::vector<std::unique_ptr<InferenceSession>> sessions;
      for (int w = 0; w < workers; ++w) {
        sessions.push_back(
            std::make_unique<InferenceSession>(&registry, spec.factory));
      }
      BatcherOptions options;
      options.max_batch_size = max_batch;
      options.max_delay_ms = 1;
      options.num_workers = workers;
      Batcher batcher(options, [&sessions](int worker, const Tensor& in,
                                           Tensor* out, BatchInfo* info) {
        InferenceSession& session =
            *sessions[static_cast<std::size_t>(worker)];
        Status st = session.Predict(in, out);
        info->model_version = session.bound_version();
        return st;
      });
      batcher.Start();

      std::int64_t batches_before = static_cast<std::int64_t>(
          MetricsRegistry::Global().counter("gm.serve.batches")->value());
      // Per-request latency as the client sees it (enqueue to reply),
      // including the batcher's queueing delay. One sample vector per
      // client, merged after the join.
      std::vector<std::vector<double>> client_latency_ms(
          static_cast<std::size_t>(kClients));
      Stopwatch watch;
      std::vector<std::thread> clients;
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          Rng rng(static_cast<std::uint64_t>(100 + c));
          Tensor example({64});
          for (std::int64_t i = 0; i < example.size(); ++i) {
            example[i] = static_cast<float>(rng.NextGaussian());
          }
          std::vector<double>& latency =
              client_latency_ms[static_cast<std::size_t>(c)];
          latency.reserve(static_cast<std::size_t>(requests_per_client));
          Batcher::Reply reply;
          Stopwatch request_watch;
          for (int r = 0; r < requests_per_client; ++r) {
            request_watch.Reset();
            GMREG_CHECK(batcher.Predict(example, &reply).ok());
            latency.push_back(request_watch.ElapsedMillis());
          }
        });
      }
      for (std::thread& t : clients) t.join();
      double elapsed = watch.ElapsedSeconds();
      batcher.Shutdown();

      // Exact percentiles over the merged samples (nth_element, not a
      // histogram — the sample count is small enough to keep them all).
      std::vector<double> latency_ms;
      for (const std::vector<double>& l : client_latency_ms) {
        latency_ms.insert(latency_ms.end(), l.begin(), l.end());
      }
      auto percentile = [&latency_ms](double q) {
        auto idx = static_cast<std::size_t>(
            q * static_cast<double>(latency_ms.size() - 1));
        std::nth_element(latency_ms.begin(),
                         latency_ms.begin() + static_cast<std::ptrdiff_t>(idx),
                         latency_ms.end());
        return latency_ms[idx];
      };
      double p50_ms = percentile(0.50);
      double p95_ms = percentile(0.95);
      double p99_ms = percentile(0.99);

      double total = static_cast<double>(kClients) * requests_per_client;
      double rps = total / elapsed;
      std::int64_t batches = static_cast<std::int64_t>(
          MetricsRegistry::Global().counter("gm.serve.batches")->value()) -
          batches_before;
      double mean_batch = batches > 0 ? total / static_cast<double>(batches)
                                      : 0.0;
      table.AddRow({std::to_string(max_batch), std::to_string(workers),
                    StrFormat("%.0f", rps), StrFormat("%.1f", mean_batch),
                    StrFormat("%.3f", p50_ms), StrFormat("%.3f", p95_ms),
                    StrFormat("%.3f", p99_ms)});
      summary.Add(StrFormat("rps.w%d.b%d", workers, max_batch), rps);
      summary.Add(StrFormat("p50_ms.w%d.b%d", workers, max_batch), p50_ms);
      summary.Add(StrFormat("p95_ms.w%d.b%d", workers, max_batch), p95_ms);
      summary.Add(StrFormat("p99_ms.w%d.b%d", workers, max_batch), p99_ms);
    }
  }
  table.Print(std::cout);

  MetricsRecord snapshot = MetricsRegistry::Global().Snapshot("bench_serve");
  std::printf("\ncumulative latency/batch histograms:\n%s\n",
              RecordToJson(snapshot).c_str());
  summary.Write();
  std::remove(path.c_str());
  std::remove(PreviousCheckpointPath(path).c_str());
  return 0;
}
