// Regenerates Table II: characteristics of the 11 UCI benchmark datasets
// (here: their synthetic stand-ins) — sample counts, post-one-hot feature
// counts and feature types, plus the Hosp-FA dataset of Sec. V-A.

#include <iostream>

#include "bench_util.h"
#include "core/factory.h"
#include "data/synthetic.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;
  bench::PrintHeader(
      "Table II: UCI dataset characteristics",
      "Paper: 11 binary UCI datasets, first-11 alphabetical; features\n"
      "counted after one-hot encoding. Generators must match exactly.");

  TablePrinter table({"Dataset", "# Samples", "# Features", "Feature Type",
                      "# Class-1 / # Class-0"});
  CsvWriter csv(bench::CsvPath("table2_datasets"),
                {"dataset", "samples", "features", "type", "pos", "neg"});
  bench::JsonSummary summary("table2_datasets", "synthetic-uci+hosp-fa");
  int num_datasets = 0;
  std::int64_t total_samples = 0;
  auto add = [&](const TabularData& data) {
    ++num_datasets;
    total_samples += data.num_samples();
    int pos = 0;
    for (int y : data.labels) pos += y;
    int neg = static_cast<int>(data.labels.size()) - pos;
    table.AddRow({data.name, StrFormat("%lld", (long long)data.num_samples()),
                  StrFormat("%lld", (long long)data.EncodedWidth()),
                  data.FeatureTypeString(),
                  StrFormat("%d / %d", pos, neg)});
    csv.WriteRow({data.name, StrFormat("%lld", (long long)data.num_samples()),
                  StrFormat("%lld", (long long)data.EncodedWidth()),
                  data.FeatureTypeString(), StrFormat("%d", pos),
                  StrFormat("%d", neg)});
  };
  for (const std::string& name : UciDatasetNames()) {
    add(MakeUciLike(name, /*seed=*/1));
  }
  add(MakeHospFaLike(/*seed=*/1));
  summary.AddInt("datasets", num_datasets);
  summary.AddInt("total_samples", total_samples);
  // Stamp the regularizer kinds registered at build time, so a historical
  // series of these summaries records when the prior family grew.
  std::string kinds;
  for (const std::string& kind : RegularizerKinds()) {
    if (!kinds.empty()) kinds += ",";
    kinds += kind;
  }
  summary.AddText("regularizer_kinds", kinds);
  summary.Write();
  table.Print(std::cout);
  std::printf(
      "\nPaper reference (Table II): breast-canc 699x81 categorical,\n"
      "breast-canc-dia 569x30 continuous, breast-canc-pro 198x33 continuous,\n"
      "climate-model 540x18 continuous, congress-voting 435x32 categorical,\n"
      "conn-sonar 208x60 continuous, credit-approval 690x42 combined,\n"
      "cylindar-bands 541x93 combined, hepatitis 155x34 combined,\n"
      "horse-colic 368x58 combined, ionosphere 351x33 combined;\n"
      "Hosp-FA 1755x375 (Sec. V-A).\n");
  return 0;
}
