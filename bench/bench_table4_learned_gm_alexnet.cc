// Regenerates Table IV: the per-layer Gaussian Mixtures the tool learns on
// Alex-CIFAR-10, next to the expert-tuned L2 baseline it replaces.
//
// Paper's shape: every layer ends with (mostly) two effective components —
// a dominant small-variance one (noisy weights) and a small-pi
// large-variance one (informative weights) — with NO per-layer manual
// tuning, versus the expert's hand-set lambda per layer.

#include <iostream>

#include "bench_util.h"
#include "deep_bench_util.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;
  bench::PrintHeader(
      "Table IV: learned GM regularization per layer, Alex-CIFAR-10",
      "One GmRegularizer per weight layer, identical hyper-parameter rules.");

  CifarLikePair data = bench::DeepData();
  DeepExperimentOptions opts = bench::DeepOptions(DeepModel::kAlexCifar10, data);
  DeepExperimentResult result =
      RunDeepExperiment(data, opts, DeepRegKind::kGm);

  TablePrinter table({"Layer Name", "pi", "lambda", "effective K"});
  CsvWriter csv(bench::CsvPath("table4_learned_gm_alexnet"),
                {"layer", "pi", "lambda", "effective_components"});
  for (const LayerGm& lg : result.learned) {
    table.AddRow({lg.layer, FormatVector(lg.pi, 3), FormatVector(lg.lambda, 3),
                  StrFormat("%d", lg.effective_components)});
    csv.WriteRow({lg.layer, FormatVector(lg.pi, 3), FormatVector(lg.lambda, 3),
                  StrFormat("%d", lg.effective_components)});
  }
  table.Print(std::cout);
  std::printf("\ntest accuracy with the learned regularization: %.3f\n",
              result.test_accuracy);
  bench::JsonSummary summary("table4_learned_gm_alexnet", "cifar-like");
  summary.Add("test_accuracy", result.test_accuracy);
  summary.Add("total_train_seconds", result.total_seconds);
  summary.AddInt("weight_dims", result.num_weight_dims);
  summary.AddInt("esteps", result.total_esteps);
  summary.AddInt("msteps", result.total_msteps);
  summary.AddInt("layers", static_cast<std::int64_t>(result.learned.size()));
  summary.Write();
  std::printf(
      "\nExpert-tuned L2 baseline used for comparison in Table VI:\n"
      "  conv layers  pi=[1.000] lambda=[%.1f]\n"
      "  dense layer  pi=[1.000] lambda=[%.1f]\n",
      opts.l2_conv, opts.l2_dense);
  std::printf(
      "\nPaper reference (Table IV, 32x32 CIFAR-10 on SINGA):\n"
      "  conv1 [0.216,0.784]/[10.7,836.0]   conv2 [0.019,0.981]/[0.6,1904.0]\n"
      "  conv3 [0.013,0.987]/[0.1,2017.9]   dense [0.036,0.964]/[3.9,1277.6]\n"
      "  (expert L2: conv 200, dense 50000)\n"
      "Expected shape: 1-2 effective components per layer; dominant\n"
      "component has the (much) larger precision.\n");
  return 0;
}
