// Regenerates Table V: the representative learned per-layer mixtures on
// the 20-layer ResNet.
//
// Paper's shape: layers inside the same channel stack learn very similar
// (pi, lambda) because He initialization gives them identical initial
// weight distributions (Sec. V-B2); the learned lambdas are far smaller
// than Alex-CIFAR-10's because BatchNorm already regularizes.

#include <iostream>

#include "bench_util.h"
#include "deep_bench_util.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;
  bench::PrintHeader(
      "Table V: representative learned GM regularization, ResNet-20",
      "Per-layer adaptive mixtures under shared hyper-parameter rules.");

  CifarLikePair data = bench::DeepData();
  DeepExperimentOptions opts = bench::DeepOptions(DeepModel::kResNet, data);
  DeepExperimentResult result =
      RunDeepExperiment(data, opts, DeepRegKind::kGm);

  // The paper prints representative layers; we print the same subset and
  // csv-dump everything.
  const char* representative[] = {"conv1/weight",
                                  "2a-br1-conv1/weight",
                                  "2a-br1-conv2/weight",
                                  "3a-br2-conv/weight",
                                  "3a-br1-conv1/weight",
                                  "3a-br1-conv2/weight",
                                  "4a-br2-conv/weight",
                                  "4a-br1-conv1/weight",
                                  "4a-br1-conv2/weight",
                                  "ip5/weight"};
  TablePrinter table({"Layer Name", "pi", "lambda", "effective K"});
  CsvWriter csv(bench::CsvPath("table5_learned_gm_resnet"),
                {"layer", "pi", "lambda", "effective_components"});
  for (const LayerGm& lg : result.learned) {
    csv.WriteRow({lg.layer, FormatVector(lg.pi, 3), FormatVector(lg.lambda, 3),
                  StrFormat("%d", lg.effective_components)});
    for (const char* name : representative) {
      if (lg.layer == name) {
        table.AddRow({lg.layer, FormatVector(lg.pi, 3),
                      FormatVector(lg.lambda, 3),
                      StrFormat("%d", lg.effective_components)});
      }
    }
  }
  table.Print(std::cout);
  std::printf("\ntest accuracy with the learned regularization: %.3f\n",
              result.test_accuracy);
  bench::JsonSummary summary("table5_learned_gm_resnet", "cifar-like");
  summary.Add("test_accuracy", result.test_accuracy);
  summary.Add("total_train_seconds", result.total_seconds);
  summary.AddInt("weight_dims", result.num_weight_dims);
  summary.AddInt("esteps", result.total_esteps);
  summary.AddInt("msteps", result.total_msteps);
  summary.AddInt("layers", static_cast<std::int64_t>(result.learned.size()));
  summary.Write();
  std::printf(
      "\nPaper reference (Table V): e.g. conv1 [0.377,0.623]/[0.3,8.1];\n"
      "2a-br1-conv1 [0.066,0.934]/[0.15,22.6]; ip5 [0.230,0.770]/[0.9,7.0];\n"
      "(expert L2: 50 for all layers). Expected shape: lambdas orders of\n"
      "magnitude smaller than Alex-CIFAR-10's; same-stack layers similar.\n");
  return 0;
}
