// Regenerates Table VI: test accuracy of Alex-CIFAR-10 and ResNet-20 under
// no regularization, expert-tuned L2, and adaptive GM regularization.
//
// Paper's shape: no-reg < L2 < GM on both models; the L2-over-none gap is
// much larger for Alex-CIFAR-10 than for ResNet (whose BatchNorm layers
// already regularize).

#include <iostream>

#include "bench_util.h"
#include "deep_bench_util.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;
  bench::PrintHeader(
      "Table VI: accuracy on deep learning models",
      "no regularization vs expert-tuned L2 vs adaptive GM, both models.");

  CifarLikePair data = bench::DeepData();
  TablePrinter table({"Method", "Alex-CIFAR-10", "ResNet"});
  CsvWriter csv(bench::CsvPath("table6_deep_accuracy"),
                {"method", "model", "accuracy"});
  const DeepRegKind kinds[] = {DeepRegKind::kNone, DeepRegKind::kL2,
                               DeepRegKind::kGm};
  double acc[3][2];
  for (int m = 0; m < 2; ++m) {
    DeepModel model = m == 0 ? DeepModel::kAlexCifar10 : DeepModel::kResNet;
    DeepExperimentOptions opts = bench::DeepOptions(model, data);
    for (int k = 0; k < 3; ++k) {
      DeepExperimentResult r = RunDeepExperiment(data, opts, kinds[k]);
      acc[k][m] = r.test_accuracy;
      csv.WriteRow({DeepRegKindName(kinds[k]), DeepModelName(model),
                    StrFormat("%.4f", r.test_accuracy)});
      std::printf("finished %s / %s: %.3f\n", DeepModelName(model),
                  DeepRegKindName(kinds[k]), r.test_accuracy);
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  for (int k = 0; k < 3; ++k) {
    table.AddRow({DeepRegKindName(kinds[k]), StrFormat("%.3f", acc[k][0]),
                  StrFormat("%.3f", acc[k][1])});
  }
  table.Print(std::cout);
  bench::JsonSummary summary("table6_deep_accuracy", "cifar-like");
  for (int m = 0; m < 2; ++m) {
    std::string prefix =
        DeepModelName(m == 0 ? DeepModel::kAlexCifar10 : DeepModel::kResNet);
    for (int k = 0; k < 3; ++k) {
      summary.Add(prefix + ".accuracy_" + DeepRegKindName(kinds[k]),
                  acc[k][m]);
    }
  }
  summary.Write();
  std::printf(
      "\nPaper reference (Table VI): Alex-CIFAR-10 0.777 / 0.822 / 0.830;\n"
      "ResNet 0.901 / 0.909 / 0.921. Expected shape: none < L2 <= GM per\n"
      "model; L2's gain over none much larger for Alex than for ResNet.\n");
  return 0;
}
