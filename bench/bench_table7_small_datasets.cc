// Regenerates Table VII: classification accuracy (mean +/- standard error
// over 5 stratified 80-20 subsamples) of logistic regression on Hosp-FA
// and the 11 UCI stand-ins, for L1 / L2 / Elastic-net / Huber / GM
// regularization — plus the adaptive prior family (EP-GIG, dynamic prior)
// as extra columns — each under its best CV-selected setting.
//
// Paper's headline: GM Reg wins or ties on 11 of 12 datasets and never
// loses to L1 Reg.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "eval/method_grid.h"
#include "eval/small_data_experiment.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace gmreg;

// Trimmed grids keep the default-scale run minutes-long; the full scale
// sweeps the complete grids of eval/method_grid.cc.
std::vector<RegMethod> MethodsForScale() {
  if (GetBenchScale() == BenchScale::kFull) return AllMethods();
  auto slim = [](RegMethod m, std::initializer_list<int> keep) {
    RegMethod out{m.name, {}};
    for (int i : keep) out.grid.push_back(m.grid[static_cast<std::size_t>(i)]);
    return out;
  };
  std::vector<RegMethod> methods;
  // Strength grid indices: {0.01,0.03,0.1,0.3,1,3,10,30,100}.
  methods.push_back(slim(L1Method(), {1, 3, 5, 7}));
  methods.push_back(slim(L2Method(), {1, 3, 5, 7}));
  // Elastic grid is beta x l1_ratio (4x3).
  methods.push_back(slim(ElasticNetMethod(), {1, 4, 7, 10}));
  methods.push_back(slim(HuberMethod(), {1, 4, 7, 10}));
  // Gamma grid: {2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2}. The
  // lowest value suits paper-scale N only; at this reproduction's sample
  // sizes the effective strength lambda/N shifts the useful range up.
  methods.push_back(slim(GmMethod(), {1, 3, 4, 6, 7}));
  // Adaptive family: one Laplace + one Student seed (indices 0-3 are
  // laplace alphas, 4-7 student taus) and two dynprior strength/schedule
  // pairs — the seeds adapt, so a slim grid loses little.
  methods.push_back(slim(EpGigMethod(), {1, 5}));
  methods.push_back(slim(DynPriorMethod(), {2, 5}));
  return methods;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table VII: accuracy on Hosp-FA + 11 UCI datasets, 7 methods",
      "LR, 5 stratified 80-20 subsamples, per-subsample CV model selection.");

  std::vector<RegMethod> methods = MethodsForScale();
  SmallDataOptions opts;
  opts.num_subsamples = ScalePick(2, 5, 5);
  opts.cv_folds = ScalePick(2, 3, 5);
  // Enough epochs for the weight distribution to develop its two-scale
  // structure (the paper's Fig. 3 weights reach |w| >> 1).
  opts.lr.epochs = ScalePick(10, 60, 150);
  opts.seed = 20180416;  // ICDE'18 week

  std::vector<std::string> headers = {"Dataset"};
  for (const auto& m : methods) headers.push_back(m.name);
  TablePrinter table(headers);
  CsvWriter csv(bench::CsvPath("table7_small_datasets"),
                {"dataset", "method", "mean_accuracy", "stderr", "setting"});

  std::vector<std::string> dataset_names = {"Hosp-FA"};
  for (const std::string& n : UciDatasetNames()) dataset_names.push_back(n);
  int gm_wins_or_ties = 0;
  for (const std::string& name : dataset_names) {
    TabularData raw =
        name == "Hosp-FA" ? MakeHospFaLike(11) : MakeUciLike(name, 11);
    auto results = RunSmallDataComparison(raw, methods, opts);
    std::vector<std::string> row = {name};
    double best = 0.0;
    for (const auto& r : results) best = std::max(best, r.mean_accuracy);
    bool gm_best = false;
    for (const auto& r : results) {
      std::string cell = FormatMeanErr(r.mean_accuracy, r.stderr_accuracy);
      if (r.mean_accuracy >= best - 1e-9) cell += " *";
      if (r.method == "GM Reg" && r.mean_accuracy >= best - 1e-9) {
        gm_best = true;
      }
      row.push_back(cell);
      csv.WriteRow({name, r.method, StrFormat("%.4f", r.mean_accuracy),
                    StrFormat("%.4f", r.stderr_accuracy),
                    r.representative_setting});
    }
    if (gm_best) ++gm_wins_or_ties;
    table.AddRow(row);
    std::printf("finished %s\n", name.c_str());
    std::fflush(stdout);
  }
  std::printf("\n");
  table.Print(std::cout);
  bench::JsonSummary summary("table7_small_datasets",
                             "synthetic-uci+hosp-fa");
  summary.AddInt("datasets", static_cast<std::int64_t>(dataset_names.size()));
  summary.AddInt("methods", static_cast<std::int64_t>(methods.size()));
  summary.AddInt("gm_wins_or_ties", gm_wins_or_ties);
  summary.Write();
  std::printf(
      "\n'*' marks the best method(s) per dataset. GM Reg best or tied on "
      "%d/%zu datasets.\n"
      "Paper reference: GM best on 9/12, tied-best on 2 more, never below "
      "L1.\n",
      gm_wins_or_ties, dataset_names.size());
  return 0;
}
