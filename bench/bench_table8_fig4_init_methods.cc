// Regenerates Table VIII and Fig. 4: accuracy of the three GM
// initialization methods (identical / linear / proportional) across the
// Dirichlet prior exponents alpha in {0.3, 0.5, 0.7, 0.9}, on both deep
// models.
//
// Paper's shape: linear and proportional far better than identical (their
// spread of initial precisions lets the mixture split); alpha = 0.5 best;
// linear slightly ahead of proportional on average.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "deep_bench_util.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;
  bench::PrintHeader(
      "Table VIII + Fig. 4: GM initialization methods x Dirichlet exponent",
      "3 init methods x alpha in {0.3,0.5,0.7,0.9} x 2 models, GM Reg runs.");

  const GmInitMethod methods[] = {GmInitMethod::kLinear,
                                  GmInitMethod::kIdentical,
                                  GmInitMethod::kProportional};
  const double alphas[] = {0.3, 0.5, 0.7, 0.9};
  CsvWriter csv(bench::CsvPath("table8_fig4_init_methods"),
                {"model", "init_method", "alpha_exponent", "accuracy"});

  double mean_acc[3][2] = {};
  for (int m = 0; m < 2; ++m) {
    DeepModel model = m == 0 ? DeepModel::kAlexCifar10 : DeepModel::kResNet;
    // 24 full-length runs would dominate the suite; trade dataset size for
    // training length so each run still trains into the regime where the
    // initialization of the mixture matters (above-noise-floor accuracy).
    CifarLikeSpec spec;
    spec.num_train = ScalePick(200, m == 0 ? 800 : 400, 4000);
    spec.num_test = ScalePick(100, 400, 1500);
    spec.height = ScalePick(12, m == 0 ? 16 : 12, 24);
    spec.width = spec.height;
    spec.pixel_noise = 1.5;
    spec.signal_gain = 0.8;
    spec.label_noise = 0.12;
    CifarLikePair data = MakeCifarLike(spec, 7);
    DeepExperimentOptions opts = bench::DeepOptions(model, data);
    opts.epochs = std::max(4, opts.epochs * 2 / 3);
    std::printf("-- Fig. 4 (%s): accuracy per (init, alpha) --\n",
                DeepModelName(model));
    TablePrinter fig({"alpha", "linear init", "identical init",
                      "proportional init"});
    for (double alpha : alphas) {
      std::vector<std::string> row = {StrFormat("%.1f", alpha)};
      for (int i = 0; i < 3; ++i) {
        opts.gm.init_method = methods[i];
        opts.gm.alpha_exponent = alpha;
        DeepExperimentResult r = RunDeepExperiment(data, opts,
                                                   DeepRegKind::kGm);
        mean_acc[i][m] += r.test_accuracy / 4.0;
        row.push_back(StrFormat("%.3f", r.test_accuracy));
        csv.WriteRow({DeepModelName(model), GmInitMethodName(methods[i]),
                      StrFormat("%.1f", alpha),
                      StrFormat("%.4f", r.test_accuracy)});
      }
      fig.AddRow(row);
    }
    fig.Print(std::cout);
    std::printf("\n");
  }
  std::printf("-- Table VIII: average accuracy over alpha values --\n");
  TablePrinter table({"Method", "Alex-CIFAR-10", "ResNet"});
  const char* labels[] = {"linear", "identical", "proportional"};
  for (int i : {0, 1, 2}) {
    table.AddRow({labels[i], StrFormat("%.3f", mean_acc[i][0]),
                  StrFormat("%.3f", mean_acc[i][1])});
  }
  table.Print(std::cout);
  bench::JsonSummary summary("table8_fig4_init_methods", "cifar-like-small");
  for (int m = 0; m < 2; ++m) {
    std::string prefix = m == 0 ? "alex" : "resnet";
    for (int i : {0, 1, 2}) {
      summary.Add(prefix + ".mean_accuracy_" + labels[i], mean_acc[i][m]);
    }
  }
  summary.Write();
  std::printf(
      "\nPaper reference (Table VIII): Alex 0.819/0.802/0.817,\n"
      "ResNet 0.918/0.912/0.916. Expected shape: identical worst on both\n"
      "models; linear >= proportional; best single cell at alpha = 0.5.\n");
  return 0;
}
