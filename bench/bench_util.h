#ifndef GMREG_BENCH_BENCH_UTIL_H_
#define GMREG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "util/env.h"

namespace gmreg {
namespace bench {

/// Prints the standard banner every bench harness starts with: which paper
/// artifact is being regenerated and at what scale.
inline void PrintHeader(const std::string& artifact,
                        const std::string& description) {
  const char* scale = "default";
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      scale = "smoke";
      break;
    case BenchScale::kFull:
      scale = "full";
      break;
    case BenchScale::kDefault:
      break;
  }
  std::printf("==============================================================\n");
  std::printf("Reproducing %s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("scale: %s (set GMREG_BENCH_SCALE=smoke|full to change)\n",
              scale);
  std::printf("==============================================================\n\n");
}

/// Path for the machine-readable copy of a bench's output.
inline std::string CsvPath(const std::string& name) {
  return name + ".csv";
}

}  // namespace bench
}  // namespace gmreg

#endif  // GMREG_BENCH_BENCH_UTIL_H_
