#ifndef GMREG_BENCH_BENCH_UTIL_H_
#define GMREG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/env.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace gmreg {
namespace bench {

/// The scale the suite is running at, as the string the JSON summaries and
/// banners print.
inline const char* ScaleName() {
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      return "smoke";
    case BenchScale::kFull:
      return "full";
    case BenchScale::kDefault:
      break;
  }
  return "default";
}

/// Prints the standard banner every bench harness starts with: which paper
/// artifact is being regenerated and at what scale.
inline void PrintHeader(const std::string& artifact,
                        const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("Reproducing %s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("scale: %s (set GMREG_BENCH_SCALE=smoke|full to change)\n",
              ScaleName());
  std::printf("==============================================================\n\n");
}

/// Path for the machine-readable copy of a bench's output.
inline std::string CsvPath(const std::string& name) {
  return name + ".csv";
}

/// Machine-readable bench summary: collects headline metrics during a run
/// and writes them as one JSON object to `BENCH_<name>.json` next to the
/// CSV — the perf-trajectory record every driver emits. The wall time
/// covers construction to Write() (the whole driver, data generation
/// included); the thread budget and scale are stamped automatically so a
/// historical series of these files is self-describing.
///
/// Usage:
///   bench::JsonSummary summary("fig5_lazy_update", "cifar-like-sweep");
///   ... run, summary.Add("alex.speedup", 1.7) ...
///   summary.Write();  // prints the path it wrote
class JsonSummary {
 public:
  JsonSummary(std::string name, std::string dataset)
      : name_(std::move(name)), record_("bench_summary") {
    record_.AddString("bench", name_);
    record_.AddString("scale", ScaleName());
    record_.AddInt("threads", DefaultNumThreads());
    record_.AddString("dataset", std::move(dataset));
  }

  void Add(const std::string& key, double value) {
    record_.AddDouble(key, value);
  }
  void AddInt(const std::string& key, std::int64_t value) {
    record_.AddInt(key, value);
  }
  void AddText(const std::string& key, std::string value) {
    record_.AddString(key, std::move(value));
  }
  void AddList(const std::string& key, std::vector<double> values) {
    record_.AddDoubleList(key, std::move(values));
  }

  /// Writes BENCH_<name>.json (overwriting), mirrors the record to any
  /// process-wide sinks (GMREG_METRICS_FILE), and returns the path.
  std::string Write() {
    record_.AddDouble("wall_time_seconds", watch_.ElapsedSeconds());
    std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (out.is_open()) {
      out << RecordToJson(record_) << '\n';
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::printf("warning: could not write %s\n", path.c_str());
    }
    MetricsRegistry::Global().Emit(record_);
    return path;
  }

 private:
  std::string name_;
  Stopwatch watch_;
  MetricsRecord record_;
};

}  // namespace bench
}  // namespace gmreg

#endif  // GMREG_BENCH_BENCH_UTIL_H_
