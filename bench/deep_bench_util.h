#ifndef GMREG_BENCH_DEEP_BENCH_UTIL_H_
#define GMREG_BENCH_DEEP_BENCH_UTIL_H_

#include "data/cifar_like.h"
#include "eval/deep_experiment.h"
#include "util/env.h"

namespace gmreg {
namespace bench {

/// The CIFAR-10 stand-in at the current bench scale (shared by all deep
/// benches so every table/figure sees the same data distribution).
inline CifarLikePair DeepData(std::uint64_t seed = 7) {
  CifarLikeSpec spec;
  spec.num_train = ScalePick(300, 1200, 8000);
  spec.num_test = ScalePick(150, 800, 2000);
  spec.height = ScalePick(12, 16, 32);
  spec.width = spec.height;
  // Difficulty calibrated so an unregularized Alex-CIFAR-10 overfits into
  // the low 0.8s (paper: 0.777) with headroom for regularization.
  spec.pixel_noise = 1.5;
  spec.signal_gain = 0.8;
  spec.label_noise = 0.12;
  return MakeCifarLike(spec, seed);
}

/// Smaller dataset for the timing figures (5-7) and the init-method sweep
/// (Table VIII / Fig. 4): those artifacts need many runs and measure
/// relative behaviour, not absolute accuracy.
inline CifarLikePair DeepSweepData(std::uint64_t seed = 7) {
  CifarLikeSpec spec;
  spec.num_train = ScalePick(200, 320, 4000);
  spec.num_test = ScalePick(100, 200, 1500);
  spec.height = ScalePick(12, 12, 24);
  spec.width = spec.height;
  spec.pixel_noise = 1.5;
  spec.signal_gain = 0.8;
  spec.label_noise = 0.12;
  return MakeCifarLike(spec, seed);
}

/// Baseline options for one deep run at the current scale, sized to the
/// dataset it will train on. Callers override model/regularization
/// specifics.
inline DeepExperimentOptions DeepOptions(DeepModel model,
                                         const CifarLikePair& data) {
  DeepExperimentOptions opts;
  opts.model = model;
  opts.input_hw = static_cast<int>(data.train.height());
  opts.batch_size = 50;
  bool resnet = model == DeepModel::kResNet;
  opts.epochs = resnet ? ScalePick(2, 10, 40) : ScalePick(3, 20, 60);
  opts.learning_rate = resnet ? 0.05 : 0.003;
  // Step the learning rate down for the last third of training.
  opts.lr_schedule = {{2 * opts.epochs / 3, 0.1}};
  // Expert-tuned L2 for this substrate (grid-searched offline; analogous to
  // the paper's hand-tuned per-layer lambdas). Under the library's 1/N MAP
  // scaling the effective per-step strength is lr*lambda/N, so the right
  // lambda shrinks with the dataset: the paper's conv lambda 200 at
  // N = 50000 corresponds to ~6 at N = 1600.
  opts.l2_conv = resnet ? 10.0 : 30.0;
  opts.l2_dense = resnet ? 10.0 : 150.0;
  // GM defaults per paper Sec. V-B1: K=4, linear init, alpha = M^0.5.
  // gamma is chosen per model from the paper's grid (validation-selected,
  // as the paper prescribes). The Gamma prior caps learnable precisions at
  // ~1/(2*gamma); with our much smaller N the cap must sit proportionally
  // lower than the paper's (their learned lambda/N of ~0.04 for Alex
  // matches cap 100 = gamma 5e-3 at N ~ 1600).
  opts.gm.gamma = resnet ? 0.05 : 0.02;
  opts.gm.lazy.warmup_epochs = 2;
  opts.gm.lazy.greg_interval = 10;
  opts.gm.lazy.gm_interval = 10;
  return opts;
}

}  // namespace bench
}  // namespace gmreg

#endif  // GMREG_BENCH_DEEP_BENCH_UTIL_H_
