// Pipeline-style usage: the regularizer is chosen by a config STRING (as a
// declarative analytics stack like the paper's GEMINI would expose it), the
// learned prior is persisted after training, and a later run warm-starts
// from the saved mixture.
//
// Usage: configurable_pipeline [config]
//   e.g. configurable_pipeline "l2:beta=3"
//        configurable_pipeline "gm:gamma=0.0005,warmup=2,im=10,ig=10"

#include <cstdio>
#include <string>

#include "core/factory.h"
#include "core/gm_regularizer.h"
#include "core/merge.h"
#include "core/serialize.h"
#include "data/preprocess.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/logistic_regression.h"

int main(int argc, char** argv) {
  using namespace gmreg;

  std::string config =
      argc > 1 ? argv[1] : "gm:gamma=0.0005,warmup=2,im=10,ig=10";

  TabularData raw = MakeUciLike("credit-approval", /*seed=*/7);
  Rng rng(11);
  TrainTestIndices split = StratifiedSplit(raw.labels, 0.2, &rng);
  Preprocessor prep;
  Status st = prep.Fit(raw, split.train);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  Dataset train = prep.Transform(raw, split.train);
  Dataset test = prep.Transform(raw, split.test);

  std::unique_ptr<Regularizer> reg;
  st = MakeRegularizerFromConfig(config, train.num_features(), &reg);
  if (!st.ok()) {
    std::fprintf(stderr, "bad config '%s': %s\n", config.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("regularizer from config '%s': %s\n", config.c_str(),
              reg->Name().c_str());

  LogisticRegression::Options opts;
  opts.epochs = 50;
  LogisticRegression model(train.num_features(), opts, &rng);
  model.Train(train, reg.get(), &rng);
  std::printf("test accuracy: %.3f\n", model.EvaluateAccuracy(test));

  // If the tool was adaptive, persist what it learned and demonstrate a
  // warm start (e.g. the next nightly retraining run of the pipeline).
  auto* gm = dynamic_cast<GmRegularizer*>(reg.get());
  if (gm == nullptr) return 0;
  std::string path = "learned_prior.gm";
  st = SaveMixture(gm->mixture(), path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved learned prior to %s: %s\n", path.c_str(),
              MergeSimilarComponents(gm->mixture()).ToString().c_str());

  std::unique_ptr<Regularizer> next_run;
  st = MakeRegularizerFromConfig(config, train.num_features(), &next_run);
  GMREG_CHECK(st.ok());
  GaussianMixture loaded({1.0}, {1.0});
  st = LoadMixture(path, &loaded);
  GMREG_CHECK(st.ok()) << st.ToString();
  static_cast<GmRegularizer*>(next_run.get())->SetMixture(loaded);
  LogisticRegression warm(train.num_features(), opts, &rng);
  warm.Train(train, next_run.get(), &rng);
  std::printf("warm-started run test accuracy: %.3f\n",
              warm.EvaluateAccuracy(test));
  return 0;
}
