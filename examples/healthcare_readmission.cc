// Healthcare scenario from the paper's introduction: predicting 30-day
// hospital readmission from inpatient records (the Hosp-FA dataset,
// 1755 patients x 375 mixed medical features).
//
// Medical feature sets mix a few strongly predictive signals (e.g. key
// diagnoses) with many noisy ones. The paper's point (Sec. V-A) is that
// the weight distribution is then two-scale — large variance for
// predictive features, small variance for noisy ones — which a fixed-norm
// prior cannot express but a learned Gaussian Mixture can. This example
// compares all five regularization methods under their typical settings
// and prints the mixture the tool learned.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "core/gm_regularizer.h"
#include "core/merge.h"
#include "data/preprocess.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/logistic_regression.h"
#include "reg/norms.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;

  TabularData raw = MakeHospFaLike(/*seed=*/2026);
  Rng rng(7);
  TrainTestIndices split = StratifiedSplit(raw.labels, 0.2, &rng);
  Preprocessor prep;
  Status status = prep.Fit(raw, split.train);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  Dataset train = prep.Transform(raw, split.train);
  Dataset test = prep.Transform(raw, split.test);
  std::printf("Hosp-FA stand-in: %lld train / %lld test patients, %lld features\n\n",
              static_cast<long long>(train.num_samples()),
              static_cast<long long>(test.num_samples()),
              static_cast<long long>(train.num_features()));

  LogisticRegression::Options lr_opts;
  lr_opts.epochs = 50;

  GmOptions gm_opts;
  gm_opts.gamma = 0.0005;
  auto gm_reg = std::make_unique<GmRegularizer>(
      "w", train.num_features(), gm_opts);

  struct Entry {
    const char* label;
    Regularizer* reg;
  };
  L1Reg l1(1.0);
  L2Reg l2(3.0);
  ElasticNetReg elastic(1.0, 0.5);
  HuberReg huber(3.0, 0.1);
  std::vector<Entry> entries = {
      {"no regularization", nullptr}, {"L1 Reg", &l1},
      {"L2 Reg", &l2},                {"Elastic-net Reg", &elastic},
      {"Huber Reg", &huber},          {"GM Reg (adaptive)", gm_reg.get()},
  };

  TablePrinter table({"Method", "Test accuracy"});
  for (const Entry& entry : entries) {
    Rng train_rng(11);  // same init/order for every method
    LogisticRegression model(train.num_features(), lr_opts, &train_rng);
    model.Train(train, entry.reg, &train_rng);
    table.AddRow({entry.label,
                  StrFormat("%.3f", model.EvaluateAccuracy(test))});
  }
  table.Print(std::cout);

  GaussianMixture merged = MergeSimilarComponents(gm_reg->mixture());
  std::printf(
      "\nlearned prior over the %lld model weights: %s\n"
      "(small-variance component ~ noisy medical features, large-variance\n"
      " component ~ predictive ones; cf. paper Secs. V-A and V-D)\n",
      static_cast<long long>(train.num_features()),
      merged.ToString().c_str());
  return 0;
}
