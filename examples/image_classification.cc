// Deep-learning scenario: per-layer adaptive regularization of a
// convolutional network (the paper's Alex-CIFAR-10 case study, Sec. V-B).
//
// One GmRegularizer is attached to EVERY weight tensor, all with the same
// automatic hyper-parameter rules; each layer then learns its own prior.
// The run prints the learned per-layer mixtures — the reproduction of the
// paper's Table IV on a synthetic CIFAR-10 stand-in.

#include <cstdio>
#include <iostream>

#include "eval/deep_experiment.h"
#include "util/env.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace gmreg;

  CifarLikeSpec spec;
  spec.num_train = ScalePick(300, 1200, 4000);
  spec.num_test = ScalePick(150, 600, 2000);
  CifarLikePair data = MakeCifarLike(spec, /*seed=*/3);
  std::printf("CIFAR-10 stand-in: %lld train / %lld test images (%dx%d)\n\n",
              static_cast<long long>(data.train.num_samples()),
              static_cast<long long>(data.test.num_samples()), spec.height,
              spec.width);

  DeepExperimentOptions opts;
  opts.model = DeepModel::kAlexCifar10;
  opts.input_hw = spec.height;
  opts.epochs = ScalePick(4, 10, 30);
  opts.batch_size = 50;
  opts.learning_rate = 0.003;
  opts.gm.gamma = 0.0002;
  opts.gm.lazy.warmup_epochs = 2;
  opts.gm.lazy.greg_interval = 10;
  opts.gm.lazy.gm_interval = 10;

  DeepExperimentResult none = RunDeepExperiment(data, opts, DeepRegKind::kNone);
  DeepExperimentResult gm = RunDeepExperiment(data, opts, DeepRegKind::kGm);

  std::printf("test accuracy, no regularization: %.3f\n", none.test_accuracy);
  std::printf("test accuracy, GM regularization: %.3f\n\n", gm.test_accuracy);

  TablePrinter table({"Layer Name", "pi", "lambda"});
  for (const LayerGm& lg : gm.learned) {
    table.AddRow({lg.layer, FormatVector(lg.pi, 3), FormatVector(lg.lambda, 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nEach layer learned its own mixture from the same hyper-parameter\n"
      "rules — no per-layer manual tuning (cf. paper Table IV).\n");
  return 0;
}
