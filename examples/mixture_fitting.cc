// Standalone use of the EM machinery: fit a zero-mean Gaussian Mixture to
// a sample with the paper's Dirichlet/Gamma-smoothed M-step, watch the
// initial K = 4 components merge into the true number, and print an ASCII
// sketch of the learned density (the machinery behind the paper's Fig. 3).

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/em.h"
#include "core/merge.h"
#include "util/rng.h"

int main() {
  using namespace gmreg;

  // Planted two-scale sample: 75% sigma = 0.04 ("noisy feature" weights),
  // 25% sigma = 0.6 ("predictive feature" weights).
  Rng rng(2718);
  std::vector<double> sample;
  for (int i = 0; i < 30000; ++i) {
    sample.push_back(rng.NextBernoulli(0.75) ? rng.NextGaussian(0.0, 0.04)
                                             : rng.NextGaussian(0.0, 0.6));
  }

  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  GmHyperParams hyper = GmHyperParams::FromRules(
      static_cast<std::int64_t>(sample.size()), 4, /*gamma=*/0.0002,
      /*a_factor=*/0.01, /*alpha_exponent=*/0.5);
  std::printf("initial : %s\n", gm.ToString().c_str());

  GmBounds bounds;
  GmSuffStats stats;
  for (int it = 1; it <= 100; ++it) {
    stats.Reset(gm.num_components());
    EStep(gm, sample.data(), static_cast<std::int64_t>(sample.size()),
          nullptr, &stats);
    MStep(stats, hyper, bounds, &gm);
    if (it == 1 || it == 10 || it == 100) {
      std::printf("after %3d EM iterations: %s (effective components: %d)\n",
                  it, gm.ToString().c_str(), gm.EffectiveComponents());
    }
  }

  GaussianMixture merged = MergeSimilarComponents(gm);
  std::printf("merged  : %s\n\n", merged.ToString().c_str());

  // ASCII density sketch over w in [-1, 1], as in the paper's Fig. 3.
  std::printf("learned mixture density p(w):\n");
  double max_density = merged.Density(0.0);
  for (int row = 10; row >= 1; --row) {
    std::printf("%5.2f |", max_density * row / 10.0);
    for (double w = -1.0; w <= 1.0 + 1e-9; w += 0.025) {
      std::printf("%c", merged.Density(w) >= max_density * (row - 0.5) / 10.0
                            ? '#'
                            : ' ');
    }
    std::printf("\n");
  }
  std::printf("      +");
  for (double w = -1.0; w <= 1.0 + 1e-9; w += 0.025) std::printf("-");
  std::printf("\n       -1.0%*s0.0%*s1.0\n", 36, "", 36, "");
  return 0;
}
