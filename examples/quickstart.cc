// Quickstart: attach the adaptive GM regularization tool to a logistic
// regression model in ~30 lines of user code.
//
// The tool needs only two things from the host model (paper Sec. IV):
//   * the intermediate model parameter w at each SGD step, and
//   * somewhere to add the returned regularization gradient `greg`.
// Everything else — learning the mixture, the lazy update schedule, the
// hyper-parameters — is automatic.

#include <cstdio>
#include <memory>

#include "core/gm_regularizer.h"
#include "core/merge.h"
#include "data/preprocess.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/logistic_regression.h"
#include "util/metrics.h"

int main() {
  using namespace gmreg;

  // 1. A small, noisy binary-classification dataset (stand-in for the UCI
  //    "ionosphere" benchmark: 351 samples x 33 features).
  TabularData raw = MakeUciLike("ionosphere", /*seed=*/42);
  Rng rng(1);
  TrainTestIndices split = StratifiedSplit(raw.labels, 0.2, &rng);
  Preprocessor prep;
  Status status = prep.Fit(raw, split.train);
  if (!status.ok()) {
    std::fprintf(stderr, "preprocessing failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  Dataset train = prep.Transform(raw, split.train);
  Dataset test = prep.Transform(raw, split.test);

  // 2. A logistic regression model.
  LogisticRegression::Options lr_opts;
  lr_opts.epochs = 60;
  LogisticRegression model(train.num_features(), lr_opts, &rng);

  // 3. The adaptive regularizer. GmOptions defaults follow the paper:
  //    K = 4 components, linear initialization, alpha = M^0.5.
  GmOptions gm_opts;
  gm_opts.gamma = 0.0005;  // b = gamma * M; sweep GammaGrid() to tune
  GmRegularizer gm_reg("w", train.num_features(), gm_opts);

  // 4. Train with the regularizer attached, then evaluate.
  model.Train(train, &gm_reg, &rng);
  std::printf("test accuracy with GM regularization: %.3f\n",
              model.EvaluateAccuracy(test));

  // 5. Inspect what the tool learned: the prior adapted to the parameter
  //    distribution, typically one tight component for noisy features and
  //    one wide component for predictive ones (paper Fig. 3).
  GaussianMixture learned = MergeSimilarComponents(gm_reg.mixture());
  std::printf("learned mixture: %s\n", learned.ToString().c_str());

  // 6. Emit the run's telemetry through the metrics registry: the LogSink
  //    prints it, and when GMREG_METRICS_FILE is set the same record also
  //    lands in that JSONL file (docs/OBSERVABILITY.md) — this example
  //    doubles as the telemetry smoke test.
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.AddSink(std::make_unique<LogSink>());
  MetricsRecord record("quickstart_summary");
  record.AddString("dataset", raw.name);
  record.AddDouble("test_accuracy", model.EvaluateAccuracy(test));
  gm_reg.AppendMetrics("reg.w", &record);
  metrics.Emit(record);
  metrics.EmitSnapshot("quickstart_counters");
  return 0;
}
