// Full model-selection shoot-out on one dataset: every method tuned by
// cross-validation over its grid, evaluated over stratified subsamples —
// a single row of the paper's Table VII, end to end. Sweeps all seven
// methods of eval/method_grid.h: the paper's five plus the adaptive prior
// family (EP-GIG, dynamic prior — docs/REGULARIZERS.md).
//
// Usage: regularizer_shootout [dataset-name]
// where dataset-name is one of the 11 UCI stand-ins (default: conn-sonar)
// or "Hosp-FA".

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "data/synthetic.h"
#include "eval/method_grid.h"
#include "eval/small_data_experiment.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace gmreg;

  std::string name = argc > 1 ? argv[1] : "conn-sonar";
  TabularData raw =
      name == "Hosp-FA" ? MakeHospFaLike(99) : MakeUciLike(name, 99);
  std::printf("dataset: %s (%lld samples, %lld encoded features, %s)\n\n",
              raw.name.c_str(), static_cast<long long>(raw.num_samples()),
              static_cast<long long>(raw.EncodedWidth()),
              raw.FeatureTypeString().c_str());

  SmallDataOptions opts;
  opts.num_subsamples = 5;
  opts.cv_folds = 3;
  opts.lr.epochs = 40;
  std::vector<MethodResult> results =
      RunSmallDataComparison(raw, AllMethods(), opts);

  TablePrinter table({"Method", "Accuracy", "Chosen setting"});
  // Route the final metrics through the registry: printed via the LogSink
  // and mirrored to GMREG_METRICS_FILE when set, so this example doubles as
  // a telemetry smoke test (docs/OBSERVABILITY.md).
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.AddSink(std::make_unique<LogSink>());
  MetricsRecord record("shootout_summary");
  record.AddString("dataset", raw.name);
  for (const MethodResult& r : results) {
    table.AddRow({r.method,
                  FormatMeanErr(r.mean_accuracy, r.stderr_accuracy),
                  r.representative_setting});
    record.AddDouble(r.method + ".mean_accuracy", r.mean_accuracy);
    record.AddDouble(r.method + ".stderr_accuracy", r.stderr_accuracy);
    record.AddString(r.method + ".setting", r.representative_setting);
  }
  table.Print(std::cout);
  metrics.Emit(record);
  metrics.EmitSnapshot("shootout_counters");
  std::printf(
      "\nEach row: mean +/- standard error over %d stratified 80-20\n"
      "subsamples; settings chosen per subsample by %d-fold CV.\n",
      opts.num_subsamples, opts.cv_folds);
  return 0;
}
