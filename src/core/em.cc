#include "core/em.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"

namespace gmreg {

void GmSuffStats::Reset(int num_components) {
  resp_sum.assign(static_cast<std::size_t>(num_components), 0.0);
  resp_w2_sum.assign(static_cast<std::size_t>(num_components), 0.0);
  count = 0;
}

void GmSuffStats::Merge(const GmSuffStats& other) {
  GMREG_CHECK_EQ(resp_sum.size(), other.resp_sum.size());
  for (std::size_t k = 0; k < resp_sum.size(); ++k) {
    resp_sum[k] += other.resp_sum[k];
    resp_w2_sum[k] += other.resp_w2_sum[k];
  }
  count += other.count;
}

namespace {

// K-specialized E-step kernel: the mixture parameters are hoisted into
// fixed-size locals and every k loop has a compile-time trip count KK, so
// the compiler fully unrolls and vectorizes the responsibility softmax.
// The arithmetic replicates GaussianMixture::Responsibilities() expression
// for expression — same operations in the same order, so this path is
// bitwise identical to the generic one below (tests/em_test.cc relies on
// the E-step's determinism contract, docs/KERNELS.md).
template <int KK, typename T>
void EStepFixedK(const GaussianMixture& gm, const T* w, std::int64_t n,
                 T* greg_out, GmSuffStats* stats) {
  double lc[KK];
  double lam[KK];
  const std::vector<double>& log_coef = gm.log_coef();
  const std::vector<double>& lambda = gm.lambda();
  for (int k = 0; k < KK; ++k) {
    auto ks = static_cast<std::size_t>(k);
    lc[k] = log_coef[ks];
    lam[k] = lambda[ks];
  }
  for (std::int64_t m = 0; m < n; ++m) {
    double x = static_cast<double>(w[m]);
    double r[KK];
    double best = -1e300;
    for (int k = 0; k < KK; ++k) {
      r[k] = lc[k] - 0.5 * lam[k] * x * x;
      best = std::max(best, r[k]);
    }
    double denom = 0.0;
    for (int k = 0; k < KK; ++k) {
      r[k] = std::exp(r[k] - best);
      denom += r[k];
    }
    for (int k = 0; k < KK; ++k) r[k] /= denom;
    if (greg_out != nullptr) {
      double acc = 0.0;
      for (int k = 0; k < KK; ++k) acc += r[k] * lam[k];
      greg_out[m] = static_cast<T>(acc * x);
    }
    if (stats != nullptr) {
      for (int k = 0; k < KK; ++k) {
        auto ks = static_cast<std::size_t>(k);
        stats->resp_sum[ks] += r[k];
        stats->resp_w2_sum[ks] += r[k] * x * x;
      }
    }
  }
}

// Shared E-step kernel over either float or double input. K is small (<= 8
// in practice), so responsibilities live in a fixed-size stack buffer; the
// common component counts dispatch to the unrolled EStepFixedK variants.
template <typename T>
void EStepImpl(const GaussianMixture& gm, const T* w, std::int64_t n,
               T* greg_out, GmSuffStats* stats) {
  int kk = gm.num_components();
  GMREG_CHECK_LE(kk, 64);
  if (stats != nullptr) {
    GMREG_CHECK_EQ(static_cast<int>(stats->resp_sum.size()), kk);
    stats->count += n;
  }
  switch (kk) {
    case 1:
      return EStepFixedK<1>(gm, w, n, greg_out, stats);
    case 2:
      return EStepFixedK<2>(gm, w, n, greg_out, stats);
    case 3:
      return EStepFixedK<3>(gm, w, n, greg_out, stats);
    case 4:
      return EStepFixedK<4>(gm, w, n, greg_out, stats);
    case 8:
      return EStepFixedK<8>(gm, w, n, greg_out, stats);
    default:
      break;
  }
  const std::vector<double>& lambda = gm.lambda();
  double r[64];
  for (std::int64_t m = 0; m < n; ++m) {
    double x = static_cast<double>(w[m]);
    gm.Responsibilities(x, r);
    if (greg_out != nullptr) {
      double acc = 0.0;
      for (int k = 0; k < kk; ++k) acc += r[k] * lambda[static_cast<std::size_t>(k)];
      greg_out[m] = static_cast<T>(acc * x);
    }
    if (stats != nullptr) {
      for (int k = 0; k < kk; ++k) {
        auto ks = static_cast<std::size_t>(k);
        stats->resp_sum[ks] += r[k];
        stats->resp_w2_sum[ks] += r[k] * x * x;
      }
    }
  }
}

// Shards the fused pass over the thread budget. greg_out slices are
// disjoint, so that output is bitwise identical to serial no matter the
// budget; the per-shard statistics are merged in fixed shard order, making
// the reduction bitwise-reproducible for a given shard count.
template <typename T>
void EStepDispatch(const GaussianMixture& gm, const T* w, std::int64_t n,
                   T* greg_out, GmSuffStats* stats, int num_threads) {
  int shards = ComputeNumShards(n, kEStepGrain, ResolveNumThreads(num_threads));
  if (shards <= 1) {
    EStepImpl(gm, w, n, greg_out, stats);
    return;
  }
  // Persistent per-caller shard accumulators: the stats-carrying E-step
  // runs inside every training step (GmRegularizer::UptGmParam), so the
  // steady state must not allocate. Reset() reuses the inner vectors'
  // capacity; EStep never nests (workers run EStepImpl directly), so the
  // caller's buffer is never re-entered.
  thread_local std::vector<GmSuffStats> shard_stats;
  // Hoisted data pointer: a thread_local named inside the worker lambda
  // would re-resolve to each worker's own (empty) vector, so the workers
  // must go through the caller's pointer instead.
  GmSuffStats* shard_ptr = nullptr;
  if (stats != nullptr) {
    GMREG_CHECK_EQ(static_cast<int>(stats->resp_sum.size()),
                   gm.num_components());
    if (static_cast<int>(shard_stats.size()) < shards) {
      shard_stats.resize(static_cast<std::size_t>(shards));
    }
    for (int s = 0; s < shards; ++s) {
      shard_stats[static_cast<std::size_t>(s)].Reset(gm.num_components());
    }
    shard_ptr = shard_stats.data();
  }
  RunShards(shards, 0, n, [&](int s, std::int64_t b, std::int64_t e) {
    EStepImpl(gm, w + b, e - b,
              greg_out == nullptr ? nullptr : greg_out + b,
              shard_ptr == nullptr ? nullptr : shard_ptr + s);
  });
  if (stats != nullptr) {
    for (int s = 0; s < shards; ++s) {
      stats->Merge(shard_stats[static_cast<std::size_t>(s)]);
    }
  }
}

}  // namespace

void EStep(const GaussianMixture& gm, const float* w, std::int64_t n,
           float* greg_out, GmSuffStats* stats, int num_threads) {
  EStepDispatch(gm, w, n, greg_out, stats, num_threads);
}

void EStep(const GaussianMixture& gm, const double* w, std::int64_t n,
           double* greg_out, GmSuffStats* stats, int num_threads) {
  EStepDispatch(gm, w, n, greg_out, stats, num_threads);
}

void MStep(const GmSuffStats& stats, const GmHyperParams& hyper,
           const GmBounds& bounds, GaussianMixture* gm) {
  int kk = gm->num_components();
  GMREG_CHECK_EQ(static_cast<int>(stats.resp_sum.size()), kk);
  GMREG_CHECK_EQ(static_cast<int>(hyper.alpha.size()), kk);
  GMREG_CHECK_GT(stats.count, 0);
  // K <= 64 everywhere (EStepImpl enforces it), so the updated parameters
  // fit on the stack and the per-step M-step stays allocation-free; the
  // arithmetic below is unchanged from the vector version.
  GMREG_CHECK_LE(kk, 64);
  double pi[64];
  double lambda[64];
  double m_total = static_cast<double>(stats.count);
  double pi_denom = m_total + hyper.AlphaSumMinusK();
  GMREG_CHECK_GT(pi_denom, 0.0);
  double pi_sum = 0.0;
  for (int k = 0; k < kk; ++k) {
    auto ks = static_cast<std::size_t>(k);
    // Eq. 13: 2(a-1) and 2b act as "pseudo parameter" smoothing terms.
    double num = 2.0 * (hyper.a - 1.0) + stats.resp_sum[ks];
    double den = 2.0 * hyper.b + stats.resp_w2_sum[ks];
    double l = den > 0.0 ? num / den : bounds.lambda_max;
    lambda[ks] = std::clamp(l, bounds.lambda_min, bounds.lambda_max);
    // Eq. 17.
    double p = (stats.resp_sum[ks] + hyper.alpha[ks] - 1.0) / pi_denom;
    pi[ks] = std::max(p, bounds.pi_floor);
    pi_sum += pi[ks];
  }
  for (int k = 0; k < kk; ++k) pi[static_cast<std::size_t>(k)] /= pi_sum;
  gm->SetFromArrays(pi, lambda, kk);
}

GaussianMixture FitZeroMeanGm(const std::vector<double>& values,
                              const GaussianMixture& init,
                              const GmHyperParams& hyper,
                              const GmBounds& bounds, int iterations) {
  GMREG_CHECK(!values.empty());
  GaussianMixture gm = init;
  GmSuffStats stats;
  for (int it = 0; it < iterations; ++it) {
    stats.Reset(gm.num_components());
    EStep(gm, values.data(), static_cast<std::int64_t>(values.size()),
          /*greg_out=*/nullptr, &stats);
    MStep(stats, hyper, bounds, &gm);
  }
  return gm;
}

}  // namespace gmreg
