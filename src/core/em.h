#ifndef GMREG_CORE_EM_H_
#define GMREG_CORE_EM_H_

#include <cstdint>
#include <vector>

#include "core/gaussian_mixture.h"
#include "core/hyper.h"

namespace gmreg {

/// Sufficient statistics of one E-step over M parameter dimensions:
///   resp_sum[k]    = sum_m r_k(w_m)            (Eqs. 13/17 numerators)
///   resp_w2_sum[k] = sum_m r_k(w_m) * w_m^2    (Eq. 13 denominator)
struct GmSuffStats {
  std::vector<double> resp_sum;
  std::vector<double> resp_w2_sum;
  std::int64_t count = 0;

  void Reset(int num_components);
};

/// Bounds applied to the M-step output to keep the mixture numerically
/// sane on non-stationary data.
struct GmBounds {
  double lambda_min = 1e-6;
  double lambda_max = 1e10;
  double pi_floor = 1e-8;
};

/// One E-step pass over `n` scalars (the paper's calResponsibility +
/// calcRegGrad fused into a single pass): for each element computes the
/// responsibilities r_k (Eq. 9) in log space and
///  * if `greg_out` != nullptr, writes greg_m = sum_k r_k lambda_k w_m
///    (Eq. 10) into greg_out[m];
///  * if `stats` != nullptr, accumulates the sufficient statistics.
void EStep(const GaussianMixture& gm, const float* w, std::int64_t n,
           float* greg_out, GmSuffStats* stats);

/// Double-precision overload used by the standalone fitting utility.
void EStep(const GaussianMixture& gm, const double* w, std::int64_t n,
           double* greg_out, GmSuffStats* stats);

/// M-step (the paper's uptGMParam): closed-form maximizers
///   lambda_k = (2(a-1) + sum_m r_k) / (2b + sum_m r_k w_m^2)   (Eq. 13)
///   pi_k     = (sum_m r_k + alpha_k - 1) / (M + sum_j(alpha_j - 1)) (Eq. 17)
/// applied to `gm` in place, clamped to `bounds`.
void MStep(const GmSuffStats& stats, const GmHyperParams& hyper,
           const GmBounds& bounds, GaussianMixture* gm);

/// Batch EM on a fixed sample (used by tests and the density example):
/// `iterations` alternations of EStep/MStep starting from `init`.
GaussianMixture FitZeroMeanGm(const std::vector<double>& values,
                              const GaussianMixture& init,
                              const GmHyperParams& hyper,
                              const GmBounds& bounds, int iterations);

}  // namespace gmreg

#endif  // GMREG_CORE_EM_H_
