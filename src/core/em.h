#ifndef GMREG_CORE_EM_H_
#define GMREG_CORE_EM_H_

#include <cstdint>
#include <vector>

#include "core/gaussian_mixture.h"
#include "core/hyper.h"

namespace gmreg {

/// Elements per shard of a parallel E-step / Penalty pass. At the measured
/// ~30 M dims/s a shard is >= ~100us of work, far above the pool dispatch
/// cost; exposed so tests can place probes on shard boundaries.
inline constexpr std::int64_t kEStepGrain = 4096;

/// Sufficient statistics of one E-step over M parameter dimensions:
///   resp_sum[k]    = sum_m r_k(w_m)            (Eqs. 13/17 numerators)
///   resp_w2_sum[k] = sum_m r_k(w_m) * w_m^2    (Eq. 13 denominator)
struct GmSuffStats {
  std::vector<double> resp_sum;
  std::vector<double> resp_w2_sum;
  std::int64_t count = 0;

  void Reset(int num_components);

  /// Adds `other`'s accumulators into this. The parallel E-step merges its
  /// per-shard statistics in fixed shard order, so a given thread budget
  /// always produces bitwise-identical sums.
  void Merge(const GmSuffStats& other);
};

/// Bounds applied to the M-step output to keep the mixture numerically
/// sane on non-stationary data.
struct GmBounds {
  double lambda_min = 1e-6;
  double lambda_max = 1e10;
  double pi_floor = 1e-8;
};

/// One E-step pass over `n` scalars (the paper's calResponsibility +
/// calcRegGrad fused into a single pass): for each element computes the
/// responsibilities r_k (Eq. 9) in log space and
///  * if `greg_out` != nullptr, writes greg_m = sum_k r_k lambda_k w_m
///    (Eq. 10) into greg_out[m];
///  * if `stats` != nullptr, accumulates the sufficient statistics.
///
/// The pass is sharded over `num_threads` workers (<= 0 picks the
/// GMREG_NUM_THREADS / hardware default, see util/parallel.h): every worker
/// writes its own disjoint greg_out slice — bitwise identical to the serial
/// pass — and accumulates a private GmSuffStats, merged in fixed shard order
/// (deterministic per thread budget, within ~1e-15 of serial).
void EStep(const GaussianMixture& gm, const float* w, std::int64_t n,
           float* greg_out, GmSuffStats* stats, int num_threads = 0);

/// Double-precision overload used by the standalone fitting utility.
void EStep(const GaussianMixture& gm, const double* w, std::int64_t n,
           double* greg_out, GmSuffStats* stats, int num_threads = 0);

/// M-step (the paper's uptGMParam): closed-form maximizers
///   lambda_k = (2(a-1) + sum_m r_k) / (2b + sum_m r_k w_m^2)   (Eq. 13)
///   pi_k     = (sum_m r_k + alpha_k - 1) / (M + sum_j(alpha_j - 1)) (Eq. 17)
/// applied to `gm` in place, clamped to `bounds`. O(K) arithmetic on the
/// already-reduced statistics — always serial and exactly reproducible
/// given the same `stats`.
void MStep(const GmSuffStats& stats, const GmHyperParams& hyper,
           const GmBounds& bounds, GaussianMixture* gm);

/// Batch EM on a fixed sample (used by tests and the density example):
/// `iterations` alternations of EStep/MStep starting from `init`.
GaussianMixture FitZeroMeanGm(const std::vector<double>& values,
                              const GaussianMixture& init,
                              const GmHyperParams& hyper,
                              const GmBounds& bounds, int iterations);

}  // namespace gmreg

#endif  // GMREG_CORE_EM_H_
