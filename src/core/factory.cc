#include "core/factory.h"

#include <cstdlib>
#include <map>

#include "core/gm_regularizer.h"
#include "reg/dynamic_prior.h"
#include "reg/epgig.h"
#include "reg/norms.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

// Parses "key=value,key=value" into a map; returns false on syntax errors.
bool ParseKeyValues(const std::string& text,
                    std::map<std::string, std::string>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      return false;
    }
    (*out)[item.substr(0, eq)] = item.substr(eq + 1);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

Status ParseDouble(const std::map<std::string, std::string>& kv,
                   const std::string& key, bool required, double* out) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    if (required) {
      return Status::InvalidArgument("missing required key '" + key + "'");
    }
    return Status::Ok();
  }
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("key '%s': '%s' is not a number", key.c_str(),
                  it->second.c_str()));
  }
  *out = v;
  return Status::Ok();
}

Status CheckKnownKeys(const std::map<std::string, std::string>& kv,
                      std::initializer_list<const char*> known) {
  for (const auto& [key, value] : kv) {
    (void)value;
    bool found = false;
    for (const char* k : known) {
      if (key == k) found = true;
    }
    if (!found) {
      return Status::InvalidArgument("unknown key '" + key + "'");
    }
  }
  return Status::Ok();
}

}  // namespace

const std::vector<std::string>& RegularizerKinds() {
  static const auto& kinds = *new std::vector<std::string>{
      "none", "l1", "l2", "elastic", "huber", "gm", "epgig", "dynprior"};
  return kinds;
}

const std::vector<std::string>& RegularizerExampleConfigs() {
  static const auto& configs = *new std::vector<std::string>{
      "none",
      "l1:beta=0.5",
      "l2:beta=1.25",
      "elastic:beta=1,l1_ratio=0.3",
      "huber:beta=1,mu=0.1",
      "gm:gamma=0.001,k=3,warmup=1,im=2,ig=4",
      "epgig:mode=laplace,alpha=2,interval=2",
      "epgig:mode=student,nu=5,tau=2",
      "dynprior:beta=2,schedule=exp,decay=0.8,floor=0.05",
  };
  return configs;
}

Status MakeRegularizerFromConfig(const std::string& config,
                                 std::int64_t num_dims,
                                 std::unique_ptr<Regularizer>* out) {
  std::size_t colon = config.find(':');
  std::string kind = config.substr(0, colon);
  std::map<std::string, std::string> kv;
  if (colon != std::string::npos && colon + 1 >= config.size()) {
    return Status::InvalidArgument("empty key=value list: " + config);
  }
  if (colon != std::string::npos &&
      !ParseKeyValues(config.substr(colon + 1), &kv)) {
    return Status::InvalidArgument("malformed key=value list: " + config);
  }

  if (kind == "none") {
    GMREG_RETURN_IF_ERROR(CheckKnownKeys(kv, {}));
    *out = std::make_unique<NoReg>();
    return Status::Ok();
  }
  if (kind == "l1" || kind == "l2") {
    GMREG_RETURN_IF_ERROR(CheckKnownKeys(kv, {"beta"}));
    double beta = 0.0;
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "beta", /*required=*/true, &beta));
    if (beta < 0.0) return Status::OutOfRange("beta must be >= 0");
    if (kind == "l1") {
      *out = std::make_unique<L1Reg>(beta);
    } else {
      *out = std::make_unique<L2Reg>(beta);
    }
    return Status::Ok();
  }
  if (kind == "elastic") {
    GMREG_RETURN_IF_ERROR(CheckKnownKeys(kv, {"beta", "l1_ratio"}));
    double beta = 0.0, ratio = 0.5;
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "beta", true, &beta));
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "l1_ratio", false, &ratio));
    if (beta < 0.0) return Status::OutOfRange("beta must be >= 0");
    if (ratio < 0.0 || ratio > 1.0) {
      return Status::OutOfRange("l1_ratio must be in [0, 1]");
    }
    *out = std::make_unique<ElasticNetReg>(beta, ratio);
    return Status::Ok();
  }
  if (kind == "huber") {
    GMREG_RETURN_IF_ERROR(CheckKnownKeys(kv, {"beta", "mu"}));
    double beta = 0.0, mu = 0.1;
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "beta", true, &beta));
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "mu", false, &mu));
    if (beta < 0.0) return Status::OutOfRange("beta must be >= 0");
    if (mu <= 0.0) return Status::OutOfRange("mu must be > 0");
    *out = std::make_unique<HuberReg>(beta, mu);
    return Status::Ok();
  }
  if (kind == "gm") {
    GMREG_RETURN_IF_ERROR(CheckKnownKeys(
        kv, {"k", "gamma", "a_factor", "alpha_exp", "min_precision", "init",
             "warmup", "im", "ig", "threads"}));
    if (num_dims <= 0) {
      return Status::FailedPrecondition(
          "gm regularizer requires num_dims > 0 (the parameter count M)");
    }
    GmOptions opts;
    double v = 0.0;
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "gamma", false, &opts.gamma));
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "a_factor", false, &opts.a_factor));
    GMREG_RETURN_IF_ERROR(
        ParseDouble(kv, "alpha_exp", false, &opts.alpha_exponent));
    GMREG_RETURN_IF_ERROR(
        ParseDouble(kv, "min_precision", false, &opts.min_precision));
    if (kv.count("k") != 0u) {
      GMREG_RETURN_IF_ERROR(ParseDouble(kv, "k", true, &v));
      if (v < 1.0 || v > 64.0) {
        return Status::OutOfRange("k must be in [1, 64]");
      }
      opts.num_components = static_cast<int>(v);
    }
    if (auto it = kv.find("init"); it != kv.end()) {
      if (it->second != "identical" && it->second != "linear" &&
          it->second != "proportional") {
        return Status::InvalidArgument("unknown init method '" + it->second +
                                       "'");
      }
      opts.init_method = ParseGmInitMethod(it->second);
    }
    if (kv.count("warmup") != 0u) {
      GMREG_RETURN_IF_ERROR(ParseDouble(kv, "warmup", true, &v));
      if (v < 0.0) return Status::OutOfRange("warmup must be >= 0");
      opts.lazy.warmup_epochs = static_cast<int>(v);
    }
    if (kv.count("im") != 0u) {
      GMREG_RETURN_IF_ERROR(ParseDouble(kv, "im", true, &v));
      if (v < 1.0) return Status::OutOfRange("im must be >= 1");
      opts.lazy.greg_interval = static_cast<std::int64_t>(v);
    }
    if (kv.count("ig") != 0u) {
      GMREG_RETURN_IF_ERROR(ParseDouble(kv, "ig", true, &v));
      if (v < 1.0) return Status::OutOfRange("ig must be >= 1");
      opts.lazy.gm_interval = static_cast<std::int64_t>(v);
    }
    if (kv.count("threads") != 0u) {
      GMREG_RETURN_IF_ERROR(ParseDouble(kv, "threads", true, &v));
      if (v < 0.0 || v > 64.0) {
        return Status::OutOfRange("threads must be in [0, 64]");
      }
      opts.num_threads = static_cast<int>(v);
    }
    if (opts.gamma <= 0.0) return Status::OutOfRange("gamma must be > 0");
    if (opts.min_precision <= 0.0) {
      return Status::OutOfRange("min_precision must be > 0");
    }
    *out = std::make_unique<GmRegularizer>("config", num_dims, opts);
    return Status::Ok();
  }
  if (kind == "epgig") {
    GMREG_RETURN_IF_ERROR(CheckKnownKeys(
        kv, {"mode", "alpha", "nu", "tau", "interval", "warmup"}));
    if (num_dims <= 0) {
      return Status::FailedPrecondition(
          "epgig regularizer requires num_dims > 0 (the parameter count M)");
    }
    EpGigOptions opts;
    if (auto it = kv.find("mode"); it != kv.end()) {
      if (it->second == "laplace") {
        opts.mode = EpGigMode::kLaplace;
      } else if (it->second == "student") {
        opts.mode = EpGigMode::kStudent;
      } else {
        return Status::InvalidArgument("unknown epgig mode '" + it->second +
                                       "'");
      }
    }
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "alpha", false, &opts.alpha));
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "nu", false, &opts.nu));
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "tau", false, &opts.tau));
    if (opts.alpha <= 0.0) return Status::OutOfRange("alpha must be > 0");
    if (opts.nu <= 0.0) return Status::OutOfRange("nu must be > 0");
    if (opts.tau <= 0.0) return Status::OutOfRange("tau must be > 0");
    double v = 0.0;
    if (kv.count("interval") != 0u) {
      GMREG_RETURN_IF_ERROR(ParseDouble(kv, "interval", true, &v));
      if (v < 1.0) return Status::OutOfRange("interval must be >= 1");
      opts.interval = static_cast<std::int64_t>(v);
    }
    if (kv.count("warmup") != 0u) {
      GMREG_RETURN_IF_ERROR(ParseDouble(kv, "warmup", true, &v));
      if (v < 0.0) return Status::OutOfRange("warmup must be >= 0");
      opts.warmup_epochs = static_cast<int>(v);
    }
    *out = std::make_unique<EpGigReg>(num_dims, opts);
    return Status::Ok();
  }
  if (kind == "dynprior") {
    GMREG_RETURN_IF_ERROR(CheckKnownKeys(
        kv, {"beta", "schedule", "decay", "rate", "floor", "period"}));
    DynPriorOptions opts;
    if (auto it = kv.find("schedule"); it != kv.end()) {
      if (it->second == "exp") {
        opts.schedule = DynPriorSchedule::kExp;
      } else if (it->second == "inv") {
        opts.schedule = DynPriorSchedule::kInv;
      } else if (it->second == "cos") {
        opts.schedule = DynPriorSchedule::kCosine;
      } else {
        return Status::InvalidArgument("unknown dynprior schedule '" +
                                       it->second + "'");
      }
    }
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "beta", false, &opts.beta));
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "decay", false, &opts.decay));
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "rate", false, &opts.rate));
    GMREG_RETURN_IF_ERROR(ParseDouble(kv, "floor", false, &opts.floor));
    if (opts.beta < 0.0) return Status::OutOfRange("beta must be >= 0");
    if (opts.decay <= 0.0 || opts.decay > 1.0) {
      return Status::OutOfRange("decay must be in (0, 1]");
    }
    if (opts.rate < 0.0) return Status::OutOfRange("rate must be >= 0");
    if (opts.floor < 0.0 || opts.floor > opts.beta) {
      return Status::OutOfRange("floor must be in [0, beta]");
    }
    double v = 0.0;
    if (kv.count("period") != 0u) {
      GMREG_RETURN_IF_ERROR(ParseDouble(kv, "period", true, &v));
      if (v < 1.0) return Status::OutOfRange("period must be >= 1");
      opts.period = static_cast<int>(v);
    }
    *out = std::make_unique<DynamicPriorReg>(opts);
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown regularizer kind '" + kind + "'");
}

}  // namespace gmreg
