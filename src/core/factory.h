#ifndef GMREG_CORE_FACTORY_H_
#define GMREG_CORE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "reg/regularizer.h"
#include "util/status.h"

namespace gmreg {

/// Builds a regularizer from a config string — the knob a pipeline exposes
/// to its users (the GEMINI stack of paper Sec. I configures components
/// declaratively). Grammar:
///
///   none
///   l1:beta=<v>
///   l2:beta=<v>
///   elastic:beta=<v>,l1_ratio=<v>
///   huber:beta=<v>,mu=<v>
///   gm[:key=<v>,...]   keys: k, gamma, a_factor, alpha_exp, min_precision,
///                            init (identical|linear|proportional),
///                            warmup, im, ig,
///                            threads (0 = process default, 1 = serial)
///   epgig[:key=<v>,...]    keys: mode (laplace|student), alpha, nu, tau,
///                                interval, warmup — the adaptive EP-GIG
///                                sparse prior (reg/epgig.h)
///   dynprior[:key=<v>,...] keys: beta, schedule (exp|inv|cos), decay, rate,
///                                floor, period — the dynamic informative
///                                prior (reg/dynamic_prior.h)
///
/// For "gm" and "epgig", `num_dims` (the parameter count M) is required to
/// instantiate the hyper-parameter rules; other kinds ignore it.
///
/// Examples: "l2:beta=3", "elastic:beta=1,l1_ratio=0.5",
///           "gm:gamma=0.0005,init=linear,warmup=2,im=10,ig=10",
///           "epgig:mode=student,nu=5,tau=2", "dynprior:beta=2,decay=0.8".
///
/// Parsing is pure (thread-safe); the same config string always yields an
/// identically-configured regularizer. Malformed configs return
/// InvalidArgument/OutOfRange rather than aborting, so pipeline front-ends
/// can surface them to users. A trailing colon with no key=value list
/// ("epgig:") is malformed — misspelled-separator typos fail loudly instead
/// of silently building an all-defaults instance.
Status MakeRegularizerFromConfig(const std::string& config,
                                 std::int64_t num_dims,
                                 std::unique_ptr<Regularizer>* out);

/// Every config prefix ("kind") MakeRegularizerFromConfig accepts, in
/// registration order. tests/factory_negative_test.cc iterates this so a
/// newly-registered prior automatically joins the malformed-spec coverage.
const std::vector<std::string>& RegularizerKinds();

/// One canonical, well-formed example config per registered kind (adaptive
/// kinds use small, fast-to-test settings). The property-based invariant
/// suite (tests/regularizer_property_suite.h) and the all-prior checkpoint
/// round-trip tests instantiate every entry, which is what makes the
/// correctness contract automatic for future priors: registering a kind
/// without an example here fails the suite's coverage check.
const std::vector<std::string>& RegularizerExampleConfigs();

}  // namespace gmreg

#endif  // GMREG_CORE_FACTORY_H_
