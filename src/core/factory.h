#ifndef GMREG_CORE_FACTORY_H_
#define GMREG_CORE_FACTORY_H_

#include <memory>
#include <string>

#include "reg/regularizer.h"
#include "util/status.h"

namespace gmreg {

/// Builds a regularizer from a config string — the knob a pipeline exposes
/// to its users (the GEMINI stack of paper Sec. I configures components
/// declaratively). Grammar:
///
///   none
///   l1:beta=<v>
///   l2:beta=<v>
///   elastic:beta=<v>,l1_ratio=<v>
///   huber:beta=<v>,mu=<v>
///   gm[:key=<v>,...]   keys: k, gamma, a_factor, alpha_exp, min_precision,
///                            init (identical|linear|proportional),
///                            warmup, im, ig,
///                            threads (0 = process default, 1 = serial)
///
/// For "gm", `num_dims` (the parameter count M) is required to instantiate
/// the hyper-parameter rules; other kinds ignore it.
///
/// Examples: "l2:beta=3", "elastic:beta=1,l1_ratio=0.5",
///           "gm:gamma=0.0005,init=linear,warmup=2,im=10,ig=10".
///
/// Parsing is pure (thread-safe); the same config string always yields an
/// identically-configured regularizer. Malformed configs return
/// InvalidArgument/OutOfRange rather than aborting, so pipeline front-ends
/// can surface them to users.
Status MakeRegularizerFromConfig(const std::string& config,
                                 std::int64_t num_dims,
                                 std::unique_ptr<Regularizer>* out);

}  // namespace gmreg

#endif  // GMREG_CORE_FACTORY_H_
