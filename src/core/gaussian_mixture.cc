#include "core/gaussian_mixture.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace gmreg {
namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5 * log(2*pi)
}  // namespace

GmInitMethod ParseGmInitMethod(const std::string& name) {
  if (name == "identical") return GmInitMethod::kIdentical;
  if (name == "linear") return GmInitMethod::kLinear;
  if (name == "proportional") return GmInitMethod::kProportional;
  GMREG_CHECK(false) << "unknown GM init method: " << name;
  __builtin_unreachable();
}

const char* GmInitMethodName(GmInitMethod method) {
  switch (method) {
    case GmInitMethod::kIdentical:
      return "identical";
    case GmInitMethod::kLinear:
      return "linear";
    case GmInitMethod::kProportional:
      return "proportional";
  }
  return "?";
}

GaussianMixture::GaussianMixture(std::vector<double> pi,
                                 std::vector<double> lambda)
    : pi_(std::move(pi)), lambda_(std::move(lambda)) {
  Validate();
  RefreshLogCoefficients();
}

GaussianMixture GaussianMixture::Initialize(int num_components,
                                            GmInitMethod method,
                                            double min_precision) {
  GMREG_CHECK_GE(num_components, 1);
  GMREG_CHECK_GT(min_precision, 0.0);
  std::vector<double> pi(static_cast<std::size_t>(num_components),
                         1.0 / num_components);
  std::vector<double> lambda(static_cast<std::size_t>(num_components));
  for (int k = 0; k < num_components; ++k) {
    double value = min_precision;
    switch (method) {
      case GmInitMethod::kIdentical:
        break;
      case GmInitMethod::kLinear:
        // Linearly spaced over [min, K*min].
        if (num_components > 1) {
          value = min_precision +
                  static_cast<double>(k) *
                      (num_components * min_precision - min_precision) /
                      static_cast<double>(num_components - 1);
        }
        break;
      case GmInitMethod::kProportional:
        // Each precision doubles the previous one, starting at min.
        value = min_precision * std::pow(2.0, k);
        break;
    }
    lambda[static_cast<std::size_t>(k)] = value;
  }
  return GaussianMixture(std::move(pi), std::move(lambda));
}

GaussianMixture GaussianMixture::FromSerialized(std::vector<double> pi,
                                                std::vector<double> lambda) {
  GMREG_CHECK_GE(pi.size(), 1u);
  GMREG_CHECK_EQ(pi.size(), lambda.size());
  double total = 0.0;
  for (double p : pi) {
    GMREG_CHECK_GE(p, 0.0);
    total += p;
  }
  GMREG_CHECK_LE(std::abs(total - 1.0), 1e-6)
      << "serialized pi must already be normalized";
  for (double l : lambda) GMREG_CHECK_GT(l, 0.0);
  GaussianMixture gm;
  gm.pi_ = std::move(pi);
  gm.lambda_ = std::move(lambda);
  gm.RefreshLogCoefficients();
  return gm;
}

void GaussianMixture::Set(std::vector<double> pi, std::vector<double> lambda) {
  pi_ = std::move(pi);
  lambda_ = std::move(lambda);
  Validate();
  RefreshLogCoefficients();
}

void GaussianMixture::SetFromArrays(const double* pi, const double* lambda,
                                    int k) {
  GMREG_CHECK_GE(k, 1);
  pi_.assign(pi, pi + k);
  lambda_.assign(lambda, lambda + k);
  Validate();
  RefreshLogCoefficients();
}

void GaussianMixture::Validate() {
  GMREG_CHECK_GE(pi_.size(), 1u);
  GMREG_CHECK_EQ(pi_.size(), lambda_.size());
  double total = 0.0;
  for (double p : pi_) {
    GMREG_CHECK_GE(p, 0.0);
    total += p;
  }
  GMREG_CHECK_GT(total, 0.0);
  // Renormalize so downstream math can rely on sum(pi) == 1 exactly.
  for (double& p : pi_) p /= total;
  for (double l : lambda_) GMREG_CHECK_GT(l, 0.0);
}

void GaussianMixture::RefreshLogCoefficients() {
  log_coef_.resize(pi_.size());
  for (std::size_t k = 0; k < pi_.size(); ++k) {
    // Dead components (pi == 0 after a floor) get -inf coefficient, i.e.
    // zero responsibility.
    log_coef_[k] = (pi_[k] > 0.0 ? std::log(pi_[k]) : -1e300) +
                   0.5 * std::log(lambda_[k]);
  }
}

double GaussianMixture::Density(double x) const {
  return std::exp(LogDensity(x));
}

double GaussianMixture::LogDensity(double x) const {
  double best = -1e300;
  std::size_t kk = pi_.size();
  // log component k = log_coef_k - 0.5*lambda_k*x^2 - 0.5*log(2*pi)
  double acc = 0.0;
  for (std::size_t k = 0; k < kk; ++k) {
    best = std::max(best, log_coef_[k] - 0.5 * lambda_[k] * x * x);
  }
  for (std::size_t k = 0; k < kk; ++k) {
    acc += std::exp(log_coef_[k] - 0.5 * lambda_[k] * x * x - best);
  }
  return best + std::log(acc) - kHalfLog2Pi;
}

void GaussianMixture::Responsibilities(double x, double* r) const {
  std::size_t kk = pi_.size();
  double best = -1e300;
  for (std::size_t k = 0; k < kk; ++k) {
    r[k] = log_coef_[k] - 0.5 * lambda_[k] * x * x;
    best = std::max(best, r[k]);
  }
  double denom = 0.0;
  for (std::size_t k = 0; k < kk; ++k) {
    r[k] = std::exp(r[k] - best);
    denom += r[k];
  }
  for (std::size_t k = 0; k < kk; ++k) r[k] /= denom;
}

double GaussianMixture::RegGradient(double x) const {
  std::size_t kk = pi_.size();
  if (kk == 1) return lambda_[0] * x;
  double r[16];
  std::vector<double> heap;
  double* rp = r;
  if (kk > 16) {
    heap.resize(kk);
    rp = heap.data();
  }
  Responsibilities(x, rp);
  double acc = 0.0;
  for (std::size_t k = 0; k < kk; ++k) acc += rp[k] * lambda_[k];
  return acc * x;
}

int GaussianMixture::EffectiveComponents(double threshold) const {
  int count = 0;
  for (double p : pi_) {
    if (p > threshold) ++count;
  }
  return count;
}

std::string GaussianMixture::ToString() const {
  return "pi=" + FormatVector(pi_, 3) + ", lambda=" + FormatVector(lambda_, 3);
}

}  // namespace gmreg
