#ifndef GMREG_CORE_GAUSSIAN_MIXTURE_H_
#define GMREG_CORE_GAUSSIAN_MIXTURE_H_

#include <string>
#include <vector>

namespace gmreg {

/// How the component precisions are initialized relative to the model
/// parameter's initialization precision (Sec. V-E). `min` below is one
/// tenth of the initialized model-parameter precision, so that the initial
/// regularization is weaker than the weight initialization spread.
enum class GmInitMethod {
  kIdentical,     ///< all precisions = min
  kLinear,        ///< linearly spaced over [min, K*min]  (paper's best)
  kProportional,  ///< geometric: min, 2*min, 4*min, ...
};

/// Parses "identical" / "linear" / "proportional"; aborts otherwise.
GmInitMethod ParseGmInitMethod(const std::string& name);
const char* GmInitMethodName(GmInitMethod method);

/// Zero-mean one-dimensional Gaussian mixture
///   p(x) = sum_k pi_k * N(x | 0, lambda_k)          (paper Eq. 4)
/// parameterized by mixing coefficients pi (summing to 1) and precisions
/// lambda (inverse variances). All model-parameter dimensions are assumed
/// i.i.d. from this mixture (Sec. III-A).
class GaussianMixture {
 public:
  /// pi and lambda must have equal size >= 1; pi must sum to ~1 and be
  /// non-negative; lambda must be positive.
  GaussianMixture(std::vector<double> pi, std::vector<double> lambda);

  /// Uniform mixing coefficients and precisions chosen by `method` from
  /// `min_precision` (Sec. V-E).
  static GaussianMixture Initialize(int num_components, GmInitMethod method,
                                    double min_precision);

  /// Restores parameters bit-exactly as stored — unlike the constructor it
  /// does NOT renormalize pi (a renormalizing division can perturb already-
  /// normalized values by an ulp, which would make a resumed training run
  /// diverge from the uninterrupted one). pi must already sum to 1 within
  /// 1e-6 and satisfy the usual validity rules; aborts otherwise. Used by
  /// the checkpoint path (io/checkpoint.h, GmRegularizer::LoadState).
  static GaussianMixture FromSerialized(std::vector<double> pi,
                                        std::vector<double> lambda);

  int num_components() const { return static_cast<int>(pi_.size()); }
  const std::vector<double>& pi() const { return pi_; }
  const std::vector<double>& lambda() const { return lambda_; }

  /// Cached log(pi_k) + 0.5*log(lambda_k) — the x-independent part of the
  /// component log-densities. Exposed so the K-specialized E-step kernels
  /// (core/em.cc) can replicate Responsibilities() without a per-element
  /// call through the generic loop.
  const std::vector<double>& log_coef() const { return log_coef_; }

  /// Replaces the parameters (revalidates; renormalizes pi).
  void Set(std::vector<double> pi, std::vector<double> lambda);

  /// In-place variant of Set for the per-step M-step (core/em.cc): copies
  /// from caller-owned arrays into the existing vectors (capacity reuse, so
  /// a same-K update performs zero allocations) and then runs the exact
  /// Validate + RefreshLogCoefficients sequence Set runs — results are
  /// bitwise identical to the Set path.
  void SetFromArrays(const double* pi, const double* lambda, int k);

  /// Mixture probability density at x.
  double Density(double x) const;

  /// log p(x); computed via max-shifted log-sum-exp.
  double LogDensity(double x) const;

  /// Responsibilities r_k(x) (paper Eq. 9) into r[0..K). Numerically
  /// stable (log-space softmax).
  void Responsibilities(double x, double* r) const;

  /// d(-log p(x))/dx = sum_k r_k(x) * lambda_k * x — the per-dimension
  /// `greg` (paper Eq. 10, second term).
  double RegGradient(double x) const;

  /// Number of components whose mixing coefficient exceeds `threshold`.
  int EffectiveComponents(double threshold = 0.01) const;

  /// "pi=[...], lambda=[...]" for logging.
  std::string ToString() const;

 private:
  GaussianMixture() = default;  // only via FromSerialized

  void Validate();
  void RefreshLogCoefficients();

  std::vector<double> pi_;
  std::vector<double> lambda_;
  // Cached log(pi_k) + 0.5*log(lambda_k), the x-independent part of the
  // component log-densities (the -x^2*lambda/2 part is added per element).
  std::vector<double> log_coef_;
};

}  // namespace gmreg

#endif  // GMREG_CORE_GAUSSIAN_MIXTURE_H_
