#include "core/gm_regularizer.h"

#include <cmath>
#include <sstream>

#include "tensor/tensor_ops.h"
#include "util/string_util.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace gmreg {
namespace {

// Process-wide lazy-update accounting, shared by every GmRegularizer and
// surfaced through MetricsRegistry snapshots (docs/OBSERVABILITY.md).
struct GmCounters {
  Counter* esteps;
  Counter* msteps;
  Counter* greg_cache_hits;
};

GmCounters& GlobalGmCounters() {
  static GmCounters counters = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return GmCounters{registry.counter("gm.esteps"),
                      registry.counter("gm.msteps"),
                      registry.counter("gm.greg_cache_hits")};
  }();
  return counters;
}

}  // namespace

double MinPrecisionFromInitStdDev(double init_stddev) {
  GMREG_CHECK_GT(init_stddev, 0.0);
  return 1.0 / (init_stddev * init_stddev) / 10.0;
}

GmRegularizer::GmRegularizer(std::string param_name, std::int64_t num_dims,
                             const GmOptions& options)
    : param_name_(std::move(param_name)),
      num_dims_(num_dims),
      options_(options),
      hyper_(GmHyperParams::FromRules(num_dims, options.num_components,
                                      options.gamma, options.a_factor,
                                      options.alpha_exponent)),
      gm_(GaussianMixture::Initialize(options.num_components,
                                      options.init_method,
                                      options.min_precision)),
      greg_({num_dims}) {
  GMREG_CHECK_GT(num_dims, 0);
  options_.lazy.Validate();
}

void GmRegularizer::SetMixture(GaussianMixture gm) {
  options_.num_components = gm.num_components();
  hyper_ = GmHyperParams::FromRules(num_dims_, gm.num_components(),
                                    options_.gamma, options_.a_factor,
                                    options_.alpha_exponent);
  gm_ = std::move(gm);
}

int GmRegularizer::num_threads_resolved() const {
  return ResolveNumThreads(options_.num_threads);
}

void GmRegularizer::CalcRegGrad(const Tensor& w) {
  GMREG_CHECK_EQ(w.size(), num_dims_);
  Stopwatch watch;
  if (estep_executor_ != nullptr) {
    estep_executor_->RunEStep(gm_, w.data(), num_dims_, greg_.data(),
                              /*stats=*/nullptr);
  } else {
    EStep(gm_, w.data(), num_dims_, greg_.data(), /*stats=*/nullptr,
          options_.num_threads);
  }
  estep_seconds_ += watch.ElapsedSeconds();
  ++estep_count_;
  GlobalGmCounters().esteps->Add(1);
}

void GmRegularizer::UptGmParam(const Tensor& w) {
  GMREG_CHECK_EQ(w.size(), num_dims_);
  Stopwatch watch;
  stats_.Reset(gm_.num_components());
  if (estep_executor_ != nullptr) {
    estep_executor_->RunEStep(gm_, w.data(), num_dims_, /*greg_out=*/nullptr,
                              &stats_);
  } else {
    EStep(gm_, w.data(), num_dims_, /*greg_out=*/nullptr, &stats_,
          options_.num_threads);
  }
  MStep(stats_, hyper_, options_.bounds, &gm_);
  mstep_seconds_ += watch.ElapsedSeconds();
  ++mstep_count_;
  GlobalGmCounters().msteps->Add(1);
}

void GmRegularizer::AccumulateGradient(const Tensor& w,
                                       std::int64_t iteration,
                                       std::int64_t epoch, double scale,
                                       Tensor* grad) {
  GMREG_CHECK_EQ(w.size(), num_dims_);
  GMREG_CHECK_EQ(grad->size(), num_dims_);
  // Algorithm 2, lines 4-7: E-step when inside warmup or on the Im grid.
  if (options_.lazy.ShouldUpdateGreg(iteration, epoch)) {
    CalcRegGrad(w);
  } else {
    ++greg_cache_hits_;
    GlobalGmCounters().greg_cache_hits->Add(1);
  }
  // Line 8: use the (possibly cached) greg.
  Axpy(static_cast<float>(scale), greg_, grad);
  // Lines 9-11: M-step when inside warmup or on the Ig grid.
  if (options_.lazy.ShouldUpdateGm(iteration, epoch)) {
    UptGmParam(w);
  }
}

double GmRegularizer::Penalty(const Tensor& w) const {
  GMREG_CHECK_EQ(w.size(), num_dims_);
  const float* wp = w.data();
  // Shard-order reduction: bitwise-reproducible for a given thread budget.
  return ParallelReduce(
      std::int64_t{0}, num_dims_, kEStepGrain, 0.0,
      [&](std::int64_t b, std::int64_t e) {
        double acc = 0.0;
        for (std::int64_t m = b; m < e; ++m) acc -= gm_.LogDensity(wp[m]);
        return acc;
      },
      [](double acc, double partial) { return acc + partial; },
      options_.num_threads);
}

bool GmRegularizer::SaveState(std::string* out) const {
  std::ostringstream oss;
  oss.precision(17);
  int k = gm_.num_components();
  oss << "gmreg-state v2 " << k;
  for (double p : gm_.pi()) oss << " " << p;
  for (double l : gm_.lambda()) oss << " " << l;
  oss << " hyper " << hyper_.a << " " << hyper_.b;
  for (double a : hyper_.alpha) oss << " " << a;
  oss << " counters " << estep_count_ << " " << mstep_count_ << " "
      << greg_cache_hits_ << " " << estep_seconds_ << " " << mstep_seconds_;
  oss << " greg " << num_dims_;
  const float* g = greg_.data();
  for (std::int64_t m = 0; m < num_dims_; ++m) {
    oss << " " << StrFormat("%.9g", static_cast<double>(g[m]));
  }
  *out = oss.str();
  return true;
}

Status GmRegularizer::LoadState(const std::string& text) {
  std::istringstream iss(text);
  std::string magic, version, marker;
  int k = 0;
  if (!(iss >> magic >> version >> k) || magic != "gmreg-state") {
    return Status::InvalidArgument("not a 'gmreg-state' record");
  }
  if (version != "v2") {
    return Status::InvalidArgument("unsupported gmreg-state version '" +
                                   version + "'");
  }
  if (k < 1 || k > 1024) {
    return Status::OutOfRange(
        StrFormat("component count %d outside [1, 1024]", k));
  }
  auto ks = static_cast<std::size_t>(k);
  std::vector<double> pi(ks), lambda(ks), alpha(ks);
  for (double& p : pi) {
    if (!(iss >> p) || !std::isfinite(p) || p < 0.0) {
      return Status::InvalidArgument("bad pi in gmreg-state");
    }
  }
  for (double& l : lambda) {
    if (!(iss >> l) || !std::isfinite(l) || l <= 0.0) {
      return Status::InvalidArgument("bad lambda in gmreg-state");
    }
  }
  double a = 0.0, b = 0.0;
  if (!(iss >> marker >> a >> b) || marker != "hyper" || !std::isfinite(a) ||
      !std::isfinite(b)) {
    return Status::InvalidArgument("bad hyper section in gmreg-state");
  }
  for (double& al : alpha) {
    if (!(iss >> al) || !std::isfinite(al)) {
      return Status::InvalidArgument("bad alpha in gmreg-state");
    }
  }
  std::int64_t esteps = 0, msteps = 0, hits = 0;
  double estep_s = 0.0, mstep_s = 0.0;
  if (!(iss >> marker >> esteps >> msteps >> hits >> estep_s >> mstep_s) ||
      marker != "counters" || esteps < 0 || msteps < 0 || hits < 0) {
    return Status::InvalidArgument("bad counters section in gmreg-state");
  }
  std::int64_t m_dims = 0;
  if (!(iss >> marker >> m_dims) || marker != "greg") {
    return Status::InvalidArgument("bad greg section in gmreg-state");
  }
  if (m_dims != num_dims_) {
    return Status::FailedPrecondition(
        StrFormat("gmreg-state has %lld dims, regularizer has %lld",
                  static_cast<long long>(m_dims),
                  static_cast<long long>(num_dims_)));
  }
  Tensor greg({num_dims_});
  float* g = greg.data();
  for (std::int64_t m = 0; m < num_dims_; ++m) {
    if (!(iss >> g[m]) || !std::isfinite(g[m])) {
      return Status::InvalidArgument("bad greg values in gmreg-state");
    }
  }
  std::string extra;
  if (iss >> extra) {
    return Status::InvalidArgument("trailing garbage in gmreg-state: '" +
                                   extra + "'");
  }
  double pi_total = 0.0;
  for (double p : pi) pi_total += p;
  if (std::abs(pi_total - 1.0) > 1e-6) {
    return Status::OutOfRange("gmreg-state pi is not normalized");
  }
  options_.num_components = k;
  gm_ = GaussianMixture::FromSerialized(std::move(pi), std::move(lambda));
  hyper_.a = a;
  hyper_.b = b;
  hyper_.alpha = std::move(alpha);
  estep_count_ = esteps;
  mstep_count_ = msteps;
  greg_cache_hits_ = hits;
  estep_seconds_ = estep_s;
  mstep_seconds_ = mstep_s;
  greg_ = std::move(greg);
  return Status::Ok();
}

void GmRegularizer::AppendMetrics(const std::string& prefix,
                                  MetricsRecord* record) const {
  record->AddDoubleList(prefix + ".lambda", gm_.lambda());
  record->AddDoubleList(prefix + ".pi", gm_.pi());
  record->AddInt(prefix + ".esteps", estep_count_);
  record->AddInt(prefix + ".msteps", mstep_count_);
  record->AddInt(prefix + ".greg_cache_hits", greg_cache_hits_);
  record->AddDouble(prefix + ".estep_seconds", estep_seconds_);
  record->AddDouble(prefix + ".mstep_seconds", mstep_seconds_);
  double sq = 0.0;
  const float* g = greg_.data();
  for (std::int64_t m = 0; m < num_dims_; ++m) {
    sq += static_cast<double>(g[m]) * static_cast<double>(g[m]);
  }
  record->AddDouble(prefix + ".greg_l2", std::sqrt(sq));
}

}  // namespace gmreg
