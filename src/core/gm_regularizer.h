#ifndef GMREG_CORE_GM_REGULARIZER_H_
#define GMREG_CORE_GM_REGULARIZER_H_

#include <string>

#include "core/em.h"
#include "core/gaussian_mixture.h"
#include "core/hyper.h"
#include "reg/regularizer.h"
#include "util/logging.h"

namespace gmreg {

/// Lazy-update schedule (paper Algorithm 2 / Sec. III-D). During the first
/// `warmup_epochs` (the paper's E) every iteration runs both the E-step and
/// the M-step; afterwards `greg` is recomputed only every `greg_interval`
/// (Im) iterations and the GM parameters only every `gm_interval` (Ig)
/// iterations, with the cached `greg` reused in between.
struct LazySchedule {
  int warmup_epochs = 2;            ///< E
  std::int64_t greg_interval = 1;   ///< Im
  std::int64_t gm_interval = 1;     ///< Ig

  /// Aborts on intervals < 1 (an interval of 0 would divide by zero in the
  /// Should* predicates) or a negative warmup. Called by GmRegularizer at
  /// construction; the factory additionally rejects such configs with a
  /// Status at parse time.
  void Validate() const {
    GMREG_CHECK_GE(warmup_epochs, 0);
    GMREG_CHECK_GE(greg_interval, 1);
    GMREG_CHECK_GE(gm_interval, 1);
  }

  bool ShouldUpdateGreg(std::int64_t iteration, std::int64_t epoch) const {
    return epoch < warmup_epochs || iteration % greg_interval == 0;
  }
  bool ShouldUpdateGm(std::int64_t iteration, std::int64_t epoch) const {
    return epoch < warmup_epochs || iteration % gm_interval == 0;
  }
};

/// All knobs of the adaptive GM regularization, with the paper's defaults.
struct GmOptions {
  int num_components = 4;        ///< initial K (Sec. V-B1: 4 is best)
  double gamma = 0.005;          ///< b = gamma * M
  double a_factor = 0.01;        ///< a = 1 + a_factor * b
  double alpha_exponent = 0.5;   ///< alpha_k = M^alpha_exponent
  GmInitMethod init_method = GmInitMethod::kLinear;
  /// Precision of the smallest initial component. The Sec. V-E rule is one
  /// tenth of the initialized model-parameter precision; callers usually
  /// derive it via MinPrecisionFromInitStdDev.
  double min_precision = 10.0;
  /// Thread budget for the E-step / M-step / Penalty passes: <= 0 uses the
  /// GMREG_NUM_THREADS / hardware default (util/parallel.h), 1 forces the
  /// serial path, > 1 shards the passes deterministically.
  int num_threads = 0;
  LazySchedule lazy;
  GmBounds bounds;
};

/// Sec. V-E rule: min = (1/stddev^2) / 10.
double MinPrecisionFromInitStdDev(double init_stddev);

/// Pluggable execution backend for the fused E-step pass. By default a
/// GmRegularizer runs EStep() in process; installing an executor reroutes
/// both CalcRegGrad (greg refresh) and UptGmParam (suffstat pass) through
/// it — this is how the distributed coordinator (src/dist) offloads the
/// E-step over worker weight slices. Implementations must honor the
/// determinism contract: for a fixed executor configuration the outputs
/// are bitwise reproducible, greg elementwise and the suffstats through a
/// fixed-order merge (docs/DISTRIBUTED.md).
class GmEStepExecutor {
 public:
  virtual ~GmEStepExecutor() = default;

  /// Runs one fused pass of `gm` over the `n` weights at `w`: writes
  /// greg[m] = sum_k r_k lambda_k w_m into `greg_out` (unless null) and
  /// accumulates responsibilities into `stats` (unless null; already
  /// Reset to gm.num_components()).
  virtual void RunEStep(const GaussianMixture& gm, const float* w,
                        std::int64_t n, float* greg_out,
                        GmSuffStats* stats) = 0;
};

/// The paper's adaptive regularization tool for one parameter tensor.
/// Implements Algorithms 1 and 2: each training iteration interleaves
///   E-step   (calResponsibility + calcRegGrad, maybe lazily skipped)
///   greg use (AccumulateGradient adds the cached greg)
///   M-step   (uptGMParam, maybe lazily skipped)
/// with the SGD step performed by the caller (Trainer).
class GmRegularizer : public Regularizer {
 public:
  /// `num_dims` is M, the parameter tensor's element count; it fixes the
  /// hyper-parameters through the automatic rules.
  GmRegularizer(std::string param_name, std::int64_t num_dims,
                const GmOptions& options);

  // Regularizer interface -------------------------------------------------

  /// One interleaved update (Algorithm 2 lines 4-11): possibly refresh
  /// greg / GM parameters per the lazy schedule, then add scale * greg to
  /// `grad`.
  void AccumulateGradient(const Tensor& w, std::int64_t iteration,
                          std::int64_t epoch, double scale,
                          Tensor* grad) override;
  double Penalty(const Tensor& w) const override;
  std::string Name() const override { return "GM Reg"; }

  /// Appends `<prefix>.lambda` / `<prefix>.pi` (the learned mixture, K
  /// entries each), the estep/mstep/cache-hit counters, their cumulative
  /// seconds, and `<prefix>.greg_l2` (L2 norm of the cached regularization
  /// gradient) — the per-regularizer slice of a training trace.
  void AppendMetrics(const std::string& prefix,
                     MetricsRecord* record) const override;

  /// Serializes the full adaptive state as one `gmreg-state v2` line: the
  /// mixture (π, λ), the Dirichlet/Gamma hypers (a, b, α — persisted
  /// verbatim, not re-derived, unlike SetMixture), the lazy-update counters
  /// and cumulative E/M wall-times, and the cached `greg` vector. With all
  /// of these restored, a resumed run replays Algorithm 2 bit-exactly even
  /// mid-interval (the cached greg keeps serving until the next Im tick).
  bool SaveState(std::string* out) const override;

  /// Parses a SaveState line. The instance must have the same num_dims as
  /// the writer (FailedPrecondition otherwise); K may differ from the
  /// configured one (the hypers come from the checkpoint). Rejects
  /// malformed, non-finite, or trailing-garbage input.
  Status LoadState(const std::string& text) override;

  // The tool's key functions (paper Sec. IV) ------------------------------

  /// calResponsibility + calcRegGrad: one E-step pass over w that refreshes
  /// the cached greg (Eqs. 9-10).
  void CalcRegGrad(const Tensor& w);

  /// uptGMParam: recomputes responsibilities over the current w and applies
  /// the EM M-step (Eqs. 13/17). A separate full pass over the parameter
  /// vector, exactly as the paper costs it ("the update of GM parameters
  /// includes calculating the responsibility value as well as calculating
  /// new lambda and pi using the high-dimensional model parameter vector",
  /// Sec. V-F2) — this is why raising Ig alone saves time in Fig. 6.
  void UptGmParam(const Tensor& w);

  /// Warm-starts the mixture (e.g. from a previous run via
  /// core/serialize.h). The Dirichlet/Gamma hyper-parameters are re-derived
  /// for the new component count.
  void SetMixture(GaussianMixture gm);

  /// Installs (or with nullptr removes) an E-step execution backend; not
  /// owned, must outlive the regularizer or be removed first.
  void set_estep_executor(GmEStepExecutor* executor) {
    estep_executor_ = executor;
  }
  GmEStepExecutor* estep_executor() const { return estep_executor_; }

  // Introspection ----------------------------------------------------------

  const GaussianMixture& mixture() const { return gm_; }
  const GmOptions& options() const { return options_; }
  const GmHyperParams& hyper() const { return hyper_; }
  const std::string& param_name() const { return param_name_; }
  std::int64_t num_dims() const { return num_dims_; }
  /// Count of E-step passes actually executed (lazy-update accounting).
  std::int64_t estep_count() const { return estep_count_; }
  /// Count of M-steps actually executed.
  std::int64_t mstep_count() const { return mstep_count_; }
  /// AccumulateGradient calls that reused the cached greg instead of
  /// running an E-step — the work Algorithm 2's Im interval saves. Together
  /// with estep_count() this is the lazy-update cache hit/recompute split.
  std::int64_t greg_cache_hits() const { return greg_cache_hits_; }
  /// Cumulative wall-clock spent in CalcRegGrad (E-step) passes; with
  /// estep_count() this gives benches per-call cost and thread scaling.
  double estep_seconds() const { return estep_seconds_; }
  /// Cumulative wall-clock spent in UptGmParam (M-step) passes.
  double mstep_seconds() const { return mstep_seconds_; }
  /// The thread budget the passes actually run with (options().num_threads
  /// resolved against the GMREG_NUM_THREADS / hardware default).
  int num_threads_resolved() const;
  /// The cached regularization gradient written by the last CalcRegGrad.
  const Tensor& greg() const { return greg_; }

 private:
  std::string param_name_;
  std::int64_t num_dims_;
  GmOptions options_;
  GmHyperParams hyper_;
  GaussianMixture gm_;
  Tensor greg_;        ///< cached regularization gradient
  GmSuffStats stats_;  ///< scratch for the M-step pass
  GmEStepExecutor* estep_executor_ = nullptr;  ///< not owned
  std::int64_t estep_count_ = 0;
  std::int64_t mstep_count_ = 0;
  std::int64_t greg_cache_hits_ = 0;
  double estep_seconds_ = 0.0;
  double mstep_seconds_ = 0.0;
};

}  // namespace gmreg

#endif  // GMREG_CORE_GM_REGULARIZER_H_
