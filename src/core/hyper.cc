#include "core/hyper.h"

#include <cmath>

#include "util/logging.h"

namespace gmreg {

GmHyperParams GmHyperParams::FromRules(std::int64_t num_dims,
                                       int num_components, double gamma,
                                       double a_factor,
                                       double alpha_exponent) {
  GMREG_CHECK_GT(num_dims, 0);
  GMREG_CHECK_GE(num_components, 1);
  GMREG_CHECK_GT(gamma, 0.0);
  GMREG_CHECK_GE(a_factor, 0.0);
  GmHyperParams h;
  auto m = static_cast<double>(num_dims);
  h.b = gamma * m;
  h.a = 1.0 + a_factor * h.b;
  h.alpha.assign(static_cast<std::size_t>(num_components),
                 std::pow(m, alpha_exponent));
  return h;
}

double GmHyperParams::AlphaSumMinusK() const {
  double acc = 0.0;
  for (double a_k : alpha) acc += a_k - 1.0;
  return acc;
}

const std::vector<double>& GammaGrid() {
  static const auto& grid = *new std::vector<double>{
      0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05};
  return grid;
}

}  // namespace gmreg
