#ifndef GMREG_CORE_HYPER_H_
#define GMREG_CORE_HYPER_H_

#include <cstdint>
#include <vector>

namespace gmreg {

/// Hyper-parameters of the Dirichlet prior on pi and the Gamma prior on
/// lambda (paper Sec. II-C), plus the automatic setting rules of
/// Sec. V-B1. These smooth the EM updates so the GM can be learned from a
/// non-stationary stream of intermediate model parameters.
struct GmHyperParams {
  double a = 1.0;              ///< Gamma shape
  double b = 0.0;              ///< Gamma rate
  std::vector<double> alpha;   ///< Dirichlet parameters, one per component

  /// The paper's rules:  b = gamma * M  (gamma from a small grid),
  /// a = 1 + a_factor * b (a_factor 1e-2 or 1e-1; "not so significant"),
  /// alpha_k = M^alpha_exponent (exponent swept in Fig. 4; 0.5 best).
  static GmHyperParams FromRules(std::int64_t num_dims, int num_components,
                                 double gamma, double a_factor,
                                 double alpha_exponent);

  double AlphaSumMinusK() const;  ///< sum_j (alpha_j - 1), Eq. 17 denominator
};

/// The paper's search grid for gamma (Sec. V-B1).
const std::vector<double>& GammaGrid();

}  // namespace gmreg

#endif  // GMREG_CORE_HYPER_H_
