#include "core/merge.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/logging.h"

namespace gmreg {
namespace {

struct Cluster {
  double pi = 0.0;
  double var = 0.0;  // mixture variance of the merged zero-mean components
};

// Merged variance of two zero-mean sub-mixtures is the pi-weighted mean.
Cluster Merge(const Cluster& a, const Cluster& b) {
  Cluster out;
  out.pi = a.pi + b.pi;
  out.var = (a.var * a.pi + b.var * b.pi) / out.pi;
  return out;
}

}  // namespace

namespace {

GaussianMixture MergeOnce(const GaussianMixture& gm, double ratio,
                          double pi_drop);

}  // namespace

GaussianMixture MergeSimilarComponents(const GaussianMixture& gm,
                                       double ratio, double pi_drop) {
  // Merging two components can move the cluster's precision within `ratio`
  // of its next neighbour, so iterate to a fixed point: the merged view has
  // no two components within `ratio` and no component below `pi_drop`.
  GaussianMixture merged = MergeOnce(gm, ratio, pi_drop);
  while (true) {
    GaussianMixture next = MergeOnce(merged, ratio, pi_drop);
    if (next.num_components() == merged.num_components()) return next;
    merged = next;
  }
}

namespace {

GaussianMixture MergeOnce(const GaussianMixture& gm, double ratio,
                          double pi_drop) {
  GMREG_CHECK_GE(ratio, 1.0);
  int kk = gm.num_components();
  // Sweep components in precision order: a component joins the current
  // cluster while its precision is within `ratio` of the cluster's first
  // member; otherwise it starts a new cluster.
  std::vector<int> order(static_cast<std::size_t>(kk));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return gm.lambda()[static_cast<std::size_t>(a)] <
           gm.lambda()[static_cast<std::size_t>(b)];
  });
  std::vector<Cluster> clusters;
  double base_lambda = 0.0;
  for (int idx : order) {
    auto is = static_cast<std::size_t>(idx);
    double l = gm.lambda()[is];
    double p = gm.pi()[is];
    if (clusters.empty() || l / base_lambda > ratio) {
      clusters.push_back(Cluster{});
      base_lambda = l;
    }
    clusters.back() = Merge(clusters.back(), Cluster{p, 1.0 / l});
  }
  // Fold clusters below the mixing-coefficient floor into their nearest
  // neighbour until every remaining cluster is significant (or one is
  // left). Mirrors the paper's observation that K = 4 collapses to 1-2
  // effective components.
  while (clusters.size() > 1) {
    std::size_t tiny = clusters.size();
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i].pi < pi_drop) {
        tiny = i;
        break;
      }
    }
    if (tiny == clusters.size()) break;
    std::size_t neighbour = tiny == 0 ? 1 : tiny - 1;
    clusters[neighbour] = Merge(clusters[neighbour], clusters[tiny]);
    clusters.erase(clusters.begin() + static_cast<long>(tiny));
  }
  std::vector<double> pi_out;
  std::vector<double> lambda_out;
  pi_out.reserve(clusters.size());
  lambda_out.reserve(clusters.size());
  for (const Cluster& c : clusters) {
    pi_out.push_back(c.pi);
    lambda_out.push_back(1.0 / std::max(c.var, 1e-300));
  }
  return GaussianMixture(std::move(pi_out), std::move(lambda_out));
}

}  // namespace
}  // namespace gmreg
