#include "core/merge.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

struct Cluster {
  double pi = 0.0;
  double var = 0.0;  // mixture variance of the merged zero-mean components
};

// Merged variance of two zero-mean sub-mixtures is the pi-weighted mean.
Cluster Merge(const Cluster& a, const Cluster& b) {
  Cluster out;
  out.pi = a.pi + b.pi;
  out.var = (a.var * a.pi + b.var * b.pi) / out.pi;
  return out;
}

}  // namespace

namespace {

GaussianMixture MergeOnce(const GaussianMixture& gm, double ratio,
                          double pi_drop);

}  // namespace

GaussianMixture MergeSimilarComponents(const GaussianMixture& gm,
                                       double ratio, double pi_drop) {
  // Merging two components can move the cluster's precision within `ratio`
  // of its next neighbour, so iterate to a fixed point: the merged view has
  // no two components within `ratio` and no component below `pi_drop`.
  GaussianMixture merged = MergeOnce(gm, ratio, pi_drop);
  while (true) {
    GaussianMixture next = MergeOnce(merged, ratio, pi_drop);
    if (next.num_components() == merged.num_components()) return next;
    merged = next;
  }
}

namespace {

GaussianMixture MergeOnce(const GaussianMixture& gm, double ratio,
                          double pi_drop) {
  GMREG_CHECK_GE(ratio, 1.0);
  int kk = gm.num_components();
  // Sweep components in precision order: a component joins the current
  // cluster while its precision is within `ratio` of the cluster's first
  // member; otherwise it starts a new cluster.
  std::vector<int> order(static_cast<std::size_t>(kk));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return gm.lambda()[static_cast<std::size_t>(a)] <
           gm.lambda()[static_cast<std::size_t>(b)];
  });
  std::vector<Cluster> clusters;
  double base_lambda = 0.0;
  for (int idx : order) {
    auto is = static_cast<std::size_t>(idx);
    double l = gm.lambda()[is];
    double p = gm.pi()[is];
    if (clusters.empty() || l / base_lambda > ratio) {
      clusters.push_back(Cluster{});
      base_lambda = l;
    }
    clusters.back() = Merge(clusters.back(), Cluster{p, 1.0 / l});
  }
  // Fold clusters below the mixing-coefficient floor into their nearest
  // neighbour until every remaining cluster is significant (or one is
  // left). Mirrors the paper's observation that K = 4 collapses to 1-2
  // effective components.
  while (clusters.size() > 1) {
    std::size_t tiny = clusters.size();
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i].pi < pi_drop) {
        tiny = i;
        break;
      }
    }
    if (tiny == clusters.size()) break;
    std::size_t neighbour = tiny == 0 ? 1 : tiny - 1;
    clusters[neighbour] = Merge(clusters[neighbour], clusters[tiny]);
    clusters.erase(clusters.begin() + static_cast<long>(tiny));
  }
  std::vector<double> pi_out;
  std::vector<double> lambda_out;
  pi_out.reserve(clusters.size());
  lambda_out.reserve(clusters.size());
  for (const Cluster& c : clusters) {
    pi_out.push_back(c.pi);
    lambda_out.push_back(1.0 / std::max(c.var, 1e-300));
  }
  return GaussianMixture(std::move(pi_out), std::move(lambda_out));
}

}  // namespace

namespace {

// Parses one whitespace-delimited token from `iss` as a double via strtod,
// which (unlike operator>>) is required to accept the C99 hex-float forms
// %a emits — istream extraction of "0x1.8p+1" stops at the 'x' on some
// standard libraries. Returns false on a malformed token.
bool NextDouble(std::istringstream& iss, double* out) {
  std::string token;
  if (!(iss >> token)) return false;
  const char* s = token.c_str();
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

std::string EncodeGmSuffStats(const GmSuffStats& stats) {
  std::ostringstream oss;
  oss << "gm-suffstats v1 " << stats.resp_sum.size() << " " << stats.count;
  for (double v : stats.resp_sum) oss << " " << StrFormat("%a", v);
  for (double v : stats.resp_w2_sum) oss << " " << StrFormat("%a", v);
  return oss.str();
}

Status DecodeGmSuffStats(const std::string& text, GmSuffStats* out) {
  std::istringstream iss(text);
  std::string magic, version;
  int k = 0;
  long long count = 0;
  if (!(iss >> magic >> version >> k >> count) || magic != "gm-suffstats") {
    return Status::InvalidArgument("not a 'gm-suffstats' record");
  }
  if (version != "v1") {
    return Status::InvalidArgument("unsupported gm-suffstats version '" +
                                   version + "'");
  }
  if (k < 1 || k > 1024) {
    return Status::OutOfRange(
        StrFormat("component count %d outside [1, 1024]", k));
  }
  if (count < 0) {
    return Status::OutOfRange(
        StrFormat("negative element count %lld", count));
  }
  auto ks = static_cast<std::size_t>(k);
  std::vector<double> resp_sum(ks), resp_w2_sum(ks);
  for (double& v : resp_sum) {
    if (!NextDouble(iss, &v) || !std::isfinite(v)) {
      return Status::InvalidArgument("bad resp_sum in gm-suffstats");
    }
  }
  for (double& v : resp_w2_sum) {
    if (!NextDouble(iss, &v) || !std::isfinite(v)) {
      return Status::InvalidArgument("bad resp_w2_sum in gm-suffstats");
    }
  }
  std::string extra;
  if (iss >> extra) {
    return Status::InvalidArgument("trailing garbage in gm-suffstats: '" +
                                   extra + "'");
  }
  out->resp_sum = std::move(resp_sum);
  out->resp_w2_sum = std::move(resp_w2_sum);
  out->count = count;
  return Status::Ok();
}

Status MergeEncodedSuffStats(const std::vector<std::string>& encoded,
                             GmSuffStats* out) {
  GmSuffStats decoded;
  for (std::size_t rank = 0; rank < encoded.size(); ++rank) {
    Status st = DecodeGmSuffStats(encoded[rank], &decoded);
    if (!st.ok()) {
      return Status(st.code(), StrFormat("rank %d: %s",
                                         static_cast<int>(rank),
                                         st.message().c_str()));
    }
    if (decoded.resp_sum.size() != out->resp_sum.size()) {
      return Status::FailedPrecondition(StrFormat(
          "rank %d has %d components, merge target has %d",
          static_cast<int>(rank), static_cast<int>(decoded.resp_sum.size()),
          static_cast<int>(out->resp_sum.size())));
    }
    out->Merge(decoded);
  }
  return Status::Ok();
}

}  // namespace gmreg
