#ifndef GMREG_CORE_MERGE_H_
#define GMREG_CORE_MERGE_H_

#include "core/gaussian_mixture.h"

namespace gmreg {

/// Merges components whose precisions are within a multiplicative factor of
/// each other. During GM learning some of the initial K = 4 components
/// drift onto (nearly) the same precision — the paper observes they
/// "gradually merge" so that one or two effective components remain
/// (Sec. V-B1). Tables IV/V and Fig. 3 report the merged view.
///
/// Merged mixing coefficient: sum of member pi. Merged precision: inverse
/// of the pi-weighted mean variance (the exact variance of the merged
/// zero-mean sub-mixture). Components with pi below `pi_drop` are folded
/// into their nearest neighbour regardless of ratio.
///
/// `ratio` >= 1; components i, j merge when
/// max(l_i,l_j)/min(l_i,l_j) <= ratio.
GaussianMixture MergeSimilarComponents(const GaussianMixture& gm,
                                       double ratio = 1.5,
                                       double pi_drop = 0.01);

}  // namespace gmreg

#endif  // GMREG_CORE_MERGE_H_
