#ifndef GMREG_CORE_MERGE_H_
#define GMREG_CORE_MERGE_H_

#include <string>
#include <vector>

#include "core/em.h"
#include "core/gaussian_mixture.h"
#include "util/status.h"

namespace gmreg {

/// Merges components whose precisions are within a multiplicative factor of
/// each other. During GM learning some of the initial K = 4 components
/// drift onto (nearly) the same precision — the paper observes they
/// "gradually merge" so that one or two effective components remain
/// (Sec. V-B1). Tables IV/V and Fig. 3 report the merged view.
///
/// Merged mixing coefficient: sum of member pi. Merged precision: inverse
/// of the pi-weighted mean variance (the exact variance of the merged
/// zero-mean sub-mixture). Components with pi below `pi_drop` are folded
/// into their nearest neighbour regardless of ratio.
///
/// `ratio` >= 1; components i, j merge when
/// max(l_i,l_j)/min(l_i,l_j) <= ratio.
GaussianMixture MergeSimilarComponents(const GaussianMixture& gm,
                                       double ratio = 1.5,
                                       double pi_drop = 0.01);

// ---------------------------------------------------------------------------
// Suffstat wire format (src/dist).
//
// The distributed E-step ships per-worker GmSuffStats to the coordinator,
// which folds them in fixed rank order (GmSuffStats::Merge). For the global
// update to stay bitwise identical to the in-process merge, the encoding
// must round-trip every double exactly — so values are rendered as C99
// hex-floats (%a), which strtod parses back to the identical bit pattern,
// including negative zeros and subnormals. One line, whitespace-separated:
//
//   gm-suffstats v1 <K> <count> <resp_sum[0..K)> <resp_w2_sum[0..K)>
// ---------------------------------------------------------------------------

/// Serializes `stats` as a single `gm-suffstats v1` line (exact hex-float
/// round trip; see above). Non-finite accumulators are encodable — the
/// decoder, not the encoder, is the validation boundary.
std::string EncodeGmSuffStats(const GmSuffStats& stats);

/// Parses an EncodeGmSuffStats line into `*out` (fully overwritten).
/// Rejects malformed input, non-finite values, K outside [1, 1024], a
/// negative count, and trailing garbage.
Status DecodeGmSuffStats(const std::string& text, GmSuffStats* out);

/// Decodes every line of `encoded` and folds it into `*out` in index
/// (= worker rank) order — the wire-side mirror of the fixed-shard-order
/// merge the parallel E-step does in process. `*out` must already be
/// Reset() to the right component count.
Status MergeEncodedSuffStats(const std::vector<std::string>& encoded,
                             GmSuffStats* out);

}  // namespace gmreg

#endif  // GMREG_CORE_MERGE_H_
