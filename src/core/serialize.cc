#include "core/serialize.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace gmreg {

std::string SerializeMixture(const GaussianMixture& gm) {
  std::ostringstream oss;
  oss << "gm v1 " << gm.num_components();
  oss.precision(17);
  for (double p : gm.pi()) oss << " " << p;
  for (double l : gm.lambda()) oss << " " << l;
  return oss.str();
}

Status DeserializeMixture(const std::string& text, GaussianMixture* out) {
  std::istringstream iss(text);
  std::string magic, version;
  int k = 0;
  if (!(iss >> magic >> version >> k) || magic != "gm" || version != "v1") {
    return Status::InvalidArgument("not a 'gm v1' mixture record");
  }
  if (k < 1 || k > 1024) {
    return Status::OutOfRange(StrFormat("component count %d outside [1, 1024]", k));
  }
  std::vector<double> pi(static_cast<std::size_t>(k));
  std::vector<double> lambda(static_cast<std::size_t>(k));
  for (double& p : pi) {
    if (!(iss >> p)) return Status::InvalidArgument("truncated pi values");
    if (p < 0.0) return Status::OutOfRange("negative mixing coefficient");
  }
  double total = 0.0;
  for (double p : pi) total += p;
  if (total <= 0.0) return Status::OutOfRange("pi sums to zero");
  for (double& l : lambda) {
    if (!(iss >> l)) return Status::InvalidArgument("truncated lambda values");
    if (l <= 0.0) return Status::OutOfRange("non-positive precision");
  }
  *out = GaussianMixture(std::move(pi), std::move(lambda));
  return Status::Ok();
}

Status SaveMixture(const GaussianMixture& gm, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out << SerializeMixture(gm) << "\n";
  return out.good() ? Status::Ok()
                    : Status::Internal("write failed: " + path);
}

Status LoadMixture(const std::string& path, GaussianMixture* out) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  std::string line;
  std::getline(in, line);
  return DeserializeMixture(line, out);
}

}  // namespace gmreg
