#include "core/serialize.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace gmreg {

std::string SerializeMixture(const GaussianMixture& gm) {
  std::ostringstream oss;
  oss << "gm v1 " << gm.num_components();
  oss.precision(17);
  for (double p : gm.pi()) oss << " " << p;
  for (double l : gm.lambda()) oss << " " << l;
  return oss.str();
}

Status DeserializeMixture(const std::string& text, GaussianMixture* out) {
  std::istringstream iss(text);
  std::string magic, version;
  int k = 0;
  if (!(iss >> magic >> version >> k) || magic != "gm" || version != "v1") {
    return Status::InvalidArgument("not a 'gm v1' mixture record");
  }
  if (k < 1 || k > 1024) {
    return Status::OutOfRange(StrFormat("component count %d outside [1, 1024]", k));
  }
  std::vector<double> pi(static_cast<std::size_t>(k));
  std::vector<double> lambda(static_cast<std::size_t>(k));
  for (double& p : pi) {
    if (!(iss >> p)) return Status::InvalidArgument("truncated pi values");
    if (!std::isfinite(p)) {
      return Status::OutOfRange("non-finite mixing coefficient");
    }
    if (p < 0.0) return Status::OutOfRange("negative mixing coefficient");
  }
  double total = 0.0;
  for (double p : pi) total += p;
  if (total <= 0.0) return Status::OutOfRange("pi sums to zero");
  for (double& l : lambda) {
    if (!(iss >> l)) return Status::InvalidArgument("truncated lambda values");
    if (!std::isfinite(l)) return Status::OutOfRange("non-finite precision");
    if (l <= 0.0) return Status::OutOfRange("non-positive precision");
  }
  // Exactly K of each and nothing more: a K that understates the value
  // count (or any other trailing garbage) is a malformed record, not data
  // to silently drop — checkpoint v2 (io/checkpoint.h) builds on this
  // parser being strict.
  std::string extra;
  if (iss >> extra) {
    return Status::InvalidArgument("trailing garbage after 'gm v1' record: '" +
                                   extra + "'");
  }
  *out = GaussianMixture(std::move(pi), std::move(lambda));
  return Status::Ok();
}

Status SaveMixture(const GaussianMixture& gm, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out << SerializeMixture(gm) << "\n";
  return out.good() ? Status::Ok()
                    : Status::Internal("write failed: " + path);
}

Status LoadMixture(const std::string& path, GaussianMixture* out) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  std::string line;
  std::getline(in, line);
  GMREG_RETURN_IF_ERROR(DeserializeMixture(line, out));
  // The record is single-line by construction; extra lines mean the file
  // is not what SaveMixture wrote.
  std::string rest;
  while (std::getline(in, rest)) {
    if (rest.find_first_not_of(" \t\r") != std::string::npos) {
      return Status::InvalidArgument("trailing garbage after mixture line in " +
                                     path);
    }
  }
  return Status::Ok();
}

}  // namespace gmreg
