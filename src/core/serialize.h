#ifndef GMREG_CORE_SERIALIZE_H_
#define GMREG_CORE_SERIALIZE_H_

#include <string>

#include "core/gaussian_mixture.h"
#include "util/status.h"

namespace gmreg {

/// Text serialization of a learned mixture, so a training run's adaptive
/// prior can be persisted, inspected, or warm-started in a later run (the
/// GEMINI deployment scenario of paper Sec. IV, where the tool lives inside
/// a long-running analytics pipeline).
///
/// Format (one line):  gm v1 K pi_1..pi_K lambda_1..lambda_K
/// Values are printed with enough digits to round-trip doubles.
std::string SerializeMixture(const GaussianMixture& gm);

/// Parses SerializeMixture output. Returns InvalidArgument on malformed
/// input, OutOfRange on invalid parameter values.
Status DeserializeMixture(const std::string& text, GaussianMixture* out);

/// Writes the mixture to `path` (single line + newline).
Status SaveMixture(const GaussianMixture& gm, const std::string& path);

/// Reads a mixture from `path`.
Status LoadMixture(const std::string& path, GaussianMixture* out);

}  // namespace gmreg

#endif  // GMREG_CORE_SERIALIZE_H_
