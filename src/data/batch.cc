#include "data/batch.h"

#include <numeric>

#include "util/logging.h"

namespace gmreg {

BatchIterator::BatchIterator(std::int64_t num_samples, std::int64_t batch_size,
                             Rng* rng)
    : order_(static_cast<std::size_t>(num_samples)),
      batch_size_(batch_size),
      rng_(rng) {
  GMREG_CHECK_GT(num_samples, 0);
  GMREG_CHECK_GT(batch_size, 0);
  GMREG_CHECK(rng != nullptr);
  std::iota(order_.begin(), order_.end(), 0);
  Reshuffle();
}

std::int64_t BatchIterator::NumBatches() const {
  auto n = static_cast<std::int64_t>(order_.size());
  return (n + batch_size_ - 1) / batch_size_;
}

void BatchIterator::Reshuffle() {
  rng_->Shuffle(order_);
  cursor_ = 0;
}

const std::vector<int>& BatchIterator::Next() {
  auto n = static_cast<std::int64_t>(order_.size());
  std::int64_t end = std::min(cursor_ + batch_size_, n);
  batch_.assign(order_.begin() + cursor_, order_.begin() + end);
  cursor_ = end;
  if (cursor_ >= n) Reshuffle();
  return batch_;
}

}  // namespace gmreg
