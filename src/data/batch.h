#ifndef GMREG_DATA_BATCH_H_
#define GMREG_DATA_BATCH_H_

#include <vector>

#include "util/rng.h"

namespace gmreg {

/// Yields shuffled mini-batches of sample indices, one epoch at a time.
/// `B` in the paper's Algorithm 2 — the number of mini-batches per epoch —
/// is NumBatches().
class BatchIterator {
 public:
  /// num_samples > 0, 0 < batch_size. The final batch of an epoch may be
  /// smaller when batch_size does not divide num_samples.
  BatchIterator(std::int64_t num_samples, std::int64_t batch_size, Rng* rng);

  /// Number of mini-batches per epoch (ceil division).
  std::int64_t NumBatches() const;

  /// Returns the next mini-batch; reshuffles automatically at epoch
  /// boundaries.
  const std::vector<int>& Next();

  /// True when the batch just returned completed an epoch.
  bool EpochDone() const { return cursor_ == 0; }

 private:
  void Reshuffle();

  std::vector<int> order_;
  std::vector<int> batch_;
  std::int64_t batch_size_;
  std::int64_t cursor_ = 0;
  Rng* rng_;
};

}  // namespace gmreg

#endif  // GMREG_DATA_BATCH_H_
