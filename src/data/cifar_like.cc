#include "data/cifar_like.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "util/logging.h"

namespace gmreg {
namespace {

// Per-class appearance model: two oriented gratings plus a colored patch at
// a class-specific location. Classes are separable by a conv net but not by
// trivial per-pixel statistics once noise and shifts are added.
struct ClassTemplate {
  double freq_a, angle_a, phase_a;
  double freq_b, angle_b, phase_b;
  double channel_gain[3];
  int patch_row, patch_col, patch_size;
  double patch_color[3];
};

ClassTemplate SampleTemplate(Rng* rng, int height, int width) {
  ClassTemplate t;
  t.freq_a = rng->NextUniform(0.3, 1.2);
  t.angle_a = rng->NextUniform(0.0, M_PI);
  t.phase_a = rng->NextUniform(0.0, 2.0 * M_PI);
  t.freq_b = rng->NextUniform(0.3, 1.2);
  t.angle_b = rng->NextUniform(0.0, M_PI);
  t.phase_b = rng->NextUniform(0.0, 2.0 * M_PI);
  for (double& g : t.channel_gain) g = rng->NextUniform(0.4, 1.0);
  t.patch_size = std::max(2, height / 5);
  t.patch_row = static_cast<int>(
      rng->NextBounded(static_cast<std::uint32_t>(height - t.patch_size)));
  t.patch_col = static_cast<int>(
      rng->NextBounded(static_cast<std::uint32_t>(width - t.patch_size)));
  for (double& c : t.patch_color) c = rng->NextUniform(-1.0, 1.0);
  return t;
}

// Writes one instance of class `t` into img[c][h][w] (contiguous CHW).
void RenderInstance(const ClassTemplate& t, int channels, int height,
                    int width, int shift_r, int shift_c, double jitter,
                    double pixel_noise, double signal_gain, Rng* rng,
                    float* img) {
  double ca = std::cos(t.angle_a), sa = std::sin(t.angle_a);
  double cb = std::cos(t.angle_b), sb = std::sin(t.angle_b);
  for (int c = 0; c < channels; ++c) {
    double gain = t.channel_gain[c % 3] * jitter * signal_gain;
    for (int h = 0; h < height; ++h) {
      for (int w = 0; w < width; ++w) {
        double r = h + shift_r;
        double col = w + shift_c;
        double grating =
            std::sin(t.freq_a * (ca * r + sa * col) + t.phase_a) +
            0.7 * std::sin(t.freq_b * (cb * r + sb * col) + t.phase_b);
        double value = gain * grating;
        int pr = h - t.patch_row - shift_r;
        int pc = w - t.patch_col - shift_c;
        if (pr >= 0 && pr < t.patch_size && pc >= 0 && pc < t.patch_size) {
          value += t.patch_color[c % 3] * signal_gain;
        }
        value += rng->NextGaussian(0.0, pixel_noise);
        img[(c * height + h) * width + w] = static_cast<float>(value);
      }
    }
  }
}

ImageDataset Generate(const CifarLikeSpec& spec,
                      const std::vector<ClassTemplate>& templates,
                      int num_samples, Rng* rng, const char* name) {
  ImageDataset out;
  out.name = name;
  out.num_classes = spec.num_classes;
  out.images = Tensor({num_samples, 3, spec.height, spec.width});
  out.labels.resize(static_cast<std::size_t>(num_samples));
  std::int64_t chw =
      3LL * spec.height * spec.width;
  for (int i = 0; i < num_samples; ++i) {
    int label = static_cast<int>(
        rng->NextBounded(static_cast<std::uint32_t>(spec.num_classes)));
    int shift_r = static_cast<int>(rng->NextBounded(
                      static_cast<std::uint32_t>(2 * spec.max_shift + 1))) -
                  spec.max_shift;
    int shift_c = static_cast<int>(rng->NextBounded(
                      static_cast<std::uint32_t>(2 * spec.max_shift + 1))) -
                  spec.max_shift;
    double jitter = rng->NextUniform(0.8, 1.2);
    RenderInstance(templates[static_cast<std::size_t>(label)], 3, spec.height,
                   spec.width, shift_r, shift_c, jitter, spec.pixel_noise,
                   spec.signal_gain, rng, out.images.data() + i * chw);
    // Label noise caps the reachable accuracy and gives a high-capacity
    // network something to (over)fit, as natural-image noise does.
    if (rng->NextBernoulli(spec.label_noise)) {
      label = static_cast<int>(
          rng->NextBounded(static_cast<std::uint32_t>(spec.num_classes)));
    }
    out.labels[static_cast<std::size_t>(i)] = label;
  }
  return out;
}

}  // namespace

CifarLikePair MakeCifarLike(const CifarLikeSpec& spec, std::uint64_t seed) {
  GMREG_CHECK_GT(spec.num_train, 0);
  GMREG_CHECK_GT(spec.num_test, 0);
  GMREG_CHECK_GE(spec.height, 8);
  GMREG_CHECK_GE(spec.width, 8);
  Rng rng(seed ^ 0x5f3759df9e3779b9ULL);
  std::vector<ClassTemplate> templates;
  templates.reserve(static_cast<std::size_t>(spec.num_classes));
  for (int c = 0; c < spec.num_classes; ++c) {
    templates.push_back(SampleTemplate(&rng, spec.height, spec.width));
  }
  CifarLikePair pair;
  pair.train = Generate(spec, templates, spec.num_train, &rng, "cifar-like-train");
  pair.test = Generate(spec, templates, spec.num_test, &rng, "cifar-like-test");

  // Per-pixel mean subtraction with training-set statistics (paper, Sec. V-A
  // for ResNet). Applied to both splits.
  std::int64_t chw = pair.train.images.size() / pair.train.num_samples();
  std::vector<double> mean(static_cast<std::size_t>(chw), 0.0);
  const float* tr = pair.train.images.data();
  for (std::int64_t i = 0; i < pair.train.num_samples(); ++i) {
    for (std::int64_t p = 0; p < chw; ++p) {
      mean[static_cast<std::size_t>(p)] += tr[i * chw + p];
    }
  }
  for (double& v : mean) v /= static_cast<double>(pair.train.num_samples());
  auto subtract = [&](ImageDataset* d) {
    float* img = d->images.data();
    for (std::int64_t i = 0; i < d->num_samples(); ++i) {
      for (std::int64_t p = 0; p < chw; ++p) {
        img[i * chw + p] -=
            static_cast<float>(mean[static_cast<std::size_t>(p)]);
      }
    }
  };
  subtract(&pair.train);
  subtract(&pair.test);
  return pair;
}

void GatherImageBatch(const ImageDataset& data, const std::vector<int>& indices,
                      bool augment, int pad, Rng* rng, Tensor* out,
                      std::vector<int>* labels) {
  std::int64_t c = data.channels();
  std::int64_t h = data.height();
  std::int64_t w = data.width();
  std::int64_t chw = c * h * w;
  auto b = static_cast<std::int64_t>(indices.size());
  GMREG_CHECK_EQ(out->rank(), 4);
  GMREG_CHECK_EQ(out->dim(0), b);
  labels->clear();
  labels->reserve(indices.size());
  for (std::int64_t i = 0; i < b; ++i) {
    int row = indices[static_cast<std::size_t>(i)];
    labels->push_back(data.labels[static_cast<std::size_t>(row)]);
    const float* src = data.images.data() + row * chw;
    float* dst = out->data() + i * chw;
    if (!augment) {
      std::memcpy(dst, src, static_cast<std::size_t>(chw) * sizeof(float));
      continue;
    }
    // Pad-and-crop: offsets in [-pad, pad]; out-of-range source pixels are
    // zero. Horizontal flip with probability 1/2.
    GMREG_CHECK(rng != nullptr);
    int dr = static_cast<int>(
                 rng->NextBounded(static_cast<std::uint32_t>(2 * pad + 1))) -
             pad;
    int dc = static_cast<int>(
                 rng->NextBounded(static_cast<std::uint32_t>(2 * pad + 1))) -
             pad;
    bool flip = rng->NextBernoulli(0.5);
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t r = 0; r < h; ++r) {
        for (std::int64_t col = 0; col < w; ++col) {
          std::int64_t sr = r + dr;
          std::int64_t sc = (flip ? (w - 1 - col) : col) + dc;
          float v = 0.0f;
          if (sr >= 0 && sr < h && sc >= 0 && sc < w) {
            v = src[(ch * h + sr) * w + sc];
          }
          dst[(ch * h + r) * w + col] = v;
        }
      }
    }
  }
}

void GatherTabularBatch(const Dataset& data, const std::vector<int>& indices,
                        Tensor* out, std::vector<int>* labels) {
  std::int64_t m = data.num_features();
  auto b = static_cast<std::int64_t>(indices.size());
  GMREG_CHECK_EQ(out->rank(), 2);
  GMREG_CHECK_EQ(out->dim(0), b);
  GMREG_CHECK_EQ(out->dim(1), m);
  labels->clear();
  labels->reserve(indices.size());
  for (std::int64_t i = 0; i < b; ++i) {
    int row = indices[static_cast<std::size_t>(i)];
    labels->push_back(data.labels[static_cast<std::size_t>(row)]);
    std::memcpy(out->data() + i * m, data.features.data() + row * m,
                static_cast<std::size_t>(m) * sizeof(float));
  }
}

}  // namespace gmreg
