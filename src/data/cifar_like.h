#ifndef GMREG_DATA_CIFAR_LIKE_H_
#define GMREG_DATA_CIFAR_LIKE_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/rng.h"

namespace gmreg {

/// Configuration for the procedural CIFAR-10 stand-in.
///
/// The real CIFAR-10 (60k 32x32x3 natural images) is unavailable offline, so
/// we synthesize a 10-class image set with the properties that drive the
/// paper's regularization experiments: class-conditional structure a conv
/// net can learn (per-class oriented gratings + colored patches), instance
/// variation (random shifts, color jitter) and pixel noise that a
/// high-capacity model can overfit.
struct CifarLikeSpec {
  int num_train = 2000;
  int num_test = 1000;
  int height = 16;       ///< paper: 32; default reduced for single-core CPU
  int width = 16;
  int num_classes = 10;
  double pixel_noise = 1.1;   ///< per-pixel Gaussian noise stddev
  double label_noise = 0.04;  ///< fraction of training/test labels flipped
  int max_shift = 2;          ///< instance translation range (pixels)
  double signal_gain = 0.8;   ///< amplitude of the class-specific structure
};

/// Train/test pair generated from one spec.
struct CifarLikePair {
  ImageDataset train;
  ImageDataset test;
};

/// Generates the dataset; deterministic in (spec, seed). Images are
/// per-pixel mean-subtracted over the training set, as the paper does for
/// ResNet inputs.
CifarLikePair MakeCifarLike(const CifarLikeSpec& spec, std::uint64_t seed);

/// Copies the images at `indices` into `out` (shape [B, C, H, W], allocated
/// by the callee) and their labels into `labels`. When `augment` is true,
/// applies the standard pad-and-crop plus horizontal-flip augmentation the
/// paper uses for ResNet (pad `pad` pixels, random crop back, flip w.p. 0.5).
void GatherImageBatch(const ImageDataset& data, const std::vector<int>& indices,
                      bool augment, int pad, Rng* rng, Tensor* out,
                      std::vector<int>* labels);

/// Copies the rows of `data` at `indices` into `out` ([B, M]) and labels.
void GatherTabularBatch(const Dataset& data, const std::vector<int>& indices,
                        Tensor* out, std::vector<int>* labels);

}  // namespace gmreg

#endif  // GMREG_DATA_CIFAR_LIKE_H_
