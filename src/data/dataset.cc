#include "data/dataset.h"

#include <cstring>

namespace gmreg {

Dataset SelectRows(const Dataset& d, const std::vector<int>& indices) {
  Dataset out;
  out.name = d.name;
  out.num_classes = d.num_classes;
  std::int64_t m = d.num_features();
  out.features = Tensor({static_cast<std::int64_t>(indices.size()), m});
  out.labels.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    int row = indices[i];
    GMREG_CHECK_GE(row, 0);
    GMREG_CHECK_LT(row, d.num_samples());
    std::memcpy(out.features.data() + static_cast<std::int64_t>(i) * m,
                d.features.data() + static_cast<std::int64_t>(row) * m,
                static_cast<std::size_t>(m) * sizeof(float));
    out.labels.push_back(d.labels[static_cast<std::size_t>(row)]);
  }
  return out;
}

ImageDataset SelectImages(const ImageDataset& d,
                          const std::vector<int>& indices) {
  ImageDataset out;
  out.name = d.name;
  out.num_classes = d.num_classes;
  std::int64_t chw = d.channels() * d.height() * d.width();
  out.images = Tensor({static_cast<std::int64_t>(indices.size()),
                       d.channels(), d.height(), d.width()});
  out.labels.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    int row = indices[i];
    GMREG_CHECK_GE(row, 0);
    GMREG_CHECK_LT(row, d.num_samples());
    std::memcpy(out.images.data() + static_cast<std::int64_t>(i) * chw,
                d.images.data() + static_cast<std::int64_t>(row) * chw,
                static_cast<std::size_t>(chw) * sizeof(float));
    out.labels.push_back(d.labels[static_cast<std::size_t>(row)]);
  }
  return out;
}

std::vector<int> ClassCounts(const std::vector<int>& labels, int num_classes) {
  std::vector<int> counts(static_cast<std::size_t>(num_classes), 0);
  for (int y : labels) {
    GMREG_CHECK_GE(y, 0);
    GMREG_CHECK_LT(y, num_classes);
    ++counts[static_cast<std::size_t>(y)];
  }
  return counts;
}

}  // namespace gmreg
