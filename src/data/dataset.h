#ifndef GMREG_DATA_DATASET_H_
#define GMREG_DATA_DATASET_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace gmreg {

/// Fully-preprocessed tabular dataset: dense [N, M] float features plus
/// integer class labels. Produced by Preprocessor from TabularData.
struct Dataset {
  std::string name;
  Tensor features;          ///< shape [N, M]
  std::vector<int> labels;  ///< size N, values in [0, num_classes)
  int num_classes = 2;

  std::int64_t num_samples() const { return features.dim(0); }
  std::int64_t num_features() const { return features.dim(1); }
};

/// Image classification dataset (NCHW layout), e.g. the CIFAR-10 stand-in.
struct ImageDataset {
  std::string name;
  Tensor images;            ///< shape [N, C, H, W]
  std::vector<int> labels;  ///< size N
  int num_classes = 10;

  std::int64_t num_samples() const { return images.dim(0); }
  std::int64_t channels() const { return images.dim(1); }
  std::int64_t height() const { return images.dim(2); }
  std::int64_t width() const { return images.dim(3); }
};

/// Extracts the rows of `d` at `indices` (copying).
Dataset SelectRows(const Dataset& d, const std::vector<int>& indices);

/// Extracts the images of `d` at `indices` (copying).
ImageDataset SelectImages(const ImageDataset& d,
                          const std::vector<int>& indices);

/// Fraction of labels equal to class 1..C-1 etc.; returns per-class counts.
std::vector<int> ClassCounts(const std::vector<int>& labels, int num_classes);

}  // namespace gmreg

#endif  // GMREG_DATA_DATASET_H_
