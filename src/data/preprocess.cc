#include "data/preprocess.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/string_util.h"

namespace gmreg {

Status Preprocessor::Fit(const TabularData& raw,
                         const std::vector<int>& train_indices) {
  GMREG_RETURN_IF_ERROR(raw.Validate());
  if (train_indices.empty()) {
    return Status::InvalidArgument("Fit requires at least one training row");
  }
  stats_.assign(raw.columns.size(), ColumnStats{});
  for (std::size_t c = 0; c < raw.columns.size(); ++c) {
    const Column& col = raw.columns[c];
    if (col.type != ColumnType::kContinuous) continue;
    double sum = 0.0;
    double sum_sq = 0.0;
    std::int64_t count = 0;
    for (int row : train_indices) {
      auto r = static_cast<std::size_t>(row);
      if (col.missing[r]) continue;
      sum += col.values[r];
      sum_sq += col.values[r] * col.values[r];
      ++count;
    }
    ColumnStats& st = stats_[c];
    if (count > 0) {
      st.mean = sum / static_cast<double>(count);
      double var = sum_sq / static_cast<double>(count) - st.mean * st.mean;
      st.stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
    } else {
      st.mean = 0.0;
      st.stddev = 1.0;
    }
  }
  fitted_ = true;
  return Status::Ok();
}

Dataset Preprocessor::Transform(const TabularData& raw,
                                const std::vector<int>& indices) const {
  GMREG_CHECK(fitted_) << "Transform called before Fit";
  GMREG_CHECK_EQ(stats_.size(), raw.columns.size());
  std::int64_t n = static_cast<std::int64_t>(indices.size());
  std::int64_t m = raw.EncodedWidth();
  Dataset out;
  out.name = raw.name;
  out.num_classes = 2;
  out.features = Tensor({n, m});
  out.labels.reserve(indices.size());
  for (std::int64_t i = 0; i < n; ++i) {
    auto row = static_cast<std::size_t>(indices[static_cast<std::size_t>(i)]);
    float* dst = out.features.data() + i * m;
    std::int64_t offset = 0;
    for (std::size_t c = 0; c < raw.columns.size(); ++c) {
      const Column& col = raw.columns[c];
      if (col.type == ColumnType::kContinuous) {
        // Missing continuous values are imputed with the train mean, which
        // standardizes to exactly zero.
        double v = col.missing[row] ? stats_[c].mean : col.values[row];
        dst[offset] =
            static_cast<float>((v - stats_[c].mean) / stats_[c].stddev);
        offset += 1;
      } else {
        // One-hot; generators reserve the last category id for "missing".
        int id = col.missing[row] ? col.cardinality - 1
                                  : static_cast<int>(col.values[row]);
        for (int k = 0; k < col.cardinality; ++k) {
          dst[offset + k] = (k == id) ? 1.0f : 0.0f;
        }
        offset += col.cardinality;
      }
    }
    GMREG_CHECK_EQ(offset, m);
    out.labels.push_back(raw.labels[row]);
  }
  return out;
}

Dataset Preprocessor::FitTransformAll(const TabularData& raw) {
  std::vector<int> all(static_cast<std::size_t>(raw.num_samples()));
  std::iota(all.begin(), all.end(), 0);
  Status s = Fit(raw, all);
  GMREG_CHECK(s.ok()) << s.ToString();
  return Transform(raw, all);
}

}  // namespace gmreg
