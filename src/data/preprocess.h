#ifndef GMREG_DATA_PREPROCESS_H_
#define GMREG_DATA_PREPROCESS_H_

#include <vector>

#include "data/dataset.h"
#include "data/tabular.h"
#include "util/status.h"

namespace gmreg {

/// Implements the paper's preprocessing (Sec. V-A): one-hot encoding of
/// categorical features, zero-mean/unit-variance standardization of
/// continuous features, mean imputation for missing continuous values, and
/// a dedicated category for missing categorical values.
///
/// Statistics (means/variances/imputation values) are fit on a training
/// index set only, then applied to any subset — preventing test-set leakage.
class Preprocessor {
 public:
  Preprocessor() = default;

  /// Computes per-column statistics from the rows of `raw` at
  /// `train_indices`. Must be called before Transform.
  Status Fit(const TabularData& raw, const std::vector<int>& train_indices);

  /// Encodes the rows of `raw` at `indices` into a dense Dataset using the
  /// fitted statistics.
  Dataset Transform(const TabularData& raw,
                    const std::vector<int>& indices) const;

  /// Fit on all rows, transform all rows — convenience for quickstarts.
  Dataset FitTransformAll(const TabularData& raw);

  bool fitted() const { return fitted_; }

 private:
  struct ColumnStats {
    double mean = 0.0;    // continuous: train mean (also imputation value)
    double stddev = 1.0;  // continuous: train standard deviation
  };

  std::vector<ColumnStats> stats_;
  bool fitted_ = false;
};

}  // namespace gmreg

#endif  // GMREG_DATA_PREPROCESS_H_
