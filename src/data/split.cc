#include "data/split.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace gmreg {
namespace {

// Groups sample indices by class label and shuffles each group.
std::map<int, std::vector<int>> ShuffledClassGroups(
    const std::vector<int>& labels, Rng* rng) {
  std::map<int, std::vector<int>> groups;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    groups[labels[i]].push_back(static_cast<int>(i));
  }
  for (auto& [label, indices] : groups) {
    (void)label;
    rng->Shuffle(indices);
  }
  return groups;
}

}  // namespace

TrainTestIndices StratifiedSplit(const std::vector<int>& labels,
                                 double test_fraction, Rng* rng) {
  GMREG_CHECK_GT(test_fraction, 0.0);
  GMREG_CHECK_LT(test_fraction, 1.0);
  TrainTestIndices out;
  for (auto& [label, indices] : ShuffledClassGroups(labels, rng)) {
    (void)label;
    auto test_count = static_cast<std::size_t>(
        static_cast<double>(indices.size()) * test_fraction + 0.5);
    // Keep at least one sample on each side when the class allows it.
    if (test_count == 0 && indices.size() > 1) test_count = 1;
    if (test_count == indices.size() && indices.size() > 1) --test_count;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      (i < test_count ? out.test : out.train).push_back(indices[i]);
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

std::vector<TrainTestIndices> StratifiedKFold(const std::vector<int>& labels,
                                              int num_folds, Rng* rng) {
  GMREG_CHECK_GE(num_folds, 2);
  std::vector<std::vector<int>> folds(static_cast<std::size_t>(num_folds));
  for (auto& [label, indices] : ShuffledClassGroups(labels, rng)) {
    (void)label;
    // Deal samples round-robin so every fold gets a near-equal share of
    // every class.
    for (std::size_t i = 0; i < indices.size(); ++i) {
      folds[i % static_cast<std::size_t>(num_folds)].push_back(indices[i]);
    }
  }
  std::vector<TrainTestIndices> rounds(static_cast<std::size_t>(num_folds));
  for (int f = 0; f < num_folds; ++f) {
    auto& round = rounds[static_cast<std::size_t>(f)];
    round.test = folds[static_cast<std::size_t>(f)];
    for (int g = 0; g < num_folds; ++g) {
      if (g == f) continue;
      const auto& fold = folds[static_cast<std::size_t>(g)];
      round.train.insert(round.train.end(), fold.begin(), fold.end());
    }
    std::sort(round.train.begin(), round.train.end());
    std::sort(round.test.begin(), round.test.end());
  }
  return rounds;
}

}  // namespace gmreg
