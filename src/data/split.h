#ifndef GMREG_DATA_SPLIT_H_
#define GMREG_DATA_SPLIT_H_

#include <vector>

#include "util/rng.h"

namespace gmreg {

/// Train/test index pair produced by a stratified split.
struct TrainTestIndices {
  std::vector<int> train;
  std::vector<int> test;
};

/// Stratified train/test split: each class contributes `test_fraction` of
/// its samples to the test set (rounded), preserving class ratios — the
/// paper's "stratified sampling with a 80-20 train test split" (Sec. V-C).
TrainTestIndices StratifiedSplit(const std::vector<int>& labels,
                                 double test_fraction, Rng* rng);

/// Stratified k-fold cross-validation indices; fold i is the validation set
/// of round i, the remaining folds form the training set. Used to pick the
/// best regularization strength per the paper's CV protocol.
std::vector<TrainTestIndices> StratifiedKFold(const std::vector<int>& labels,
                                              int num_folds, Rng* rng);

}  // namespace gmreg

#endif  // GMREG_DATA_SPLIT_H_
