#include "data/synthetic.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/rng.h"

namespace gmreg {
namespace {

std::vector<int> Cards(int count, int cardinality) {
  return std::vector<int>(static_cast<std::size_t>(count), cardinality);
}

// Table II stand-ins. Encoded widths match the paper's "# Features" column
// exactly; label_noise is calibrated so the Bayes accuracy sits just above
// the paper's best reported accuracy for each dataset.
std::vector<TabularSpec> BuildUciSpecs() {
  std::vector<TabularSpec> specs;
  auto add = [&](std::string name, int n, int cont, std::vector<int> cards,
                 double missing, double noise) {
    TabularSpec s;
    s.name = std::move(name);
    s.num_samples = n;
    s.num_continuous = cont;
    s.categorical_cards = std::move(cards);
    s.missing_rate = missing;
    s.label_noise = noise;
    specs.push_back(std::move(s));
  };
  add("breast-canc", 699, 0, Cards(9, 9), 0.00, 0.020);         // 81 cat
  add("breast-canc-dia", 569, 30, {}, 0.00, 0.012);             // 30 cont
  add("breast-canc-pro", 198, 33, {}, 0.00, 0.120);             // 33 cont
  add("climate-model", 540, 18, {}, 0.00, 0.022);               // 18 cont
  add("congress-voting", 435, 0, Cards(16, 2), 0.00, 0.015);    // 32 cat
  add("conn-sonar", 208, 60, {}, 0.00, 0.130);                  // 60 cont
  // Sonar returns concentrate discriminative energy in a few frequency
  // bands: a handful of very strong dims over a noisy floor.
  specs.back().strong_fraction = 0.08;
  specs.back().strong_min = 2.5;
  specs.back().strong_max = 4.0;
  add("credit-approval", 690, 6,
      {2, 3, 4, 9, 4, 5, 3, 2, 4}, 0.05, 0.100);                // 42 comb
  add("cylindar-bands", 541, 18, Cards(15, 5), 0.08, 0.180);    // 93 comb
  add("hepatitis", 155, 6, Cards(14, 2), 0.15, 0.080);          // 34 comb
  add("horse-colic", 368, 10, Cards(12, 4), 0.20, 0.110);       // 58 comb
  add("ionosphere", 351, 31, {2}, 0.00, 0.060);                 // 33 comb
  return specs;
}

const std::vector<TabularSpec>& AllUciSpecs() {
  static const auto& specs = *new std::vector<TabularSpec>(BuildUciSpecs());
  return specs;
}

std::uint64_t HashName(const std::string& name) {
  // FNV-1a, so each dataset gets an independent stream for the same seed.
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::int64_t TabularSpec::EncodedWidth() const {
  std::int64_t width = num_continuous;
  for (int card : categorical_cards) width += card;
  return width;
}

const std::vector<std::string>& UciDatasetNames() {
  static const auto& names = *new std::vector<std::string>([] {
    std::vector<std::string> out;
    for (const auto& spec : AllUciSpecs()) out.push_back(spec.name);
    return out;
  }());
  return names;
}

const TabularSpec& UciSpec(const std::string& name) {
  for (const auto& spec : AllUciSpecs()) {
    if (spec.name == name) return spec;
  }
  GMREG_CHECK(false) << "unknown UCI dataset name: " << name;
  __builtin_unreachable();
}

const TabularSpec& HospFaSpec() {
  static const auto& spec = *new TabularSpec([] {
    TabularSpec s;
    s.name = "Hosp-FA";
    s.num_samples = 1755;
    // 375 features: 75 continuous labs/vitals + 50 categorical columns of 6
    // (diagnosis/demographic codes) = 375 encoded dimensions.
    s.num_continuous = 75;
    s.categorical_cards = Cards(50, 6);
    s.missing_rate = 0.10;
    // Sec. V-A(2): a minority of strongly predictive medical features and a
    // majority of noisy ones.
    s.strong_fraction = 0.06;
    s.weak_fraction = 0.20;
    s.label_noise = 0.130;
    return s;
  }());
  return spec;
}

TabularData MakeTabular(const TabularSpec& spec, std::uint64_t seed) {
  GMREG_CHECK_GT(spec.num_samples, 0);
  std::int64_t m = spec.EncodedWidth();
  GMREG_CHECK_GT(m, 0);
  Rng rng(seed ^ HashName(spec.name));

  // Plant the three-tier ground-truth weight vector over encoded dims.
  std::vector<double> truth(static_cast<std::size_t>(m));
  std::vector<int> dims(static_cast<std::size_t>(m));
  std::iota(dims.begin(), dims.end(), 0);
  rng.Shuffle(dims);
  auto strong_count = static_cast<std::size_t>(
      static_cast<double>(m) * spec.strong_fraction + 0.5);
  auto weak_count = static_cast<std::size_t>(
      static_cast<double>(m) * spec.weak_fraction + 0.5);
  strong_count = std::max<std::size_t>(strong_count, 1);
  for (std::size_t r = 0; r < dims.size(); ++r) {
    auto d = static_cast<std::size_t>(dims[r]);
    double sign = rng.NextBernoulli(0.5) ? 1.0 : -1.0;
    if (r < strong_count) {
      truth[d] = sign * rng.NextUniform(spec.strong_min, spec.strong_max);
    } else if (r < strong_count + weak_count) {
      truth[d] = sign * rng.NextUniform(0.1, 0.4);
    } else {
      truth[d] = rng.NextGaussian(0.0, 0.01);
    }
  }

  auto n = static_cast<std::size_t>(spec.num_samples);
  TabularData data;
  data.name = spec.name;
  data.columns.reserve(static_cast<std::size_t>(spec.num_continuous) +
                       spec.categorical_cards.size());
  std::vector<double> logits(n, 0.0);

  // Continuous columns: latent z ~ N(0,1) drives the logit; the stored value
  // is an affine transform of z (exercises standardization), and entries go
  // missing at missing_rate (exercises mean imputation).
  std::int64_t encoded_offset = 0;
  for (int c = 0; c < spec.num_continuous; ++c) {
    Column col;
    col.type = ColumnType::kContinuous;
    col.values.resize(n);
    col.missing.resize(n, false);
    double mu = rng.NextUniform(-2.0, 2.0);
    double sigma = rng.NextUniform(0.5, 3.0);
    double w = truth[static_cast<std::size_t>(encoded_offset)];
    for (std::size_t i = 0; i < n; ++i) {
      double z = rng.NextGaussian();
      col.values[i] = mu + sigma * z;
      col.missing[i] = rng.NextBernoulli(spec.missing_rate);
      logits[i] += w * z;
    }
    data.columns.push_back(std::move(col));
    encoded_offset += 1;
  }

  // Categorical columns: uniform category draws; each category carries its
  // own planted weight (the one-hot dimension's truth entry).
  for (int card : spec.categorical_cards) {
    Column col;
    col.type = ColumnType::kCategorical;
    col.cardinality = card;
    col.values.resize(n);
    col.missing.resize(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      auto id = static_cast<int>(
          rng.NextBounded(static_cast<std::uint32_t>(card)));
      col.values[i] = id;
      logits[i] += truth[static_cast<std::size_t>(encoded_offset + id)];
    }
    data.columns.push_back(std::move(col));
    encoded_offset += card;
  }
  GMREG_CHECK_EQ(encoded_offset, m);

  // Threshold at the median so classes are balanced, add pre-threshold
  // noise, then flip labels at the Bayes-error rate.
  std::vector<double> sorted = logits;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(n / 2),
                   sorted.end());
  double median = sorted[n / 2];
  data.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double noisy = logits[i] + rng.NextGaussian(0.0, spec.logit_noise);
    int y = noisy > median ? 1 : 0;
    if (rng.NextBernoulli(spec.label_noise)) y = 1 - y;
    data.labels[i] = y;
  }
  GMREG_CHECK_EQ(data.EncodedWidth(), m);
  return data;
}

TabularData MakeUciLike(const std::string& name, std::uint64_t seed) {
  return MakeTabular(UciSpec(name), seed);
}

TabularData MakeHospFaLike(std::uint64_t seed) {
  return MakeTabular(HospFaSpec(), seed);
}

}  // namespace gmreg
