#ifndef GMREG_DATA_SYNTHETIC_H_
#define GMREG_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "data/tabular.h"

namespace gmreg {

/// Blueprint for one synthetic stand-in of a UCI benchmark dataset.
/// `num_continuous + sum(categorical_cards)` equals the paper's Table II
/// "# Features" (the post-one-hot width).
///
/// The generator plants a three-tier ground-truth weight vector over the
/// encoded feature space — a few strongly predictive dimensions, a band of
/// weakly predictive dimensions, and a majority of noise dimensions — which
/// is exactly the parameter structure the paper argues a GM prior models
/// better than any single-norm prior (Secs. I, V-C, V-D).
struct TabularSpec {
  std::string name;
  int num_samples = 0;
  int num_continuous = 0;
  std::vector<int> categorical_cards;
  double missing_rate = 0.0;      ///< per continuous entry
  double strong_fraction = 0.12;  ///< encoded dims with strong weights
  double strong_min = 1.0;        ///< strong |w| lower bound
  double strong_max = 2.0;        ///< strong |w| upper bound
  double weak_fraction = 0.20;    ///< encoded dims with |w| in [0.1, 0.4]
  double label_noise = 0.05;      ///< Bayes error: fraction of flipped labels
  double logit_noise = 0.3;       ///< pre-threshold Gaussian noise

  std::int64_t EncodedWidth() const;
};

/// Names of the 11 Table II datasets, in the paper's (alphabetical) order.
const std::vector<std::string>& UciDatasetNames();

/// Returns the spec whose sample/feature counts match the named Table II
/// row. Aborts on an unknown name (the set is fixed by the paper).
const TabularSpec& UciSpec(const std::string& name);

/// Spec for the Hospital Frequent Admitter stand-in: 1755 samples x 375
/// features with a predictive/noisy feature split per Sec. V-A(2).
const TabularSpec& HospFaSpec();

/// Generates a synthetic dataset from a spec. Deterministic in (spec, seed).
TabularData MakeTabular(const TabularSpec& spec, std::uint64_t seed);

/// Convenience: MakeTabular(UciSpec(name), seed).
TabularData MakeUciLike(const std::string& name, std::uint64_t seed);

/// Convenience: MakeTabular(HospFaSpec(), seed).
TabularData MakeHospFaLike(std::uint64_t seed);

}  // namespace gmreg

#endif  // GMREG_DATA_SYNTHETIC_H_
