#include "data/tabular.h"

#include "util/string_util.h"

namespace gmreg {

std::int64_t TabularData::EncodedWidth() const {
  std::int64_t width = 0;
  for (const Column& col : columns) {
    width += col.type == ColumnType::kContinuous ? 1 : col.cardinality;
  }
  return width;
}

std::string TabularData::FeatureTypeString() const {
  bool has_cont = false;
  bool has_cat = false;
  for (const Column& col : columns) {
    if (col.type == ColumnType::kContinuous) {
      has_cont = true;
    } else {
      has_cat = true;
    }
  }
  if (has_cont && has_cat) return "combined";
  if (has_cat) return "categorical";
  return "continuous";
}

Status TabularData::Validate() const {
  std::size_t n = labels.size();
  if (n == 0) return Status::InvalidArgument("dataset has no samples");
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const Column& col = columns[c];
    if (col.values.size() != n || col.missing.size() != n) {
      return Status::InvalidArgument(
          StrFormat("column %zu: length mismatch (%zu values, %zu samples)",
                    c, col.values.size(), n));
    }
    if (col.type == ColumnType::kCategorical) {
      if (col.cardinality < 2) {
        return Status::InvalidArgument(
            StrFormat("column %zu: categorical cardinality %d < 2", c,
                      col.cardinality));
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (col.missing[i]) continue;
        int id = static_cast<int>(col.values[i]);
        if (id < 0 || id >= col.cardinality) {
          return Status::OutOfRange(
              StrFormat("column %zu row %zu: category %d outside [0,%d)", c,
                        i, id, col.cardinality));
        }
      }
    }
  }
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return Status::OutOfRange("labels must be binary {0,1}");
    }
  }
  return Status::Ok();
}

}  // namespace gmreg
