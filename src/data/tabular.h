#ifndef GMREG_DATA_TABULAR_H_
#define GMREG_DATA_TABULAR_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace gmreg {

enum class ColumnType {
  kContinuous,
  kCategorical,
};

/// A single raw column. Continuous columns hold real values; categorical
/// columns hold integer category ids in [0, cardinality). Either kind can
/// carry missing entries, mirroring the raw UCI data the paper preprocesses.
struct Column {
  ColumnType type = ColumnType::kContinuous;
  int cardinality = 0;          ///< categorical only: number of categories
  std::vector<double> values;   ///< length N; for categorical, category ids
  std::vector<bool> missing;    ///< length N; true = value absent
};

/// Raw (un-encoded) tabular dataset, the input to Preprocessor. This is the
/// stage at which the paper's pipeline applies one-hot encoding,
/// standardization and imputation.
struct TabularData {
  std::string name;
  std::vector<Column> columns;
  std::vector<int> labels;  ///< binary labels {0,1}

  std::int64_t num_samples() const {
    return static_cast<std::int64_t>(labels.size());
  }
  std::int64_t num_columns() const {
    return static_cast<std::int64_t>(columns.size());
  }

  /// Width of the encoded feature space: 1 per continuous column,
  /// `cardinality` per categorical column (missing categoricals are assigned
  /// the dedicated category id `cardinality - 1` by the generators, matching
  /// the paper's "separate class" rule without changing the width).
  std::int64_t EncodedWidth() const;

  /// "categorical", "continuous" or "combined" — the Table II feature type.
  std::string FeatureTypeString() const;

  /// Validates internal consistency (column lengths, category ranges).
  Status Validate() const;
};

}  // namespace gmreg

#endif  // GMREG_DATA_TABULAR_H_
