#include "dist/coordinator.h"

#include <algorithm>
#include <utility>

#include "core/merge.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/net.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace gmreg {
namespace {

/// Frame header bytes (u32 length + u8 type) counted into the byte
/// instruments on top of each payload.
constexpr std::int64_t kFrameOverhead = 5;

/// Stale replies tolerated per receive before declaring a peer broken. A
/// re-issued round can leave at most one already-buffered reply per rank,
/// so anything beyond a handful is a protocol violation, not recovery.
constexpr int kMaxStaleReplies = 16;

struct DistInstruments {
  Counter* bytes_sent;
  Counter* bytes_received;
  Counter* rounds;
  Counter* reconnects;
  Gauge* workers;
  Histogram* merge_seconds;
};

DistInstruments& Instruments() {
  static DistInstruments instruments = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return DistInstruments{registry.counter("gm.dist.bytes_sent"),
                           registry.counter("gm.dist.bytes_received"),
                           registry.counter("gm.dist.rounds"),
                           registry.counter("gm.dist.worker_reconnects"),
                           registry.gauge("gm.dist.workers"),
                           registry.histogram("gm.dist.merge_seconds")};
  }();
  return instruments;
}

}  // namespace

DistCoordinator::DistCoordinator(const DistJobSpec& spec,
                                 const std::vector<ParamRef>& trainer_params,
                                 const DistCoordinatorOptions& options)
    : spec_(spec),
      params_(trainer_params),
      options_(options),
      conns_(static_cast<std::size_t>(options.world), -1) {
  GMREG_CHECK_GE(options_.world, 1);
}

DistCoordinator::~DistCoordinator() {
  Shutdown();
  if (listen_fd_ >= 0) CloseFd(listen_fd_);
}

Status DistCoordinator::Listen() {
  return CreateListenSocket(options_.port, /*nonblocking=*/false, &listen_fd_,
                            &port_);
}

Status DistCoordinator::Admit() {
  int admitted = 0;
  for (int fd : conns_) {
    if (fd >= 0) ++admitted;
  }
  while (admitted < options_.world) {
    int fd = -1;
    GMREG_RETURN_IF_ERROR(
        AcceptWithTimeout(listen_fd_, options_.accept_timeout_ms, &fd));
    std::uint8_t type = 0;
    std::string payload;
    Status st = ReadFrame(fd, &type, &payload);
    HelloMsg hello;
    if (st.ok() && type == static_cast<std::uint8_t>(DistFrame::kHello)) {
      st = HelloMsg::Decode(payload, &hello);
    } else if (st.ok()) {
      st = Status::InvalidArgument("expected a hello frame");
    }
    if (st.ok() && (static_cast<int>(hello.world) != options_.world ||
                    conns_[hello.rank] >= 0)) {
      st = Status::FailedPrecondition("hello rank/world does not match job");
    }
    if (!st.ok()) {
      GMREG_LOG(Warning) << "rejecting connection: " << st.ToString();
      CloseFd(fd);
      continue;
    }
    Instruments().bytes_received->Add(kFrameOverhead +
                                      static_cast<std::int64_t>(payload.size()));
    conns_[hello.rank] = fd;
    ++admitted;
    if (!SendTo(static_cast<int>(hello.rank), DistFrame::kWelcome, "")) {
      return Status::Unavailable("worker died during admission");
    }
  }
  Instruments().workers->Set(static_cast<double>(admitted));
  return Status::Ok();
}

void DistCoordinator::Shutdown() {
  for (std::size_t rank = 0; rank < conns_.size(); ++rank) {
    if (conns_[rank] < 0) continue;
    SendTo(static_cast<int>(rank), DistFrame::kShutdown, "");
    CloseFd(conns_[rank]);
    conns_[rank] = -1;
  }
  Instruments().workers->Set(0.0);
}

bool DistCoordinator::SendTo(int rank, DistFrame type,
                             const std::string& payload) {
  auto r = static_cast<std::size_t>(rank);
  if (conns_[r] < 0) return false;
  Status st =
      WriteFrame(conns_[r], static_cast<std::uint8_t>(type), payload);
  if (!st.ok()) {
    CloseFd(conns_[r]);
    conns_[r] = -1;
    return false;
  }
  Instruments().bytes_sent->Add(kFrameOverhead +
                                static_cast<std::int64_t>(payload.size()));
  return true;
}

bool DistCoordinator::ReceiveFrom(int rank, DistFrame want,
                                  std::string* payload) {
  auto r = static_cast<std::size_t>(rank);
  if (conns_[r] < 0) return false;
  std::uint8_t type = 0;
  Status st = ReadFrame(conns_[r], &type, payload);
  if (st.ok() && type != static_cast<std::uint8_t>(want)) {
    st = Status::InvalidArgument("unexpected frame type from worker");
  }
  if (!st.ok()) {
    CloseFd(conns_[r]);
    conns_[r] = -1;
    return false;
  }
  Instruments().bytes_received->Add(
      kFrameOverhead + static_cast<std::int64_t>(payload->size()));
  return true;
}

void DistCoordinator::RecoverRank(int rank) {
  auto r = static_cast<std::size_t>(rank);
  if (conns_[r] >= 0) {
    CloseFd(conns_[r]);
    conns_[r] = -1;
  }
  Instruments().reconnects->Add(1);
  Instruments().workers->Set(static_cast<double>(options_.world - 1));
  GMREG_LOG(Warning) << "dist: rank " << rank
                     << " died; waiting for it to rejoin";
  if (options_.respawn) options_.respawn(rank);
  while (conns_[r] < 0) {
    int fd = -1;
    Status st = AcceptWithTimeout(listen_fd_, options_.accept_timeout_ms, &fd);
    GMREG_CHECK(st.ok()) << "dist: rank " << rank
                         << " never rejoined: " << st.ToString();
    std::uint8_t type = 0;
    std::string payload;
    st = ReadFrame(fd, &type, &payload);
    HelloMsg hello;
    if (st.ok() && type == static_cast<std::uint8_t>(DistFrame::kHello)) {
      st = HelloMsg::Decode(payload, &hello);
    } else if (st.ok()) {
      st = Status::InvalidArgument("expected a hello frame");
    }
    // Any currently-down rank may rejoin here, not just `rank` — several
    // workers can die in one wave and reconnect in any order.
    if (st.ok() && (static_cast<int>(hello.world) != options_.world ||
                    conns_[hello.rank] >= 0)) {
      st = Status::FailedPrecondition("rejoin rank/world does not match job");
    }
    if (!st.ok()) {
      GMREG_LOG(Warning) << "dist: rejecting rejoin: " << st.ToString();
      CloseFd(fd);
      continue;
    }
    conns_[hello.rank] = fd;
    SendTo(static_cast<int>(hello.rank), DistFrame::kWelcome, "");
    GMREG_LOG(Info) << "dist: rank " << hello.rank << " rejoined";
  }
  Instruments().workers->Set(static_cast<double>(options_.world));
}

double DistCoordinator::ComputeGradient(std::int64_t iteration, int epoch) {
  GradRequestMsg request;
  request.step = iteration;
  request.epoch = epoch;
  request.params.reserve(params_.size());
  for (const ParamRef& p : params_) {
    request.params.emplace_back(p.value->data(),
                                p.value->data() + p.value->size());
  }
  const std::string request_payload = request.Encode();
  const int world = options_.world;
  std::vector<GradReplyMsg> replies(static_cast<std::size_t>(world));
  // Round loop: nothing is applied until every rank has replied to THIS
  // step, so a death anywhere just re-issues the whole round — stateless
  // workers return identical bytes to repeated requests.
  while (true) {
    bool round_ok = true;
    for (int rank = 0; rank < world; ++rank) {
      if (conns_[static_cast<std::size_t>(rank)] < 0) RecoverRank(rank);
    }
    for (int rank = 0; rank < world && round_ok; ++rank) {
      round_ok = SendTo(rank, DistFrame::kGradRequest, request_payload);
    }
    for (int rank = 0; rank < world && round_ok; ++rank) {
      auto& reply = replies[static_cast<std::size_t>(rank)];
      // A re-issued round can find an identical stale reply already
      // buffered on a healthy peer; skip past those.
      for (int attempt = 0;; ++attempt) {
        std::string payload;
        if (attempt >= kMaxStaleReplies ||
            !ReceiveFrom(rank, DistFrame::kGradReply, &payload) ||
            !GradReplyMsg::Decode(payload, &reply).ok()) {
          round_ok = false;
          break;
        }
        if (reply.step == iteration) break;
      }
    }
    if (round_ok) break;
  }
  Instruments().rounds->Add(1);
  Stopwatch merge_watch;
  double loss = 0.0;
  for (int rank = 0; rank < world; ++rank) {
    auto [begin, end] = ShardRange(rank, world, 0, spec_.batch_size);
    const GradReplyMsg& reply = replies[static_cast<std::size_t>(rank)];
    GMREG_CHECK_EQ(reply.grads.size(), params_.size());
    double weight = static_cast<double>(end - begin) /
                    static_cast<double>(spec_.batch_size);
    auto wf = static_cast<float>(weight);
    for (std::size_t k = 0; k < params_.size(); ++k) {
      const std::vector<float>& src = reply.grads[k];
      float* dst = params_[k].grad->data();
      GMREG_CHECK_EQ(static_cast<std::int64_t>(src.size()),
                     params_[k].grad->size());
      if (rank == 0) {
        for (std::size_t m = 0; m < src.size(); ++m) dst[m] = wf * src[m];
      } else {
        for (std::size_t m = 0; m < src.size(); ++m) dst[m] += wf * src[m];
      }
    }
    loss = rank == 0 ? weight * reply.loss : loss + weight * reply.loss;
  }
  Instruments().merge_seconds->Observe(merge_watch.ElapsedSeconds());
  return loss;
}

void DistCoordinator::RunEStep(const GaussianMixture& gm, const float* w,
                               std::int64_t n, float* greg_out,
                               GmSuffStats* stats) {
  const int world = options_.world;
  const std::int64_t seq = estep_seq_++;
  std::vector<std::string> request_payloads(static_cast<std::size_t>(world));
  for (int rank = 0; rank < world; ++rank) {
    auto [begin, end] = ShardRange(rank, world, 0, n);
    if (begin == end) continue;
    EStepRequestMsg request;
    request.seq = seq;
    request.want_greg = greg_out != nullptr;
    request.want_stats = stats != nullptr;
    request.pi = gm.pi();
    request.lambda = gm.lambda();
    request.slice_begin = begin;
    request.w.assign(w + begin, w + end);
    request_payloads[static_cast<std::size_t>(rank)] = request.Encode();
  }
  std::vector<EStepReplyMsg> replies(static_cast<std::size_t>(world));
  while (true) {
    bool round_ok = true;
    for (int rank = 0; rank < world; ++rank) {
      if (conns_[static_cast<std::size_t>(rank)] < 0) RecoverRank(rank);
    }
    for (int rank = 0; rank < world && round_ok; ++rank) {
      if (request_payloads[static_cast<std::size_t>(rank)].empty()) continue;
      round_ok = SendTo(rank, DistFrame::kEStepRequest,
                        request_payloads[static_cast<std::size_t>(rank)]);
    }
    for (int rank = 0; rank < world && round_ok; ++rank) {
      if (request_payloads[static_cast<std::size_t>(rank)].empty()) continue;
      auto& reply = replies[static_cast<std::size_t>(rank)];
      for (int attempt = 0;; ++attempt) {
        std::string payload;
        if (attempt >= kMaxStaleReplies ||
            !ReceiveFrom(rank, DistFrame::kEStepReply, &payload) ||
            !EStepReplyMsg::Decode(payload, &reply).ok()) {
          round_ok = false;
          break;
        }
        if (reply.seq == seq) break;
      }
    }
    if (round_ok) break;
  }
  Instruments().rounds->Add(1);
  Stopwatch merge_watch;
  std::vector<std::string> encoded_stats;
  for (int rank = 0; rank < world; ++rank) {
    auto [begin, end] = ShardRange(rank, world, 0, n);
    if (begin == end) continue;
    EStepReplyMsg& reply = replies[static_cast<std::size_t>(rank)];
    if (greg_out != nullptr) {
      GMREG_CHECK_EQ(static_cast<std::int64_t>(reply.greg.size()),
                     end - begin);
      std::copy(reply.greg.begin(), reply.greg.end(), greg_out + begin);
    }
    if (stats != nullptr) {
      encoded_stats.push_back(std::move(reply.stats_encoded));
    }
  }
  if (stats != nullptr) {
    // Rank-order fold through the exact hex-float codec — bitwise equal to
    // merging the workers' in-memory suffstats directly (dist_wire_test).
    Status st = MergeEncodedSuffStats(encoded_stats, stats);
    GMREG_CHECK(st.ok()) << "dist: suffstat merge failed: " << st.ToString();
  }
  Instruments().merge_seconds->Observe(merge_watch.ElapsedSeconds());
}

}  // namespace gmreg
