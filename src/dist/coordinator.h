#ifndef GMREG_DIST_COORDINATOR_H_
#define GMREG_DIST_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/gm_regularizer.h"
#include "dist/job.h"
#include "dist/wire.h"
#include "optim/trainer.h"
#include "util/status.h"

namespace gmreg {

struct DistCoordinatorOptions {
  int world = 2;
  /// Listen port; 0 picks an ephemeral one (read it back via port()).
  int port = 0;
  /// How long to wait for a worker to (re)connect before giving up.
  int accept_timeout_ms = 30000;
  /// Called when rank's connection dies, before the coordinator waits for
  /// its replacement to connect — typically reaps the dead process and
  /// forks a fresh worker (dist/launcher.cc). May be empty, in which case
  /// the coordinator just waits for an external rejoin.
  std::function<void(int rank)> respawn;
};

/// The dist run's brain: owns the listen socket and one connection per
/// rank, and plugs into the Trainer as BOTH hook points —
///
///   GradientSource   every SGD step broadcasts the current weights, each
///                    worker returns its slice's data-loss gradient, and
///                    the coordinator folds them in fixed rank order with
///                    float weight slice_rows/batch_size (rank 0 assigns);
///   GmEStepExecutor  each GmRegularizer E-step farms ShardRange weight
///                    slices out, concatenates the returned greg slices
///                    (disjoint, exact) and folds the hex-float-encoded
///                    suffstats in rank order via core/merge.h.
///
/// Model, optimizer, regularizer schedules, tracing, and checkpointing all
/// stay in the (coordinator-side) Trainer, so the distributed run IS a
/// Trainer::TrainWithSource run — bitwise identical to the in-process
/// LocalSharded* reference of dist/local.h for the same world count.
///
/// Fault tolerance: workers are stateless (every request carries all state
/// it needs), so when a connection dies mid-round the coordinator drops
/// nothing — it reaps/respawns via the callback, admits the rejoining
/// rank's Hello, and re-issues the SAME round to every rank. Replies are
/// deterministic, so re-asking a healthy worker returns identical bytes;
/// no partial round is ever applied. Coordinator death is the Trainer's
/// existing checkpoint/Resume story (docs/CHECKPOINTING.md).
class DistCoordinator : public GradientSource, public GmEStepExecutor {
 public:
  DistCoordinator(const DistJobSpec& spec,
                  const std::vector<ParamRef>& trainer_params,
                  const DistCoordinatorOptions& options);
  ~DistCoordinator() override;

  DistCoordinator(const DistCoordinator&) = delete;
  DistCoordinator& operator=(const DistCoordinator&) = delete;

  /// Binds the listen socket. Call before launching workers (they need the
  /// port), then Admit() once they are up.
  Status Listen();

  /// Accepts connections until every rank has said Hello.
  Status Admit();

  int port() const { return port_; }
  int world() const { return options_.world; }

  /// Installs the dead-worker respawn callback after construction — the
  /// launcher can only build it once the port is known and the worker pids
  /// exist.
  void set_respawn(std::function<void(int rank)> fn) {
    options_.respawn = std::move(fn);
  }

  /// Sends kShutdown to every live worker and closes the connections.
  void Shutdown();

  // GradientSource ---------------------------------------------------------
  double ComputeGradient(std::int64_t iteration, int epoch) override;

  // GmEStepExecutor --------------------------------------------------------
  void RunEStep(const GaussianMixture& gm, const float* w, std::int64_t n,
                float* greg_out, GmSuffStats* stats) override;

 private:
  /// Sends frame `type`+`payload` to rank (false on a dead peer).
  bool SendTo(int rank, DistFrame type, const std::string& payload);
  /// Reads the next frame from rank, requiring `want` (false on death or
  /// protocol violation — both are handled as a dead peer).
  bool ReceiveFrom(int rank, DistFrame want, std::string* payload);
  /// Drops rank's connection, runs the respawn callback, and blocks until
  /// the rank rejoins (Hello/Welcome). Aborts after accept_timeout_ms —
  /// losing a worker forever is not a state this subsystem continues from.
  void RecoverRank(int rank);

  DistJobSpec spec_;
  std::vector<ParamRef> params_;
  DistCoordinatorOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<int> conns_;  ///< fd per rank, -1 when down
  std::int64_t estep_seq_ = 0;
};

}  // namespace gmreg

#endif  // GMREG_DIST_COORDINATOR_H_
