#include "dist/job.h"

#include <algorithm>
#include <utility>

#include "data/preprocess.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gmreg {

Dataset BuildJobDataset(const DistJobSpec& spec) {
  TabularData raw = spec.dataset == "hosp-fa"
                        ? MakeHospFaLike(spec.data_seed)
                        : MakeUciLike(spec.dataset, spec.data_seed);
  Preprocessor prep;
  return prep.FitTransformAll(raw);
}

std::unique_ptr<Sequential> BuildJobModel(const DistJobSpec& spec,
                                          const Dataset& data) {
  GMREG_CHECK_GT(spec.hidden, 0);
  auto net = std::make_unique<Sequential>("dist_mlp");
  Rng init_rng(spec.init_seed);
  net->Emplace<Dense>("fc1", data.num_features(), spec.hidden,
                      InitSpec::Gaussian(spec.init_stddev), &init_rng);
  net->Emplace<Relu>("relu1");
  net->Emplace<Dense>("fc2", static_cast<std::int64_t>(spec.hidden),
                      static_cast<std::int64_t>(data.num_classes),
                      InitSpec::Gaussian(spec.init_stddev), &init_rng);
  return net;
}

TrainOptions BuildTrainOptions(const DistJobSpec& spec, const Dataset& data) {
  TrainOptions opts;
  opts.epochs = spec.epochs;
  opts.batch_size = spec.batch_size;
  opts.learning_rate = spec.learning_rate;
  opts.momentum = spec.momentum;
  opts.num_train_samples = data.num_samples();
  opts.num_threads = 1;
  opts.metrics_path = spec.metrics_path;
  opts.run_label = spec.run_label;
  opts.checkpoint_path = spec.checkpoint_path;
  opts.checkpoint_every = spec.checkpoint_every;
  return opts;
}

std::int64_t BatchesPerEpoch(const DistJobSpec& spec, const Dataset& data) {
  GMREG_CHECK_GT(spec.batch_size, 0);
  return std::max<std::int64_t>(1, data.num_samples() / spec.batch_size);
}

namespace {

// Copies the rows [row_begin, row_end) of step `step`'s cyclic global batch
// into `input`/`labels`.
void FillBatchRows(const Dataset& data, const DistJobSpec& spec,
                   std::int64_t step, std::int64_t row_begin,
                   std::int64_t row_end, Tensor* input,
                   std::vector<int>* labels) {
  std::int64_t n = data.num_samples();
  std::int64_t m = data.num_features();
  std::int64_t count = row_end - row_begin;
  GMREG_CHECK_GE(count, 0);
  std::vector<std::int64_t> shape = {count, m};
  if (input->shape() != shape) *input = Tensor(shape);
  labels->resize(static_cast<std::size_t>(count));
  const float* src = data.features.data();
  float* dst = input->data();
  for (std::int64_t i = 0; i < count; ++i) {
    std::int64_t row = (step * spec.batch_size + row_begin + i) % n;
    std::copy(src + row * m, src + (row + 1) * m, dst + i * m);
    (*labels)[static_cast<std::size_t>(i)] =
        data.labels[static_cast<std::size_t>(row)];
  }
}

}  // namespace

void FillGlobalBatch(const Dataset& data, const DistJobSpec& spec,
                     std::int64_t step, Tensor* input,
                     std::vector<int>* labels) {
  FillBatchRows(data, spec, step, 0, spec.batch_size, input, labels);
}

void FillWorkerBatch(const Dataset& data, const DistJobSpec& spec,
                     std::int64_t step, int rank, int world, Tensor* input,
                     std::vector<int>* labels) {
  GMREG_CHECK_GE(rank, 0);
  GMREG_CHECK_LT(rank, world);
  auto [begin, end] = ShardRange(rank, world, 0, spec.batch_size);
  FillBatchRows(data, spec, step, begin, end, input, labels);
}

std::vector<GmRegularizer*> AttachJobRegularizers(const DistJobSpec& spec,
                                                  Trainer* trainer) {
  std::vector<GmRegularizer*> attached;
  if (!spec.use_gm_reg) return attached;
  GmOptions gm_opts;
  gm_opts.num_components = spec.gm_components;
  gm_opts.min_precision = MinPrecisionFromInitStdDev(spec.init_stddev);
  gm_opts.num_threads = 1;
  trainer->AttachToAllWeights(
      [&](const ParamRef& p) -> std::unique_ptr<Regularizer> {
        auto reg =
            std::make_unique<GmRegularizer>(p.name, p.value->size(), gm_opts);
        attached.push_back(reg.get());
        return reg;
      });
  return attached;
}

}  // namespace gmreg
