#ifndef GMREG_DIST_JOB_H_
#define GMREG_DIST_JOB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/gm_regularizer.h"
#include "data/dataset.h"
#include "nn/sequential.h"
#include "optim/trainer.h"

namespace gmreg {

/// One distributed (or local-sharded reference) training job, fully
/// determined by value — the coordinator and every worker construct the
/// SAME dataset, network, and batch schedule from the same spec, which is
/// what lets workers be stateless: a batch is a pure function of
/// (spec, global step, rank), never of worker history.
struct DistJobSpec {
  /// UciSpec name (e.g. "climate-model") or "hosp-fa".
  std::string dataset = "hosp-fa";
  std::uint64_t data_seed = 7;
  std::uint64_t init_seed = 13;
  int hidden = 16;                ///< width of the single hidden layer
  int epochs = 3;
  std::int64_t batch_size = 32;
  double learning_rate = 0.05;
  double momentum = 0.9;
  bool use_gm_reg = true;
  int gm_components = 4;
  double init_stddev = 0.2;       ///< Dense init; also sets GM min precision
  /// Forwarded to TrainOptions: per-epoch JSONL trace / checkpoint plumbing
  /// (docs/OBSERVABILITY.md, docs/CHECKPOINTING.md).
  std::string metrics_path;
  std::string run_label = "dist";
  std::string checkpoint_path;
  int checkpoint_every = 1;
  /// Restore checkpoint_path before training (Trainer::Resume); a missing
  /// checkpoint falls back to a cold start.
  bool resume = false;
};

/// Builds the job's dataset: synthetic Table-II stand-in (or the hosp-fa
/// spec) generated from (dataset, data_seed), preprocessed whole.
/// Deterministic in the spec.
Dataset BuildJobDataset(const DistJobSpec& spec);

/// Builds the job's network — Dense(M, hidden) / ReLU / Dense(hidden, C)
/// with Gaussian(init_stddev) weights drawn from a fresh Rng(init_seed) —
/// so every process holds a replica with identical shapes and, before any
/// training, identical bits.
std::unique_ptr<Sequential> BuildJobModel(const DistJobSpec& spec,
                                          const Dataset& data);

/// TrainOptions for the job (thread budget pinned to 1: the serial kernels
/// are the determinism baseline all process counts agree on, and a budget
/// of 1 keeps the process fork-safe — the global pool is never spun up).
TrainOptions BuildTrainOptions(const DistJobSpec& spec, const Dataset& data);

/// Steps per epoch: floor(N / batch_size), at least 1.
std::int64_t BatchesPerEpoch(const DistJobSpec& spec, const Dataset& data);

/// Fills the GLOBAL batch of step `step`: rows
/// [(step * batch_size + i) % N for i in 0..batch_size) — a cyclic
/// contiguous sweep, no RNG, so any process can materialize any step's
/// batch from scratch.
void FillGlobalBatch(const Dataset& data, const DistJobSpec& spec,
                     std::int64_t step, Tensor* input,
                     std::vector<int>* labels);

/// Fills rank `rank`'s slice of step `step`'s global batch: the rows at
/// ShardRange(rank, world, 0, batch_size) — the same boundary formula the
/// in-process parallel kernels shard with (util/parallel.h), so the
/// distributed split is the familiar deterministic one.
void FillWorkerBatch(const Dataset& data, const DistJobSpec& spec,
                     std::int64_t step, int rank, int world, Tensor* input,
                     std::vector<int>* labels);

/// Attaches a GmRegularizer (serial E/M, min precision from init_stddev)
/// to every weight tensor of the trainer's network per the spec; returns
/// the attached instances (owned by the trainer) so a caller can install a
/// GmEStepExecutor on them. Empty when use_gm_reg is false.
std::vector<GmRegularizer*> AttachJobRegularizers(const DistJobSpec& spec,
                                                  Trainer* trainer);

}  // namespace gmreg

#endif  // GMREG_DIST_JOB_H_
