#include "dist/launcher.h"

#include <sys/wait.h>
#include <unistd.h>

#include <memory>
#include <thread>
#include <utility>

#include "dist/coordinator.h"
#include "dist/local.h"
#include "dist/worker.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace gmreg {
namespace {

/// Copies the compared state (params, mixtures, gregs) out of a finished
/// trainer run.
void FillResult(const Trainer& trainer,
                const std::vector<GmRegularizer*>& regs,
                std::vector<EpochStats> stats, DistRunResult* out) {
  out->stats = std::move(stats);
  out->param_names.clear();
  out->params.clear();
  for (const ParamRef& p : trainer.params()) {
    out->param_names.push_back(p.name);
    out->params.push_back(*p.value);
  }
  out->pi.clear();
  out->lambda.clear();
  out->gregs.clear();
  for (const GmRegularizer* reg : regs) {
    out->pi.push_back(reg->mixture().pi());
    out->lambda.push_back(reg->mixture().lambda());
    out->gregs.push_back(reg->greg());
  }
}

Status MaybeResume(const DistJobSpec& spec, Trainer* trainer) {
  if (!spec.resume) return Status::Ok();
  Status st = trainer->Resume();
  if (st.code() == StatusCode::kNotFound) {
    GMREG_LOG(Info) << "dist: no checkpoint to resume; cold start";
    return Status::Ok();
  }
  return st;
}

/// Hosts the worker ranks for one RunDistJob: forked processes (the real
/// shape) or in-process threads (sanitizer-friendly). Either way the
/// workers speak the same sockets to the same coordinator.
class WorkerHost {
 public:
  WorkerHost(const DistJobSpec& spec, int world, int port, WorkerLaunch mode)
      : spec_(spec), world_(world), port_(port), mode_(mode) {
    pids_.assign(static_cast<std::size_t>(world), -1);
  }

  void Spawn(int rank) {
    if (mode_ == WorkerLaunch::kThread) {
      DistWorkerOptions options{port_, rank, world_};
      DistJobSpec spec = spec_;
      threads_.emplace_back([spec, options] { RunDistWorker(spec, options); });
      return;
    }
    pid_t pid = fork();
    GMREG_CHECK_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Worker child: drop every inherited descriptor (coordinator
      // sockets, trace/checkpoint files) so connection EOFs stay crisp and
      // nothing writes the parent's files; the worker opens its own.
      for (int fd = 3; fd < 256; ++fd) close(fd);
      DistWorkerOptions options{port_, rank, world_};
      std::_Exit(RunDistWorker(spec_, options));
    }
    pids_[static_cast<std::size_t>(rank)] = pid;
  }

  void SpawnAll() {
    for (int rank = 0; rank < world_; ++rank) Spawn(rank);
  }

  /// Dead-rank recovery: reap the corpse (fork mode), then start a
  /// replacement. The coordinator blocks on its rejoin afterwards.
  void Respawn(int rank) {
    if (mode_ == WorkerLaunch::kFork) {
      Reap(rank);
    }
    Spawn(rank);
  }

  /// Collects every worker after a clean Shutdown.
  void JoinAll() {
    if (mode_ == WorkerLaunch::kThread) {
      for (std::thread& t : threads_) {
        if (t.joinable()) t.join();
      }
      threads_.clear();
      return;
    }
    for (int rank = 0; rank < world_; ++rank) Reap(rank);
  }

 private:
  void Reap(int rank) {
    pid_t pid = pids_[static_cast<std::size_t>(rank)];
    if (pid < 0) return;
    int wstatus = 0;
    pid_t got = waitpid(pid, &wstatus, 0);
    pids_[static_cast<std::size_t>(rank)] = -1;
    if (got != pid) {
      GMREG_LOG(Warning) << "dist: waitpid for rank " << rank << " failed";
      return;
    }
    if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == kFaultCrashExitCode) {
      GMREG_LOG(Warning) << "dist: rank " << rank
                         << " died of an injected fault (exit "
                         << kFaultCrashExitCode << ")";
    } else if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
      GMREG_LOG(Warning) << "dist: rank " << rank
                         << " exited abnormally (status " << wstatus << ")";
    }
  }

  DistJobSpec spec_;
  int world_;
  int port_;
  WorkerLaunch mode_;
  std::vector<pid_t> pids_;
  std::vector<std::thread> threads_;
};

}  // namespace

Status RunDistJob(const DistJobSpec& spec, int world, WorkerLaunch launch,
                  DistRunResult* out) {
  GMREG_CHECK_GE(world, 1);
  // The job's determinism baseline AND the fork-safety precondition: with a
  // budget of 1 the global pool is never created, so fork() cannot cut a
  // pool thread in half.
  SetDefaultNumThreads(1);
  Dataset data = BuildJobDataset(spec);
  std::unique_ptr<Sequential> net = BuildJobModel(spec, data);
  Trainer trainer(net.get(), BuildTrainOptions(spec, data));
  std::vector<GmRegularizer*> regs = AttachJobRegularizers(spec, &trainer);

  DistCoordinatorOptions coptions;
  coptions.world = world;
  DistCoordinator coordinator(spec, trainer.params(), coptions);
  GMREG_RETURN_IF_ERROR(coordinator.Listen());
  WorkerHost host(spec, world, coordinator.port(), launch);
  coordinator.set_respawn([&host](int rank) { host.Respawn(rank); });
  host.SpawnAll();
  GMREG_RETURN_IF_ERROR(coordinator.Admit());
  for (GmRegularizer* reg : regs) reg->set_estep_executor(&coordinator);
  GMREG_RETURN_IF_ERROR(MaybeResume(spec, &trainer));

  std::vector<EpochStats> stats =
      trainer.TrainWithSource(&coordinator, BatchesPerEpoch(spec, data));

  for (GmRegularizer* reg : regs) reg->set_estep_executor(nullptr);
  coordinator.Shutdown();
  host.JoinAll();
  FillResult(trainer, regs, std::move(stats), out);
  return Status::Ok();
}

Status RunLocalShardedJob(const DistJobSpec& spec, int world,
                          DistRunResult* out) {
  GMREG_CHECK_GE(world, 1);
  SetDefaultNumThreads(1);
  Dataset data = BuildJobDataset(spec);
  std::unique_ptr<Sequential> net = BuildJobModel(spec, data);
  Trainer trainer(net.get(), BuildTrainOptions(spec, data));
  std::vector<GmRegularizer*> regs = AttachJobRegularizers(spec, &trainer);
  LocalShardedSource source(spec, &data, world, trainer.params());
  LocalShardedEStep estep(world);
  for (GmRegularizer* reg : regs) reg->set_estep_executor(&estep);
  GMREG_RETURN_IF_ERROR(MaybeResume(spec, &trainer));
  std::vector<EpochStats> stats =
      trainer.TrainWithSource(&source, BatchesPerEpoch(spec, data));
  for (GmRegularizer* reg : regs) reg->set_estep_executor(nullptr);
  FillResult(trainer, regs, std::move(stats), out);
  return Status::Ok();
}

Status RunSingleProcessJob(const DistJobSpec& spec, DistRunResult* out) {
  SetDefaultNumThreads(1);
  Dataset data = BuildJobDataset(spec);
  std::unique_ptr<Sequential> net = BuildJobModel(spec, data);
  Trainer trainer(net.get(), BuildTrainOptions(spec, data));
  std::vector<GmRegularizer*> regs = AttachJobRegularizers(spec, &trainer);
  GMREG_RETURN_IF_ERROR(MaybeResume(spec, &trainer));
  std::int64_t step = 0;
  std::vector<EpochStats> stats = trainer.Train(
      [&](Tensor* input, std::vector<int>* labels) {
        FillGlobalBatch(data, spec, step, input, labels);
        ++step;
      },
      BatchesPerEpoch(spec, data));
  FillResult(trainer, regs, std::move(stats), out);
  return Status::Ok();
}

}  // namespace gmreg
