#ifndef GMREG_DIST_LAUNCHER_H_
#define GMREG_DIST_LAUNCHER_H_

#include <string>
#include <vector>

#include "dist/job.h"
#include "optim/trainer.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace gmreg {

/// Everything the determinism tests / bench compare between runs: the
/// per-epoch stats, the final parameter tensors, and each GM regularizer's
/// learned state (mixture + cached greg). Deliberately excludes wall-clock
/// (EpochStats::elapsed_seconds is compared with a seconds-skipping
/// predicate, like the trace lines).
struct DistRunResult {
  std::vector<EpochStats> stats;
  std::vector<std::string> param_names;
  std::vector<Tensor> params;
  // Parallel arrays, one entry per attached GmRegularizer (network order).
  std::vector<std::vector<double>> pi;
  std::vector<std::vector<double>> lambda;
  std::vector<Tensor> gregs;
};

/// How RunDistJob hosts its workers.
enum class WorkerLaunch {
  /// fork() one process per rank — the real deployment shape, and the only
  /// mode that survives GMREG_FAULT=crash_after_step kills. Requires the
  /// serial thread budget (the job pins it) so the process is fork-safe.
  kFork,
  /// One std::thread per rank inside this process, still talking real
  /// loopback sockets. Sanitizer-friendly (no fork), used by
  /// dist_train_test; incompatible with crash faults (a worker _Exit would
  /// take the whole process down).
  kThread,
};

/// Runs the full distributed job: coordinator-side Trainer +
/// `world` workers, gradients and E-steps exchanged over loopback. With
/// spec.resume set, continues from spec.checkpoint_path (NotFound falls
/// back to a cold start). Blocking; returns once training and worker
/// teardown finish.
Status RunDistJob(const DistJobSpec& spec, int world, WorkerLaunch launch,
                  DistRunResult* out);

/// The single-process reference: the identical Trainer run with the
/// dist/local.h sharded source and E-step executor standing in for the
/// workers. RunDistJob(spec, W) must match this bit for bit — weights,
/// mixture, greg, and per-epoch trace fields (docs/DISTRIBUTED.md).
Status RunLocalShardedJob(const DistJobSpec& spec, int world,
                          DistRunResult* out);

/// The vanilla path: plain Trainer::Train over the job's global cyclic
/// batches, no source, no executor. RunDistJob(spec, 1) and
/// RunLocalShardedJob(spec, 1) both degenerate to this bit for bit.
Status RunSingleProcessJob(const DistJobSpec& spec, DistRunResult* out);

}  // namespace gmreg

#endif  // GMREG_DIST_LAUNCHER_H_
