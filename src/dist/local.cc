#include "dist/local.h"

#include <algorithm>

#include "core/em.h"
#include "nn/loss.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace gmreg {

LocalShardedSource::LocalShardedSource(
    const DistJobSpec& spec, const Dataset* data, int world,
    const std::vector<ParamRef>& trainer_params)
    : spec_(spec),
      data_(data),
      world_(world),
      trainer_params_(trainer_params),
      replica_(BuildJobModel(spec, *data)) {
  GMREG_CHECK_GE(world, 1);
  replica_->CollectParams(&replica_params_);
  GMREG_CHECK_EQ(replica_params_.size(), trainer_params_.size());
}

double LocalShardedSource::ComputeGradient(std::int64_t iteration,
                                           int epoch) {
  (void)epoch;
  double loss = 0.0;
  for (int rank = 0; rank < world_; ++rank) {
    auto [begin, end] = ShardRange(rank, world_, 0, spec_.batch_size);
    if (begin == end) continue;
    // What the worker does on a GradRequest: load the coordinator's
    // weights, zero local grads, forward/backward its slice.
    for (std::size_t k = 0; k < replica_params_.size(); ++k) {
      std::copy(trainer_params_[k].value->data(),
                trainer_params_[k].value->data() +
                    trainer_params_[k].value->size(),
                replica_params_[k].value->data());
      float* g = replica_params_[k].grad->data();
      std::fill(g, g + replica_params_[k].grad->size(), 0.0f);
    }
    FillWorkerBatch(*data_, spec_, iteration, rank, world_, &input_,
                    &labels_);
    replica_->Forward(input_, &logits_, /*train=*/true);
    double slice_loss =
        SoftmaxCrossEntropy::ForwardBackward(logits_, labels_, &grad_logits_);
    replica_->Backward(grad_logits_, &grad_input_);
    // What the coordinator does with the reply: rank-order fold with float
    // weight slice_rows / batch_size (rank 0 assigns — so world 1 forwards
    // the replica's gradient bits unchanged, 1.0f * g being exact).
    double weight = static_cast<double>(end - begin) /
                    static_cast<double>(spec_.batch_size);
    auto wf = static_cast<float>(weight);
    for (std::size_t k = 0; k < replica_params_.size(); ++k) {
      const float* src = replica_params_[k].grad->data();
      float* dst = trainer_params_[k].grad->data();
      std::int64_t count = replica_params_[k].grad->size();
      if (rank == 0) {
        for (std::int64_t m = 0; m < count; ++m) dst[m] = wf * src[m];
      } else {
        for (std::int64_t m = 0; m < count; ++m) dst[m] += wf * src[m];
      }
    }
    loss = rank == 0 ? weight * slice_loss : loss + weight * slice_loss;
  }
  return loss;
}

LocalShardedEStep::LocalShardedEStep(int world) : world_(world) {
  GMREG_CHECK_GE(world, 1);
}

void LocalShardedEStep::RunEStep(const GaussianMixture& gm, const float* w,
                                 std::int64_t n, float* greg_out,
                                 GmSuffStats* stats) {
  for (int rank = 0; rank < world_; ++rank) {
    auto [begin, end] = ShardRange(rank, world_, 0, n);
    if (begin == end) continue;
    // What the worker does on an EStepRequest: one serial EStep over its
    // slice (num_threads = 1), greg written in place at the slice offset.
    if (greg_out != nullptr && stats == nullptr) {
      EStep(gm, w + begin, end - begin, greg_out + begin,
            /*stats=*/nullptr, /*num_threads=*/1);
    } else if (stats != nullptr) {
      slice_stats_.Reset(gm.num_components());
      EStep(gm, w + begin, end - begin,
            greg_out == nullptr ? nullptr : greg_out + begin, &slice_stats_,
            /*num_threads=*/1);
      // What the coordinator does with the replies: fold in rank order.
      stats->Merge(slice_stats_);
    }
  }
}

}  // namespace gmreg
