#ifndef GMREG_DIST_LOCAL_H_
#define GMREG_DIST_LOCAL_H_

#include <memory>
#include <vector>

#include "core/gm_regularizer.h"
#include "dist/job.h"
#include "nn/layer.h"
#include "optim/trainer.h"

namespace gmreg {

// ---------------------------------------------------------------------------
// Single-process reference of the distributed arithmetic.
//
// The determinism contract (docs/DISTRIBUTED.md) is world-count-shaped, the
// same way the parallel kernels' contract is thread-budget-shaped: a
// distributed run with W workers is bitwise identical to a SINGLE process
// that executes the same W rank slices serially and folds them in the same
// rank order. These two classes are that single process — every operation
// (per-rank replica forward/backward, the float-scaled rank-order gradient
// fold, per-slice serial E-steps, the rank-order suffstat merge) mirrors
// the coordinator + worker codepaths operation for operation, minus the
// sockets. dist(1) in turn folds one full-width slice with weight 1.0, so
// it degenerates to the vanilla in-process Trainer::Train arithmetic.
// ---------------------------------------------------------------------------

/// GradientSource computing what W distributed workers would: for each rank
/// r in order, load the trainer's weights into a private replica network,
/// run forward/backward on rank r's slice of the step's global batch, and
/// fold the replica's gradients into the trainer's with float weight
/// (slice_rows / batch_size) — rank 0 assigns, later ranks add.
class LocalShardedSource : public GradientSource {
 public:
  /// `trainer_params` are the coordinator-side tensors to read weights from
  /// and fold gradients into (borrowed). `data` is borrowed too.
  LocalShardedSource(const DistJobSpec& spec, const Dataset* data, int world,
                     const std::vector<ParamRef>& trainer_params);

  double ComputeGradient(std::int64_t iteration, int epoch) override;

 private:
  DistJobSpec spec_;
  const Dataset* data_;
  int world_;
  std::vector<ParamRef> trainer_params_;
  // Per-rank worker stand-in: one replica network reused across ranks (a
  // worker's state is overwritten by every request anyway — statelessness
  // is the point).
  std::unique_ptr<Sequential> replica_;
  std::vector<ParamRef> replica_params_;
  Tensor input_;
  std::vector<int> labels_;
  Tensor logits_;
  Tensor grad_logits_;
  Tensor grad_input_;
};

/// GmEStepExecutor computing what W distributed workers would: the weight
/// vector splits into the W ShardRange slices, each slice runs a SERIAL
/// EStep (greg is elementwise, so slices concatenate exactly; suffstats
/// accumulate per slice), and per-slice suffstats fold in rank order.
class LocalShardedEStep : public GmEStepExecutor {
 public:
  explicit LocalShardedEStep(int world);

  void RunEStep(const GaussianMixture& gm, const float* w, std::int64_t n,
                float* greg_out, GmSuffStats* stats) override;

 private:
  int world_;
  GmSuffStats slice_stats_;  ///< scratch, reused across slices
};

}  // namespace gmreg

#endif  // GMREG_DIST_LOCAL_H_
