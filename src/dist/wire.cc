#include "dist/wire.h"

#include <cstring>

namespace gmreg {
namespace {

// Payload ceilings: a tensor or slice larger than this is a protocol error,
// not a legitimate message (the job's MLPs are a few thousand parameters).
constexpr std::int64_t kMaxWireElements = std::int64_t{1} << 27;  // 128M
constexpr std::uint32_t kMaxWireParams = 4096;

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what +
                                 " message");
}

}  // namespace

void WireWriter::PutU8(std::uint8_t v) {
  payload_.push_back(static_cast<char>(v));
}

void WireWriter::PutU32(std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  payload_.append(b, 4);
}

void WireWriter::PutU64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  payload_.append(b, 8);
}

void WireWriter::PutI64(std::int64_t v) {
  PutU64(static_cast<std::uint64_t>(v));
}

void WireWriter::PutDouble(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(bits);
}

void WireWriter::PutFloats(const float* data, std::int64_t count) {
  PutI64(count);
  payload_.append(reinterpret_cast<const char*>(data),
                  static_cast<std::size_t>(count) * sizeof(float));
}

void WireWriter::PutDoubles(const double* data, std::int64_t count) {
  PutI64(count);
  payload_.append(reinterpret_cast<const char*>(data),
                  static_cast<std::size_t>(count) * sizeof(double));
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<std::uint32_t>(s.size()));
  payload_.append(s);
}

bool WireReader::Take(void* dst, std::size_t n) {
  if (payload_.size() - pos_ < n) return false;
  std::memcpy(dst, payload_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool WireReader::GetU8(std::uint8_t* v) { return Take(v, 1); }

bool WireReader::GetU32(std::uint32_t* v) {
  unsigned char b[4];
  if (!Take(b, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return true;
}

bool WireReader::GetU64(std::uint64_t* v) {
  unsigned char b[8];
  if (!Take(b, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return true;
}

bool WireReader::GetI64(std::int64_t* v) {
  std::uint64_t u;
  if (!GetU64(&u)) return false;
  *v = static_cast<std::int64_t>(u);
  return true;
}

bool WireReader::GetDouble(double* v) {
  std::uint64_t bits;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof bits);
  return true;
}

bool WireReader::GetFloats(std::vector<float>* out) {
  std::int64_t count;
  if (!GetI64(&count) || count < 0 || count > kMaxWireElements) return false;
  out->resize(static_cast<std::size_t>(count));
  return Take(out->data(), static_cast<std::size_t>(count) * sizeof(float));
}

bool WireReader::GetDoubles(std::vector<double>* out) {
  std::int64_t count;
  if (!GetI64(&count) || count < 0 || count > kMaxWireElements) return false;
  out->resize(static_cast<std::size_t>(count));
  return Take(out->data(), static_cast<std::size_t>(count) * sizeof(double));
}

bool WireReader::GetString(std::string* out) {
  std::uint32_t len;
  if (!GetU32(&len)) return false;
  if (payload_.size() - pos_ < len) return false;
  out->assign(payload_, pos_, len);
  pos_ += len;
  return true;
}

std::string HelloMsg::Encode() const {
  WireWriter w;
  w.PutU32(rank);
  w.PutU32(world);
  return w.Take();
}

Status HelloMsg::Decode(const std::string& payload, HelloMsg* out) {
  WireReader r(payload);
  if (!r.GetU32(&out->rank) || !r.GetU32(&out->world) || !r.AtEnd()) {
    return Truncated("hello");
  }
  if (out->world == 0 || out->rank >= out->world) {
    return Status::OutOfRange("hello rank/world out of range");
  }
  return Status::Ok();
}

std::string GradRequestMsg::Encode() const {
  WireWriter w;
  w.PutI64(step);
  w.PutI64(epoch);
  w.PutU32(static_cast<std::uint32_t>(params.size()));
  for (const std::vector<float>& p : params) {
    w.PutFloats(p.data(), static_cast<std::int64_t>(p.size()));
  }
  return w.Take();
}

Status GradRequestMsg::Decode(const std::string& payload,
                              GradRequestMsg* out) {
  WireReader r(payload);
  std::uint32_t num_params;
  if (!r.GetI64(&out->step) || !r.GetI64(&out->epoch) ||
      !r.GetU32(&num_params) || num_params > kMaxWireParams) {
    return Truncated("grad-request");
  }
  out->params.resize(num_params);
  for (std::vector<float>& p : out->params) {
    if (!r.GetFloats(&p)) return Truncated("grad-request");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing garbage in grad-request");
  }
  return Status::Ok();
}

std::string GradReplyMsg::Encode() const {
  WireWriter w;
  w.PutI64(step);
  w.PutDouble(loss);
  w.PutU32(static_cast<std::uint32_t>(grads.size()));
  for (const std::vector<float>& g : grads) {
    w.PutFloats(g.data(), static_cast<std::int64_t>(g.size()));
  }
  return w.Take();
}

Status GradReplyMsg::Decode(const std::string& payload, GradReplyMsg* out) {
  WireReader r(payload);
  std::uint32_t num_params;
  if (!r.GetI64(&out->step) || !r.GetDouble(&out->loss) ||
      !r.GetU32(&num_params) || num_params > kMaxWireParams) {
    return Truncated("grad-reply");
  }
  out->grads.resize(num_params);
  for (std::vector<float>& g : out->grads) {
    if (!r.GetFloats(&g)) return Truncated("grad-reply");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing garbage in grad-reply");
  }
  return Status::Ok();
}

std::string EStepRequestMsg::Encode() const {
  WireWriter w;
  w.PutI64(seq);
  w.PutU8(want_greg ? 1 : 0);
  w.PutU8(want_stats ? 1 : 0);
  w.PutDoubles(pi.data(), static_cast<std::int64_t>(pi.size()));
  w.PutDoubles(lambda.data(), static_cast<std::int64_t>(lambda.size()));
  w.PutI64(slice_begin);
  w.PutFloats(this->w.data(), static_cast<std::int64_t>(this->w.size()));
  return w.Take();
}

Status EStepRequestMsg::Decode(const std::string& payload,
                               EStepRequestMsg* out) {
  WireReader r(payload);
  std::uint8_t want_greg, want_stats;
  if (!r.GetI64(&out->seq) || !r.GetU8(&want_greg) || !r.GetU8(&want_stats) ||
      !r.GetDoubles(&out->pi) || !r.GetDoubles(&out->lambda) ||
      !r.GetI64(&out->slice_begin) || !r.GetFloats(&out->w) || !r.AtEnd()) {
    return Truncated("estep-request");
  }
  out->want_greg = want_greg != 0;
  out->want_stats = want_stats != 0;
  if (out->pi.empty() || out->pi.size() != out->lambda.size()) {
    return Status::OutOfRange("estep-request mixture is malformed");
  }
  if (out->slice_begin < 0) {
    return Status::OutOfRange("estep-request slice_begin is negative");
  }
  return Status::Ok();
}

std::string EStepReplyMsg::Encode() const {
  WireWriter w;
  w.PutI64(seq);
  w.PutU8(greg.empty() ? 0 : 1);
  if (!greg.empty()) {
    w.PutFloats(greg.data(), static_cast<std::int64_t>(greg.size()));
  }
  w.PutU8(stats_encoded.empty() ? 0 : 1);
  if (!stats_encoded.empty()) w.PutString(stats_encoded);
  return w.Take();
}

Status EStepReplyMsg::Decode(const std::string& payload, EStepReplyMsg* out) {
  WireReader r(payload);
  std::uint8_t has_greg, has_stats;
  out->greg.clear();
  out->stats_encoded.clear();
  if (!r.GetI64(&out->seq) || !r.GetU8(&has_greg)) {
    return Truncated("estep-reply");
  }
  if (has_greg != 0 && !r.GetFloats(&out->greg)) {
    return Truncated("estep-reply");
  }
  if (!r.GetU8(&has_stats)) return Truncated("estep-reply");
  if (has_stats != 0 && !r.GetString(&out->stats_encoded)) {
    return Truncated("estep-reply");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing garbage in estep-reply");
  }
  return Status::Ok();
}

}  // namespace gmreg
