#ifndef GMREG_DIST_WIRE_H_
#define GMREG_DIST_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/gaussian_mixture.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace gmreg {

// ---------------------------------------------------------------------------
// Message bodies of the coordinator/worker protocol (docs/DISTRIBUTED.md).
//
// Transport framing (length prefix + type byte) is util/net.h WriteFrame /
// ReadFrame; this header defines the payload encodings. Tensors travel as
// raw IEEE-754 float/double bytes — bit-exact by construction — and the GM
// sufficient statistics as the hex-float text record of core/merge.h. All
// integers are little-endian. The protocol is single-host by design
// (loopback sockets between processes sharing one build), so no
// cross-architecture concessions are made beyond fixing the byte order.
// ---------------------------------------------------------------------------

/// Frame type byte of every dist message.
enum class DistFrame : std::uint8_t {
  kHello = 1,         ///< worker -> coordinator: rank + world (also rejoin)
  kWelcome = 2,       ///< coordinator -> worker: admission ack
  kGradRequest = 3,   ///< coordinator -> worker: step + current weights
  kGradReply = 4,     ///< worker -> coordinator: step + loss + gradients
  kEStepRequest = 5,  ///< coordinator -> worker: mixture + weight slice
  kEStepReply = 6,    ///< worker -> coordinator: greg slice and/or stats
  kShutdown = 7,      ///< coordinator -> worker: clean exit
};

/// Appends POD values to a payload string / reads them back in order.
/// Integers are written little-endian; floating-point values as their raw
/// IEEE bytes (exact round trip). Read methods return false on truncation.
class WireWriter {
 public:
  void PutU8(std::uint8_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI64(std::int64_t v);
  void PutDouble(double v);
  void PutFloats(const float* data, std::int64_t count);  ///< count + bytes
  void PutDoubles(const double* data, std::int64_t count);
  void PutString(const std::string& s);  ///< u32 length + bytes

  const std::string& payload() const { return payload_; }
  std::string Take() { return std::move(payload_); }

 private:
  std::string payload_;
};

class WireReader {
 public:
  explicit WireReader(const std::string& payload) : payload_(payload) {}

  bool GetU8(std::uint8_t* v);
  bool GetU32(std::uint32_t* v);
  bool GetU64(std::uint64_t* v);
  bool GetI64(std::int64_t* v);
  bool GetDouble(double* v);
  bool GetFloats(std::vector<float>* out);  ///< paired with PutFloats
  bool GetDoubles(std::vector<double>* out);
  bool GetString(std::string* out);

  /// True when every payload byte has been consumed — message decoders
  /// require this so trailing garbage is an error, not silently ignored.
  bool AtEnd() const { return pos_ == payload_.size(); }

 private:
  bool Take(void* dst, std::size_t n);

  const std::string& payload_;
  std::size_t pos_ = 0;
};

/// kHello payload. A rejoining (respawned) worker sends the identical
/// message — admission and re-admission are the same code path.
struct HelloMsg {
  std::uint32_t rank = 0;
  std::uint32_t world = 0;

  std::string Encode() const;
  static Status Decode(const std::string& payload, HelloMsg* out);
};

/// kGradRequest payload: the global step to compute plus every parameter
/// tensor's current values (flat float bytes, in the trainer's fixed
/// parameter order). Stateless by design: it carries everything a freshly
/// respawned worker needs to serve it.
struct GradRequestMsg {
  std::int64_t step = 0;
  std::int64_t epoch = 0;
  std::vector<std::vector<float>> params;

  std::string Encode() const;
  static Status Decode(const std::string& payload, GradRequestMsg* out);
};

/// kGradReply payload: the step echoed back, the slice's batch loss, and
/// the per-parameter data-loss gradients of this rank's rows.
struct GradReplyMsg {
  std::int64_t step = 0;
  double loss = 0.0;
  std::vector<std::vector<float>> grads;

  std::string Encode() const;
  static Status Decode(const std::string& payload, GradReplyMsg* out);
};

/// kEStepRequest payload: one E-step slice job — the current mixture (raw
/// double bytes), which outputs are wanted, and the weight slice
/// [slice_begin, slice_begin + w.size()) of the regularized tensor.
struct EStepRequestMsg {
  std::int64_t seq = 0;  ///< coordinator's E-step round counter (echoed)
  bool want_greg = false;
  bool want_stats = false;
  std::vector<double> pi;
  std::vector<double> lambda;
  std::int64_t slice_begin = 0;
  std::vector<float> w;

  std::string Encode() const;
  static Status Decode(const std::string& payload, EStepRequestMsg* out);
};

/// kEStepReply payload: the slice's greg values (when requested) and/or
/// its GM sufficient statistics as a core/merge.h hex-float record (exact
/// round trip — the coordinator's rank-order fold of these equals the
/// in-process merge bit for bit).
struct EStepReplyMsg {
  std::int64_t seq = 0;
  std::vector<float> greg;    ///< empty when not requested
  std::string stats_encoded;  ///< empty when not requested

  std::string Encode() const;
  static Status Decode(const std::string& payload, EStepReplyMsg* out);
};

}  // namespace gmreg

#endif  // GMREG_DIST_WIRE_H_
