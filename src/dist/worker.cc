#include "dist/worker.h"

#include <algorithm>

#include "core/em.h"
#include "core/merge.h"
#include "dist/wire.h"
#include "nn/loss.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/net.h"
#include "util/parallel.h"

namespace gmreg {
namespace {

/// One worker's long-lived state: the job replica (dataset + network) plus
/// reusable buffers. Everything request-dependent is overwritten per
/// request.
struct WorkerState {
  Dataset data;
  std::unique_ptr<Sequential> net;
  std::vector<ParamRef> params;
  Tensor input;
  std::vector<int> labels;
  Tensor logits;
  Tensor grad_logits;
  Tensor grad_input;
  GmSuffStats stats;
  std::vector<float> greg;
};

Status ServeGradRequest(const DistJobSpec& spec,
                        const DistWorkerOptions& options, WorkerState* state,
                        int fd, const std::string& payload) {
  GradRequestMsg request;
  GMREG_RETURN_IF_ERROR(GradRequestMsg::Decode(payload, &request));
  if (request.params.size() != state->params.size()) {
    return Status::FailedPrecondition(
        "grad-request parameter count does not match the job's network");
  }
  for (std::size_t k = 0; k < state->params.size(); ++k) {
    const std::vector<float>& src = request.params[k];
    if (static_cast<std::int64_t>(src.size()) !=
        state->params[k].value->size()) {
      return Status::FailedPrecondition(
          "grad-request parameter shape does not match the job's network");
    }
    std::copy(src.begin(), src.end(), state->params[k].value->data());
    float* g = state->params[k].grad->data();
    std::fill(g, g + state->params[k].grad->size(), 0.0f);
  }
  FillWorkerBatch(state->data, spec, request.step, options.rank,
                  options.world, &state->input, &state->labels);
  GradReplyMsg reply;
  reply.step = request.step;
  if (state->labels.empty()) {
    // Degenerate slice (batch smaller than the world); contributes weight 0
    // at the coordinator, so zero grads are exact.
    reply.loss = 0.0;
  } else {
    state->net->Forward(state->input, &state->logits, /*train=*/true);
    reply.loss = SoftmaxCrossEntropy::ForwardBackward(
        state->logits, state->labels, &state->grad_logits);
    state->net->Backward(state->grad_logits, &state->grad_input);
  }
  reply.grads.reserve(state->params.size());
  for (const ParamRef& p : state->params) {
    reply.grads.emplace_back(p.grad->data(), p.grad->data() + p.grad->size());
  }
  GMREG_RETURN_IF_ERROR(
      WriteFrame(fd, static_cast<std::uint8_t>(DistFrame::kGradReply),
                 reply.Encode()));
  // The mid-epoch kill point: after the reply is on the wire, exactly the
  // worst moment — the coordinator holds a gradient whose producer is gone.
  FaultInjector::Global().MaybeCrashAfterStep(request.step);
  return Status::Ok();
}

Status ServeEStepRequest(WorkerState* state, int fd,
                         const std::string& payload) {
  EStepRequestMsg request;
  GMREG_RETURN_IF_ERROR(EStepRequestMsg::Decode(payload, &request));
  GaussianMixture gm = GaussianMixture::FromSerialized(std::move(request.pi),
                                                       std::move(request.lambda));
  auto n = static_cast<std::int64_t>(request.w.size());
  EStepReplyMsg reply;
  reply.seq = request.seq;
  if (n > 0) {
    float* greg_out = nullptr;
    if (request.want_greg) {
      state->greg.resize(request.w.size());
      greg_out = state->greg.data();
    }
    GmSuffStats* stats = nullptr;
    if (request.want_stats) {
      state->stats.Reset(gm.num_components());
      stats = &state->stats;
    }
    // Serial E-step over the slice (num_threads = 1): the per-slice
    // arithmetic every world size agrees on.
    EStep(gm, request.w.data(), n, greg_out, stats, /*num_threads=*/1);
    if (request.want_greg) reply.greg = state->greg;
    if (request.want_stats) {
      reply.stats_encoded = EncodeGmSuffStats(state->stats);
    }
  }
  return WriteFrame(fd, static_cast<std::uint8_t>(DistFrame::kEStepReply),
                    reply.Encode());
}

}  // namespace

int RunDistWorker(const DistJobSpec& spec, const DistWorkerOptions& options) {
  GMREG_CHECK_GE(options.rank, 0);
  GMREG_CHECK_LT(options.rank, options.world);
  // Serial kernels only: workers are the determinism baseline, and a
  // thread budget of 1 never instantiates the global pool, keeping the
  // enclosing process tree fork-safe (docs/PARALLELISM.md).
  SetDefaultNumThreads(1);
  WorkerState state;
  state.data = BuildJobDataset(spec);
  state.net = BuildJobModel(spec, state.data);
  state.net->CollectParams(&state.params);

  int fd = -1;
  Status st = ConnectLoopback(options.port, &fd);
  if (!st.ok()) {
    GMREG_LOG(Error) << "worker " << options.rank
                     << ": connect failed: " << st.ToString();
    return 1;
  }
  HelloMsg hello;
  hello.rank = static_cast<std::uint32_t>(options.rank);
  hello.world = static_cast<std::uint32_t>(options.world);
  st = WriteFrame(fd, static_cast<std::uint8_t>(DistFrame::kHello),
                  hello.Encode());
  std::uint8_t type = 0;
  std::string payload;
  if (st.ok()) st = ReadFrame(fd, &type, &payload);
  if (st.ok() && type != static_cast<std::uint8_t>(DistFrame::kWelcome)) {
    st = Status::InvalidArgument("expected a welcome frame");
  }
  if (!st.ok()) {
    GMREG_LOG(Error) << "worker " << options.rank
                     << ": admission failed: " << st.ToString();
    CloseFd(fd);
    return 1;
  }

  int exit_code = 1;
  while (true) {
    st = ReadFrame(fd, &type, &payload);
    if (!st.ok()) {
      // Coordinator gone (EOF mid-run is how a coordinator crash looks from
      // here). Nothing to save — workers are stateless.
      GMREG_LOG(Warning) << "worker " << options.rank
                         << ": coordinator connection lost: " << st.ToString();
      break;
    }
    if (type == static_cast<std::uint8_t>(DistFrame::kShutdown)) {
      exit_code = 0;
      break;
    } else if (type == static_cast<std::uint8_t>(DistFrame::kGradRequest)) {
      st = ServeGradRequest(spec, options, &state, fd, payload);
    } else if (type == static_cast<std::uint8_t>(DistFrame::kEStepRequest)) {
      st = ServeEStepRequest(&state, fd, payload);
    } else {
      st = Status::InvalidArgument("unexpected frame type from coordinator");
    }
    if (!st.ok()) {
      GMREG_LOG(Error) << "worker " << options.rank << ": " << st.ToString();
      break;
    }
  }
  CloseFd(fd);
  return exit_code;
}

}  // namespace gmreg
