#ifndef GMREG_DIST_WORKER_H_
#define GMREG_DIST_WORKER_H_

#include "dist/job.h"

namespace gmreg {

struct DistWorkerOptions {
  int port = 0;   ///< coordinator's loopback port
  int rank = 0;
  int world = 1;
};

/// Runs one worker to completion: connect, Hello/Welcome, then serve
/// GradRequest / EStepRequest frames until a Shutdown frame (returns 0) or
/// the connection drops (returns 1 — the coordinator died; there is nothing
/// to fail over to). Returned as an exit code by tools/gmreg_dist and the
/// forked launcher children.
///
/// Workers are deliberately STATELESS between requests: every request
/// carries the weights / mixture it is to be evaluated against, and the
/// batch rows are a pure function of (job spec, step, rank). Two
/// consequences the fault story rests on: serving a request twice returns
/// identical bytes, and a freshly respawned worker is indistinguishable
/// from the one it replaces (docs/DISTRIBUTED.md).
///
/// Fault injection: after serving the gradient for step N with
/// GMREG_FAULT=crash_after_step:N armed, the worker exits hard
/// (kFaultCrashExitCode) — the mid-epoch kill dist_fault_test recovers
/// from. The match is exact, so the respawned worker sails past step N+1.
int RunDistWorker(const DistJobSpec& spec, const DistWorkerOptions& options);

}  // namespace gmreg

#endif  // GMREG_DIST_WORKER_H_
