#include "eval/deep_experiment.h"

#include <algorithm>

#include "core/merge.h"
#include "data/batch.h"
#include "models/alex_cifar10.h"
#include "models/resnet.h"
#include "reg/norms.h"
#include "util/logging.h"

namespace gmreg {

const char* DeepModelName(DeepModel model) {
  switch (model) {
    case DeepModel::kAlexCifar10:
      return "Alex-CIFAR-10";
    case DeepModel::kResNet:
      return "ResNet";
  }
  return "?";
}

const char* DeepRegKindName(DeepRegKind kind) {
  switch (kind) {
    case DeepRegKind::kNone:
      return "no regularization";
    case DeepRegKind::kL2:
      return "L2 Reg";
    case DeepRegKind::kGm:
      return "GM regularization";
  }
  return "?";
}

DeepExperimentResult RunDeepExperiment(const CifarLikePair& data,
                                       const DeepExperimentOptions& options,
                                       DeepRegKind kind) {
  Rng rng(options.seed);
  std::unique_ptr<Sequential> net;
  bool is_resnet = options.model == DeepModel::kResNet;
  if (is_resnet) {
    ResNetConfig cfg;
    cfg.input_hw = options.input_hw;
    net = BuildResNet(cfg, &rng);
  } else {
    AlexCifar10Config cfg;
    cfg.input_hw = options.input_hw;
    net = BuildAlexCifar10(cfg, &rng);
  }

  TrainOptions topts;
  topts.epochs = options.epochs;
  topts.batch_size = options.batch_size;
  topts.learning_rate = options.learning_rate > 0.0
                            ? options.learning_rate
                            : (is_resnet ? 0.1 : 0.001);
  topts.momentum = options.momentum;
  topts.lr_schedule = options.lr_schedule;
  topts.num_train_samples = data.train.num_samples();
  Trainer trainer(net.get(), topts);

  std::vector<GmRegularizer*> gm_regs;
  DeepExperimentResult result;
  switch (kind) {
    case DeepRegKind::kNone:
      break;
    case DeepRegKind::kL2:
      trainer.AttachToAllWeights(
          [&](const ParamRef& p) -> std::unique_ptr<Regularizer> {
            bool is_dense = p.name.find("dense") != std::string::npos ||
                            p.name.find("ip5") != std::string::npos;
            double beta = is_dense ? options.l2_dense : options.l2_conv;
            return std::make_unique<L2Reg>(beta);
          });
      break;
    case DeepRegKind::kGm:
      trainer.AttachToAllWeights(
          [&](const ParamRef& p) -> std::unique_ptr<Regularizer> {
            GmOptions gm = options.gm;
            gm.min_precision = MinPrecisionFromInitStdDev(p.init_stddev);
            auto reg = std::make_unique<GmRegularizer>(p.name,
                                                       p.value->size(), gm);
            gm_regs.push_back(reg.get());
            return reg;
          });
      break;
  }
  for (const ParamRef& p : trainer.params()) {
    if (p.is_weight) result.num_weight_dims += p.value->size();
  }

  bool augment = options.augment >= 0 ? options.augment != 0 : is_resnet;
  std::int64_t n = data.train.num_samples();
  BatchIterator batches(n, options.batch_size, &rng);
  Trainer::BatchFn next_batch = [&](Tensor* input, std::vector<int>* labels) {
    const std::vector<int>& idx = batches.Next();
    // Shape compare without materializing a vector: this runs every batch
    // and the steady state must not allocate (docs/MEMORY.md).
    const std::int64_t want[4] = {static_cast<std::int64_t>(idx.size()),
                                  data.train.channels(), data.train.height(),
                                  data.train.width()};
    const std::vector<std::int64_t>& cur = input->shape();
    if (cur.size() != 4 || !std::equal(want, want + 4, cur.begin())) {
      *input = Tensor({want[0], want[1], want[2], want[3]});
    }
    GatherImageBatch(data.train, idx, augment, /*pad=*/2, &rng, input,
                     labels);
  };
  result.epoch_stats = trainer.Train(next_batch, batches.NumBatches());
  result.total_seconds = result.epoch_stats.empty()
                             ? 0.0
                             : result.epoch_stats.back().elapsed_seconds;
  result.test_accuracy = trainer.EvaluateAccuracy(
      data.test.images, data.test.labels, /*eval_batch=*/64);
  result.train_accuracy = trainer.EvaluateAccuracy(
      data.train.images, data.train.labels, /*eval_batch=*/64);
  for (GmRegularizer* reg : gm_regs) {
    result.total_esteps += reg->estep_count();
    result.total_msteps += reg->mstep_count();
    GaussianMixture merged = MergeSimilarComponents(reg->mixture());
    LayerGm lg;
    lg.layer = reg->param_name();
    lg.pi = merged.pi();
    lg.lambda = merged.lambda();
    lg.effective_components = merged.EffectiveComponents();
    result.learned.push_back(std::move(lg));
  }
  return result;
}

}  // namespace gmreg
