#ifndef GMREG_EVAL_DEEP_EXPERIMENT_H_
#define GMREG_EVAL_DEEP_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/gm_regularizer.h"
#include "data/cifar_like.h"
#include "optim/trainer.h"

namespace gmreg {

enum class DeepModel { kAlexCifar10, kResNet };
enum class DeepRegKind { kNone, kL2, kGm };

const char* DeepModelName(DeepModel model);
const char* DeepRegKindName(DeepRegKind kind);

/// One deep-learning training run (the shared harness behind Tables IV-VI,
/// VIII and Figs. 4-7). Defaults follow the paper where applicable:
/// momentum 0.9, lr 0.001 (Alex) / 0.1 (ResNet), augmentation for ResNet
/// only, Gaussian(0.1) init for Alex and He init for ResNet.
struct DeepExperimentOptions {
  DeepModel model = DeepModel::kAlexCifar10;
  int input_hw = 16;
  int epochs = 8;
  std::int64_t batch_size = 32;
  /// 0 = per-model paper default (0.001 Alex, 0.1 ResNet).
  double learning_rate = 0.0;
  double momentum = 0.9;
  std::vector<std::pair<int, double>> lr_schedule;
  /// -1 = per-model paper default (augment ResNet, not Alex).
  int augment = -1;
  std::uint64_t seed = 123;
  /// Expert-tuned L2 precisions (paper Tables IV/V bottom): for Alex the
  /// conv layers use `l2_conv` and the dense layer `l2_dense`; for ResNet
  /// both default to the same value.
  double l2_conv = 200.0;
  double l2_dense = 50000.0;
  /// GM settings; min_precision is recomputed per layer from its init
  /// stddev (Sec. V-E rule), so the value here is ignored.
  GmOptions gm;
};

/// Learned mixture for one weight layer (a Table IV/V row).
struct LayerGm {
  std::string layer;
  std::vector<double> pi;
  std::vector<double> lambda;
  int effective_components = 0;
};

struct DeepExperimentResult {
  double test_accuracy = 0.0;
  double train_accuracy = 0.0;  ///< on un-augmented training images
  std::vector<EpochStats> epoch_stats;  ///< cumulative time per epoch
  double total_seconds = 0.0;
  std::vector<LayerGm> learned;  ///< merged per-layer GMs (kGm only)
  std::int64_t num_weight_dims = 0;  ///< total regularized dimensions
  std::int64_t total_esteps = 0;  ///< E-step passes across all layers (kGm)
  std::int64_t total_msteps = 0;  ///< M-step passes across all layers (kGm)
};

/// Builds the model, attaches the requested regularization, trains on
/// data.train, evaluates on data.test.
DeepExperimentResult RunDeepExperiment(const CifarLikePair& data,
                                       const DeepExperimentOptions& options,
                                       DeepRegKind kind);

}  // namespace gmreg

#endif  // GMREG_EVAL_DEEP_EXPERIMENT_H_
