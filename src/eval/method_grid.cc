#include "eval/method_grid.h"

#include "core/gm_regularizer.h"
#include "core/hyper.h"
#include "reg/dynamic_prior.h"
#include "reg/epgig.h"
#include "reg/norms.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

const std::vector<double>& StrengthGrid() {
  static const auto& grid = *new std::vector<double>{
      0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0};
  return grid;
}

}  // namespace

RegMethod L1Method() {
  RegMethod m{"L1 Reg", {}};
  for (double beta : StrengthGrid()) {
    m.grid.push_back({StrFormat("beta=%g", beta),
                      [beta](std::int64_t, double) {
                        return std::make_unique<L1Reg>(beta);
                      }});
  }
  return m;
}

RegMethod L2Method() {
  RegMethod m{"L2 Reg", {}};
  for (double beta : StrengthGrid()) {
    m.grid.push_back({StrFormat("beta=%g", beta),
                      [beta](std::int64_t, double) {
                        return std::make_unique<L2Reg>(beta);
                      }});
  }
  return m;
}

RegMethod ElasticNetMethod() {
  RegMethod m{"Elastic-net Reg", {}};
  for (double beta : {0.03, 0.3, 3.0, 30.0}) {
    for (double ratio : {0.15, 0.5, 0.85}) {
      m.grid.push_back({StrFormat("beta=%g,l1_ratio=%g", beta, ratio),
                        [beta, ratio](std::int64_t, double) {
                          return std::make_unique<ElasticNetReg>(beta, ratio);
                        }});
    }
  }
  return m;
}

RegMethod HuberMethod() {
  RegMethod m{"Huber Reg", {}};
  for (double beta : {0.03, 0.3, 3.0, 30.0}) {
    for (double mu : {0.01, 0.1, 1.0}) {
      m.grid.push_back({StrFormat("beta=%g,mu=%g", beta, mu),
                        [beta, mu](std::int64_t, double) {
                          return std::make_unique<HuberReg>(beta, mu);
                        }});
    }
  }
  return m;
}

RegMethod GmMethod() {
  RegMethod m{"GM Reg", {}};
  for (double gamma : GammaGrid()) {
    m.grid.push_back(
        {StrFormat("gamma=%g", gamma),
         [gamma](std::int64_t num_dims, double init_stddev) {
           GmOptions opts;
           opts.gamma = gamma;
           opts.min_precision = MinPrecisionFromInitStdDev(init_stddev);
           return std::make_unique<GmRegularizer>("w", num_dims, opts);
         }});
  }
  return m;
}

RegMethod EpGigMethod() {
  RegMethod m{"EP-GIG Reg", {}};
  for (double alpha : {0.3, 1.0, 3.0, 10.0}) {
    m.grid.push_back({StrFormat("mode=laplace,alpha=%g", alpha),
                      [alpha](std::int64_t num_dims, double) {
                        EpGigOptions opts;
                        opts.mode = EpGigMode::kLaplace;
                        opts.alpha = alpha;
                        return std::make_unique<EpGigReg>(num_dims, opts);
                      }});
  }
  for (double tau : {0.3, 1.0, 3.0, 10.0}) {
    m.grid.push_back({StrFormat("mode=student,tau=%g", tau),
                      [tau](std::int64_t num_dims, double) {
                        EpGigOptions opts;
                        opts.mode = EpGigMode::kStudent;
                        opts.tau = tau;
                        return std::make_unique<EpGigReg>(num_dims, opts);
                      }});
  }
  return m;
}

RegMethod DynPriorMethod() {
  RegMethod m{"Dynamic Prior Reg", {}};
  for (double beta : {0.03, 0.3, 3.0, 30.0}) {
    m.grid.push_back({StrFormat("beta=%g,schedule=exp", beta),
                      [beta](std::int64_t, double) {
                        DynPriorOptions opts;
                        opts.schedule = DynPriorSchedule::kExp;
                        opts.beta = beta;
                        opts.decay = 0.9;
                        return std::make_unique<DynamicPriorReg>(opts);
                      }});
    m.grid.push_back({StrFormat("beta=%g,schedule=inv", beta),
                      [beta](std::int64_t, double) {
                        DynPriorOptions opts;
                        opts.schedule = DynPriorSchedule::kInv;
                        opts.beta = beta;
                        opts.rate = 1.0;
                        return std::make_unique<DynamicPriorReg>(opts);
                      }});
  }
  return m;
}

std::vector<RegMethod> AllMethods() {
  std::vector<RegMethod> methods;
  methods.push_back(L1Method());
  methods.push_back(L2Method());
  methods.push_back(ElasticNetMethod());
  methods.push_back(HuberMethod());
  methods.push_back(GmMethod());
  methods.push_back(EpGigMethod());
  methods.push_back(DynPriorMethod());
  return methods;
}

}  // namespace gmreg
