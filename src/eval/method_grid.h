#ifndef GMREG_EVAL_METHOD_GRID_H_
#define GMREG_EVAL_METHOD_GRID_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "reg/regularizer.h"

namespace gmreg {

/// One hyper-parameter setting of a regularization method. `make` builds a
/// fresh regularizer for a parameter vector of `num_dims` dimensions
/// initialized with stddev `init_stddev` (only the adaptive GM method uses
/// these — its hyper rules depend on M and the init precision).
struct RegCandidate {
  std::string label;
  std::function<std::unique_ptr<Regularizer>(std::int64_t num_dims,
                                             double init_stddev)>
      make;
};

/// A regularization method plus its cross-validation grid, mirroring the
/// paper's protocol of reporting each baseline "under its best setting".
struct RegMethod {
  std::string name;
  std::vector<RegCandidate> grid;
};

/// The paper's five methods with sensible CV grids (strengths are prior
/// precisions/rates under the library's 1/N MAP scaling).
RegMethod L1Method();
RegMethod L2Method();
RegMethod ElasticNetMethod();
RegMethod HuberMethod();
/// GM Reg grid sweeps gamma over the paper's Sec. V-B1 grid; K = 4,
/// linear initialization, alpha exponent 0.5.
RegMethod GmMethod();
/// EP-GIG Reg grid sweeps the Laplace seed rate and the Student-t seed
/// precision scale (the adaptive M-steps learn the final value either way;
/// the seed sets where learning starts).
RegMethod EpGigMethod();
/// Dynamic-prior grid crosses the initial strength with the exponential
/// and inverse decay schedules.
RegMethod DynPriorMethod();

/// The paper's five methods in Table VII column order, followed by the
/// adaptive prior family (EP-GIG, dynamic prior) the library adds on top —
/// the cross-prior comparison grid of bench/bench_regularizer_grid.cc.
std::vector<RegMethod> AllMethods();

}  // namespace gmreg

#endif  // GMREG_EVAL_METHOD_GRID_H_
