#include "eval/metrics.h"

#include <cmath>

namespace gmreg {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double SampleStdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double StdError(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  return SampleStdDev(values) / std::sqrt(static_cast<double>(values.size()));
}

}  // namespace gmreg
