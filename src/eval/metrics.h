#ifndef GMREG_EVAL_METRICS_H_
#define GMREG_EVAL_METRICS_H_

#include <vector>

namespace gmreg {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 when n < 2.
double SampleStdDev(const std::vector<double>& values);

/// Standard error of the mean: SampleStdDev / sqrt(n). The "+/-" column of
/// the paper's Table VII.
double StdError(const std::vector<double>& values);

}  // namespace gmreg

#endif  // GMREG_EVAL_METRICS_H_
