#include "eval/small_data_experiment.h"

#include <map>

#include "data/preprocess.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "util/logging.h"

namespace gmreg {

double TrainEvalCandidate(const Dataset& train, const Dataset& test,
                          const RegCandidate& candidate,
                          const LogisticRegression::Options& lr_opts,
                          std::uint64_t seed) {
  Rng rng(seed);
  LogisticRegression model(train.num_features(), lr_opts, &rng);
  auto reg = candidate.make(train.num_features(), lr_opts.init_stddev);
  model.Train(train, reg.get(), &rng);
  return model.EvaluateAccuracy(test);
}

double CrossValidateCandidate(const Dataset& train,
                              const RegCandidate& candidate, int folds,
                              const LogisticRegression::Options& lr_opts,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TrainTestIndices> rounds =
      StratifiedKFold(train.labels, folds, &rng);
  std::vector<double> accs;
  accs.reserve(rounds.size());
  for (std::size_t f = 0; f < rounds.size(); ++f) {
    Dataset fold_train = SelectRows(train, rounds[f].train);
    Dataset fold_val = SelectRows(train, rounds[f].test);
    accs.push_back(TrainEvalCandidate(fold_train, fold_val, candidate,
                                      lr_opts, seed + 1000 + f));
  }
  return Mean(accs);
}

std::vector<MethodResult> RunSmallDataComparison(
    const TabularData& raw, const std::vector<RegMethod>& methods,
    const SmallDataOptions& options) {
  Status valid = raw.Validate();
  GMREG_CHECK(valid.ok()) << valid.ToString();
  std::vector<MethodResult> results(methods.size());
  std::vector<std::map<std::string, int>> chosen(methods.size());
  for (std::size_t m = 0; m < methods.size(); ++m) {
    results[m].method = methods[m].name;
  }
  Rng split_rng(options.seed);
  for (int s = 0; s < options.num_subsamples; ++s) {
    TrainTestIndices split =
        StratifiedSplit(raw.labels, options.test_fraction, &split_rng);
    Preprocessor prep;
    Status st = prep.Fit(raw, split.train);
    GMREG_CHECK(st.ok()) << st.ToString();
    Dataset train = prep.Transform(raw, split.train);
    Dataset test = prep.Transform(raw, split.test);
    for (std::size_t m = 0; m < methods.size(); ++m) {
      // Model selection by CV on the training split only.
      double best_cv = -1.0;
      const RegCandidate* best = nullptr;
      for (const RegCandidate& cand : methods[m].grid) {
        double cv = CrossValidateCandidate(
            train, cand, options.cv_folds, options.lr,
            options.seed + static_cast<std::uint64_t>(s) * 7919);
        if (cv > best_cv) {
          best_cv = cv;
          best = &cand;
        }
      }
      GMREG_CHECK(best != nullptr);
      double acc = TrainEvalCandidate(
          train, test, *best, options.lr,
          options.seed + static_cast<std::uint64_t>(s) * 104729 + m);
      results[m].per_subsample_accuracy.push_back(acc);
      ++chosen[m][best->label];
    }
  }
  for (std::size_t m = 0; m < methods.size(); ++m) {
    results[m].mean_accuracy = Mean(results[m].per_subsample_accuracy);
    results[m].stderr_accuracy = StdError(results[m].per_subsample_accuracy);
    int best_count = -1;
    for (const auto& [label, count] : chosen[m]) {
      if (count > best_count) {
        best_count = count;
        results[m].representative_setting = label;
      }
    }
  }
  return results;
}

}  // namespace gmreg
