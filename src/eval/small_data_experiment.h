#ifndef GMREG_EVAL_SMALL_DATA_EXPERIMENT_H_
#define GMREG_EVAL_SMALL_DATA_EXPERIMENT_H_

#include <string>
#include <vector>

#include "data/tabular.h"
#include "eval/method_grid.h"
#include "models/logistic_regression.h"

namespace gmreg {

/// Protocol of the paper's small-dataset study (Sec. V-C): for each of
/// `num_subsamples` stratified 80-20 splits, pick each method's best grid
/// setting by k-fold cross-validation on the training side, retrain on the
/// full training side, and measure test accuracy. Report mean +/- standard
/// error per method.
struct SmallDataOptions {
  int num_subsamples = 5;
  double test_fraction = 0.2;
  int cv_folds = 5;
  LogisticRegression::Options lr;
  std::uint64_t seed = 42;
};

struct MethodResult {
  std::string method;
  double mean_accuracy = 0.0;
  double stderr_accuracy = 0.0;
  /// Grid label chosen most often across subsamples (diagnostics).
  std::string representative_setting;
  std::vector<double> per_subsample_accuracy;
};

/// Trains one LR with the given candidate on `train` and returns accuracy
/// on `test`. Exposed for tests and examples.
double TrainEvalCandidate(const Dataset& train, const Dataset& test,
                          const RegCandidate& candidate,
                          const LogisticRegression::Options& lr_opts,
                          std::uint64_t seed);

/// Mean k-fold CV accuracy of `candidate` on `train`.
double CrossValidateCandidate(const Dataset& train,
                              const RegCandidate& candidate, int folds,
                              const LogisticRegression::Options& lr_opts,
                              std::uint64_t seed);

/// Runs the full protocol for every method. Results are in `methods` order.
std::vector<MethodResult> RunSmallDataComparison(
    const TabularData& raw, const std::vector<RegMethod>& methods,
    const SmallDataOptions& options);

}  // namespace gmreg

#endif  // GMREG_EVAL_SMALL_DATA_EXPERIMENT_H_
