#ifndef GMREG_GMREG_H_
#define GMREG_GMREG_H_

/// Umbrella header for the gmreg library — the adaptive lightweight GM
/// regularization tool (Luo et al., ICDE 2018) together with the substrate
/// it ships with. Include this to get the whole public API, or include the
/// individual headers (listed below, grouped by module) to keep builds
/// lean.

// The paper's contribution.
#include "core/em.h"               // E-step / M-step kernels (Eqs. 9-17)
#include "core/factory.h"          // regularizer from config string
#include "core/gaussian_mixture.h" // zero-mean GM prior
#include "core/gm_regularizer.h"   // the tool: Algorithms 1 & 2
#include "core/hyper.h"            // Dirichlet/Gamma rules (Sec. V-B1)
#include "core/merge.h"            // effective-component reporting
#include "core/serialize.h"        // persist / warm-start learned priors

// Baseline regularization methods (Sec. V baselines) and the sibling
// adaptive priors of the family (docs/REGULARIZERS.md).
#include "reg/dynamic_prior.h"
#include "reg/epgig.h"
#include "reg/norms.h"
#include "reg/regularizer.h"

// Models.
#include "models/alex_cifar10.h"
#include "models/logistic_regression.h"
#include "models/resnet.h"

// Training substrate.
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/pool.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "optim/sgd.h"
#include "optim/trainer.h"

// Persistence (crash-safe checkpoint/resume).
#include "io/checkpoint.h"     // versioned, checksummed training snapshots
#include "util/atomic_file.h"  // temp + fsync + rename file replacement
#include "util/fault.h"        // GMREG_FAULT crash/corruption injection

// Data layer.
#include "data/batch.h"
#include "data/cifar_like.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tabular.h"

// Evaluation protocols.
#include "eval/deep_experiment.h"
#include "eval/method_grid.h"
#include "eval/metrics.h"
#include "eval/small_data_experiment.h"

// Utilities.
#include "tensor/random.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/json_writer.h" // JSON emit/parse for telemetry traces
#include "util/metrics.h"     // telemetry registry, sinks, spans
#include "util/parallel.h"    // thread budget / sharded loops
#include "util/rng.h"
#include "util/status.h"

#endif  // GMREG_GMREG_H_
