#include "io/checkpoint.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>

#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

// Checkpoint-I/O accounting, surfaced through MetricsRegistry snapshots and
// documented in docs/OBSERVABILITY.md.
struct CkptCounters {
  Counter* saves;
  Counter* save_failures;
  Counter* write_retries;
  Counter* loads;
  Counter* corrupt_skipped;
  Counter* fallback_loads;
};

CkptCounters& GlobalCkptCounters() {
  static CkptCounters counters = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return CkptCounters{registry.counter("gm.checkpoint_saves"),
                        registry.counter("gm.checkpoint_save_failures"),
                        registry.counter("gm.checkpoint_write_retries"),
                        registry.counter("gm.checkpoint_loads"),
                        registry.counter("gm.checkpoint_corrupt_skipped"),
                        registry.counter("gm.checkpoint_fallback_loads")};
  }();
  return counters;
}

// Model-only load accounting (the serving hot-reload path).
struct ModelLoadCounters {
  Counter* loads;
  Counter* salvages;
  Counter* fallback_loads;
};

ModelLoadCounters& GlobalModelLoadCounters() {
  static ModelLoadCounters counters = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return ModelLoadCounters{
        registry.counter("gm.checkpoint_model_loads"),
        registry.counter("gm.checkpoint_model_salvages"),
        registry.counter("gm.checkpoint_model_fallback_loads")};
  }();
  return counters;
}

void AppendTensor(const char* tag, const std::string& name, const Tensor& t,
                  std::ostringstream* oss) {
  *oss << tag << " " << name << " " << t.rank();
  for (std::int64_t d : t.shape()) *oss << " " << d;
  const float* data = t.data();
  for (std::int64_t i = 0; i < t.size(); ++i) {
    // %.9g round-trips binary32 exactly and keeps files readable.
    *oss << " " << StrFormat("%.9g", static_cast<double>(data[i]));
  }
  *oss << "\n";
}

Status ParseTensor(std::istringstream* iss, const char* tag,
                   std::string* name, Tensor* out) {
  std::string got_tag;
  int rank = 0;
  if (!(*iss >> got_tag >> *name >> rank) || got_tag != tag) {
    return Status::InvalidArgument(StrFormat("expected '%s' line", tag));
  }
  if (rank < 0 || rank > 8) {
    return Status::InvalidArgument(StrFormat("bad tensor rank %d", rank));
  }
  std::vector<std::int64_t> shape(static_cast<std::size_t>(rank));
  for (std::int64_t& d : shape) {
    if (!(*iss >> d) || d <= 0) {
      return Status::InvalidArgument("bad tensor dimension");
    }
  }
  Tensor t(shape);
  float* data = t.data();
  for (std::int64_t i = 0; i < t.size(); ++i) {
    if (!(*iss >> data[i]) || !std::isfinite(data[i])) {
      return Status::InvalidArgument("bad tensor value in '" + *name + "'");
    }
  }
  std::string extra;
  if (*iss >> extra) {
    return Status::InvalidArgument("trailing garbage on '" + got_tag +
                                   " " + *name + "' line");
  }
  *out = std::move(t);
  return Status::Ok();
}

}  // namespace

std::string SerializeCheckpoint(const TrainingCheckpoint& ckpt) {
  std::ostringstream oss;
  oss.precision(17);
  oss << "gmckpt v" << TrainingCheckpoint::kVersion << "\n";
  oss << "meta " << ckpt.epoch << " " << ckpt.iteration << " "
      << ckpt.learning_rate << "\n";
  if (ckpt.has_rng) {
    oss << "rng " << ckpt.rng.state << " " << ckpt.rng.inc << " "
        << (ckpt.rng.has_cached_gaussian ? 1 : 0) << " "
        << ckpt.rng.cached_gaussian << "\n";
  }
  oss << "params " << ckpt.params.size() << "\n";
  for (std::size_t i = 0; i < ckpt.params.size(); ++i) {
    AppendTensor("param", ckpt.param_names[i], ckpt.params[i], &oss);
    AppendTensor("vel", ckpt.param_names[i], ckpt.velocity[i], &oss);
  }
  oss << "regs " << ckpt.reg_states.size() << "\n";
  for (const auto& [name, blob] : ckpt.reg_states) {
    oss << "reg " << name << " " << blob << "\n";
  }
  oss << "end\n";
  std::string payload = oss.str();
  return payload +
         StrFormat("checksum fnv1a64 %016llx\n",
                   static_cast<unsigned long long>(Fnv1a64(payload)));
}

Status DeserializeCheckpoint(const std::string& text,
                             TrainingCheckpoint* out) {
  // Split off the checksum trailer and verify it before trusting anything.
  std::size_t trailer = text.rfind("checksum fnv1a64 ");
  if (trailer == std::string::npos ||
      (trailer != 0 && text[trailer - 1] != '\n')) {
    return Status::InvalidArgument("checkpoint missing checksum trailer");
  }
  std::string payload = text.substr(0, trailer);
  std::istringstream trailer_stream(text.substr(trailer));
  std::string word1, word2, hex;
  trailer_stream >> word1 >> word2 >> hex;
  std::string extra;
  if (trailer_stream >> extra) {
    return Status::InvalidArgument("trailing garbage after checksum");
  }
  unsigned long long stored = 0;
  if (hex.size() != 16 ||
      std::sscanf(hex.c_str(), "%16llx", &stored) != 1) {
    return Status::InvalidArgument("malformed checksum trailer");
  }
  if (stored != static_cast<unsigned long long>(Fnv1a64(payload))) {
    return Status::InvalidArgument(
        "checkpoint checksum mismatch (torn or corrupted file)");
  }

  std::istringstream in(payload);
  std::string line;
  auto next_line = [&](std::istringstream* ls) {
    if (!std::getline(in, line)) return false;
    ls->clear();
    ls->str(line);
    return true;
  };

  std::istringstream ls;
  if (!next_line(&ls)) return Status::InvalidArgument("empty checkpoint");
  std::string magic, version;
  ls >> magic >> version;
  if (magic != "gmckpt") {
    return Status::InvalidArgument("not a gmckpt file");
  }
  if (version != "v2") {
    return Status::InvalidArgument("unsupported checkpoint version '" +
                                   version + "'");
  }

  TrainingCheckpoint ckpt;
  if (!next_line(&ls)) return Status::InvalidArgument("missing meta line");
  std::string tag;
  if (!(ls >> tag >> ckpt.epoch >> ckpt.iteration >> ckpt.learning_rate) ||
      tag != "meta" || ckpt.epoch < 0 || ckpt.iteration < 0 ||
      !std::isfinite(ckpt.learning_rate)) {
    return Status::InvalidArgument("bad meta line");
  }

  if (!next_line(&ls)) return Status::InvalidArgument("truncated checkpoint");
  ls >> tag;
  if (tag == "rng") {
    int cached_flag = 0;
    ls.clear();
    ls.str(line);
    if (!(ls >> tag >> ckpt.rng.state >> ckpt.rng.inc >> cached_flag >>
          ckpt.rng.cached_gaussian) ||
        (cached_flag != 0 && cached_flag != 1) ||
        !std::isfinite(ckpt.rng.cached_gaussian)) {
      return Status::InvalidArgument("bad rng line");
    }
    ckpt.rng.has_cached_gaussian = cached_flag == 1;
    ckpt.has_rng = true;
    if (!next_line(&ls)) {
      return Status::InvalidArgument("truncated checkpoint");
    }
    ls >> tag;
  }

  std::int64_t num_params = 0;
  ls.clear();
  ls.str(line);
  if (!(ls >> tag >> num_params) || tag != "params" || num_params < 0 ||
      num_params > 1000000) {
    return Status::InvalidArgument("bad params line");
  }
  ckpt.param_names.reserve(static_cast<std::size_t>(num_params));
  for (std::int64_t i = 0; i < num_params; ++i) {
    std::string name, vel_name;
    Tensor value, vel;
    if (!next_line(&ls)) return Status::InvalidArgument("truncated params");
    GMREG_RETURN_IF_ERROR(ParseTensor(&ls, "param", &name, &value));
    if (!next_line(&ls)) return Status::InvalidArgument("truncated params");
    GMREG_RETURN_IF_ERROR(ParseTensor(&ls, "vel", &vel_name, &vel));
    if (vel_name != name || !vel.SameShape(value)) {
      return Status::InvalidArgument("param/vel mismatch for '" + name + "'");
    }
    ckpt.param_names.push_back(std::move(name));
    ckpt.params.push_back(std::move(value));
    ckpt.velocity.push_back(std::move(vel));
  }

  std::int64_t num_regs = 0;
  if (!next_line(&ls)) return Status::InvalidArgument("missing regs line");
  if (!(ls >> tag >> num_regs) || tag != "regs" || num_regs < 0 ||
      num_regs > num_params) {
    return Status::InvalidArgument("bad regs line");
  }
  for (std::int64_t i = 0; i < num_regs; ++i) {
    if (!next_line(&ls)) return Status::InvalidArgument("truncated regs");
    std::string name;
    if (!(ls >> tag >> name) || tag != "reg") {
      return Status::InvalidArgument("bad reg line");
    }
    // The rest of the line (past "reg <name> ") is the opaque state blob.
    std::string blob;
    std::getline(ls >> std::ws, blob);
    if (blob.empty()) {
      return Status::InvalidArgument("empty reg state for '" + name + "'");
    }
    ckpt.reg_states.emplace_back(std::move(name), std::move(blob));
  }

  if (!next_line(&ls) || line != "end") {
    return Status::InvalidArgument("missing end marker");
  }
  if (std::getline(in, line)) {
    return Status::InvalidArgument("trailing garbage after end marker");
  }
  *out = std::move(ckpt);
  return Status::Ok();
}

std::string PreviousCheckpointPath(const std::string& path) {
  return path + ".prev";
}

Status SaveCheckpoint(const TrainingCheckpoint& ckpt, const std::string& path,
                      const CheckpointIoOptions& io) {
  GMREG_CHECK_GE(io.max_attempts, 1);
  CkptCounters& counters = GlobalCkptCounters();
  if (FileExists(path)) {
    // Rotate the previous snapshot aside BEFORE the new write: if every
    // write attempt below fails, recovery still has the .prev file.
    std::string prev = PreviousCheckpointPath(path);
    if (std::rename(path.c_str(), prev.c_str()) != 0) {
      GMREG_LOG(Warning) << "checkpoint rotation " << path << " -> " << prev
                         << " failed; continuing without a fallback copy";
    }
  }
  std::string text = SerializeCheckpoint(ckpt);
  Status last = Status::Ok();
  int backoff_ms = io.initial_backoff_ms;
  for (int attempt = 0; attempt < io.max_attempts; ++attempt) {
    if (attempt > 0) {
      counters.write_retries->Add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= io.backoff_multiplier;
    }
    last = AtomicWriteFile(path, text);
    if (last.ok()) {
      counters.saves->Add(1);
      return last;
    }
    GMREG_LOG(Warning) << "checkpoint write attempt " << attempt + 1 << "/"
                       << io.max_attempts << " failed: " << last.ToString();
  }
  counters.save_failures->Add(1);
  return last;
}

Status LoadCheckpoint(const std::string& path, TrainingCheckpoint* out) {
  std::string text;
  GMREG_RETURN_IF_ERROR(ReadFileToString(path, &text));
  GMREG_RETURN_IF_ERROR(DeserializeCheckpoint(text, out));
  GlobalCkptCounters().loads->Add(1);
  return Status::Ok();
}

Status LoadLatestValidCheckpoint(const std::string& path,
                                 TrainingCheckpoint* out) {
  CkptCounters& counters = GlobalCkptCounters();
  Status primary = LoadCheckpoint(path, out);
  if (primary.ok()) return primary;
  if (primary.code() != StatusCode::kNotFound) {
    counters.corrupt_skipped->Add(1);
    GMREG_LOG(Warning) << "checkpoint " << path
                       << " is unusable (" << primary.ToString()
                       << "); falling back to the previous snapshot";
  }
  std::string prev = PreviousCheckpointPath(path);
  Status fallback = LoadCheckpoint(prev, out);
  if (fallback.ok()) {
    counters.fallback_loads->Add(1);
    GMREG_LOG(Warning) << "resumed from fallback checkpoint " << prev
                       << " (epoch " << out->epoch << ")";
    return fallback;
  }
  if (primary.code() == StatusCode::kNotFound &&
      fallback.code() == StatusCode::kNotFound) {
    return Status::NotFound("no checkpoint at " + path + " or " + prev);
  }
  return primary.code() == StatusCode::kNotFound ? fallback : primary;
}

Status ParseModelSnapshot(const std::string& text, ModelSnapshot* out) {
  ModelSnapshot snap;
  snap.fingerprint = Fnv1a64(text);

  // Verify the whole-file checksum when possible. A mismatch or a missing
  // trailer downgrades to a salvage parse (strict on `param` lines, blind to
  // everything else) instead of failing: the checksum covers the optimizer
  // and regularizer sections too, and damage there must not take serving
  // down with it.
  bool checksum_ok = false;
  std::string payload = text;
  std::size_t trailer = text.rfind("checksum fnv1a64 ");
  if (trailer != std::string::npos &&
      (trailer == 0 || text[trailer - 1] == '\n')) {
    payload = text.substr(0, trailer);
    std::istringstream trailer_stream(text.substr(trailer));
    std::string word1, word2, hex;
    trailer_stream >> word1 >> word2 >> hex;
    unsigned long long stored = 0;
    if (hex.size() == 16 && std::sscanf(hex.c_str(), "%16llx", &stored) == 1 &&
        stored == static_cast<unsigned long long>(Fnv1a64(payload))) {
      checksum_ok = true;
    }
  }

  std::istringstream in(payload);
  std::string line;
  auto next_line = [&](std::istringstream* ls) {
    if (!std::getline(in, line)) return false;
    ls->clear();
    ls->str(line);
    return true;
  };

  std::istringstream ls;
  if (!next_line(&ls)) return Status::InvalidArgument("empty checkpoint");
  std::string magic, version;
  ls >> magic >> version;
  if (magic != "gmckpt") {
    return Status::InvalidArgument("not a gmckpt file");
  }
  if (version != "v2") {
    return Status::InvalidArgument("unsupported checkpoint version '" +
                                   version + "'");
  }

  if (!next_line(&ls)) return Status::InvalidArgument("missing meta line");
  std::string tag;
  if (!(ls >> tag >> snap.epoch >> snap.iteration) || tag != "meta" ||
      snap.epoch < 0 || snap.iteration < 0) {
    return Status::InvalidArgument("bad meta line");
  }

  if (!next_line(&ls)) return Status::InvalidArgument("truncated checkpoint");
  ls >> tag;
  if (tag == "rng") {
    // RNG state is training-only; skip the line without validating it.
    if (!next_line(&ls)) {
      return Status::InvalidArgument("truncated checkpoint");
    }
  }

  std::int64_t num_params = 0;
  ls.clear();
  ls.str(line);
  if (!(ls >> tag >> num_params) || tag != "params" || num_params < 0 ||
      num_params > 1000000) {
    return Status::InvalidArgument("bad params line");
  }
  snap.param_names.reserve(static_cast<std::size_t>(num_params));
  snap.params.reserve(static_cast<std::size_t>(num_params));
  for (std::int64_t i = 0; i < num_params; ++i) {
    std::string name;
    Tensor value;
    if (!next_line(&ls)) return Status::InvalidArgument("truncated params");
    GMREG_RETURN_IF_ERROR(ParseTensor(&ls, "param", &name, &value));
    // The paired momentum line: structure is checked, values are not — a
    // corrupted velocity must not block a model-only load.
    if (!next_line(&ls) || line.rfind("vel ", 0) != 0) {
      return Status::InvalidArgument("missing 'vel' line for '" + name + "'");
    }
    snap.param_names.push_back(std::move(name));
    snap.params.push_back(std::move(value));
  }
  // Everything past the params section (regularizer states, end marker) is
  // training-only and deliberately ignored.

  if (!checksum_ok) {
    GlobalModelLoadCounters().salvages->Add(1);
    GMREG_LOG(Warning)
        << "model-only load salvaged a checkpoint whose checksum does not "
           "verify (optimizer or regularizer state may be damaged)";
  }
  *out = std::move(snap);
  return Status::Ok();
}

Status LoadModelSnapshot(const std::string& path, ModelSnapshot* out) {
  ModelLoadCounters& counters = GlobalModelLoadCounters();
  std::string text;
  Status primary = ReadFileToString(path, &text);
  if (primary.ok()) primary = ParseModelSnapshot(text, out);
  if (primary.ok()) {
    counters.loads->Add(1);
    return primary;
  }
  if (primary.code() != StatusCode::kNotFound) {
    GMREG_LOG(Warning) << "model snapshot " << path << " is unusable ("
                       << primary.ToString()
                       << "); falling back to the previous snapshot";
  }
  std::string prev = PreviousCheckpointPath(path);
  std::string prev_text;
  Status fallback = ReadFileToString(prev, &prev_text);
  if (fallback.ok()) fallback = ParseModelSnapshot(prev_text, out);
  if (fallback.ok()) {
    counters.loads->Add(1);
    counters.fallback_loads->Add(1);
    GMREG_LOG(Warning) << "serving model restored from fallback checkpoint "
                       << prev << " (epoch " << out->epoch << ")";
    return fallback;
  }
  if (primary.code() == StatusCode::kNotFound &&
      fallback.code() == StatusCode::kNotFound) {
    return Status::NotFound("no checkpoint at " + path + " or " + prev);
  }
  return primary.code() == StatusCode::kNotFound ? fallback : primary;
}

}  // namespace gmreg
