#ifndef GMREG_IO_CHECKPOINT_H_
#define GMREG_IO_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace gmreg {

/// Full training state at an epoch boundary — everything a crashed run
/// needs to continue with a bit-identical loss trajectory (the GEMINI
/// deployment scenario of paper Sec. IV, where gmreg lives inside a long-
/// running pipeline and a restart must not forfeit hours of training):
/// model weights, SGD momentum, the lr after all schedule steps so far,
/// the data-stream RNG, and one opaque state line per stateful regularizer
/// (for GmRegularizer: mixture, Dirichlet/Gamma hypers, lazy-update
/// counters and the cached greg — see Regularizer::SaveState).
///
/// See docs/CHECKPOINTING.md for the file format ("gmckpt v2") and the
/// recovery semantics.
struct TrainingCheckpoint {
  static constexpr int kVersion = 2;

  int epoch = 0;  ///< completed epochs; resume starts at this epoch index
  std::int64_t iteration = 0;  ///< completed SGD steps
  double learning_rate = 0.0;  ///< post-schedule lr at the snapshot

  bool has_rng = false;  ///< whether `rng` below is meaningful
  Rng::State rng;        ///< data-stream generator (Trainer::SetCheckpointRng)

  /// Parameter tensors and the matching SGD momentum buffers, in the
  /// trainer's parameter-collection order. `velocity[i]` pairs with
  /// `params[i]`; both carry the full shape.
  std::vector<std::string> param_names;
  std::vector<Tensor> params;
  std::vector<Tensor> velocity;

  /// (param name, Regularizer::SaveState line) for every stateful
  /// regularizer. Lines are opaque to this layer — the io module does not
  /// depend on core.
  std::vector<std::pair<std::string, std::string>> reg_states;
};

/// Retry policy for checkpoint writes. Defaults keep tests fast while still
/// exercising real backoff: attempts at +0ms, +1ms, +10ms.
struct CheckpointIoOptions {
  int max_attempts = 3;
  int initial_backoff_ms = 1;
  int backoff_multiplier = 10;
};

/// Renders the checkpoint as versioned text ending in a `checksum fnv1a64
/// <hex>` trailer over every preceding byte, so truncated or torn files are
/// detected on load.
std::string SerializeCheckpoint(const TrainingCheckpoint& ckpt);

/// Parses SerializeCheckpoint output. InvalidArgument on malformed input,
/// wrong version, checksum mismatch, or trailing garbage.
Status DeserializeCheckpoint(const std::string& text, TrainingCheckpoint* out);

/// Where SaveCheckpoint rotates the previous snapshot: `path + ".prev"`.
std::string PreviousCheckpointPath(const std::string& path);

/// Durable checkpoint write with rotation and bounded retry:
///   1. an existing `path` is renamed to PreviousCheckpointPath(path),
///   2. the new snapshot is written via AtomicWriteFile (temp + fsync +
///      rename), retried per `io` with exponential backoff on failure.
/// Even when every attempt fails the previous snapshot survives as the
/// `.prev` file, so recovery falls back one epoch instead of to zero.
/// Counted in gm.checkpoint_saves / _save_failures / _write_retries.
Status SaveCheckpoint(const TrainingCheckpoint& ckpt, const std::string& path,
                      const CheckpointIoOptions& io = {});

/// Strict single-file load: NotFound when missing, InvalidArgument when
/// corrupt. Counted in gm.checkpoint_loads.
Status LoadCheckpoint(const std::string& path, TrainingCheckpoint* out);

/// Recovery entry point: tries `path`, and on corruption or absence falls
/// back to the rotated `.prev` snapshot, logging a warning and counting
/// gm.checkpoint_corrupt_skipped / gm.checkpoint_fallback_loads. NotFound
/// only when neither file exists; corrupt-with-no-fallback reports the
/// primary file's error.
Status LoadLatestValidCheckpoint(const std::string& path,
                                 TrainingCheckpoint* out);

/// Weights-plus-identity view of a checkpoint — what the serving layer
/// (src/serve/model_registry.h) publishes. Deliberately excludes optimizer
/// velocity, RNG and regularizer state: inference must stay loadable even
/// when those sections are damaged.
struct ModelSnapshot {
  int epoch = 0;               ///< completed training epochs at the snapshot
  std::int64_t iteration = 0;  ///< completed SGD steps at the snapshot
  std::vector<std::string> param_names;
  std::vector<Tensor> params;
  /// FNV-1a 64 hash of the entire checkpoint file the snapshot came from —
  /// the registry's change detector and version identity.
  std::uint64_t fingerprint = 0;
};

/// Parses only the model-relevant part of a serialized checkpoint: header,
/// meta and `param` lines are validated strictly; `vel` (SGD momentum) and
/// `reg` lines are skipped without validating their values, so
/// optimizer-state corruption — even when it breaks the whole-file checksum
/// — does not block a model-only load (a salvage is logged and counted in
/// gm.checkpoint_model_salvages).
Status ParseModelSnapshot(const std::string& text, ModelSnapshot* out);

/// Model-only recovery load for the serving layer: reads `path` through
/// ParseModelSnapshot, and when the model section itself is damaged (or the
/// file is missing) falls back to the rotated `.prev` snapshot. Counted in
/// gm.checkpoint_model_loads / gm.checkpoint_model_fallback_loads.
Status LoadModelSnapshot(const std::string& path, ModelSnapshot* out);

}  // namespace gmreg

#endif  // GMREG_IO_CHECKPOINT_H_
