#include "models/alex_cifar10.h"

#include "nn/activations.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/pool.h"

namespace gmreg {

std::unique_ptr<Sequential> BuildAlexCifar10(const AlexCifar10Config& config,
                                             Rng* rng) {
  auto net = std::make_unique<Sequential>("alex-cifar-10");
  InitSpec init = InitSpec::Gaussian(config.init_stddev);
  // Stage 1: 5x5 conv -> max pool -> ReLU -> LRN (Table III).
  net->Emplace<Conv2d>("conv1", config.input_channels, config.conv1_channels,
                       /*kernel=*/5, /*stride=*/1, /*padding=*/2, init, rng);
  net->Emplace<MaxPool2d>("pool1", /*kernel=*/3, /*stride=*/2);
  net->Emplace<Relu>("relu1");
  net->Emplace<Lrn>("lrn1", /*local_size=*/3, /*alpha=*/5e-5, /*beta=*/0.75,
                    /*k=*/1.0);
  // Stage 2: 5x5 conv -> ReLU -> avg pool -> LRN.
  net->Emplace<Conv2d>("conv2", config.conv1_channels, config.conv2_channels,
                       5, 1, 2, init, rng);
  net->Emplace<Relu>("relu2");
  net->Emplace<AvgPool2d>("pool2", 3, 2);
  net->Emplace<Lrn>("lrn2", 3, 5e-5, 0.75, 1.0);
  // Stage 3: 5x5 conv -> ReLU -> avg pool.
  net->Emplace<Conv2d>("conv3", config.conv2_channels, config.conv3_channels,
                       5, 1, 2, init, rng);
  net->Emplace<Relu>("relu3");
  net->Emplace<AvgPool2d>("pool3", 3, 2);
  // 10-way softmax classifier (softmax itself lives in the loss).
  net->Emplace<Flatten>("flatten");
  // Spatial extent after three stride-2 pools (ceil mode): hw -> ceil chain.
  int hw = config.input_hw;
  for (int i = 0; i < 3; ++i) hw = (hw - 3 + 1) / 2 + 1;
  std::int64_t dense_in =
      static_cast<std::int64_t>(config.conv3_channels) * hw * hw;
  net->Emplace<Dense>("dense", dense_in, config.num_classes, init, rng);
  return net;
}

}  // namespace gmreg
