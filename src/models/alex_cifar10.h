#ifndef GMREG_MODELS_ALEX_CIFAR10_H_
#define GMREG_MODELS_ALEX_CIFAR10_H_

#include <memory>

#include "nn/sequential.h"
#include "util/rng.h"

namespace gmreg {

/// Configuration of the Alex-CIFAR-10 model (paper Table III, left): three
/// 5x5 convolution stages with pooling/ReLU/LRN, then a 10-way softmax
/// dense layer. `input_hw` scales resolution (paper: 32; default reduced
/// for single-core benches — the layer structure is unchanged).
struct AlexCifar10Config {
  int input_hw = 16;
  int input_channels = 3;
  int conv1_channels = 32;
  int conv2_channels = 32;
  int conv3_channels = 64;
  int num_classes = 10;
  /// Paper: zero-mean Gaussian with precision 100 (stddev 0.1).
  double init_stddev = 0.1;
};

/// Builds the network. Weight layer names match the paper's Table IV:
/// conv1, conv2, conv3, dense.
std::unique_ptr<Sequential> BuildAlexCifar10(const AlexCifar10Config& config,
                                             Rng* rng);

}  // namespace gmreg

#endif  // GMREG_MODELS_ALEX_CIFAR10_H_
