#include "models/logistic_regression.h"

#include <cmath>

#include "data/batch.h"
#include "tensor/random.h"
#include "util/logging.h"

namespace gmreg {
namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LogisticRegression::LogisticRegression(std::int64_t num_features,
                                       const Options& options, Rng* rng)
    : num_features_(num_features),
      options_(options),
      weights_({num_features}) {
  GMREG_CHECK_GT(num_features, 0);
  GMREG_CHECK(rng != nullptr);
  FillGaussian(rng, 0.0, options.init_stddev, &weights_);
}

double LogisticRegression::RawScore(const float* row) const {
  double z = bias_;
  const float* wp = weights_.data();
  for (std::int64_t j = 0; j < num_features_; ++j) {
    z += static_cast<double>(wp[j]) * row[j];
  }
  return z;
}

void LogisticRegression::Train(const Dataset& train, Regularizer* reg,
                               Rng* rng) {
  GMREG_CHECK_EQ(train.num_features(), num_features_);
  std::int64_t n = train.num_samples();
  GMREG_CHECK_GT(n, 0);
  double scale = 1.0 / static_cast<double>(n);
  BatchIterator batches(n, options_.batch_size, rng);
  std::int64_t batches_per_epoch = batches.NumBatches();
  Tensor grad({num_features_});
  Tensor velocity({num_features_});
  double bias_velocity = 0.0;
  auto lr = options_.learning_rate;
  auto mom = options_.momentum;
  std::int64_t iteration = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const auto& [fraction, factor] : options_.lr_drops) {
      if (epoch == static_cast<int>(fraction * options_.epochs)) {
        lr *= factor;
      }
    }
    for (std::int64_t b = 0; b < batches_per_epoch; ++b) {
      const std::vector<int>& idx = batches.Next();
      grad.SetZero();
      double bias_grad = 0.0;
      double inv_b = 1.0 / static_cast<double>(idx.size());
      for (int row : idx) {
        const float* x = train.features.data() + row * num_features_;
        double err =
            Sigmoid(RawScore(x)) -
            static_cast<double>(train.labels[static_cast<std::size_t>(row)]);
        auto coeff = static_cast<float>(err * inv_b);
        float* gp = grad.data();
        for (std::int64_t j = 0; j < num_features_; ++j) {
          gp[j] += coeff * x[j];
        }
        bias_grad += err * inv_b;
      }
      if (reg != nullptr) {
        reg->AccumulateGradient(weights_, iteration, epoch, scale, &grad);
      }
      float* wp = weights_.data();
      float* vp = velocity.data();
      const float* gp = grad.data();
      for (std::int64_t j = 0; j < num_features_; ++j) {
        vp[j] = static_cast<float>(mom) * vp[j] + gp[j];
        wp[j] -= static_cast<float>(lr) * vp[j];
      }
      bias_velocity = mom * bias_velocity + bias_grad;
      bias_ -= lr * bias_velocity;
      ++iteration;
    }
  }
}

void LogisticRegression::Predict(const Tensor& in, Tensor* out) const {
  GMREG_CHECK(out != nullptr);
  GMREG_CHECK_EQ(in.rank(), 2);
  GMREG_CHECK_EQ(in.dim(1), num_features_);
  std::int64_t batch = in.dim(0);
  if (out->shape() != std::vector<std::int64_t>{batch, 2}) {
    *out = Tensor({batch, 2});
  }
  for (std::int64_t i = 0; i < batch; ++i) {
    double p = Sigmoid(RawScore(in.data() + i * num_features_));
    out->At(i, 0) = static_cast<float>(1.0 - p);
    out->At(i, 1) = static_cast<float>(p);
  }
}

double LogisticRegression::EvaluateAccuracy(const Dataset& data) const {
  GMREG_CHECK_EQ(data.num_features(), num_features_);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < data.num_samples(); ++i) {
    int pred = RawScore(data.features.data() + i * num_features_) > 0.0;
    if (pred == data.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(data.num_samples());
}

double LogisticRegression::EvaluateLoss(const Dataset& data) const {
  GMREG_CHECK_EQ(data.num_features(), num_features_);
  double total = 0.0;
  for (std::int64_t i = 0; i < data.num_samples(); ++i) {
    double p = Sigmoid(RawScore(data.features.data() + i * num_features_));
    int y = data.labels[static_cast<std::size_t>(i)];
    double q = y == 1 ? p : 1.0 - p;
    total += -std::log(std::max(q, 1e-300));
  }
  return total / static_cast<double>(data.num_samples());
}

}  // namespace gmreg
