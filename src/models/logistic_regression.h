#ifndef GMREG_MODELS_LOGISTIC_REGRESSION_H_
#define GMREG_MODELS_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "reg/regularizer.h"
#include "util/rng.h"

namespace gmreg {

/// Binary logistic regression trained by mini-batch SGD with momentum —
/// the model of the paper's small-dataset study (Sec. V-C). The weight
/// vector w is exactly the M-dimensional model parameter the GM prior is
/// fitted to; the bias is unregularized.
class LogisticRegression {
 public:
  struct Options {
    int epochs = 60;
    std::int64_t batch_size = 32;
    double learning_rate = 0.1;
    double momentum = 0.9;
    /// Weight initialization stddev. 0.1 gives the paper's "initialized
    /// model parameter precision 100" (Sec. V-E).
    double init_stddev = 0.1;
    /// Step schedule as (fraction-of-epochs, lr multiplier): at epoch
    /// floor(fraction * epochs) the learning rate is multiplied once. The
    /// default anneals the SGD noise ball so small datasets converge.
    std::vector<std::pair<double, double>> lr_drops = {{0.6, 0.2},
                                                       {0.85, 0.2}};
  };

  /// Initializes w ~ N(0, init_stddev^2), b = 0.
  LogisticRegression(std::int64_t num_features, const Options& options,
                     Rng* rng);

  /// Trains on `train` with an optional regularizer applied to w (not to
  /// the bias). `reg` may be nullptr. The regularizer receives
  /// scale = 1/N per the library-wide MAP convention.
  void Train(const Dataset& train, Regularizer* reg, Rng* rng);

  /// Uniform inference entry point matching Layer::Predict: `in` is
  /// [B, num_features]; `out` becomes [B, 2] with the per-class
  /// probabilities {P(y=0), P(y=1)}, so the row arg-max is the predicted
  /// label exactly like the nn models' logits. The serving layer
  /// (src/serve/) programs against this signature and never special-cases
  /// the model type.
  void Predict(const Tensor& in, Tensor* out) const;

  /// Classification accuracy on `data`.
  double EvaluateAccuracy(const Dataset& data) const;

  /// Mean logistic loss on `data` (no penalty term).
  double EvaluateLoss(const Dataset& data) const;

  const Tensor& weights() const { return weights_; }
  double bias() const { return bias_; }
  const Options& options() const { return options_; }

 private:
  double RawScore(const float* row) const;

  std::int64_t num_features_;
  Options options_;
  Tensor weights_;  // [M]
  double bias_ = 0.0;
};

}  // namespace gmreg

#endif  // GMREG_MODELS_LOGISTIC_REGRESSION_H_
