#include "models/resnet.h"

#include <string>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "nn/residual.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

// One residual block: main = conv-BN-ReLU-conv-BN; shortcut = identity, or
// 3x3/stride-2 conv + BN when the block downsamples/widens.
std::unique_ptr<Residual> MakeBlock(const std::string& prefix,
                                    std::int64_t in_channels,
                                    std::int64_t out_channels, int stride,
                                    Rng* rng) {
  InitSpec he = InitSpec::He();
  auto main = std::make_unique<Sequential>(prefix + "-br1");
  main->Emplace<Conv2d>(prefix + "-br1-conv1", in_channels, out_channels, 3,
                        stride, 1, he, rng);
  main->Emplace<BatchNorm2d>(prefix + "-br1-bn1", out_channels);
  main->Emplace<Relu>(prefix + "-br1-relu");
  main->Emplace<Conv2d>(prefix + "-br1-conv2", out_channels, out_channels, 3,
                        1, 1, he, rng);
  main->Emplace<BatchNorm2d>(prefix + "-br1-bn2", out_channels);
  std::unique_ptr<Sequential> shortcut;
  if (stride != 1 || in_channels != out_channels) {
    shortcut = std::make_unique<Sequential>(prefix + "-br2");
    shortcut->Emplace<Conv2d>(prefix + "-br2-conv", in_channels, out_channels,
                              3, stride, 1, he, rng);
    shortcut->Emplace<BatchNorm2d>(prefix + "-br2-bn", out_channels);
  }
  return std::make_unique<Residual>(prefix, std::move(main),
                                    std::move(shortcut));
}

}  // namespace

std::unique_ptr<Sequential> BuildResNet(const ResNetConfig& config, Rng* rng) {
  auto net = std::make_unique<Sequential>("resnet");
  InitSpec he = InitSpec::He();
  std::int64_t c = config.base_channels;
  net->Emplace<Conv2d>("conv1", config.input_channels, c, 3, 1, 1, he, rng);
  net->Emplace<BatchNorm2d>("bn1", c);
  net->Emplace<Relu>("relu1");
  // Three stages, named 2, 3, 4 with block letters a, b, c... to match the
  // paper's Table V layer names.
  std::int64_t in_channels = c;
  for (int stage = 0; stage < 3; ++stage) {
    std::int64_t out_channels = c << stage;
    for (int block = 0; block < config.blocks_per_stage; ++block) {
      std::string prefix =
          StrFormat("%d%c", stage + 2, static_cast<char>('a' + block));
      int stride = (stage > 0 && block == 0) ? 2 : 1;
      net->Add(MakeBlock(prefix, in_channels, out_channels, stride, rng));
      in_channels = out_channels;
    }
  }
  net->Emplace<GlobalAvgPool>("gap");
  net->Emplace<Dense>("ip5", in_channels, config.num_classes, he, rng);
  return net;
}

}  // namespace gmreg
