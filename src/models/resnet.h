#ifndef GMREG_MODELS_RESNET_H_
#define GMREG_MODELS_RESNET_H_

#include <memory>

#include "nn/sequential.h"
#include "util/rng.h"

namespace gmreg {

/// Configuration of the 20-layer CIFAR ResNet (paper Table III, right;
/// He et al. 2016): a 3x3 stem, three stacks of `blocks_per_stage` residual
/// blocks with `base_channels`, 2x and 4x channels, global average pooling
/// and a 10-way softmax. Downsampling blocks use a 3x3/stride-2 projection
/// shortcut (the paper's `*-br2-conv` weights).
struct ResNetConfig {
  int input_hw = 16;           ///< paper: 32; reduced default for 1 core
  int input_channels = 3;
  int base_channels = 16;      ///< paper: 16 (stacks of 16/32/64 filters)
  int blocks_per_stage = 3;    ///< paper: n = 3 -> 20 weighted layers
  int num_classes = 10;
  // Weights use He-normal initialization (Sec. V-E cites He et al. 2015).
};

/// Builds the network. Weight names follow the paper's Table V scheme:
/// conv1, {2,3,4}{a,b,c}-br1-conv{1,2}, {3,4}a-br2-conv, ip5.
std::unique_ptr<Sequential> BuildResNet(const ResNetConfig& config, Rng* rng);

}  // namespace gmreg

#endif  // GMREG_MODELS_RESNET_H_
