#include "nn/activations.h"

#include <cmath>

#include "tensor/gemm_kernel.h"

namespace gmreg {

Relu::Relu(std::string name) : Layer(std::move(name)) {}

void Relu::Forward(const Tensor& in, Tensor* out, bool train) {
  EnsureShape(in.shape(), out);
  in_shape_ = in.shape();
  std::int64_t n = in.size();
  if (train) {
    mask_.resize(static_cast<std::size_t>(n));
    GetKernelOps().relu_forward(n, in.data(), out->data(), mask_.data());
  } else {
    GetKernelOps().relu_forward(n, in.data(), out->data(), nullptr);
  }
}

void Relu::Backward(const Tensor& grad_out, Tensor* grad_in) {
  EnsureShape(in_shape_, grad_in);
  std::int64_t n = grad_out.size();
  GMREG_CHECK_EQ(static_cast<std::int64_t>(mask_.size()), n);
  GetKernelOps().relu_backward(n, grad_out.data(), mask_.data(),
                               grad_in->data());
}

Lrn::Lrn(std::string name, int local_size, double alpha, double beta,
         double k)
    : Layer(std::move(name)),
      local_size_(local_size),
      alpha_(alpha),
      beta_(beta),
      k_(k) {
  GMREG_CHECK_GT(local_size, 0);
  GMREG_CHECK_EQ(local_size % 2, 1);
}

void Lrn::Forward(const Tensor& in, Tensor* out, bool train) {
  GMREG_CHECK_EQ(in.rank(), 4);
  EnsureShape(in.shape(), out);
  EnsureShape(in.shape(), &denom_);
  std::int64_t b = in.dim(0), c = in.dim(1), hw = in.dim(2) * in.dim(3);
  int half = local_size_ / 2;
  double scale = alpha_ / local_size_;
  const float* ip = in.data();
  float* op = out->data();
  float* dp = denom_.data();
  for (std::int64_t i = 0; i < b; ++i) {
    const float* sample = ip + i * c * hw;
    for (std::int64_t p = 0; p < hw; ++p) {
      for (std::int64_t ch = 0; ch < c; ++ch) {
        std::int64_t lo = std::max<std::int64_t>(0, ch - half);
        std::int64_t hi = std::min<std::int64_t>(c - 1, ch + half);
        double acc = 0.0;
        for (std::int64_t cc = lo; cc <= hi; ++cc) {
          double v = sample[cc * hw + p];
          acc += v * v;
        }
        double denom = k_ + scale * acc;
        std::int64_t idx = i * c * hw + ch * hw + p;
        dp[idx] = static_cast<float>(denom);
        op[idx] = static_cast<float>(sample[ch * hw + p] *
                                     std::pow(denom, -beta_));
      }
    }
  }
  if (train) cached_in_ = in;
}

void Lrn::Backward(const Tensor& grad_out, Tensor* grad_in) {
  // gin_j = gout_j * denom_j^{-beta}
  //         - (2*alpha*beta/n) * in_j * sum_{i: j in win(i)} gout_i*out_i/denom_i
  // where out_i = in_i * denom_i^{-beta}.
  EnsureShape(cached_in_.shape(), grad_in);
  std::int64_t b = cached_in_.dim(0), c = cached_in_.dim(1),
               hw = cached_in_.dim(2) * cached_in_.dim(3);
  int half = local_size_ / 2;
  double scale = 2.0 * alpha_ * beta_ / local_size_;
  const float* ip = cached_in_.data();
  const float* gp = grad_out.data();
  const float* dp = denom_.data();
  float* gi = grad_in->data();
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t p = 0; p < hw; ++p) {
      // ratio_i = gout_i * in_i * denom_i^{-beta-1}
      for (std::int64_t ch = 0; ch < c; ++ch) {
        std::int64_t idx = i * c * hw + ch * hw + p;
        double gout = gp[idx];
        double denom = dp[idx];
        double direct = gout * std::pow(denom, -beta_);
        std::int64_t lo = std::max<std::int64_t>(0, ch - half);
        std::int64_t hi = std::min<std::int64_t>(c - 1, ch + half);
        double cross = 0.0;
        for (std::int64_t cc = lo; cc <= hi; ++cc) {
          std::int64_t jdx = i * c * hw + cc * hw + p;
          cross += gp[jdx] * ip[jdx] * std::pow(dp[jdx], -beta_ - 1.0);
        }
        gi[idx] = static_cast<float>(direct - scale * ip[idx] * cross);
      }
    }
  }
}

}  // namespace gmreg
