#ifndef GMREG_NN_ACTIVATIONS_H_
#define GMREG_NN_ACTIVATIONS_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace gmreg {

/// Rectified linear unit, elementwise.
class Relu : public Layer {
 public:
  explicit Relu(std::string name);

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

 private:
  // 1 where input > 0. Bytes, not vector<bool>, so the vectorized
  // relu_forward/relu_backward kernels (tensor/gemm_kernel.h) can write and
  // read it directly.
  std::vector<unsigned char> mask_;
  std::vector<std::int64_t> in_shape_;
};

/// Local Response Normalization across channels (Krizhevsky et al. 2012),
/// used by the Alex-CIFAR-10 model of Table III:
///   out[c] = in[c] / (k + alpha/n * sum_{c' in window} in[c']^2)^beta
class Lrn : public Layer {
 public:
  Lrn(std::string name, int local_size, double alpha, double beta, double k);

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

 private:
  int local_size_;
  double alpha_;
  double beta_;
  double k_;
  Tensor cached_in_;
  Tensor denom_;  // k + alpha/n * window sums, same shape as input
};

}  // namespace gmreg

#endif  // GMREG_NN_ACTIVATIONS_H_
