#include "nn/batchnorm.h"

#include <cmath>

namespace gmreg {

BatchNorm2d::BatchNorm2d(std::string name, std::int64_t channels,
                         double momentum, double eps)
    : Layer(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::Full({channels}, 1.0f)),
      beta_({channels}),
      gamma_grad_({channels}),
      beta_grad_({channels}),
      running_mean_({channels}),
      running_var_(Tensor::Full({channels}, 1.0f)) {}

void BatchNorm2d::Forward(const Tensor& in, Tensor* out, bool train) {
  GMREG_CHECK_EQ(in.rank(), 4);
  GMREG_CHECK_EQ(in.dim(1), channels_);
  EnsureShape(in.shape(), out);
  in_shape_ = in.shape();
  std::int64_t b = in.dim(0), hw = in.dim(2) * in.dim(3);
  std::int64_t chw = channels_ * hw;
  const float* ip = in.data();
  float* op = out->data();
  if (train) {
    EnsureShape(in.shape(), &x_hat_);
    batch_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0);
    float* xh = x_hat_.data();
    double count = static_cast<double>(b * hw);
    for (std::int64_t ch = 0; ch < channels_; ++ch) {
      double sum = 0.0, sum_sq = 0.0;
      for (std::int64_t i = 0; i < b; ++i) {
        const float* plane = ip + i * chw + ch * hw;
        for (std::int64_t p = 0; p < hw; ++p) {
          sum += plane[p];
          sum_sq += static_cast<double>(plane[p]) * plane[p];
        }
      }
      double mean = sum / count;
      double var = std::max(0.0, sum_sq / count - mean * mean);
      double inv_std = 1.0 / std::sqrt(var + eps_);
      batch_inv_std_[static_cast<std::size_t>(ch)] = inv_std;
      running_mean_[ch] = static_cast<float>(
          momentum_ * running_mean_[ch] + (1.0 - momentum_) * mean);
      running_var_[ch] = static_cast<float>(
          momentum_ * running_var_[ch] + (1.0 - momentum_) * var);
      float g = gamma_[ch], bt = beta_[ch];
      for (std::int64_t i = 0; i < b; ++i) {
        const float* plane = ip + i * chw + ch * hw;
        float* xplane = xh + i * chw + ch * hw;
        float* oplane = op + i * chw + ch * hw;
        for (std::int64_t p = 0; p < hw; ++p) {
          float norm = static_cast<float>((plane[p] - mean) * inv_std);
          xplane[p] = norm;
          oplane[p] = g * norm + bt;
        }
      }
    }
  } else {
    for (std::int64_t ch = 0; ch < channels_; ++ch) {
      double inv_std = 1.0 / std::sqrt(running_var_[ch] + eps_);
      double mean = running_mean_[ch];
      float g = gamma_[ch], bt = beta_[ch];
      for (std::int64_t i = 0; i < b; ++i) {
        const float* plane = ip + i * chw + ch * hw;
        float* oplane = op + i * chw + ch * hw;
        for (std::int64_t p = 0; p < hw; ++p) {
          oplane[p] =
              static_cast<float>(g * (plane[p] - mean) * inv_std + bt);
        }
      }
    }
  }
}

void BatchNorm2d::Backward(const Tensor& grad_out, Tensor* grad_in) {
  EnsureShape(in_shape_, grad_in);
  std::int64_t b = in_shape_[0], hw = in_shape_[2] * in_shape_[3];
  std::int64_t chw = channels_ * hw;
  double count = static_cast<double>(b * hw);
  const float* gp = grad_out.data();
  const float* xh = x_hat_.data();
  float* gi = grad_in->data();
  for (std::int64_t ch = 0; ch < channels_; ++ch) {
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::int64_t i = 0; i < b; ++i) {
      const float* gplane = gp + i * chw + ch * hw;
      const float* xplane = xh + i * chw + ch * hw;
      for (std::int64_t p = 0; p < hw; ++p) {
        sum_g += gplane[p];
        sum_gx += static_cast<double>(gplane[p]) * xplane[p];
      }
    }
    gamma_grad_[ch] += static_cast<float>(sum_gx);
    beta_grad_[ch] += static_cast<float>(sum_g);
    double mean_g = sum_g / count;
    double mean_gx = sum_gx / count;
    double coeff =
        gamma_[ch] * batch_inv_std_[static_cast<std::size_t>(ch)];
    for (std::int64_t i = 0; i < b; ++i) {
      const float* gplane = gp + i * chw + ch * hw;
      const float* xplane = xh + i * chw + ch * hw;
      float* iplane = gi + i * chw + ch * hw;
      for (std::int64_t p = 0; p < hw; ++p) {
        iplane[p] = static_cast<float>(
            coeff * (gplane[p] - mean_g - xplane[p] * mean_gx));
      }
    }
  }
}

void BatchNorm2d::CollectParams(std::vector<ParamRef>* out) {
  // BN scale/shift are not `.../weight` tensors: exempt from regularization.
  out->push_back({name() + "/gamma", &gamma_, &gamma_grad_, false, 0.0});
  out->push_back({name() + "/beta", &beta_, &beta_grad_, false, 0.0});
}

}  // namespace gmreg
