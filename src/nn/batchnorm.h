#ifndef GMREG_NN_BATCHNORM_H_
#define GMREG_NN_BATCHNORM_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace gmreg {

/// Spatial batch normalization (NCHW): per-channel statistics over
/// (N, H, W), learnable scale gamma and shift beta, running statistics for
/// evaluation. The BN layers are what make the paper's ResNet need much
/// weaker regularization than Alex-CIFAR-10 (Sec. V-B3).
class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(std::string name, std::int64_t channels, double momentum = 0.9,
              double eps = 1e-5);

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;
  void CollectParams(std::vector<ParamRef>* out) override;

 private:
  std::int64_t channels_;
  double momentum_;
  double eps_;
  Tensor gamma_;         // [C]
  Tensor beta_;          // [C]
  Tensor gamma_grad_;
  Tensor beta_grad_;
  Tensor running_mean_;  // [C]
  Tensor running_var_;   // [C]
  // Training-time caches for backward.
  Tensor x_hat_;                      // normalized input
  std::vector<double> batch_inv_std_;  // per channel
  std::vector<std::int64_t> in_shape_;
};

}  // namespace gmreg

#endif  // GMREG_NN_BATCHNORM_H_
