#include "nn/conv.h"

#include <cstring>

#include "tensor/random.h"
#include "tensor/tensor_ops.h"
#include "util/parallel.h"

namespace gmreg {

Conv2d::Conv2d(std::string name, std::int64_t in_channels,
               std::int64_t out_channels, int kernel, int stride, int padding,
               const InitSpec& init, Rng* rng)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels * kernel * kernel}),
      bias_grad_({out_channels}) {
  GMREG_CHECK_GT(kernel, 0);
  GMREG_CHECK_GT(stride, 0);
  GMREG_CHECK_GE(padding, 0);
  std::int64_t fan_in = in_channels * kernel * kernel;
  if (init.kind == InitSpec::Kind::kHeNormal) {
    init_stddev_ = HeStdDev(fan_in);
  } else {
    init_stddev_ = init.stddev;
  }
  FillGaussian(rng, 0.0, init_stddev_, &weight_);
}

void Conv2d::Im2Col(const float* img, std::int64_t h, std::int64_t w,
                    std::int64_t out_h, std::int64_t out_w, float* col) const {
  std::int64_t patch = in_channels_ * kernel_ * kernel_;
  std::int64_t cols = out_h * out_w;
  std::memset(col, 0, static_cast<std::size_t>(patch * cols) * sizeof(float));
  for (std::int64_t c = 0; c < in_channels_; ++c) {
    for (int kh = 0; kh < kernel_; ++kh) {
      for (int kw = 0; kw < kernel_; ++kw) {
        std::int64_t row = (c * kernel_ + kh) * kernel_ + kw;
        float* dst = col + row * cols;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          std::int64_t ih = oh * stride_ - padding_ + kh;
          if (ih < 0 || ih >= h) continue;
          const float* src = img + (c * h + ih) * w;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            std::int64_t iw = ow * stride_ - padding_ + kw;
            if (iw < 0 || iw >= w) continue;
            dst[oh * out_w + ow] = src[iw];
          }
        }
      }
    }
  }
}

void Conv2d::Col2Im(const float* col, std::int64_t h, std::int64_t w,
                    std::int64_t out_h, std::int64_t out_w, float* img) const {
  std::int64_t cols = out_h * out_w;
  for (std::int64_t c = 0; c < in_channels_; ++c) {
    for (int kh = 0; kh < kernel_; ++kh) {
      for (int kw = 0; kw < kernel_; ++kw) {
        std::int64_t row = (c * kernel_ + kh) * kernel_ + kw;
        const float* src = col + row * cols;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          std::int64_t ih = oh * stride_ - padding_ + kh;
          if (ih < 0 || ih >= h) continue;
          float* dst = img + (c * h + ih) * w;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            std::int64_t iw = ow * stride_ - padding_ + kw;
            if (iw < 0 || iw >= w) continue;
            dst[iw] += src[oh * out_w + ow];
          }
        }
      }
    }
  }
}

void Conv2d::Forward(const Tensor& in, Tensor* out, bool train) {
  GMREG_CHECK_EQ(in.rank(), 4);
  GMREG_CHECK_EQ(in.dim(1), in_channels_);
  std::int64_t b = in.dim(0);
  std::int64_t h = in.dim(2);
  std::int64_t w = in.dim(3);
  std::int64_t out_h = OutSize(h);
  std::int64_t out_w = OutSize(w);
  GMREG_CHECK_GT(out_h, 0);
  GMREG_CHECK_GT(out_w, 0);
  EnsureShape({b, out_channels_, out_h, out_w}, out);
  std::int64_t patch = in_channels_ * kernel_ * kernel_;
  std::int64_t cols = out_h * out_w;
  std::int64_t in_chw = in_channels_ * h * w;
  std::int64_t out_chw = out_channels_ * cols;
  auto forward_one = [&](std::int64_t i, Tensor* col) {
    Im2Col(in.data() + i * in_chw, h, w, out_h, out_w, col->data());
    // out_i [Cout, cols] = W [Cout, patch] * col [patch, cols]
    Gemm(false, false, out_channels_, cols, patch, 1.0f, weight_.data(),
         patch, col->data(), cols, 0.0f, out->data() + i * out_chw, cols);
    // bias broadcast over spatial positions
    float* op = out->data() + i * out_chw;
    for (std::int64_t co = 0; co < out_channels_; ++co) {
      float bval = bias_[co];
      for (std::int64_t p = 0; p < cols; ++p) op[co * cols + p] += bval;
    }
  };
  // Samples are independent and write disjoint output slices, so the batch
  // loop shards over the thread budget with one im2col buffer per shard;
  // the inner Gemm then runs serially (nested regions don't re-shard).
  int shards = ComputeNumShards(b, /*grain=*/1, ResolveNumThreads(0));
  if (shards <= 1 || InParallelRegion()) {
    EnsureShape({patch, cols}, &col_);
    for (std::int64_t i = 0; i < b; ++i) forward_one(i, &col_);
  } else {
    shard_cols_.resize(static_cast<std::size_t>(shards));
    RunShards(shards, 0, b, [&](int s, std::int64_t b0, std::int64_t b1) {
      Tensor* col = &shard_cols_[static_cast<std::size_t>(s)];
      EnsureShape({patch, cols}, col);
      for (std::int64_t i = b0; i < b1; ++i) forward_one(i, col);
    });
  }
  if (train) cached_in_ = in;
}

void Conv2d::Backward(const Tensor& grad_out, Tensor* grad_in) {
  std::int64_t b = cached_in_.dim(0);
  std::int64_t h = cached_in_.dim(2);
  std::int64_t w = cached_in_.dim(3);
  std::int64_t out_h = grad_out.dim(2);
  std::int64_t out_w = grad_out.dim(3);
  std::int64_t patch = in_channels_ * kernel_ * kernel_;
  std::int64_t cols = out_h * out_w;
  std::int64_t in_chw = in_channels_ * h * w;
  std::int64_t out_chw = out_channels_ * cols;
  EnsureShape(cached_in_.shape(), grad_in);
  grad_in->SetZero();
  // The parallel forward uses per-shard buffers, so col_ may be unsized.
  EnsureShape({patch, cols}, &col_);
  Tensor gcol({patch, cols});
  for (std::int64_t i = 0; i < b; ++i) {
    const float* gout = grad_out.data() + i * out_chw;
    // Recompute col for this sample (memory-lean: one col buffer, not B).
    Im2Col(cached_in_.data() + i * in_chw, h, w, out_h, out_w, col_.data());
    // dW += gout_i [Cout, cols] * col^T [cols, patch]
    Gemm(false, true, out_channels_, patch, cols, 1.0f, gout, cols,
         col_.data(), cols, 1.0f, weight_grad_.data(), patch);
    // db += spatial sums
    for (std::int64_t co = 0; co < out_channels_; ++co) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < cols; ++p) acc += gout[co * cols + p];
      bias_grad_[co] += acc;
    }
    // gcol = W^T [patch, Cout] * gout_i [Cout, cols]
    Gemm(true, false, patch, cols, out_channels_, 1.0f, weight_.data(), patch,
         gout, cols, 0.0f, gcol.data(), cols);
    Col2Im(gcol.data(), h, w, out_h, out_w, grad_in->data() + i * in_chw);
  }
}

void Conv2d::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name() + "/weight", &weight_, &weight_grad_, true,
                  init_stddev_});
  out->push_back({name() + "/bias", &bias_, &bias_grad_, false, 0.0});
}

}  // namespace gmreg
