#include "nn/conv.h"

#include <algorithm>
#include <cstring>

#include "tensor/quantize.h"
#include "tensor/random.h"
#include "tensor/tensor_ops.h"
#include "util/parallel.h"

namespace gmreg {
namespace {

// Shrink-or-plan scratch shaping: EnsureShape alone would keep a buffer
// sized for the largest batch ever seen. When the retained capacity is more
// than twice what the new shape needs, drop the buffer and reallocate at
// the planned size (a shape change is a planning step, so the reallocation
// is not on the steady-state path).
void PlanScratch(std::initializer_list<std::int64_t> shape, Tensor* t) {
  const std::vector<std::int64_t>& cur = t->shape();
  if (cur.size() == shape.size() &&
      std::equal(shape.begin(), shape.end(), cur.begin())) {
    return;
  }
  std::int64_t need = 1;
  for (std::int64_t d : shape) need *= d;
  if (t->capacity() > 2 * need) {
    // Drop the oversized buffer so the reallocation below starts fresh
    // instead of keeping the old high-water block alive.
    *t = Tensor();
  }
  *t = Tensor(shape);
}

}  // namespace

Conv2d::Conv2d(std::string name, std::int64_t in_channels,
               std::int64_t out_channels, int kernel, int stride, int padding,
               const InitSpec& init, Rng* rng)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels * kernel * kernel}),
      bias_grad_({out_channels}) {
  GMREG_CHECK_GT(kernel, 0);
  GMREG_CHECK_GT(stride, 0);
  GMREG_CHECK_GE(padding, 0);
  std::int64_t fan_in = in_channels * kernel * kernel;
  if (init.kind == InitSpec::Kind::kHeNormal) {
    init_stddev_ = HeStdDev(fan_in);
  } else {
    init_stddev_ = init.stddev;
  }
  FillGaussian(rng, 0.0, init_stddev_, &weight_);
}

void Conv2d::Im2Col(const float* img, std::int64_t h, std::int64_t w,
                    std::int64_t out_h, std::int64_t out_w, float* col) const {
  std::int64_t patch = in_channels_ * kernel_ * kernel_;
  std::int64_t cols = out_h * out_w;
  std::memset(col, 0, static_cast<std::size_t>(patch * cols) * sizeof(float));
  for (std::int64_t c = 0; c < in_channels_; ++c) {
    for (int kh = 0; kh < kernel_; ++kh) {
      for (int kw = 0; kw < kernel_; ++kw) {
        std::int64_t row = (c * kernel_ + kh) * kernel_ + kw;
        float* dst = col + row * cols;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          std::int64_t ih = oh * stride_ - padding_ + kh;
          if (ih < 0 || ih >= h) continue;
          const float* src = img + (c * h + ih) * w;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            std::int64_t iw = ow * stride_ - padding_ + kw;
            if (iw < 0 || iw >= w) continue;
            dst[oh * out_w + ow] = src[iw];
          }
        }
      }
    }
  }
}

void Conv2d::Col2Im(const float* col, std::int64_t h, std::int64_t w,
                    std::int64_t out_h, std::int64_t out_w, float* img) const {
  std::int64_t cols = out_h * out_w;
  for (std::int64_t c = 0; c < in_channels_; ++c) {
    for (int kh = 0; kh < kernel_; ++kh) {
      for (int kw = 0; kw < kernel_; ++kw) {
        std::int64_t row = (c * kernel_ + kh) * kernel_ + kw;
        const float* src = col + row * cols;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          std::int64_t ih = oh * stride_ - padding_ + kh;
          if (ih < 0 || ih >= h) continue;
          float* dst = img + (c * h + ih) * w;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            std::int64_t iw = ow * stride_ - padding_ + kw;
            if (iw < 0 || iw >= w) continue;
            dst[iw] += src[oh * out_w + ow];
          }
        }
      }
    }
  }
}

void Conv2d::Forward(const Tensor& in, Tensor* out, bool train) {
  GMREG_CHECK_EQ(in.rank(), 4);
  GMREG_CHECK_EQ(in.dim(1), in_channels_);
  std::int64_t b = in.dim(0);
  std::int64_t h = in.dim(2);
  std::int64_t w = in.dim(3);
  std::int64_t out_h = OutSize(h);
  std::int64_t out_w = OutSize(w);
  GMREG_CHECK_GT(out_h, 0);
  GMREG_CHECK_GT(out_w, 0);
  EnsureShape({b, out_channels_, out_h, out_w}, out);
  std::int64_t patch = in_channels_ * kernel_ * kernel_;
  std::int64_t cols = out_h * out_w;
  std::int64_t in_chw = in_channels_ * h * w;
  std::int64_t out_chw = out_channels_ * cols;
  auto forward_one = [&](std::int64_t i, Tensor* col) {
    Im2Col(in.data() + i * in_chw, h, w, out_h, out_w, col->data());
    // out_i [Cout, cols] = W [Cout, patch] * col [patch, cols]
    if (!train && quantized_weight_ != nullptr) {
      // Inference-only int8 path: per-output-row scales applied to each
      // finished row, accumulation stays float32 (tensor/quantize.h).
      GemmQuantA(out_channels_, cols, patch, *quantized_weight_, col->data(),
                 cols, out->data() + i * out_chw, cols);
    } else {
      Gemm(false, false, out_channels_, cols, patch, 1.0f, weight_.data(),
           patch, col->data(), cols, 0.0f, out->data() + i * out_chw, cols);
    }
    // bias broadcast over spatial positions
    AddColBroadcast(out_channels_, cols, bias_.data(),
                    out->data() + i * out_chw);
  };
  // Samples are independent and write disjoint output slices, so the batch
  // loop shards over the thread budget with one im2col buffer per shard;
  // the inner Gemm then runs serially (nested regions don't re-shard).
  int shards = ComputeNumShards(b, /*grain=*/1, ResolveNumThreads(0));
  if (shards <= 1 || InParallelRegion()) {
    shard_cols_.resize(1);
    PlanScratch({patch, cols}, &shard_cols_[0]);
    for (std::int64_t i = 0; i < b; ++i) forward_one(i, &shard_cols_[0]);
  } else {
    shard_cols_.resize(static_cast<std::size_t>(shards));
    RunShards(shards, 0, b, [&](int s, std::int64_t b0, std::int64_t b1) {
      Tensor* col = &shard_cols_[static_cast<std::size_t>(s)];
      PlanScratch({patch, cols}, col);
      for (std::int64_t i = b0; i < b1; ++i) forward_one(i, col);
    });
  }
  if (train) {
    // Copy-assign reuses capacity, which would otherwise pin the largest
    // batch ever seen for the rest of the run; drop the buffer first when
    // it is more than twice the new batch's need.
    if (cached_in_.capacity() > 2 * in.size()) cached_in_ = Tensor();
    cached_in_ = in;
  }
}

bool Conv2d::BindQuantizedWeight(const std::string& param_name,
                                 const QuantizedMatrix* q) {
  if (param_name != name() + "/weight") return false;
  if (q != nullptr) {
    GMREG_CHECK_EQ(q->rows, out_channels_);
    GMREG_CHECK_EQ(q->cols, in_channels_ * kernel_ * kernel_);
  }
  quantized_weight_ = q;
  return true;
}

void Conv2d::Backward(const Tensor& grad_out, Tensor* grad_in) {
  std::int64_t b = cached_in_.dim(0);
  std::int64_t h = cached_in_.dim(2);
  std::int64_t w = cached_in_.dim(3);
  std::int64_t out_h = grad_out.dim(2);
  std::int64_t out_w = grad_out.dim(3);
  std::int64_t patch = in_channels_ * kernel_ * kernel_;
  std::int64_t cols = out_h * out_w;
  std::int64_t in_chw = in_channels_ * h * w;
  std::int64_t out_chw = out_channels_ * cols;
  EnsureShape(cached_in_.shape(), grad_in);
  grad_in->SetZero();
  // The batch splits into a fixed number of chunks that depends only on the
  // batch size — never on the thread budget — so the per-chunk partial
  // weight/bias gradients and their fixed-order merge below produce
  // bitwise-identical results at every thread budget (docs/KERNELS.md).
  // Each chunk owns its scratch (col/gcol) and partial accumulators; samples
  // write disjoint grad_in slices.
  int chunks = static_cast<int>(std::min<std::int64_t>(b, 8));
  bwd_scratch_.resize(static_cast<std::size_t>(chunks));
  auto backward_chunk = [&](int s, std::int64_t b0, std::int64_t b1) {
    BwdScratch& scratch = bwd_scratch_[static_cast<std::size_t>(s)];
    PlanScratch({patch, cols}, &scratch.col);
    PlanScratch({patch, cols}, &scratch.gcol);
    EnsureShape(weight_grad_.shape(), &scratch.wgrad);
    EnsureShape(bias_grad_.shape(), &scratch.bgrad);
    scratch.wgrad.SetZero();
    scratch.bgrad.SetZero();
    for (std::int64_t i = b0; i < b1; ++i) {
      const float* gout = grad_out.data() + i * out_chw;
      // Recompute col for this sample (memory-lean: one col buffer per
      // chunk, not B).
      Im2Col(cached_in_.data() + i * in_chw, h, w, out_h, out_w,
             scratch.col.data());
      // chunk dW += gout_i [Cout, cols] * col^T [cols, patch]
      Gemm(false, true, out_channels_, patch, cols, 1.0f, gout, cols,
           scratch.col.data(), cols, 1.0f, scratch.wgrad.data(), patch);
      // chunk db += spatial sums
      RowSumsAccum(out_channels_, cols, gout, scratch.bgrad.data());
      // gcol = W^T [patch, Cout] * gout_i [Cout, cols]
      Gemm(true, false, patch, cols, out_channels_, 1.0f, weight_.data(),
           patch, gout, cols, 0.0f, scratch.gcol.data(), cols);
      Col2Im(scratch.gcol.data(), h, w, out_h, out_w,
             grad_in->data() + i * in_chw);
    }
  };
  // The chunk boundaries are fixed, but execution respects the thread
  // budget: the chunks are grouped over at most `budget` workers (each
  // worker runs its chunks serially, in chunk order). Any budget — 1,
  // nested-region serial, or N — therefore runs the exact same per-chunk
  // arithmetic; only the worker assignment changes.
  auto run_chunk = [&](int s) {
    auto [b0, b1] = ShardRange(s, chunks, 0, b);
    backward_chunk(s, b0, b1);
  };
  int budget = ResolveNumThreads(0);
  if (chunks <= 1 || InParallelRegion() || budget <= 1) {
    for (int s = 0; s < chunks; ++s) run_chunk(s);
  } else {
    RunShards(std::min(chunks, budget), 0, chunks,
              [&](int /*group*/, std::int64_t c0, std::int64_t c1) {
                for (std::int64_t s = c0; s < c1; ++s) {
                  run_chunk(static_cast<int>(s));
                }
              });
  }
  // Merge the partials in fixed chunk order.
  for (int s = 0; s < chunks; ++s) {
    Axpy(1.0f, bwd_scratch_[static_cast<std::size_t>(s)].wgrad,
         &weight_grad_);
    Axpy(1.0f, bwd_scratch_[static_cast<std::size_t>(s)].bgrad, &bias_grad_);
  }
}

void Conv2d::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name() + "/weight", &weight_, &weight_grad_, true,
                  init_stddev_});
  out->push_back({name() + "/bias", &bias_, &bias_grad_, false, 0.0});
}

}  // namespace gmreg
