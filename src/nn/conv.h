#ifndef GMREG_NN_CONV_H_
#define GMREG_NN_CONV_H_

#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace gmreg {

/// 2-d convolution (NCHW) via im2col + GEMM. Weight layout is
/// [Cout, Cin*Kh*Kw] so the per-sample forward is a single GEMM.
class Conv2d : public Layer {
 public:
  Conv2d(std::string name, std::int64_t in_channels, std::int64_t out_channels,
         int kernel, int stride, int padding, const InitSpec& init, Rng* rng);

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  bool BindQuantizedWeight(const std::string& param_name,
                           const QuantizedMatrix* q) override;

  Tensor& weight() { return weight_; }
  double init_stddev() const { return init_stddev_; }

  /// Output spatial size for an input extent `in_size`.
  std::int64_t OutSize(std::int64_t in_size) const {
    return (in_size + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  void Im2Col(const float* img, std::int64_t h, std::int64_t w,
              std::int64_t out_h, std::int64_t out_w, float* col) const;
  void Col2Im(const float* col, std::int64_t h, std::int64_t w,
              std::int64_t out_h, std::int64_t out_w, float* img) const;

  std::int64_t in_channels_;
  std::int64_t out_channels_;
  int kernel_;
  int stride_;
  int padding_;
  double init_stddev_;
  Tensor weight_;       // [Cout, Cin*K*K]
  Tensor bias_;         // [Cout]
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_in_;    // [B, Cin, H, W]
  // Int8 snapshot of weight_ for eval-mode forwards, owned by the caller of
  // BindQuantizedWeight (the serving model registry); nullptr = float path.
  const QuantizedMatrix* quantized_weight_ = nullptr;
  // Per-shard im2col scratch of the batch-parallel forward; one buffer per
  // shard so workers never share, sized lazily. The serial path is shard 0.
  std::vector<Tensor> shard_cols_;
  // Per-chunk scratch of the batch-parallel backward: im2col / gradient
  // columns plus partial weight/bias gradients, merged in fixed chunk order
  // so the result is bitwise-identical at every thread budget.
  struct BwdScratch {
    Tensor col;    // [Cin*K*K, Hout*Wout]
    Tensor gcol;   // [Cin*K*K, Hout*Wout]
    Tensor wgrad;  // [Cout, Cin*K*K]
    Tensor bgrad;  // [Cout]
  };
  std::vector<BwdScratch> bwd_scratch_;
};

}  // namespace gmreg

#endif  // GMREG_NN_CONV_H_
