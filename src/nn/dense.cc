#include "nn/dense.h"

#include "tensor/quantize.h"
#include "tensor/random.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace gmreg {

Dense::Dense(std::string name, std::int64_t in_features,
             std::int64_t out_features, const InitSpec& init, Rng* rng)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      weight_({in_features, out_features}),
      bias_({out_features}),
      weight_grad_({in_features, out_features}),
      bias_grad_({out_features}) {
  if (init.kind == InitSpec::Kind::kHeNormal) {
    init_stddev_ = HeStdDev(in_features);
  } else {
    init_stddev_ = init.stddev;
  }
  FillGaussian(rng, 0.0, init_stddev_, &weight_);
  // Bias starts at zero, as in the paper's substrate.
}

void Dense::Forward(const Tensor& in, Tensor* out, bool train) {
  GMREG_CHECK_EQ(in.rank(), 2);
  GMREG_CHECK_EQ(in.dim(1), in_features_);
  std::int64_t b = in.dim(0);
  EnsureShape({b, out_features_}, out);
  if (!train && quantized_weight_ != nullptr) {
    // Inference-only int8 path: per-input-row scales fold into the
    // activations, accumulation stays float32 (tensor/quantize.h).
    GemmQuantB(b, out_features_, in_features_, in.data(), in_features_,
               *quantized_weight_, out->data(), out_features_);
  } else {
    MatMul(in, weight_, out);
  }
  AddRowBroadcast(b, out_features_, bias_.data(), out->data());
  if (train) cached_in_ = in;
}

void Dense::Backward(const Tensor& grad_out, Tensor* grad_in) {
  std::int64_t b = grad_out.dim(0);
  GMREG_CHECK_EQ(grad_out.dim(1), out_features_);
  GMREG_CHECK_EQ(cached_in_.dim(0), b);
  // dW += in^T * gout
  Gemm(true, false, in_features_, out_features_, b, 1.0f, cached_in_.data(),
       in_features_, grad_out.data(), out_features_, 1.0f,
       weight_grad_.data(), out_features_);
  // db += column sums of gout
  ColSumsAccum(b, out_features_, grad_out.data(), bias_grad_.data());
  // gin = gout * W^T
  EnsureShape({b, in_features_}, grad_in);
  Gemm(false, true, b, in_features_, out_features_, 1.0f, grad_out.data(),
       out_features_, weight_.data(), out_features_, 0.0f, grad_in->data(),
       in_features_);
}

bool Dense::BindQuantizedWeight(const std::string& param_name,
                                const QuantizedMatrix* q) {
  if (param_name != name() + "/weight") return false;
  if (q != nullptr) {
    GMREG_CHECK_EQ(q->rows, in_features_);
    GMREG_CHECK_EQ(q->cols, out_features_);
  }
  quantized_weight_ = q;
  return true;
}

void Dense::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name() + "/weight", &weight_, &weight_grad_, true,
                  init_stddev_});
  out->push_back({name() + "/bias", &bias_, &bias_grad_, false, 0.0});
}

}  // namespace gmreg
