#ifndef GMREG_NN_DENSE_H_
#define GMREG_NN_DENSE_H_

#include <string>

#include "nn/layer.h"
#include "util/rng.h"

namespace gmreg {

/// Fully-connected layer: out = in * W + b, with in [B, In], W [In, Out].
class Dense : public Layer {
 public:
  Dense(std::string name, std::int64_t in_features, std::int64_t out_features,
        const InitSpec& init, Rng* rng);

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  bool BindQuantizedWeight(const std::string& param_name,
                           const QuantizedMatrix* q) override;

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  double init_stddev() const { return init_stddev_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  double init_stddev_;
  Tensor weight_;       // [In, Out]
  Tensor bias_;         // [Out]
  Tensor weight_grad_;  // [In, Out]
  Tensor bias_grad_;    // [Out]
  Tensor cached_in_;    // [B, In]
  // Int8 snapshot of weight_ for eval-mode forwards, owned by the caller of
  // BindQuantizedWeight (the serving model registry); nullptr = float path.
  const QuantizedMatrix* quantized_weight_ = nullptr;
};

}  // namespace gmreg

#endif  // GMREG_NN_DENSE_H_
