#include "nn/layer.h"

#include <algorithm>

namespace gmreg {

void Layer::CollectParams(std::vector<ParamRef>* out) { (void)out; }

bool Layer::BindQuantizedWeight(const std::string& param_name,
                                const QuantizedMatrix* q) {
  (void)param_name;
  (void)q;
  return false;
}

void Layer::EnsureShape(const std::vector<std::int64_t>& shape, Tensor* t) {
  if (t->shape() != shape) {
    t->Resize(shape);
  }
}

void Layer::EnsureShape(std::initializer_list<std::int64_t> shape, Tensor* t) {
  const std::vector<std::int64_t>& cur = t->shape();
  if (cur.size() == shape.size() &&
      std::equal(shape.begin(), shape.end(), cur.begin())) {
    return;
  }
  t->Resize(shape);
}

}  // namespace gmreg
