#include "nn/layer.h"

namespace gmreg {

void Layer::CollectParams(std::vector<ParamRef>* out) { (void)out; }

void Layer::EnsureShape(const std::vector<std::int64_t>& shape, Tensor* t) {
  if (t->shape() != shape) {
    *t = Tensor(shape);
  }
}

}  // namespace gmreg
