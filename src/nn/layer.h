#ifndef GMREG_NN_LAYER_H_
#define GMREG_NN_LAYER_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace gmreg {

struct QuantizedMatrix;  // tensor/quantize.h

/// A named view onto one learnable parameter tensor and its gradient
/// accumulator. The regularization tool consumes these: a GmRegularizer is
/// attached per ParamRef whose `is_weight` is true (the paper regularizes
/// `.../weight` tensors only; biases and BN scale/shift are exempt, as in
/// standard weight-decay practice).
struct ParamRef {
  std::string name;       ///< e.g. "conv1/weight"
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  bool is_weight = false;  ///< true => subject to regularization
  double init_stddev = 0.0;  ///< stddev of the initializer (GM `min` rule)
};

/// Initialization scheme for weight tensors.
struct InitSpec {
  enum class Kind { kGaussian, kHeNormal };
  Kind kind = Kind::kGaussian;
  double stddev = 0.1;  ///< used when kind == kGaussian

  static InitSpec Gaussian(double stddev) {
    return InitSpec{Kind::kGaussian, stddev};
  }
  static InitSpec He() { return InitSpec{Kind::kHeNormal, 0.0}; }
};

/// Base class for differentiable network layers. Layers cache whatever they
/// need from Forward for the subsequent Backward; Backward ACCUMULATES into
/// parameter gradients (the trainer zeroes them between steps).
class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output. `train` toggles training-mode behaviour
  /// (batch statistics in BatchNorm). `out` is resized as needed.
  virtual void Forward(const Tensor& in, Tensor* out, bool train) = 0;

  /// Propagates the loss gradient. `grad_out` is d(loss)/d(output);
  /// `grad_in` receives d(loss)/d(input) (resized as needed). Must be
  /// preceded by a Forward(train=true) on the same input.
  virtual void Backward(const Tensor& grad_out, Tensor* grad_in) = 0;

  /// Uniform inference entry point — one eval-mode forward (BatchNorm uses
  /// its running inference statistics, nothing is cached for a Backward).
  /// The serving layer (src/serve/) programs against this contract: `in` is
  /// a batch along dim 0, `out` receives per-example scores where the row
  /// arg-max is the predicted class.
  void Predict(const Tensor& in, Tensor* out) {
    Forward(in, out, /*train=*/false);
  }

  /// Appends this layer's learnable parameters to `out`. Default: none.
  virtual void CollectParams(std::vector<ParamRef>* out);

  /// Offers a read-only int8 snapshot of the parameter `param_name` (per-row
  /// symmetric scales, see tensor/quantize.h) for eval-mode forwards — the
  /// serving layer binds these once per published model version. Returns
  /// true when this layer (or a child, for containers) owns that parameter
  /// and accepted the matrix; `q == nullptr` clears a previous binding. The
  /// caller keeps `q` alive for as long as the binding stands. Training-mode
  /// forwards always use the float weights. Default: not mine, false.
  virtual bool BindQuantizedWeight(const std::string& param_name,
                                   const QuantizedMatrix* q);

  const std::string& name() const { return name_; }

 protected:
  explicit Layer(std::string name) : name_(std::move(name)) {}

  /// Reallocates `*t` to `shape` unless it already matches.
  static void EnsureShape(const std::vector<std::int64_t>& shape, Tensor* t);
  /// Braced-list overload: call sites like EnsureShape({b, n}, t) compare
  /// against the current shape without materializing a vector, so the
  /// steady-state match path performs zero allocations.
  static void EnsureShape(std::initializer_list<std::int64_t> shape,
                          Tensor* t);

 private:
  std::string name_;
};

}  // namespace gmreg

#endif  // GMREG_NN_LAYER_H_
