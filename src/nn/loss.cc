#include "nn/loss.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/arena.h"
#include "util/logging.h"

namespace gmreg {
namespace {

// Writes the softmax of row `row` of logits into `probs` and returns the
// log-sum-exp (max-shifted for stability).
void SoftmaxRow(const float* logits, std::int64_t c, double* probs) {
  double max_logit = logits[0];
  for (std::int64_t j = 1; j < c; ++j) {
    max_logit = std::max<double>(max_logit, logits[j]);
  }
  double denom = 0.0;
  for (std::int64_t j = 0; j < c; ++j) {
    probs[j] = std::exp(logits[j] - max_logit);
    denom += probs[j];
  }
  for (std::int64_t j = 0; j < c; ++j) probs[j] /= denom;
}

}  // namespace

double SoftmaxCrossEntropy::ForwardBackward(const Tensor& logits,
                                            const std::vector<int>& labels,
                                            Tensor* grad_logits) {
  GMREG_CHECK_EQ(logits.rank(), 2);
  std::int64_t b = logits.dim(0);
  std::int64_t c = logits.dim(1);
  GMREG_CHECK_EQ(static_cast<std::int64_t>(labels.size()), b);
  if (grad_logits->shape() != logits.shape()) {
    *grad_logits = Tensor(logits.shape());
  }
  // Per-thread row scratch: ForwardBackward runs every training step, so
  // the steady state must not allocate (docs/MEMORY.md).
  thread_local ScratchBuffer<double> probs_buf;
  double* probs = probs_buf.EnsureCapacity(static_cast<std::size_t>(c));
  double total = 0.0;
  float* gp = grad_logits->data();
  double inv_b = 1.0 / static_cast<double>(b);
  for (std::int64_t i = 0; i < b; ++i) {
    const float* row = logits.data() + i * c;
    SoftmaxRow(row, c, probs);
    int y = labels[static_cast<std::size_t>(i)];
    GMREG_CHECK_GE(y, 0);
    GMREG_CHECK_LT(y, c);
    total += -std::log(std::max(probs[y], 1e-300));
    for (std::int64_t j = 0; j < c; ++j) {
      double g = probs[j] - (j == y ? 1.0 : 0.0);
      gp[i * c + j] = static_cast<float>(g * inv_b);
    }
  }
  return total * inv_b;
}

double SoftmaxCrossEntropy::Loss(const Tensor& logits,
                                 const std::vector<int>& labels) {
  GMREG_CHECK_EQ(logits.rank(), 2);
  std::int64_t b = logits.dim(0);
  std::int64_t c = logits.dim(1);
  GMREG_CHECK_EQ(static_cast<std::int64_t>(labels.size()), b);
  thread_local ScratchBuffer<double> probs_buf;
  double* probs = probs_buf.EnsureCapacity(static_cast<std::size_t>(c));
  double total = 0.0;
  for (std::int64_t i = 0; i < b; ++i) {
    SoftmaxRow(logits.data() + i * c, c, probs);
    int y = labels[static_cast<std::size_t>(i)];
    total += -std::log(std::max(probs[y], 1e-300));
  }
  return total / static_cast<double>(b);
}

double Accuracy(const Tensor& logits, const std::vector<int>& labels) {
  std::int64_t b = logits.dim(0);
  GMREG_CHECK_EQ(static_cast<std::int64_t>(labels.size()), b);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < b; ++i) {
    if (ArgMaxRow(logits, i) == labels[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(b);
}

}  // namespace gmreg
