#ifndef GMREG_NN_LOSS_H_
#define GMREG_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace gmreg {

/// Softmax + cross-entropy, fused for numerical stability. This is the
/// negative log-likelihood term `-log p(D|w)` (the `gll` of Algorithm 1).
class SoftmaxCrossEntropy {
 public:
  /// Computes the mean cross-entropy over the batch and writes
  /// d(mean loss)/d(logits) into `grad_logits` (resized as needed).
  /// logits: [B, C]; labels: size B with values in [0, C).
  static double ForwardBackward(const Tensor& logits,
                                const std::vector<int>& labels,
                                Tensor* grad_logits);

  /// Mean cross-entropy only (no gradient).
  static double Loss(const Tensor& logits, const std::vector<int>& labels);
};

/// Fraction of rows whose argmax matches the label.
double Accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace gmreg

#endif  // GMREG_NN_LOSS_H_
