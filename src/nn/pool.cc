#include "nn/pool.h"

#include <algorithm>
#include <limits>

namespace gmreg {
namespace {

std::int64_t PoolOutSize(std::int64_t in, int kernel, int stride) {
  // Ceil mode so border columns are pooled by a clipped window (matches the
  // common CIFAR AlexNet configuration of 3x3/2 pooling on 32x32 inputs).
  return (in - kernel + stride - 1) / stride + 1;
}

}  // namespace

MaxPool2d::MaxPool2d(std::string name, int kernel, int stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  GMREG_CHECK_GT(kernel, 0);
  GMREG_CHECK_GT(stride, 0);
}

void MaxPool2d::Forward(const Tensor& in, Tensor* out, bool train) {
  (void)train;
  GMREG_CHECK_EQ(in.rank(), 4);
  std::int64_t b = in.dim(0), c = in.dim(1), h = in.dim(2), w = in.dim(3);
  std::int64_t oh = PoolOutSize(h, kernel_, stride_);
  std::int64_t ow = PoolOutSize(w, kernel_, stride_);
  EnsureShape({b, c, oh, ow}, out);
  in_shape_ = in.shape();
  argmax_.assign(static_cast<std::size_t>(out->size()), 0);
  const float* ip = in.data();
  float* op = out->data();
  std::int64_t oidx = 0;
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = ip + (i * c + ch) * h * w;
      for (std::int64_t r = 0; r < oh; ++r) {
        std::int64_t r0 = r * stride_;
        std::int64_t r1 = std::min<std::int64_t>(r0 + kernel_, h);
        for (std::int64_t col = 0; col < ow; ++col) {
          std::int64_t c0 = col * stride_;
          std::int64_t c1 = std::min<std::int64_t>(c0 + kernel_, w);
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = r0 * w + c0;
          for (std::int64_t rr = r0; rr < r1; ++rr) {
            for (std::int64_t cc = c0; cc < c1; ++cc) {
              float v = plane[rr * w + cc];
              if (v > best) {
                best = v;
                best_idx = rr * w + cc;
              }
            }
          }
          op[oidx] = best;
          argmax_[static_cast<std::size_t>(oidx)] =
              (i * c + ch) * h * w + best_idx;
          ++oidx;
        }
      }
    }
  }
}

void MaxPool2d::Backward(const Tensor& grad_out, Tensor* grad_in) {
  EnsureShape(in_shape_, grad_in);
  grad_in->SetZero();
  const float* gp = grad_out.data();
  float* gi = grad_in->data();
  for (std::int64_t i = 0; i < grad_out.size(); ++i) {
    gi[argmax_[static_cast<std::size_t>(i)]] += gp[i];
  }
}

AvgPool2d::AvgPool2d(std::string name, int kernel, int stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  GMREG_CHECK_GT(kernel, 0);
  GMREG_CHECK_GT(stride, 0);
}

void AvgPool2d::Forward(const Tensor& in, Tensor* out, bool train) {
  (void)train;
  GMREG_CHECK_EQ(in.rank(), 4);
  std::int64_t b = in.dim(0), c = in.dim(1), h = in.dim(2), w = in.dim(3);
  std::int64_t oh = PoolOutSize(h, kernel_, stride_);
  std::int64_t ow = PoolOutSize(w, kernel_, stride_);
  EnsureShape({b, c, oh, ow}, out);
  in_shape_ = in.shape();
  const float* ip = in.data();
  float* op = out->data();
  std::int64_t oidx = 0;
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = ip + (i * c + ch) * h * w;
      for (std::int64_t r = 0; r < oh; ++r) {
        std::int64_t r0 = r * stride_;
        std::int64_t r1 = std::min<std::int64_t>(r0 + kernel_, h);
        for (std::int64_t col = 0; col < ow; ++col) {
          std::int64_t c0 = col * stride_;
          std::int64_t c1 = std::min<std::int64_t>(c0 + kernel_, w);
          float acc = 0.0f;
          for (std::int64_t rr = r0; rr < r1; ++rr) {
            for (std::int64_t cc = c0; cc < c1; ++cc) {
              acc += plane[rr * w + cc];
            }
          }
          op[oidx++] =
              acc / static_cast<float>((r1 - r0) * (c1 - c0));
        }
      }
    }
  }
}

void AvgPool2d::Backward(const Tensor& grad_out, Tensor* grad_in) {
  std::int64_t b = in_shape_[0], c = in_shape_[1], h = in_shape_[2],
               w = in_shape_[3];
  std::int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  EnsureShape(in_shape_, grad_in);
  grad_in->SetZero();
  const float* gp = grad_out.data();
  float* gi = grad_in->data();
  std::int64_t oidx = 0;
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      float* plane = gi + (i * c + ch) * h * w;
      for (std::int64_t r = 0; r < oh; ++r) {
        std::int64_t r0 = r * stride_;
        std::int64_t r1 = std::min<std::int64_t>(r0 + kernel_, h);
        for (std::int64_t col = 0; col < ow; ++col) {
          std::int64_t c0 = col * stride_;
          std::int64_t c1 = std::min<std::int64_t>(c0 + kernel_, w);
          float g = gp[oidx++] / static_cast<float>((r1 - r0) * (c1 - c0));
          for (std::int64_t rr = r0; rr < r1; ++rr) {
            for (std::int64_t cc = c0; cc < c1; ++cc) {
              plane[rr * w + cc] += g;
            }
          }
        }
      }
    }
  }
}

GlobalAvgPool::GlobalAvgPool(std::string name) : Layer(std::move(name)) {}

void GlobalAvgPool::Forward(const Tensor& in, Tensor* out, bool train) {
  (void)train;
  GMREG_CHECK_EQ(in.rank(), 4);
  std::int64_t b = in.dim(0), c = in.dim(1), hw = in.dim(2) * in.dim(3);
  EnsureShape({b, c}, out);
  in_shape_ = in.shape();
  const float* ip = in.data();
  float* op = out->data();
  for (std::int64_t i = 0; i < b * c; ++i) {
    float acc = 0.0f;
    for (std::int64_t p = 0; p < hw; ++p) acc += ip[i * hw + p];
    op[i] = acc / static_cast<float>(hw);
  }
}

void GlobalAvgPool::Backward(const Tensor& grad_out, Tensor* grad_in) {
  std::int64_t hw = in_shape_[2] * in_shape_[3];
  EnsureShape(in_shape_, grad_in);
  const float* gp = grad_out.data();
  float* gi = grad_in->data();
  for (std::int64_t i = 0; i < grad_out.size(); ++i) {
    float g = gp[i] / static_cast<float>(hw);
    for (std::int64_t p = 0; p < hw; ++p) gi[i * hw + p] = g;
  }
}

Flatten::Flatten(std::string name) : Layer(std::move(name)) {}

void Flatten::Forward(const Tensor& in, Tensor* out, bool train) {
  (void)train;
  in_shape_ = in.shape();
  std::int64_t b = in.dim(0);
  *out = in;
  out->Reshape({b, in.size() / b});
}

void Flatten::Backward(const Tensor& grad_out, Tensor* grad_in) {
  *grad_in = grad_out;
  grad_in->Reshape(in_shape_);
}

}  // namespace gmreg
