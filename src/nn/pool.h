#ifndef GMREG_NN_POOL_H_
#define GMREG_NN_POOL_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace gmreg {

/// Max pooling (NCHW). Caches argmax positions for the backward pass.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::string name, int kernel, int stride);

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

 private:
  int kernel_;
  int stride_;
  std::vector<std::int64_t> in_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// Average pooling (NCHW) over kernel windows (zero-padding-free; windows
/// clipped at the border divide by the actual window size).
class AvgPool2d : public Layer {
 public:
  AvgPool2d(std::string name, int kernel, int stride);

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

 private:
  int kernel_;
  int stride_;
  std::vector<std::int64_t> in_shape_;
};

/// Global average pooling: [B, C, H, W] -> [B, C]. Used at the top of the
/// ResNet before the softmax classifier.
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name);

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

 private:
  std::vector<std::int64_t> in_shape_;
};

/// Flatten: [B, ...] -> [B, prod(...)]. Pure reshape both ways.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name);

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

 private:
  std::vector<std::int64_t> in_shape_;
};

}  // namespace gmreg

#endif  // GMREG_NN_POOL_H_
