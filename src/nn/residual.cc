#include "nn/residual.h"

#include "tensor/tensor_ops.h"

namespace gmreg {

Residual::Residual(std::string name, std::unique_ptr<Sequential> main_path,
                   std::unique_ptr<Sequential> shortcut)
    : Layer(std::move(name)),
      main_(std::move(main_path)),
      shortcut_(std::move(shortcut)) {
  GMREG_CHECK(main_ != nullptr);
}

void Residual::Forward(const Tensor& in, Tensor* out, bool train) {
  main_->Forward(in, &main_out_, train);
  const Tensor* residual = &in;
  if (shortcut_ != nullptr) {
    shortcut_->Forward(in, &shortcut_out_, train);
    residual = &shortcut_out_;
  }
  GMREG_CHECK(main_out_.SameShape(*residual))
      << "residual shape mismatch in '" << name() << "': "
      << main_out_.ShapeString() << " vs " << residual->ShapeString();
  EnsureShape(main_out_.shape(), out);
  const float* mp = main_out_.data();
  const float* rp = residual->data();
  float* op = out->data();
  std::int64_t n = main_out_.size();
  if (train) {
    relu_mask_.assign(static_cast<std::size_t>(n), false);
    for (std::int64_t i = 0; i < n; ++i) {
      float s = mp[i] + rp[i];
      bool pos = s > 0.0f;
      relu_mask_[static_cast<std::size_t>(i)] = pos;
      op[i] = pos ? s : 0.0f;
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      float s = mp[i] + rp[i];
      op[i] = s > 0.0f ? s : 0.0f;
    }
  }
}

void Residual::Backward(const Tensor& grad_out, Tensor* grad_in) {
  std::int64_t n = grad_out.size();
  GMREG_CHECK_EQ(static_cast<std::int64_t>(relu_mask_.size()), n);
  EnsureShape(grad_out.shape(), &relu_grad_);
  const float* gp = grad_out.data();
  float* rg = relu_grad_.data();
  for (std::int64_t i = 0; i < n; ++i) {
    rg[i] = relu_mask_[static_cast<std::size_t>(i)] ? gp[i] : 0.0f;
  }
  main_->Backward(relu_grad_, &main_grad_);
  if (shortcut_ != nullptr) {
    shortcut_->Backward(relu_grad_, &shortcut_grad_);
    EnsureShape(main_grad_.shape(), grad_in);
    Add(main_grad_, shortcut_grad_, grad_in);
  } else {
    EnsureShape(main_grad_.shape(), grad_in);
    Add(main_grad_, relu_grad_, grad_in);
  }
}

bool Residual::BindQuantizedWeight(const std::string& param_name,
                                  const QuantizedMatrix* q) {
  if (main_->BindQuantizedWeight(param_name, q)) return true;
  return shortcut_ != nullptr && shortcut_->BindQuantizedWeight(param_name, q);
}

void Residual::CollectParams(std::vector<ParamRef>* out) {
  main_->CollectParams(out);
  if (shortcut_ != nullptr) shortcut_->CollectParams(out);
}

}  // namespace gmreg
