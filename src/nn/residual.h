#ifndef GMREG_NN_RESIDUAL_H_
#define GMREG_NN_RESIDUAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.h"

namespace gmreg {

/// Residual block (He et al. 2016): out = ReLU(main(x) + shortcut(x)).
/// `shortcut` is the identity when null, or a projection path (1x1/3x3 conv
/// + BN) when the block changes resolution or channel count — the
/// `*-br2-conv` weights in the paper's Table V.
class Residual : public Layer {
 public:
  Residual(std::string name, std::unique_ptr<Sequential> main_path,
           std::unique_ptr<Sequential> shortcut /* may be null */);

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  bool BindQuantizedWeight(const std::string& param_name,
                           const QuantizedMatrix* q) override;

 private:
  std::unique_ptr<Sequential> main_;
  std::unique_ptr<Sequential> shortcut_;
  Tensor main_out_;
  Tensor shortcut_out_;
  std::vector<bool> relu_mask_;
  Tensor main_grad_;
  Tensor shortcut_grad_;
  Tensor relu_grad_;
};

}  // namespace gmreg

#endif  // GMREG_NN_RESIDUAL_H_
