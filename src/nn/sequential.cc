#include "nn/sequential.h"

namespace gmreg {

Sequential::Sequential(std::string name) : Layer(std::move(name)) {}

Layer* Sequential::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return layers_.back().get();
}

void Sequential::Forward(const Tensor& in, Tensor* out, bool train) {
  GMREG_CHECK(!layers_.empty()) << "empty Sequential '" << name() << "'";
  acts_.resize(layers_.size());
  const Tensor* current = &in;
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    layers_[i]->Forward(*current, &acts_[i], train);
    current = &acts_[i];
  }
  layers_.back()->Forward(*current, out, train);
}

void Sequential::Backward(const Tensor& grad_out, Tensor* grad_in) {
  const Tensor* current = &grad_out;
  // Ping-pong between two scratch tensors walking the chain backwards.
  Tensor* bufs[2] = {&scratch_a_, &scratch_b_};
  int which = 0;
  for (std::size_t i = layers_.size(); i-- > 1;) {
    Tensor* next = bufs[which];
    layers_[i]->Backward(*current, next);
    current = next;
    which ^= 1;
  }
  layers_[0]->Backward(*current, grad_in);
}

void Sequential::CollectParams(std::vector<ParamRef>* out) {
  for (auto& layer : layers_) layer->CollectParams(out);
}

}  // namespace gmreg
