#include "nn/sequential.h"

namespace gmreg {

Sequential::Sequential(std::string name) : Layer(std::move(name)) {}

Layer* Sequential::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return layers_.back().get();
}

void Sequential::Forward(const Tensor& in, Tensor* out, bool train) {
  GMREG_CHECK(!layers_.empty()) << "empty Sequential '" << name() << "'";
  // First batch of a new shape: plan — size the whole activation chain into
  // the arena. When a caller (Trainer::Step, InferenceSession::Predict)
  // already installed a scope this nests harmlessly onto the same arena and
  // does not double-count the rebuild.
  bool replan = plan_.Update(in.shape().data(), in.rank());
  if (replan && Arena::Current() == nullptr) RecordArenaPlanRebuild();
  ArenaScope plan_scope(replan ? &GlobalArena() : nullptr);
  acts_.resize(layers_.size());
  const Tensor* current = &in;
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    layers_[i]->Forward(*current, &acts_[i], train);
    current = &acts_[i];
  }
  layers_.back()->Forward(*current, out, train);
}

void Sequential::Backward(const Tensor& grad_out, Tensor* grad_in) {
  const Tensor* current = &grad_out;
  grads_.resize(layers_.size());
  for (std::size_t i = layers_.size(); i-- > 1;) {
    Tensor* next = &grads_[i];
    layers_[i]->Backward(*current, next);
    current = next;
  }
  layers_[0]->Backward(*current, grad_in);
}

bool Sequential::BindQuantizedWeight(const std::string& param_name,
                                    const QuantizedMatrix* q) {
  for (auto& layer : layers_) {
    if (layer->BindQuantizedWeight(param_name, q)) return true;
  }
  return false;
}

void Sequential::CollectParams(std::vector<ParamRef>* out) {
  for (auto& layer : layers_) layer->CollectParams(out);
}

}  // namespace gmreg
