#ifndef GMREG_NN_SEQUENTIAL_H_
#define GMREG_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.h"

namespace gmreg {

/// Linear chain of layers; itself a Layer, so it nests (residual branches).
class Sequential : public Layer {
 public:
  explicit Sequential(std::string name);

  /// Appends a layer; returns a non-owning pointer for convenience.
  Layer* Add(std::unique_ptr<Layer> layer);

  /// Constructs a layer in place and appends it.
  template <typename T, typename... Args>
  T* Emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = layer.get();
    Add(std::move(layer));
    return raw;
  }

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;
  void CollectParams(std::vector<ParamRef>* out) override;

  std::size_t NumLayers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor> acts_;   // acts_[i]: output of layers_[i] (except last)
  Tensor scratch_a_;
  Tensor scratch_b_;
};

}  // namespace gmreg

#endif  // GMREG_NN_SEQUENTIAL_H_
