#ifndef GMREG_NN_SEQUENTIAL_H_
#define GMREG_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.h"
#include "util/arena.h"

namespace gmreg {

/// Linear chain of layers; itself a Layer, so it nests (residual branches).
class Sequential : public Layer {
 public:
  explicit Sequential(std::string name);

  /// Appends a layer; returns a non-owning pointer for convenience.
  Layer* Add(std::unique_ptr<Layer> layer);

  /// Constructs a layer in place and appends it.
  template <typename T, typename... Args>
  T* Emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = layer.get();
    Add(std::move(layer));
    return raw;
  }

  void Forward(const Tensor& in, Tensor* out, bool train) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  bool BindQuantizedWeight(const std::string& param_name,
                           const QuantizedMatrix* q) override;

  std::size_t NumLayers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor> acts_;   // acts_[i]: output of layers_[i] (except last)
  // grads_[i]: gradient flowing out of layers_[i]'s Backward. One buffer
  // per layer (not a ping-pong pair) so each buffer keeps one stable shape
  // across batches — EnsureShape then never reallocates in steady state.
  std::vector<Tensor> grads_;
  // Plan-once shape key: a new input shape re-sizes the activation chain
  // under an arena planning scope (docs/MEMORY.md); same-shape calls reuse
  // every buffer without allocating. Nested Sequentials (residual branches)
  // inherit the outermost scope, so only the outermost records the rebuild.
  ShapePlan plan_;
};

}  // namespace gmreg

#endif  // GMREG_NN_SEQUENTIAL_H_
