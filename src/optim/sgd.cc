#include "optim/sgd.h"

#include "util/logging.h"

namespace gmreg {

Sgd::Sgd(std::vector<ParamRef> params, double learning_rate, double momentum)
    : params_(std::move(params)),
      learning_rate_(learning_rate),
      momentum_(momentum) {
  GMREG_CHECK_GT(learning_rate, 0.0);
  GMREG_CHECK_GE(momentum, 0.0);
  GMREG_CHECK_LT(momentum, 1.0);
  velocity_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    GMREG_CHECK(p.value != nullptr && p.grad != nullptr);
    GMREG_CHECK_EQ(p.value->size(), p.grad->size());
    velocity_.emplace_back(p.value->shape());
  }
}

void Sgd::Step() {
  auto lr = static_cast<float>(learning_rate_);
  auto mom = static_cast<float>(momentum_);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    float* w = params_[k].value->data();
    const float* g = params_[k].grad->data();
    float* v = velocity_[k].data();
    std::int64_t n = params_[k].value->size();
    for (std::int64_t i = 0; i < n; ++i) {
      v[i] = mom * v[i] + g[i];
      w[i] -= lr * v[i];
    }
  }
}

void Sgd::ZeroGrad() {
  for (ParamRef& p : params_) p.grad->SetZero();
}

}  // namespace gmreg
