#ifndef GMREG_OPTIM_SGD_H_
#define GMREG_OPTIM_SGD_H_

#include <vector>

#include "nn/layer.h"

namespace gmreg {

/// Stochastic gradient descent with classical momentum:
///   v <- momentum * v + grad;  w <- w - lr * v
/// The update framework of the paper's Algorithm 1 (SGD step, line 7).
class Sgd {
 public:
  /// Registers the parameter set; velocity buffers are sized to match.
  Sgd(std::vector<ParamRef> params, double learning_rate, double momentum);

  /// Applies one update using the gradients currently accumulated in each
  /// ParamRef::grad, then leaves the gradients untouched (caller zeroes).
  void Step();

  /// Sets all gradient accumulators to zero.
  void ZeroGrad();

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

  const std::vector<ParamRef>& params() const { return params_; }

  /// Momentum buffers, aligned with params(). Exposed (also mutably) so
  /// training checkpoints (io/checkpoint.h) can persist and restore the
  /// optimizer state — resume is only bit-exact if the velocity survives.
  const std::vector<Tensor>& velocity() const { return velocity_; }
  std::vector<Tensor>& mutable_velocity() { return velocity_; }

 private:
  std::vector<ParamRef> params_;
  std::vector<Tensor> velocity_;
  double learning_rate_;
  double momentum_;
};

}  // namespace gmreg

#endif  // GMREG_OPTIM_SGD_H_
