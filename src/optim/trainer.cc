#include "optim/trainer.h"

#include <algorithm>
#include <memory>

#include "nn/loss.h"
#include "tensor/tensor_ops.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace gmreg {
namespace {

std::vector<ParamRef> Collect(Layer* net) {
  std::vector<ParamRef> params;
  net->CollectParams(&params);
  return params;
}

}  // namespace

Trainer::Trainer(Layer* net, const TrainOptions& opts)
    : net_(net),
      opts_(opts),
      params_(Collect(net)),
      sgd_(params_, opts.learning_rate, opts.momentum),
      regs_(params_.size(), nullptr) {
  GMREG_CHECK(net != nullptr);
  GMREG_CHECK_GT(opts.num_train_samples, 0)
      << "TrainOptions::num_train_samples must be set (prior scale 1/N)";
  if (opts.num_threads > 0) SetDefaultNumThreads(opts.num_threads);
}

void Trainer::AttachRegularizer(const std::string& param_name,
                                Regularizer* reg) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name == param_name) {
      regs_[i] = reg;
      return;
    }
  }
  GMREG_CHECK(false) << "no parameter named '" << param_name << "'";
}

void Trainer::AttachToAllWeights(
    const std::function<std::unique_ptr<Regularizer>(const ParamRef&)>&
        factory) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i].is_weight) continue;
    auto reg = factory(params_[i]);
    if (reg == nullptr) continue;
    regs_[i] = reg.get();
    owned_regs_.push_back(std::move(reg));
  }
}

TrainingCheckpoint Trainer::BuildCheckpoint(int completed_epochs,
                                            std::int64_t iteration) const {
  TrainingCheckpoint ckpt;
  ckpt.epoch = completed_epochs;
  ckpt.iteration = iteration;
  ckpt.learning_rate = sgd_.learning_rate();
  if (checkpoint_rng_ != nullptr) {
    ckpt.has_rng = true;
    ckpt.rng = checkpoint_rng_->SaveState();
  }
  const std::vector<Tensor>& velocity = sgd_.velocity();
  for (std::size_t i = 0; i < params_.size(); ++i) {
    ckpt.param_names.push_back(params_[i].name);
    ckpt.params.push_back(*params_[i].value);
    ckpt.velocity.push_back(velocity[i]);
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (regs_[i] == nullptr) continue;
    std::string state;
    if (regs_[i]->SaveState(&state)) {
      ckpt.reg_states.emplace_back(params_[i].name, std::move(state));
    }
  }
  return ckpt;
}

Status Trainer::Resume() {
  GMREG_CHECK(!opts_.checkpoint_path.empty())
      << "TrainOptions::checkpoint_path must be set to resume";
  TrainingCheckpoint ckpt;
  GMREG_RETURN_IF_ERROR(
      LoadLatestValidCheckpoint(opts_.checkpoint_path, &ckpt));
  if (ckpt.param_names.size() != params_.size()) {
    return Status::FailedPrecondition(
        "checkpoint has a different parameter count than the network");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (ckpt.param_names[i] != params_[i].name ||
        !ckpt.params[i].SameShape(*params_[i].value)) {
      return Status::FailedPrecondition(
          "checkpoint parameter '" + ckpt.param_names[i] +
          "' does not match network parameter '" + params_[i].name + "'");
    }
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    *params_[i].value = std::move(ckpt.params[i]);
    sgd_.mutable_velocity()[i] = std::move(ckpt.velocity[i]);
  }
  sgd_.set_learning_rate(ckpt.learning_rate);
  for (auto& [name, blob] : ckpt.reg_states) {
    Regularizer* reg = nullptr;
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (params_[i].name == name) {
        reg = regs_[i];
        break;
      }
    }
    if (reg == nullptr) {
      return Status::FailedPrecondition(
          "checkpoint carries regularizer state for '" + name +
          "' but no regularizer is attached there");
    }
    GMREG_RETURN_IF_ERROR(reg->LoadState(blob));
  }
  if (ckpt.has_rng) {
    if (checkpoint_rng_ != nullptr) {
      checkpoint_rng_->RestoreState(ckpt.rng);
    } else {
      GMREG_LOG(Warning) << "checkpoint carries an RNG state but no "
                            "generator is registered (SetCheckpointRng); "
                            "the batch stream will not be replayed";
    }
  } else if (checkpoint_rng_ != nullptr) {
    GMREG_LOG(Warning) << "checkpoint has no RNG state; the registered "
                          "generator keeps its current stream";
  }
  start_epoch_ = ckpt.epoch;
  start_iteration_ = ckpt.iteration;
  GMREG_LOG(Info) << "resumed from checkpoint at epoch " << ckpt.epoch
                  << " (iteration " << ckpt.iteration << ")";
  return Status::Ok();
}

double Trainer::Step(const Tensor& input, const std::vector<int>& labels) {
  // Plan-once: the first batch of a new input shape sizes every intermediate
  // (activations, gradients, im2col panels, E-step scratch) inside an arena
  // planning scope; same-shape batches find all buffers sized and run
  // without touching the heap (docs/MEMORY.md).
  bool replan = step_plan_.Update(input.shape().data(), input.rank());
  if (replan) RecordArenaPlanRebuild();
  ArenaScope plan_scope(replan ? &GlobalArena() : nullptr);
  double scale = 1.0 / static_cast<double>(opts_.num_train_samples);
  sgd_.ZeroGrad();
  net_->Forward(input, &logits_, /*train=*/true);
  double loss =
      SoftmaxCrossEntropy::ForwardBackward(logits_, labels, &grad_logits_);
  net_->Backward(grad_logits_, &grad_input_);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    if (regs_[k] == nullptr) continue;
    regs_[k]->AccumulateGradient(*params_[k].value, iteration_, epoch_, scale,
                                 params_[k].grad);
  }
  sgd_.Step();
  ++iteration_;
  return loss;
}

double Trainer::StepWithSource(GradientSource* source) {
  GMREG_CHECK(source != nullptr);
  double scale = 1.0 / static_cast<double>(opts_.num_train_samples);
  sgd_.ZeroGrad();
  double loss = source->ComputeGradient(iteration_, epoch_);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    if (regs_[k] == nullptr) continue;
    regs_[k]->AccumulateGradient(*params_[k].value, iteration_, epoch_, scale,
                                 params_[k].grad);
  }
  sgd_.Step();
  ++iteration_;
  return loss;
}

std::vector<EpochStats> Trainer::Train(const BatchFn& next_batch,
                                       std::int64_t batches_per_epoch) {
  Tensor input;
  std::vector<int> labels;
  return TrainLoop(
      [&] {
        next_batch(&input, &labels);
        return Step(input, labels);
      },
      batches_per_epoch);
}

std::vector<EpochStats> Trainer::TrainWithSource(
    GradientSource* source, std::int64_t batches_per_epoch) {
  GMREG_CHECK(source != nullptr);
  return TrainLoop([&] { return StepWithSource(source); }, batches_per_epoch);
}

std::vector<EpochStats> Trainer::TrainLoop(
    const std::function<double()>& run_step, std::int64_t batches_per_epoch) {
  GMREG_CHECK_GT(batches_per_epoch, 0);
  std::vector<EpochStats> stats;
  if (start_epoch_ >= opts_.epochs) {
    GMREG_LOG(Warning) << "checkpoint already covers all " << opts_.epochs
                       << " epochs; nothing to train";
    return stats;
  }
  stats.reserve(static_cast<std::size_t>(opts_.epochs - start_epoch_));
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* iterations_counter = registry.counter("trainer.iterations");
  Counter* epochs_counter = registry.counter("trainer.epochs");
  std::unique_ptr<JsonlFileSink> trace;
  if (!opts_.metrics_path.empty()) {
    // A resumed run appends: the crashed run's flushed epoch lines plus
    // ours must form one contiguous trace (what checkpoint_test compares
    // against an uninterrupted run's trace).
    trace = std::make_unique<JsonlFileSink>(opts_.metrics_path,
                                            /*append=*/start_epoch_ > 0);
  }
  const bool checkpointing =
      !opts_.checkpoint_path.empty() && opts_.checkpoint_every > 0;
  FaultInjector& fault = FaultInjector::Global();
  iteration_ = start_iteration_;
  Stopwatch watch;
  for (int epoch = start_epoch_; epoch < opts_.epochs; ++epoch) {
    ScopedSpan epoch_span("trainer.epoch_seconds");
    epoch_ = epoch;
    for (const auto& [at_epoch, factor] : opts_.lr_schedule) {
      if (at_epoch == epoch) {
        sgd_.set_learning_rate(sgd_.learning_rate() * factor);
      }
    }
    double loss_sum = 0.0;
    for (std::int64_t b = 0; b < batches_per_epoch; ++b) {
      loss_sum += run_step();
    }
    iterations_counter->Add(batches_per_epoch);
    epochs_counter->Add(1);
    EpochStats es;
    es.epoch = epoch;
    es.mean_loss = loss_sum / static_cast<double>(batches_per_epoch);
    es.penalty = RegularizationPenalty();
    es.elapsed_seconds = watch.ElapsedSeconds();
    stats.push_back(es);
    EmitEpochRecord(es, trace.get());
    if (opts_.log_every_epochs > 0 &&
        (epoch + 1) % opts_.log_every_epochs == 0) {
      GMREG_LOG(Info) << "epoch " << epoch + 1 << "/" << opts_.epochs
                      << " loss=" << es.mean_loss
                      << " penalty=" << es.penalty
                      << " t=" << es.elapsed_seconds << "s";
    }
    if (checkpointing && (epoch + 1) % opts_.checkpoint_every == 0) {
      Status st = SaveCheckpoint(BuildCheckpoint(epoch + 1, iteration_),
                                 opts_.checkpoint_path);
      if (!st.ok()) {
        // Degrade gracefully: a run that cannot checkpoint is still a run.
        GMREG_LOG(Warning) << "checkpoint at epoch " << epoch + 1
                           << " failed after retries: " << st.ToString();
      }
    }
    // Fault-injection kill point (GMREG_FAULT=crash_after_epoch:N) — after
    // the checkpoint write, exactly where a real crash hurts the most.
    fault.MaybeCrashAfterEpoch(epoch);
  }
  return stats;
}

void Trainer::EmitEpochRecord(const EpochStats& es, MetricsSink* trace) {
  MetricsRecord record("epoch");
  record.AddString("run", opts_.run_label);
  record.AddInt("epoch", es.epoch);
  record.AddInt("epochs_total", opts_.epochs);
  record.AddDouble("mean_loss", es.mean_loss);
  record.AddDouble("penalty", es.penalty);
  record.AddDouble("elapsed_seconds", es.elapsed_seconds);
  record.AddDouble("learning_rate", sgd_.learning_rate());
  for (std::size_t k = 0; k < params_.size(); ++k) {
    if (regs_[k] == nullptr) continue;
    regs_[k]->AppendMetrics("reg." + params_[k].name, &record);
  }
  MetricsRegistry::Global().Emit(record);
  if (trace != nullptr) trace->Write(record);
}

double Trainer::EvaluateAccuracy(const Tensor& inputs,
                                 const std::vector<int>& labels,
                                 std::int64_t eval_batch) {
  GMREG_CHECK_GT(eval_batch, 0);
  std::int64_t n = inputs.dim(0);
  GMREG_CHECK_EQ(static_cast<std::int64_t>(labels.size()), n);
  std::int64_t row_size = inputs.size() / n;
  Tensor chunk;
  Tensor logits;
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < n; start += eval_batch) {
    std::int64_t count = std::min(eval_batch, n - start);
    std::vector<std::int64_t> shape = inputs.shape();
    shape[0] = count;
    if (chunk.shape() != shape) chunk = Tensor(shape);
    std::copy(inputs.data() + start * row_size,
              inputs.data() + (start + count) * row_size, chunk.data());
    net_->Forward(chunk, &logits, /*train=*/false);
    for (std::int64_t i = 0; i < count; ++i) {
      if (ArgMaxRow(logits, i) ==
          labels[static_cast<std::size_t>(start + i)]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double Trainer::RegularizationPenalty() const {
  double scale = 1.0 / static_cast<double>(opts_.num_train_samples);
  double total = 0.0;
  for (std::size_t k = 0; k < params_.size(); ++k) {
    if (regs_[k] == nullptr) continue;
    total += scale * regs_[k]->Penalty(*params_[k].value);
  }
  return total;
}

}  // namespace gmreg
