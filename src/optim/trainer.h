#ifndef GMREG_OPTIM_TRAINER_H_
#define GMREG_OPTIM_TRAINER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/checkpoint.h"
#include "nn/layer.h"
#include "optim/sgd.h"
#include "reg/regularizer.h"
#include "util/arena.h"
#include "util/rng.h"

namespace gmreg {

/// Training hyper-parameters for one run.
struct TrainOptions {
  int epochs = 10;
  std::int64_t batch_size = 32;
  double learning_rate = 0.01;
  double momentum = 0.9;
  /// Pairs (epoch, factor): at the start of `epoch` multiply the lr by
  /// `factor` (step schedule, as in the ResNet recipe).
  std::vector<std::pair<int, double>> lr_schedule;
  /// Number of training samples N — sets the prior scale 1/N (see
  /// Regularizer). Must be set.
  std::int64_t num_train_samples = 0;
  int log_every_epochs = 0;  ///< 0 = silent
  /// Thread budget for the parallel kernels (GEMM, conv im2col, E/M-steps).
  /// 0 keeps the process default (GMREG_NUM_THREADS or hardware); > 0
  /// installs that budget process-wide via SetDefaultNumThreads, 1 forcing
  /// the serial paths. See docs/PARALLELISM.md.
  int num_threads = 0;
  /// When non-empty, Train() writes one "epoch" JSONL record per epoch to
  /// this file (truncated at the start of the run) — the per-run training
  /// trace of docs/OBSERVABILITY.md. Independent of (and in addition to)
  /// any process-wide GMREG_METRICS_FILE sink.
  std::string metrics_path;
  /// Tag stamped into every emitted record as the "run" field, so traces
  /// from several runs sharing one sink stay separable.
  std::string run_label = "train";
  /// When non-empty, Train() snapshots the full training state (weights,
  /// SGD momentum + lr, regularizer state, data RNG, cursors) to this path
  /// every `checkpoint_every` epochs via io/checkpoint.h — write-to-temp +
  /// fsync + atomic rename, previous snapshot rotated to `<path>.prev`. A
  /// failed write logs a warning and training continues (crash safety must
  /// not become a new crash source). See docs/CHECKPOINTING.md.
  std::string checkpoint_path;
  /// Epochs between checkpoints; <= 0 disables checkpointing even when
  /// checkpoint_path is set.
  int checkpoint_every = 1;
};

/// Per-epoch bookkeeping; `elapsed_seconds` is cumulative wall-clock since
/// training started, which is exactly what Figs. 5 and 7 plot.
struct EpochStats {
  int epoch = 0;
  double mean_loss = 0.0;
  /// Total -log prior over all regularized parameters (scaled by 1/N) at
  /// the end of the epoch; 0 when nothing is attached.
  double penalty = 0.0;
  double elapsed_seconds = 0.0;
};

/// Pluggable producer of the data-loss gradient for one SGD step. The
/// default Trainer path (Step/Train) computes it in process via
/// forward/backward on a caller-supplied batch; a GradientSource lets the
/// gradient come from somewhere else — the distributed coordinator
/// (src/dist) farms per-rank sub-batches out to workers and folds their
/// gradients in fixed rank order. Everything around the gradient (the
/// regularizer E/M interleave, the SGD update, tracing, checkpointing)
/// stays in the Trainer, so both paths share one bit-identical loop.
class GradientSource {
 public:
  virtual ~GradientSource() = default;

  /// Called with every parameter's grad already zeroed; fills the grads
  /// with the data-loss gradient for global step `iteration` (0-based, the
  /// trainer's iteration counter) and returns the batch loss. `epoch` is
  /// the 0-based epoch the step belongs to.
  virtual double ComputeGradient(std::int64_t iteration, int epoch) = 0;
};

/// Drives the paper's interleaved update loop (Algorithms 1 and 2): per
/// iteration it computes `gll` via forward/backward, lets each attached
/// Regularizer add its `greg` (adaptive ones also run their E/M steps on
/// their own lazy schedule), and takes an SGD step.
class Trainer {
 public:
  /// `net` is not owned. Parameters are collected once at construction.
  Trainer(Layer* net, const TrainOptions& opts);

  /// Attaches a regularizer (not owned) to the parameter named
  /// `param_name`; aborts if no such parameter exists.
  void AttachRegularizer(const std::string& param_name, Regularizer* reg);

  /// Attaches `factory(param)` to every parameter with is_weight == true.
  /// The trainer takes ownership of the returned regularizers.
  void AttachToAllWeights(
      const std::function<std::unique_ptr<Regularizer>(const ParamRef&)>&
          factory);

  /// Fills `input` (resizing as needed) and `labels` with one mini-batch.
  using BatchFn = std::function<void(Tensor* input, std::vector<int>* labels)>;

  /// Registers the data-stream generator (not owned) to capture in
  /// checkpoints. Without it a resumed run restores weights/optimizer/
  /// regularizer state but replays the batch stream from wherever the
  /// caller's generator happens to be — registering it is what makes
  /// resume reproduce the uninterrupted loss trajectory bit-exactly.
  void SetCheckpointRng(Rng* rng) { checkpoint_rng_ = rng; }

  /// Restores the latest valid checkpoint from opts.checkpoint_path
  /// (falling back to the rotated `.prev` snapshot if the primary is
  /// corrupt — see LoadLatestValidCheckpoint). Must be called after all
  /// regularizers are attached and before Train(); the subsequent Train()
  /// then continues from the checkpoint's epoch cursor. Returns NotFound
  /// when no checkpoint exists (callers treat that as a cold start),
  /// FailedPrecondition when the checkpoint does not match the current
  /// network/regularizer topology.
  Status Resume();

  /// Runs one SGD step on `input`/`labels` — zero grads, forward, loss
  /// backward, regularizer gradients, optimizer update — and returns the
  /// batch loss. This is the unit Train() iterates; it is public so callers
  /// (and the `alloc` test label) can drive single steps.
  ///
  /// Plan-once execution (docs/MEMORY.md): the first batch of a new input
  /// shape sizes every intermediate under an arena planning scope
  /// (gm.arena.plan_rebuilds); subsequent same-shape batches reuse those
  /// buffers and perform zero heap allocations. Outputs are bitwise
  /// identical either way — the arena only changes where buffers live.
  /// Iteration/epoch counters for the regularizer schedules advance
  /// internally (Train() sets the epoch; standalone use stays at epoch 0).
  double Step(const Tensor& input, const std::vector<int>& labels);

  /// Step() with the data-loss gradient supplied by `source` instead of an
  /// in-process forward/backward: zero grads, source->ComputeGradient,
  /// regularizer gradients, optimizer update. Returns the batch loss.
  double StepWithSource(GradientSource* source);

  /// Runs epochs [start, opts.epochs) of `batches_per_epoch` iterations
  /// each, where start is 0 for a cold start or the restored epoch cursor
  /// after Resume(). Returns stats for the epochs actually run.
  std::vector<EpochStats> Train(const BatchFn& next_batch,
                                std::int64_t batches_per_epoch);

  /// Train() with every step's data-loss gradient supplied by `source`.
  /// Shares the exact epoch loop with Train() — lr schedule, tracing,
  /// checkpointing, fault kill points — so a source that reproduces the
  /// in-process gradient bitwise reproduces the whole run bitwise
  /// (docs/DISTRIBUTED.md).
  std::vector<EpochStats> TrainWithSource(GradientSource* source,
                                          std::int64_t batches_per_epoch);

  /// Mean accuracy of the network (eval mode) on `inputs`/`labels`,
  /// processed in chunks of `eval_batch` rows along dim 0.
  double EvaluateAccuracy(const Tensor& inputs, const std::vector<int>& labels,
                          std::int64_t eval_batch);

  const std::vector<ParamRef>& params() const { return params_; }

  /// Total -log prior over all regularized parameters (scaled by 1/N), for
  /// loss reporting.
  double RegularizationPenalty() const;

 private:
  /// Builds the per-epoch telemetry record (loss, penalty, per-regularizer
  /// learned state via Regularizer::AppendMetrics) and emits it to the
  /// global registry sinks plus the optional per-run `trace` sink.
  void EmitEpochRecord(const EpochStats& es, MetricsSink* trace);

  /// Snapshots the current training state (`completed_epochs` epochs and
  /// `iteration` SGD steps done) into a TrainingCheckpoint.
  TrainingCheckpoint BuildCheckpoint(int completed_epochs,
                                     std::int64_t iteration) const;

  /// The epoch loop shared by Train and TrainWithSource: `run_step` runs
  /// one SGD step (fetching its own batch) and returns the batch loss.
  std::vector<EpochStats> TrainLoop(const std::function<double()>& run_step,
                                    std::int64_t batches_per_epoch);

  Layer* net_;
  TrainOptions opts_;
  std::vector<ParamRef> params_;
  Sgd sgd_;
  // Regularizer per parameter index (nullptr = none).
  std::vector<Regularizer*> regs_;
  std::vector<std::unique_ptr<Regularizer>> owned_regs_;
  Rng* checkpoint_rng_ = nullptr;  // not owned
  int start_epoch_ = 0;            // set by Resume()
  std::int64_t start_iteration_ = 0;
  // Step() state: persistent forward/backward buffers (sized once per input
  // shape) and the shape key of the plan that sized them.
  Tensor logits_;
  Tensor grad_logits_;
  Tensor grad_input_;
  ShapePlan step_plan_;
  std::int64_t iteration_ = 0;
  int epoch_ = 0;
};

}  // namespace gmreg

#endif  // GMREG_OPTIM_TRAINER_H_
