#include "reg/dynamic_prior.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/parallel.h"

namespace gmreg {
namespace {

constexpr std::int64_t kChunkGrain = 4096;

}  // namespace

const char* DynPriorScheduleName(DynPriorSchedule schedule) {
  switch (schedule) {
    case DynPriorSchedule::kExp:
      return "exp";
    case DynPriorSchedule::kInv:
      return "inv";
    case DynPriorSchedule::kCosine:
      break;
  }
  return "cos";
}

DynamicPriorReg::DynamicPriorReg(const DynPriorOptions& options)
    : options_(options) {
  GMREG_CHECK_GE(options.beta, 0.0);
  GMREG_CHECK_GT(options.decay, 0.0);
  GMREG_CHECK_LE(options.decay, 1.0);
  GMREG_CHECK_GE(options.rate, 0.0);
  GMREG_CHECK_GE(options.floor, 0.0);
  GMREG_CHECK_LE(options.floor, options.beta);
  GMREG_CHECK_GE(options.period, 1);
  strength_ = StrengthAt(0);
}

double DynamicPriorReg::StrengthAt(std::int64_t epoch) const {
  double e = static_cast<double>(std::max<std::int64_t>(epoch, 0));
  double s = options_.beta;
  switch (options_.schedule) {
    case DynPriorSchedule::kExp:
      s = options_.beta * std::pow(options_.decay, e);
      break;
    case DynPriorSchedule::kInv:
      s = options_.beta / (1.0 + options_.rate * e);
      break;
    case DynPriorSchedule::kCosine: {
      double frac =
          std::min(e / static_cast<double>(options_.period), 1.0);
      s = options_.floor + (options_.beta - options_.floor) * 0.5 *
                               (1.0 + std::cos(frac * 3.14159265358979323846));
      break;
    }
  }
  return std::max(s, options_.floor);
}

void DynamicPriorReg::AccumulateGradient(const Tensor& w,
                                         std::int64_t iteration,
                                         std::int64_t epoch, double scale,
                                         Tensor* grad) {
  (void)iteration;
  GMREG_CHECK_EQ(w.size(), grad->size());
  if (epoch != last_epoch_) {
    last_epoch_ = epoch;
    strength_ = StrengthAt(epoch);
    ++schedule_steps_;
  }
  auto s = static_cast<float>(scale * strength_);
  if (s == 0.0f) return;
  const float* wp = w.data();
  float* gp = grad->data();
  ParallelFor(0, w.size(), kChunkGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t m = b; m < e; ++m) gp[m] += s * wp[m];
  });
}

double DynamicPriorReg::Penalty(const Tensor& w) const {
  const float* wp = w.data();
  double sq = ParallelChunkedSum(
      0, w.size(), kChunkGrain, [&](std::int64_t b, std::int64_t e) {
        double acc = 0.0;
        for (std::int64_t m = b; m < e; ++m) {
          double x = static_cast<double>(wp[m]);
          acc += x * x;
        }
        return acc;
      });
  return 0.5 * strength_ * sq;
}

void DynamicPriorReg::AppendMetrics(const std::string& prefix,
                                    MetricsRecord* record) const {
  record->AddString(prefix + ".schedule",
                    DynPriorScheduleName(options_.schedule));
  record->AddDouble(prefix + ".strength", strength_);
  record->AddInt(prefix + ".epoch", last_epoch_);
  record->AddInt(prefix + ".schedule_steps", schedule_steps_);
}

bool DynamicPriorReg::SaveState(std::string* out) const {
  std::ostringstream oss;
  oss.precision(17);
  oss << "dynprior-state v1 " << DynPriorScheduleName(options_.schedule)
      << " " << strength_ << " " << last_epoch_ << " " << schedule_steps_;
  *out = oss.str();
  return true;
}

Status DynamicPriorReg::LoadState(const std::string& text) {
  std::istringstream iss(text);
  std::string magic, version, schedule;
  double strength = 0.0;
  std::int64_t epoch = 0, steps = 0;
  if (!(iss >> magic >> version) || magic != "dynprior-state") {
    return Status::InvalidArgument("not a 'dynprior-state' record");
  }
  if (version != "v1") {
    return Status::InvalidArgument("unsupported dynprior-state version '" +
                                   version + "'");
  }
  if (!(iss >> schedule >> strength >> epoch >> steps)) {
    return Status::InvalidArgument("truncated dynprior-state record");
  }
  if (schedule != DynPriorScheduleName(options_.schedule)) {
    return Status::FailedPrecondition(
        "dynprior-state schedule '" + schedule +
        "' does not match configured '" +
        DynPriorScheduleName(options_.schedule) + "'");
  }
  if (!std::isfinite(strength) || strength < 0.0) {
    return Status::OutOfRange("dynprior-state strength must be finite >= 0");
  }
  if (epoch < 0 || steps < 0) {
    return Status::InvalidArgument("bad counters in dynprior-state");
  }
  std::string extra;
  if (iss >> extra) {
    return Status::InvalidArgument("trailing garbage in dynprior-state: '" +
                                   extra + "'");
  }
  strength_ = strength;
  last_epoch_ = epoch;
  schedule_steps_ = steps;
  return Status::Ok();
}

}  // namespace gmreg
