#ifndef GMREG_REG_DYNAMIC_PRIOR_H_
#define GMREG_REG_DYNAMIC_PRIOR_H_

#include <cstdint>
#include <string>

#include "reg/regularizer.h"

namespace gmreg {

/// How the prior strength decays with training progress (Kori & Sharma,
/// "Dynamic Regularizer with an Informative Prior": the prior should
/// dominate early — when the model knows little — and hand over to the data
/// as training progresses). All schedules are non-increasing in the epoch,
/// which is exactly the adaptive-update monotonicity contract of
/// tests/regularizer_property_suite.cc.
enum class DynPriorSchedule {
  kExp,     ///< strength(e) = max(floor, beta * decay^e)
  kInv,     ///< strength(e) = max(floor, beta / (1 + rate * e))
  kCosine,  ///< cosine anneal from beta to floor over `period` epochs
};

const char* DynPriorScheduleName(DynPriorSchedule schedule);

struct DynPriorOptions {
  DynPriorSchedule schedule = DynPriorSchedule::kExp;
  double beta = 1.0;    ///< initial (epoch-0) strength, >= floor
  double decay = 0.9;   ///< per-epoch factor in (0, 1] (kExp)
  double rate = 1.0;    ///< hyperbolic decay rate >= 0 (kInv)
  double floor = 0.0;   ///< strength never decays below this
  int period = 10;      ///< epochs from beta to floor (kCosine), >= 1
};

/// Dynamic informative prior: a zero-mean Gaussian prior whose precision is
/// annealed as a pure function of the epoch counter,
///   penalty(w) = 0.5 * strength(epoch) * sum_m w_m^2.
/// The "adaptive update" is the schedule step itself — strength(epoch) is
/// recomputed whenever AccumulateGradient observes a new epoch. Because the
/// strength is a closed-form function of the epoch (no data reductions), the
/// update is trivially bitwise identical at every thread budget; the
/// per-element gradient writes are disjoint pure functions, so the whole
/// regularizer satisfies the cross-budget determinism contract.
class DynamicPriorReg : public Regularizer {
 public:
  explicit DynamicPriorReg(const DynPriorOptions& options);

  void AccumulateGradient(const Tensor& w, std::int64_t iteration,
                          std::int64_t epoch, double scale,
                          Tensor* grad) override;

  /// 0.5 * strength * sum w^2 under the most recently observed epoch's
  /// strength (epoch 0 before any AccumulateGradient call). The Gaussian
  /// log-normalizer is dropped: the schedule is configuration, not a
  /// likelihood-maximizing learned parameter, so monotonicity holds on the
  /// quadratic term alone.
  double Penalty(const Tensor& w) const override;

  std::string Name() const override { return "Dynamic Prior Reg"; }

  /// `<prefix>.strength`, `<prefix>.epoch`, `<prefix>.schedule_steps`.
  void AppendMetrics(const std::string& prefix,
                     MetricsRecord* record) const override;

  /// One `dynprior-state v1` line: schedule tag, current strength, last
  /// observed epoch and the schedule-step counter.
  bool SaveState(std::string* out) const override;
  Status LoadState(const std::string& text) override;

  // Introspection ----------------------------------------------------------
  const DynPriorOptions& options() const { return options_; }
  double strength() const { return strength_; }
  std::int64_t last_epoch() const { return last_epoch_; }

  /// The schedule evaluated at `epoch` — exposed so tests and benches can
  /// check the anneal curve without stepping a trainer.
  double StrengthAt(std::int64_t epoch) const;

 private:
  DynPriorOptions options_;
  double strength_;
  std::int64_t last_epoch_ = 0;
  std::int64_t schedule_steps_ = 0;
};

}  // namespace gmreg

#endif  // GMREG_REG_DYNAMIC_PRIOR_H_
