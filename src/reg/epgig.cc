#include "reg/epgig.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

// Elements per chunk of the deterministic reductions — the same order of
// magnitude as core/em.h's kEStepGrain (reg/ cannot include core/), so a
// chunk is well above the pool dispatch cost.
constexpr std::int64_t kChunkGrain = 4096;

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

const char* EpGigModeName(EpGigMode mode) {
  return mode == EpGigMode::kLaplace ? "laplace" : "student";
}

EpGigReg::EpGigReg(std::int64_t num_dims, const EpGigOptions& options)
    : num_dims_(num_dims), options_(options) {
  GMREG_CHECK_GT(num_dims, 0);
  GMREG_CHECK_GT(options.nu, 0.0);
  GMREG_CHECK_GT(options.hyper_min, 0.0);
  GMREG_CHECK_GT(options.hyper_max, options.hyper_min);
  GMREG_CHECK_GE(options.interval, 1);
  GMREG_CHECK_GE(options.warmup_epochs, 0);
  double init =
      options.mode == EpGigMode::kLaplace ? options.alpha : options.tau;
  GMREG_CHECK_GT(init, 0.0);
  hyper_ = Clamp(init, options.hyper_min, options.hyper_max);
}

void EpGigReg::UpdateHyper(const Tensor& w) {
  GMREG_CHECK_EQ(w.size(), num_dims_);
  const float* wp = w.data();
  double suffstat = 0.0;
  if (options_.mode == EpGigMode::kLaplace) {
    // Sufficient statistic of the exponential mixing: S1 = sum |w_m|.
    suffstat = ParallelChunkedSum(
        0, num_dims_, kChunkGrain, [&](std::int64_t b, std::int64_t e) {
          double acc = 0.0;
          for (std::int64_t m = b; m < e; ++m) {
            acc += std::fabs(static_cast<double>(wp[m]));
          }
          return acc;
        });
    last_suffstat_mean_ = suffstat / static_cast<double>(num_dims_);
    // alpha* = M / S1 minimizes alpha*S1 - M*log(alpha/2) exactly, so the
    // clamped jump from the current alpha never increases the penalty
    // (convex in alpha, and the clamp cannot overshoot the minimizer).
    double target = suffstat > 0.0
                        ? static_cast<double>(num_dims_) / suffstat
                        : options_.hyper_max;
    hyper_ = Clamp(target, options_.hyper_min, options_.hyper_max);
  } else {
    // E-step: s_m = E[lambda_m | w_m] under the Gamma(nu/2, nu/(2 tau))
    // mixing evaluated at the current tau; M-step: tau <- mean(s).
    double nu = options_.nu;
    double tau = hyper_;
    suffstat = ParallelChunkedSum(
        0, num_dims_, kChunkGrain, [&](std::int64_t b, std::int64_t e) {
          double acc = 0.0;
          for (std::int64_t m = b; m < e; ++m) {
            double x = static_cast<double>(wp[m]);
            acc += (nu + 1.0) * tau / (nu + tau * x * x);
          }
          return acc;
        });
    last_suffstat_mean_ = suffstat / static_cast<double>(num_dims_);
    hyper_ = Clamp(last_suffstat_mean_, options_.hyper_min,
                   options_.hyper_max);
  }
  ++mstep_count_;
}

void EpGigReg::AccumulateGradient(const Tensor& w, std::int64_t iteration,
                                  std::int64_t epoch, double scale,
                                  Tensor* grad) {
  GMREG_CHECK_EQ(w.size(), num_dims_);
  GMREG_CHECK_EQ(grad->size(), num_dims_);
  const float* wp = w.data();
  float* gp = grad->data();
  // The gradient of the marginal -log p(w) under the *current* hyper: this
  // mirrors the GM prior's E-before-M ordering, so Penalty() right after
  // this call reports the post-update prior.
  if (options_.mode == EpGigMode::kLaplace) {
    auto s = static_cast<float>(scale * hyper_);
    ParallelFor(0, num_dims_, kChunkGrain, [&](std::int64_t b,
                                               std::int64_t e) {
      for (std::int64_t m = b; m < e; ++m) {
        if (wp[m] > 0.0f) {
          gp[m] += s;
        } else if (wp[m] < 0.0f) {
          gp[m] -= s;
        }
      }
    });
  } else {
    double nu = options_.nu;
    double tau = hyper_;
    ParallelFor(0, num_dims_, kChunkGrain, [&](std::int64_t b,
                                               std::int64_t e) {
      for (std::int64_t m = b; m < e; ++m) {
        double x = static_cast<double>(wp[m]);
        // d/dw of ((nu+1)/2) log(1 + tau w^2 / nu): a per-element pure
        // function, so disjoint writes are bitwise budget-independent.
        gp[m] += static_cast<float>(scale * (nu + 1.0) * tau * x /
                                    (nu + tau * x * x));
      }
    });
  }
  if (epoch < options_.warmup_epochs || iteration % options_.interval == 0) {
    UpdateHyper(w);
  }
}

double EpGigReg::Penalty(const Tensor& w) const {
  GMREG_CHECK_EQ(w.size(), num_dims_);
  const float* wp = w.data();
  auto md = static_cast<double>(num_dims_);
  if (options_.mode == EpGigMode::kLaplace) {
    double s1 = ParallelChunkedSum(
        0, num_dims_, kChunkGrain, [&](std::int64_t b, std::int64_t e) {
          double acc = 0.0;
          for (std::int64_t m = b; m < e; ++m) {
            acc += std::fabs(static_cast<double>(wp[m]));
          }
          return acc;
        });
    return hyper_ * s1 - md * std::log(hyper_ / 2.0);
  }
  double nu = options_.nu;
  double tau = hyper_;
  double acc = ParallelChunkedSum(
      0, num_dims_, kChunkGrain, [&](std::int64_t b, std::int64_t e) {
        double part = 0.0;
        for (std::int64_t m = b; m < e; ++m) {
          double x = static_cast<double>(wp[m]);
          part += std::log1p(tau * x * x / nu);
        }
        return part;
      });
  return 0.5 * (nu + 1.0) * acc - 0.5 * md * std::log(tau);
}

void EpGigReg::AppendMetrics(const std::string& prefix,
                             MetricsRecord* record) const {
  record->AddString(prefix + ".mode", EpGigModeName(options_.mode));
  record->AddDouble(prefix + ".hyper", hyper_);
  record->AddInt(prefix + ".msteps", mstep_count_);
  record->AddDouble(prefix + ".suffstat_mean", last_suffstat_mean_);
}

bool EpGigReg::SaveState(std::string* out) const {
  std::ostringstream oss;
  oss.precision(17);
  oss << "epgig-state v1 " << EpGigModeName(options_.mode) << " " << hyper_
      << " " << mstep_count_ << " " << last_suffstat_mean_;
  *out = oss.str();
  return true;
}

Status EpGigReg::LoadState(const std::string& text) {
  std::istringstream iss(text);
  std::string magic, version, mode;
  double hyper = 0.0, suffstat = 0.0;
  std::int64_t msteps = 0;
  if (!(iss >> magic >> version) || magic != "epgig-state") {
    return Status::InvalidArgument("not an 'epgig-state' record");
  }
  if (version != "v1") {
    return Status::InvalidArgument("unsupported epgig-state version '" +
                                   version + "'");
  }
  if (!(iss >> mode >> hyper >> msteps >> suffstat)) {
    return Status::InvalidArgument("truncated epgig-state record");
  }
  if (mode != EpGigModeName(options_.mode)) {
    return Status::FailedPrecondition(
        StrFormat("epgig-state mode '%s' does not match configured '%s'",
                  mode.c_str(), EpGigModeName(options_.mode)));
  }
  if (!std::isfinite(hyper) || hyper < options_.hyper_min ||
      hyper > options_.hyper_max) {
    return Status::OutOfRange("epgig-state hyper outside configured clamp");
  }
  if (msteps < 0 || !std::isfinite(suffstat)) {
    return Status::InvalidArgument("bad counters in epgig-state");
  }
  std::string extra;
  if (iss >> extra) {
    return Status::InvalidArgument("trailing garbage in epgig-state: '" +
                                   extra + "'");
  }
  hyper_ = hyper;
  mstep_count_ = msteps;
  last_suffstat_mean_ = suffstat;
  return Status::Ok();
}

}  // namespace gmreg
