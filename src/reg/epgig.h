#ifndef GMREG_REG_EPGIG_H_
#define GMREG_REG_EPGIG_H_

#include <cstdint>
#include <string>

#include "reg/regularizer.h"

namespace gmreg {

/// Which member of the EP-GIG family (Zhang, Wang, Liu & Jordan, "EP-GIG
/// Priors and Applications in Bayesian Sparse Learning") the regularizer
/// realizes. Both are Gaussian scale mixtures w | eta ~ N(0, eta) with a
/// generalized-inverse-Gaussian mixing density on the latent variance eta;
/// the two named special cases have closed-form E- and M-steps:
///   kLaplace  exponential mixing  -> marginal p(w) = (alpha/2) e^{-alpha|w|}
///   kStudent  inverse-gamma mixing -> marginal Student-t with nu dof and
///             precision scale tau (E[lambda] = tau under the Gamma prior)
enum class EpGigMode { kLaplace, kStudent };

const char* EpGigModeName(EpGigMode mode);

/// Knobs of the EP-GIG regularizer with library defaults. The rate / scale
/// hyper-parameter is *learned* during training (that is the adaptive part);
/// `alpha` / `tau` only seed it.
struct EpGigOptions {
  EpGigMode mode = EpGigMode::kLaplace;
  double alpha = 1.0;  ///< initial Laplace rate (mode == kLaplace)
  double nu = 4.0;     ///< Student-t degrees of freedom, fixed (kStudent)
  double tau = 1.0;    ///< initial Student-t precision scale (kStudent)
  /// M-step (hyper-parameter refresh) every `interval` iterations outside
  /// the first `warmup_epochs` — the same lazy-update idea as the GM prior's
  /// Ig interval (docs/REGULARIZERS.md).
  std::int64_t interval = 1;
  int warmup_epochs = 0;
  /// Clamp for the learned rate/scale so a degenerate weight vector (all
  /// zeros) cannot push the hyper-parameter to infinity.
  double hyper_min = 1e-8;
  double hyper_max = 1e12;
};

/// Adaptive sparse prior from the EP-GIG family behind the `Regularizer`
/// interface. Each AccumulateGradient call adds the exact gradient of the
/// marginal -log p(w) under the *current* hyper-parameter, then (per the
/// lazy schedule) runs one EM-style hyper-parameter update on the observed
/// weights:
///   kLaplace:  alpha <- M / sum_m |w_m|       (collapsed-EM fixed point —
///              the exact ML rate, so the penalty never increases)
///   kStudent:  s_m = E[lambda_m | w_m] = (nu+1) tau / (nu + tau w_m^2),
///              tau <- (1/M) sum_m s_m          (EM M-step; monotone by the
///              standard EM inequality on the marginal Student-t likelihood)
///
/// Every reduction uses ParallelChunkedSum (util/parallel.h), so the learned
/// hyper-parameter trajectory is bitwise identical at every thread budget —
/// the determinism contract tests/regularizer_property_suite.cc enforces for
/// the whole prior family.
class EpGigReg : public Regularizer {
 public:
  EpGigReg(std::int64_t num_dims, const EpGigOptions& options);

  void AccumulateGradient(const Tensor& w, std::int64_t iteration,
                          std::int64_t epoch, double scale,
                          Tensor* grad) override;

  /// Marginal -log p(w) including the hyper-parameter-dependent
  /// normalization (constants in the fixed shape nu are dropped), so the
  /// EM monotonicity invariant is observable through this value.
  double Penalty(const Tensor& w) const override;

  std::string Name() const override { return "EP-GIG Reg"; }

  /// `<prefix>.mode`, `<prefix>.hyper` (the learned alpha or tau),
  /// `<prefix>.msteps`, and `<prefix>.suffstat_mean` (last M-step's mean
  /// sufficient statistic).
  void AppendMetrics(const std::string& prefix,
                     MetricsRecord* record) const override;

  /// One `epgig-state v1` line: mode tag, learned hyper-parameter, M-step
  /// counter and the last mean sufficient statistic. The mode tag makes a
  /// checkpoint written by a Laplace prior unloadable into a Student-t one.
  bool SaveState(std::string* out) const override;
  Status LoadState(const std::string& text) override;

  // Introspection ----------------------------------------------------------
  const EpGigOptions& options() const { return options_; }
  /// The learned rate (kLaplace) or precision scale (kStudent).
  double hyper() const { return hyper_; }
  std::int64_t mstep_count() const { return mstep_count_; }
  std::int64_t num_dims() const { return num_dims_; }

  /// Runs one hyper-parameter update on `w` unconditionally (the lazy
  /// schedule normally gates this from AccumulateGradient).
  void UpdateHyper(const Tensor& w);

 private:
  std::int64_t num_dims_;
  EpGigOptions options_;
  double hyper_;  ///< learned alpha (kLaplace) or tau (kStudent)
  std::int64_t mstep_count_ = 0;
  double last_suffstat_mean_ = 0.0;
};

}  // namespace gmreg

#endif  // GMREG_REG_EPGIG_H_
