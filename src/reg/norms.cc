#include "reg/norms.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace gmreg {

void NoReg::AccumulateGradient(const Tensor& w, std::int64_t iteration,
                               std::int64_t epoch, double scale,
                               Tensor* grad) {
  (void)w;
  (void)iteration;
  (void)epoch;
  (void)scale;
  (void)grad;
}

double NoReg::Penalty(const Tensor& w) const {
  (void)w;
  return 0.0;
}

L1Reg::L1Reg(double beta) : beta_(beta) { GMREG_CHECK_GE(beta, 0.0); }

void L1Reg::AccumulateGradient(const Tensor& w, std::int64_t iteration,
                               std::int64_t epoch, double scale,
                               Tensor* grad) {
  (void)iteration;
  (void)epoch;
  GMREG_CHECK_EQ(w.size(), grad->size());
  auto s = static_cast<float>(scale * beta_);
  const float* wp = w.data();
  float* gp = grad->data();
  for (std::int64_t i = 0; i < w.size(); ++i) {
    if (wp[i] > 0.0f) {
      gp[i] += s;
    } else if (wp[i] < 0.0f) {
      gp[i] -= s;
    }
  }
}

double L1Reg::Penalty(const Tensor& w) const { return beta_ * SumAbs(w); }

L2Reg::L2Reg(double beta) : beta_(beta) { GMREG_CHECK_GE(beta, 0.0); }

void L2Reg::AccumulateGradient(const Tensor& w, std::int64_t iteration,
                               std::int64_t epoch, double scale,
                               Tensor* grad) {
  (void)iteration;
  (void)epoch;
  GMREG_CHECK_EQ(w.size(), grad->size());
  Axpy(static_cast<float>(scale * beta_), w, grad);
}

double L2Reg::Penalty(const Tensor& w) const {
  return 0.5 * beta_ * SumSquares(w);
}

ElasticNetReg::ElasticNetReg(double beta, double l1_ratio)
    : beta_(beta), l1_ratio_(l1_ratio) {
  GMREG_CHECK_GE(beta, 0.0);
  GMREG_CHECK_GE(l1_ratio, 0.0);
  GMREG_CHECK_LE(l1_ratio, 1.0);
}

void ElasticNetReg::AccumulateGradient(const Tensor& w,
                                       std::int64_t iteration,
                                       std::int64_t epoch, double scale,
                                       Tensor* grad) {
  (void)iteration;
  (void)epoch;
  GMREG_CHECK_EQ(w.size(), grad->size());
  auto s1 = static_cast<float>(scale * beta_ * l1_ratio_);
  auto s2 = static_cast<float>(scale * beta_ * (1.0 - l1_ratio_));
  const float* wp = w.data();
  float* gp = grad->data();
  for (std::int64_t i = 0; i < w.size(); ++i) {
    float g = s2 * wp[i];
    if (wp[i] > 0.0f) {
      g += s1;
    } else if (wp[i] < 0.0f) {
      g -= s1;
    }
    gp[i] += g;
  }
}

double ElasticNetReg::Penalty(const Tensor& w) const {
  return beta_ * (l1_ratio_ * SumAbs(w) +
                  0.5 * (1.0 - l1_ratio_) * SumSquares(w));
}

HuberReg::HuberReg(double beta, double mu) : beta_(beta), mu_(mu) {
  GMREG_CHECK_GE(beta, 0.0);
  GMREG_CHECK_GT(mu, 0.0);
}

void HuberReg::AccumulateGradient(const Tensor& w, std::int64_t iteration,
                                  std::int64_t epoch, double scale,
                                  Tensor* grad) {
  (void)iteration;
  (void)epoch;
  GMREG_CHECK_EQ(w.size(), grad->size());
  auto s = static_cast<float>(scale * beta_);
  auto mu = static_cast<float>(mu_);
  const float* wp = w.data();
  float* gp = grad->data();
  for (std::int64_t i = 0; i < w.size(); ++i) {
    float v = wp[i];
    if (v > mu) {
      gp[i] += s;
    } else if (v < -mu) {
      gp[i] -= s;
    } else {
      gp[i] += s * v / mu;
    }
  }
}

double HuberReg::Penalty(const Tensor& w) const {
  double total = 0.0;
  const float* wp = w.data();
  for (std::int64_t i = 0; i < w.size(); ++i) {
    double v = std::fabs(wp[i]);
    total += v <= mu_ ? v * v / (2.0 * mu_) : v - mu_ / 2.0;
  }
  return beta_ * total;
}

}  // namespace gmreg
