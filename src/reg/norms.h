#ifndef GMREG_REG_NORMS_H_
#define GMREG_REG_NORMS_H_

#include <string>

#include "reg/regularizer.h"

namespace gmreg {

/// No regularization; the "no regularization" row of Table VI.
class NoReg : public Regularizer {
 public:
  void AccumulateGradient(const Tensor& w, std::int64_t iteration,
                          std::int64_t epoch, double scale,
                          Tensor* grad) override;
  double Penalty(const Tensor& w) const override;
  std::string Name() const override { return "No Reg"; }
};

/// L1-norm (Lasso): penalty beta * sum |w_m| — Laplacian prior with rate
/// beta. Uses the subgradient sign(w) (0 at 0).
class L1Reg : public Regularizer {
 public:
  explicit L1Reg(double beta);

  void AccumulateGradient(const Tensor& w, std::int64_t iteration,
                          std::int64_t epoch, double scale,
                          Tensor* grad) override;
  double Penalty(const Tensor& w) const override;
  std::string Name() const override { return "L1 Reg"; }
  double beta() const { return beta_; }

 private:
  double beta_;
};

/// L2-norm (weight decay / ridge): penalty (beta/2) * sum w_m^2 — Gaussian
/// prior with precision beta. The GM regularization with K = 1 reduces to
/// this (Sec. VI-A).
class L2Reg : public Regularizer {
 public:
  explicit L2Reg(double beta);

  void AccumulateGradient(const Tensor& w, std::int64_t iteration,
                          std::int64_t epoch, double scale,
                          Tensor* grad) override;
  double Penalty(const Tensor& w) const override;
  std::string Name() const override { return "L2 Reg"; }
  double beta() const { return beta_; }

 private:
  double beta_;
};

/// Elastic-net (Zou & Hastie 2005): beta * (l1_ratio * |w| +
/// (1 - l1_ratio)/2 * w^2); l1_ratio in [0, 1] trades off L1 vs L2.
class ElasticNetReg : public Regularizer {
 public:
  ElasticNetReg(double beta, double l1_ratio);

  void AccumulateGradient(const Tensor& w, std::int64_t iteration,
                          std::int64_t epoch, double scale,
                          Tensor* grad) override;
  double Penalty(const Tensor& w) const override;
  std::string Name() const override { return "Elastic-net Reg"; }
  double beta() const { return beta_; }
  double l1_ratio() const { return l1_ratio_; }

 private:
  double beta_;
  double l1_ratio_;
};

/// Huber-norm regularization (Zadorozhnyi et al. 2016): quadratic inside
/// |w| <= mu (L2-like, differentiable at 0), linear outside (L1-like):
///   h(w) = w^2 / (2 mu)        for |w| <= mu
///        = |w| - mu / 2        otherwise
/// penalty = beta * sum h(w_m).
class HuberReg : public Regularizer {
 public:
  HuberReg(double beta, double mu);

  void AccumulateGradient(const Tensor& w, std::int64_t iteration,
                          std::int64_t epoch, double scale,
                          Tensor* grad) override;
  double Penalty(const Tensor& w) const override;
  std::string Name() const override { return "Huber Reg"; }
  double beta() const { return beta_; }
  double mu() const { return mu_; }

 private:
  double beta_;
  double mu_;
};

}  // namespace gmreg

#endif  // GMREG_REG_NORMS_H_
