#include "reg/regularizer.h"

namespace gmreg {

// Regularizer is an interface; the virtual destructor's key function lives
// here so the vtable is emitted once.

Status Regularizer::LoadState(const std::string& text) {
  if (text.empty()) return Status::Ok();
  std::string msg = "'";
  msg.append(Name());
  msg.append("' is stateless and cannot restore checkpoint state");
  return Status::InvalidArgument(std::move(msg));
}

}  // namespace gmreg
