#include "reg/regularizer.h"

namespace gmreg {

// Regularizer is an interface; the virtual destructor's key function lives
// here so the vtable is emitted once.

}  // namespace gmreg
