#ifndef GMREG_REG_REGULARIZER_H_
#define GMREG_REG_REGULARIZER_H_

#include <cstdint>
#include <string>

#include "tensor/tensor.h"
#include "util/metrics.h"
#include "util/status.h"

namespace gmreg {

/// Interface for regularization terms attached to one parameter tensor.
///
/// Scaling convention: the trainer optimizes the MEAN data loss
/// (1/N)·(-log p(D|w)), i.e. (1/N)·G in the paper's Eq. (8). The prior term
/// is therefore applied with `scale = 1/N`, which keeps every method an
/// exact MAP estimate regardless of dataset size. Under this convention a
/// Gaussian prior precision λ corresponds to the familiar per-step weight
/// decay λ/N — e.g. the paper's expert-tuned λ = 200 on CIFAR-10
/// (N = 50000) is weight decay 0.004, the classic cuda-convnet value.
class Regularizer {
 public:
  virtual ~Regularizer() = default;

  /// Adds scale * d(-log p(w))/dw — the paper's `greg` — into `grad`.
  /// `iteration` counts SGD steps and `epoch` completed epochs; adaptive
  /// implementations use them for lazy scheduling, baselines ignore them.
  virtual void AccumulateGradient(const Tensor& w, std::int64_t iteration,
                                  std::int64_t epoch, double scale,
                                  Tensor* grad) = 0;

  /// The unscaled penalty -log p(w) (additive constants dropped). Used for
  /// loss reporting and gradient checks.
  virtual double Penalty(const Tensor& w) const = 0;

  /// Display name, e.g. "L2 Reg".
  virtual std::string Name() const = 0;

  /// Appends this regularizer's telemetry as `<prefix>.<field>` entries to
  /// `record` — the hook the Trainer's per-epoch JSONL records call into
  /// (docs/OBSERVABILITY.md). Adaptive implementations report their learned
  /// state (lambda/pi, E/M-step and cache-hit counts); the default appends
  /// nothing. Must be cheap (at most one O(M) pass) and must not mutate the
  /// regularizer.
  virtual void AppendMetrics(const std::string& prefix,
                             MetricsRecord* record) const {
    (void)prefix;
    (void)record;
  }

  /// Serializes the regularizer's *mutable training state* — whatever must
  /// survive a restart for the loss trajectory to continue bit-exactly —
  /// into a single newline-free line for embedding in a training checkpoint
  /// (io/checkpoint.h). Configuration is NOT included: resume reconstructs
  /// the regularizer from config first, then overlays this state. Returns
  /// false when the regularizer is stateless (the default), in which case
  /// nothing is persisted.
  virtual bool SaveState(std::string* out) const {
    out->clear();
    return false;
  }

  /// Restores state produced by SaveState on an identically-configured
  /// instance. The default (stateless) implementation rejects any payload,
  /// so a checkpoint written with an adaptive regularizer cannot silently
  /// resume into a baseline one.
  virtual Status LoadState(const std::string& text);
};

}  // namespace gmreg

#endif  // GMREG_REG_REGULARIZER_H_
