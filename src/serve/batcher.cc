#include "serve/batcher.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace gmreg {

Batcher::Batcher(const BatcherOptions& options, BatchHandler handler)
    : options_(options), handler_(std::move(handler)) {
  GMREG_CHECK_GE(options_.max_batch_size, 1);
  GMREG_CHECK_GE(options_.max_delay_ms, 0);
  GMREG_CHECK_GE(options_.num_workers, 1);
  GMREG_CHECK_GE(options_.max_queue_depth, 1);
  GMREG_CHECK(handler_ != nullptr);
  accepting_ = true;
  MetricsRegistry& registry = MetricsRegistry::Global();
  requests_ = registry.counter("gm.serve.requests");
  batches_ = registry.counter("gm.serve.batches");
  rejected_ = registry.counter("gm.serve.rejected");
  queue_depth_ = registry.gauge("gm.serve.queue_depth");
  batch_size_ = registry.histogram("gm.serve.batch_size");
  latency_ = registry.histogram("gm.serve.request_latency_seconds");
  predict_time_ = registry.histogram("gm.serve.batch_predict_seconds");
}

Batcher::~Batcher() { Shutdown(); }

void Batcher::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ != nullptr || draining_) return;
  // The dispatcher thread plus (num_workers - 1) pool threads together run
  // exactly num_workers WorkerLoop instances (ThreadPool::Run has the
  // calling thread claim tasks alongside the workers). Worker loops count
  // as a parallel region, so the model's own ParallelFor calls fall back to
  // serial — one batch saturates one core instead of oversubscribing.
  pool_ = std::make_unique<ThreadPool>(options_.num_workers - 1);
  dispatcher_ = std::thread([this] {
    pool_->Run(options_.num_workers, [this](int w) { WorkerLoop(w); });
  });
}

void Batcher::Shutdown() {
  std::thread dispatcher;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return;
    accepting_ = false;
    draining_ = true;
    dispatcher = std::move(dispatcher_);
  }
  work_cv_.notify_all();
  if (dispatcher.joinable()) dispatcher.join();
  // Workers have drained everything they could. Anything still queued means
  // Start() was never called — fail those requests instead of leaving their
  // callers blocked forever.
  std::lock_guard<std::mutex> lock(mu_);
  while (!queue_.empty()) {
    Request* req = queue_.front();
    queue_.pop_front();
    req->status = Status::FailedPrecondition("batcher shut down unstarted");
    req->done = true;
  }
  queue_depth_->Set(0.0);
  done_cv_.notify_all();
}

Status Batcher::Predict(const Tensor& example, Reply* reply) {
  GMREG_CHECK(reply != nullptr);
  if (example.empty()) {
    return Status::InvalidArgument("empty example tensor");
  }
  Stopwatch watch;
  Request req;
  req.input = &example;
  req.reply = reply;
  req.deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(options_.max_delay_ms);
  std::unique_lock<std::mutex> lock(mu_);
  if (!accepting_) {
    rejected_->Add(1);
    return Status::FailedPrecondition("batcher is shut down");
  }
  if (static_cast<std::int64_t>(queue_.size()) >= options_.max_queue_depth) {
    rejected_->Add(1);
    return Status::OutOfRange("serving queue is full (backpressure)");
  }
  queue_.push_back(&req);
  queue_depth_->Set(static_cast<double>(queue_.size()));
  requests_->Add(1);
  work_cv_.notify_one();
  done_cv_.wait(lock, [&req] { return req.done; });
  latency_->Observe(watch.ElapsedSeconds());
  return req.status;
}

std::int64_t Batcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(queue_.size());
}

int Batcher::RetryAfterSeconds() const {
  std::int64_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = static_cast<std::int64_t>(queue_.size());
  }
  Histogram::Snapshot predict = predict_time_->snapshot();
  double per_batch =
      predict.count > 0 ? predict.sum / static_cast<double>(predict.count)
                        : 0.02;  // nothing measured yet: assume 20ms
  // Batches left in the queue, plus one likely in flight per worker.
  double batches =
      std::ceil(static_cast<double>(depth) /
                static_cast<double>(options_.max_batch_size)) +
      static_cast<double>(options_.num_workers);
  double seconds =
      batches * per_batch / static_cast<double>(options_.num_workers);
  return static_cast<int>(
      std::clamp(std::ceil(seconds), 1.0, 30.0));
}

std::vector<Batcher::Request*> Batcher::TakeBatchLocked() {
  // A batch is a shape-homogeneous prefix: a request with a different
  // example shape ends the batch and starts the next one, so mixed-shape
  // traffic degrades throughput, never correctness.
  std::vector<Request*> batch;
  const std::vector<std::int64_t>& shape = queue_.front()->input->shape();
  while (!queue_.empty() &&
         static_cast<int>(batch.size()) < options_.max_batch_size &&
         queue_.front()->input->shape() == shape) {
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  return batch;
}

void Batcher::WorkerLoop(int worker) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (draining_) return;
      continue;
    }
    // Micro-batching wait: give the batch a chance to fill, but never past
    // the oldest request's deadline — and drain immediately on shutdown.
    while (!draining_ &&
           static_cast<int>(queue_.size()) < options_.max_batch_size) {
      auto deadline = queue_.front()->deadline;
      if (std::chrono::steady_clock::now() >= deadline) break;
      work_cv_.wait_until(lock, deadline);
      if (queue_.empty()) break;  // another worker took the whole queue
    }
    if (queue_.empty()) continue;
    std::vector<Request*> batch = TakeBatchLocked();
    queue_depth_->Set(static_cast<double>(queue_.size()));
    lock.unlock();

    // Stack the examples into one [B, ...] tensor.
    std::int64_t batch_size = static_cast<std::int64_t>(batch.size());
    const Tensor& first = *batch[0]->input;
    std::vector<std::int64_t> stacked_shape;
    stacked_shape.reserve(first.shape().size() + 1);
    stacked_shape.push_back(batch_size);
    stacked_shape.insert(stacked_shape.end(), first.shape().begin(),
                         first.shape().end());
    Tensor in(stacked_shape);
    std::int64_t row = first.size();
    for (std::int64_t i = 0; i < batch_size; ++i) {
      const Tensor& example = *batch[static_cast<std::size_t>(i)]->input;
      std::copy(example.data(), example.data() + row, in.data() + i * row);
    }

    Tensor out;
    BatchInfo info;
    Status st;
    {
      Stopwatch predict_watch;
      st = handler_(worker, in, &out, &info);
      predict_time_->Observe(predict_watch.ElapsedSeconds());
    }
    if (st.ok() && (out.rank() < 1 || out.dim(0) != batch_size)) {
      st = Status::Internal(
          "batch handler returned output shape " + out.ShapeString() +
          " for a batch of " + std::to_string(batch_size));
    }
    std::int64_t out_row = st.ok() ? out.size() / batch_size : 0;

    lock.lock();
    for (std::int64_t i = 0; i < batch_size; ++i) {
      Request* req = batch[static_cast<std::size_t>(i)];
      req->status = st;
      if (st.ok()) {
        Tensor scores({out_row});
        std::copy(out.data() + i * out_row, out.data() + (i + 1) * out_row,
                  scores.data());
        req->reply->output = std::move(scores);
        req->reply->model_version = info.model_version;
        req->reply->model_epoch = info.model_epoch;
      }
      req->done = true;
    }
    batches_->Add(1);
    batch_size_->Observe(static_cast<double>(batch_size));
    done_cv_.notify_all();
  }
}

}  // namespace gmreg
