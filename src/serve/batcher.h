#ifndef GMREG_SERVE_BATCHER_H_
#define GMREG_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "tensor/tensor.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/status.h"

namespace gmreg {

/// Tuning knobs of the micro-batching engine.
struct BatcherOptions {
  /// Most examples coalesced into one model call. A full queue flushes
  /// immediately; otherwise the flush waits for the oldest request's
  /// deadline.
  int max_batch_size = 8;
  /// How long a lone request may wait for company before its batch is
  /// flushed anyway — the latency the batcher is allowed to add.
  int max_delay_ms = 2;
  /// Worker threads executing batches (each needs its own handler state,
  /// e.g. one InferenceSession per worker index).
  int num_workers = 1;
  /// Backpressure: Predict() fails fast with OutOfRange once this many
  /// requests are queued, instead of growing the queue unboundedly.
  std::int64_t max_queue_depth = 1024;
};

/// Model-version stamp a handler attaches to the batch it answered, so
/// per-request replies can report which snapshot served them.
struct BatchInfo {
  std::int64_t model_version = 0;
  int model_epoch = -1;
};

/// Executes one coalesced batch: `in` is the stacked input [B, ...], `out`
/// must receive per-example scores [B, C]. `worker` is the index of the
/// worker thread making the call (in [0, BatcherOptions::num_workers)) —
/// calls are concurrent across distinct worker indices but serialized
/// within one, so per-worker handler state needs no locking. An error
/// status fails every request in the batch.
using BatchHandler =
    std::function<Status(int worker, const Tensor& in, Tensor* out,
                         BatchInfo* info)>;

/// Micro-batching request queue: single-example Predict() calls from many
/// client threads are coalesced into one model call of up to
/// `max_batch_size` examples (dynamic batching, the standard serving
/// throughput lever). A batch is flushed when it is full, when the oldest
/// request has waited `max_delay_ms`, or when the batcher is draining for
/// shutdown.
///
/// Worker threads run on a dedicated util/parallel ThreadPool owned by the
/// batcher (the global pool keeps its fork-join role for the model's
/// internal GEMM parallelism).
///
/// Telemetry: gm.serve.requests / gm.serve.batches / gm.serve.rejected
/// counters, gm.serve.queue_depth gauge, and gm.serve.batch_size /
/// gm.serve.request_latency_seconds / gm.serve.batch_predict_seconds
/// histograms (with p50/p95/p99 in every metrics snapshot).
class Batcher {
 public:
  Batcher(const BatcherOptions& options, BatchHandler handler);
  ~Batcher();  ///< implies Shutdown()

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Spawns the worker threads. Predict() before Start() queues but does
  /// not complete.
  void Start();

  /// Graceful drain: stops accepting new requests, answers everything
  /// already queued, then stops the workers. Idempotent.
  void Shutdown();

  /// One completed request.
  struct Reply {
    Tensor output;  ///< this example's score row, shape [C]
    std::int64_t model_version = 0;
    int model_epoch = -1;
  };

  /// Blocking single-example inference: enqueues `example` (shape must
  /// match every other request, batch dim excluded) and waits for its
  /// batch. Thread-safe; this is the server's per-request entry point.
  /// Fails with OutOfRange under backpressure and FailedPrecondition after
  /// Shutdown().
  Status Predict(const Tensor& example, Reply* reply);

  /// Requests currently queued (gauge; also exported as
  /// gm.serve.queue_depth).
  std::int64_t queue_depth() const;

  /// Advice for a 429 Retry-After header: how many seconds until the
  /// current queue should have drained, estimated from the observed mean
  /// batch predict time (gm.serve.batch_predict_seconds), the queue depth,
  /// and the worker count. Clamped to [1, 30]; 1 when nothing has been
  /// measured yet.
  int RetryAfterSeconds() const;

  const BatcherOptions& options() const { return options_; }

 private:
  struct Request {
    const Tensor* input = nullptr;  ///< owned by the waiting Predict caller
    Reply* reply = nullptr;
    Status status;
    bool done = false;
    std::chrono::steady_clock::time_point deadline;
  };

  void WorkerLoop(int worker);

  /// Pops up to max_batch_size requests; called with mu_ held.
  std::vector<Request*> TakeBatchLocked();

  const BatcherOptions options_;
  const BatchHandler handler_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for requests/shutdown
  std::condition_variable done_cv_;  ///< Predict callers wait for completion
  std::deque<Request*> queue_;
  bool accepting_ = false;
  bool draining_ = false;

  std::unique_ptr<ThreadPool> pool_;  ///< num_workers - 1 pool threads
  std::thread dispatcher_;  ///< drives pool_->Run with the worker loops

  Counter* requests_;        ///< gm.serve.requests
  Counter* batches_;         ///< gm.serve.batches
  Counter* rejected_;        ///< gm.serve.rejected
  Gauge* queue_depth_;       ///< gm.serve.queue_depth
  Histogram* batch_size_;    ///< gm.serve.batch_size
  Histogram* latency_;       ///< gm.serve.request_latency_seconds
  Histogram* predict_time_;  ///< gm.serve.batch_predict_seconds
};

}  // namespace gmreg

#endif  // GMREG_SERVE_BATCHER_H_
