#include "serve/inference_session.h"

#include <algorithm>
#include <utility>

#include "models/alex_cifar10.h"
#include "models/resnet.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

// "mlp:8:16:2" -> {"mlp", "8", "16", "2"}.
std::vector<std::string> SplitSpec(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      return parts;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
}

Status ParsePositiveInt(const std::string& token, const char* what,
                        std::int64_t* out) {
  std::int64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(StrFormat("bad %s '%s' in model spec",
                                               what, token.c_str()));
    }
    value = value * 10 + (c - '0');
    if (value > 1000000000) break;
  }
  if (token.empty() || value <= 0 || value > 1000000000) {
    return Status::InvalidArgument(
        StrFormat("%s must be a positive integer (got '%s')", what,
                  token.c_str()));
  }
  *out = value;
  return Status::Ok();
}

}  // namespace

Status ApplyModelSnapshot(const ModelSnapshot& snap,
                          const std::vector<ParamRef>& params) {
  if (snap.params.size() != params.size()) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint has %d parameter tensors, the serving network has %d",
        static_cast<int>(snap.params.size()), static_cast<int>(params.size())));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (snap.param_names[i] != params[i].name) {
      return Status::FailedPrecondition(
          "checkpoint parameter '" + snap.param_names[i] +
          "' does not match network parameter '" + params[i].name + "'");
    }
    if (!snap.params[i].SameShape(*params[i].value)) {
      return Status::FailedPrecondition(
          "checkpoint parameter '" + snap.param_names[i] + "' has shape " +
          snap.params[i].ShapeString() + ", the network expects " +
          params[i].value->ShapeString());
    }
  }
  // All-or-nothing: validation above passed, so the copies below cannot
  // leave the network in a mixed state.
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& src = snap.params[i];
    std::copy(src.data(), src.data() + src.size(), params[i].value->data());
  }
  return Status::Ok();
}

Status ParseModelSpec(const std::string& spec, ModelSpec* out) {
  GMREG_CHECK(out != nullptr);
  std::vector<std::string> parts = SplitSpec(spec);
  const std::string& arch = parts[0];
  ModelSpec result;
  result.name = spec;
  if (arch == "mlp") {
    if (parts.size() != 4) {
      return Status::InvalidArgument(
          "mlp spec is mlp:<in>:<hidden>:<classes> (got '" + spec + "')");
    }
    std::int64_t in = 0, hidden = 0, classes = 0;
    GMREG_RETURN_IF_ERROR(ParsePositiveInt(parts[1], "input size", &in));
    GMREG_RETURN_IF_ERROR(ParsePositiveInt(parts[2], "hidden size", &hidden));
    GMREG_RETURN_IF_ERROR(ParsePositiveInt(parts[3], "class count", &classes));
    result.input_shape = {in};
    result.factory = [in, hidden, classes]() -> std::unique_ptr<Layer> {
      // Weights are overwritten by the bound snapshot; the seed only needs
      // to be deterministic.
      Rng rng(1);
      auto net = std::make_unique<Sequential>("mlp");
      net->Emplace<Dense>("fc1", in, hidden, InitSpec::Gaussian(0.1), &rng);
      net->Emplace<Relu>("relu1");
      net->Emplace<Dense>("fc2", hidden, classes, InitSpec::Gaussian(0.1),
                          &rng);
      return net;
    };
  } else if (arch == "alex") {
    if (parts.size() > 3) {
      return Status::InvalidArgument(
          "alex spec is alex[:hw[:classes]] (got '" + spec + "')");
    }
    AlexCifar10Config config;
    std::int64_t hw = config.input_hw, classes = config.num_classes;
    if (parts.size() >= 2) {
      GMREG_RETURN_IF_ERROR(ParsePositiveInt(parts[1], "input size", &hw));
    }
    if (parts.size() >= 3) {
      GMREG_RETURN_IF_ERROR(
          ParsePositiveInt(parts[2], "class count", &classes));
    }
    config.input_hw = static_cast<int>(hw);
    config.num_classes = static_cast<int>(classes);
    result.input_shape = {config.input_channels, hw, hw};
    result.factory = [config]() -> std::unique_ptr<Layer> {
      Rng rng(1);
      return BuildAlexCifar10(config, &rng);
    };
  } else if (arch == "resnet") {
    if (parts.size() > 3) {
      return Status::InvalidArgument(
          "resnet spec is resnet[:hw[:blocks]] (got '" + spec + "')");
    }
    ResNetConfig config;
    std::int64_t hw = config.input_hw, blocks = config.blocks_per_stage;
    if (parts.size() >= 2) {
      GMREG_RETURN_IF_ERROR(ParsePositiveInt(parts[1], "input size", &hw));
    }
    if (parts.size() >= 3) {
      GMREG_RETURN_IF_ERROR(
          ParsePositiveInt(parts[2], "blocks per stage", &blocks));
    }
    config.input_hw = static_cast<int>(hw);
    config.blocks_per_stage = static_cast<int>(blocks);
    result.input_shape = {config.input_channels, hw, hw};
    result.factory = [config]() -> std::unique_ptr<Layer> {
      Rng rng(1);
      return BuildResNet(config, &rng);
    };
  } else {
    return Status::InvalidArgument("unknown model architecture '" + arch +
                                   "' (want mlp|alex|resnet)");
  }
  *out = std::move(result);
  return Status::Ok();
}

InferenceSession::InferenceSession(ModelRegistry* registry,
                                   ModelFactory factory, bool quantize)
    : registry_(registry),
      factory_(std::move(factory)),
      quantize_(quantize),
      quantized_requests_(MetricsRegistry::Global().counter(
          "gm.serve.quantized_requests")) {
  GMREG_CHECK(registry_ != nullptr);
  GMREG_CHECK(factory_ != nullptr);
}

Status InferenceSession::Rebind(std::shared_ptr<const LoadedModel> model) {
  if (net_ == nullptr) {
    net_ = factory_();
    GMREG_CHECK(net_ != nullptr) << "model factory returned null";
    net_->CollectParams(&params_);
  }
  GMREG_RETURN_IF_ERROR(ApplyModelSnapshot(model->snapshot, params_));
  if (quantize_) {
    if (model->quantized.empty()) {
      return Status::FailedPrecondition(
          "session requires quantized weights but model version " +
          std::to_string(model->version) +
          " was published without them (registry quantization off?)");
    }
    // Bind the publish-time int8 snapshots; `model` (held in bound_ below)
    // keeps the storage alive until the next rebind completes.
    for (std::size_t i = 0; i < params_.size(); ++i) {
      const QuantizedMatrix& q = model->quantized[i];
      if (!q.valid()) continue;
      GMREG_CHECK(net_->BindQuantizedWeight(params_[i].name, &q))
          << "no layer accepted quantized weight '" << params_[i].name << "'";
    }
  }
  bound_ = std::move(model);
  MetricsRegistry::Global().counter("gm.serve.rebinds")->Add(1);
  return Status::Ok();
}

Status InferenceSession::Predict(const Tensor& in, Tensor* out) {
  GMREG_CHECK(out != nullptr);
  // One cheap atomic read per call; the shared_ptr copy (a lock) only
  // happens when the registry actually moved.
  if (bound_ == nullptr || registry_->version() != bound_->version) {
    std::shared_ptr<const LoadedModel> current = registry_->Current();
    if (current == nullptr) {
      return Status::FailedPrecondition(
          "no model published yet (registry has not loaded a checkpoint)");
    }
    if (bound_ == nullptr || current->version != bound_->version) {
      GMREG_RETURN_IF_ERROR(Rebind(std::move(current)));
    }
  }
  // Plan-once: a new input shape sizes the intermediates into the arena;
  // repeat shapes reuse them allocation-free (docs/MEMORY.md).
  bool replan = plan_.Update(in.shape().data(), in.rank());
  if (replan) RecordArenaPlanRebuild();
  ArenaScope plan_scope(replan ? &GlobalArena() : nullptr);
  net_->Predict(in, out);
  if (quantize_) quantized_requests_->Add(in.dim(0));
  return Status::Ok();
}

}  // namespace gmreg
