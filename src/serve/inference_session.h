#ifndef GMREG_SERVE_INFERENCE_SESSION_H_
#define GMREG_SERVE_INFERENCE_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "serve/model_registry.h"
#include "util/arena.h"
#include "util/metrics.h"
#include "util/status.h"

namespace gmreg {

/// Builds a fresh, untrained network whose parameter names and shapes match
/// the checkpoints being served. Each inference session owns one instance
/// (layers cache activations, so a network is single-threaded by design)
/// and overwrites its weights from registry snapshots.
using ModelFactory = std::function<std::unique_ptr<Layer>()>;

/// Copies `snap`'s tensors into the network parameters `params` (matched
/// positionally; names and shapes must agree — FailedPrecondition when the
/// checkpoint belongs to a different topology).
Status ApplyModelSnapshot(const ModelSnapshot& snap,
                          const std::vector<ParamRef>& params);

/// A model spec string resolved into something the serving layer can run:
/// a factory plus the per-example input shape (batch dim excluded) that
/// POST /v1/predict rows are validated against.
///
/// Spec grammar (all integers):
///   mlp:<in>:<hidden>:<classes>   two Dense layers ("fc1", "fc2") with a
///                                 ReLU between — input shape {in}
///   alex[:hw[:classes]]           BuildAlexCifar10 — input {3, hw, hw}
///   resnet[:hw[:blocks]]          BuildResNet — input {3, hw, hw}
struct ModelSpec {
  std::string name;  ///< the spec string it was parsed from
  ModelFactory factory;
  std::vector<std::int64_t> input_shape;
};

/// Parses the spec grammar above; InvalidArgument on unknown architectures
/// or malformed/non-positive dimensions.
Status ParseModelSpec(const std::string& spec, ModelSpec* out);

/// One worker's view of the registry: a private network instance that is
/// lazily (re)bound to the registry's current snapshot. The rebind happens
/// between batches — never mid-forward — so a request is always answered by
/// exactly one complete model version (the "no torn model" guarantee).
///
/// NOT thread-safe: create one session per batcher worker.
class InferenceSession {
 public:
  /// `registry` is not owned and must outlive the session. With `quantize`
  /// true the session binds the registry's publish-time int8 weight
  /// snapshots (LoadedModel::quantized) into the network on every rebind,
  /// so eval-mode forwards take the quantized GEMM path; the registry must
  /// then be publishing quantized models (ModelRegistry::EnableQuantization
  /// — Server::Start wires both from ServerOptions::quantize).
  InferenceSession(ModelRegistry* registry, ModelFactory factory,
                   bool quantize = false);

  /// Syncs to the registry's current version if it moved, then runs one
  /// eval-mode forward (Layer::Predict): `in` is [B, ...], `out` receives
  /// [B, C] scores. FailedPrecondition before the registry's first
  /// successful load or when the snapshot does not fit the factory's
  /// topology.
  Status Predict(const Tensor& in, Tensor* out);

  /// Version/epoch of the snapshot that answered the last Predict (0/-1
  /// before the first bind) — stamped into responses so clients can see
  /// which model served them.
  std::int64_t bound_version() const { return bound_ ? bound_->version : 0; }
  int bound_epoch() const { return bound_ ? bound_->snapshot.epoch : -1; }

 private:
  Status Rebind(std::shared_ptr<const LoadedModel> model);

  ModelRegistry* registry_;
  ModelFactory factory_;
  const bool quantize_;
  Counter* quantized_requests_;  ///< gm.serve.quantized_requests
  std::unique_ptr<Layer> net_;
  std::vector<ParamRef> params_;
  std::shared_ptr<const LoadedModel> bound_;
  // Plan-once shape key: the first batch of a new shape sizes the network's
  // intermediates under an arena planning scope; same-shape predicts then
  // run with zero heap allocations (docs/MEMORY.md). Rebinding to a new
  // model version does not replan — weights are copied into buffers in
  // place.
  ShapePlan plan_;
};

}  // namespace gmreg

#endif  // GMREG_SERVE_INFERENCE_SESSION_H_
