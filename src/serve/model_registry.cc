#include "serve/model_registry.h"

#include <sys/stat.h>

#include <chrono>
#include <utility>

#include "util/logging.h"

namespace gmreg {

ModelRegistry::ModelRegistry(std::string checkpoint_path, bool quantize)
    : path_(std::move(checkpoint_path)), quantize_(quantize) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  reloads_ = registry.counter("gm.serve.reloads");
  reload_failures_ = registry.counter("gm.serve.reload_failures");
  reload_noops_ = registry.counter("gm.serve.reload_noops");
}

ModelRegistry::~ModelRegistry() { StopWatcher(); }

Status ModelRegistry::Reload() {
  // One reload at a time: concurrent callers (watcher + explicit Reload)
  // serialize here, and readers only ever see fully-built LoadedModels.
  std::lock_guard<std::mutex> lock(mu_);
  auto loaded = std::make_shared<LoadedModel>();
  Status st = LoadModelSnapshot(path_, &loaded->snapshot);
  if (!st.ok()) {
    reload_failures_->Add(1);
    GMREG_LOG(Warning) << "model reload from " << path_
                       << " failed; keeping the current model: "
                       << st.ToString();
    return st;
  }
  if (current_ != nullptr) {
    if (loaded->snapshot.fingerprint == current_->snapshot.fingerprint) {
      reload_noops_->Add(1);
      return Status::Ok();
    }
    // A hot swap must be appliable by every bound inference session, so the
    // parameter set has to match the published model exactly.
    const ModelSnapshot& have = current_->snapshot;
    const ModelSnapshot& want = loaded->snapshot;
    if (want.param_names != have.param_names) {
      reload_failures_->Add(1);
      return Status::FailedPrecondition(
          "checkpoint " + path_ +
          " has a different parameter set than the serving model; refusing "
          "the hot swap");
    }
    for (std::size_t i = 0; i < want.params.size(); ++i) {
      if (!want.params[i].SameShape(have.params[i])) {
        reload_failures_->Add(1);
        return Status::FailedPrecondition(
            "checkpoint parameter '" + want.param_names[i] +
            "' changed shape; refusing the hot swap");
      }
    }
  }
  if (quantize_.load(std::memory_order_relaxed)) {
    // Quantization happens exactly once per published version, here at
    // publish time — never on the per-request path (docs/KERNELS.md).
    QuantizeModel(loaded.get());
  }
  loaded->version = version_.load(std::memory_order_relaxed) + 1;
  current_ = std::move(loaded);  // old model stays alive with its readers
  version_.store(current_->version, std::memory_order_release);
  reloads_->Add(1);
  GMREG_LOG(Info) << "published model version " << current_->version
                  << " from " << path_ << " (epoch "
                  << current_->snapshot.epoch << ", "
                  << current_->snapshot.params.size() << " tensors)";
  return Status::Ok();
}

void ModelRegistry::QuantizeModel(LoadedModel* model) {
  const ModelSnapshot& snap = model->snapshot;
  model->quantized.assign(snap.params.size(), QuantizedMatrix{});
  const std::string suffix = "/weight";
  for (std::size_t i = 0; i < snap.params.size(); ++i) {
    const std::string& name = snap.param_names[i];
    const Tensor& value = snap.params[i];
    if (value.rank() != 2) continue;
    if (name.size() < suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    QuantizeRowsSymmetric(value.data(), value.dim(0), value.dim(1),
                          &model->quantized[i]);
  }
}

void ModelRegistry::EnableQuantization() {
  quantize_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ == nullptr || !current_->quantized.empty()) return;
  // Republish the live model with quantized weights at the SAME version:
  // sessions bind lazily on their next Predict, so a same-version swap
  // before traffic starts (Server::Start) is invisible, and after it only
  // upgrades the storage the next rebind picks up.
  auto requantized = std::make_shared<LoadedModel>();
  requantized->snapshot = current_->snapshot;
  requantized->version = current_->version;
  QuantizeModel(requantized.get());
  current_ = std::move(requantized);
}

std::shared_ptr<const LoadedModel> ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

bool ModelRegistry::StatCheckpoint(std::int64_t* mtime_ns,
                                   std::int64_t* size) const {
  struct stat st{};
  if (::stat(path_.c_str(), &st) != 0) return false;
#ifdef __APPLE__
  *mtime_ns = static_cast<std::int64_t>(st.st_mtimespec.tv_sec) * 1000000000 +
              st.st_mtimespec.tv_nsec;
#else
  *mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
              st.st_mtim.tv_nsec;
#endif
  *size = static_cast<std::int64_t>(st.st_size);
  return true;
}

void ModelRegistry::StartWatcher(int poll_interval_ms) {
  GMREG_CHECK_GT(poll_interval_ms, 0);
  std::lock_guard<std::mutex> lock(watcher_mu_);
  if (watcher_.joinable()) return;
  watcher_stop_ = false;
  watcher_ = std::thread([this, poll_interval_ms] {
    WatcherLoop(poll_interval_ms);
  });
}

void ModelRegistry::StopWatcher() {
  {
    std::lock_guard<std::mutex> lock(watcher_mu_);
    if (!watcher_.joinable()) return;
    watcher_stop_ = true;
  }
  watcher_cv_.notify_all();
  watcher_.join();
  std::lock_guard<std::mutex> lock(watcher_mu_);
  watcher_ = std::thread();
}

void ModelRegistry::WatcherLoop(int poll_interval_ms) {
  std::int64_t last_mtime = -1;
  std::int64_t last_size = -1;
  StatCheckpoint(&last_mtime, &last_size);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watcher_mu_);
      watcher_cv_.wait_for(lock,
                           std::chrono::milliseconds(poll_interval_ms),
                           [this] { return watcher_stop_; });
      if (watcher_stop_) return;
    }
    std::int64_t mtime = -1;
    std::int64_t size = -1;
    if (!StatCheckpoint(&mtime, &size)) continue;
    if (mtime == last_mtime && size == last_size) continue;
    last_mtime = mtime;
    last_size = size;
    // Reload() itself de-dupes by content fingerprint, so a touch without a
    // content change stays a no-op.
    Reload().ok();  // failure already logged and counted
  }
}

}  // namespace gmreg
