#ifndef GMREG_SERVE_MODEL_REGISTRY_H_
#define GMREG_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/checkpoint.h"
#include "tensor/quantize.h"
#include "util/metrics.h"
#include "util/status.h"

namespace gmreg {

/// One published model version: an immutable weights snapshot plus the
/// registry's version counter. Requests hold a shared_ptr to this object
/// for as long as they need it, so a hot reload can never tear a model out
/// from under an in-flight batch — the old LoadedModel stays alive until
/// its last reader drops it.
struct LoadedModel {
  ModelSnapshot snapshot;
  std::int64_t version = 0;  ///< 1-based publish counter

  /// Parallel to snapshot.params: an int8 per-row-scale snapshot of every
  /// rank-2 `*/weight` parameter, built once here at publish time when the
  /// registry quantizes (ServerOptions::quantize); invalid (rows == 0)
  /// entries mark parameters served in float. Empty when quantization is
  /// off. Sessions bind pointers into this storage, which the shared_ptr
  /// keeps alive as long as any reader holds the model.
  std::vector<QuantizedMatrix> quantized;
};

/// Thread-safe, versioned source of truth for the model a server process is
/// serving. Loads weights from gmckpt checkpoint files (the artifact the
/// Trainer writes — see docs/CHECKPOINTING.md) through the model-only
/// LoadModelSnapshot entry point, and publishes them by swapping one
/// shared_ptr:
///
///   ModelRegistry registry("run/ckpt.gmckpt");
///   GMREG_CHECK(registry.Reload().ok());           // initial load
///   registry.StartWatcher(/*poll_interval_ms=*/500);  // hot reload
///   std::shared_ptr<const LoadedModel> m = registry.Current();
///
/// Reload semantics:
///  * an unchanged file (same FNV-1a fingerprint) is a no-op success;
///  * a damaged or missing file keeps the previous model serving and
///    returns the error (gm.serve.reload_failures);
///  * a checkpoint whose parameter names/shapes no longer match the
///    currently published model is rejected (FailedPrecondition) — bound
///    inference sessions could not apply it;
///  * a successful swap bumps version() (gm.serve.reloads).
///
/// The watcher polls the checkpoint's mtime/size and calls Reload() on
/// change; Reload() is also safe to call directly from any thread.
class ModelRegistry {
 public:
  explicit ModelRegistry(std::string checkpoint_path, bool quantize = false);
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Loads the checkpoint and publishes it if it is new. See class comment
  /// for the failure semantics.
  Status Reload();

  /// The currently published model, or nullptr before the first successful
  /// Reload(). Cheap (one mutex-protected shared_ptr copy per call — per
  /// batch, not per request, in the serving path).
  std::shared_ptr<const LoadedModel> Current() const;

  /// Version of the published model; 0 before the first successful load.
  /// Monotone, so sessions detect staleness with one atomic read.
  std::int64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Turns on publish-time int8 quantization (idempotent). The currently
  /// published model, if any, is republished in place with quantized
  /// weights at the same version — sessions bind lazily, so a version
  /// republish before the server hands out the registry is invisible.
  void EnableQuantization();

  /// True when publish-time quantization is on.
  bool quantize_enabled() const {
    return quantize_.load(std::memory_order_relaxed);
  }

  /// Starts a background thread that polls the checkpoint file every
  /// `poll_interval_ms` and reloads when its mtime or size changes. No-op
  /// if already watching.
  void StartWatcher(int poll_interval_ms);

  /// Stops and joins the watcher thread (idempotent).
  void StopWatcher();

  const std::string& checkpoint_path() const { return path_; }

 private:
  void WatcherLoop(int poll_interval_ms);

  /// Stamps the file's (mtime, size) into *mtime_ns/*size; false when the
  /// file cannot be stat'ed.
  bool StatCheckpoint(std::int64_t* mtime_ns, std::int64_t* size) const;

  /// Fills model->quantized from model->snapshot (rank-2 `*/weight` params
  /// only). Called under mu_ at publish time.
  static void QuantizeModel(LoadedModel* model);

  const std::string path_;
  std::atomic<bool> quantize_{false};

  mutable std::mutex mu_;  ///< guards current_ and the reload critical section
  std::shared_ptr<const LoadedModel> current_;
  std::atomic<std::int64_t> version_{0};

  std::mutex watcher_mu_;  ///< guards watcher_ lifecycle + stop signaling
  std::condition_variable watcher_cv_;
  std::thread watcher_;
  bool watcher_stop_ = false;

  Counter* reloads_;          ///< gm.serve.reloads
  Counter* reload_failures_;  ///< gm.serve.reload_failures
  Counter* reload_noops_;     ///< gm.serve.reload_noops
};

}  // namespace gmreg

#endif  // GMREG_SERVE_MODEL_REGISTRY_H_
