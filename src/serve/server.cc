#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "tensor/tensor.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

// Request-size guard rails: a prediction row is a few KB of JSON, so these
// caps are generous while keeping a misbehaving client from ballooning the
// process.
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;
constexpr int kMaxRowsPerRequest = 1024;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string ErrorBody(const std::string& message) {
  JsonWriter w;
  w.BeginObject().Key("error").String(message).EndObject();
  return w.str();
}

int HttpStatusFor(const Status& st) {
  switch (st.code()) {
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kOutOfRange: return 429;          // backpressure
    case StatusCode::kFailedPrecondition: return 503;  // no model / draining
    default: return 500;
  }
}

bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// ASCII case-insensitive prefix match for header names.
bool HeaderIs(const std::string& line, const char* name) {
  std::size_t n = std::strlen(name);
  if (line.size() < n) return false;
  for (std::size_t i = 0; i < n; ++i) {
    char a = line[i];
    if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
    if (a != name[i]) return false;
  }
  return true;
}

/// Reads one HTTP/1.1 request (request line, headers, Content-Length body).
bool ReadHttpRequest(int fd, std::string* method, std::string* target,
                     std::string* body) {
  std::string buf;
  char chunk[4096];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    if (buf.size() > kMaxHeaderBytes) return false;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    header_end = buf.find("\r\n\r\n");
  }

  std::size_t line_end = buf.find("\r\n");
  std::string request_line = buf.substr(0, line_end);
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  *method = request_line.substr(0, sp1);
  *target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  std::size_t content_length = 0;
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = buf.find("\r\n", pos);
    std::string line = buf.substr(pos, eol - pos);
    pos = eol + 2;
    if (HeaderIs(line, "content-length:")) {
      const char* v = line.c_str() + std::strlen("content-length:");
      content_length = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    }
  }
  if (content_length > kMaxBodyBytes) return false;

  std::size_t body_start = header_end + 4;
  while (buf.size() - body_start < content_length) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  *body = buf.substr(body_start, content_length);
  return true;
}

std::string RenderResponse(int status, const std::string& body) {
  return StrFormat("HTTP/1.1 %d %s\r\n"
                   "Content-Type: application/json\r\n"
                   "Content-Length: %d\r\n"
                   "Connection: close\r\n\r\n",
                   status, ReasonPhrase(status),
                   static_cast<int>(body.size())) +
         body;
}

}  // namespace

Server::Server(ModelRegistry* registry, const ModelSpec& spec,
               const ServerOptions& options)
    : registry_(registry), spec_(spec), options_(options) {
  GMREG_CHECK(registry_ != nullptr);
  GMREG_CHECK(spec_.factory != nullptr);
  GMREG_CHECK(!spec_.input_shape.empty());
  MetricsRegistry& metrics = MetricsRegistry::Global();
  http_requests_ = metrics.counter("gm.serve.http_requests");
  http_errors_ = metrics.counter("gm.serve.http_errors");
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Internal(StrFormat("bind to port %d: %s",
                                           options_.port,
                                           std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status st =
        Status::Internal(StrFormat("listen: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = static_cast<int>(ntohs(addr.sin_port));

  sessions_.clear();
  for (int w = 0; w < options_.batcher.num_workers; ++w) {
    sessions_.push_back(
        std::make_unique<InferenceSession>(registry_, spec_.factory));
  }
  batcher_ = std::make_unique<Batcher>(
      options_.batcher,
      [this](int worker, const Tensor& in, Tensor* out, BatchInfo* info) {
        InferenceSession& session =
            *sessions_[static_cast<std::size_t>(worker)];
        Status st = session.Predict(in, out);
        info->model_version = session.bound_version();
        info->model_epoch = session.bound_epoch();
        return st;
      });
  batcher_->Start();
  if (options_.reload_poll_ms > 0) {
    registry_->StartWatcher(options_.reload_poll_ms);
    watcher_started_ = true;
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  GMREG_LOG(Info) << "gmreg_serve: model '" << spec_.name
                  << "' listening on port " << port_;
  return Status::Ok();
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    // A concurrent/second Stop: the first caller does the work.
    return;
  }
  if (!running_.load(std::memory_order_acquire)) return;
  // 1. Stop accepting: shutting the listener down unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // 2. Finish open connections.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  // 3. Drain the batcher (answers everything already queued).
  if (batcher_ != nullptr) batcher_->Shutdown();
  if (watcher_started_) {
    registry_->StopWatcher();
    watcher_started_ = false;
  }
  running_.store(false, std::memory_order_release);
  GMREG_LOG(Info) << "gmreg_serve: drained and stopped";
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or fatally broken
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++active_connections_;
    }
    std::thread([this, fd] { HandleConnection(fd); }).detach();
  }
}

void Server::HandleConnection(int fd) {
  timeval timeout{};
  timeout.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string method, target, body;
  if (ReadHttpRequest(fd, &method, &target, &body)) {
    int http_status = 500;
    std::string response_body = Dispatch(method, target, body, &http_status);
    http_requests_->Add(1);
    if (http_status >= 400) http_errors_->Add(1);
    SendAll(fd, RenderResponse(http_status, response_body));
  } else {
    SendAll(fd, RenderResponse(400, ErrorBody("malformed HTTP request")));
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (--active_connections_ == 0) conn_cv_.notify_all();
}

std::string Server::Dispatch(const std::string& method,
                             const std::string& target,
                             const std::string& body, int* http_status) {
  std::string path = target.substr(0, target.find('?'));
  if (path == "/healthz") {
    if (method != "GET") {
      *http_status = 405;
      return ErrorBody("use GET " + path);
    }
    return HandleHealth(http_status);
  }
  if (path == "/metrics") {
    if (method != "GET") {
      *http_status = 405;
      return ErrorBody("use GET " + path);
    }
    *http_status = 200;
    return RecordToJson(MetricsRegistry::Global().Snapshot("metrics"));
  }
  if (path == "/v1/predict") {
    if (method != "POST") {
      *http_status = 405;
      return ErrorBody("use POST " + path);
    }
    return HandlePredict(body, http_status);
  }
  *http_status = 404;
  return ErrorBody("no route for '" + path + "'");
}

std::string Server::HandleHealth(int* http_status) {
  std::shared_ptr<const LoadedModel> current = registry_->Current();
  JsonWriter w;
  w.BeginObject();
  if (current == nullptr) {
    *http_status = 503;
    w.Key("status").String("unavailable");
    w.Key("error").String("no model loaded yet");
  } else {
    *http_status = 200;
    w.Key("status").String("ok");
    w.Key("model").String(spec_.name);
    w.Key("model_version").Int(current->version);
    w.Key("model_epoch").Int(current->snapshot.epoch);
    w.Key("checkpoint").String(registry_->checkpoint_path());
  }
  w.EndObject();
  return w.str();
}

std::string Server::HandlePredict(const std::string& body, int* http_status) {
  JsonValue doc;
  Status st = JsonValue::Parse(body, &doc);
  if (!st.ok() || !doc.is_object()) {
    *http_status = 400;
    return ErrorBody("request body is not a JSON object: " +
                     (st.ok() ? std::string("wrong type") : st.ToString()));
  }
  const JsonValue* inputs = doc.Find("inputs");
  const JsonValue* single = doc.Find("input");
  std::vector<const JsonValue*> rows;
  if (inputs != nullptr && inputs->is_array()) {
    for (const JsonValue& item : inputs->items) rows.push_back(&item);
  } else if (single != nullptr && single->is_array()) {
    rows.push_back(single);
  } else {
    *http_status = 400;
    return ErrorBody(
        "expected \"inputs\": [[...], ...] or \"input\": [...]");
  }
  if (rows.empty() ||
      static_cast<int>(rows.size()) > kMaxRowsPerRequest) {
    *http_status = 400;
    return ErrorBody(StrFormat("want 1..%d input rows, got %d",
                               kMaxRowsPerRequest,
                               static_cast<int>(rows.size())));
  }

  std::int64_t row_size = ShapeSize(spec_.input_shape);
  std::vector<Batcher::Reply> replies(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const JsonValue& row = *rows[r];
    if (!row.is_array() ||
        static_cast<std::int64_t>(row.items.size()) != row_size) {
      *http_status = 400;
      return ErrorBody(StrFormat(
          "input row %d must be a flat array of %d numbers (model '%s')",
          static_cast<int>(r), static_cast<int>(row_size),
          spec_.name.c_str()));
    }
    Tensor example(spec_.input_shape);
    for (std::int64_t i = 0; i < row_size; ++i) {
      const JsonValue& v = row.items[static_cast<std::size_t>(i)];
      if (!v.is_number()) {
        *http_status = 400;
        return ErrorBody(StrFormat("input row %d element %d is not a number",
                                   static_cast<int>(r), static_cast<int>(i)));
      }
      example[i] = static_cast<float>(v.number);
    }
    // Rows ride the shared micro-batching queue one by one, coalescing with
    // every other in-flight request in the process.
    st = batcher_->Predict(example, &replies[r]);
    if (!st.ok()) {
      *http_status = HttpStatusFor(st);
      return ErrorBody(st.ToString());
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("model_version").Int(replies[0].model_version);
  w.Key("model_epoch").Int(replies[0].model_epoch);
  w.Key("outputs").BeginArray();
  for (const Batcher::Reply& reply : replies) {
    w.BeginArray();
    for (std::int64_t i = 0; i < reply.output.size(); ++i) {
      w.Double(static_cast<double>(reply.output[i]));
    }
    w.EndArray();
  }
  w.EndArray();
  w.Key("predictions").BeginArray();
  for (const Batcher::Reply& reply : replies) {
    std::int64_t best = 0;
    for (std::int64_t i = 1; i < reply.output.size(); ++i) {
      if (reply.output[i] > reply.output[best]) best = i;
    }
    w.Int(best);
  }
  w.EndArray();
  w.EndObject();
  *http_status = 200;
  return w.str();
}

Status HttpRequest(int port, const std::string& method,
                   const std::string& target, const std::string& body,
                   int* status_code, std::string* response_body) {
  GMREG_CHECK(status_code != nullptr);
  GMREG_CHECK(response_body != nullptr);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal(StrFormat("connect to 127.0.0.1:%d: %s",
                                           port, std::strerror(errno)));
    ::close(fd);
    return st;
  }
  std::string request =
      method + " " + target + " HTTP/1.1\r\n" +
      "Host: 127.0.0.1\r\n"
      "Content-Type: application/json\r\n" +
      StrFormat("Content-Length: %d\r\n", static_cast<int>(body.size())) +
      "Connection: close\r\n\r\n" +
      body;
  if (!SendAll(fd, request)) {
    ::close(fd);
    return Status::Internal("send failed");
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // Connection: close framing — EOF ends the response
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::size_t sp = response.find(' ');
  if (sp == std::string::npos) {
    return Status::Internal("malformed HTTP response: '" + response + "'");
  }
  *status_code = std::atoi(response.c_str() + sp + 1);
  std::size_t header_end = response.find("\r\n\r\n");
  *response_body = header_end == std::string::npos
                       ? std::string()
                       : response.substr(header_end + 4);
  return Status::Ok();
}

}  // namespace gmreg
