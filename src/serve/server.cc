#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "tensor/tensor.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/net.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

// Request-size guard rails: a prediction row is a few KB of JSON, so these
// caps are generous while keeping a misbehaving client from ballooning the
// process.
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;
constexpr int kMaxRowsPerRequest = 1024;
// Pipelining depth: parsing pauses once this many requests of one
// connection await execution; it resumes as the handler drains them, so a
// deep pipeline is throttled, never dropped.
constexpr std::size_t kMaxPipelinedRequests = 64;
// A graceful drain force-closes connections that have not flushed after
// this long (a peer that stopped reading must not wedge shutdown).
constexpr int kDrainForceCloseMs = 5000;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string ErrorBody(const std::string& message) {
  JsonWriter w;
  w.BeginObject().Key("error").String(message).EndObject();
  return w.str();
}

int HttpStatusFor(const Status& st) {
  switch (st.code()) {
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kOutOfRange: return 429;          // load shed
    case StatusCode::kFailedPrecondition: return 503;  // no model / draining
    default: return 500;
  }
}

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Case-insensitive `line` starts-with `name` (header-name match).
bool HeaderIs(const std::string& line, const char* name) {
  std::size_t n = std::strlen(name);
  if (line.size() < n) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (AsciiLower(line[i]) != name[i]) return false;
  }
  return true;
}

std::string TrimWhitespace(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// The response serializer: HTTP/1.1 status line, framing headers, any
/// extra headers (e.g. Retry-After), the keep-alive verdict, then the
/// JSON body.
std::string RenderResponse(int status, const std::string& body,
                           bool keep_alive,
                           const std::string& extra_headers = "") {
  return StrFormat("HTTP/1.1 %d %s\r\n"
                   "Content-Type: application/json\r\n"
                   "Content-Length: %d\r\n",
                   status, ReasonPhrase(status),
                   static_cast<int>(body.size())) +
         extra_headers +
         (keep_alive ? "Connection: keep-alive\r\n\r\n"
                     : "Connection: close\r\n\r\n") +
         body;
}

}  // namespace

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(ModelRegistry* registry, const ModelSpec& spec,
               const ServerOptions& options)
    : registry_(registry), spec_(spec), options_(options) {
  GMREG_CHECK(registry_ != nullptr);
  GMREG_CHECK(spec_.factory != nullptr);
  GMREG_CHECK(!spec_.input_shape.empty());
  GMREG_CHECK_GE(options_.idle_timeout_ms, 1);
  GMREG_CHECK_GE(options_.max_connections, 1);
  GMREG_CHECK_GE(options_.num_handler_threads, 1);
  MetricsRegistry& metrics = MetricsRegistry::Global();
  http_requests_ = metrics.counter("gm.serve.http_requests");
  http_errors_ = metrics.counter("gm.serve.http_errors");
  conns_accepted_ = metrics.counter("gm.serve.conns_accepted");
  conns_rejected_ = metrics.counter("gm.serve.conns_rejected");
  conns_idle_ = metrics.counter("gm.serve.conns_idle_closed");
  keepalive_reuse_ = metrics.counter("gm.serve.keepalive_reuses");
  shed_ = metrics.counter("gm.serve.shed_requests");
  open_conns_ = metrics.gauge("gm.serve.open_connections");
  ep_predict_ = {
      metrics.histogram("gm.serve.endpoint.predict.latency_seconds"),
      metrics.counter("gm.serve.endpoint.predict.slo_violations")};
  ep_healthz_ = {
      metrics.histogram("gm.serve.endpoint.healthz.latency_seconds"),
      metrics.counter("gm.serve.endpoint.healthz.slo_violations")};
  ep_metrics_ = {
      metrics.histogram("gm.serve.endpoint.metrics.latency_seconds"),
      metrics.counter("gm.serve.endpoint.metrics.slo_violations")};
  ep_other_ = {metrics.histogram("gm.serve.endpoint.other.latency_seconds"),
               metrics.counter("gm.serve.endpoint.other.slo_violations")};
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  Status listen_st = CreateListenSocket(options_.port, /*nonblocking=*/true,
                                        &listen_fd_, &port_);
  if (!listen_st.ok()) {
    listen_fd_ = -1;
    return listen_st;
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status st = Status::Internal(
        StrFormat("epoll/eventfd: %s", std::strerror(errno)));
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  if (options_.quantize) {
    // Before any session binds: the registry republishes the current model
    // (if one is loaded) with publish-time int8 snapshots, and every
    // version from here on carries them.
    registry_->EnableQuantization();
  }
  sessions_.clear();
  for (int w = 0; w < options_.batcher.num_workers; ++w) {
    sessions_.push_back(std::make_unique<InferenceSession>(
        registry_, spec_.factory, options_.quantize));
  }
  batcher_ = std::make_unique<Batcher>(
      options_.batcher,
      [this](int worker, const Tensor& in, Tensor* out, BatchInfo* info) {
        InferenceSession& session =
            *sessions_[static_cast<std::size_t>(worker)];
        Status st = session.Predict(in, out);
        info->model_version = session.bound_version();
        info->model_epoch = session.bound_epoch();
        return st;
      });
  batcher_->Start();
  if (options_.reload_poll_ms > 0) {
    registry_->StartWatcher(options_.reload_poll_ms);
    watcher_started_ = true;
  }
  handlers_stop_ = false;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (int h = 0; h < options_.num_handler_threads; ++h) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  loop_thread_ = std::thread([this] { EventLoop(); });
  GMREG_LOG(Info) << "gmreg_serve: model '" << spec_.name
                  << "' listening on port " << port_ << " (epoll, keep-alive"
                  << ", idle_timeout=" << options_.idle_timeout_ms << "ms"
                  << ", max_connections=" << options_.max_connections << ")";
  return Status::Ok();
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    // A concurrent/second Stop: the first caller does the work.
    return;
  }
  if (!running_.load(std::memory_order_acquire)) return;
  // 1. Wake the event loop: it stops accepting, answers every request
  //    already parsed, flushes, and closes each connection.
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // 2. Stop the handler pool (drains any dispatch-queue stragglers whose
  //    connections the loop already closed).
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers_stop_ = true;
  }
  dispatch_cv_.notify_all();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  // 3. Drain the batcher (answers everything already queued).
  if (batcher_ != nullptr) batcher_->Shutdown();
  if (watcher_started_) {
    registry_->StopWatcher();
    watcher_started_ = false;
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
  running_.store(false, std::memory_order_release);
  GMREG_LOG(Info) << "gmreg_serve: drained and stopped";
}

int Server::open_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(conns_.size());
}

void Server::WakeLoop() {
  std::uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;  // EAGAIN just means a wake is already pending
}

// ---------------------------------------------------------------------------
// Event loop (one thread owns every socket)
// ---------------------------------------------------------------------------

void Server::EventLoop() {
  epoll_event events[64];
  bool draining = false;
  std::chrono::steady_clock::time_point drain_start{};
  for (;;) {
    int timeout_ms;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        if (!draining) {
          draining = true;
          drain_start = std::chrono::steady_clock::now();
          // Stop accepting.
          if (listen_fd_ >= 0) {
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
            ::close(listen_fd_);
            listen_fd_ = -1;
          }
          // Idle keep-alive connections close now; connections with
          // in-flight work finish first (their responses render with
          // `Connection: close`).
          std::vector<std::shared_ptr<Conn>> all;
          for (const auto& [fd, conn] : conns_) all.push_back(conn);
          for (const auto& conn : all) {
            // A complete request already in the read buffer still counts as
            // in-flight: parse it before deciding the connection is idle.
            ParsePendingLocked(conn);
            DispatchIfReadyLocked(conn);
            if (!conn->busy && conn->pending.empty() && conn->wbuf.empty()) {
              CloseConnLocked(conn);
            } else {
              conn->want_close = true;
            }
          }
        }
        if (conns_.empty()) break;
        auto forced = std::chrono::steady_clock::now() - drain_start;
        if (std::chrono::duration_cast<std::chrono::milliseconds>(forced)
                .count() > kDrainForceCloseMs) {
          std::vector<std::shared_ptr<Conn>> all;
          for (const auto& [fd, conn] : conns_) all.push_back(conn);
          for (const auto& conn : all) CloseConnLocked(conn);
          break;
        }
        timeout_ms = 50;
      } else {
        timeout_ms = EpollTimeoutMsLocked();
      }
    }
    int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      GMREG_LOG(Warning) << "gmreg_serve: epoll_wait: "
                         << std::strerror(errno);
      break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptNewConnectionsLocked();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnLocked(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) ReadAndParseLocked(conn);
      if (!conn->closed && (events[i].events & EPOLLOUT)) FlushLocked(conn);
    }
    // Handler completions: flush their responses, resume any paused
    // pipelines, re-dispatch connections that accumulated more requests.
    std::vector<std::shared_ptr<Conn>> done;
    done.swap(flush_list_);
    for (const std::shared_ptr<Conn>& conn : done) {
      if (conn->closed) continue;
      FlushLocked(conn);
      if (conn->closed) continue;
      ParsePendingLocked(conn);
      DispatchIfReadyLocked(conn);
    }
    SweepLocked(std::chrono::steady_clock::now());
  }
}

int Server::EpollTimeoutMsLocked() const {
  if (conns_.empty()) return -1;  // nothing to sweep; wakes come via eventfd
  // Sweep resolution: a quarter of the idle timeout keeps reaping within
  // ~25% of the configured deadline without spinning.
  return std::clamp(options_.idle_timeout_ms / 4, 10, 500);
}

void Server::AcceptNewConnectionsLocked() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      conns_rejected_->Add(1);
      // Best-effort 503 so the client learns why; the socket buffer of a
      // fresh connection always has room for these few hundred bytes.
      std::string resp =
          RenderResponse(503, ErrorBody("connection limit reached"),
                         /*keep_alive=*/false, "Retry-After: 1\r\n");
      ssize_t ignored = ::send(fd, resp.data(), resp.size(),
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      (void)ignored;
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->last_activity = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_[fd] = std::move(conn);
    conns_accepted_->Add(1);
    open_conns_->Set(static_cast<double>(conns_.size()));
  }
}

void Server::ReadAndParseLocked(const std::shared_ptr<Conn>& conn) {
  char chunk[16384];
  for (;;) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->rbuf.append(chunk, static_cast<std::size_t>(n));
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n == 0) {
      // Peer closed. Responses it has not read can never be delivered.
      CloseConnLocked(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnLocked(conn);
    return;
  }
  ParsePendingLocked(conn);
  DispatchIfReadyLocked(conn);
}

void Server::ParsePendingLocked(const std::shared_ptr<Conn>& conn) {
  if (conn->want_close) return;  // a framing error already poisoned the pipe
  while (conn->pending.size() < kMaxPipelinedRequests) {
    std::string& buf = conn->rbuf;
    std::size_t header_end = buf.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (buf.size() > kMaxHeaderBytes) {
        HttpReq bad;
        bad.bad = true;
        bad.bad_reason = "request headers exceed 64KB";
        bad.parsed_at = std::chrono::steady_clock::now();
        conn->pending.push_back(std::move(bad));
        buf.clear();
      }
      return;
    }
    // Request line: METHOD SP TARGET SP HTTP/1.x
    std::size_t line_end = buf.find("\r\n");
    std::string request_line = buf.substr(0, line_end);
    std::size_t sp1 = request_line.find(' ');
    std::size_t sp2 = sp1 == std::string::npos
                          ? std::string::npos
                          : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        request_line.compare(sp2 + 1, 7, "HTTP/1.") != 0) {
      HttpReq bad;
      bad.bad = true;
      bad.bad_reason = "malformed HTTP request line";
      bad.parsed_at = std::chrono::steady_clock::now();
      conn->pending.push_back(std::move(bad));
      buf.clear();
      return;
    }
    bool http10 = request_line.compare(sp2 + 1, 8, "HTTP/1.0") == 0;

    // Headers: Content-Length frames the body, Connection decides
    // keep-alive (the HTTP/1.1 default) vs close.
    std::size_t content_length = 0;
    bool explicit_close = false;
    bool explicit_keepalive = false;
    std::size_t pos = line_end + 2;
    while (pos < header_end) {
      std::size_t eol = buf.find("\r\n", pos);
      std::string line = buf.substr(pos, eol - pos);
      pos = eol + 2;
      if (HeaderIs(line, "content-length:")) {
        const char* v = line.c_str() + std::strlen("content-length:");
        content_length =
            static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
      } else if (HeaderIs(line, "connection:")) {
        std::string value = TrimWhitespace(
            line.substr(std::strlen("connection:")));
        for (char& c : value) c = AsciiLower(c);
        if (value.find("close") != std::string::npos) explicit_close = true;
        if (value.find("keep-alive") != std::string::npos) {
          explicit_keepalive = true;
        }
      }
    }
    if (content_length > kMaxBodyBytes) {
      HttpReq bad;
      bad.bad = true;
      bad.bad_reason = "request body exceeds 8MB";
      bad.parsed_at = std::chrono::steady_clock::now();
      conn->pending.push_back(std::move(bad));
      buf.clear();
      return;
    }
    std::size_t total = header_end + 4 + content_length;
    if (buf.size() < total) return;  // body still in flight

    HttpReq req;
    req.method = request_line.substr(0, sp1);
    req.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    req.body = buf.substr(header_end + 4, content_length);
    req.keep_alive = http10 ? explicit_keepalive : !explicit_close;
    req.parsed_at = std::chrono::steady_clock::now();
    conn->pending.push_back(std::move(req));
    buf.erase(0, total);
  }
}

void Server::DispatchIfReadyLocked(const std::shared_ptr<Conn>& conn) {
  if (conn->closed || conn->busy || conn->pending.empty()) return;
  conn->busy = true;
  dispatch_queue_.push_back(conn);
  dispatch_cv_.notify_one();
}

void Server::FlushLocked(const std::shared_ptr<Conn>& conn) {
  while (!conn->wbuf.empty()) {
    ssize_t n = ::send(conn->fd, conn->wbuf.data(), conn->wbuf.size(),
                       MSG_NOSIGNAL);
    if (n > 0) {
      conn->wbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConnLocked(conn);
    return;
  }
  bool need_out = !conn->wbuf.empty();
  if (need_out != conn->epollout) {
    epoll_event ev{};
    ev.events = EPOLLIN | (need_out ? EPOLLOUT : 0u);
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->epollout = need_out;
  }
  if (conn->wbuf.empty() && conn->want_close && !conn->busy &&
      conn->pending.empty()) {
    CloseConnLocked(conn);
  }
}

void Server::CloseConnLocked(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  conn->fd = -1;
  conn->closed = true;
  open_conns_->Set(static_cast<double>(conns_.size()));
}

void Server::SweepLocked(std::chrono::steady_clock::time_point now) {
  std::vector<std::shared_ptr<Conn>> idle;
  for (const auto& [fd, conn] : conns_) {
    if (conn->busy || !conn->pending.empty() || !conn->wbuf.empty()) continue;
    auto quiet = std::chrono::duration_cast<std::chrono::milliseconds>(
                     now - conn->last_activity)
                     .count();
    if (quiet > options_.idle_timeout_ms) idle.push_back(conn);
  }
  for (const std::shared_ptr<Conn>& conn : idle) {
    // Covers both parked keep-alive connections and slow-loris peers
    // dribbling a partial request: no bytes for idle_timeout_ms -> gone.
    conns_idle_->Add(1);
    CloseConnLocked(conn);
  }
}

// ---------------------------------------------------------------------------
// Handler pool (JSON decode -> Batcher::Predict -> response render)
// ---------------------------------------------------------------------------

void Server::HandlerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    dispatch_cv_.wait(lock, [this] {
      return handlers_stop_ || !dispatch_queue_.empty();
    });
    if (dispatch_queue_.empty()) {
      if (handlers_stop_) return;
      continue;
    }
    std::shared_ptr<Conn> conn = dispatch_queue_.front();
    dispatch_queue_.pop_front();
    // This handler owns the connection's pending queue (conn->busy) until
    // it drains, which keeps pipelined responses in request order.
    while (!conn->pending.empty() && !conn->closed) {
      HttpReq req = std::move(conn->pending.front());
      conn->pending.pop_front();
      lock.unlock();
      int http_status = 500;
      std::string extra_headers;
      std::string body;
      if (req.bad) {
        http_status = 400;
        body = ErrorBody(req.bad_reason);
        req.keep_alive = false;
      } else {
        body = Dispatch(req.method, req.target, req.body, &http_status,
                        &extra_headers);
        double seconds =
            std::chrono::duration_cast<std::chrono::duration<double>>(
                std::chrono::steady_clock::now() - req.parsed_at)
                .count();
        ObserveEndpoint(req.target, seconds);
      }
      http_requests_->Add(1);
      if (http_status >= 400) http_errors_->Add(1);
      bool keep = req.keep_alive && !req.bad &&
                  !stopping_.load(std::memory_order_acquire);
      std::string response =
          RenderResponse(http_status, body, keep, extra_headers);
      lock.lock();
      if (!conn->closed) {
        conn->wbuf += response;
        conn->served += 1;
        if (conn->served > 1) keepalive_reuse_->Add(1);
        if (!keep) conn->want_close = true;
        conn->last_activity = std::chrono::steady_clock::now();
      }
    }
    conn->busy = false;
    flush_list_.push_back(conn);
    lock.unlock();
    WakeLoop();
    lock.lock();
  }
}

void Server::ObserveEndpoint(const std::string& target, double seconds) {
  std::string path = target.substr(0, target.find('?'));
  EndpointStats* ep = &ep_other_;
  if (path == "/v1/predict") {
    ep = &ep_predict_;
  } else if (path == "/healthz") {
    ep = &ep_healthz_;
  } else if (path == "/metrics") {
    ep = &ep_metrics_;
  }
  ep->latency->Observe(seconds);
  if (seconds * 1000.0 > options_.slo_ms) ep->slo_violations->Add(1);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

std::string Server::Dispatch(const std::string& method,
                             const std::string& target,
                             const std::string& body, int* http_status,
                             std::string* extra_headers) {
  std::string path = target.substr(0, target.find('?'));
  if (path == "/healthz") {
    if (method != "GET") {
      *http_status = 405;
      return ErrorBody("use GET " + path);
    }
    return HandleHealth(http_status);
  }
  if (path == "/metrics") {
    if (method != "GET") {
      *http_status = 405;
      return ErrorBody("use GET " + path);
    }
    *http_status = 200;
    return RecordToJson(MetricsRegistry::Global().Snapshot("metrics"));
  }
  if (path == "/v1/predict") {
    if (method != "POST") {
      *http_status = 405;
      return ErrorBody("use POST " + path);
    }
    return HandlePredict(body, http_status, extra_headers);
  }
  *http_status = 404;
  return ErrorBody("no route for '" + path + "'");
}

std::string Server::HandleHealth(int* http_status) {
  std::shared_ptr<const LoadedModel> current = registry_->Current();
  JsonWriter w;
  w.BeginObject();
  if (current == nullptr) {
    *http_status = 503;
    w.Key("status").String("unavailable");
    w.Key("error").String("no model loaded yet");
  } else {
    *http_status = 200;
    w.Key("status").String("ok");
    w.Key("model").String(spec_.name);
    w.Key("model_version").Int(current->version);
    w.Key("model_epoch").Int(current->snapshot.epoch);
    w.Key("checkpoint").String(registry_->checkpoint_path());
  }
  w.EndObject();
  return w.str();
}

std::string Server::HandlePredict(const std::string& body, int* http_status,
                                  std::string* extra_headers) {
  JsonValue doc;
  Status st = JsonValue::Parse(body, &doc);
  if (!st.ok() || !doc.is_object()) {
    *http_status = 400;
    return ErrorBody("request body is not a JSON object: " +
                     (st.ok() ? std::string("wrong type") : st.ToString()));
  }
  const JsonValue* inputs = doc.Find("inputs");
  const JsonValue* single = doc.Find("input");
  std::vector<const JsonValue*> rows;
  if (inputs != nullptr && inputs->is_array()) {
    for (const JsonValue& item : inputs->items) rows.push_back(&item);
  } else if (single != nullptr && single->is_array()) {
    rows.push_back(single);
  } else {
    *http_status = 400;
    return ErrorBody(
        "expected \"inputs\": [[...], ...] or \"input\": [...]");
  }
  if (rows.empty() ||
      static_cast<int>(rows.size()) > kMaxRowsPerRequest) {
    *http_status = 400;
    return ErrorBody(StrFormat("want 1..%d input rows, got %d",
                               kMaxRowsPerRequest,
                               static_cast<int>(rows.size())));
  }

  std::int64_t row_size = ShapeSize(spec_.input_shape);
  std::vector<Batcher::Reply> replies(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const JsonValue& row = *rows[r];
    if (!row.is_array() ||
        static_cast<std::int64_t>(row.items.size()) != row_size) {
      *http_status = 400;
      return ErrorBody(StrFormat(
          "input row %d must be a flat array of %d numbers (model '%s')",
          static_cast<int>(r), static_cast<int>(row_size),
          spec_.name.c_str()));
    }
    Tensor example(spec_.input_shape);
    for (std::int64_t i = 0; i < row_size; ++i) {
      const JsonValue& v = row.items[static_cast<std::size_t>(i)];
      if (!v.is_number()) {
        *http_status = 400;
        return ErrorBody(StrFormat("input row %d element %d is not a number",
                                   static_cast<int>(r), static_cast<int>(i)));
      }
      example[i] = static_cast<float>(v.number);
    }
    // Rows ride the shared micro-batching queue one by one, coalescing with
    // every other in-flight request in the process.
    st = batcher_->Predict(example, &replies[r]);
    if (!st.ok()) {
      *http_status = HttpStatusFor(st);
      if (*http_status == 429) {
        // Load shed, not a drop: tell the client when the queue should
        // have drained so a well-behaved retry lands in free capacity.
        shed_->Add(1);
        *extra_headers += StrFormat("Retry-After: %d\r\n",
                                    batcher_->RetryAfterSeconds());
      }
      return ErrorBody(st.ToString());
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("model_version").Int(replies[0].model_version);
  w.Key("model_epoch").Int(replies[0].model_epoch);
  w.Key("outputs").BeginArray();
  for (const Batcher::Reply& reply : replies) {
    w.BeginArray();
    for (std::int64_t i = 0; i < reply.output.size(); ++i) {
      w.Double(static_cast<double>(reply.output[i]));
    }
    w.EndArray();
  }
  w.EndArray();
  w.Key("predictions").BeginArray();
  for (const Batcher::Reply& reply : replies) {
    std::int64_t best = 0;
    for (std::int64_t i = 1; i < reply.output.size(); ++i) {
      if (reply.output[i] > reply.output[best]) best = i;
    }
    w.Int(best);
  }
  w.EndArray();
  w.EndObject();
  *http_status = 200;
  return w.str();
}

// ---------------------------------------------------------------------------
// Loopback client (Content-Length framed; keep-alive capable)
// ---------------------------------------------------------------------------

std::string HttpClient::Serialize(const std::string& method,
                                  const std::string& target,
                                  const std::string& body, bool close_conn) {
  return method + " " + target + " HTTP/1.1\r\n" +
         "Host: 127.0.0.1\r\n"
         "Content-Type: application/json\r\n" +
         StrFormat("Content-Length: %d\r\n", static_cast<int>(body.size())) +
         (close_conn ? "Connection: close\r\n" : "") + "\r\n" + body;
}

Status HttpClient::Connect() {
  if (fd_ >= 0) return Status::Ok();
  GMREG_RETURN_IF_ERROR(ConnectLoopback(port_, &fd_));
  buf_.clear();
  return Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buf_.clear();
}

Status HttpClient::SendRaw(const std::string& bytes) {
  GMREG_RETURN_IF_ERROR(Connect());
  if (!SendAll(fd_, bytes)) {
    Close();
    return Status::Internal("send failed");
  }
  return Status::Ok();
}

Status HttpClient::ReadResponse(int* status_code, std::string* response_body,
                                std::string* response_headers) {
  GMREG_CHECK(status_code != nullptr);
  GMREG_CHECK(response_body != nullptr);
  if (fd_ < 0) return Status::Internal("not connected");
  char chunk[8192];
  std::size_t header_end;
  while ((header_end = buf_.find("\r\n\r\n")) == std::string::npos) {
    if (buf_.size() > kMaxHeaderBytes) {
      Close();
      return Status::Internal("oversized response headers");
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return Status::Internal("connection closed before response headers");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
  std::size_t line_end = buf_.find("\r\n");
  std::string status_line = buf_.substr(0, line_end);
  std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos) {
    Close();
    return Status::Internal("malformed HTTP status line: '" + status_line +
                            "'");
  }
  *status_code = std::atoi(status_line.c_str() + sp + 1);
  std::string headers =
      buf_.substr(line_end + 2, header_end - line_end - 2);
  if (response_headers != nullptr) *response_headers = headers;

  // Content-Length framing — never read-until-EOF, so the connection
  // survives for the next request and a peer that delays close cannot
  // stall us.
  std::size_t content_length = 0;
  std::string length_value = FindHeader(headers, "content-length");
  if (!length_value.empty()) {
    content_length = static_cast<std::size_t>(
        std::strtoull(length_value.c_str(), nullptr, 10));
  }
  std::size_t total = header_end + 4 + content_length;
  while (buf_.size() < total) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return Status::Internal("connection closed mid-body");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
  *response_body = buf_.substr(header_end + 4, content_length);
  buf_.erase(0, total);  // keep pipelined follow-ups

  std::string conn_header = FindHeader(headers, "connection");
  for (char& c : conn_header) c = AsciiLower(c);
  if (conn_header.find("close") != std::string::npos) Close();
  return Status::Ok();
}

Status HttpClient::Request(const std::string& method,
                           const std::string& target, const std::string& body,
                           int* status_code, std::string* response_body,
                           std::string* response_headers) {
  GMREG_RETURN_IF_ERROR(SendRaw(Serialize(method, target, body)));
  return ReadResponse(status_code, response_body, response_headers);
}

std::string FindHeader(const std::string& headers, const std::string& name) {
  std::size_t pos = 0;
  std::string prefix = name + ":";
  for (char& c : prefix) c = AsciiLower(c);
  while (pos < headers.size()) {
    std::size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    std::string line = headers.substr(pos, eol - pos);
    if (HeaderIs(line, prefix.c_str())) {
      return TrimWhitespace(line.substr(prefix.size()));
    }
    pos = eol + 2;
  }
  return "";
}

Status HttpRequest(int port, const std::string& method,
                   const std::string& target, const std::string& body,
                   int* status_code, std::string* response_body) {
  GMREG_CHECK(status_code != nullptr);
  GMREG_CHECK(response_body != nullptr);
  HttpClient client(port);
  GMREG_RETURN_IF_ERROR(
      client.SendRaw(HttpClient::Serialize(method, target, body,
                                           /*close_conn=*/true)));
  return client.ReadResponse(status_code, response_body);
}

}  // namespace gmreg
