#ifndef GMREG_SERVE_SERVER_H_
#define GMREG_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/inference_session.h"
#include "serve/model_registry.h"
#include "util/status.h"

namespace gmreg {

/// Configuration of one serving endpoint.
struct ServerOptions {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port (the
  /// tests do this) — read the result back from Server::port().
  int port = 8080;
  /// Micro-batching knobs; num_workers also sets the number of
  /// InferenceSession replicas.
  BatcherOptions batcher;
  /// When > 0, the registry's checkpoint watcher is started with this poll
  /// interval, so re-training hot-swaps the model without a restart.
  int reload_poll_ms = 0;
};

/// Minimal HTTP/1.1 JSON prediction server over POSIX sockets — the
/// serving front door of docs/SERVING.md:
///
///   POST /v1/predict   {"inputs": [[...], ...]} or {"input": [...]}
///                      -> {"model_version":V,"model_epoch":E,
///                          "outputs":[[scores...],...],
///                          "predictions":[argmax,...]}
///   GET  /healthz      {"status":"ok",...} (503 before the first load)
///   GET  /metrics      one MetricsRegistry snapshot as a JSON object
///
/// Request flow: connection thread -> JSON parse -> one Batcher::Predict
/// per input row (micro-batched with every other in-flight request) ->
/// InferenceSession (per batcher worker) -> Layer::Predict on the
/// registry's current snapshot.
///
/// Stop() is a graceful drain: stop accepting, finish open connections,
/// drain the batcher queue. gmreg_serve wires SIGTERM/SIGINT to it.
class Server {
 public:
  /// `registry` is not owned and must outlive the server. `spec` supplies
  /// the per-worker model factory and the input shape requests are
  /// validated against.
  Server(ModelRegistry* registry, const ModelSpec& spec,
         const ServerOptions& options);
  ~Server();  ///< implies Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop plus the batcher workers
  /// (and the registry watcher when reload_poll_ms > 0). InvalidArgument /
  /// Internal on socket failures (e.g. the port is taken).
  Status Start();

  /// Graceful shutdown; safe to call from a signal-driven path and
  /// idempotent.
  void Stop();

  /// The bound port (resolves port 0); -1 before Start().
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  /// Routes one parsed request; returns the response body and sets
  /// `*http_status`.
  std::string Dispatch(const std::string& method, const std::string& target,
                       const std::string& body, int* http_status);
  std::string HandlePredict(const std::string& body, int* http_status);
  std::string HandleHealth(int* http_status);

  ModelRegistry* registry_;
  ModelSpec spec_;
  ServerOptions options_;

  std::unique_ptr<Batcher> batcher_;
  std::vector<std::unique_ptr<InferenceSession>> sessions_;  // one per worker

  int listen_fd_ = -1;
  int port_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  bool watcher_started_ = false;

  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  int active_connections_ = 0;

  Counter* http_requests_;  ///< gm.serve.http_requests
  Counter* http_errors_;    ///< gm.serve.http_errors (status >= 400)
};

/// Minimal loopback HTTP/1.1 client for the tests and CI smoke checks:
/// sends one `method target` request with `body` to 127.0.0.1:port, parses
/// the status line into `*status_code` and the payload into
/// `*response_body`. Internal on connect/IO failures.
Status HttpRequest(int port, const std::string& method,
                   const std::string& target, const std::string& body,
                   int* status_code, std::string* response_body);

}  // namespace gmreg

#endif  // GMREG_SERVE_SERVER_H_
