#ifndef GMREG_SERVE_SERVER_H_
#define GMREG_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/inference_session.h"
#include "serve/model_registry.h"
#include "util/status.h"

namespace gmreg {

/// Configuration of one serving endpoint.
struct ServerOptions {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port (the
  /// tests do this) — read the result back from Server::port().
  int port = 8080;
  /// Micro-batching knobs; num_workers also sets the number of
  /// InferenceSession replicas.
  BatcherOptions batcher;
  /// When > 0, the registry's checkpoint watcher is started with this poll
  /// interval, so re-training hot-swaps the model without a restart.
  int reload_poll_ms = 0;
  /// Keep-alive connections with no in-flight work and no bytes received
  /// for this long are closed (also the slow-loris guard: a connection
  /// that dribbles a partial request and then stalls is reaped).
  int idle_timeout_ms = 10000;
  /// Hard cap on concurrently open client connections. Connections past
  /// the cap are answered 503 + Connection: close immediately
  /// (gm.serve.conns_rejected).
  int max_connections = 1024;
  /// Threads executing parsed requests (JSON decode -> Batcher::Predict ->
  /// response render). This bounds the requests concurrently in flight
  /// toward the batcher, so keep it >= the micro-batch size the batcher
  /// should be able to fill.
  int num_handler_threads = 8;
  /// Per-request latency objective: requests slower than this (parse
  /// complete -> response rendered) increment the per-endpoint
  /// gm.serve.endpoint.<name>.slo_violations counter.
  double slo_ms = 250.0;
  /// Serve with int8 per-row-scale quantized weights: Start() turns on
  /// publish-time quantization in the registry and binds every inference
  /// session to the quantized snapshots (docs/KERNELS.md documents the
  /// divergence bound vs float32; gm.serve.quantized_requests counts
  /// examples answered through the path).
  bool quantize = false;
};

/// HTTP/1.1 JSON prediction server — the serving front door of
/// docs/SERVING.md:
///
///   POST /v1/predict   {"inputs": [[...], ...]} or {"input": [...]}
///                      -> {"model_version":V,"model_epoch":E,
///                          "outputs":[[scores...],...],
///                          "predictions":[argmax,...]}
///   GET  /healthz      {"status":"ok",...} (503 before the first load)
///   GET  /metrics      one MetricsRegistry snapshot as a JSON object
///
/// Transport: one epoll event-loop thread owns every socket — accept,
/// non-blocking reads into per-connection buffers, incremental HTTP/1.1
/// parsing (keep-alive and pipelined requests), response writes, idle
/// timeouts, and the max-connection cap. Parsed requests are executed in
/// order per connection by a small handler pool (num_handler_threads),
/// each handler blocking in Batcher::Predict so concurrent requests
/// coalesce into micro-batches; responses are handed back to the loop
/// through a wakeup eventfd.
///
/// Admission control: when the batcher queue is saturated the request is
/// shed with 429 + a Retry-After header estimated from the queue's drain
/// rate — the connection stays open, nothing is dropped on the floor.
///
/// Stop() is a graceful drain: stop accepting, answer everything already
/// parsed, flush, close. gmreg_serve wires SIGTERM/SIGINT to it.
class Server {
 public:
  /// `registry` is not owned and must outlive the server. `spec` supplies
  /// the per-worker model factory and the input shape requests are
  /// validated against.
  Server(ModelRegistry* registry, const ModelSpec& spec,
         const ServerOptions& options);
  ~Server();  ///< implies Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop, the handler pool, and the
  /// batcher workers (and the registry watcher when reload_poll_ms > 0).
  /// InvalidArgument / Internal on socket failures (e.g. the port is
  /// taken).
  Status Start();

  /// Graceful shutdown; safe to call from a signal-driven path and
  /// idempotent. In-flight requests are answered (with
  /// `Connection: close`), idle keep-alive connections are closed, then
  /// the batcher drains.
  void Stop();

  /// The bound port (resolves port 0); -1 before Start().
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Currently open client connections (tests poll this).
  int open_connections() const;

 private:
  /// One parsed HTTP request, or a framing error carried in order so the
  /// 400 response does not overtake earlier pipelined replies.
  struct HttpReq {
    std::string method;
    std::string target;
    std::string body;
    bool keep_alive = true;
    bool bad = false;        ///< framing/size violation -> 400 + close
    std::string bad_reason;  ///< error body for bad requests
    std::chrono::steady_clock::time_point parsed_at;
  };

  /// Per-connection state. All fields are guarded by mu_; the event-loop
  /// thread is the only one touching the fd, handlers only append to
  /// wbuf/pending bookkeeping.
  struct Conn {
    int fd = -1;
    std::string rbuf;             ///< unparsed inbound bytes
    std::string wbuf;             ///< rendered responses awaiting send
    std::deque<HttpReq> pending;  ///< parsed requests not yet executed
    bool busy = false;        ///< a handler owns this connection's pending
    bool want_close = false;  ///< close once wbuf drains and pending empty
    bool closed = false;      ///< fd already closed; late output is dropped
    bool epollout = false;    ///< EPOLLOUT currently armed
    std::int64_t served = 0;  ///< requests answered on this connection
    std::chrono::steady_clock::time_point last_activity;
  };

  void EventLoop();
  void HandlerLoop();

  // All helpers below run on the event-loop thread with mu_ held (the
  // sockets are non-blocking, so syscalls under the lock are brief).
  void AcceptNewConnectionsLocked();
  void ReadAndParseLocked(const std::shared_ptr<Conn>& conn);
  void ParsePendingLocked(const std::shared_ptr<Conn>& conn);
  void FlushLocked(const std::shared_ptr<Conn>& conn);
  void DispatchIfReadyLocked(const std::shared_ptr<Conn>& conn);
  void CloseConnLocked(const std::shared_ptr<Conn>& conn);
  void SweepLocked(std::chrono::steady_clock::time_point now);
  int EpollTimeoutMsLocked() const;

  void WakeLoop();  ///< eventfd write; callable from any thread

  /// Routes one parsed request; returns the response body, sets
  /// `*http_status`, and may append extra response headers (e.g.
  /// `Retry-After` on 429) to `*extra_headers`.
  std::string Dispatch(const std::string& method, const std::string& target,
                       const std::string& body, int* http_status,
                       std::string* extra_headers);
  std::string HandlePredict(const std::string& body, int* http_status,
                            std::string* extra_headers);
  std::string HandleHealth(int* http_status);

  /// Per-endpoint latency + SLO accounting (gm.serve.endpoint.*).
  void ObserveEndpoint(const std::string& target, double seconds);

  ModelRegistry* registry_;
  ModelSpec spec_;
  ServerOptions options_;

  std::unique_ptr<Batcher> batcher_;
  std::vector<std::unique_ptr<InferenceSession>> sessions_;  // one per worker

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int port_ = -1;
  std::thread loop_thread_;
  std::vector<std::thread> handler_threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  bool watcher_started_ = false;

  mutable std::mutex mu_;
  std::map<int, std::shared_ptr<Conn>> conns_;  ///< fd -> state
  std::deque<std::shared_ptr<Conn>> dispatch_queue_;
  std::vector<std::shared_ptr<Conn>> flush_list_;  ///< handler -> loop
  std::condition_variable dispatch_cv_;
  bool handlers_stop_ = false;

  Counter* http_requests_;    ///< gm.serve.http_requests
  Counter* http_errors_;      ///< gm.serve.http_errors (status >= 400)
  Counter* conns_accepted_;   ///< gm.serve.conns_accepted
  Counter* conns_rejected_;   ///< gm.serve.conns_rejected (over the cap)
  Counter* conns_idle_;       ///< gm.serve.conns_idle_closed
  Counter* keepalive_reuse_;  ///< gm.serve.keepalive_reuses
  Counter* shed_;             ///< gm.serve.shed_requests (429 + Retry-After)
  Gauge* open_conns_;         ///< gm.serve.open_connections

  struct EndpointStats {
    Histogram* latency;       ///< gm.serve.endpoint.<name>.latency_seconds
    Counter* slo_violations;  ///< gm.serve.endpoint.<name>.slo_violations
  };
  EndpointStats ep_predict_;
  EndpointStats ep_healthz_;
  EndpointStats ep_metrics_;
  EndpointStats ep_other_;
};

/// Minimal loopback HTTP/1.1 client for tests, benches and CI smoke
/// checks. Responses are framed by Content-Length (never read-until-EOF),
/// so one connection carries many requests (keep-alive) and survives peers
/// that delay close. Not thread-safe; one client per thread.
class HttpClient {
 public:
  explicit HttpClient(int port) : port_(port) {}
  ~HttpClient() { Close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to 127.0.0.1:port; no-op when already connected.
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One request/response round trip on the persistent connection
  /// (connecting first if needed). `response_headers`, when non-null,
  /// receives the raw header block (status line excluded).
  Status Request(const std::string& method, const std::string& target,
                 const std::string& body, int* status_code,
                 std::string* response_body,
                 std::string* response_headers = nullptr);

  /// Low-level halves of Request, exposed so tests can pipeline: write
  /// several serialized requests back-to-back, then read the responses in
  /// order.
  Status SendRaw(const std::string& bytes);
  Status ReadResponse(int* status_code, std::string* response_body,
                      std::string* response_headers = nullptr);

  /// Serializes one HTTP/1.1 request (keep-alive unless `close_conn`).
  static std::string Serialize(const std::string& method,
                               const std::string& target,
                               const std::string& body,
                               bool close_conn = false);

 private:
  int port_;
  int fd_ = -1;
  std::string buf_;  ///< bytes read past the previous response
};

/// Case-insensitive lookup of `name` in a raw header block as returned by
/// HttpClient::Request; empty string when absent.
std::string FindHeader(const std::string& headers, const std::string& name);

/// One-shot convenience wrapper (connect, `Connection: close` request,
/// parse, disconnect): sends one `method target` request with `body` to
/// 127.0.0.1:port, parses the status line into `*status_code` and the
/// payload into `*response_body`. Internal on connect/IO failures.
Status HttpRequest(int port, const std::string& method,
                   const std::string& target, const std::string& body,
                   int* status_code, std::string* response_body);

}  // namespace gmreg

#endif  // GMREG_SERVE_SERVER_H_
