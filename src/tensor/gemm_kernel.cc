#include "tensor/gemm_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/arena.h"

namespace gmreg {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernel tier. The accumulation orders here are the contract: the
// SIMD tier performs the same per-element operation sequences (modulo FMA
// contraction, see docs/KERNELS.md), so results agree to rounding and the
// blocked driver is free to dispatch either.
// ---------------------------------------------------------------------------

void GemmMicroScalar(std::int64_t kc, float alpha, const float* ap,
                     const float* bp, float* c, std::int64_t ldc,
                     std::int64_t mr, std::int64_t nr, bool overwrite) {
  float acc[kGemmMR][kGemmNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* b_row = bp + p * kGemmNR;
    const float* a_col = ap + p * kGemmMR;
    for (std::int64_t r = 0; r < kGemmMR; ++r) {
      float av = a_col[r];
      for (std::int64_t j = 0; j < kGemmNR; ++j) acc[r][j] += av * b_row[j];
    }
  }
  if (overwrite) {
    for (std::int64_t r = 0; r < mr; ++r) {
      float* c_row = c + r * ldc;
      for (std::int64_t j = 0; j < nr; ++j) c_row[j] = alpha * acc[r][j];
    }
  } else {
    for (std::int64_t r = 0; r < mr; ++r) {
      float* c_row = c + r * ldc;
      for (std::int64_t j = 0; j < nr; ++j) c_row[j] += alpha * acc[r][j];
    }
  }
}

void AxpyScalar(std::int64_t n, float alpha, const float* x, float* y) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void AddRowBroadcastScalar(std::int64_t rows, std::int64_t cols,
                           const float* row, float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    float* o = out + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) o[j] += row[j];
  }
}

void AddColBroadcastScalar(std::int64_t rows, std::int64_t cols,
                           const float* col, float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    float v = col[i];
    float* o = out + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) o[j] += v;
  }
}

void ColSumsAccumScalar(std::int64_t rows, std::int64_t cols, const float* m,
                        float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* r = m + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) out[j] += r[j];
  }
}

void RowSumsAccumScalar(std::int64_t rows, std::int64_t cols, const float* m,
                        float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* r = m + i * cols;
    float acc = 0.0f;
    for (std::int64_t j = 0; j < cols; ++j) acc += r[j];
    out[i] += acc;
  }
}

void ReluForwardScalar(std::int64_t n, const float* in, float* out,
                       unsigned char* mask) {
  if (mask != nullptr) {
    for (std::int64_t i = 0; i < n; ++i) {
      bool pos = in[i] > 0.0f;
      mask[i] = pos ? 1 : 0;
      out[i] = pos ? in[i] : 0.0f;
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
}

void ReluBackwardScalar(std::int64_t n, const float* gout,
                        const unsigned char* mask, float* gin) {
  for (std::int64_t i = 0; i < n; ++i) gin[i] = mask[i] ? gout[i] : 0.0f;
}

constexpr KernelOps kScalarOps = {
    "scalar",         GemmMicroScalar,      AxpyScalar,
    AddRowBroadcastScalar, AddColBroadcastScalar, ColSumsAccumScalar,
    RowSumsAccumScalar,    ReluForwardScalar,     ReluBackwardScalar,
};

std::atomic<bool> g_force_scalar{false};

// Resolves the SIMD tier once: compiled-in + CPU support (checked by
// GetSimdKernelOpsOrNull) + not disabled via GMREG_SIMD=0|off.
const KernelOps* ResolvedSimdOps() {
  static const KernelOps* ops = [] {
    const char* env = std::getenv("GMREG_SIMD");
    if (env != nullptr) {
      std::string v(env);
      if (v == "0" || v == "off" || v == "OFF") return (const KernelOps*)nullptr;
    }
    return internal::GetSimdKernelOpsOrNull();
  }();
  return ops;
}

}  // namespace

const KernelOps& GetKernelOps() {
  const KernelOps* simd = g_force_scalar.load(std::memory_order_relaxed)
                              ? nullptr
                              : ResolvedSimdOps();
  return simd != nullptr ? *simd : kScalarOps;
}

bool SimdKernelsEnabled() { return &GetKernelOps() != &kScalarOps; }

namespace internal {

void ForceScalarKernelsForTesting(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

}  // namespace internal

void PackB(bool trans_b, const float* b, std::int64_t ldb, std::int64_t k,
           std::int64_t n, float* bp) {
  std::int64_t n_round = RoundUpN(n);
  for (std::int64_t p0 = 0; p0 < k; p0 += kGemmKC) {
    std::int64_t kc = std::min(kGemmKC, k - p0);
    float* slab = bp + p0 * n_round;
    for (std::int64_t j0 = 0; j0 < n; j0 += kGemmNR) {
      std::int64_t nr = std::min(kGemmNR, n - j0);
      float* tile = slab + (j0 / kGemmNR) * kc * kGemmNR;
      if (nr < kGemmNR) {
        std::memset(tile, 0,
                    static_cast<std::size_t>(kc * kGemmNR) * sizeof(float));
      }
      if (!trans_b) {
        // op(B)[p][j] = B[p][j]: contiguous row reads.
        for (std::int64_t p = 0; p < kc; ++p) {
          const float* src = b + (p0 + p) * ldb + j0;
          float* dst = tile + p * kGemmNR;
          for (std::int64_t j = 0; j < nr; ++j) dst[j] = src[j];
        }
      } else {
        // op(B)[p][j] = B[j][p]: contiguous reads along p per output column.
        for (std::int64_t j = 0; j < nr; ++j) {
          const float* src = b + (j0 + j) * ldb + p0;
          float* dst = tile + j;
          for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmNR] = src[p];
        }
      }
    }
  }
}

void PackA(bool trans_a, const float* a, std::int64_t lda, std::int64_t i0,
           std::int64_t mc, std::int64_t p0, std::int64_t kc, float* ap) {
  for (std::int64_t r0 = 0; r0 < mc; r0 += kGemmMR) {
    std::int64_t mr = std::min(kGemmMR, mc - r0);
    float* tile = ap + (r0 / kGemmMR) * kc * kGemmMR;
    if (mr < kGemmMR) {
      std::memset(tile, 0,
                  static_cast<std::size_t>(kc * kGemmMR) * sizeof(float));
    }
    if (!trans_a) {
      // op(A)[i][p] = A[i][p]: contiguous row reads.
      for (std::int64_t r = 0; r < mr; ++r) {
        const float* src = a + (i0 + r0 + r) * lda + p0;
        float* dst = tile + r;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmMR] = src[p];
      }
    } else {
      // op(A)[i][p] = A[p][i]: contiguous reads along i per p.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = a + (p0 + p) * lda + i0 + r0;
        float* dst = tile + p * kGemmMR;
        for (std::int64_t r = 0; r < mr; ++r) dst[r] = src[r];
      }
    }
  }
}

void GemmPackedRows(bool trans_a, std::int64_t i0, std::int64_t i1,
                    std::int64_t n, std::int64_t k, float alpha,
                    const float* a, std::int64_t lda, const float* bp,
                    float beta, float* c, std::int64_t ldc) {
  // Scale this shard's C rows first, exactly once. For beta == 0 there is
  // nothing to scale: C is never read, and the first k slab's micro-kernel
  // calls overwrite every element instead (each element belongs to exactly
  // one tile per slab). Clear explicitly only in the degenerate k <= 0 case.
  bool overwrite_first = (beta == 0.0f);
  if (beta == 0.0f) {
    if (k <= 0) {
      for (std::int64_t i = i0; i < i1; ++i) {
        std::memset(c + i * ldc, 0,
                    static_cast<std::size_t>(n) * sizeof(float));
      }
    }
  } else if (beta != 1.0f) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* row = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  const KernelOps& ops = GetKernelOps();
  std::int64_t n_round = RoundUpN(n);
  // Per-worker A pack, bounded at MC x KC floats and reused across calls.
  // Arena-served (ScratchBuffer) so a pool worker whose first GEMM lands
  // mid-run sizes it from the slab, not the heap — the zero-alloc contract
  // must hold whichever workers the ticket race picks (docs/MEMORY.md).
  thread_local ScratchBuffer<float> apack_buf;
  float* apack =
      apack_buf.EnsureCapacity(static_cast<std::size_t>(kGemmMC * kGemmKC));
  for (std::int64_t p0 = 0; p0 < k; p0 += kGemmKC) {
    std::int64_t kc = std::min(kGemmKC, k - p0);
    const float* slab = bp + p0 * n_round;
    for (std::int64_t ic = i0; ic < i1; ic += kGemmMC) {
      std::int64_t mc = std::min(kGemmMC, i1 - ic);
      PackA(trans_a, a, lda, ic, mc, p0, kc, apack);
      for (std::int64_t j0 = 0; j0 < n; j0 += kGemmNR) {
        std::int64_t nr = std::min(kGemmNR, n - j0);
        const float* b_tile = slab + (j0 / kGemmNR) * kc * kGemmNR;
        for (std::int64_t r0 = 0; r0 < mc; r0 += kGemmMR) {
          std::int64_t mr = std::min(kGemmMR, mc - r0);
          const float* a_tile = apack + (r0 / kGemmMR) * kc * kGemmMR;
          ops.gemm_micro(kc, alpha, a_tile, b_tile,
                         c + (ic + r0) * ldc + j0, ldc, mr, nr,
                         overwrite_first && p0 == 0);
        }
      }
    }
  }
}

}  // namespace gmreg
