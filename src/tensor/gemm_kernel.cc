#include "tensor/gemm_kernel.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/arena.h"

namespace gmreg {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernel tier. The accumulation orders here are the contract: the
// SIMD tiers perform the same per-element operation sequences (modulo FMA
// contraction, see docs/KERNELS.md), so results agree to rounding and the
// blocked driver is free to dispatch any of them.
// ---------------------------------------------------------------------------

// The scalar tier keeps the 6x16 register tile of the original AVX2 kernel:
// a tile shape shared with the AVX2 tier means the two produce identical
// slab groupings, which keeps the scalar-vs-simd cross-check tolerance down
// to FMA contraction alone.
constexpr std::int64_t kScalarMR = 6;
constexpr std::int64_t kScalarNR = 16;

void GemmMicroScalar(std::int64_t kc, float alpha, const float* ap,
                     const float* bp, float* c, std::int64_t ldc,
                     std::int64_t mr, std::int64_t nr, bool overwrite) {
  float acc[kScalarMR][kScalarNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* b_row = bp + p * kScalarNR;
    const float* a_col = ap + p * kScalarMR;
    for (std::int64_t r = 0; r < kScalarMR; ++r) {
      float av = a_col[r];
      for (std::int64_t j = 0; j < kScalarNR; ++j) acc[r][j] += av * b_row[j];
    }
  }
  if (overwrite) {
    for (std::int64_t r = 0; r < mr; ++r) {
      float* c_row = c + r * ldc;
      for (std::int64_t j = 0; j < nr; ++j) c_row[j] = alpha * acc[r][j];
    }
  } else {
    for (std::int64_t r = 0; r < mr; ++r) {
      float* c_row = c + r * ldc;
      for (std::int64_t j = 0; j < nr; ++j) c_row[j] += alpha * acc[r][j];
    }
  }
}

void AxpyScalar(std::int64_t n, float alpha, const float* x, float* y) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void AddRowBroadcastScalar(std::int64_t rows, std::int64_t cols,
                           const float* row, float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    float* o = out + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) o[j] += row[j];
  }
}

void AddColBroadcastScalar(std::int64_t rows, std::int64_t cols,
                           const float* col, float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    float v = col[i];
    float* o = out + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) o[j] += v;
  }
}

void ColSumsAccumScalar(std::int64_t rows, std::int64_t cols, const float* m,
                        float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* r = m + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) out[j] += r[j];
  }
}

void RowSumsAccumScalar(std::int64_t rows, std::int64_t cols, const float* m,
                        float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* r = m + i * cols;
    float acc = 0.0f;
    for (std::int64_t j = 0; j < cols; ++j) acc += r[j];
    out[i] += acc;
  }
}

void ReluForwardScalar(std::int64_t n, const float* in, float* out,
                       unsigned char* mask) {
  if (mask != nullptr) {
    for (std::int64_t i = 0; i < n; ++i) {
      bool pos = in[i] > 0.0f;
      mask[i] = pos ? 1 : 0;
      out[i] = pos ? in[i] : 0.0f;
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
}

void ReluBackwardScalar(std::int64_t n, const float* gout,
                        const unsigned char* mask, float* gin) {
  for (std::int64_t i = 0; i < n; ++i) gin[i] = mask[i] ? gout[i] : 0.0f;
}

constexpr KernelOps kScalarOps = {
    "scalar",
    KernelTier::kScalar,
    kScalarMR,
    kScalarNR,
    GemmMicroScalar,
    AxpyScalar,
    AddRowBroadcastScalar,
    AddColBroadcastScalar,
    ColSumsAccumScalar,
    RowSumsAccumScalar,
    ReluForwardScalar,
    ReluBackwardScalar,
};

// ---------------------------------------------------------------------------
// Tier resolution. The env override names a *ceiling*; the dispatcher walks
// down from it to the best tier that is compiled in and CPU-supported, so
// GMREG_SIMD=avx512 on an AVX2-only machine degrades gracefully.
// ---------------------------------------------------------------------------

const KernelOps* TierTableOrNull(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return &kScalarOps;
    case KernelTier::kAvx2:
      return internal::GetAvx2KernelOpsOrNull();
    case KernelTier::kAvx512:
      return internal::GetAvx512KernelOpsOrNull();
  }
  return nullptr;
}

const KernelOps& BestTierAtOrBelow(KernelTier ceiling) {
  for (int t = static_cast<int>(ceiling); t > 0; --t) {
    const KernelOps* ops = TierTableOrNull(static_cast<KernelTier>(t));
    if (ops != nullptr) return *ops;
  }
  return kScalarOps;
}

KernelTier ParseTierCeiling(const char* env) {
  if (env == nullptr) return KernelTier::kAvx512;
  std::string v(env);
  if (v.empty() || v == "auto" || v == "on" || v == "1") {
    return KernelTier::kAvx512;
  }
  if (v == "scalar" || v == "0" || v == "off" || v == "OFF") {
    return KernelTier::kScalar;
  }
  if (v == "avx2") return KernelTier::kAvx2;
  if (v == "avx512") return KernelTier::kAvx512;
  // Unknown spelling: fail open to full auto-detection rather than silently
  // dropping to scalar.
  return KernelTier::kAvx512;
}

// Env-resolved table, computed once. Test forcing bypasses this cache.
const KernelOps& EnvResolvedOps() {
  static const KernelOps* ops =
      &BestTierAtOrBelow(ParseTierCeiling(std::getenv("GMREG_SIMD")));
  return *ops;
}

// -1 = no forced tier; otherwise the KernelTier value pinned by tests.
std::atomic<int> g_forced_tier{-1};

// ---------------------------------------------------------------------------
// Cache-geometry autotuning (docs/KERNELS.md). The rule is a pure function
// of (register tile, cache sizes): deterministic per machine and tier.
// ---------------------------------------------------------------------------

std::int64_t SysconfCacheBytes(int name, std::int64_t fallback) {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  long v = sysconf(name);
  if (v > 0) return static_cast<std::int64_t>(v);
#else
  (void)name;
#endif
  return fallback;
}

}  // namespace

const KernelOps& GetKernelOps() {
  int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const KernelOps* ops = TierTableOrNull(static_cast<KernelTier>(forced));
    if (ops != nullptr) return *ops;
  }
  return EnvResolvedOps();
}

bool SimdKernelsEnabled() { return GetKernelOps().tier != KernelTier::kScalar; }

GemmGeometry GetGemmGeometry() {
  const KernelOps& ops = GetKernelOps();
  return internal::AutotuneGeometry(ops.mr, ops.nr,
                                    internal::GetCacheGeometry());
}

namespace internal {

bool ForceKernelTierForTesting(KernelTier tier) {
  if (TierTableOrNull(tier) == nullptr) return false;
  g_forced_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
  return true;
}

void ClearKernelTierForTesting() {
  g_forced_tier.store(-1, std::memory_order_relaxed);
}

void ForceScalarKernelsForTesting(bool force) {
  if (force) {
    ForceKernelTierForTesting(KernelTier::kScalar);
  } else {
    ClearKernelTierForTesting();
  }
}

CacheGeometry GetCacheGeometry() {
  static const CacheGeometry geometry = [] {
    CacheGeometry g;
#if defined(_SC_LEVEL1_DCACHE_SIZE) && defined(_SC_LEVEL2_CACHE_SIZE)
    g.l1d_bytes = SysconfCacheBytes(_SC_LEVEL1_DCACHE_SIZE, 32 * 1024);
    g.l2_bytes = SysconfCacheBytes(_SC_LEVEL2_CACHE_SIZE, 1024 * 1024);
#else
    g.l1d_bytes = 32 * 1024;
    g.l2_bytes = 1024 * 1024;
#endif
    // A bogus topology report (L2 smaller than L1) would produce degenerate
    // blocks; fall back to the fixed table instead.
    if (g.l2_bytes < g.l1d_bytes) {
      g.l1d_bytes = 32 * 1024;
      g.l2_bytes = 1024 * 1024;
    }
    return g;
  }();
  return geometry;
}

GemmGeometry AutotuneGeometry(std::int64_t mr, std::int64_t nr,
                              const CacheGeometry& cache) {
  GemmGeometry geo;
  geo.mr = mr;
  geo.nr = nr;
  // KC: half of L1d holds one KC x NR packed B panel (the other half feeds
  // the streaming A panel and the C tile), rounded down to a multiple of 8
  // and clamped so tiny/huge cache reports stay sane. The 32 KB fallback
  // with NR = 16 reproduces the previous fixed KC = 256.
  std::int64_t kc = cache.l1d_bytes / 2 /
                    (nr * static_cast<std::int64_t>(sizeof(float)));
  kc = std::max<std::int64_t>(64, std::min<std::int64_t>(512, kc / 8 * 8));
  geo.kc = kc;
  // MC: a quarter of L2 holds the MC x KC A pack (leaving room for the B
  // slab passing through), rounded down to a multiple of MR. Capped at 192
  // rows so one work-queue tile never swallows a whole medium matrix —
  // parallelism needs several tiles in flight.
  std::int64_t mc = cache.l2_bytes / 4 /
                    (kc * static_cast<std::int64_t>(sizeof(float)));
  mc = std::min<std::int64_t>(192, mc);
  mc = std::max(mr, mc / mr * mr);
  geo.mc = mc;
  // NC: the column width of one 2D work-queue tile. Eight register panels
  // bound the per-tile A-repack overhead at ~1/(2*NC) of the tile's flops
  // while still splitting wide matrices across the queue.
  geo.nc = std::max(nr, std::min<std::int64_t>(512, 8 * nr));
  return geo;
}

}  // namespace internal

void PackB(bool trans_b, const float* b, std::int64_t ldb, std::int64_t k,
           std::int64_t n, float* bp, const GemmGeometry& geo) {
  const std::int64_t NR = geo.nr;
  std::int64_t n_round = RoundUpN(n, NR);
  for (std::int64_t p0 = 0; p0 < k; p0 += geo.kc) {
    std::int64_t kc = std::min(geo.kc, k - p0);
    float* slab = bp + p0 * n_round;
    for (std::int64_t j0 = 0; j0 < n; j0 += NR) {
      std::int64_t nr = std::min(NR, n - j0);
      float* tile = slab + (j0 / NR) * kc * NR;
      if (nr < NR) {
        std::memset(tile, 0, static_cast<std::size_t>(kc * NR) * sizeof(float));
      }
      if (!trans_b) {
        // op(B)[p][j] = B[p][j]: contiguous row reads.
        for (std::int64_t p = 0; p < kc; ++p) {
          const float* src = b + (p0 + p) * ldb + j0;
          float* dst = tile + p * NR;
          for (std::int64_t j = 0; j < nr; ++j) dst[j] = src[j];
        }
      } else {
        // op(B)[p][j] = B[j][p]: contiguous reads along p per output column.
        for (std::int64_t j = 0; j < nr; ++j) {
          const float* src = b + (j0 + j) * ldb + p0;
          float* dst = tile + j;
          for (std::int64_t p = 0; p < kc; ++p) dst[p * NR] = src[p];
        }
      }
    }
  }
}

void PackA(bool trans_a, const float* a, std::int64_t lda, std::int64_t i0,
           std::int64_t mc, std::int64_t p0, std::int64_t kc, float* ap,
           std::int64_t MR) {
  for (std::int64_t r0 = 0; r0 < mc; r0 += MR) {
    std::int64_t mr = std::min(MR, mc - r0);
    float* tile = ap + (r0 / MR) * kc * MR;
    if (mr < MR) {
      std::memset(tile, 0, static_cast<std::size_t>(kc * MR) * sizeof(float));
    }
    if (!trans_a) {
      // op(A)[i][p] = A[i][p]: contiguous row reads.
      for (std::int64_t r = 0; r < mr; ++r) {
        const float* src = a + (i0 + r0 + r) * lda + p0;
        float* dst = tile + r;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * MR] = src[p];
      }
    } else {
      // op(A)[i][p] = A[p][i]: contiguous reads along i per p.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = a + (p0 + p) * lda + i0 + r0;
        float* dst = tile + p * MR;
        for (std::int64_t r = 0; r < mr; ++r) dst[r] = src[r];
      }
    }
  }
}

void GemmPackedBlock(bool trans_a, std::int64_t i0, std::int64_t i1,
                     std::int64_t j0, std::int64_t j1, std::int64_t n,
                     std::int64_t k, float alpha, const float* a,
                     std::int64_t lda, const float* bp, float beta, float* c,
                     std::int64_t ldc, const GemmGeometry& geo) {
  const std::int64_t MR = geo.mr;
  const std::int64_t NR = geo.nr;
  std::int64_t cols = j1 - j0;
  // Scale this tile's C block first, exactly once. For beta == 0 there is
  // nothing to scale: C is never read, and the first k slab's micro-kernel
  // calls overwrite every element instead (each element belongs to exactly
  // one micro-tile per slab). Clear explicitly only when k <= 0.
  bool overwrite_first = (beta == 0.0f);
  if (beta == 0.0f) {
    if (k <= 0) {
      for (std::int64_t i = i0; i < i1; ++i) {
        std::memset(c + i * ldc + j0, 0,
                    static_cast<std::size_t>(cols) * sizeof(float));
      }
    }
  } else if (beta != 1.0f) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* row = c + i * ldc + j0;
      for (std::int64_t j = 0; j < cols; ++j) row[j] *= beta;
    }
  }
  const KernelOps& ops = GetKernelOps();
  std::int64_t n_round = RoundUpN(n, NR);
  // Per-worker A pack, bounded at MC x KC floats and reused across calls.
  // Arena-served (ScratchBuffer) so a pool worker whose first GEMM lands
  // mid-run sizes it from the slab, not the heap — the zero-alloc contract
  // must hold whichever workers the ticket race picks (docs/MEMORY.md).
  thread_local ScratchBuffer<float> apack_buf;
  float* apack =
      apack_buf.EnsureCapacity(static_cast<std::size_t>(geo.mc * geo.kc));
  for (std::int64_t p0 = 0; p0 < k; p0 += geo.kc) {
    std::int64_t kc = std::min(geo.kc, k - p0);
    const float* slab = bp + p0 * n_round;
    for (std::int64_t ic = i0; ic < i1; ic += geo.mc) {
      std::int64_t mc = std::min(geo.mc, i1 - ic);
      PackA(trans_a, a, lda, ic, mc, p0, kc, apack, MR);
      for (std::int64_t jc = j0; jc < j1; jc += NR) {
        std::int64_t nr = std::min(NR, j1 - jc);
        const float* b_tile = slab + (jc / NR) * kc * NR;
        for (std::int64_t r0 = 0; r0 < mc; r0 += MR) {
          std::int64_t mr = std::min(MR, mc - r0);
          const float* a_tile = apack + (r0 / MR) * kc * MR;
          ops.gemm_micro(kc, alpha, a_tile, b_tile, c + (ic + r0) * ldc + jc,
                         ldc, mr, nr, overwrite_first && p0 == 0);
        }
      }
    }
  }
}

}  // namespace gmreg
