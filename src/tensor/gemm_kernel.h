#ifndef GMREG_TENSOR_GEMM_KERNEL_H_
#define GMREG_TENSOR_GEMM_KERNEL_H_

#include <cstdint>

namespace gmreg {

/// Tile geometry of the packed GEMM (docs/KERNELS.md). The micro-kernel
/// updates an MR x NR accumulator tile held in registers: NR = 16 is two
/// 8-float vectors, MR = 6 keeps 6x2 accumulators plus two B vectors and an
/// A broadcast inside the 16 YMM registers of AVX2.
inline constexpr std::int64_t kGemmMR = 6;
inline constexpr std::int64_t kGemmNR = 16;

/// k is consumed in slabs of at most KC so one packed B panel column
/// (KC x NR = 16 KB) stays L1-resident across the row micro-panels.
inline constexpr std::int64_t kGemmKC = 256;

/// Rows are packed in blocks of MC (multiple of MR) so the per-thread A
/// pack (MC x KC floats = 72 KB) stays L2-resident.
inline constexpr std::int64_t kGemmMC = 72;

/// Below this flop count (2*m*n*k) the packing traffic beats the win and
/// Gemm runs a plain unpacked loop instead.
inline constexpr std::int64_t kGemmSmallFlops = 1 << 14;

/// The runtime-dispatched kernel tier: the GEMM micro-kernel plus the
/// vectorized elementwise kernels layered on the same GMREG_SIMD gate.
/// Exactly one table is active at a time (scalar or AVX2+FMA); both share
/// the per-element accumulation orders documented in docs/KERNELS.md.
struct KernelOps {
  /// Short label for telemetry/benches, e.g. "avx2-fma" or "scalar".
  const char* name;

  /// C tile (+)= alpha * (packed A panel · packed B panel) over one k slab:
  /// c[r*ldc + j] op= alpha * sum_p ap[p*kGemmMR + r] * bp[p*kGemmNR + j]
  /// for r < mr, j < nr, where op is `=` when `overwrite` (the beta == 0
  /// first slab — C is never read) and `+=` otherwise. The full MR x NR
  /// accumulator is always computed (packed panels are zero-padded); only
  /// the mr x nr corner is stored.
  void (*gemm_micro)(std::int64_t kc, float alpha, const float* ap,
                     const float* bp, float* c, std::int64_t ldc,
                     std::int64_t mr, std::int64_t nr, bool overwrite);

  /// y[i] += alpha * x[i].
  void (*axpy)(std::int64_t n, float alpha, const float* x, float* y);

  /// out[i*cols + j] += row[j] (dense bias broadcast).
  void (*add_row_broadcast)(std::int64_t rows, std::int64_t cols,
                            const float* row, float* out);

  /// out[i*cols + j] += col[i] (conv bias broadcast over spatial positions).
  void (*add_col_broadcast)(std::int64_t rows, std::int64_t cols,
                            const float* col, float* out);

  /// out[j] += sum_i m[i*cols + j] (dense bias gradient).
  void (*col_sums_accum)(std::int64_t rows, std::int64_t cols, const float* m,
                         float* out);

  /// out[i] += sum_j m[i*cols + j] (conv bias gradient).
  void (*row_sums_accum)(std::int64_t rows, std::int64_t cols, const float* m,
                         float* out);

  /// out[i] = max(in[i], 0); when mask != nullptr also mask[i] = in[i] > 0.
  void (*relu_forward)(std::int64_t n, const float* in, float* out,
                       unsigned char* mask);

  /// gin[i] = mask[i] ? gout[i] : 0.
  void (*relu_backward)(std::int64_t n, const float* gout,
                        const unsigned char* mask, float* gin);
};

/// The active kernel table: the AVX2+FMA tier when it was compiled in
/// (GMREG_SIMD build option), the CPU supports it, and the GMREG_SIMD
/// environment variable is not "0"/"off"; the scalar tier otherwise.
const KernelOps& GetKernelOps();

/// True when GetKernelOps() currently returns the SIMD tier.
bool SimdKernelsEnabled();

namespace internal {

/// The SIMD table, or nullptr when not compiled in / not supported by this
/// CPU. Defined by gemm_kernel_simd.cc.
const KernelOps* GetSimdKernelOpsOrNull();

/// Test hook: true pins GetKernelOps() to the scalar tier so a single
/// binary can cross-check the two tiers (tests/gemm_kernel_test.cc).
void ForceScalarKernelsForTesting(bool force);

}  // namespace internal

/// Packs op(B)'s full k x n into `bp` for the blocked GEMM. Layout: k slabs
/// of kc = min(kGemmKC, k - p0) in order; within a slab, column panels of
/// kGemmNR as contiguous kc x NR tiles (zero-padded past n). Slab p0 starts
/// at offset p0 * RoundUpN(n); panel j0 at + (j0/NR) * kc * NR.
void PackB(bool trans_b, const float* b, std::int64_t ldb, std::int64_t k,
           std::int64_t n, float* bp);

/// Packs op(A) rows [i0, i0+mc) for k slab [p0, p0+kc) into `ap`: row
/// micro-panels of kGemmMR as contiguous kc x MR tiles (zero-padded past
/// mc), panel r0 at offset (r0/MR) * kc * MR.
void PackA(bool trans_a, const float* a, std::int64_t lda, std::int64_t i0,
           std::int64_t mc, std::int64_t p0, std::int64_t kc, float* ap);

/// n rounded up to a whole number of NR column panels.
inline std::int64_t RoundUpN(std::int64_t n) {
  return (n + kGemmNR - 1) / kGemmNR * kGemmNR;
}

/// One shard of the blocked GEMM: output rows [i0, i1) of C, consuming the
/// shared packed B (`bp`, laid out by PackB) and packing its own A panels
/// into thread-local scratch. Applies beta to its rows first (beta == 0
/// never reads C: the first k slab overwrites). Every C element accumulates
/// in the same order regardless of (i0, i1), so row sharding is
/// bitwise-invariant to the thread budget (docs/KERNELS.md).
void GemmPackedRows(bool trans_a, std::int64_t i0, std::int64_t i1,
                    std::int64_t n, std::int64_t k, float alpha,
                    const float* a, std::int64_t lda, const float* bp,
                    float beta, float* c, std::int64_t ldc);

}  // namespace gmreg

#endif  // GMREG_TENSOR_GEMM_KERNEL_H_
