#ifndef GMREG_TENSOR_GEMM_KERNEL_H_
#define GMREG_TENSOR_GEMM_KERNEL_H_

#include <cstdint>

namespace gmreg {

/// Below this flop count (2*m*n*k) the packing traffic beats the win and
/// Gemm runs a plain unpacked loop instead.
inline constexpr std::int64_t kGemmSmallFlops = 1 << 14;

/// Upper bounds on the register tile across every compiled tier: the scalar
/// micro-kernel's stack accumulator and test scratch size against these.
inline constexpr std::int64_t kGemmMaxMR = 14;
inline constexpr std::int64_t kGemmMaxNR = 32;

/// Kernel tier identity, in strictly increasing capability order. The env
/// override GMREG_SIMD=scalar|avx2|avx512 selects a ceiling: the dispatcher
/// uses the best *supported* tier at or below it (docs/KERNELS.md).
enum class KernelTier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Blocking geometry of the packed GEMM (docs/KERNELS.md). MR x NR is the
/// register tile of the active tier's micro-kernel; KC/MC/NC are the cache
/// block sizes autotuned once at startup from the machine's L1d/L2 geometry
/// (sysconf, with a fixed fallback table). All five are process-constant
/// for a given tier, so tile boundaries — and therefore accumulation
/// orders — never depend on the thread budget.
struct GemmGeometry {
  std::int64_t mr;  ///< register tile rows (fixed per tier: 6 or 14)
  std::int64_t nr;  ///< register tile cols (fixed per tier: 16 or 32)
  std::int64_t kc;  ///< k slab depth: one KC x NR B panel stays L1-resident
  std::int64_t mc;  ///< A block rows: one MC x KC pack stays L2-resident
  std::int64_t nc;  ///< column block width of one 2D work-queue tile
};

/// The runtime-dispatched kernel tier: the GEMM micro-kernel plus the
/// vectorized elementwise kernels layered on the same GMREG_SIMD gate.
/// Exactly one table is active at a time; all tiers share the per-element
/// accumulation orders documented in docs/KERNELS.md.
struct KernelOps {
  /// Short label for telemetry/benches, e.g. "avx2-fma" or "scalar".
  const char* name;

  /// Tier identity, also exported as the gm.kernel.tier gauge.
  KernelTier tier;

  /// Register tile shape this table's gemm_micro computes.
  std::int64_t mr;
  std::int64_t nr;

  /// C tile (+)= alpha * (packed A panel · packed B panel) over one k slab:
  /// c[r*ldc + j] op= alpha * sum_p ap[p*MR + r] * bp[p*NR + j]
  /// for r < mr, j < nr, where MR/NR are this table's tile shape and op is
  /// `=` when `overwrite` (the beta == 0 first slab — C is never read) and
  /// `+=` otherwise. The full MR x NR accumulator is always computed
  /// (packed panels are zero-padded); only the mr x nr corner is stored.
  void (*gemm_micro)(std::int64_t kc, float alpha, const float* ap,
                     const float* bp, float* c, std::int64_t ldc,
                     std::int64_t mr, std::int64_t nr, bool overwrite);

  /// y[i] += alpha * x[i].
  void (*axpy)(std::int64_t n, float alpha, const float* x, float* y);

  /// out[i*cols + j] += row[j] (dense bias broadcast).
  void (*add_row_broadcast)(std::int64_t rows, std::int64_t cols,
                            const float* row, float* out);

  /// out[i*cols + j] += col[i] (conv bias broadcast over spatial positions).
  void (*add_col_broadcast)(std::int64_t rows, std::int64_t cols,
                            const float* col, float* out);

  /// out[j] += sum_i m[i*cols + j] (dense bias gradient).
  void (*col_sums_accum)(std::int64_t rows, std::int64_t cols, const float* m,
                         float* out);

  /// out[i] += sum_j m[i*cols + j] (conv bias gradient).
  void (*row_sums_accum)(std::int64_t rows, std::int64_t cols, const float* m,
                         float* out);

  /// out[i] = max(in[i], 0); when mask != nullptr also mask[i] = in[i] > 0.
  void (*relu_forward)(std::int64_t n, const float* in, float* out,
                       unsigned char* mask);

  /// gin[i] = mask[i] ? gout[i] : 0.
  void (*relu_backward)(std::int64_t n, const float* gout,
                        const unsigned char* mask, float* gin);
};

/// The active kernel table: the best tier that was compiled in (GMREG_SIMD
/// build option), is supported by the running CPU, and is not ruled out by
/// the GMREG_SIMD environment override (scalar|avx2|avx512, plus the legacy
/// 0|off spelling of scalar).
const KernelOps& GetKernelOps();

/// True when GetKernelOps() currently returns a SIMD tier.
bool SimdKernelsEnabled();

/// Blocking geometry for the active tier: its fixed MR x NR register tile
/// plus KC/MC/NC autotuned from cache geometry (resolved once per process;
/// deterministic — depends only on the machine and the tier).
GemmGeometry GetGemmGeometry();

namespace internal {

/// The AVX2+FMA table, or nullptr when not compiled in / not supported by
/// this CPU. Defined by gemm_kernel_simd.cc.
const KernelOps* GetAvx2KernelOpsOrNull();

/// The AVX-512 table, or nullptr when not compiled in / not supported by
/// this CPU. Defined by gemm_kernel_avx512.cc.
const KernelOps* GetAvx512KernelOpsOrNull();

/// Test hook: pins GetKernelOps() to one tier so a single binary can run
/// the conformance battery per tier. Returns false (leaving the pin
/// unchanged) when the requested tier is not compiled in or not supported
/// by this CPU. Pass kScalar to force scalar; use ClearKernelTierForTesting
/// to restore env/probe resolution.
bool ForceKernelTierForTesting(KernelTier tier);
void ClearKernelTierForTesting();

/// Legacy test hook: true pins GetKernelOps() to the scalar tier, false
/// restores automatic resolution.
void ForceScalarKernelsForTesting(bool force);

/// Cache sizes feeding the block autotuner, resolved once per process from
/// sysconf with the fixed fallback table (l1d = 32 KB, l2 = 1 MB) when the
/// platform does not report them. Exposed for tests/benches.
struct CacheGeometry {
  std::int64_t l1d_bytes;
  std::int64_t l2_bytes;
};
CacheGeometry GetCacheGeometry();

/// The KC/MC/NC autotuning rule for a given register tile — pure function
/// of (tile, cache sizes) so tests can pin its invariants.
GemmGeometry AutotuneGeometry(std::int64_t mr, std::int64_t nr,
                              const CacheGeometry& cache);

}  // namespace internal

/// n rounded up to a whole number of NR column panels.
inline std::int64_t RoundUpN(std::int64_t n, std::int64_t nr) {
  return (n + nr - 1) / nr * nr;
}

/// Number of floats PackB needs for op(B) of shape k x n under `geo`.
inline std::int64_t PackedBFloats(std::int64_t k, std::int64_t n,
                                  const GemmGeometry& geo) {
  return k * RoundUpN(n, geo.nr);
}

/// Packs op(B)'s full k x n into `bp` for the blocked GEMM. Layout: k slabs
/// of kc = min(geo.kc, k - p0) in order; within a slab, column panels of
/// geo.nr as contiguous kc x NR tiles (zero-padded past n). Slab p0 starts
/// at offset p0 * RoundUpN(n, nr); panel j0 at + (j0/NR) * kc * NR.
void PackB(bool trans_b, const float* b, std::int64_t ldb, std::int64_t k,
           std::int64_t n, float* bp, const GemmGeometry& geo);

/// Packs op(A) rows [i0, i0+mc) for k slab [p0, p0+kc) into `ap`: row
/// micro-panels of `mr` as contiguous kc x MR tiles (zero-padded past mc),
/// panel r0 at offset (r0/MR) * kc * MR.
void PackA(bool trans_a, const float* a, std::int64_t lda, std::int64_t i0,
           std::int64_t mc, std::int64_t p0, std::int64_t kc, float* ap,
           std::int64_t mr);

/// One tile of the 2D-blocked GEMM: output rows [i0, i1) x columns
/// [j0, j1) of C, consuming the shared packed B (`bp`, laid out by PackB
/// over the full n) and packing its own A panels into thread-local
/// arena-backed scratch. j0 must sit on a geo.nr panel boundary so the tile
/// reads whole packed panels. Applies beta to its block first (beta == 0
/// never reads C: the first k slab overwrites). Every C element is owned by
/// exactly one tile and accumulates in the same order — ascending p within
/// ascending k slabs — whatever the tile partition, so the 2D work queue is
/// bitwise-invariant to the thread budget (docs/KERNELS.md).
void GemmPackedBlock(bool trans_a, std::int64_t i0, std::int64_t i1,
                     std::int64_t j0, std::int64_t j1, std::int64_t n,
                     std::int64_t k, float alpha, const float* a,
                     std::int64_t lda, const float* bp, float beta, float* c,
                     std::int64_t ldc, const GemmGeometry& geo);

}  // namespace gmreg

#endif  // GMREG_TENSOR_GEMM_KERNEL_H_
