// AVX-512 kernel tier. This translation unit is the only one compiled with
// -mavx512f (see src/tensor/CMakeLists.txt): everything here is reached
// strictly through the GetAvx512KernelOpsOrNull() table, which returns
// nullptr unless the running CPU reports AVX-512F support, so no AVX-512
// instruction can execute on hardware that lacks it.
//
// The register tile widens to 14x32: 28 ZMM accumulators plus two B vectors
// and one broadcast fill 31 of the 32 ZMM registers. Per-element
// accumulation orders mirror the scalar tier exactly; the only permitted
// numeric divergence is FMA contraction of a*b+c (docs/KERNELS.md
// quantifies the tolerance, tests/gemm_kernel_test.cc pins it).

#include "tensor/gemm_kernel.h"

#if defined(GMREG_SIMD_AVX512)

namespace gmreg {
namespace {

constexpr std::int64_t kAvx512MR = 14;
constexpr std::int64_t kAvx512NR = 32;

typedef float V16 __attribute__((vector_size(64)));

inline V16 Load16(const float* p) {
  V16 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void Store16(float* p, V16 v) { __builtin_memcpy(p, &v, sizeof(v)); }

void GemmMicroAvx512(std::int64_t kc, float alpha, const float* ap,
                     const float* bp, float* c, std::int64_t ldc,
                     std::int64_t mr, std::int64_t nr, bool overwrite) {
  V16 acc[kAvx512MR][2] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    V16 b0 = Load16(bp);
    V16 b1 = Load16(bp + 16);
    bp += kAvx512NR;
    for (std::int64_t r = 0; r < kAvx512MR; ++r) {
      V16 av = V16{} + ap[r];  // broadcast
      acc[r][0] += av * b0;    // contracts to vfmadd
      acc[r][1] += av * b1;
    }
    ap += kAvx512MR;
  }
  if (mr == kAvx512MR && nr == kAvx512NR) {
    if (overwrite) {
      for (std::int64_t r = 0; r < kAvx512MR; ++r) {
        float* c_row = c + r * ldc;
        Store16(c_row, alpha * acc[r][0]);
        Store16(c_row + 16, alpha * acc[r][1]);
      }
    } else {
      for (std::int64_t r = 0; r < kAvx512MR; ++r) {
        float* c_row = c + r * ldc;
        Store16(c_row, Load16(c_row) + alpha * acc[r][0]);
        Store16(c_row + 16, Load16(c_row + 16) + alpha * acc[r][1]);
      }
    }
    return;
  }
  // Partial tile: spill the accumulators and store the mr x nr corner.
  float tmp[kAvx512MR][kAvx512NR];
  for (std::int64_t r = 0; r < kAvx512MR; ++r) {
    Store16(&tmp[r][0], acc[r][0]);
    Store16(&tmp[r][16], acc[r][1]);
  }
  if (overwrite) {
    for (std::int64_t r = 0; r < mr; ++r) {
      float* c_row = c + r * ldc;
      for (std::int64_t j = 0; j < nr; ++j) c_row[j] = alpha * tmp[r][j];
    }
  } else {
    for (std::int64_t r = 0; r < mr; ++r) {
      float* c_row = c + r * ldc;
      for (std::int64_t j = 0; j < nr; ++j) c_row[j] += alpha * tmp[r][j];
    }
  }
}

// The elementwise tier below is written as plain loops: compiled in this TU
// they auto-vectorize to 512-bit vectors.

void AxpyAvx512(std::int64_t n, float alpha, const float* x, float* y) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void AddRowBroadcastAvx512(std::int64_t rows, std::int64_t cols,
                           const float* row, float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    float* o = out + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) o[j] += row[j];
  }
}

void AddColBroadcastAvx512(std::int64_t rows, std::int64_t cols,
                           const float* col, float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    float v = col[i];
    float* o = out + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) o[j] += v;
  }
}

void ColSumsAccumAvx512(std::int64_t rows, std::int64_t cols, const float* m,
                        float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* r = m + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) out[j] += r[j];
  }
}

void RowSumsAccumAvx512(std::int64_t rows, std::int64_t cols, const float* m,
                        float* out) {
  // 16 vector lanes of partial sums folded lane-by-lane at the end: a fixed
  // reassociation of the scalar tier's ordered sum (tolerance documented in
  // docs/KERNELS.md).
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* r = m + i * cols;
    V16 vacc = {};
    std::int64_t j = 0;
    for (; j + 16 <= cols; j += 16) vacc += Load16(r + j);
    float lanes[16];
    Store16(lanes, vacc);
    float acc = 0.0f;
    for (int l = 0; l < 16; ++l) acc += lanes[l];
    for (; j < cols; ++j) acc += r[j];
    out[i] += acc;
  }
}

void ReluForwardAvx512(std::int64_t n, const float* in, float* out,
                       unsigned char* mask) {
  if (mask != nullptr) {
    for (std::int64_t i = 0; i < n; ++i) {
      bool pos = in[i] > 0.0f;
      mask[i] = pos ? 1 : 0;
      out[i] = pos ? in[i] : 0.0f;
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
}

void ReluBackwardAvx512(std::int64_t n, const float* gout,
                        const unsigned char* mask, float* gin) {
  for (std::int64_t i = 0; i < n; ++i) gin[i] = mask[i] ? gout[i] : 0.0f;
}

constexpr KernelOps kAvx512Ops = {
    "avx512",
    KernelTier::kAvx512,
    kAvx512MR,
    kAvx512NR,
    GemmMicroAvx512,
    AxpyAvx512,
    AddRowBroadcastAvx512,
    AddColBroadcastAvx512,
    ColSumsAccumAvx512,
    RowSumsAccumAvx512,
    ReluForwardAvx512,
    ReluBackwardAvx512,
};

}  // namespace

namespace internal {

const KernelOps* GetAvx512KernelOpsOrNull() {
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx512f")) {
    return &kAvx512Ops;
  }
#endif
  return nullptr;
}

}  // namespace internal
}  // namespace gmreg

#else  // !GMREG_SIMD_AVX512: the gate is compiled out, only lower tiers.

namespace gmreg {
namespace internal {

const KernelOps* GetAvx512KernelOpsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace gmreg

#endif  // GMREG_SIMD_AVX512
