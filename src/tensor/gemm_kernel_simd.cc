// AVX2+FMA kernel tier. This translation unit is the only one compiled with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt): everything here is reached
// strictly through the GetAvx2KernelOpsOrNull() table, which returns nullptr
// unless the running CPU reports AVX2 and FMA support, so no AVX
// instruction can execute on hardware that lacks it.
//
// Per-element accumulation orders mirror the scalar tier exactly; the only
// permitted numeric divergence is FMA contraction of a*b+c (docs/KERNELS.md
// quantifies the tolerance, tests/gemm_kernel_test.cc pins it).

#include "tensor/gemm_kernel.h"

#if defined(GMREG_SIMD_AVX2)

namespace gmreg {
namespace {

constexpr std::int64_t kAvx2MR = 6;
constexpr std::int64_t kAvx2NR = 16;

typedef float V8 __attribute__((vector_size(32)));

inline V8 Load8(const float* p) {
  V8 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void Store8(float* p, V8 v) { __builtin_memcpy(p, &v, sizeof(v)); }

void GemmMicroAvx2(std::int64_t kc, float alpha, const float* ap,
                   const float* bp, float* c, std::int64_t ldc,
                   std::int64_t mr, std::int64_t nr, bool overwrite) {
  // 6x16 accumulator: 12 YMM registers, plus 2 for the B row and 1 for the
  // broadcast A element.
  V8 acc[kAvx2MR][2] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    V8 b0 = Load8(bp);
    V8 b1 = Load8(bp + 8);
    bp += kAvx2NR;
    for (std::int64_t r = 0; r < kAvx2MR; ++r) {
      V8 av = V8{} + ap[r];  // broadcast
      acc[r][0] += av * b0;  // contracts to vfmadd
      acc[r][1] += av * b1;
    }
    ap += kAvx2MR;
  }
  if (mr == kAvx2MR && nr == kAvx2NR) {
    if (overwrite) {
      for (std::int64_t r = 0; r < kAvx2MR; ++r) {
        float* c_row = c + r * ldc;
        Store8(c_row, alpha * acc[r][0]);
        Store8(c_row + 8, alpha * acc[r][1]);
      }
    } else {
      for (std::int64_t r = 0; r < kAvx2MR; ++r) {
        float* c_row = c + r * ldc;
        Store8(c_row, Load8(c_row) + alpha * acc[r][0]);
        Store8(c_row + 8, Load8(c_row + 8) + alpha * acc[r][1]);
      }
    }
    return;
  }
  // Partial tile: spill the accumulators and store the mr x nr corner.
  float tmp[kAvx2MR][kAvx2NR];
  for (std::int64_t r = 0; r < kAvx2MR; ++r) {
    Store8(&tmp[r][0], acc[r][0]);
    Store8(&tmp[r][8], acc[r][1]);
  }
  if (overwrite) {
    for (std::int64_t r = 0; r < mr; ++r) {
      float* c_row = c + r * ldc;
      for (std::int64_t j = 0; j < nr; ++j) c_row[j] = alpha * tmp[r][j];
    }
  } else {
    for (std::int64_t r = 0; r < mr; ++r) {
      float* c_row = c + r * ldc;
      for (std::int64_t j = 0; j < nr; ++j) c_row[j] += alpha * tmp[r][j];
    }
  }
}

// The elementwise tier below is written as plain loops: compiled in this TU
// they auto-vectorize to AVX2 (the scalar TU keeps the SSE2 baseline).

void AxpyAvx2(std::int64_t n, float alpha, const float* x, float* y) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void AddRowBroadcastAvx2(std::int64_t rows, std::int64_t cols,
                         const float* row, float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    float* o = out + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) o[j] += row[j];
  }
}

void AddColBroadcastAvx2(std::int64_t rows, std::int64_t cols,
                         const float* col, float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    float v = col[i];
    float* o = out + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) o[j] += v;
  }
}

void ColSumsAccumAvx2(std::int64_t rows, std::int64_t cols, const float* m,
                      float* out) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* r = m + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) out[j] += r[j];
  }
}

void RowSumsAccumAvx2(std::int64_t rows, std::int64_t cols, const float* m,
                      float* out) {
  // 8 vector lanes of partial sums folded lane-by-lane at the end: a fixed
  // reassociation of the scalar tier's ordered sum (tolerance documented in
  // docs/KERNELS.md).
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* r = m + i * cols;
    V8 vacc = {};
    std::int64_t j = 0;
    for (; j + 8 <= cols; j += 8) vacc += Load8(r + j);
    float lanes[8];
    Store8(lanes, vacc);
    float acc = 0.0f;
    for (int l = 0; l < 8; ++l) acc += lanes[l];
    for (; j < cols; ++j) acc += r[j];
    out[i] += acc;
  }
}

void ReluForwardAvx2(std::int64_t n, const float* in, float* out,
                     unsigned char* mask) {
  if (mask != nullptr) {
    for (std::int64_t i = 0; i < n; ++i) {
      bool pos = in[i] > 0.0f;
      mask[i] = pos ? 1 : 0;
      out[i] = pos ? in[i] : 0.0f;
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
}

void ReluBackwardAvx2(std::int64_t n, const float* gout,
                      const unsigned char* mask, float* gin) {
  for (std::int64_t i = 0; i < n; ++i) gin[i] = mask[i] ? gout[i] : 0.0f;
}

constexpr KernelOps kAvx2Ops = {
    "avx2-fma",
    KernelTier::kAvx2,
    kAvx2MR,
    kAvx2NR,
    GemmMicroAvx2,
    AxpyAvx2,
    AddRowBroadcastAvx2,
    AddColBroadcastAvx2,
    ColSumsAccumAvx2,
    RowSumsAccumAvx2,
    ReluForwardAvx2,
    ReluBackwardAvx2,
};

}  // namespace

namespace internal {

const KernelOps* GetAvx2KernelOpsOrNull() {
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &kAvx2Ops;
  }
#endif
  return nullptr;
}

}  // namespace internal
}  // namespace gmreg

#else  // !GMREG_SIMD_AVX2: the gate is compiled out, only scalar exists.

namespace gmreg {
namespace internal {

const KernelOps* GetAvx2KernelOpsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace gmreg

#endif  // GMREG_SIMD_AVX2
