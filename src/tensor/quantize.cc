#include "tensor/quantize.h"

#include <cmath>
#include <cstdlib>

namespace gmreg {

void QuantizeRowsSymmetric(const float* w, std::int64_t rows,
                           std::int64_t cols, QuantizedMatrix* out) {
  out->rows = rows;
  out->cols = cols;
  out->q.assign(static_cast<std::size_t>(rows * cols), 0);
  out->scale.assign(static_cast<std::size_t>(rows), 0.0f);
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* row = w + i * cols;
    float maxabs = 0.0f;
    for (std::int64_t j = 0; j < cols; ++j) {
      float a = std::fabs(row[j]);
      if (a > maxabs) maxabs = a;
    }
    if (maxabs == 0.0f) continue;  // all-zero row: scale 0, q already 0
    float scale = maxabs / 127.0f;
    out->scale[static_cast<std::size_t>(i)] = scale;
    float inv = 127.0f / maxabs;
    std::int8_t* qrow = out->q.data() + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) {
      // round-half-away-from-zero, clamped: maxabs elements map to ±127
      // exactly, everything else to the nearest code.
      float scaled = row[j] * inv;
      int code = static_cast<int>(scaled + (scaled >= 0.0f ? 0.5f : -0.5f));
      if (code > 127) code = 127;
      if (code < -127) code = -127;
      qrow[j] = static_cast<std::int8_t>(code);
    }
  }
}

void GemmQuantB(std::int64_t m, std::int64_t n, std::int64_t k,
                const float* a, std::int64_t lda, const QuantizedMatrix& qb,
                float* c, std::int64_t ldc) {
  // Per output element: c[i][j] = sum_p (a[i][p]*scale[p]) * q[p][j] in
  // ascending p. The p-outer / j-inner order streams q row-by-row (each
  // int8 converted once per output row of A) without any scratch buffer —
  // the serving steady state must not allocate (docs/MEMORY.md). There is
  // no zero-skip: NaN/Inf in A propagate exactly as the math demands, like
  // the float path.
  for (std::int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) c_row[j] = 0.0f;
    const float* a_row = a + i * lda;
    for (std::int64_t p = 0; p < k; ++p) {
      float av = a_row[p] * qb.scale[static_cast<std::size_t>(p)];
      const std::int8_t* q_row = qb.q.data() + p * n;
      for (std::int64_t j = 0; j < n; ++j) {
        c_row[j] += av * static_cast<float>(q_row[j]);
      }
    }
  }
}

void GemmQuantA(std::int64_t m, std::int64_t n, std::int64_t k,
                const QuantizedMatrix& qa, const float* b, std::int64_t ldb,
                float* c, std::int64_t ldc) {
  // c[o][j] = scale[o] * sum_p q[o][p] * b[p][j], accumulated in float32 in
  // ascending p and scaled once per finished row. No zero-skip on q codes:
  // NaN/Inf in B propagate exactly as the math demands, like the float path.
  for (std::int64_t o = 0; o < m; ++o) {
    float* c_row = c + o * ldc;
    for (std::int64_t j = 0; j < n; ++j) c_row[j] = 0.0f;
    const std::int8_t* q_row = qa.q.data() + o * k;
    for (std::int64_t p = 0; p < k; ++p) {
      float qv = static_cast<float>(q_row[p]);
      const float* b_row = b + p * ldb;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += qv * b_row[j];
    }
    float s = qa.scale[static_cast<std::size_t>(o)];
    for (std::int64_t j = 0; j < n; ++j) c_row[j] *= s;
  }
}

}  // namespace gmreg
