#ifndef GMREG_TENSOR_QUANTIZE_H_
#define GMREG_TENSOR_QUANTIZE_H_

#include <cstdint>
#include <vector>

namespace gmreg {

/// An int8 snapshot of a row-major float matrix with one symmetric scale
/// per row: w[i][j] ≈ scale[i] * q[i][j], q in [-127, 127]. Built once at
/// model-publish time (ModelRegistry) and shared read-only by inference
/// sessions — the serving hot path never quantizes (docs/KERNELS.md).
struct QuantizedMatrix {
  std::vector<std::int8_t> q;  ///< rows x cols, row-major
  std::vector<float> scale;    ///< per-row dequantization factor
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  bool valid() const { return rows > 0; }
};

/// Quantizes `w` (rows x cols, row-major) with per-row symmetric scales:
/// scale[i] = maxabs(row i) / 127 (0 for an all-zero row), q = round(w /
/// scale) clamped to [-127, 127]. Rounding is round-half-away-from-zero,
/// platform-independent. The worst-case dequantization error per element is
/// scale[i] / 2 — the bound the serve conformance test builds on.
void QuantizeRowsSymmetric(const float* w, std::int64_t rows,
                           std::int64_t cols, QuantizedMatrix* out);

/// C[m,n] = A[m,k] · diag(qb.scale) · qb.q[k,n] — the inference-only Dense
/// product against a quantized weight stored [In, Out] (so qb's per-row
/// scales sit on the contraction axis and fold into A's elements).
/// Accumulation is float32 in ascending-p order, one output at a time:
/// deterministic at any thread count because the loop is serial per call.
void GemmQuantB(std::int64_t m, std::int64_t n, std::int64_t k,
                const float* a, std::int64_t lda, const QuantizedMatrix& qb,
                float* c, std::int64_t ldc);

/// C[m,n] = diag(qa.scale) · qa.q[m,k] · B[k,n] — the inference-only conv
/// product against a quantized weight stored [Cout, patch] (per-row scales
/// sit on the output axis and scale each finished row). Accumulation is
/// float32 in ascending-p order.
void GemmQuantA(std::int64_t m, std::int64_t n, std::int64_t k,
                const QuantizedMatrix& qa, const float* b, std::int64_t ldb,
                float* c, std::int64_t ldc);

}  // namespace gmreg

#endif  // GMREG_TENSOR_QUANTIZE_H_
