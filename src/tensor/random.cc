#include "tensor/random.h"

#include <cmath>

namespace gmreg {

void FillGaussian(Rng* rng, double mean, double stddev, Tensor* t) {
  float* p = t->data();
  for (std::int64_t i = 0; i < t->size(); ++i) {
    p[i] = static_cast<float>(rng->NextGaussian(mean, stddev));
  }
}

void FillUniform(Rng* rng, double lo, double hi, Tensor* t) {
  float* p = t->data();
  for (std::int64_t i = 0; i < t->size(); ++i) {
    p[i] = static_cast<float>(rng->NextUniform(lo, hi));
  }
}

double HeStdDev(std::int64_t fan_in) {
  GMREG_CHECK_GT(fan_in, 0);
  return std::sqrt(2.0 / static_cast<double>(fan_in));
}

void FillHeNormal(Rng* rng, std::int64_t fan_in, Tensor* t) {
  FillGaussian(rng, 0.0, HeStdDev(fan_in), t);
}

}  // namespace gmreg
