#ifndef GMREG_TENSOR_RANDOM_H_
#define GMREG_TENSOR_RANDOM_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace gmreg {

/// Fills `t` with N(mean, stddev²) samples.
void FillGaussian(Rng* rng, double mean, double stddev, Tensor* t);

/// Fills `t` with Uniform[lo, hi) samples.
void FillUniform(Rng* rng, double lo, double hi, Tensor* t);

/// He-normal initialization (He et al. 2015): N(0, sqrt(2/fan_in)²). The
/// paper's ResNet initialization; the per-layer initialized precision
/// fan_in/2 drives the GM `min` precision rule (Sec. V-E).
void FillHeNormal(Rng* rng, std::int64_t fan_in, Tensor* t);

/// Returns the He-normal standard deviation sqrt(2/fan_in).
double HeStdDev(std::int64_t fan_in);

}  // namespace gmreg

#endif  // GMREG_TENSOR_RANDOM_H_
