#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

namespace gmreg {

std::int64_t ShapeSize(const std::vector<std::int64_t>& shape) {
  std::int64_t total = 1;
  for (std::int64_t d : shape) total *= d;
  return total;
}

Tensor::Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
  for (std::int64_t d : shape_) GMREG_CHECK_GT(d, 0);
  data_.AssignZero(static_cast<std::size_t>(ShapeSize(shape_)));
}

Tensor::Tensor(std::initializer_list<std::int64_t> shape)
    : Tensor(std::vector<std::int64_t>(shape)) {}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  Tensor t({static_cast<std::int64_t>(values.size())});
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::Full(std::vector<std::int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

std::int64_t Tensor::dim(int i) const {
  GMREG_CHECK_GE(i, 0);
  GMREG_CHECK_LT(i, rank());
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::At(std::int64_t i) {
  GMREG_CHECK_EQ(rank(), 1);
  return data_[static_cast<std::size_t>(i)];
}
float Tensor::At(std::int64_t i) const {
  GMREG_CHECK_EQ(rank(), 1);
  return data_[static_cast<std::size_t>(i)];
}
float& Tensor::At(std::int64_t i, std::int64_t j) {
  GMREG_CHECK_EQ(rank(), 2);
  return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}
float Tensor::At(std::int64_t i, std::int64_t j) const {
  GMREG_CHECK_EQ(rank(), 2);
  return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}
float& Tensor::At(std::int64_t i, std::int64_t j, std::int64_t k,
                  std::int64_t l) {
  GMREG_CHECK_EQ(rank(), 4);
  return data_[static_cast<std::size_t>(
      ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
}
float Tensor::At(std::int64_t i, std::int64_t j, std::int64_t k,
                 std::int64_t l) const {
  GMREG_CHECK_EQ(rank(), 4);
  return data_[static_cast<std::size_t>(
      ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
}

void Tensor::Fill(float value) {
  std::fill(data_.data(), data_.data() + data_.size(), value);
}

void Tensor::Reshape(const std::vector<std::int64_t>& shape) {
  GMREG_CHECK_EQ(ShapeSize(shape), size());
  // Copy-assign so the member vector's capacity is reused — hot paths
  // (Flatten::Backward) reshape every batch and must not allocate.
  shape_ = shape;
}

void Tensor::Reshape(std::initializer_list<std::int64_t> shape) {
  std::int64_t total = 1;
  for (std::int64_t d : shape) total *= d;
  GMREG_CHECK_EQ(total, size());
  shape_.assign(shape);
}

void Tensor::Resize(const std::vector<std::int64_t>& shape) {
  shape_ = shape;  // copy-assign reuses the shape vector's capacity
  data_.AssignZero(static_cast<std::size_t>(ShapeSize(shape_)));
}

void Tensor::Resize(std::initializer_list<std::int64_t> shape) {
  shape_.assign(shape);
  std::int64_t total = 1;
  for (std::int64_t d : shape) total *= d;
  data_.AssignZero(static_cast<std::size_t>(total));
}

std::string Tensor::ShapeString() const {
  std::ostringstream oss;
  oss << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << shape_[i];
  }
  oss << "]";
  return oss.str();
}

}  // namespace gmreg
