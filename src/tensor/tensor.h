#ifndef GMREG_TENSOR_TENSOR_H_
#define GMREG_TENSOR_TENSOR_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/logging.h"

namespace gmreg {

namespace internal {

/// The float buffer under Tensor: vector-like value semantics (size +
/// capacity; copies reuse existing capacity, so copy-assigning a same-shape
/// tensor never allocates) with allocation routed through util/arena.h —
/// inside a planning ArenaScope new buffers land in the arena slab, outside
/// one they come from the 64-byte-aligned heap tier and count toward
/// gm.arena.steady_state_allocs. Growth never preserves contents (every
/// caller overwrites), and arena-backed blocks are abandoned rather than
/// freed (reclaimed only by Arena::Reset — see docs/MEMORY.md).
class FloatStore {
 public:
  FloatStore() = default;
  FloatStore(const FloatStore& other) { CopyFrom(other); }
  FloatStore& operator=(const FloatStore& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  FloatStore(FloatStore&& other) noexcept { MoveFrom(other); }
  FloatStore& operator=(FloatStore&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~FloatStore() { Release(); }

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }

  float& operator[](std::size_t i) { return ptr_[i]; }
  float operator[](std::size_t i) const { return ptr_[i]; }

  /// Sizes to `n` and zero-fills — vector::assign(n, 0.0f) semantics,
  /// reusing capacity when possible.
  void AssignZero(std::size_t n) {
    Reserve(n);
    size_ = n;
    if (n > 0) std::memset(ptr_, 0, n * sizeof(float));
  }

 private:
  void Reserve(std::size_t n) {
    if (n <= cap_) return;
    ArenaFreeRaw(ptr_, from_arena_);
    ptr_ = static_cast<float*>(ArenaAllocRaw(n * sizeof(float), &from_arena_));
    cap_ = n;
  }

  void CopyFrom(const FloatStore& other) {
    Reserve(other.size_);
    size_ = other.size_;
    if (size_ > 0) std::memcpy(ptr_, other.ptr_, size_ * sizeof(float));
  }

  void MoveFrom(FloatStore& other) noexcept {
    ptr_ = other.ptr_;
    size_ = other.size_;
    cap_ = other.cap_;
    from_arena_ = other.from_arena_;
    other.ptr_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
    other.from_arena_ = false;
  }

  void Release() {
    ArenaFreeRaw(ptr_, from_arena_);
    ptr_ = nullptr;
    size_ = 0;
    cap_ = 0;
    from_arena_ = false;
  }

  float* ptr_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  bool from_arena_ = false;
};

}  // namespace internal

/// Dense row-major float32 tensor. This is the numeric workhorse under the
/// NN substrate: parameters, activations and gradients are all Tensors.
///
/// Design notes:
///  * float32 storage matches the deep-learning substrate the paper used
///    (Apache SINGA); GM statistics are accumulated in double elsewhere.
///  * value semantics (copyable + movable); copies are explicit data copies.
///  * no strides/views — layers that need reinterpretation use Reshape,
///    which is O(1) and keeps the buffer.
class Tensor {
 public:
  /// Empty tensor (rank 0, size 0).
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape. All dims > 0.
  explicit Tensor(std::vector<std::int64_t> shape);
  Tensor(std::initializer_list<std::int64_t> shape);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;

  /// Builds a 1-d tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  /// Builds a tensor of the given shape filled with `value`.
  static Tensor Full(std::vector<std::int64_t> shape, float value);

  const std::vector<std::int64_t>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::int64_t dim(int i) const;
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  /// Elements the underlying buffer can hold without reallocating — what
  /// scratch-shrink heuristics (nn/conv.cc) compare against size().
  std::int64_t capacity() const {
    return static_cast<std::int64_t>(data_.capacity());
  }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat element access.
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Indexed access for common ranks (bounds-checked in debug via CHECK).
  float& At(std::int64_t i);
  float At(std::int64_t i) const;
  float& At(std::int64_t i, std::int64_t j);
  float At(std::int64_t i, std::int64_t j) const;
  float& At(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l);
  float At(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Sets every element to zero.
  void SetZero() { Fill(0.0f); }

  /// Reinterprets the shape; total size must be unchanged. O(1). Both
  /// overloads reuse the shape vector's capacity — hot paths (Flatten)
  /// reshape per batch and must not allocate.
  void Reshape(const std::vector<std::int64_t>& shape);
  void Reshape(std::initializer_list<std::int64_t> shape);

  /// Takes a new shape, zero-filled, reusing the existing buffer whenever
  /// the new total fits its capacity — Tensor(shape) semantics without the
  /// reallocation, so alternating batch sizes (A/B/A/B serving traffic)
  /// stay allocation-free once the largest shape has been visited
  /// (docs/MEMORY.md).
  void Resize(const std::vector<std::int64_t>& shape);
  void Resize(std::initializer_list<std::int64_t> shape);

  /// "[2, 3, 4]" — for logging and error messages.
  std::string ShapeString() const;

  /// True when shapes are identical.
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<std::int64_t> shape_;
  internal::FloatStore data_;
};

/// Product of dims; 1 for an empty shape.
std::int64_t ShapeSize(const std::vector<std::int64_t>& shape);

}  // namespace gmreg

#endif  // GMREG_TENSOR_TENSOR_H_
