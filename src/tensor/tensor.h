#ifndef GMREG_TENSOR_TENSOR_H_
#define GMREG_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/logging.h"

namespace gmreg {

/// Dense row-major float32 tensor. This is the numeric workhorse under the
/// NN substrate: parameters, activations and gradients are all Tensors.
///
/// Design notes:
///  * float32 storage matches the deep-learning substrate the paper used
///    (Apache SINGA); GM statistics are accumulated in double elsewhere.
///  * value semantics (copyable + movable); copies are explicit data copies.
///  * no strides/views — layers that need reinterpretation use Reshape,
///    which is O(1) and keeps the buffer.
class Tensor {
 public:
  /// Empty tensor (rank 0, size 0).
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape. All dims > 0.
  explicit Tensor(std::vector<std::int64_t> shape);
  Tensor(std::initializer_list<std::int64_t> shape);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;

  /// Builds a 1-d tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  /// Builds a tensor of the given shape filled with `value`.
  static Tensor Full(std::vector<std::int64_t> shape, float value);

  const std::vector<std::int64_t>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::int64_t dim(int i) const;
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat element access.
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Indexed access for common ranks (bounds-checked in debug via CHECK).
  float& At(std::int64_t i);
  float At(std::int64_t i) const;
  float& At(std::int64_t i, std::int64_t j);
  float At(std::int64_t i, std::int64_t j) const;
  float& At(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l);
  float At(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Sets every element to zero.
  void SetZero() { Fill(0.0f); }

  /// Reinterprets the shape; total size must be unchanged. O(1).
  void Reshape(std::vector<std::int64_t> shape);

  /// "[2, 3, 4]" — for logging and error messages.
  std::string ShapeString() const;

  /// True when shapes are identical.
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

/// Product of dims; 1 for an empty shape.
std::int64_t ShapeSize(const std::vector<std::int64_t>& shape);

}  // namespace gmreg

#endif  // GMREG_TENSOR_TENSOR_H_
