#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/gemm_kernel.h"
#include "util/arena.h"
#include "util/metrics.h"
#include "util/parallel.h"

namespace gmreg {
namespace {

// Flop budget per GEMM shard: at the ~50 GFLOP/s the packed kernel
// delivers a shard is tens of microseconds, comfortably above the pool
// dispatch cost.
constexpr std::int64_t kGemmShardFlops = std::int64_t{1} << 21;

// The 2D tile grid aims for at least this many work-queue items (when the
// per-tile flop floor allows), so budgets up to 8-16 threads stay fed.
constexpr std::int64_t kGemmTargetTiles = 16;

// Hot-path kernel accounting, surfaced through MetricsRegistry snapshots
// (docs/OBSERVABILITY.md). Pointers are cached once; Add is an atomic.
struct KernelCounters {
  Counter* gemm_calls;
  Counter* gemm_flops;
  Counter* pack_bytes;
};

KernelCounters& GlobalKernelCounters() {
  static KernelCounters counters = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.gauge("gm.kernel.simd")->Set(SimdKernelsEnabled() ? 1.0 : 0.0);
    registry.gauge("gm.kernel.tier")
        ->Set(static_cast<double>(GetKernelOps().tier));
    return KernelCounters{registry.counter("gm.kernel.gemm_calls"),
                          registry.counter("gm.kernel.gemm_flops"),
                          registry.counter("gm.kernel.pack_bytes")};
  }();
  return counters;
}

// Scales (or clears) rows [i0, i1) of C by beta. beta == 0 overwrites —
// BLAS semantics: existing NaN/Inf in C are discarded, not propagated.
void ScaleRows(std::int64_t i0, std::int64_t i1, std::int64_t n, float beta,
               float* c, std::int64_t ldc) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    for (std::int64_t i = i0; i < i1; ++i) {
      std::memset(c + i * ldc, 0, static_cast<std::size_t>(n) * sizeof(float));
    }
    return;
  }
  for (std::int64_t i = i0; i < i1; ++i) {
    float* row = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
  }
}

// Unpacked fallback for GEMMs too small to amortize panel packing. Unlike
// the pre-blocked kernel there is no zero-skip fast path: every A element
// participates, so NaN/Inf in B propagate exactly as the math demands.
void GemmSmall(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const float* a, std::int64_t lda,
               const float* b, std::int64_t ldb, float beta, float* c,
               std::int64_t ldc) {
  ScaleRows(0, m, n, beta, c, ldc);
  for (std::int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += av * bv;
      }
      c_row[j] += alpha * acc;
    }
  }
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  KernelCounters& counters = GlobalKernelCounters();
  counters.gemm_calls->Add(1);
  counters.gemm_flops->Add(2 * m * n * k);
  // alpha == 0 (or an empty k) never reads A or B — BLAS semantics.
  if (alpha == 0.0f || k == 0) {
    ScaleRows(0, m, n, beta, c, ldc);
    return;
  }
  // Path choice depends only on the shape, never on the thread budget, so a
  // given problem always takes the same arithmetic.
  if (2 * m * n * k <= kGemmSmallFlops) {
    GemmSmall(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  // Pack op(B) once into a caller-local buffer shared read-only by every
  // tile; each tile packs its own A panels (docs/KERNELS.md). The buffer is
  // arena-served scratch (grow-only, per thread): conv layers call Gemm
  // from inside pool workers, and whichever worker packs first must not
  // touch the heap in steady state (docs/MEMORY.md).
  const GemmGeometry geo = GetGemmGeometry();
  thread_local ScratchBuffer<float> bpack;
  std::int64_t b_floats = PackedBFloats(k, n, geo);
  float* bp_mut = bpack.EnsureCapacity(static_cast<std::size_t>(b_floats));
  PackB(trans_b, b, ldb, k, n, bp_mut, geo);
  counters.pack_bytes->Add(b_floats * static_cast<std::int64_t>(sizeof(float)));
  const float* bp = bp_mut;
  // 2D (MC x NC) tile grid over C, drained by a dynamic work queue. Tile
  // boundaries depend only on (m, n, k) and the process-constant geometry —
  // never on the thread budget — and every C element belongs to exactly one
  // tile, inside which it accumulates in fixed slab order. So any dynamic
  // assignment of tiles to threads yields bitwise-identical output; inside
  // another parallel region (e.g. the batch-parallel conv passes) the queue
  // degrades to an in-order serial drain.
  std::int64_t tile_n = geo.nc;  // multiple of geo.nr, so packed panels align
  std::int64_t tile_m = geo.mc;
  auto grid_tiles = [&] {
    return ((m + tile_m - 1) / tile_m) * ((n + tile_n - 1) / tile_n);
  };
  // Refine a too-coarse grid by halving the row block (kept an MR multiple)
  // while the halved tiles still clear the per-tile flop floor.
  while (grid_tiles() < kGemmTargetTiles) {
    std::int64_t half = (tile_m / 2 + geo.mr - 1) / geo.mr * geo.mr;
    if (half >= tile_m || half < geo.mr) break;
    if (2 * half * std::min(tile_n, n) * k < kGemmShardFlops) break;
    tile_m = half;
  }
  std::int64_t nt = (n + tile_n - 1) / tile_n;
  std::int64_t mt = (m + tile_m - 1) / tile_m;
  ParallelRunDynamic(mt * nt, [&](std::int64_t t) {
    std::int64_t i0 = (t / nt) * tile_m;
    std::int64_t j0 = (t % nt) * tile_n;
    GemmPackedBlock(trans_a, i0, std::min(i0 + tile_m, m), j0,
                    std::min(j0 + tile_n, n), n, k, alpha, a, lda, bp, beta,
                    c, ldc, geo);
  });
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  GMREG_CHECK_EQ(a.rank(), 2);
  GMREG_CHECK_EQ(b.rank(), 2);
  GMREG_CHECK_EQ(a.dim(1), b.dim(0));
  GMREG_CHECK_EQ(out->rank(), 2);
  GMREG_CHECK_EQ(out->dim(0), a.dim(0));
  GMREG_CHECK_EQ(out->dim(1), b.dim(1));
  Gemm(false, false, a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), a.dim(1),
       b.data(), b.dim(1), 0.0f, out->data(), out->dim(1));
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  GMREG_CHECK_EQ(x.size(), y->size());
  GetKernelOps().axpy(x.size(), alpha, x.data(), y->data());
}

void AddRowBroadcast(std::int64_t rows, std::int64_t cols, const float* row,
                     float* out) {
  GetKernelOps().add_row_broadcast(rows, cols, row, out);
}

void AddColBroadcast(std::int64_t rows, std::int64_t cols, const float* col,
                     float* out) {
  GetKernelOps().add_col_broadcast(rows, cols, col, out);
}

void ColSumsAccum(std::int64_t rows, std::int64_t cols, const float* m,
                  float* out) {
  GetKernelOps().col_sums_accum(rows, cols, m, out);
}

void RowSumsAccum(std::int64_t rows, std::int64_t cols, const float* m,
                  float* out) {
  GetKernelOps().row_sums_accum(rows, cols, m, out);
}

void Scale(float alpha, Tensor* x) {
  float* xp = x->data();
  std::int64_t n = x->size();
  for (std::int64_t i = 0; i < n; ++i) xp[i] *= alpha;
}

void Add(const Tensor& a, const Tensor& b, Tensor* out) {
  GMREG_CHECK_EQ(a.size(), b.size());
  GMREG_CHECK_EQ(a.size(), out->size());
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) op[i] = ap[i] + bp[i];
}

void Sub(const Tensor& a, const Tensor& b, Tensor* out) {
  GMREG_CHECK_EQ(a.size(), b.size());
  GMREG_CHECK_EQ(a.size(), out->size());
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) op[i] = ap[i] - bp[i];
}

void Mul(const Tensor& a, const Tensor& b, Tensor* out) {
  GMREG_CHECK_EQ(a.size(), b.size());
  GMREG_CHECK_EQ(a.size(), out->size());
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) op[i] = ap[i] * bp[i];
}

double Sum(const Tensor& x) {
  double acc = 0.0;
  const float* xp = x.data();
  for (std::int64_t i = 0; i < x.size(); ++i) acc += xp[i];
  return acc;
}

double SumSquares(const Tensor& x) {
  double acc = 0.0;
  const float* xp = x.data();
  for (std::int64_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(xp[i]) * xp[i];
  }
  return acc;
}

double SumAbs(const Tensor& x) {
  double acc = 0.0;
  const float* xp = x.data();
  for (std::int64_t i = 0; i < x.size(); ++i) acc += std::fabs(xp[i]);
  return acc;
}

double Dot(const Tensor& a, const Tensor& b) {
  GMREG_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  const float* ap = a.data();
  const float* bp = b.data();
  for (std::int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(ap[i]) * bp[i];
  }
  return acc;
}

float MaxAbs(const Tensor& x) {
  float best = 0.0f;
  const float* xp = x.data();
  for (std::int64_t i = 0; i < x.size(); ++i) {
    best = std::max(best, std::fabs(xp[i]));
  }
  return best;
}

std::int64_t ArgMaxRow(const Tensor& x, std::int64_t row) {
  GMREG_CHECK_EQ(x.rank(), 2);
  GMREG_CHECK_GE(row, 0);
  GMREG_CHECK_LT(row, x.dim(0));
  const float* base = x.data() + row * x.dim(1);
  std::int64_t best = 0;
  for (std::int64_t j = 1; j < x.dim(1); ++j) {
    if (base[j] > base[best]) best = j;
  }
  return best;
}

}  // namespace gmreg
