#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/parallel.h"

namespace gmreg {
namespace {

// Flop budget per GEMM shard: at the measured ~14 GFLOP/s a shard is tens
// of microseconds, comfortably above the pool dispatch cost.
constexpr std::int64_t kGemmShardFlops = std::int64_t{1} << 19;

// One shard of a GEMM: output rows [i0, i1) of C. Rows of C are disjoint
// across shards and every element keeps its serial accumulation order
// (ascending p), so the parallel result is bitwise identical to serial.
void GemmRows(bool trans_a, bool trans_b, std::int64_t i0, std::int64_t i1,
              std::int64_t n, std::int64_t k, float alpha, const float* a,
              std::int64_t lda, const float* b, std::int64_t ldb, float beta,
              float* c, std::int64_t ldc) {
  // Scale (or clear) this shard's C rows first.
  if (beta == 0.0f) {
    for (std::int64_t i = i0; i < i1; ++i) {
      std::memset(c + i * ldc, 0, static_cast<std::size_t>(n) * sizeof(float));
    }
  } else if (beta != 1.0f) {
    for (std::int64_t i = i0; i < i1; ++i) {
      for (std::int64_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
    }
  }
  if (!trans_a && !trans_b) {
    // C[i,j] += A[i,p] * B[p,j]; i-p-j order keeps B and C accesses
    // contiguous so the compiler can vectorize the j loop.
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* a_row = a + i * lda;
      float* c_row = c + i * ldc;
      for (std::int64_t p = 0; p < k; ++p) {
        float a_ip = alpha * a_row[p];
        if (a_ip == 0.0f) continue;
        const float* b_row = b + p * ldb;
        for (std::int64_t j = 0; j < n; ++j) {
          c_row[j] += a_ip * b_row[j];
        }
      }
    }
    return;
  }
  if (trans_a && !trans_b) {
    // C[i,j] += sum_p A[p,i] * B[p,j]; A is read column-wise. Used by the
    // backward passes, which dominate less than the forward GEMM.
    for (std::int64_t i = i0; i < i1; ++i) {
      float* c_row = c + i * ldc;
      for (std::int64_t p = 0; p < k; ++p) {
        float a_pi = alpha * a[p * lda + i];
        if (a_pi == 0.0f) continue;
        const float* b_row = b + p * ldb;
        for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_pi * b_row[j];
      }
    }
    return;
  }
  if (!trans_a && trans_b) {
    // C[i,j] += sum_p A[i,p] * B[j,p] — dot of two contiguous rows.
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* a_row = a + i * lda;
      float* c_row = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* b_row = b + j * ldb;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
        c_row[j] += alpha * acc;
      }
    }
    return;
  }
  // trans_a && trans_b: C[i,j] += sum_p A[p,i] * B[j,p]
  for (std::int64_t i = i0; i < i1; ++i) {
    float* c_row = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * ldb;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += a[p * lda + i] * b_row[p];
      c_row[j] += alpha * acc;
    }
  }
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc) {
  // Shard over output rows. Inside another parallel region (e.g. the
  // batch-parallel conv forward) this degrades to one serial call.
  std::int64_t flops_per_row =
      2 * std::max<std::int64_t>(n, 1) * std::max<std::int64_t>(k, 1);
  std::int64_t grain = std::max<std::int64_t>(1, kGemmShardFlops / flops_per_row);
  ParallelFor(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
    GemmRows(trans_a, trans_b, i0, i1, n, k, alpha, a, lda, b, ldb, beta, c,
             ldc);
  });
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  GMREG_CHECK_EQ(a.rank(), 2);
  GMREG_CHECK_EQ(b.rank(), 2);
  GMREG_CHECK_EQ(a.dim(1), b.dim(0));
  GMREG_CHECK_EQ(out->rank(), 2);
  GMREG_CHECK_EQ(out->dim(0), a.dim(0));
  GMREG_CHECK_EQ(out->dim(1), b.dim(1));
  Gemm(false, false, a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), a.dim(1),
       b.data(), b.dim(1), 0.0f, out->data(), out->dim(1));
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  GMREG_CHECK_EQ(x.size(), y->size());
  const float* xp = x.data();
  float* yp = y->data();
  std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

void Scale(float alpha, Tensor* x) {
  float* xp = x->data();
  std::int64_t n = x->size();
  for (std::int64_t i = 0; i < n; ++i) xp[i] *= alpha;
}

void Add(const Tensor& a, const Tensor& b, Tensor* out) {
  GMREG_CHECK_EQ(a.size(), b.size());
  GMREG_CHECK_EQ(a.size(), out->size());
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) op[i] = ap[i] + bp[i];
}

void Sub(const Tensor& a, const Tensor& b, Tensor* out) {
  GMREG_CHECK_EQ(a.size(), b.size());
  GMREG_CHECK_EQ(a.size(), out->size());
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) op[i] = ap[i] - bp[i];
}

void Mul(const Tensor& a, const Tensor& b, Tensor* out) {
  GMREG_CHECK_EQ(a.size(), b.size());
  GMREG_CHECK_EQ(a.size(), out->size());
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) op[i] = ap[i] * bp[i];
}

double Sum(const Tensor& x) {
  double acc = 0.0;
  const float* xp = x.data();
  for (std::int64_t i = 0; i < x.size(); ++i) acc += xp[i];
  return acc;
}

double SumSquares(const Tensor& x) {
  double acc = 0.0;
  const float* xp = x.data();
  for (std::int64_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(xp[i]) * xp[i];
  }
  return acc;
}

double SumAbs(const Tensor& x) {
  double acc = 0.0;
  const float* xp = x.data();
  for (std::int64_t i = 0; i < x.size(); ++i) acc += std::fabs(xp[i]);
  return acc;
}

double Dot(const Tensor& a, const Tensor& b) {
  GMREG_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  const float* ap = a.data();
  const float* bp = b.data();
  for (std::int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(ap[i]) * bp[i];
  }
  return acc;
}

float MaxAbs(const Tensor& x) {
  float best = 0.0f;
  const float* xp = x.data();
  for (std::int64_t i = 0; i < x.size(); ++i) {
    best = std::max(best, std::fabs(xp[i]));
  }
  return best;
}

std::int64_t ArgMaxRow(const Tensor& x, std::int64_t row) {
  GMREG_CHECK_EQ(x.rank(), 2);
  GMREG_CHECK_GE(row, 0);
  GMREG_CHECK_LT(row, x.dim(0));
  const float* base = x.data() + row * x.dim(1);
  std::int64_t best = 0;
  for (std::int64_t j = 1; j < x.dim(1); ++j) {
    if (base[j] > base[best]) best = j;
  }
  return best;
}

}  // namespace gmreg
