#ifndef GMREG_TENSOR_TENSOR_OPS_H_
#define GMREG_TENSOR_TENSOR_OPS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace gmreg {

/// C[m,n] (+)= alpha * op(A) * op(B): single-precision GEMM with optional
/// transposes, row-major, simple register-blocked kernel. `beta` scales the
/// existing C (0 overwrites). Dimensions are of op(A)=m*k and op(B)=k*n.
void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc);

/// out = a * b for rank-2 tensors; out is resized/allocated by the caller
/// with shape [a.dim(0), b.dim(1)].
void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

/// y += alpha * x (same shape).
void Axpy(float alpha, const Tensor& x, Tensor* y);

/// x *= alpha.
void Scale(float alpha, Tensor* x);

/// out = a + b elementwise (same shape).
void Add(const Tensor& a, const Tensor& b, Tensor* out);

/// out = a - b elementwise (same shape).
void Sub(const Tensor& a, const Tensor& b, Tensor* out);

/// out = a * b elementwise (same shape).
void Mul(const Tensor& a, const Tensor& b, Tensor* out);

/// Sum of all elements (double accumulator).
double Sum(const Tensor& x);

/// Sum of squares (double accumulator).
double SumSquares(const Tensor& x);

/// Sum of absolute values (double accumulator).
double SumAbs(const Tensor& x);

/// Dot product (double accumulator); same shape required.
double Dot(const Tensor& a, const Tensor& b);

/// Largest absolute element; 0 for empty tensors.
float MaxAbs(const Tensor& x);

/// Index of the maximum element in row `row` of a rank-2 tensor.
std::int64_t ArgMaxRow(const Tensor& x, std::int64_t row);

}  // namespace gmreg

#endif  // GMREG_TENSOR_TENSOR_OPS_H_
