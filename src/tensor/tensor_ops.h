#ifndef GMREG_TENSOR_TENSOR_OPS_H_
#define GMREG_TENSOR_TENSOR_OPS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace gmreg {

/// C[m,n] (+)= alpha * op(A) * op(B): single-precision GEMM with optional
/// transposes, row-major. Backed by the packed register-tiled kernel of
/// tensor/gemm_kernel.h (micro-kernel + B/A panel packing, SIMD behind the
/// GMREG_SIMD gate); all four transpose variants route through the same
/// packed kernel. `beta` scales the existing C first (0 overwrites,
/// discarding NaN/Inf per BLAS convention; alpha == 0 never reads A or B).
/// NaN/Inf in A and B propagate — there is no zero-skip fast path. Results
/// are bitwise identical at every thread budget (docs/KERNELS.md).
void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc);

/// out = a * b for rank-2 tensors; out is resized/allocated by the caller
/// with shape [a.dim(0), b.dim(1)].
void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

/// y += alpha * x (same shape). Dispatches to the vectorized elementwise
/// tier (tensor/gemm_kernel.h).
void Axpy(float alpha, const Tensor& x, Tensor* y);

/// out[i*cols + j] += row[j] — bias broadcast across `rows` rows.
void AddRowBroadcast(std::int64_t rows, std::int64_t cols, const float* row,
                     float* out);

/// out[i*cols + j] += col[i] — per-row constant broadcast (conv bias over
/// spatial positions).
void AddColBroadcast(std::int64_t rows, std::int64_t cols, const float* col,
                     float* out);

/// out[j] += sum_i m[i*cols + j] — column sums (dense bias gradient).
void ColSumsAccum(std::int64_t rows, std::int64_t cols, const float* m,
                  float* out);

/// out[i] += sum_j m[i*cols + j] — row sums (conv bias gradient).
void RowSumsAccum(std::int64_t rows, std::int64_t cols, const float* m,
                  float* out);

/// x *= alpha.
void Scale(float alpha, Tensor* x);

/// out = a + b elementwise (same shape).
void Add(const Tensor& a, const Tensor& b, Tensor* out);

/// out = a - b elementwise (same shape).
void Sub(const Tensor& a, const Tensor& b, Tensor* out);

/// out = a * b elementwise (same shape).
void Mul(const Tensor& a, const Tensor& b, Tensor* out);

/// Sum of all elements (double accumulator).
double Sum(const Tensor& x);

/// Sum of squares (double accumulator).
double SumSquares(const Tensor& x);

/// Sum of absolute values (double accumulator).
double SumAbs(const Tensor& x);

/// Dot product (double accumulator); same shape required.
double Dot(const Tensor& a, const Tensor& b);

/// Largest absolute element; 0 for empty tensors.
float MaxAbs(const Tensor& x);

/// Index of the maximum element in row `row` of a rank-2 tensor.
std::int64_t ArgMaxRow(const Tensor& x, std::int64_t row);

}  // namespace gmreg

#endif  // GMREG_TENSOR_TENSOR_OPS_H_
