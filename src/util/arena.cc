#include "util/arena.h"

#include <algorithm>
#include <cstdlib>

#include "util/env.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace gmreg {
namespace {

// Default slab when GMREG_MEM is unset: 256 MB, dynet's historical default.
// Virtual reservation only — untouched pages cost nothing on Linux.
constexpr std::size_t kDefaultCapacityBytes = std::size_t{256} << 20;

constexpr std::size_t RoundUpAlign(std::size_t n) {
  return (n + Arena::kAlignment - 1) & ~(Arena::kAlignment - 1);
}

thread_local Arena* tls_current_arena = nullptr;

// Arena accounting, surfaced through MetricsRegistry snapshots
// (docs/OBSERVABILITY.md / docs/MEMORY.md). Cached-pointer pattern: the
// registry lookup is mutexed, the instruments themselves are atomics.
struct ArenaCounters {
  Gauge* bytes_reserved;         ///< slab size actually reserved
  Gauge* high_water;             ///< peak bytes ever bump-allocated
  Counter* plan_rebuilds;        ///< shape changes that forced a re-plan
  Counter* steady_state_allocs;  ///< buffer growth outside a planning scope
  Counter* fallback_allocs;      ///< slab exhausted -> heap fallback
};

ArenaCounters& GlobalArenaCounters() {
  static ArenaCounters counters = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return ArenaCounters{registry.gauge("gm.arena.bytes_reserved"),
                         registry.gauge("gm.arena.high_water"),
                         registry.counter("gm.arena.plan_rebuilds"),
                         registry.counter("gm.arena.steady_state_allocs"),
                         registry.counter("gm.arena.fallback_allocs")};
  }();
  return counters;
}

// Heap tier under the arena: 64-byte-aligned operator new, so SIMD kernels
// see the same alignment whichever tier served the block, and the test-lib
// operator-new interposer (tests/testutil/alloc_count.h) observes every
// heap allocation the arena could not absorb.
void* HeapAllocAligned(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  return ::operator new(bytes, std::align_val_t{Arena::kAlignment});
}

}  // namespace

Arena::Arena(std::size_t capacity_bytes, bool report_metrics)
    : capacity_(RoundUpAlign(capacity_bytes)),
      report_metrics_(report_metrics) {}

Arena::~Arena() {
  char* slab = slab_.load(std::memory_order_acquire);
  // The slab comes from std::aligned_alloc, deliberately below operator new:
  // reserving it must not show up in the interposed allocation counts.
  std::free(slab);
}

char* Arena::ReserveSlab() {
  std::lock_guard<std::mutex> lock(reserve_mu_);
  char* slab = slab_.load(std::memory_order_acquire);
  if (slab != nullptr) return slab;
  if (capacity_ == 0) return nullptr;
  slab = static_cast<char*>(std::aligned_alloc(kAlignment, capacity_));
  if (slab == nullptr) {
    GMREG_LOG(Warning) << "arena: failed to reserve " << capacity_
                       << " bytes; every allocation will fall back to heap";
    return nullptr;
  }
  if (report_metrics_) {
    GlobalArenaCounters().bytes_reserved->Set(static_cast<double>(capacity_));
  }
  slab_.store(slab, std::memory_order_release);
  return slab;
}

void* Arena::TryAllocate(std::size_t bytes) {
  std::size_t need = RoundUpAlign(bytes == 0 ? 1 : bytes);
  if (need > capacity_) return nullptr;
  char* slab = slab_.load(std::memory_order_acquire);
  if (slab == nullptr) {
    slab = ReserveSlab();
    if (slab == nullptr) return nullptr;
  }
  std::size_t off = offset_.fetch_add(need, std::memory_order_relaxed);
  if (off + need > capacity_) return nullptr;  // exhausted; offset stays high
  std::size_t top = off + need;
  std::size_t seen = high_water_.load(std::memory_order_relaxed);
  while (top > seen && !high_water_.compare_exchange_weak(
                           seen, top, std::memory_order_relaxed)) {
  }
  alloc_count_.fetch_add(1, std::memory_order_relaxed);
  if (report_metrics_) {
    GlobalArenaCounters().high_water->Set(
        static_cast<double>(high_water_.load(std::memory_order_relaxed)));
  }
  return slab + off;
}

void Arena::Reset() {
  offset_.store(0, std::memory_order_relaxed);
  reset_count_.fetch_add(1, std::memory_order_relaxed);
}

bool Arena::Owns(const void* p) const {
  const char* slab = slab_.load(std::memory_order_acquire);
  if (slab == nullptr || p == nullptr) return false;
  const char* c = static_cast<const char*>(p);
  return c >= slab && c < slab + capacity_;
}

void Arena::RecordFallback() {
  fallback_count_.fetch_add(1, std::memory_order_relaxed);
  GlobalArenaCounters().fallback_allocs->Add(1);
}

Arena* Arena::Current() { return tls_current_arena; }

ArenaScope::ArenaScope(Arena* arena)
    : prev_(tls_current_arena), installed_(arena != nullptr) {
  // nullptr is a deliberate no-op: plan sites write
  // `ArenaScope scope(replan ? &GlobalArena() : nullptr)` and a nested
  // non-replanning site must not clear an outer planning scope.
  if (installed_) tls_current_arena = arena;
}

ArenaScope::~ArenaScope() {
  if (installed_) tls_current_arena = prev_;
}

Arena& GlobalArena() {
  // Leaked on purpose: arena-backed buffers may live in static-duration
  // objects (thread_local kernel scratch), so the slab must never die first.
  static Arena* arena = [] {
    long long env = GetMemEnvBytes();
    std::size_t cap = env > 0 ? static_cast<std::size_t>(env)
                              : kDefaultCapacityBytes;
    return new Arena(cap, /*report_metrics=*/true);
  }();
  return *arena;
}

void* ArenaAllocRaw(std::size_t bytes, bool* from_arena) {
  return ArenaAllocRawFrom(Arena::Current(), bytes, from_arena);
}

void* ArenaAllocRawFrom(Arena* arena, std::size_t bytes, bool* from_arena) {
  if (Arena::Current() == nullptr) {
    // Outside any planning scope: a flat reading of this counter across a
    // steady-state window is the "0 allocs" contract the alloc tests gate.
    GlobalArenaCounters().steady_state_allocs->Add(1);
  }
  if (arena != nullptr) {
    void* p = arena->TryAllocate(bytes);
    if (p != nullptr) {
      *from_arena = true;
      return p;
    }
    arena->RecordFallback();
  }
  *from_arena = false;
  return HeapAllocAligned(bytes);
}

void ArenaFreeRaw(void* p, bool from_arena) {
  if (p == nullptr || from_arena) return;  // arena blocks die with Reset()
  ::operator delete(p, std::align_val_t{Arena::kAlignment});
}

void RecordArenaPlanRebuild() { GlobalArenaCounters().plan_rebuilds->Add(1); }

}  // namespace gmreg
