#ifndef GMREG_UTIL_ARENA_H_
#define GMREG_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>

namespace gmreg {

/// Bump allocator backing the zero-allocation steady state (docs/MEMORY.md).
/// One contiguous slab, reserved lazily on the first allocation, carved out
/// by an atomic offset bump: allocation is a fetch_add, deallocation does
/// not exist, and Reset() reclaims everything at once.
///
/// The intended lifecycle is dynet-style plan-once execution: a planning
/// pass (the first batch of a new shape) runs under an ArenaScope, so every
/// intermediate buffer sized during that pass lands in the slab; steady-state
/// batches then reuse those buffers and never allocate. Reset() is only safe
/// when no arena-backed buffer is live — in practice at test boundaries or
/// after the consumers (nets, sessions) are gone; the training and serving
/// paths never call it mid-run.
///
/// Thread safety: TryAllocate is safe from any number of threads (the pool
/// workers allocate their kernel scratch here during planning). Reset is
/// not — it requires external quiescence by design.
class Arena {
 public:
  /// Every block is aligned to this (cache line / widest SIMD vector).
  static constexpr std::size_t kAlignment = 64;

  /// Capacity is fixed at construction; the slab itself is reserved on the
  /// first TryAllocate so merely constructing an Arena costs nothing.
  /// `report_metrics` wires reservation and high-water into the gm.arena.*
  /// gauges — true only for GlobalArena() (private test arenas would
  /// otherwise fight over the gauges).
  explicit Arena(std::size_t capacity_bytes, bool report_metrics = false);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` rounded up to kAlignment. Returns nullptr when
  /// the slab is exhausted — callers fall back to the heap and record it via
  /// RecordFallback() (the gm.arena.fallback_allocs counter), so running out
  /// of arena degrades to the old malloc behaviour instead of failing.
  void* TryAllocate(std::size_t bytes);

  /// Forgets every block at once (offset back to zero). The slab stays
  /// reserved. Only valid when no arena-backed buffer is live; see class
  /// comment.
  void Reset();

  /// True when `p` points into the reserved slab.
  bool Owns(const void* p) const;

  /// Counts a heap fallback taken on this arena's behalf (slab exhausted).
  void RecordFallback();

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const {
    std::size_t off = offset_.load(std::memory_order_relaxed);
    return off < capacity_ ? off : capacity_;
  }
  std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  std::int64_t fallback_count() const {
    return fallback_count_.load(std::memory_order_relaxed);
  }
  std::int64_t reset_count() const {
    return reset_count_.load(std::memory_order_relaxed);
  }

  /// Number of blocks served from the slab since construction (resets do not
  /// clear it). Tests assert this stays flat across steady-state steps.
  std::int64_t AllocCountForTesting() const {
    return alloc_count_.load(std::memory_order_relaxed);
  }

  /// The arena planning scopes install for the calling thread (nullptr when
  /// no scope is active). Buffer growth consults this: inside a scope it
  /// lands in the arena, outside it falls back to the heap and counts
  /// toward gm.arena.steady_state_allocs.
  static Arena* Current();

 private:
  friend class ArenaScope;

  char* ReserveSlab();

  const std::size_t capacity_;
  const bool report_metrics_;
  std::atomic<char*> slab_{nullptr};
  std::mutex reserve_mu_;
  std::atomic<std::size_t> offset_{0};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::int64_t> alloc_count_{0};
  std::atomic<std::int64_t> fallback_count_{0};
  std::atomic<std::int64_t> reset_count_{0};
};

/// RAII planning scope: makes `arena` the calling thread's Arena::Current()
/// until destruction (restores the previous one — scopes nest). Passing
/// nullptr is a no-op scope, which lets call sites write
/// `ArenaScope scope(replan ? &GlobalArena() : nullptr)`.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* prev_;
  bool installed_;
};

/// The process-wide arena every planning pass binds into. Capacity comes
/// from GMREG_MEM (util/env.h: plain MB count, or k/m/g suffixed); default
/// 256 MB. Reserved lazily, never destroyed.
Arena& GlobalArena();

/// Arena-first raw allocation for tensor storage and kernel scratch:
///  * a planning scope is active  -> bump-allocate from Arena::Current()
///    (heap on exhaustion, counted via RecordFallback);
///  * no scope                    -> heap (64-byte aligned), counted in
///    gm.arena.steady_state_allocs — across a steady-state window this
///    counter must stay flat, which is exactly what the `alloc` test label
///    asserts.
/// `*from_arena` reports provenance; heap blocks are released with
/// ArenaFreeRaw, arena blocks are simply abandoned (reclaimed by Reset).
void* ArenaAllocRaw(std::size_t bytes, bool* from_arena);

/// Like ArenaAllocRaw but always tries `arena` even without a scope. Used
/// for per-worker kernel scratch (pack panels): a pool worker that first
/// touches its scratch mid-run still must not hit the heap.
void* ArenaAllocRawFrom(Arena* arena, std::size_t bytes, bool* from_arena);

/// Releases a heap block from ArenaAllocRaw*; no-op for arena blocks.
void ArenaFreeRaw(void* p, bool from_arena);

/// Bumps gm.arena.plan_rebuilds — called by the plan-once sites (Sequential,
/// Trainer, InferenceSession) when a shape change forces a new planning
/// pass. Keeps the metric name literal in one translation unit.
void RecordArenaPlanRebuild();

/// Shape key for the plan-once sites: an LRU set of the input shapes that
/// have sized a step's buffers. The first batch of a never-seen shape
/// replans (the caller installs an ArenaScope and re-runs the sizing);
/// revisiting any of the last kCapacity shapes returns false and runs
/// scope-free — alternating batch sizes (A/B/A/B) stay allocation-free
/// because the underlying buffers are grow-only, so whatever the largest
/// remembered shape sized still fits every smaller one (docs/MEMORY.md).
class ShapePlan {
 public:
  /// True when (dims, rank) matches none of the remembered shapes; inserts
  /// it as most-recent, evicting the least-recently-used past capacity. A
  /// match promotes the shape to most-recent and returns false.
  bool Update(const std::int64_t* dims, int rank) {
    for (int s = 0; s < size_; ++s) {
      const Key& key = keys_[order_[s]];
      if (key.rank != rank || rank > kMaxRank) continue;
      bool same = true;
      for (int i = 0; i < rank; ++i) same = same && key.dims[i] == dims[i];
      if (!same) continue;
      Promote(s);
      return false;
    }
    std::int8_t slot;
    if (size_ < kCapacity) {
      slot = size_++;
    } else {
      slot = order_[kCapacity - 1];  // evict the LRU entry
    }
    Key& key = keys_[slot];
    key.rank = rank;
    for (int i = 0; i < rank && i < kMaxRank; ++i) key.dims[i] = dims[i];
    for (int s = size_ - 1; s > 0; --s) order_[s] = order_[s - 1];
    order_[0] = slot;
    return true;
  }

 private:
  static constexpr int kMaxRank = 8;   // > rank 4 tensors do not exist here
  static constexpr int kCapacity = 8;  // remembered shapes per plan site

  struct Key {
    std::int64_t dims[kMaxRank] = {};
    int rank = -1;
  };

  /// Moves order_[pos] to the front (most-recent) of the recency list.
  void Promote(int pos) {
    std::int8_t slot = order_[pos];
    for (int s = pos; s > 0; --s) order_[s] = order_[s - 1];
    order_[0] = slot;
  }

  Key keys_[kCapacity];
  std::int8_t order_[kCapacity] = {};  ///< key indices, most-recent first
  int size_ = 0;
};

/// Grow-only typed scratch served from the global arena regardless of scope
/// — the home for per-thread kernel pack buffers (tensor/gemm_kernel.cc).
/// Contents are not preserved across growth and not zero-initialized.
template <typename T>
class ScratchBuffer {
 public:
  ScratchBuffer() = default;
  ~ScratchBuffer() { ArenaFreeRaw(ptr_, from_arena_); }

  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;

  /// Returns a buffer of at least `n` elements, growing only when needed.
  T* EnsureCapacity(std::size_t n) {
    if (n > cap_) Grow(n);
    return ptr_;
  }

  std::size_t capacity() const { return cap_; }

 private:
  void Grow(std::size_t n) {
    ArenaFreeRaw(ptr_, from_arena_);
    ptr_ = static_cast<T*>(
        ArenaAllocRawFrom(&GlobalArena(), n * sizeof(T), &from_arena_));
    cap_ = n;
  }

  T* ptr_ = nullptr;
  std::size_t cap_ = 0;
  bool from_arena_ = false;
};

}  // namespace gmreg

#endif  // GMREG_UTIL_ARENA_H_
