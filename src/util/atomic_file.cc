#include "util/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/fault.h"

namespace gmreg {
namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  std::string msg = op;
  msg.append(" failed for ");
  msg.append(path);
  msg.append(": ");
  msg.append(std::strerror(errno));
  return Status::Internal(std::move(msg));
}

// Best-effort fsync of the directory containing `path`, so the rename
// itself is durable. Failure is ignored: some filesystems (and CI sandboxes)
// reject directory fsync, and the data file is already synced.
void SyncParentDir(const std::string& path) {
  // Branch straight to open() rather than building a std::string for the
  // "." / "/" cases: assigning a literal into a std::string here trips a
  // GCC 12 -Wrestrict false positive once inlined into AtomicWriteFile
  // under -O3 -fsanitize=address.
  std::size_t slash = path.find_last_of('/');
  int fd;
  if (slash == std::string::npos) {
    fd = ::open(".", O_RDONLY);
  } else if (slash == 0) {
    fd = ::open("/", O_RDONLY);
  } else {
    fd = ::open(path.substr(0, slash).c_str(), O_RDONLY);
  }
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

Status WriteAll(int fd, const char* data, std::size_t size,
                const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& content) {
  FaultInjector& fault = FaultInjector::Global();
  if (fault.ShouldFailWrite()) {
    return Status::Internal("fault injection: write_fail on " + path);
  }
  // A torn write persists only a prefix and skips the data fsync —
  // simulating a crash mid-write on a filesystem that reordered the blocks.
  // The rename still happens, so the *reader* must detect the damage (the
  // checkpoint checksum does).
  bool torn = fault.ConsumeTornWrite();
  std::size_t payload_size = torn ? content.size() / 2 : content.size();

  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  Status write_status = WriteAll(fd, content.data(), payload_size, tmp);
  if (!write_status.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return write_status;
  }
  if (!torn && ::fsync(fd) != 0) {
    Status st = ErrnoStatus("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::close(fd) != 0) {
    Status st = ErrnoStatus("close", tmp);
    ::unlink(tmp.c_str());
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = ErrnoStatus("rename to " + path, tmp);
    ::unlink(tmp.c_str());
    return st;
  }
  SyncParentDir(path);
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("read failed: " + path);
  *out = buffer.str();
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::uint64_t Fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace gmreg
