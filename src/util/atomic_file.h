#ifndef GMREG_UTIL_ATOMIC_FILE_H_
#define GMREG_UTIL_ATOMIC_FILE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace gmreg {

/// Crash-safe whole-file replacement: writes `content` to `path + ".tmp"`,
/// fsyncs it, renames it over `path`, and fsyncs the parent directory, so a
/// reader either sees the old file or the complete new one — never a torn
/// mix (the RocksDB MANIFEST discipline). Honors the fault-injection layer
/// (util/fault.h): write_fail makes the call return Internal without
/// touching the filesystem, torn_write persists only half the payload and
/// skips the fsync (what the checkpoint checksum exists to catch).
Status AtomicWriteFile(const std::string& path, const std::string& content);

/// Reads the entire file into `*out`. NotFound when the file does not
/// exist, Internal on read errors.
Status ReadFileToString(const std::string& path, std::string* out);

/// True when `path` exists (any file type).
bool FileExists(const std::string& path);

/// 64-bit FNV-1a over `bytes` — the content checksum of the checkpoint
/// format (io/checkpoint.h). Not cryptographic; detects truncation and
/// bit rot, which is all crash recovery needs.
std::uint64_t Fnv1a64(const std::string& bytes);

}  // namespace gmreg

#endif  // GMREG_UTIL_ATOMIC_FILE_H_
