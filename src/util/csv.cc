#include "util/csv.h"

namespace gmreg {
namespace {

std::string EscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (out_.is_open()) WriteRow(header);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ",";
    out_ << EscapeField(fields[i]);
  }
  out_ << "\n";
}

}  // namespace gmreg
