#ifndef GMREG_UTIL_CSV_H_
#define GMREG_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace gmreg {

/// Minimal CSV writer used by the bench harnesses to emit machine-readable
/// copies of each reproduced table/figure next to the printed version.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Check Ok() before
  /// writing rows; construction failure is not fatal (benches still print).
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  bool Ok() const { return out_.is_open(); }

  /// Writes one row; fields containing commas or quotes are quoted.
  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::ofstream out_;
};

}  // namespace gmreg

#endif  // GMREG_UTIL_CSV_H_
