#include "util/env.h"

#include <cstdlib>
#include <cstring>

namespace gmreg {

int GetNumThreadsEnv() {
  static int threads = [] {
    const char* env = std::getenv("GMREG_NUM_THREADS");
    if (env == nullptr || *env == '\0') return -1;
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 0) return -1;
    return static_cast<int>(v);
  }();
  return threads;
}

long long GetMemEnvBytes() {
  static long long bytes = [] () -> long long {
    const char* env = std::getenv("GMREG_MEM");
    if (env == nullptr || *env == '\0') return -1;
    char* end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || v < 0) return -1;
    long long unit = 1ll << 20;  // bare number = MB
    if (*end != '\0') {
      switch (*end) {
        case 'k': case 'K': unit = 1ll << 10; break;
        case 'm': case 'M': unit = 1ll << 20; break;
        case 'g': case 'G': unit = 1ll << 30; break;
        default: return -1;
      }
      if (end[1] != '\0') return -1;
    }
    return v * unit;
  }();
  return bytes;
}

BenchScale GetBenchScale() {
  static BenchScale scale = [] {
    const char* env = std::getenv("GMREG_BENCH_SCALE");
    if (env == nullptr) return BenchScale::kDefault;
    if (std::strcmp(env, "smoke") == 0) return BenchScale::kSmoke;
    if (std::strcmp(env, "full") == 0) return BenchScale::kFull;
    return BenchScale::kDefault;
  }();
  return scale;
}

}  // namespace gmreg
