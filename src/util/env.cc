#include "util/env.h"

#include <cstdlib>
#include <cstring>

namespace gmreg {

BenchScale GetBenchScale() {
  static BenchScale scale = [] {
    const char* env = std::getenv("GMREG_BENCH_SCALE");
    if (env == nullptr) return BenchScale::kDefault;
    if (std::strcmp(env, "smoke") == 0) return BenchScale::kSmoke;
    if (std::strcmp(env, "full") == 0) return BenchScale::kFull;
    return BenchScale::kDefault;
  }();
  return scale;
}

}  // namespace gmreg
