#include "util/env.h"

#include <cstdlib>
#include <cstring>

namespace gmreg {

int GetNumThreadsEnv() {
  static int threads = [] {
    const char* env = std::getenv("GMREG_NUM_THREADS");
    if (env == nullptr || *env == '\0') return -1;
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 0) return -1;
    return static_cast<int>(v);
  }();
  return threads;
}

BenchScale GetBenchScale() {
  static BenchScale scale = [] {
    const char* env = std::getenv("GMREG_BENCH_SCALE");
    if (env == nullptr) return BenchScale::kDefault;
    if (std::strcmp(env, "smoke") == 0) return BenchScale::kSmoke;
    if (std::strcmp(env, "full") == 0) return BenchScale::kFull;
    return BenchScale::kDefault;
  }();
  return scale;
}

}  // namespace gmreg
