#ifndef GMREG_UTIL_ENV_H_
#define GMREG_UTIL_ENV_H_

namespace gmreg {

/// Scale at which the bench harnesses run. The paper's experiments ran on a
/// 3-GPU server; this reproduction defaults to a single-core-friendly scale
/// and can be raised via the GMREG_BENCH_SCALE environment variable.
enum class BenchScale {
  kSmoke,   ///< GMREG_BENCH_SCALE=smoke — seconds-long sanity runs.
  kDefault, ///< unset/default — minutes-long, preserves all orderings.
  kFull,    ///< GMREG_BENCH_SCALE=full — closest to paper scale.
};

/// Reads GMREG_BENCH_SCALE once per process.
BenchScale GetBenchScale();

/// Reads GMREG_NUM_THREADS once per process: the default thread budget of
/// the parallel execution layer (util/parallel.h). Returns -1 when unset or
/// unparseable; 0 and 1 both select the serial fallback.
int GetNumThreadsEnv();

/// Reads GMREG_MEM once per process: capacity of the global tensor arena
/// (util/arena.h). A bare number is megabytes (dynet's --dynet-mem
/// convention); `k`/`m`/`g` suffixes (case-insensitive) select KB/MB/GB.
/// Returns -1 when unset or unparseable (the arena applies its default).
long long GetMemEnvBytes();

/// Linear interpolation helper: picks the value for the current scale.
template <typename T>
T ScalePick(T smoke, T deflt, T full) {
  switch (GetBenchScale()) {
    case BenchScale::kSmoke:
      return smoke;
    case BenchScale::kFull:
      return full;
    case BenchScale::kDefault:
      break;
  }
  return deflt;
}

}  // namespace gmreg

#endif  // GMREG_UTIL_ENV_H_
