#include "util/fault.h"

#include <cstdlib>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace gmreg {
namespace {

// Fixed seed so write_fail failure sequences replay identically run-to-run.
constexpr std::uint64_t kFaultRngSeed = 0xfa171e5ULL;

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

FaultInjector::FaultInjector() : rng_(kFaultRngSeed) {
  const char* env = std::getenv("GMREG_FAULT");
  if (env != nullptr && *env != '\0') {
    Status st = Configure(env);
    if (!st.ok()) {
      GMREG_LOG(Warning) << "ignoring malformed GMREG_FAULT='" << env
                         << "': " << st.ToString();
    }
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Status FaultInjector::Configure(const std::string& spec) {
  Reset();
  if (spec.empty()) return Status::Ok();
  double write_fail_p = 0.0;
  bool torn_write = false;
  std::int64_t crash_after_epoch = -1;
  std::int64_t crash_after_step = -1;
  for (const std::string& directive : SplitOn(spec, ',')) {
    if (directive.empty()) continue;
    std::size_t colon = directive.find(':');
    std::string name = directive.substr(0, colon);
    std::string arg =
        colon == std::string::npos ? "" : directive.substr(colon + 1);
    if (name == "torn_write") {
      if (!arg.empty()) {
        return Status::InvalidArgument("torn_write takes no argument");
      }
      torn_write = true;
    } else if (name == "write_fail") {
      char* end = nullptr;
      double p = std::strtod(arg.c_str(), &end);
      if (arg.empty() || end == arg.c_str() || *end != '\0') {
        return Status::InvalidArgument("write_fail needs a probability, got '" +
                                       arg + "'");
      }
      if (!(p >= 0.0 && p <= 1.0)) {
        return Status::OutOfRange(
            StrFormat("write_fail probability %g outside [0, 1]", p));
      }
      write_fail_p = p;
    } else if (name == "crash_after_epoch") {
      char* end = nullptr;
      long long n = std::strtoll(arg.c_str(), &end, 10);
      if (arg.empty() || end == arg.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            "crash_after_epoch needs an epoch index, got '" + arg + "'");
      }
      if (n < 0) {
        return Status::OutOfRange(
            StrFormat("crash_after_epoch index %lld is negative", n));
      }
      crash_after_epoch = n;
    } else if (name == "crash_after_step") {
      char* end = nullptr;
      long long n = std::strtoll(arg.c_str(), &end, 10);
      if (arg.empty() || end == arg.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            "crash_after_step needs a step index, got '" + arg + "'");
      }
      if (n < 0) {
        return Status::OutOfRange(
            StrFormat("crash_after_step index %lld is negative", n));
      }
      crash_after_step = n;
    } else {
      return Status::InvalidArgument("unknown fault directive '" + name + "'");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  write_fail_p_ = write_fail_p;
  torn_write_ = torn_write;
  crash_after_epoch_ = crash_after_epoch;
  crash_after_step_ = crash_after_step;
  rng_ = Rng(kFaultRngSeed);
  return Status::Ok();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  write_fail_p_ = 0.0;
  torn_write_ = false;
  crash_after_epoch_ = -1;
  crash_after_step_ = -1;
  rng_ = Rng(kFaultRngSeed);
}

bool FaultInjector::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_fail_p_ > 0.0 || torn_write_ || crash_after_epoch_ >= 0 ||
         crash_after_step_ >= 0;
}

bool FaultInjector::ShouldFailWrite() {
  std::lock_guard<std::mutex> lock(mu_);
  if (write_fail_p_ <= 0.0) return false;
  if (write_fail_p_ >= 1.0) return true;
  return rng_.NextDouble() < write_fail_p_;
}

bool FaultInjector::ConsumeTornWrite() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!torn_write_) return false;
  torn_write_ = false;
  return true;
}

std::int64_t FaultInjector::crash_after_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crash_after_epoch_;
}

void FaultInjector::MaybeCrashAfterEpoch(std::int64_t epoch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crash_after_epoch_ < 0 || epoch < crash_after_epoch_) return;
  }
  GMREG_LOG(Warning) << "fault injection: simulated crash after epoch "
                     << epoch << " (exit " << kFaultCrashExitCode << ")";
  std::_Exit(kFaultCrashExitCode);
}

std::int64_t FaultInjector::crash_after_step() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crash_after_step_;
}

void FaultInjector::MaybeCrashAfterStep(std::int64_t step) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crash_after_step_ < 0 || step != crash_after_step_) return;
  }
  GMREG_LOG(Warning) << "fault injection: simulated crash after step "
                     << step << " (exit " << kFaultCrashExitCode << ")";
  std::_Exit(kFaultCrashExitCode);
}

double FaultInjector::write_fail_probability() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_fail_p_;
}

bool FaultInjector::torn_write_armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return torn_write_;
}

}  // namespace gmreg
