#ifndef GMREG_UTIL_FAULT_H_
#define GMREG_UTIL_FAULT_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "util/rng.h"
#include "util/status.h"

namespace gmreg {

/// Exit code of a crash_after_epoch fault, so tests can tell a deliberate
/// fault-injection crash (EXPECT_EXIT) from any genuine failure.
inline constexpr int kFaultCrashExitCode = 42;

/// Process-wide fault-injection switchboard for crash-safety tests. All
/// faults are off unless armed via the GMREG_FAULT environment variable
/// (read once, on first Global() use) or programmatically via Configure.
///
/// Spec grammar — comma-separated directives:
///   write_fail:p          every AtomicWriteFile fails with probability p
///                         (p in [0, 1]; draws come from a fixed-seed Rng,
///                         so failure sequences are reproducible)
///   torn_write            the NEXT AtomicWriteFile persists only the first
///                         half of its payload and skips fsync (one-shot;
///                         simulates a crash mid-write / torn page)
///   crash_after_epoch:N   Trainer::Train calls std::_Exit with
///                         kFaultCrashExitCode right after completing epoch
///                         index N (0-based) and writing its checkpoint —
///                         no destructors, no stream flushes, like a kill
///   crash_after_step:N    a dist worker (src/dist/worker.cc) calls
///                         std::_Exit with kFaultCrashExitCode right after
///                         serving the gradient for global step index N —
///                         a mid-epoch kill, the fault the coordinator's
///                         rejoin path must absorb. Exact-match (== N, not
///                         >= N), so a respawned process that joins at a
///                         later step does not crash again
///
/// e.g. GMREG_FAULT=write_fail:0.5,crash_after_epoch:3
///
/// Thread-safe. Production code never pays more than one branch per fault
/// site when nothing is armed.
class FaultInjector {
 public:
  /// The process-wide injector; first use parses GMREG_FAULT (a malformed
  /// value logs a warning and leaves all faults off).
  static FaultInjector& Global();

  /// Replaces the current configuration with `spec` (empty = all off).
  /// Invalid specs return InvalidArgument/OutOfRange and leave faults off.
  Status Configure(const std::string& spec);

  /// Disarms every fault.
  void Reset();

  /// True when any fault is armed.
  bool enabled() const;

  /// Draws the write_fail coin; true means the caller must fail the write.
  bool ShouldFailWrite();

  /// Consumes the one-shot torn_write arm; true at most once per arm.
  bool ConsumeTornWrite();

  /// Epoch index after which to crash, or -1 when disarmed.
  std::int64_t crash_after_epoch() const;

  /// Crashes the process (std::_Exit(kFaultCrashExitCode)) when the
  /// crash_after_epoch fault is armed and `epoch` has reached it.
  void MaybeCrashAfterEpoch(std::int64_t epoch);

  /// Step index at which to crash, or -1 when disarmed.
  std::int64_t crash_after_step() const;

  /// Crashes the process when the crash_after_step fault is armed and
  /// `step` equals it exactly (see the grammar note above).
  void MaybeCrashAfterStep(std::int64_t step);

  // Introspection (tests).
  double write_fail_probability() const;
  bool torn_write_armed() const;

 private:
  FaultInjector();

  mutable std::mutex mu_;
  double write_fail_p_ = 0.0;
  bool torn_write_ = false;
  std::int64_t crash_after_epoch_ = -1;
  std::int64_t crash_after_step_ = -1;
  Rng rng_;
};

}  // namespace gmreg

#endif  // GMREG_UTIL_FAULT_H_
