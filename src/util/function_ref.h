#ifndef GMREG_UTIL_FUNCTION_REF_H_
#define GMREG_UTIL_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace gmreg {

/// Non-owning reference to a callable: a (void*, trampoline) pair, nothing
/// more. Unlike std::function, constructing one from a lambda never touches
/// the heap — which is why the parallel execution layer (util/parallel.h)
/// takes FunctionRef parameters: a ParallelFor inside the training step must
/// not allocate, or the zero-allocation steady state (docs/MEMORY.md) is
/// gone.
///
/// Lifetime: a FunctionRef borrows the callable it was built from, so it is
/// only safe as a function parameter that is invoked before the call
/// returns. Never store one beyond the expression that created it.
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Null reference; calling it is undefined. Exists so containers (e.g. the
  /// pool's current-job slot) can hold an empty value between jobs.
  FunctionRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

}  // namespace gmreg

#endif  // GMREG_UTIL_FUNCTION_REF_H_
