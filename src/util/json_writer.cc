#include "util/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace gmreg {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  // Shortest representation that round-trips to the same double.
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "null";
  return std::string(buf, ptr);
}

void JsonWriter::MaybeComma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  MaybeComma();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  MaybeComma();
  out_ += JsonNumber(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

namespace {

// Recursive-descent parser over [p, end). On failure leaves an error offset
// in *err_at (first error wins).
class Parser {
 public:
  Parser(const char* begin, const char* end) : p_(begin), begin_(begin), end_(end) {}

  bool ParseValue(JsonValue* out);
  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }
  std::size_t offset() const { return static_cast<std::size_t>(p_ - begin_); }
  bool AtEnd() {
    SkipWs();
    return p_ == end_;
  }

 private:
  bool ParseString(std::string* out);
  bool ParseNumber(JsonValue* out);
  bool Literal(const char* lit) {
    std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end_ - p_) < n || std::strncmp(p_, lit, n) != 0) {
      return false;
    }
    p_ += n;
    return true;
  }

  const char* p_;
  const char* begin_;
  const char* end_;
};

bool Parser::ParseString(std::string* out) {
  if (p_ == end_ || *p_ != '"') return false;
  ++p_;
  out->clear();
  while (p_ < end_ && *p_ != '"') {
    char c = *p_++;
    if (c != '\\') {
      *out += c;
      continue;
    }
    if (p_ == end_) return false;
    char esc = *p_++;
    switch (esc) {
      case '"': *out += '"'; break;
      case '\\': *out += '\\'; break;
      case '/': *out += '/'; break;
      case 'b': *out += '\b'; break;
      case 'f': *out += '\f'; break;
      case 'n': *out += '\n'; break;
      case 'r': *out += '\r'; break;
      case 't': *out += '\t'; break;
      case 'u': {
        if (end_ - p_ < 4) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = *p_++;
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // UTF-8 encode (surrogate pairs are passed through individually;
        // the telemetry layer never emits them).
        if (code < 0x80) {
          *out += static_cast<char>(code);
        } else if (code < 0x800) {
          *out += static_cast<char>(0xC0 | (code >> 6));
          *out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          *out += static_cast<char>(0xE0 | (code >> 12));
          *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          *out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        return false;
    }
  }
  if (p_ == end_) return false;
  ++p_;  // closing quote
  return true;
}

bool Parser::ParseNumber(JsonValue* out) {
  const char* start = p_;
  if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
  while (p_ < end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                       *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
    ++p_;
  }
  if (p_ == start) return false;
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(start, p_, value);
  if (ec != std::errc() || ptr != p_) return false;
  out->kind = JsonValue::Kind::kNumber;
  out->number = value;
  return true;
}

bool Parser::ParseValue(JsonValue* out) {
  SkipWs();
  if (p_ == end_) return false;
  switch (*p_) {
    case '{': {
      ++p_;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (p_ < end_ && *p_ == '}') {
        ++p_;
        return true;
      }
      for (;;) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (p_ == end_ || *p_ != ':') return false;
        ++p_;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->members.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (p_ == end_) return false;
        if (*p_ == ',') {
          ++p_;
          continue;
        }
        if (*p_ == '}') {
          ++p_;
          return true;
        }
        return false;
      }
    }
    case '[': {
      ++p_;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (p_ < end_ && *p_ == ']') {
        ++p_;
        return true;
      }
      for (;;) {
        JsonValue item;
        if (!ParseValue(&item)) return false;
        out->items.push_back(std::move(item));
        SkipWs();
        if (p_ == end_) return false;
        if (*p_ == ',') {
          ++p_;
          continue;
        }
        if (*p_ == ']') {
          ++p_;
          return true;
        }
        return false;
      }
    }
    case '"':
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    case 't':
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Literal("true");
    case 'f':
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Literal("false");
    case 'n':
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    default:
      return ParseNumber(out);
  }
}

}  // namespace

Status JsonValue::Parse(const std::string& text, JsonValue* out) {
  *out = JsonValue();
  Parser parser(text.data(), text.data() + text.size());
  if (!parser.ParseValue(out) || !parser.AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("malformed JSON near byte %zu", parser.offset()));
  }
  return Status::Ok();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace gmreg
