#ifndef GMREG_UTIL_JSON_WRITER_H_
#define GMREG_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gmreg {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \uXXXX escapes.
std::string JsonEscape(const std::string& s);

/// Renders a double the way the telemetry layer does everywhere: shortest
/// round-trippable decimal form; NaN and +/-Inf (not representable in JSON)
/// become null. Thread-compatible (pure function).
std::string JsonNumber(double value);

/// Streaming writer producing compact (single-line) JSON — the format of
/// the JSONL metrics sinks and the BENCH_*.json summaries. Call sequence is
/// checked only lightly; the caller is responsible for well-formedness
/// (Begin/End pairing, Key before every object value). Not thread-safe;
/// build one per record.
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the member key for the next value (objects only).
  JsonWriter& Key(const std::string& key);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The JSON text produced so far.
  const std::string& str() const { return out_; }

 private:
  void MaybeComma();

  std::string out_;
  bool need_comma_ = false;
};

/// A parsed JSON document — the read side of the JSONL telemetry format,
/// used by tests (emit -> parse -> compare round-trips) and by consumers of
/// training traces. Numbers are held as double (JSON has one number type).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                              ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;    ///< kObject

  /// Parses one complete JSON document from `text` (trailing whitespace
  /// allowed, trailing garbage is an error). Returns InvalidArgument with a
  /// byte offset on malformed input.
  static Status Parse(const std::string& text, JsonValue* out);

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }
};

}  // namespace gmreg

#endif  // GMREG_UTIL_JSON_WRITER_H_
