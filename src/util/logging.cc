#include "util/logging.h"

#include <cstdio>
#include <cstring>

namespace gmreg {
namespace {

LogLevel g_min_level = [] {
  const char* env = std::getenv("GMREG_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel MinLogLevel() { return g_min_level; }
void SetMinLogLevel(LogLevel level) { g_min_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < MinLogLevel()) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace gmreg
