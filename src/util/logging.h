#ifndef GMREG_UTIL_LOGGING_H_
#define GMREG_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace gmreg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimum level that is actually emitted; default kInfo. Controlled by the
/// GMREG_LOG_LEVEL environment variable (debug|info|warning|error).
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

namespace internal_logging {

/// Stream-style log-message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by the CHECK
/// macros for unrecoverable programmer errors.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define GMREG_LOG(level)                                                  \
  ::gmreg::internal_logging::LogMessage(::gmreg::LogLevel::k##level,      \
                                        __FILE__, __LINE__)               \
      .stream()

/// Aborts with a message when `condition` is false. For invariants and
/// programmer errors, not for data-dependent failures (use Status there).
#define GMREG_CHECK(condition)                                            \
  if (!(condition))                                                       \
  ::gmreg::internal_logging::FatalLogMessage(__FILE__, __LINE__).stream() \
      << "Check failed: " #condition " "

#define GMREG_CHECK_EQ(a, b) GMREG_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define GMREG_CHECK_NE(a, b) GMREG_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define GMREG_CHECK_LT(a, b) GMREG_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define GMREG_CHECK_LE(a, b) GMREG_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define GMREG_CHECK_GT(a, b) GMREG_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define GMREG_CHECK_GE(a, b) GMREG_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace gmreg

#endif  // GMREG_UTIL_LOGGING_H_
