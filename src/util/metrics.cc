#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/json_writer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace gmreg {

// ---------------------------------------------------------------------------
// MetricValue / MetricsRecord
// ---------------------------------------------------------------------------

MetricValue MetricValue::Int(std::int64_t v) {
  MetricValue m;
  m.kind = Kind::kInt;
  m.int_value = v;
  return m;
}

MetricValue MetricValue::Double(double v) {
  MetricValue m;
  m.kind = Kind::kDouble;
  m.double_value = v;
  return m;
}

MetricValue MetricValue::Str(std::string v) {
  MetricValue m;
  m.kind = Kind::kString;
  m.string_value = std::move(v);
  return m;
}

MetricValue MetricValue::DoubleList(std::vector<double> v) {
  MetricValue m;
  m.kind = Kind::kDoubleList;
  m.list_value = std::move(v);
  return m;
}

void MetricsRecord::AddInt(const std::string& key, std::int64_t v) {
  fields.emplace_back(key, MetricValue::Int(v));
}

void MetricsRecord::AddDouble(const std::string& key, double v) {
  fields.emplace_back(key, MetricValue::Double(v));
}

void MetricsRecord::AddString(const std::string& key, std::string v) {
  fields.emplace_back(key, MetricValue::Str(std::move(v)));
}

void MetricsRecord::AddDoubleList(const std::string& key, std::vector<double> v) {
  fields.emplace_back(key, MetricValue::DoubleList(std::move(v)));
}

const MetricValue* MetricsRecord::Find(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string RecordToJson(const MetricsRecord& record) {
  JsonWriter w;
  w.BeginObject();
  w.Key("event").String(record.event);
  for (const auto& [key, value] : record.fields) {
    w.Key(key);
    switch (value.kind) {
      case MetricValue::Kind::kInt:
        w.Int(value.int_value);
        break;
      case MetricValue::Kind::kDouble:
        w.Double(value.double_value);
        break;
      case MetricValue::Kind::kString:
        w.String(value.string_value);
        break;
      case MetricValue::Kind::kDoubleList:
        w.BeginArray();
        for (double d : value.list_value) w.Double(d);
        w.EndArray();
        break;
    }
  }
  w.EndObject();
  return w.str();
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

void LogSink::Write(const MetricsRecord& record) {
  std::string line = "metrics " + record.event;
  for (const auto& [key, value] : record.fields) {
    line += ' ';
    line += key;
    line += '=';
    switch (value.kind) {
      case MetricValue::Kind::kInt:
        line += StrFormat("%lld", static_cast<long long>(value.int_value));
        break;
      case MetricValue::Kind::kDouble:
        line += JsonNumber(value.double_value);
        break;
      case MetricValue::Kind::kString:
        line += value.string_value;
        break;
      case MetricValue::Kind::kDoubleList: {
        line += '[';
        for (std::size_t i = 0; i < value.list_value.size(); ++i) {
          if (i > 0) line += ',';
          line += JsonNumber(value.list_value[i]);
        }
        line += ']';
        break;
      }
    }
  }
  internal_logging::LogMessage(LogLevel::kInfo, __FILE__, __LINE__).stream()
      << line;
}

JsonlFileSink::JsonlFileSink(const std::string& path, bool append)
    : out_(path, append ? std::ios::app : std::ios::trunc) {
  if (!out_.is_open()) {
    GMREG_LOG(Warning) << "metrics: cannot open JSONL sink '" << path
                       << "'; telemetry for this sink is dropped";
  }
}

void JsonlFileSink::Write(const MetricsRecord& record) {
  if (!out_.is_open()) return;
  out_ << RecordToJson(record) << '\n';
  out_.flush();
}

void JsonlFileSink::Flush() {
  if (out_.is_open()) out_.flush();
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int Histogram::BucketIndex(double v) {
  if (!(v > kBucketFloor)) return 0;  // zeros, negatives, NaN
  int idx = 1 + static_cast<int>(std::floor(std::log(v / kBucketFloor) /
                                            std::log(kBucketGrowth)));
  return std::min(idx, kNumBuckets - 1);
}

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  ++state_.count;
  state_.sum += v;
  if (v < state_.min) state_.min = v;
  if (v > state_.max) state_.max = v;
  if (state_.buckets.empty()) {
    state_.buckets.assign(static_cast<std::size_t>(kNumBuckets), 0);
  }
  ++state_.buckets[static_cast<std::size_t>(BucketIndex(v))];
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count <= 0 || buckets.empty()) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count) (at least 1).
  std::int64_t target =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                    std::ceil(q * static_cast<double>(count))));
  std::int64_t cum = 0;
  std::size_t b = 0;
  for (; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= target) break;
  }
  double rep;
  if (b == 0) {
    rep = min;  // the underflow bucket has no geometric midpoint
  } else {
    double lower = kBucketFloor * std::pow(kBucketGrowth,
                                           static_cast<double>(b) - 1.0);
    rep = lower * std::sqrt(kBucketGrowth);  // geometric bucket midpoint
  }
  // Clamping to the exact extremes keeps small samples honest (p99 of three
  // observations can never exceed the largest one).
  return std::min(std::max(rep, min), max);
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrument pointers cached by hot paths (and pool
  // worker threads) must outlive static destruction.
  static MetricsRegistry* global = [] {
    auto* registry = new MetricsRegistry();
    if (const char* path = std::getenv("GMREG_METRICS_FILE");
        path != nullptr && path[0] != '\0') {
      registry->AddSink(std::make_unique<JsonlFileSink>(path, /*append=*/true));
    }
    return registry;
  }();
  return *global;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  GMREG_CHECK(gauges_.find(name) == gauges_.end() &&
              histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  GMREG_CHECK(counters_.find(name) == counters_.end() &&
              histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  GMREG_CHECK(counters_.find(name) == counters_.end() &&
              gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::AddSink(std::unique_ptr<MetricsSink> sink) {
  GMREG_CHECK(sink != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

void MetricsRegistry::ClearSinks() {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.clear();
}

int MetricsRegistry::num_sinks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sinks_.size());
}

void MetricsRegistry::Emit(const MetricsRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sink : sinks_) sink->Write(record);
}

MetricsRecord MetricsRegistry::Snapshot(const std::string& event) const {
  MetricsRecord record(event);
  std::lock_guard<std::mutex> lock(mu_);
  // std::map iteration is name-sorted, so snapshots are deterministic.
  for (const auto& [name, c] : counters_) record.AddInt(name, c->value());
  for (const auto& [name, g] : gauges_) record.AddDouble(name, g->value());
  for (const auto& [name, h] : histograms_) {
    Histogram::Snapshot s = h->snapshot();
    record.AddInt(name + ".count", s.count);
    record.AddDouble(name + ".sum", s.sum);
    if (s.count > 0) {
      record.AddDouble(name + ".min", s.min);
      record.AddDouble(name + ".max", s.max);
      record.AddDouble(name + ".p50", s.p50());
      record.AddDouble(name + ".p95", s.p95());
      record.AddDouble(name + ".p99", s.p99());
    }
  }
  return record;
}

void MetricsRegistry::EmitSnapshot(const std::string& event) {
  Emit(Snapshot(event));
}

ScopedSpan::ScopedSpan(const std::string& name, MetricsRegistry* registry)
    : hist_((registry != nullptr ? registry : &MetricsRegistry::Global())
                ->histogram(name)) {}

ScopedSpan::~ScopedSpan() { hist_->Observe(watch_.ElapsedSeconds()); }

}  // namespace gmreg
