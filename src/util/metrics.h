#ifndef GMREG_UTIL_METRICS_H_
#define GMREG_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace gmreg {

// ---------------------------------------------------------------------------
// Records: one structured telemetry event (one JSONL line).
// ---------------------------------------------------------------------------

/// One field value of a MetricsRecord. A small tagged union covering what
/// the telemetry layer emits: numbers, strings, and flat lists of numbers
/// (the per-epoch lambda/pi arrays). Copyable value type.
struct MetricValue {
  enum class Kind { kInt, kDouble, kString, kDoubleList };

  Kind kind = Kind::kInt;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
  std::vector<double> list_value;

  static MetricValue Int(std::int64_t v);
  static MetricValue Double(double v);
  static MetricValue Str(std::string v);
  static MetricValue DoubleList(std::vector<double> v);
};

/// One telemetry event: an event name plus ordered key -> value fields.
/// Field order is preserved into the JSON rendering, so a record built the
/// same way always serializes byte-identically (deterministic traces).
struct MetricsRecord {
  MetricsRecord() = default;
  explicit MetricsRecord(std::string event_name) : event(std::move(event_name)) {}

  std::string event;  ///< e.g. "epoch", "bench_summary", "snapshot"
  std::vector<std::pair<std::string, MetricValue>> fields;

  void AddInt(const std::string& key, std::int64_t v);
  void AddDouble(const std::string& key, double v);
  void AddString(const std::string& key, std::string v);
  void AddDoubleList(const std::string& key, std::vector<double> v);

  /// First field with `key`, or nullptr.
  const MetricValue* Find(const std::string& key) const;
};

/// Renders a record as one compact JSON object: {"event":...,<fields...>}.
/// NaN/Inf render as null (JSON has no encoding for them).
std::string RecordToJson(const MetricsRecord& record);

// ---------------------------------------------------------------------------
// Sinks: pluggable consumers of records.
// ---------------------------------------------------------------------------

/// Consumer interface for telemetry records. Implementations must tolerate
/// concurrent Write calls or be registered with a registry (which serializes
/// Emit under its mutex — the built-in sinks rely on that).
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void Write(const MetricsRecord& record) = 0;
  virtual void Flush() {}
};

/// Human-readable sink: renders each record as a single "key=value ..." line
/// via util/logging at Info level. Plug into a registry when a run should
/// narrate its telemetry (the examples do this).
class LogSink : public MetricsSink {
 public:
  void Write(const MetricsRecord& record) override;
};

/// JSONL file sink: one RecordToJson line per record, flushed per line so a
/// killed run keeps its trace. `append` false truncates (fresh per-run
/// trace, e.g. TrainOptions::metrics_path); true appends (shared
/// process-wide file, e.g. GMREG_METRICS_FILE).
class JsonlFileSink : public MetricsSink {
 public:
  explicit JsonlFileSink(const std::string& path, bool append = false);

  /// False when the file could not be opened; Write is then a no-op
  /// (telemetry must never take down training).
  bool ok() const { return out_.is_open(); }

  void Write(const MetricsRecord& record) override;
  void Flush() override;

 private:
  std::ofstream out_;
};

// ---------------------------------------------------------------------------
// Instruments: counters, gauges, histograms, spans.
// ---------------------------------------------------------------------------

/// Monotone event counter. Add/value are lock-free and thread-safe; hot
/// paths cache the Counter* once and Add on it (registry lookup is mutexed).
class Counter {
 public:
  void Add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written-value instrument. Set/value are thread-safe (atomic double);
/// concurrent writers race benignly (last write wins).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming summary of a distribution: count / sum / min / max / mean plus
/// percentile estimates from fixed geometric buckets (an HDR-histogram-style
/// layout: bounded memory, ~±5% relative error at growth factor 1.1 —
/// plenty for latency percentiles). Observe is thread-safe (internal
/// mutex); intended for request- or epoch-level observations, not
/// per-element inner loops.
class Histogram {
 public:
  /// Geometric bucket layout of the percentile estimator. Bucket 0 catches
  /// v <= kBucketFloor (zeros, negatives); bucket i >= 1 covers
  /// (kBucketFloor * g^(i-1), kBucketFloor * g^i]; the last bucket absorbs
  /// overflow. The span kBucketFloor .. kBucketFloor * g^434 covers 1e-9 ..
  /// ~1e9, i.e. nanoseconds to ~30 years when observing seconds.
  static constexpr double kBucketFloor = 1e-9;
  static constexpr double kBucketGrowth = 1.1;
  static constexpr int kNumBuckets = 436;

  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    /// Per-bucket observation counts (empty until the first Observe).
    std::vector<std::int64_t> buckets;

    double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

    /// Nearest-rank percentile estimate for q in [0, 1], interpolated as
    /// the geometric midpoint of the selected bucket and clamped to
    /// [min, max]. 0 when the histogram is empty.
    double Percentile(double q) const;

    double p50() const { return Percentile(0.50); }
    double p95() const { return Percentile(0.95); }
    double p99() const { return Percentile(0.99); }
  };

  /// Bucket index `v` falls into — exposed for tests.
  static int BucketIndex(double v);

  void Observe(double v);
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  Snapshot state_;
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// Process-wide registry of named instruments plus the sink fan-out. All
/// methods are thread-safe. Instrument pointers returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime
/// (the global registry never dies), so hot paths look up once and keep the
/// pointer.
///
/// Tests construct private registries; production code uses Global(), which
/// on first use auto-installs a JsonlFileSink when the GMREG_METRICS_FILE
/// environment variable is set (append mode — one file can collect a whole
/// bench suite).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (created on first use, never destroyed).
  static MetricsRegistry& Global();

  /// Returns the instrument named `name`, creating it on first use. Aborts
  /// if `name` is already registered as a different instrument kind.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  void AddSink(std::unique_ptr<MetricsSink> sink);
  void ClearSinks();
  int num_sinks() const;

  /// Fans `record` out to every sink, serialized under the registry mutex.
  /// Cheap no-op when no sinks are attached.
  void Emit(const MetricsRecord& record);

  /// Flattens every instrument into one record, sorted by name: counters as
  /// ints, gauges as doubles, histograms as <name>.count/.sum/.min/.max
  /// plus the .p50/.p95/.p99 percentile estimates (non-empty ones only).
  MetricsRecord Snapshot(const std::string& event = "snapshot") const;

  /// Emit(Snapshot(event)) — the usual end-of-run call.
  void EmitSnapshot(const std::string& event = "snapshot");

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<std::unique_ptr<MetricsSink>> sinks_;
};

/// RAII wall-time span: observes the elapsed seconds between construction
/// and destruction into `registry->histogram(name)` (Global() by default).
/// Layered on Stopwatch; name by convention ends in "_seconds".
class ScopedSpan {
 public:
  explicit ScopedSpan(const std::string& name, MetricsRegistry* registry = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Histogram* hist_;
  Stopwatch watch_;
};

}  // namespace gmreg

#endif  // GMREG_UTIL_METRICS_H_
