#include "util/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/string_util.h"

namespace gmreg {
namespace {

// Small request/reply frames over loopback stall for tens of milliseconds
// per round trip under Nagle + delayed ACK; every connection here is
// latency-bound, not throughput-bound, so disable coalescing everywhere.
void SetTcpNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool SendAllFlags(int fd, const void* data, std::size_t size, int flags) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL | flags);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Status CreateListenSocket(int port, bool nonblocking, int* fd,
                          int* bound_port) {
  int flags = SOCK_STREAM | SOCK_CLOEXEC;
  if (nonblocking) flags |= SOCK_NONBLOCK;
  int listen_fd = ::socket(AF_INET, flags, 0);
  if (listen_fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Internal(
        StrFormat("bind to port %d: %s", port, std::strerror(errno)));
    CloseFd(listen_fd);
    return st;
  }
  if (::listen(listen_fd, 512) != 0) {
    Status st =
        Status::Internal(StrFormat("listen: %s", std::strerror(errno)));
    CloseFd(listen_fd);
    return st;
  }
  if (bound_port != nullptr) {
    socklen_t addr_len = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
    *bound_port = static_cast<int>(ntohs(addr.sin_port));
  }
  *fd = listen_fd;
  return Status::Ok();
}

Status ConnectLoopback(int port, int* fd) {
  int sock = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (sock < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  int rc;
  do {
    rc = ::connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    Status st = Status::Internal(StrFormat("connect to 127.0.0.1:%d: %s",
                                           port, std::strerror(errno)));
    CloseFd(sock);
    return st;
  }
  SetTcpNoDelay(sock);
  *fd = sock;
  return Status::Ok();
}

Status AcceptWithTimeout(int listen_fd, int timeout_ms, int* fd) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Status::Internal(StrFormat("poll: %s", std::strerror(errno)));
  }
  if (rc == 0) {
    return Status::DeadlineExceeded(
        StrFormat("no connection within %d ms", timeout_ms));
  }
  int sock;
  do {
    sock = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  } while (sock < 0 && errno == EINTR);
  if (sock < 0) {
    return Status::Internal(StrFormat("accept: %s", std::strerror(errno)));
  }
  SetTcpNoDelay(sock);
  *fd = sock;
  return Status::Ok();
}

bool SendAll(int fd, const std::string& data) {
  return SendAllBytes(fd, data.data(), data.size());
}

bool SendAllBytes(int fd, const void* data, std::size_t size) {
  return SendAllFlags(fd, data, size, 0);
}

Status ReadFull(int fd, void* buf, std::size_t size) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::Internal(StrFormat("recv: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::Unavailable(
          StrFormat("peer closed after %d of %d bytes",
                    static_cast<int>(got), static_cast<int>(size)));
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status WriteFrame(int fd, std::uint8_t type, const std::string& payload) {
  char header[5];
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<char>(len & 0xff);
  header[1] = static_cast<char>((len >> 8) & 0xff);
  header[2] = static_cast<char>((len >> 16) & 0xff);
  header[3] = static_cast<char>((len >> 24) & 0xff);
  header[4] = static_cast<char>(type);
  // MSG_MORE holds the header until the payload follows — one packet per
  // frame instead of a Nagle-stalled header/payload pair.
  if (!SendAllFlags(fd, header, sizeof(header),
                    payload.empty() ? 0 : MSG_MORE)) {
    return Status::Unavailable("frame header send failed");
  }
  if (!payload.empty() && !SendAll(fd, payload)) {
    return Status::Unavailable("frame payload send failed");
  }
  return Status::Ok();
}

Status ReadFrame(int fd, std::uint8_t* type, std::string* payload,
                 std::uint32_t max_payload) {
  unsigned char header[5];
  GMREG_RETURN_IF_ERROR(ReadFull(fd, header, sizeof(header)));
  std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                      (static_cast<std::uint32_t>(header[1]) << 8) |
                      (static_cast<std::uint32_t>(header[2]) << 16) |
                      (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > max_payload) {
    return Status::InvalidArgument(
        StrFormat("frame payload of %u bytes exceeds the %u-byte cap", len,
                  max_payload));
  }
  *type = static_cast<std::uint8_t>(header[4]);
  payload->resize(len);
  if (len > 0) {
    GMREG_RETURN_IF_ERROR(ReadFull(fd, payload->data(), len));
  }
  return Status::Ok();
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace gmreg
