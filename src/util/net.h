#ifndef GMREG_UTIL_NET_H_
#define GMREG_UTIL_NET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace gmreg {

/// Shared POSIX socket helpers for the loopback protocols in this tree:
/// the HTTP serving front door (src/serve) and the distributed training
/// coordinator/worker link (src/dist). Everything here is blocking unless
/// stated otherwise; the serve event loop keeps its own nonblocking I/O and
/// uses only the listen-socket setup and SendAll from this file.
///
/// All calls retry on EINTR and never raise SIGPIPE (MSG_NOSIGNAL).

/// Creates an AF_INET listen socket bound to INADDR_ANY:`port` (0 picks an
/// ephemeral port) with SO_REUSEADDR, backlog 512 and CLOEXEC set. When
/// `nonblocking` is true the socket is created SOCK_NONBLOCK (the serve
/// epoll loop wants that; the dist coordinator uses blocking accepts).
/// On success stores the fd in `*fd` and the actually-bound port in
/// `*bound_port` (may be null).
Status CreateListenSocket(int port, bool nonblocking, int* fd,
                          int* bound_port);

/// Connects a blocking CLOEXEC stream socket to 127.0.0.1:`port`.
Status ConnectLoopback(int port, int* fd);

/// Waits up to `timeout_ms` for a pending connection on `listen_fd`, then
/// accepts it (blocking, CLOEXEC). DeadlineExceeded on timeout.
Status AcceptWithTimeout(int listen_fd, int timeout_ms, int* fd);

/// Writes all of `data`, retrying on EINTR and short writes. False on any
/// other error (peer gone, fd closed).
bool SendAll(int fd, const std::string& data);

/// Binary-buffer overload of SendAll.
bool SendAllBytes(int fd, const void* data, std::size_t size);

/// Reads exactly `size` bytes, retrying on EINTR and short reads. An EOF
/// before `size` bytes is Unavailable (the peer closed the connection —
/// the dist coordinator treats that as a dead worker).
Status ReadFull(int fd, void* buf, std::size_t size);

// ---------------------------------------------------------------------------
// Length-prefixed framing (the dist wire format's transport layer).
//
// One frame = u32 payload length (little-endian) + u8 frame type + payload.
// The length covers the payload only. A reader that sees a length above
// `max_payload` fails with InvalidArgument instead of allocating — a
// corrupt or hostile peer must not drive the process out of memory.
// ---------------------------------------------------------------------------

/// Frames larger than this are rejected on read (1 GiB — far above any
/// gradient or suffstat message, far below an allocation-of-garbage).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/// Writes one `type` frame carrying `payload`.
Status WriteFrame(int fd, std::uint8_t type, const std::string& payload);

/// Reads one frame into `*type` / `*payload`. Unavailable on clean EOF at
/// a frame boundary (peer hung up), InvalidArgument on an oversized length.
Status ReadFrame(int fd, std::uint8_t* type, std::string* payload,
                 std::uint32_t max_payload = kMaxFramePayload);

/// Closes `fd` if >= 0 (EINTR-safe); no-op otherwise.
void CloseFd(int fd);

}  // namespace gmreg

#endif  // GMREG_UTIL_NET_H_
