#include "util/parallel.h"

#include <algorithm>
#include <vector>

#include "util/arena.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace gmreg {
namespace {

// Hard cap on any thread budget: beyond this the shard bookkeeping itself
// would start to show up in the profile.
constexpr int kMaxThreads = 64;

// The global pool is sized for correctness testing as well as throughput: a
// floor of 8 lets explicitly-requested multi-way shards (determinism and
// TSan tests use 4) run genuinely concurrently even on small machines.
int PoolWorkerCount() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(std::max(hw, 8), 1, kMaxThreads) - 1;
}

std::atomic<int> g_default_threads_override{0};

thread_local bool tls_in_parallel_region = false;

// Pool utilization accounting, surfaced through MetricsRegistry snapshots
// (docs/OBSERVABILITY.md). caller_tasks vs worker_tasks is the work-sharing
// split of the ticket counter: tasks the submitting thread claimed itself
// vs tasks the pool workers stole off it.
struct PoolCounters {
  Counter* runs;          ///< parallel jobs dispatched to the pool
  Counter* serial_runs;   ///< jobs taken by the serial fallback
  Counter* tasks;         ///< total tasks across both paths
  Counter* caller_tasks;  ///< tasks executed by the submitting thread
  Counter* worker_tasks;  ///< tasks executed by pool workers
};

PoolCounters& GlobalPoolCounters() {
  static PoolCounters counters = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return PoolCounters{registry.counter("parallel.runs"),
                        registry.counter("parallel.serial_runs"),
                        registry.counter("parallel.tasks"),
                        registry.counter("parallel.caller_tasks"),
                        registry.counter("parallel.worker_tasks")};
  }();
  return counters;
}

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  GMREG_CHECK_GE(num_workers, 0);
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Run(int num_tasks, FunctionRef<void(int)> fn) {
  if (num_tasks <= 0) return;
  PoolCounters& counters = GlobalPoolCounters();
  if (workers_.empty() || tls_in_parallel_region || num_tasks == 1) {
    // Serial fallback; still mark the region so task code behaves the same
    // as under a worker (no nested pools).
    bool saved = tls_in_parallel_region;
    tls_in_parallel_region = true;
    for (int t = 0; t < num_tasks; ++t) fn(t);
    tls_in_parallel_region = saved;
    counters.serial_runs->Add(1);
    counters.tasks->Add(num_tasks);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = fn;
    job_arena_ = Arena::Current();
    total_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    remaining_tasks_ = num_tasks;
    ++generation_;
  }
  wake_cv_.notify_all();
  // The caller claims tasks alongside the workers.
  tls_in_parallel_region = true;
  int caller_tasks = 0;
  int t;
  while ((t = next_task_.fetch_add(1, std::memory_order_relaxed)) <
         num_tasks) {
    fn(t);
    ++caller_tasks;
    std::lock_guard<std::mutex> lock(mu_);
    --remaining_tasks_;
  }
  tls_in_parallel_region = false;
  counters.runs->Add(1);
  counters.tasks->Add(num_tasks);
  counters.caller_tasks->Add(caller_tasks);
  counters.worker_tasks->Add(num_tasks - caller_tasks);
  // Wait until every task has run AND every worker has left the claim loop;
  // the latter makes it safe for the next Run to reset the ticket counter.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock,
                [this] { return remaining_tasks_ == 0 && active_workers_ == 0; });
  fn_ = FunctionRef<void(int)>();
  job_arena_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  tls_in_parallel_region = true;  // pool workers never nest parallelism
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    FunctionRef<void(int)> fn = fn_;
    Arena* job_arena = job_arena_;
    int total = total_tasks_;
    ++active_workers_;
    lock.unlock();
    {
      // Inherit the submitting thread's planning scope (if any) so buffers
      // this worker sizes during a planning pass land in the arena.
      ArenaScope scope(job_arena);
      int t;
      while ((t = next_task_.fetch_add(1, std::memory_order_relaxed)) <
             total) {
        fn(t);
        std::lock_guard<std::mutex> task_lock(mu_);
        --remaining_tasks_;
      }
    }
    lock.lock();
    --active_workers_;
    if (remaining_tasks_ == 0 && active_workers_ == 0) done_cv_.notify_all();
  }
}

ThreadPool* GlobalThreadPool() {
  // Leaked on purpose: worker threads must outlive static destruction.
  static ThreadPool* pool = new ThreadPool(PoolWorkerCount());
  return pool;
}

bool InParallelRegion() { return tls_in_parallel_region; }

int DefaultNumThreads() {
  int override_threads = g_default_threads_override.load(std::memory_order_relaxed);
  if (override_threads > 0) return std::min(override_threads, kMaxThreads);
  int env = GetNumThreadsEnv();
  if (env == 0) return 1;  // 0 and 1 both mean "serial"
  if (env > 0) return std::min(env, kMaxThreads);
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(hw, 1, kMaxThreads);
}

void SetDefaultNumThreads(int n) {
  g_default_threads_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int ResolveNumThreads(int requested) {
  if (requested > 0) return std::min(requested, kMaxThreads);
  return DefaultNumThreads();
}

int ComputeNumShards(std::int64_t n, std::int64_t grain, int num_threads) {
  if (n <= 0) return 0;
  grain = std::max<std::int64_t>(grain, 1);
  std::int64_t by_grain = (n + grain - 1) / grain;
  std::int64_t threads = std::max(num_threads, 1);
  return static_cast<int>(std::min(by_grain, threads));
}

void RunShards(int num_shards, std::int64_t begin, std::int64_t end,
               FunctionRef<void(int, std::int64_t, std::int64_t)> fn) {
  std::int64_t n = end - begin;
  if (n <= 0 || num_shards <= 0) return;
  if (num_shards == 1) {
    fn(0, begin, end);
    return;
  }
  GlobalThreadPool()->Run(num_shards, [&](int s) {
    auto [b, e] = ShardRange(s, num_shards, begin, end);
    fn(s, b, e);
  });
}

void ParallelForShards(std::int64_t begin, std::int64_t end,
                       std::int64_t grain,
                       FunctionRef<void(int, std::int64_t, std::int64_t)> fn,
                       int num_threads) {
  int shards =
      ComputeNumShards(end - begin, grain, ResolveNumThreads(num_threads));
  RunShards(shards, begin, end, fn);
}

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 FunctionRef<void(std::int64_t, std::int64_t)> fn,
                 int num_threads) {
  ParallelForShards(
      begin, end, grain,
      [&fn](int /*shard*/, std::int64_t b, std::int64_t e) { fn(b, e); },
      num_threads);
}

void ParallelRunDynamic(std::int64_t num_items,
                        FunctionRef<void(std::int64_t)> fn, int num_threads) {
  if (num_items <= 0) return;
  std::int64_t budget = ResolveNumThreads(num_threads);
  int executors = static_cast<int>(std::min<std::int64_t>(budget, num_items));
  // The budget bounds concurrency, not work: `executors` pool tasks drain a
  // shared ticket, so all items complete whatever the pool size. At budget 1
  // (or nested inside another region) ThreadPool::Run serializes and the
  // single executor claims items 0..n-1 in order.
  std::atomic<std::int64_t> next{0};
  GlobalThreadPool()->Run(executors, [&](int /*executor*/) {
    std::int64_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < num_items) {
      fn(i);
    }
  });
}

double ParallelChunkedSum(std::int64_t begin, std::int64_t end,
                          std::int64_t grain,
                          FunctionRef<double(std::int64_t, std::int64_t)> fn,
                          int num_threads) {
  std::int64_t n = end - begin;
  if (n <= 0) return 0.0;
  if (grain < 1) grain = 1;
  std::int64_t chunks = (n + grain - 1) / grain;
  if (chunks == 1) return fn(begin, end);
  // Persistent per-thread partials: the adaptive priors call this every
  // AccumulateGradient, so the steady state must not allocate. The in-use
  // flag covers the (rare, currently unused) nested-call case by paying a
  // one-off local vector instead of corrupting the outer call's buffer.
  thread_local std::vector<double> tls_partial;
  thread_local bool tls_partial_in_use = false;
  std::vector<double> local_partial;
  std::vector<double>* partial = &tls_partial;
  if (tls_partial_in_use) {
    partial = &local_partial;
  } else {
    tls_partial_in_use = true;
  }
  partial->assign(static_cast<std::size_t>(chunks), 0.0);
  // The chunk layout is fixed by `grain`; only the assignment of chunks to
  // workers varies with the budget, and each partial is written exactly once.
  ParallelFor(
      0, chunks, /*grain=*/1,
      [&](std::int64_t cb, std::int64_t ce) {
        for (std::int64_t c = cb; c < ce; ++c) {
          std::int64_t b = begin + c * grain;
          std::int64_t e = std::min<std::int64_t>(b + grain, end);
          (*partial)[static_cast<std::size_t>(c)] = fn(b, e);
        }
      },
      num_threads);
  double acc = 0.0;
  for (double p : *partial) acc += p;
  if (partial == &tls_partial) tls_partial_in_use = false;
  return acc;
}

}  // namespace gmreg
