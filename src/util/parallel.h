#ifndef GMREG_UTIL_PARALLEL_H_
#define GMREG_UTIL_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/function_ref.h"

namespace gmreg {

class Arena;

/// Fixed-size pool of persistent worker threads. The calling thread always
/// participates in a Run, so a pool with W workers executes up to W+1 tasks
/// concurrently. Tasks must not throw (fatal errors abort via GMREG_CHECK).
///
/// Reentrancy: a task that itself calls Run (nested parallelism, e.g. a
/// parallel GEMM inside a batch-parallel conv) executes the inner call
/// serially on the current thread — the pool never deadlocks on itself.
class ThreadPool {
 public:
  /// Spawns `num_workers` background threads (>= 0; 0 = everything runs on
  /// the calling thread).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(t) for every t in [0, num_tasks) across the workers and the
  /// calling thread; returns once all tasks have finished. Which thread
  /// executes which task is unspecified — determinism must come from the
  /// tasks writing disjoint outputs (see ParallelForShards).
  ///
  /// Takes a FunctionRef (not std::function) so dispatching a parallel job
  /// never allocates; the caller's Arena planning scope, if any, is
  /// propagated to the workers for the duration of the job, so buffers a
  /// worker sizes during a planning pass land in the arena too.
  void Run(int num_tasks, FunctionRef<void(int)> fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_cv_;  ///< workers wait here for a new job
  std::condition_variable done_cv_;  ///< Run waits here for completion
  // Current job; guarded by mu_ except the atomic ticket counter.
  std::uint64_t generation_ = 0;
  FunctionRef<void(int)> fn_;
  Arena* job_arena_ = nullptr;  ///< caller's planning scope, if any
  int total_tasks_ = 0;
  std::atomic<int> next_task_{0};
  int remaining_tasks_ = 0;  ///< tasks not yet finished
  int active_workers_ = 0;   ///< workers still inside the current job
  bool stop_ = false;
};

/// The process-wide pool, created lazily on the first parallel call and
/// intentionally leaked (workers must survive static destruction). Sized
/// from the hardware; the *shard* count of each call — what determines
/// results — is controlled separately via GMREG_NUM_THREADS / num_threads
/// arguments, so a small pool can still execute a 4-way-sharded call.
ThreadPool* GlobalThreadPool();

/// True while the current thread is executing a pool task (or a serialized
/// parallel region); nested parallel calls fall back to serial execution.
bool InParallelRegion();

/// The thread budget used when a call site passes num_threads <= 0:
///  1. SetDefaultNumThreads override, if set;
///  2. GMREG_NUM_THREADS (0 and 1 both mean serial — the pre-parallel
///     behaviour is always recoverable);
///  3. std::thread::hardware_concurrency().
/// Always in [1, 64].
int DefaultNumThreads();

/// Process-wide override of DefaultNumThreads (e.g. TrainOptions);
/// n <= 0 clears the override.
void SetDefaultNumThreads(int n);

/// Resolves a call-site request: requested > 0 is honored (clamped to 64),
/// otherwise DefaultNumThreads().
int ResolveNumThreads(int requested);

/// Number of shards a range of `n` items splits into: at most `num_threads`
/// and at most ceil(n / grain), so tiny ranges stay serial. Deterministic in
/// (n, grain, num_threads) — the foundation of the determinism guarantee
/// (docs/PARALLELISM.md).
int ComputeNumShards(std::int64_t n, std::int64_t grain, int num_threads);

/// The half-open range shard `s` of `num_shards` covers in [begin, end):
/// the first (end - begin) % num_shards shards get one extra item. This is
/// the boundary formula RunShards uses — call sites that execute shards
/// serially (e.g. a nested region fallback) use it to reproduce the exact
/// same split, keeping results bitwise-identical to the parallel path.
inline std::pair<std::int64_t, std::int64_t> ShardRange(int s, int num_shards,
                                                        std::int64_t begin,
                                                        std::int64_t end) {
  std::int64_t n = end - begin;
  std::int64_t chunk = n / num_shards;
  std::int64_t rem = n % num_shards;
  std::int64_t b = begin + s * chunk + std::min<std::int64_t>(s, rem);
  return {b, b + chunk + (s < rem ? 1 : 0)};
}

/// Runs fn(shard, shard_begin, shard_end) for `num_shards` contiguous,
/// near-equal shards of [begin, end). Shard boundaries are ShardRange —
/// they depend only on (begin, end, num_shards). Blocks until all shards
/// are done.
void RunShards(int num_shards, std::int64_t begin, std::int64_t end,
               FunctionRef<void(int, std::int64_t, std::int64_t)> fn);

/// Shards [begin, end) by ComputeNumShards(end - begin, grain,
/// ResolveNumThreads(num_threads)) and runs fn(shard, b, e) on each.
void ParallelForShards(std::int64_t begin, std::int64_t end,
                       std::int64_t grain,
                       FunctionRef<void(int, std::int64_t, std::int64_t)> fn,
                       int num_threads = 0);

/// Like ParallelForShards without the shard index: fn(b, e) must only touch
/// state derived from [b, e) (disjoint output slices) to stay deterministic.
void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 FunctionRef<void(std::int64_t, std::int64_t)> fn,
                 int num_threads = 0);

/// Dynamic work queue: runs fn(item) for every item in [0, num_items), with
/// at most ResolveNumThreads(num_threads) executors claiming items off a
/// shared atomic ticket. Unlike RunShards the item -> thread assignment is
/// load-balancing (first free executor takes the next item), so fn must
/// write disjoint outputs whose *values* do not depend on which thread runs
/// them — that is what keeps the packed-GEMM 2D tile queue bitwise
/// deterministic (docs/KERNELS.md). Inside a nested parallel region (or at
/// budget 1) items run 0..n-1 in order on the calling thread.
void ParallelRunDynamic(std::int64_t num_items,
                        FunctionRef<void(std::int64_t)> fn,
                        int num_threads = 0);

/// Deterministic chunked sum: [begin, end) is cut into fixed `grain`-sized
/// chunks (the last one short), `fn(b, e)` produces each chunk's partial sum
/// in parallel, and the partials are folded serially in chunk order. Because
/// the chunk boundaries depend only on (begin, end, grain) — never on the
/// thread budget — the result is bitwise identical at EVERY budget, a
/// stronger contract than ParallelReduce (whose shard count follows the
/// budget). The adaptive priors in src/reg/ build their hyper-parameter
/// updates on this so a checkpoint resumed under a different
/// GMREG_NUM_THREADS stays bit-exact (docs/REGULARIZERS.md).
double ParallelChunkedSum(std::int64_t begin, std::int64_t end,
                          std::int64_t grain,
                          FunctionRef<double(std::int64_t, std::int64_t)> fn,
                          int num_threads = 0);

/// Parallel map-reduce: partial = map(b, e) per shard, then the partials are
/// folded left-to-right in shard order — acc = reduce(acc, partial) — so the
/// result is bitwise-reproducible for a given thread budget.
template <typename T, typename MapFn, typename ReduceFn>
T ParallelReduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 T identity, const MapFn& map, const ReduceFn& reduce,
                 int num_threads = 0) {
  std::int64_t n = end - begin;
  if (n <= 0) return identity;
  int shards = ComputeNumShards(n, grain, ResolveNumThreads(num_threads));
  if (shards <= 1) return reduce(std::move(identity), map(begin, end));
  std::vector<T> partial(static_cast<std::size_t>(shards), identity);
  RunShards(shards, begin, end,
            [&](int s, std::int64_t b, std::int64_t e) {
              partial[static_cast<std::size_t>(s)] = map(b, e);
            });
  T acc = std::move(identity);
  for (T& p : partial) acc = reduce(std::move(acc), std::move(p));
  return acc;
}

}  // namespace gmreg

#endif  // GMREG_UTIL_PARALLEL_H_
