#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace gmreg {
namespace {
constexpr std::uint64_t kPcgMultiplier = 6364136223846793005ULL;
constexpr std::uint64_t kDefaultStream = 0xda3e39cb94b95bdbULL;
}  // namespace

Rng::Rng(std::uint64_t seed) : state_(0), inc_((kDefaultStream << 1u) | 1u) {
  NextUint32();
  state_ += seed;
  NextUint32();
}

std::uint32_t Rng::NextUint32() {
  std::uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Rng::NextBounded(std::uint32_t bound) {
  GMREG_CHECK_GT(bound, 0u);
  // Rejection sampling: discard the biased tail of the 32-bit range.
  std::uint32_t threshold = (0u - bound) % bound;
  while (true) {
    std::uint32_t r = NextUint32();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 random bits -> [0, 1).
  std::uint64_t hi = NextUint32();
  std::uint64_t lo = NextUint32();
  std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 bounded away from zero to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

void Rng::Shuffle(std::vector<int>& values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    std::uint32_t j = NextBounded(static_cast<std::uint32_t>(i));
    std::swap(values[i - 1], values[j]);
  }
}

Rng::State Rng::SaveState() const {
  return State{state_, inc_, has_cached_gaussian_, cached_gaussian_};
}

void Rng::RestoreState(const State& s) {
  state_ = s.state;
  inc_ = s.inc;
  has_cached_gaussian_ = s.has_cached_gaussian;
  cached_gaussian_ = s.cached_gaussian;
}

Rng Rng::Split() {
  std::uint64_t child_seed =
      (static_cast<std::uint64_t>(NextUint32()) << 32) | NextUint32();
  return Rng(child_seed);
}

}  // namespace gmreg
