#ifndef GMREG_UTIL_RNG_H_
#define GMREG_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace gmreg {

/// Deterministic PCG32 pseudo-random generator (O'Neill 2014). Every
/// stochastic component of the library takes a seed explicitly so that all
/// experiments are reproducible run-to-run and machine-to-machine.
class Rng {
 public:
  /// Seeds the generator; distinct seeds yield independent-looking streams.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next raw 32-bit value.
  std::uint32_t NextUint32();

  /// Uniform integer in [0, bound), bound > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint32_t NextBounded(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// True with probability p.
  bool NextBernoulli(double p);

  /// In-place Fisher-Yates shuffle of indices.
  void Shuffle(std::vector<int>& values);

  /// Splits off an independent generator (for per-layer / per-fold seeding).
  Rng Split();

  /// Complete generator state — everything needed to continue the stream
  /// bit-for-bit after a restart (io/checkpoint.h persists this so a
  /// resumed training run replays the exact same batch sequence).
  struct State {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };

  /// Captures the full state of the stream.
  State SaveState() const;

  /// Restores a state captured by SaveState; the next draws continue that
  /// stream exactly.
  void RestoreState(const State& s);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace gmreg

#endif  // GMREG_UTIL_RNG_H_
