#ifndef GMREG_UTIL_STATUS_H_
#define GMREG_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace gmreg {

/// Error categories used across the library. Mirrors the RocksDB/Abseil
/// convention of returning a Status instead of throwing across library
/// boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// Lightweight status object. Cheap to copy in the OK case (no allocation);
/// carries a code and message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: K must be >= 1".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Returns early from the enclosing function if `expr` produced a non-OK
/// status.
#define GMREG_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::gmreg::Status _gmreg_status = (expr);         \
    if (!_gmreg_status.ok()) return _gmreg_status;  \
  } while (false)

}  // namespace gmreg

#endif  // GMREG_UTIL_STATUS_H_
