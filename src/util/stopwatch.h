#ifndef GMREG_UTIL_STOPWATCH_H_
#define GMREG_UTIL_STOPWATCH_H_

#include <chrono>

namespace gmreg {

/// Monotonic wall-clock stopwatch used by the trainer and the lazy-update
/// timing experiments (Figs. 5-7).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gmreg

#endif  // GMREG_UTIL_STOPWATCH_H_
