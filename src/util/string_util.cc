#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace gmreg {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string FormatMeanErr(double mean, double err) {
  return StrFormat("%.3f +/- %.3f", mean, err);
}

std::string FormatVector(const std::vector<double>& values, int digits) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(values[i], digits);
  }
  out += "]";
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace gmreg
