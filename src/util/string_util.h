#ifndef GMREG_UTIL_STRING_UTIL_H_
#define GMREG_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace gmreg {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Renders "mean ± err" with three decimals each, matching Table VII.
std::string FormatMeanErr(double mean, double err);

/// Renders a vector like "[0.216, 0.784]" with `digits` decimals,
/// matching the π / λ columns of Tables IV and V.
std::string FormatVector(const std::vector<double>& values, int digits);

/// Joins strings with a separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

}  // namespace gmreg

#endif  // GMREG_UTIL_STRING_UTIL_H_
