#ifndef GMREG_UTIL_TABLE_H_
#define GMREG_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace gmreg {

/// ASCII table renderer used by the bench harnesses to print rows in the
/// same layout as the paper's tables.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders with column-aligned padding and a header separator.
  void Print(std::ostream& os) const;

  /// Convenience: renders to a string.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gmreg

#endif  // GMREG_UTIL_TABLE_H_
