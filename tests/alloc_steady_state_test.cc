// Steady-state allocation gate (docs/MEMORY.md): after the first batch of a
// given shape plans the buffers, training steps, serving predicts, and every
// registered regularizer kind must run with ZERO heap allocations — asserted
// by differencing the operator-new interposer counter (testutil/alloc_count.h)
// around a measured window, at thread budgets 1, 2, and 4. The arena only
// changes where buffers live, never what the kernels compute, so the tests
// also pin bitwise-identical outputs: plan pass vs steady pass, budget 1 vs
// budget 4, and same-seed run vs same-seed run.
//
// Under sanitizers ZeroAllocAssertsEnabled() is false and the battery runs
// as a smoke test (the runtime's own bookkeeping allocations are not ours).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/factory.h"
#include "core/gm_regularizer.h"
#include "nn/activations.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "nn/sequential.h"
#include "optim/trainer.h"
#include "serve/inference_session.h"
#include "serve/model_registry.h"
#include "tensor/tensor.h"
#include "testutil/alloc_count.h"
#include "testutil/gmreg_testutil.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace gmreg {
namespace {

using testing::ExpectTensorBitwiseEqual;
using testing::HeapAllocCount;
using testing::ScopedThreadBudget;
using testing::TempPath;
using testing::ZeroAllocAssertsEnabled;

// Small conv net whose Dense GEMM (8x4x512 = 32k flops) crosses the packed
// kernel threshold, so the measured window covers im2col scratch, packed
// GEMM panels, activations, loss scratch, and the E/M suffstat buffers.
constexpr std::int64_t kBatch = 8;
constexpr std::int64_t kChannels = 3;
constexpr std::int64_t kHw = 8;
constexpr std::int64_t kClasses = 4;

std::unique_ptr<Sequential> BuildConvNet(std::uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<Sequential>("alloc_net");
  net->Emplace<Conv2d>("conv1", kChannels, /*out_channels=*/8, /*kernel=*/3,
                       /*stride=*/1, /*padding=*/1, InitSpec::He(), &rng);
  net->Emplace<Relu>("relu1");
  net->Emplace<Flatten>("flat");
  net->Emplace<Dense>("fc", 8 * kHw * kHw, kClasses, InitSpec::He(), &rng);
  return net;
}

void FillBatch(Rng* rng, Tensor* input, std::vector<int>* labels) {
  labels->resize(static_cast<std::size_t>(kBatch));
  for (std::int64_t i = 0; i < kBatch; ++i) {
    (*labels)[static_cast<std::size_t>(i)] =
        static_cast<int>(rng->NextBounded(kClasses));
  }
  float* p = input->data();
  for (std::int64_t i = 0; i < input->size(); ++i) {
    p[i] = static_cast<float>(rng->NextGaussian());
  }
}

// Trainer over the conv net with a GM regularizer updating every iteration,
// so the E-step/M-step run inside every measured window, not just at plan
// time.
struct TrainRig {
  explicit TrainRig(std::uint64_t seed) : net(BuildConvNet(seed)) {
    TrainOptions opts;
    opts.batch_size = kBatch;
    opts.learning_rate = 0.01;
    opts.num_train_samples = 256;
    trainer = std::make_unique<Trainer>(net.get(), opts);
    trainer->AttachToAllWeights(
        [](const ParamRef& p) -> std::unique_ptr<Regularizer> {
          GmOptions gm;
          gm.min_precision = MinPrecisionFromInitStdDev(p.init_stddev);
          gm.lazy.greg_interval = 1;
          gm.lazy.gm_interval = 1;
          return std::make_unique<GmRegularizer>(p.name, p.value->size(), gm);
        });
  }

  std::unique_ptr<Sequential> net;
  std::unique_ptr<Trainer> trainer;
};

TEST(AllocSteadyStateTest, InterposerIsLinked) {
  // The whole point of this binary is the counting operator new; if the
  // EXTRA_SOURCES wiring ever drops testutil/alloc_interposer.cc, fail
  // loudly instead of green-lighting a no-op battery.
  ASSERT_TRUE(testing::HeapAllocCountingActive());
  std::int64_t before = HeapAllocCount();
  std::vector<int>* v = new std::vector<int>(100);
  EXPECT_GT(HeapAllocCount(), before);
  delete v;
}

TEST(AllocSteadyStateTest, TrainStepReachesZeroAllocsAtEveryBudget) {
  TrainRig rig(/*seed=*/7);
  Tensor input({kBatch, kChannels, kHw, kHw});
  std::vector<int> labels;
  Rng data_rng(3);
  FillBatch(&data_rng, &input, &labels);
  for (int budget : {1, 2, 4}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    ScopedThreadBudget tb(budget);
    // Warmup: the first step at a new budget may grow per-shard scratch and
    // spin up pool workers with cold thread-local buffers.
    for (int i = 0; i < 4; ++i) rig.trainer->Step(input, labels);
    std::int64_t before = HeapAllocCount();
    for (int i = 0; i < 4; ++i) rig.trainer->Step(input, labels);
    std::int64_t delta = HeapAllocCount() - before;
    if (ZeroAllocAssertsEnabled()) {
      EXPECT_EQ(delta, 0)
          << "steady-state training step performed heap allocations";
    }
  }
}

TEST(AllocSteadyStateTest, TrainStepBitwiseIdenticalAcrossBudgetsAndRuns) {
  // Same seeds, same batch stream, different thread budgets: every weight
  // must match at the bit level (the determinism contract of
  // docs/KERNELS.md carries through the arena-planned path).
  auto run = [](int budget) {
    TrainRig rig(/*seed=*/7);
    ScopedThreadBudget tb(budget);
    Tensor input({kBatch, kChannels, kHw, kHw});
    std::vector<int> labels;
    Rng data_rng(3);
    for (int i = 0; i < 6; ++i) {
      FillBatch(&data_rng, &input, &labels);
      rig.trainer->Step(input, labels);
    }
    return rig;
  };
  TrainRig serial = run(1);
  TrainRig parallel = run(4);
  TrainRig repeat = run(4);
  const std::vector<ParamRef>& a = serial.trainer->params();
  const std::vector<ParamRef>& b = parallel.trainer->params();
  const std::vector<ParamRef>& c = repeat.trainer->params();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ExpectTensorBitwiseEqual(*a[k].value, *b[k].value,
                             a[k].name + " budget 1 vs 4");
    ExpectTensorBitwiseEqual(*b[k].value, *c[k].value,
                             a[k].name + " run vs same-seed rerun");
  }
}

// Train-and-checkpoint setup for the serving tests, mirroring the
// serve_e2e_test recipe on the mlp:8:16:2 spec.
void TrainAndCheckpoint(const ModelSpec& spec, const std::string& ckpt_path) {
  std::unique_ptr<Layer> net = spec.factory();
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 16;
  opts.learning_rate = 0.05;
  opts.num_train_samples = 256;
  opts.checkpoint_path = ckpt_path;
  opts.checkpoint_every = 1;
  Trainer trainer(net.get(), opts);
  Rng data_rng(11);
  auto next_batch = [&](Tensor* input, std::vector<int>* labels) {
    if (input->shape() != std::vector<std::int64_t>{opts.batch_size, 8}) {
      *input = Tensor({opts.batch_size, 8});
    }
    labels->resize(static_cast<std::size_t>(opts.batch_size));
    for (std::int64_t i = 0; i < opts.batch_size; ++i) {
      int label = static_cast<int>(data_rng.NextBounded(2));
      (*labels)[static_cast<std::size_t>(i)] = label;
      for (std::int64_t j = 0; j < 8; ++j) {
        double mean = (j % 2 == label) ? 1.5 : -0.5;
        input->At(i, j) = static_cast<float>(data_rng.NextGaussian(mean, 1.0));
      }
    }
  };
  ASSERT_EQ(trainer.Train(next_batch, 256 / opts.batch_size).size(), 1u);
}

TEST(AllocSteadyStateTest, ServePredictZeroAllocsAndPlanPassIdentical) {
  ModelSpec spec;
  ASSERT_TRUE(ParseModelSpec("mlp:8:16:2", &spec).ok());
  std::string ckpt = TempPath("alloc_serve.ckpt");
  TrainAndCheckpoint(spec, ckpt);
  ModelRegistry registry(ckpt);
  ASSERT_TRUE(registry.Reload().ok());
  InferenceSession session(&registry, spec.factory);

  Tensor in({4, 8});
  Rng rng(99);
  for (std::int64_t i = 0; i < in.size(); ++i) {
    in.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  // First predict is the planning pass, second is steady state; the plan
  // only moves buffers, so the scores must match bit for bit.
  Tensor first, steady;
  ASSERT_TRUE(session.Predict(in, &first).ok());
  ASSERT_TRUE(session.Predict(in, &steady).ok());
  ExpectTensorBitwiseEqual(first, steady, "plan pass vs steady pass");

  for (int budget : {1, 2, 4}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    ScopedThreadBudget tb(budget);
    Tensor out;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(session.Predict(in, &out).ok());
    }
    std::int64_t before = HeapAllocCount();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(session.Predict(in, &out).ok());
    }
    std::int64_t delta = HeapAllocCount() - before;
    if (ZeroAllocAssertsEnabled()) {
      EXPECT_EQ(delta, 0)
          << "steady-state predict performed heap allocations";
    }
    ExpectTensorBitwiseEqual(first, out, "steady pass under budget");
  }
}

TEST(AllocSteadyStateTest, ServeAlternatingBatchSizesStayAllocationFree) {
  // The ShapePlan LRU (util/arena.h) remembers the last 8 input shapes per
  // plan site: alternating batch sizes (A/B/A/B traffic, the common serving
  // pattern of a full batch followed by a remainder batch) must neither
  // allocate nor bump gm.arena.plan_rebuilds once both shapes are warm.
  ModelSpec spec;
  ASSERT_TRUE(ParseModelSpec("mlp:8:16:2", &spec).ok());
  std::string ckpt = TempPath("alloc_serve_ab.ckpt");
  TrainAndCheckpoint(spec, ckpt);
  ModelRegistry registry(ckpt);
  ASSERT_TRUE(registry.Reload().ok());
  InferenceSession session(&registry, spec.factory);

  Rng rng(17);
  Tensor in_a({4, 8});
  Tensor in_b({2, 8});
  for (Tensor* t : {&in_a, &in_b}) {
    for (std::int64_t i = 0; i < t->size(); ++i) {
      t->data()[i] = static_cast<float>(rng.NextGaussian());
    }
  }
  Tensor out;
  // Warm both shapes (each first visit is a planning pass).
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(session.Predict(in_a, &out).ok());
    ASSERT_TRUE(session.Predict(in_b, &out).ok());
  }
  Counter* rebuilds = MetricsRegistry::Global().counter("gm.arena.plan_rebuilds");
  std::int64_t rebuilds_before = rebuilds->value();
  std::int64_t allocs_before = HeapAllocCount();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(session.Predict(in_a, &out).ok());
    ASSERT_TRUE(session.Predict(in_b, &out).ok());
  }
  EXPECT_EQ(rebuilds->value(), rebuilds_before)
      << "alternating warm shapes re-planned";
  std::int64_t delta = HeapAllocCount() - allocs_before;
  if (ZeroAllocAssertsEnabled()) {
    EXPECT_EQ(delta, 0) << "A/B/A/B shape flips performed heap allocations";
  }
}

TEST(AllocSteadyStateTest, QuantizedServePredictReachesZeroAllocs) {
  // The int8 path must inherit the steady-state contract: quantization
  // happens once at snapshot publish, and GemmQuantB runs with no scratch.
  ModelSpec spec;
  ASSERT_TRUE(ParseModelSpec("mlp:8:16:2", &spec).ok());
  std::string ckpt = TempPath("alloc_serve_quant.ckpt");
  TrainAndCheckpoint(spec, ckpt);
  ModelRegistry registry(ckpt, /*quantize=*/true);
  ASSERT_TRUE(registry.Reload().ok());
  InferenceSession session(&registry, spec.factory, /*quantize=*/true);

  Tensor in({4, 8});
  Rng rng(23);
  for (std::int64_t i = 0; i < in.size(); ++i) {
    in.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  Tensor out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session.Predict(in, &out).ok());
  }
  std::int64_t before = HeapAllocCount();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(session.Predict(in, &out).ok());
  }
  std::int64_t delta = HeapAllocCount() - before;
  if (ZeroAllocAssertsEnabled()) {
    EXPECT_EQ(delta, 0) << "quantized steady-state predict allocated";
  }
}

TEST(AllocSteadyStateTest, EveryRegisteredRegularizerKindReachesZeroAllocs) {
  // Iterates the factory's canonical example configs, so a newly registered
  // prior joins this gate automatically (same convention as the property
  // suite's coverage check).
  const std::int64_t kDims = 3 * 1024 + 17;
  const double kScale = 1.0 / 256.0;
  for (const std::string& config : RegularizerExampleConfigs()) {
    SCOPED_TRACE(config);
    std::unique_ptr<Regularizer> reg;
    ASSERT_TRUE(MakeRegularizerFromConfig(config, kDims, &reg).ok());
    Tensor w = testing::MakeBimodalWeightTensor(kDims, /*seed=*/42);
    Tensor grad({kDims});
    grad.SetZero();
    // Warm through the adaptive kinds' warmup epochs and several full lazy
    // intervals; the measured window then still contains E/M refreshes
    // (example-config intervals are small), which must also be alloc-free.
    std::int64_t it = 0;
    for (; it < 64; ++it) {
      reg->AccumulateGradient(w, it, /*epoch=*/it / 8, kScale, &grad);
    }
    std::int64_t before = HeapAllocCount();
    for (; it < 96; ++it) {
      reg->AccumulateGradient(w, it, it / 8, kScale, &grad);
    }
    std::int64_t delta = HeapAllocCount() - before;
    if (ZeroAllocAssertsEnabled()) {
      EXPECT_EQ(delta, 0) << "steady-state AccumulateGradient allocated";
    }
  }
}

}  // namespace
}  // namespace gmreg
