// Unit tests for the bump allocator behind the zero-allocation steady
// state (util/arena.h, docs/MEMORY.md): block alignment, reset semantics,
// graceful heap fallback on exhaustion (with the gm.arena.fallback_allocs
// accounting), scope nesting, the ShapePlan key, and the ScratchBuffer
// grow-only contract.

#include "util/arena.h"

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/tensor.h"
#include "util/env.h"
#include "util/metrics.h"

namespace gmreg {
namespace {

bool Aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % Arena::kAlignment == 0;
}

TEST(ArenaTest, BlocksAre64ByteAlignedAndDisjoint) {
  Arena arena(/*capacity_bytes=*/1 << 16);
  void* a = arena.TryAllocate(1);
  void* b = arena.TryAllocate(65);
  void* c = arena.TryAllocate(64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(Aligned64(a));
  EXPECT_TRUE(Aligned64(b));
  EXPECT_TRUE(Aligned64(c));
  // Rounded block extents never overlap: 1 -> 64, 65 -> 128.
  EXPECT_GE(static_cast<char*>(b), static_cast<char*>(a) + 64);
  EXPECT_GE(static_cast<char*>(c), static_cast<char*>(b) + 128);
  EXPECT_EQ(arena.used(), 64u + 128u + 64u);
  EXPECT_TRUE(arena.Owns(a));
  EXPECT_TRUE(arena.Owns(c));
  int on_stack = 0;
  EXPECT_FALSE(arena.Owns(&on_stack));
}

TEST(ArenaTest, ResetReclaimsEverythingAndKeepsSlab) {
  Arena arena(1 << 12);
  void* first = arena.TryAllocate(256);
  ASSERT_NE(first, nullptr);
  arena.TryAllocate(512);
  EXPECT_EQ(arena.used(), 256u + 512u);
  std::size_t high = arena.high_water();
  EXPECT_EQ(high, 256u + 512u);
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.reset_count(), 1);
  // High-water survives a reset; the next allocation reuses the slab from
  // offset zero.
  EXPECT_EQ(arena.high_water(), high);
  void* again = arena.TryAllocate(64);
  EXPECT_EQ(again, first);
}

TEST(ArenaTest, ExhaustionReturnsNullAndCountsFallbacks) {
  Arena arena(128);
  EXPECT_NE(arena.TryAllocate(128), nullptr);
  EXPECT_EQ(arena.TryAllocate(64), nullptr) << "slab is full";
  EXPECT_EQ(arena.fallback_count(), 0);
  // ArenaAllocRawFrom degrades to the heap and records the fallback.
  bool from_arena = true;
  void* p = ArenaAllocRawFrom(&arena, 64, &from_arena);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(from_arena);
  EXPECT_FALSE(arena.Owns(p));
  EXPECT_EQ(arena.fallback_count(), 1);
  std::memset(p, 0xab, 64);  // the block must be usable
  ArenaFreeRaw(p, from_arena);
}

TEST(ArenaTest, OversizedRequestFallsBackWithoutPoisoningTheSlab) {
  Arena arena(256);
  bool from_arena = true;
  void* big = ArenaAllocRawFrom(&arena, 4096, &from_arena);
  ASSERT_NE(big, nullptr);
  EXPECT_FALSE(from_arena);
  ArenaFreeRaw(big, from_arena);
  // The failed bump must not consume the remaining capacity.
  void* small = arena.TryAllocate(128);
  EXPECT_NE(small, nullptr);
  EXPECT_TRUE(arena.Owns(small));
}

TEST(ArenaScopeTest, InstallsAndRestoresCurrentAndNests) {
  EXPECT_EQ(Arena::Current(), nullptr);
  Arena outer(1 << 12);
  Arena inner(1 << 12);
  {
    ArenaScope outer_scope(&outer);
    EXPECT_EQ(Arena::Current(), &outer);
    {
      // nullptr scope is a no-op: it must NOT clear the outer scope.
      ArenaScope noop(nullptr);
      EXPECT_EQ(Arena::Current(), &outer);
      ArenaScope inner_scope(&inner);
      EXPECT_EQ(Arena::Current(), &inner);
    }
    EXPECT_EQ(Arena::Current(), &outer);
  }
  EXPECT_EQ(Arena::Current(), nullptr);
}

TEST(ArenaScopeTest, ScopeIsPerThread) {
  Arena arena(1 << 12);
  ArenaScope scope(&arena);
  ASSERT_EQ(Arena::Current(), &arena);
  Arena* seen = &arena;
  std::thread t([&] { seen = Arena::Current(); });
  t.join();
  EXPECT_EQ(seen, nullptr) << "a scope must not leak into other threads";
}

TEST(ArenaAllocRawTest, RoutesByScopeAndReportsProvenance) {
  Arena arena(1 << 12);
  bool from_arena = false;
  void* heap_block = ArenaAllocRaw(64, &from_arena);
  ASSERT_NE(heap_block, nullptr);
  EXPECT_FALSE(from_arena) << "no scope active -> heap tier";
  EXPECT_TRUE(Aligned64(heap_block));
  ArenaFreeRaw(heap_block, from_arena);
  {
    ArenaScope scope(&arena);
    void* arena_block = ArenaAllocRaw(64, &from_arena);
    ASSERT_NE(arena_block, nullptr);
    EXPECT_TRUE(from_arena);
    EXPECT_TRUE(arena.Owns(arena_block));
    // Abandoning an arena block is the contract — no free call exists.
  }
}

TEST(ArenaMetricsTest, GlobalArenaFallbackFeedsCounter) {
  // GlobalArena() is the only metrics-reporting arena; exercise the
  // counter through RecordFallback (allocating past the global slab here
  // would poison it for other tests in this process).
  Counter* fallbacks =
      MetricsRegistry::Global().counter("gm.arena.fallback_allocs");
  std::int64_t before = fallbacks->value();
  GlobalArena().RecordFallback();
  EXPECT_EQ(fallbacks->value(), before + 1);
  std::int64_t rebuilds_before =
      MetricsRegistry::Global().counter("gm.arena.plan_rebuilds")->value();
  RecordArenaPlanRebuild();
  EXPECT_EQ(
      MetricsRegistry::Global().counter("gm.arena.plan_rebuilds")->value(),
      rebuilds_before + 1);
}

TEST(ArenaMetricsTest, TensorGrowthInsideScopeLandsInArena) {
  Arena arena(1 << 16);
  const float* data = nullptr;
  {
    ArenaScope scope(&arena);
    Tensor t({16, 16});
    data = t.data();
    EXPECT_TRUE(arena.Owns(data));
    t.Fill(2.0f);
    EXPECT_EQ(t[255], 2.0f);
  }
  // The Tensor is gone, its arena block abandoned; only Reset reclaims.
  EXPECT_GE(arena.used(), 16u * 16u * sizeof(float));
}

TEST(ShapePlanTest, KeysOnDimsAndRank) {
  ShapePlan plan;
  const std::int64_t a[2] = {32, 10};
  const std::int64_t b[2] = {16, 10};
  const std::int64_t c[3] = {32, 10, 1};
  EXPECT_TRUE(plan.Update(a, 2)) << "first shape always plans";
  EXPECT_FALSE(plan.Update(a, 2));
  EXPECT_TRUE(plan.Update(b, 2)) << "dim change replans";
  EXPECT_TRUE(plan.Update(c, 3)) << "rank change replans";
  EXPECT_FALSE(plan.Update(c, 3));
  // The LRU remembers recent shapes: reverting (A/B/A/B flips) is free.
  EXPECT_FALSE(plan.Update(a, 2)) << "recent shape revisit must not replan";
  EXPECT_FALSE(plan.Update(b, 2));
  EXPECT_FALSE(plan.Update(a, 2));
}

TEST(ShapePlanTest, EvictsLeastRecentlyUsedPastCapacity) {
  ShapePlan plan;
  // Fill the 8-entry LRU with batch sizes 1..8.
  for (std::int64_t bs = 1; bs <= 8; ++bs) {
    const std::int64_t dims[2] = {bs, 10};
    EXPECT_TRUE(plan.Update(dims, 2)) << "bs=" << bs;
  }
  // All eight are remembered; touching bs=1 promotes it to most-recent.
  for (std::int64_t bs = 1; bs <= 8; ++bs) {
    const std::int64_t dims[2] = {bs, 10};
    EXPECT_FALSE(plan.Update(dims, 2)) << "bs=" << bs;
  }
  const std::int64_t one[2] = {1, 10};
  EXPECT_FALSE(plan.Update(one, 2));
  // A ninth shape evicts the LRU entry — bs=2 after the promotion above.
  const std::int64_t nine[2] = {9, 10};
  EXPECT_TRUE(plan.Update(nine, 2));
  EXPECT_FALSE(plan.Update(one, 2)) << "promoted entry survives eviction";
  const std::int64_t two[2] = {2, 10};
  EXPECT_TRUE(plan.Update(two, 2)) << "LRU entry was evicted";
}

TEST(ScratchBufferTest, GrowOnlyFromGlobalArena) {
  ScratchBuffer<float> buf;
  float* p1 = buf.EnsureCapacity(100);
  ASSERT_NE(p1, nullptr);
  EXPECT_TRUE(Aligned64(p1));
  EXPECT_EQ(buf.capacity(), 100u);
  // Smaller and equal requests keep the same block.
  EXPECT_EQ(buf.EnsureCapacity(50), p1);
  EXPECT_EQ(buf.EnsureCapacity(100), p1);
  EXPECT_EQ(buf.capacity(), 100u);
  float* p2 = buf.EnsureCapacity(200);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(buf.capacity(), 200u);
  p2[199] = 1.0f;  // usable to the last element
}

TEST(MemEnvTest, GetMemEnvBytesReflectsEnvironment) {
  // The parse is cached process-wide (GlobalArena sizes itself from it
  // once), so this only sanity-checks the cached value's domain.
  long long bytes = GetMemEnvBytes();
  EXPECT_TRUE(bytes == -1 || bytes >= 0);
}

}  // namespace
}  // namespace gmreg
