// Crash-safe checkpoint/resume tests.
//
// The headline property (ISSUE 3 acceptance): a training run killed by the
// fault injector after epoch N and resumed from its checkpoint emits a
// per-epoch JSONL trace bit-identical (up to wall-clock fields) to an
// uninterrupted run with the same seeds — at 1 thread and at 4 threads.
// Around that sit unit tests for the checkpoint file format (checksummed,
// versioned, strict), the save/rotate/retry path, torn-write detection with
// .prev fallback, the GMREG_FAULT spec parser, RNG stream capture, and the
// GmRegularizer state round-trip.

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/factory.h"
#include "core/gm_regularizer.h"
#include "io/checkpoint.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "optim/trainer.h"
#include "reg/regularizer.h"
#include "tensor/tensor.h"
#include "testutil/gmreg_testutil.h"
#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/json_writer.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gmreg {
namespace {

using ::gmreg::testing::TempPath;

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::int64_t CounterValue(const std::string& name) {
  return MetricsRegistry::Global().counter(name)->value();
}

// --------------------------------------------------------------------------
// Checkpoint file format
// --------------------------------------------------------------------------

Tensor MakeTensor(const std::vector<std::int64_t>& shape, float start,
                  float step) {
  Tensor t(shape);
  float* data = t.data();
  for (std::int64_t i = 0; i < t.size(); ++i) {
    data[i] = start + step * static_cast<float>(i);
  }
  return t;
}

TrainingCheckpoint MakeCheckpoint() {
  TrainingCheckpoint ckpt;
  ckpt.epoch = 5;
  ckpt.iteration = 320;
  ckpt.learning_rate = 0.0125;
  ckpt.has_rng = true;
  ckpt.rng.state = 0x853c49e6748fea9bULL;
  ckpt.rng.inc = 0xda3e39cb94b95bdbULL;
  ckpt.rng.has_cached_gaussian = true;
  ckpt.rng.cached_gaussian = -0.6251938247680664;
  ckpt.param_names = {"fc1/weight", "fc1/bias"};
  ckpt.params.push_back(MakeTensor({3, 4}, -0.25f, 0.0625f));
  ckpt.params.push_back(MakeTensor({4}, 0.1f, -0.003f));
  ckpt.velocity.push_back(MakeTensor({3, 4}, 0.001f, 0.0001f));
  ckpt.velocity.push_back(MakeTensor({4}, -0.002f, 0.0005f));
  ckpt.reg_states.emplace_back("fc1/weight", "gmreg-state v2 opaque blob");
  return ckpt;
}

void ExpectTensorsEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.SameShape(b));
  for (std::int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

TEST(CheckpointFormatTest, SerializeDeserializeRoundTrip) {
  TrainingCheckpoint ckpt = MakeCheckpoint();
  std::string text = SerializeCheckpoint(ckpt);
  EXPECT_EQ(text.rfind("gmckpt v2\n", 0), 0u);
  TrainingCheckpoint back;
  Status st = DeserializeCheckpoint(text, &back);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(back.epoch, ckpt.epoch);
  EXPECT_EQ(back.iteration, ckpt.iteration);
  EXPECT_EQ(back.learning_rate, ckpt.learning_rate);
  ASSERT_TRUE(back.has_rng);
  EXPECT_EQ(back.rng.state, ckpt.rng.state);
  EXPECT_EQ(back.rng.inc, ckpt.rng.inc);
  EXPECT_EQ(back.rng.has_cached_gaussian, ckpt.rng.has_cached_gaussian);
  EXPECT_EQ(back.rng.cached_gaussian, ckpt.rng.cached_gaussian);
  ASSERT_EQ(back.param_names, ckpt.param_names);
  ASSERT_EQ(back.params.size(), ckpt.params.size());
  for (std::size_t i = 0; i < ckpt.params.size(); ++i) {
    ExpectTensorsEqual(back.params[i], ckpt.params[i]);
    ExpectTensorsEqual(back.velocity[i], ckpt.velocity[i]);
  }
  ASSERT_EQ(back.reg_states.size(), 1u);
  EXPECT_EQ(back.reg_states[0].first, "fc1/weight");
  EXPECT_EQ(back.reg_states[0].second, "gmreg-state v2 opaque blob");
}

TEST(CheckpointFormatTest, RoundTripWithoutRng) {
  TrainingCheckpoint ckpt = MakeCheckpoint();
  ckpt.has_rng = false;
  TrainingCheckpoint back;
  ASSERT_TRUE(DeserializeCheckpoint(SerializeCheckpoint(ckpt), &back).ok());
  EXPECT_FALSE(back.has_rng);
  EXPECT_EQ(back.param_names, ckpt.param_names);
}

TEST(CheckpointFormatTest, DetectsCorruptionAndTruncation) {
  std::string text = SerializeCheckpoint(MakeCheckpoint());
  TrainingCheckpoint out;

  // A single flipped byte in the payload breaks the checksum.
  std::string flipped = text;
  flipped[text.size() / 2] ^= 0x20;
  Status st = DeserializeCheckpoint(flipped, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("checksum"), std::string::npos)
      << st.ToString();

  // A torn prefix (what a crash mid-write leaves behind) has no trailer.
  std::string torn = text.substr(0, text.size() / 2);
  EXPECT_EQ(DeserializeCheckpoint(torn, &out).code(),
            StatusCode::kInvalidArgument);

  // Bytes appended after the trailer are rejected, not ignored.
  EXPECT_EQ(DeserializeCheckpoint(text + "extra\n", &out).code(),
            StatusCode::kInvalidArgument);

  // Unknown future version.
  std::string v9 = text;
  v9.replace(v9.find("v2"), 2, "v9");
  EXPECT_EQ(DeserializeCheckpoint(v9, &out).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(DeserializeCheckpoint("", &out).code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Save / rotate / retry / fallback
// --------------------------------------------------------------------------

TEST(CheckpointIoTest, SaveRotatesPreviousSnapshot) {
  std::string path = TempPath("rotate.ckpt");
  std::remove(path.c_str());
  std::remove(PreviousCheckpointPath(path).c_str());

  TrainingCheckpoint first = MakeCheckpoint();
  first.epoch = 1;
  TrainingCheckpoint second = MakeCheckpoint();
  second.epoch = 2;
  ASSERT_TRUE(SaveCheckpoint(first, path).ok());
  EXPECT_FALSE(FileExists(PreviousCheckpointPath(path)));
  ASSERT_TRUE(SaveCheckpoint(second, path).ok());
  ASSERT_TRUE(FileExists(PreviousCheckpointPath(path)));

  TrainingCheckpoint out;
  ASSERT_TRUE(LoadCheckpoint(path, &out).ok());
  EXPECT_EQ(out.epoch, 2);
  ASSERT_TRUE(LoadCheckpoint(PreviousCheckpointPath(path), &out).ok());
  EXPECT_EQ(out.epoch, 1);
}

TEST(CheckpointIoTest, LoadReportsNotFoundWhenMissing) {
  std::string path = TempPath("missing.ckpt");
  std::remove(path.c_str());
  std::remove(PreviousCheckpointPath(path).c_str());
  TrainingCheckpoint out;
  EXPECT_EQ(LoadCheckpoint(path, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(LoadLatestValidCheckpoint(path, &out).code(),
            StatusCode::kNotFound);
}

TEST(CheckpointIoTest, WriteFailRetriesThenKeepsPreviousSnapshot) {
  std::string path = TempPath("retry.ckpt");
  std::remove(path.c_str());
  std::remove(PreviousCheckpointPath(path).c_str());
  TrainingCheckpoint first = MakeCheckpoint();
  first.epoch = 7;
  ASSERT_TRUE(SaveCheckpoint(first, path).ok());

  std::int64_t retries_before = CounterValue("gm.checkpoint_write_retries");
  std::int64_t failures_before = CounterValue("gm.checkpoint_save_failures");
  ASSERT_TRUE(FaultInjector::Global().Configure("write_fail:1").ok());
  CheckpointIoOptions io;
  io.max_attempts = 3;
  io.initial_backoff_ms = 0;
  Status st = SaveCheckpoint(MakeCheckpoint(), path, io);
  FaultInjector::Global().Reset();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(CounterValue("gm.checkpoint_write_retries"), retries_before + 2);
  EXPECT_EQ(CounterValue("gm.checkpoint_save_failures"), failures_before + 1);

  // The rotation ran before the failed write, so recovery falls back one
  // epoch instead of to zero.
  TrainingCheckpoint out;
  ASSERT_TRUE(LoadLatestValidCheckpoint(path, &out).ok());
  EXPECT_EQ(out.epoch, 7);
}

TEST(CheckpointIoTest, TornWriteDetectedAndFallsBackToPrev) {
  std::string path = TempPath("torn.ckpt");
  std::remove(path.c_str());
  std::remove(PreviousCheckpointPath(path).c_str());
  TrainingCheckpoint first = MakeCheckpoint();
  first.epoch = 3;
  ASSERT_TRUE(SaveCheckpoint(first, path).ok());

  // The torn write "succeeds" (rename happens) but persists only half the
  // payload — the reader must catch it via the checksum.
  ASSERT_TRUE(FaultInjector::Global().Configure("torn_write").ok());
  TrainingCheckpoint second = MakeCheckpoint();
  second.epoch = 4;
  ASSERT_TRUE(SaveCheckpoint(second, path).ok());
  FaultInjector::Global().Reset();

  TrainingCheckpoint out;
  EXPECT_EQ(LoadCheckpoint(path, &out).code(), StatusCode::kInvalidArgument);

  std::int64_t corrupt_before = CounterValue("gm.checkpoint_corrupt_skipped");
  std::int64_t fallback_before = CounterValue("gm.checkpoint_fallback_loads");
  ASSERT_TRUE(LoadLatestValidCheckpoint(path, &out).ok());
  EXPECT_EQ(out.epoch, 3);
  EXPECT_EQ(CounterValue("gm.checkpoint_corrupt_skipped"),
            corrupt_before + 1);
  EXPECT_EQ(CounterValue("gm.checkpoint_fallback_loads"),
            fallback_before + 1);
}

TEST(CheckpointIoTest, CorruptPrimaryWithoutFallbackReportsPrimaryError) {
  std::string path = TempPath("corrupt_only.ckpt");
  std::remove(PreviousCheckpointPath(path).c_str());
  std::ofstream(path) << "gmckpt v2\nnot a real checkpoint\n";
  TrainingCheckpoint out;
  Status st = LoadLatestValidCheckpoint(path, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Fault injector spec parsing
// --------------------------------------------------------------------------

TEST(FaultInjectorTest, ParsesCombinedSpec) {
  FaultInjector& fault = FaultInjector::Global();
  Status st = fault.Configure("write_fail:0.25,torn_write,crash_after_epoch:3");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(fault.enabled());
  EXPECT_EQ(fault.write_fail_probability(), 0.25);
  EXPECT_TRUE(fault.torn_write_armed());
  EXPECT_EQ(fault.crash_after_epoch(), 3);
  // torn_write is one-shot.
  EXPECT_TRUE(fault.ConsumeTornWrite());
  EXPECT_FALSE(fault.ConsumeTornWrite());
  fault.Reset();
  EXPECT_FALSE(fault.enabled());
  EXPECT_EQ(fault.crash_after_epoch(), -1);
}

TEST(FaultInjectorTest, RejectsMalformedSpecs) {
  FaultInjector& fault = FaultInjector::Global();
  EXPECT_EQ(fault.Configure("write_fail:1.5").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(fault.Configure("write_fail:-0.1").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(fault.Configure("write_fail:abc").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault.Configure("crash_after_epoch:-2").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(fault.Configure("bogus_fault").code(),
            StatusCode::kInvalidArgument);
  // A rejected spec leaves every fault disarmed.
  EXPECT_FALSE(fault.enabled());
  // Empty spec is valid and disarms.
  EXPECT_TRUE(fault.Configure("").ok());
  EXPECT_FALSE(fault.enabled());
}

TEST(FaultInjectorTest, WriteFailProbabilityOneAlwaysFires) {
  FaultInjector& fault = FaultInjector::Global();
  ASSERT_TRUE(fault.Configure("write_fail:1").ok());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(fault.ShouldFailWrite());
  fault.Reset();
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(fault.ShouldFailWrite());
}

// --------------------------------------------------------------------------
// RNG stream capture
// --------------------------------------------------------------------------

TEST(RngStateTest, SaveRestoreContinuesStreamExactly) {
  Rng rng(991);
  for (int i = 0; i < 17; ++i) rng.NextUint32();
  // Leave a Box-Muller value cached so the state capture must include it.
  rng.NextGaussian();
  Rng::State state = rng.SaveState();

  std::vector<double> expected;
  for (int i = 0; i < 9; ++i) expected.push_back(rng.NextGaussian());
  std::vector<std::uint32_t> expected_ints;
  for (int i = 0; i < 9; ++i) expected_ints.push_back(rng.NextUint32());

  Rng other(12345);  // different seed: RestoreState must fully overwrite
  other.RestoreState(state);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(other.NextGaussian(), expected[i]);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(other.NextUint32(), expected_ints[i]);
  }
}

// --------------------------------------------------------------------------
// Regularizer state round-trips
// --------------------------------------------------------------------------

class StatelessReg : public Regularizer {
 public:
  void AccumulateGradient(const Tensor&, std::int64_t, std::int64_t, double,
                          Tensor*) override {}
  double Penalty(const Tensor&) const override { return 0.0; }
  std::string Name() const override { return "Stateless"; }
};

TEST(RegularizerStateTest, StatelessDefaultRejectsPayloads) {
  StatelessReg reg;
  std::string state = "sentinel";
  EXPECT_FALSE(reg.SaveState(&state));
  EXPECT_TRUE(state.empty());
  EXPECT_TRUE(reg.LoadState("").ok());
  EXPECT_EQ(reg.LoadState("gmreg-state v2 ...").code(),
            StatusCode::kInvalidArgument);
}

GmOptions SmallGmOptions() {
  GmOptions gm;
  gm.num_components = 3;
  gm.num_threads = 1;
  gm.lazy.warmup_epochs = 1;
  gm.lazy.greg_interval = 2;
  gm.lazy.gm_interval = 3;
  return gm;
}

TEST(RegularizerStateTest, GmRegularizerRoundTripContinuesExactly) {
  const std::int64_t kDims = 24;
  Rng rng(41);
  Tensor w({4, 6});
  for (std::int64_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<float>(rng.NextGaussian(0.0, 0.3));
  }

  GmRegularizer reg("w", kDims, SmallGmOptions());
  Tensor grad({4, 6});
  for (std::int64_t it = 0; it < 10; ++it) {
    grad.Fill(0.0f);
    reg.AccumulateGradient(w, it, it / 5, 0.01, &grad);
  }
  std::string state;
  ASSERT_TRUE(reg.SaveState(&state));
  ASSERT_FALSE(state.empty());
  EXPECT_EQ(state.find('\n'), std::string::npos)
      << "state must be a single line for checkpoint embedding";

  GmRegularizer fresh("w", kDims, SmallGmOptions());
  Status st = fresh.LoadState(state);
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Learned mixture, counters, penalty and the cached greg all match.
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(fresh.mixture().pi()[static_cast<std::size_t>(k)],
              reg.mixture().pi()[static_cast<std::size_t>(k)]);
    EXPECT_EQ(fresh.mixture().lambda()[static_cast<std::size_t>(k)],
              reg.mixture().lambda()[static_cast<std::size_t>(k)]);
  }
  EXPECT_EQ(fresh.estep_count(), reg.estep_count());
  EXPECT_EQ(fresh.mstep_count(), reg.mstep_count());
  EXPECT_EQ(fresh.greg_cache_hits(), reg.greg_cache_hits());
  EXPECT_EQ(fresh.Penalty(w), reg.Penalty(w));

  // And the next interleaved updates produce bit-identical gradients.
  Tensor g1({4, 6});
  Tensor g2({4, 6});
  for (std::int64_t it = 10; it < 16; ++it) {
    g1.Fill(0.0f);
    g2.Fill(0.0f);
    reg.AccumulateGradient(w, it, 2, 0.01, &g1);
    fresh.AccumulateGradient(w, it, 2, 0.01, &g2);
    for (std::int64_t i = 0; i < g1.size(); ++i) {
      ASSERT_EQ(g1.data()[i], g2.data()[i]) << "iteration " << it;
    }
  }
}

TEST(RegularizerStateTest, GmLoadStateRejectsBadPayloads) {
  GmRegularizer reg("w", 24, SmallGmOptions());
  EXPECT_EQ(reg.LoadState("not a state line").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.LoadState("").code(), StatusCode::kInvalidArgument);

  // A state saved for a different tensor size must not load.
  GmRegularizer other("w", 12, SmallGmOptions());
  std::string state;
  ASSERT_TRUE(other.SaveState(&state));
  EXPECT_EQ(reg.LoadState(state).code(), StatusCode::kFailedPrecondition);

  // Trailing garbage after a valid state is rejected.
  ASSERT_TRUE(reg.SaveState(&state));
  EXPECT_EQ(reg.LoadState(state + " 1.0").code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Trainer resume: topology checks and crash/resume determinism
// --------------------------------------------------------------------------

struct RunConfig {
  std::string checkpoint_path;
  std::string trace_path;
  int threads = 1;
  int epochs = 6;
  bool resume = false;
};

// One complete training setup, reconstructed identically for every run:
// same init seed, same data-stream seed, same GM config. `resume` overlays
// the checkpoint state before training.
std::vector<EpochStats> RunTraining(const RunConfig& cfg) {
  Rng init_rng(1234);
  Sequential net("net");
  net.Emplace<Dense>("fc1", 8, 6, InitSpec::Gaussian(0.2), &init_rng);
  net.Emplace<Dense>("fc2", 6, 3, InitSpec::Gaussian(0.2), &init_rng);

  TrainOptions opts;
  opts.epochs = cfg.epochs;
  opts.batch_size = 8;
  opts.learning_rate = 0.05;
  opts.lr_schedule = {{4, 0.1}};
  opts.num_train_samples = 64;
  opts.num_threads = cfg.threads;
  opts.metrics_path = cfg.trace_path;
  opts.run_label = "ckpt-test";
  opts.checkpoint_path = cfg.checkpoint_path;
  opts.checkpoint_every = 1;
  Trainer trainer(&net, opts);

  GmOptions gm = SmallGmOptions();
  gm.num_threads = cfg.threads;
  GmRegularizer reg("fc1/weight", 8 * 6, gm);
  trainer.AttachRegularizer("fc1/weight", &reg);

  Rng data_rng(777);
  trainer.SetCheckpointRng(&data_rng);
  if (cfg.resume) {
    Status st = trainer.Resume();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  auto batch_fn = [&](Tensor* input, std::vector<int>* labels) {
    if (input->shape() != std::vector<std::int64_t>{8, 8}) {
      *input = Tensor({8, 8});
    }
    labels->clear();
    for (int i = 0; i < 8; ++i) {
      int y = i % 3;
      labels->push_back(y);
      for (int j = 0; j < 8; ++j) {
        input->At(i, j) = static_cast<float>(data_rng.NextGaussian() +
                                             static_cast<double>(y - 1));
      }
    }
  };
  return trainer.Train(batch_fn, /*batches_per_epoch=*/4);
}

TEST(TrainerResumeTest, NoCheckpointIsNotFound) {
  std::string ckpt = TempPath("cold_start.ckpt");
  std::remove(ckpt.c_str());
  std::remove(PreviousCheckpointPath(ckpt).c_str());
  Rng init_rng(1);
  Sequential net("net");
  net.Emplace<Dense>("fc", 4, 2, InitSpec::Gaussian(0.1), &init_rng);
  TrainOptions opts;
  opts.num_train_samples = 16;
  opts.checkpoint_path = ckpt;
  Trainer trainer(&net, opts);
  EXPECT_EQ(trainer.Resume().code(), StatusCode::kNotFound);
}

TEST(TrainerResumeTest, TopologyMismatchIsFailedPrecondition) {
  std::string ckpt = TempPath("topology.ckpt");
  std::remove(ckpt.c_str());
  std::remove(PreviousCheckpointPath(ckpt).c_str());
  // Produce a real checkpoint from the standard setup.
  RunConfig cfg;
  cfg.checkpoint_path = ckpt;
  cfg.epochs = 1;
  RunTraining(cfg);
  ASSERT_TRUE(FileExists(ckpt));

  // A different architecture must be rejected, not silently loaded.
  Rng init_rng(1);
  Sequential net("net");
  net.Emplace<Dense>("fc", 4, 2, InitSpec::Gaussian(0.1), &init_rng);
  TrainOptions opts;
  opts.num_train_samples = 16;
  opts.checkpoint_path = ckpt;
  Trainer trainer(&net, opts);
  EXPECT_EQ(trainer.Resume().code(), StatusCode::kFailedPrecondition);

  // Same shapes but no regularizer attached where the checkpoint has
  // state: also rejected.
  Rng init_rng2(1234);
  Sequential net2("net");
  net2.Emplace<Dense>("fc1", 8, 6, InitSpec::Gaussian(0.2), &init_rng2);
  net2.Emplace<Dense>("fc2", 6, 3, InitSpec::Gaussian(0.2), &init_rng2);
  Trainer trainer2(&net2, [&] {
    TrainOptions o;
    o.num_train_samples = 64;
    o.checkpoint_path = ckpt;
    return o;
  }());
  EXPECT_EQ(trainer2.Resume().code(), StatusCode::kFailedPrecondition);
}

// Compares two epoch records field by field, skipping wall-clock-derived
// fields (elapsed_seconds and the per-regularizer *_seconds accumulators),
// which legitimately differ between runs.
void ExpectSameDeterministicFields(const std::string& interrupted_line,
                                   const std::string& reference_line,
                                   int epoch) {
  JsonValue a;
  JsonValue b;
  ASSERT_TRUE(JsonValue::Parse(interrupted_line, &a).ok())
      << interrupted_line;
  ASSERT_TRUE(JsonValue::Parse(reference_line, &b).ok()) << reference_line;
  ASSERT_TRUE(a.is_object());
  ASSERT_TRUE(b.is_object());
  ASSERT_EQ(a.members.size(), b.members.size()) << "epoch " << epoch;
  for (const auto& [key, value] : a.members) {
    if (key.find("seconds") != std::string::npos) continue;
    const JsonValue* other = b.Find(key);
    ASSERT_NE(other, nullptr) << "epoch " << epoch << " missing " << key;
    ASSERT_EQ(static_cast<int>(value.kind), static_cast<int>(other->kind))
        << "epoch " << epoch << " field " << key;
    switch (value.kind) {
      case JsonValue::Kind::kNumber:
        EXPECT_EQ(value.number, other->number)
            << "epoch " << epoch << " field " << key
            << " diverged: " << value.number << " vs " << other->number;
        break;
      case JsonValue::Kind::kString:
        EXPECT_EQ(value.string_value, other->string_value)
            << "epoch " << epoch << " field " << key;
        break;
      case JsonValue::Kind::kArray:
        ASSERT_EQ(value.items.size(), other->items.size())
            << "epoch " << epoch << " field " << key;
        for (std::size_t i = 0; i < value.items.size(); ++i) {
          EXPECT_EQ(value.items[i].number, other->items[i].number)
              << "epoch " << epoch << " field " << key << "[" << i << "]";
        }
        break;
      default:
        break;
    }
  }
}

// The tentpole property: kill -9 (via the fault injector's std::_Exit)
// after epoch 2 of 6, resume from the checkpoint, and the concatenated
// trace is bit-identical to an uninterrupted run — loss, penalty, lr,
// learned lambda/pi, lazy-update counters, everything but wall-clock.
void CrashThenResumeCase(int threads, const std::string& tag) {
  std::string ckpt = TempPath("crash_" + tag + ".ckpt");
  std::string ckpt_ref = TempPath("crash_ref_" + tag + ".ckpt");
  std::string trace = TempPath("crash_" + tag + ".jsonl");
  std::string trace_ref = TempPath("crash_ref_" + tag + ".jsonl");
  for (const std::string& p :
       {ckpt, PreviousCheckpointPath(ckpt), ckpt_ref,
        PreviousCheckpointPath(ckpt_ref), trace, trace_ref}) {
    std::remove(p.c_str());
  }

  // "threadsafe" re-executes the binary for the child, so the crashed run
  // happens in a process whose thread pool was never forked mid-flight.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RunConfig crashed;
  crashed.checkpoint_path = ckpt;
  crashed.trace_path = trace;
  crashed.threads = threads;
  EXPECT_EXIT(
      {
        if (!FaultInjector::Global().Configure("crash_after_epoch:2").ok()) {
          std::_Exit(7);
        }
        RunTraining(crashed);
      },
      ::testing::ExitedWithCode(kFaultCrashExitCode), "");

  // The killed process left a checkpoint at epoch 3 and flushed trace
  // lines for epochs 0..2.
  ASSERT_TRUE(FileExists(ckpt));
  ASSERT_EQ(ReadLines(trace).size(), 3u);

  RunConfig resumed = crashed;
  resumed.resume = true;
  std::vector<EpochStats> tail = RunTraining(resumed);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().epoch, 3);

  RunConfig reference;
  reference.checkpoint_path = ckpt_ref;
  reference.trace_path = trace_ref;
  reference.threads = threads;
  std::vector<EpochStats> full = RunTraining(reference);
  ASSERT_EQ(full.size(), 6u);

  std::vector<std::string> lines = ReadLines(trace);
  std::vector<std::string> ref_lines = ReadLines(trace_ref);
  ASSERT_EQ(lines.size(), 6u) << "resumed trace must append, not truncate";
  ASSERT_EQ(ref_lines.size(), 6u);
  for (int e = 0; e < 6; ++e) {
    ExpectSameDeterministicFields(lines[static_cast<std::size_t>(e)],
                                  ref_lines[static_cast<std::size_t>(e)], e);
  }

  // The in-memory stats agree too (stronger than the trace on its own).
  for (int e = 0; e < 3; ++e) {
    EXPECT_EQ(tail[static_cast<std::size_t>(e)].mean_loss,
              full[static_cast<std::size_t>(e + 3)].mean_loss)
        << "epoch " << e + 3;
    EXPECT_EQ(tail[static_cast<std::size_t>(e)].penalty,
              full[static_cast<std::size_t>(e + 3)].penalty)
        << "epoch " << e + 3;
  }
}

// --------------------------------------------------------------------------
// Model-only snapshots (the serving layer's view, src/serve)
// --------------------------------------------------------------------------

TEST(ModelSnapshotTest, ParsesTheModelHalfOfACheckpoint) {
  TrainingCheckpoint ckpt = MakeCheckpoint();
  std::string text = SerializeCheckpoint(ckpt);
  ModelSnapshot snap;
  Status st = ParseModelSnapshot(text, &snap);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(snap.epoch, ckpt.epoch);
  EXPECT_EQ(snap.iteration, ckpt.iteration);
  ASSERT_EQ(snap.param_names, ckpt.param_names);
  ASSERT_EQ(snap.params.size(), ckpt.params.size());
  for (std::size_t i = 0; i < ckpt.params.size(); ++i) {
    ExpectTensorsEqual(snap.params[i], ckpt.params[i]);
  }
  EXPECT_NE(snap.fingerprint, 0u);
  // The fingerprint is the change detector: identical text, identical
  // fingerprint; any edit, a different one.
  ModelSnapshot again;
  ASSERT_TRUE(ParseModelSnapshot(text, &again).ok());
  EXPECT_EQ(again.fingerprint, snap.fingerprint);
  ckpt.epoch += 1;
  ASSERT_TRUE(ParseModelSnapshot(SerializeCheckpoint(ckpt), &again).ok());
  EXPECT_NE(again.fingerprint, snap.fingerprint);
}

TEST(ModelSnapshotTest, OptimizerCorruptionDoesNotBlockModelOnlyLoads) {
  // The ISSUE 4 negative test: damage ONLY the optimizer state (a `vel`
  // momentum line). The strict training load must reject the file; the
  // model-only load must salvage the intact weights.
  std::string path = TempPath("model_salvage.ckpt");
  std::remove(PreviousCheckpointPath(path).c_str());
  TrainingCheckpoint ckpt = MakeCheckpoint();
  std::string text = SerializeCheckpoint(ckpt);
  std::size_t vel_pos = text.find("\nvel ");
  ASSERT_NE(vel_pos, std::string::npos);
  // Corrupt the first velocity value (keep the "vel <name> <rank>" prefix
  // intact so only the numbers are damaged, as bit rot would).
  std::size_t line_end = text.find('\n', vel_pos + 1);
  std::string vel_line = text.substr(vel_pos + 1, line_end - vel_pos - 1);
  std::string damaged_line = vel_line;
  damaged_line.replace(damaged_line.size() - 8, 8, "#garbage");
  std::string damaged = text;
  damaged.replace(vel_pos + 1, vel_line.size(), damaged_line);
  std::ofstream(path, std::ios::binary) << damaged;

  TrainingCheckpoint strict;
  EXPECT_EQ(LoadCheckpoint(path, &strict).code(),
            StatusCode::kInvalidArgument);

  std::int64_t salvages_before = CounterValue("gm.checkpoint_model_salvages");
  ModelSnapshot snap;
  Status st = LoadModelSnapshot(path, &snap);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(snap.param_names, ckpt.param_names);
  for (std::size_t i = 0; i < ckpt.params.size(); ++i) {
    ExpectTensorsEqual(snap.params[i], ckpt.params[i]);
  }
  EXPECT_EQ(CounterValue("gm.checkpoint_model_salvages"),
            salvages_before + 1);
}

TEST(ModelSnapshotTest, DamagedParamLineStillFailsTheModelLoad) {
  // Salvage is blind to optimizer state, NOT to the weights themselves.
  std::string path = TempPath("model_param_damage.ckpt");
  std::remove(PreviousCheckpointPath(path).c_str());
  std::string text = SerializeCheckpoint(MakeCheckpoint());
  std::size_t param_pos = text.find("param fc1/weight");
  ASSERT_NE(param_pos, std::string::npos);
  std::string damaged = text;
  damaged.replace(param_pos + 20, 3, "NaN");
  std::ofstream(path, std::ios::binary) << damaged;
  ModelSnapshot snap;
  EXPECT_FALSE(LoadModelSnapshot(path, &snap).ok());
}

TEST(ModelSnapshotTest, FallsBackToPrevWhenPrimaryIsUnusable) {
  std::string path = TempPath("model_fallback.ckpt");
  TrainingCheckpoint old_ckpt = MakeCheckpoint();
  old_ckpt.epoch = 3;
  ASSERT_TRUE(SaveCheckpoint(old_ckpt, path).ok());
  TrainingCheckpoint new_ckpt = MakeCheckpoint();
  new_ckpt.epoch = 4;
  ASSERT_TRUE(SaveCheckpoint(new_ckpt, path).ok());  // rotates 3 to .prev
  std::ofstream(path, std::ios::trunc) << "gmckpt v2\nshredded\n";
  std::int64_t fallback_before =
      CounterValue("gm.checkpoint_model_fallback_loads");
  ModelSnapshot snap;
  Status st = LoadModelSnapshot(path, &snap);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(snap.epoch, 3);
  EXPECT_EQ(CounterValue("gm.checkpoint_model_fallback_loads"),
            fallback_before + 1);
}

TEST(ModelSnapshotTest, MissingEverythingIsNotFound) {
  std::string path = TempPath("model_nothing_here.ckpt");
  std::remove(path.c_str());
  std::remove(PreviousCheckpointPath(path).c_str());
  ModelSnapshot snap;
  EXPECT_EQ(LoadModelSnapshot(path, &snap).code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------------------
// All-regularizer checkpoint round-trip: for every factory-registered
// prior, a SaveState line embedded in a TrainingCheckpoint survives
// rotation and a one-byte corruption of the latest file (recovery falls
// back to .prev), and replaying the lost steps from the fallback state
// reproduces the original trajectory bit-for-bit.
// --------------------------------------------------------------------------

// Mirrors the property suite's mini-SGD trajectory (serial weight update,
// epoch = iteration/8, scale = 1/256) so the two batteries exercise the
// priors identically.
void StepRegularizer(Regularizer* reg, Tensor* w, int steps, int start_it) {
  Tensor grad(w->shape());
  for (int s = 0; s < steps; ++s) {
    std::int64_t it = start_it + s;
    grad.SetZero();
    reg->AccumulateGradient(*w, it, it / 8, 1.0 / 256.0, &grad);
    float* wp = w->data();
    const float* gp = grad.data();
    for (std::int64_t i = 0; i < w->size(); ++i) wp[i] -= 0.05f * gp[i];
  }
}

TEST(RegFamilyCheckpointTest, CorruptLatestFallsBackAndReplaysBitExact) {
  constexpr std::int64_t kDims = 513;
  for (const std::string& config : RegularizerExampleConfigs()) {
    SCOPED_TRACE(config);
    std::string path = TempPath("reg_family.ckpt");
    std::remove(path.c_str());
    std::remove(PreviousCheckpointPath(path).c_str());

    std::unique_ptr<Regularizer> reg;
    ASSERT_TRUE(MakeRegularizerFromConfig(config, kDims, &reg).ok());
    Tensor w = gmreg::testing::MakeBimodalWeightTensor(kDims, 101);

    // 5 steps, checkpoint; 2 more steps, checkpoint again (rotates the
    // first snapshot to .prev).
    StepRegularizer(reg.get(), &w, 5, 0);
    TrainingCheckpoint ckpt5;
    ckpt5.epoch = 1;
    ckpt5.iteration = 5;
    ckpt5.param_names = {"w"};
    ckpt5.params = {w};
    ckpt5.velocity = {Tensor(w.shape())};
    std::string state5;
    bool has_state = reg->SaveState(&state5);
    if (has_state) ckpt5.reg_states.emplace_back("w", state5);
    ASSERT_TRUE(SaveCheckpoint(ckpt5, path).ok());

    StepRegularizer(reg.get(), &w, 2, 5);
    TrainingCheckpoint ckpt7 = ckpt5;
    ckpt7.epoch = 2;
    ckpt7.iteration = 7;
    ckpt7.params = {w};
    std::string state7;
    reg->SaveState(&state7);
    ckpt7.reg_states.clear();
    if (has_state) ckpt7.reg_states.emplace_back("w", state7);
    ASSERT_TRUE(SaveCheckpoint(ckpt7, path).ok());

    // Flip one byte in the middle of the latest file: the checksum trailer
    // must catch it and recovery must fall back to the .prev snapshot.
    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] ^= 0x20;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << bytes;
    }

    TrainingCheckpoint recovered;
    Status st = LoadLatestValidCheckpoint(path, &recovered);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(recovered.epoch, 1);
    EXPECT_EQ(recovered.iteration, 5);
    ASSERT_EQ(recovered.reg_states.size(), has_state ? 1u : 0u);

    // Resume: fresh regularizer + fallback state + the recovered weights,
    // replay the 2 lost steps. Weights must match the original run
    // bit-for-bit; so must the state line for priors whose SaveState is a
    // pure function of the trajectory (the GM record embeds wall-clock
    // E/M-step seconds and is compared behaviorally by the property suite).
    std::unique_ptr<Regularizer> resumed;
    ASSERT_TRUE(MakeRegularizerFromConfig(config, kDims, &resumed).ok());
    if (has_state) {
      EXPECT_EQ(recovered.reg_states[0].first, "w");
      Status load = resumed->LoadState(recovered.reg_states[0].second);
      ASSERT_TRUE(load.ok()) << load.ToString();
    }
    Tensor w_resumed = recovered.params[0];
    StepRegularizer(resumed.get(), &w_resumed, 2, 5);
    gmreg::testing::ExpectTensorBitwiseEqual(w, w_resumed,
                                             config + " replayed weights");
    if (config.compare(0, 3, "gm:") != 0 && config != "gm") {
      std::string replayed;
      EXPECT_EQ(resumed->SaveState(&replayed), has_state);
      EXPECT_EQ(replayed, state7) << config;
    }
  }
}

// A state line from one prior must not load into another: the magic (and
// for EP-GIG the mode tag) pins each record to its kind.
TEST(RegFamilyCheckpointTest, StateLinesRejectCrossKindLoads) {
  constexpr std::int64_t kDims = 64;
  std::vector<std::string> stateful_configs;
  std::vector<std::string> states;
  for (const std::string& config : RegularizerExampleConfigs()) {
    std::unique_ptr<Regularizer> reg;
    ASSERT_TRUE(MakeRegularizerFromConfig(config, kDims, &reg).ok());
    std::string state;
    if (reg->SaveState(&state)) {
      stateful_configs.push_back(config);
      states.push_back(state);
    }
  }
  ASSERT_GE(stateful_configs.size(), 4u)
      << "expected gm, epgig (x2) and dynprior to be stateful";
  for (std::size_t i = 0; i < stateful_configs.size(); ++i) {
    for (std::size_t j = 0; j < states.size(); ++j) {
      if (i == j) continue;
      std::unique_ptr<Regularizer> reg;
      ASSERT_TRUE(
          MakeRegularizerFromConfig(stateful_configs[i], kDims, &reg).ok());
      EXPECT_FALSE(reg->LoadState(states[j]).ok())
          << stateful_configs[i] << " accepted state from "
          << stateful_configs[j];
    }
  }
}

TEST(TrainerCrashResumeTest, BitExactTraceSingleThread) {
  CrashThenResumeCase(1, "t1");
}

TEST(TrainerCrashResumeTest, BitExactTraceFourThreads) {
  CrashThenResumeCase(4, "t4");
  // Restore the serial default so later tests in this binary are unaffected
  // by the process-wide thread budget the 4-thread trainers installed.
  SetDefaultNumThreads(1);
}

}  // namespace
}  // namespace gmreg
