// Additional behavioural coverage: augmentation correctness, LR schedule
// semantics, parameter-collection ordering, and deep-experiment
// reproducibility.

#include <cmath>

#include "data/cifar_like.h"
#include "eval/deep_experiment.h"
#include "gtest/gtest.h"
#include "models/logistic_regression.h"
#include "models/resnet.h"
#include "tensor/tensor_ops.h"

namespace gmreg {
namespace {

CifarLikePair TinyImages(std::uint64_t seed) {
  CifarLikeSpec spec;
  spec.num_train = 8;
  spec.num_test = 4;
  spec.height = 8;
  spec.width = 8;
  spec.pixel_noise = 0.2;
  return MakeCifarLike(spec, seed);
}

TEST(AugmentationTest, ZeroPadIsSourceOrMirror) {
  CifarLikePair pair = TinyImages(3);
  std::int64_t chw = 3 * 8 * 8;
  // With pad = 0 the only augmentation left is the horizontal flip, so the
  // output must equal the source exactly or its mirror exactly.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    Tensor out({1, 3, 8, 8});
    std::vector<int> labels;
    GatherImageBatch(pair.train, {1}, /*augment=*/true, /*pad=*/0, &rng,
                     &out, &labels);
    const float* src = pair.train.images.data() + 1 * chw;
    bool identical = true;
    bool mirrored = true;
    for (int c = 0; c < 3; ++c) {
      for (int r = 0; r < 8; ++r) {
        for (int col = 0; col < 8; ++col) {
          float got = out[(c * 8 + r) * 8 + col];
          if (got != src[(c * 8 + r) * 8 + col]) identical = false;
          if (got != src[(c * 8 + r) * 8 + (7 - col)]) mirrored = false;
        }
      }
    }
    EXPECT_TRUE(identical || mirrored) << "seed " << seed;
  }
}

TEST(AugmentationTest, ShiftMovesContentNotValues) {
  CifarLikePair pair = TinyImages(5);
  Rng rng(11);
  Tensor out({1, 3, 8, 8});
  std::vector<int> labels;
  GatherImageBatch(pair.train, {0}, true, /*pad=*/3, &rng, &out, &labels);
  // Every non-zero output pixel must equal SOME source pixel (pure
  // translation + flip, no interpolation).
  std::int64_t chw = 3 * 8 * 8;
  const float* src = pair.train.images.data();
  for (std::int64_t p = 0; p < chw; ++p) {
    if (out[p] == 0.0f) continue;
    bool found = false;
    for (std::int64_t q = 0; q < chw && !found; ++q) {
      if (out[p] == src[q]) found = true;
    }
    EXPECT_TRUE(found) << "pixel " << p;
  }
}

TEST(LrScheduleTest, DropFreezesProgressWhenFactorZero) {
  Rng rng(7);
  Dataset data;
  data.features = Tensor({40, 2});
  for (int i = 0; i < 40; ++i) {
    data.features.At(i, 0) = static_cast<float>(rng.NextGaussian());
    data.features.At(i, 1) = static_cast<float>(rng.NextGaussian());
    data.labels.push_back(data.features.At(i, 0) > 0 ? 1 : 0);
  }
  LogisticRegression::Options opts;
  opts.epochs = 10;
  opts.lr_drops = {{0.0, 0.0}};  // lr = 0 from epoch 0: nothing can move
  Rng train_rng(9);
  LogisticRegression model(2, opts, &train_rng);
  Tensor before = model.weights();
  model.Train(data, nullptr, &train_rng);
  for (std::int64_t i = 0; i < 2; ++i) {
    EXPECT_EQ(model.weights()[i], before[i]);
  }
}

TEST(LrScheduleTest, DefaultDropsImproveSmallDataConvergence) {
  Rng rng(13);
  Dataset data;
  data.features = Tensor({120, 6});
  for (int i = 0; i < 120; ++i) {
    double logit = 0.0;
    for (int j = 0; j < 6; ++j) {
      double v = rng.NextGaussian();
      data.features.At(i, j) = static_cast<float>(v);
      logit += (j < 2 ? 1.0 : 0.05) * v;
    }
    data.labels.push_back(logit + rng.NextGaussian(0.0, 0.3) > 0 ? 1 : 0);
  }
  auto run = [&](const std::vector<std::pair<double, double>>& drops) {
    double total = 0.0;
    for (std::uint64_t seed = 15; seed < 20; ++seed) {
      LogisticRegression::Options opts;
      opts.epochs = 60;
      opts.lr_drops = drops;
      Rng train_rng(seed);
      LogisticRegression model(6, opts, &train_rng);
      model.Train(data, nullptr, &train_rng);
      total += model.EvaluateLoss(data);
    }
    return total / 5.0;
  };
  // Annealed SGD ends closer to the optimum than constant-lr SGD on
  // average; a per-seed comparison would be noise-dominated.
  EXPECT_LT(run({{0.6, 0.2}, {0.85, 0.2}}), run({}) + 0.01);
}

TEST(ParamOrderTest, CollectParamsIsDeterministicDepthFirst) {
  Rng rng_a(21), rng_b(21);
  ResNetConfig cfg;
  cfg.blocks_per_stage = 1;
  auto net_a = BuildResNet(cfg, &rng_a);
  auto net_b = BuildResNet(cfg, &rng_b);
  std::vector<ParamRef> pa, pb;
  net_a->CollectParams(&pa);
  net_b->CollectParams(&pb);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].name, pb[i].name) << i;
  }
  // First and last entries anchor the depth-first order.
  EXPECT_EQ(pa.front().name, "conv1/weight");
  EXPECT_EQ(pa.back().name, "ip5/bias");
}

TEST(DeepExperimentTest, SameSeedSameResult) {
  CifarLikePair data = TinyImages(31);
  DeepExperimentOptions opts;
  opts.model = DeepModel::kAlexCifar10;
  opts.input_hw = 8;
  opts.epochs = 2;
  opts.batch_size = 4;
  opts.learning_rate = 0.01;
  opts.seed = 77;
  auto a = RunDeepExperiment(data, opts, DeepRegKind::kL2);
  auto b = RunDeepExperiment(data, opts, DeepRegKind::kL2);
  EXPECT_DOUBLE_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_DOUBLE_EQ(a.epoch_stats.back().mean_loss,
                   b.epoch_stats.back().mean_loss);
}

TEST(DeepExperimentTest, DifferentSeedDifferentTrajectory) {
  CifarLikePair data = TinyImages(33);
  DeepExperimentOptions opts;
  opts.model = DeepModel::kAlexCifar10;
  opts.input_hw = 8;
  opts.epochs = 2;
  opts.batch_size = 4;
  opts.learning_rate = 0.01;
  opts.seed = 1;
  auto a = RunDeepExperiment(data, opts, DeepRegKind::kNone);
  opts.seed = 2;
  auto b = RunDeepExperiment(data, opts, DeepRegKind::kNone);
  EXPECT_NE(a.epoch_stats.back().mean_loss, b.epoch_stats.back().mean_loss);
}

}  // namespace
}  // namespace gmreg
