// Statistical properties of the synthetic generators: the calibrated
// quantities (noise rates, balance, category uniformity) that make the
// stand-ins behave like the paper's datasets.

#include <cmath>
#include <map>

#include "data/preprocess.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "models/logistic_regression.h"
#include "util/rng.h"

namespace gmreg {
namespace {

TEST(GeneratorDistributionTest, ContinuousColumnsHaveDeclaredSpread) {
  // Columns are affine transforms of N(0,1) with mu in [-2,2] and sigma in
  // [0.5,3]: sample moments must land inside (slightly padded) bounds.
  TabularData data = MakeUciLike("conn-sonar", 5);  // 60 continuous columns
  for (const Column& col : data.columns) {
    ASSERT_EQ(col.type, ColumnType::kContinuous);
    double sum = 0.0, sum_sq = 0.0;
    for (double v : col.values) {
      sum += v;
      sum_sq += v * v;
    }
    double n = static_cast<double>(col.values.size());
    double mean = sum / n;
    double sd = std::sqrt(std::max(0.0, sum_sq / n - mean * mean));
    EXPECT_GT(mean, -2.8);
    EXPECT_LT(mean, 2.8);
    EXPECT_GT(sd, 0.35);
    EXPECT_LT(sd, 3.6);
  }
}

TEST(GeneratorDistributionTest, CategoriesApproximatelyUniform) {
  TabularData data = MakeUciLike("breast-canc", 7);  // 9 columns x 9 cats
  for (const Column& col : data.columns) {
    ASSERT_EQ(col.type, ColumnType::kCategorical);
    std::map<int, int> counts;
    for (double v : col.values) counts[static_cast<int>(v)]++;
    double expected =
        static_cast<double>(col.values.size()) / col.cardinality;
    for (const auto& [cat, count] : counts) {
      (void)cat;
      // Uniform multinomial: allow +/- 5 sigma.
      double sigma = std::sqrt(expected * (1.0 - 1.0 / col.cardinality));
      EXPECT_NEAR(count, expected, 5.0 * sigma);
    }
  }
}

TEST(GeneratorDistributionTest, BayesCeilingTracksLabelNoise) {
  // An oracle that knows the planted weights cannot beat 1 - label_noise
  // by construction; a trained LR on LOTS of samples should land within a
  // few points of that ceiling. Use climate-model's spec scaled up.
  TabularSpec spec = UciSpec("climate-model");  // label_noise 0.022
  spec.name = "climate-model-big";
  spec.num_samples = 6000;
  TabularData raw = MakeTabular(spec, 3);
  Preprocessor prep;
  Dataset all = prep.FitTransformAll(raw);
  Dataset train = SelectRows(all, [&] {
    std::vector<int> idx;
    for (int i = 0; i < 5000; ++i) idx.push_back(i);
    return idx;
  }());
  Dataset test = SelectRows(all, [&] {
    std::vector<int> idx;
    for (int i = 5000; i < 6000; ++i) idx.push_back(i);
    return idx;
  }());
  LogisticRegression::Options opts;
  opts.epochs = 30;
  Rng rng(9);
  LogisticRegression model(train.num_features(), opts, &rng);
  model.Train(train, nullptr, &rng);
  double acc = model.EvaluateAccuracy(test);
  EXPECT_GT(acc, 1.0 - spec.label_noise - 0.08);
  EXPECT_LE(acc, 1.0);
}

TEST(GeneratorDistributionTest, DifferentDatasetsAreDecorrelated) {
  // Same seed, different names: the FNV name hash must give independent
  // streams, so labels should not coincide beyond chance.
  TabularData a = MakeUciLike("breast-canc-dia", 9);
  TabularData b = MakeUciLike("climate-model", 9);
  std::size_t n = std::min(a.labels.size(), b.labels.size());
  int agree = 0;
  for (std::size_t i = 0; i < n; ++i) {
    agree += a.labels[i] == b.labels[i];
  }
  double rate = static_cast<double>(agree) / static_cast<double>(n);
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

TEST(GeneratorDistributionTest, HospFaHasPredictiveAndNoisyFeatures) {
  // Sec. V-A(2): Hosp-FA's planted weights are two-scale. Train on the full
  // dataset and verify the learned weights show the spread: the top decile
  // of |w| is much larger than the median.
  TabularData raw = MakeHospFaLike(4);
  Preprocessor prep;
  Dataset all = prep.FitTransformAll(raw);
  LogisticRegression::Options opts;
  opts.epochs = 40;
  Rng rng(11);
  LogisticRegression model(all.num_features(), opts, &rng);
  model.Train(all, nullptr, &rng);
  std::vector<float> mags;
  for (std::int64_t i = 0; i < model.weights().size(); ++i) {
    mags.push_back(std::fabs(model.weights()[i]));
  }
  std::sort(mags.begin(), mags.end());
  float median = mags[mags.size() / 2];
  float p90 = mags[mags.size() * 9 / 10];
  EXPECT_GT(p90, 2.5f * median);
}

}  // namespace
}  // namespace gmreg
