#include <algorithm>
#include <numeric>
#include <set>

#include "data/batch.h"
#include "data/cifar_like.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tabular.h"
#include "gtest/gtest.h"

namespace gmreg {
namespace {

TabularData TinyRaw() {
  // Two continuous columns (one with a missing entry) + one 3-way
  // categorical with a missing entry (assigned category 2).
  TabularData raw;
  raw.name = "tiny";
  Column c0;
  c0.type = ColumnType::kContinuous;
  c0.values = {1.0, 2.0, 3.0, 4.0};
  c0.missing = {false, false, false, false};
  Column c1;
  c1.type = ColumnType::kContinuous;
  c1.values = {10.0, 0.0, 30.0, 20.0};
  c1.missing = {false, true, false, false};
  Column c2;
  c2.type = ColumnType::kCategorical;
  c2.cardinality = 3;
  c2.values = {0.0, 1.0, 0.0, 0.0};
  c2.missing = {false, false, false, true};
  raw.columns = {c0, c1, c2};
  raw.labels = {0, 1, 0, 1};
  return raw;
}

TEST(TabularTest, EncodedWidthAndFeatureType) {
  TabularData raw = TinyRaw();
  EXPECT_EQ(raw.EncodedWidth(), 5);  // 2 continuous + card-3 one-hot
  EXPECT_EQ(raw.FeatureTypeString(), "combined");
  EXPECT_TRUE(raw.Validate().ok());
}

TEST(TabularTest, ValidateCatchesLengthMismatch) {
  TabularData raw = TinyRaw();
  raw.columns[0].values.pop_back();
  EXPECT_FALSE(raw.Validate().ok());
}

TEST(TabularTest, ValidateCatchesBadCategory) {
  TabularData raw = TinyRaw();
  raw.columns[2].values[0] = 7.0;
  EXPECT_EQ(raw.Validate().code(), StatusCode::kOutOfRange);
}

TEST(TabularTest, ValidateCatchesNonBinaryLabel) {
  TabularData raw = TinyRaw();
  raw.labels[0] = 2;
  EXPECT_EQ(raw.Validate().code(), StatusCode::kOutOfRange);
}

TEST(PreprocessorTest, StandardizesContinuousOnTrainStats) {
  TabularData raw = TinyRaw();
  Preprocessor prep;
  std::vector<int> all = {0, 1, 2, 3};
  ASSERT_TRUE(prep.Fit(raw, all).ok());
  Dataset d = prep.Transform(raw, all);
  EXPECT_EQ(d.num_samples(), 4);
  EXPECT_EQ(d.num_features(), 5);
  // Column 0 standardized: mean 2.5, values symmetric.
  double mean = 0.0;
  for (int i = 0; i < 4; ++i) mean += d.features.At(i, 0);
  EXPECT_NEAR(mean, 0.0, 1e-5);
  double var = 0.0;
  for (int i = 0; i < 4; ++i) var += d.features.At(i, 0) * d.features.At(i, 0);
  EXPECT_NEAR(var / 4.0, 1.0, 1e-5);
}

TEST(PreprocessorTest, ImputesMissingContinuousToZero) {
  TabularData raw = TinyRaw();
  Preprocessor prep;
  std::vector<int> all = {0, 1, 2, 3};
  ASSERT_TRUE(prep.Fit(raw, all).ok());
  Dataset d = prep.Transform(raw, all);
  // Row 1, column 1 is missing -> imputed with train mean -> standardized 0.
  EXPECT_FLOAT_EQ(d.features.At(1, 1), 0.0f);
}

TEST(PreprocessorTest, OneHotEncodingWithMissingCategory) {
  TabularData raw = TinyRaw();
  Preprocessor prep;
  std::vector<int> all = {0, 1, 2, 3};
  ASSERT_TRUE(prep.Fit(raw, all).ok());
  Dataset d = prep.Transform(raw, all);
  // Row 0: category 0 -> [1,0,0] at offsets 2..4.
  EXPECT_FLOAT_EQ(d.features.At(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(d.features.At(0, 3), 0.0f);
  // Row 3: missing -> last category [0,0,1].
  EXPECT_FLOAT_EQ(d.features.At(3, 4), 1.0f);
  EXPECT_FLOAT_EQ(d.features.At(3, 2), 0.0f);
}

TEST(PreprocessorTest, FitOnSubsetOnly) {
  TabularData raw = TinyRaw();
  Preprocessor prep;
  ASSERT_TRUE(prep.Fit(raw, {0, 1}).ok());
  Dataset d = prep.Transform(raw, {0, 1, 2, 3});
  // Column 0 train stats from rows {0,1}: mean 1.5, std 0.5.
  EXPECT_NEAR(d.features.At(0, 0), -1.0f, 1e-5);
  EXPECT_NEAR(d.features.At(3, 0), 5.0f, 1e-5);
}

TEST(PreprocessorTest, FitRequiresRows) {
  TabularData raw = TinyRaw();
  Preprocessor prep;
  EXPECT_FALSE(prep.Fit(raw, {}).ok());
}

TEST(DatasetTest, SelectRowsCopies) {
  TabularData raw = TinyRaw();
  Preprocessor prep;
  Dataset d = prep.FitTransformAll(raw);
  Dataset sub = SelectRows(d, {2, 0});
  EXPECT_EQ(sub.num_samples(), 2);
  EXPECT_EQ(sub.labels[0], 0);
  EXPECT_FLOAT_EQ(sub.features.At(0, 2), d.features.At(2, 2));
}

TEST(DatasetTest, ClassCounts) {
  std::vector<int> labels = {0, 1, 1, 0, 1};
  std::vector<int> counts = ClassCounts(labels, 2);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 3);
}

TEST(SplitTest, StratifiedSplitPreservesClassRatio) {
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) labels.push_back(0);
  for (int i = 0; i < 50; ++i) labels.push_back(1);
  Rng rng(7);
  TrainTestIndices split = StratifiedSplit(labels, 0.2, &rng);
  EXPECT_EQ(split.train.size() + split.test.size(), labels.size());
  int test0 = 0, test1 = 0;
  for (int idx : split.test) (labels[static_cast<std::size_t>(idx)] == 0 ? test0 : test1)++;
  EXPECT_EQ(test0, 20);
  EXPECT_EQ(test1, 10);
}

TEST(SplitTest, TrainTestDisjoint) {
  std::vector<int> labels(37);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 2;
  Rng rng(9);
  TrainTestIndices split = StratifiedSplit(labels, 0.25, &rng);
  std::set<int> train(split.train.begin(), split.train.end());
  for (int idx : split.test) EXPECT_EQ(train.count(idx), 0u);
}

TEST(SplitTest, KFoldPartitionsEverything) {
  std::vector<int> labels(53);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 2;
  Rng rng(11);
  auto rounds = StratifiedKFold(labels, 5, &rng);
  ASSERT_EQ(rounds.size(), 5u);
  std::set<int> all_val;
  for (const auto& round : rounds) {
    EXPECT_EQ(round.train.size() + round.test.size(), labels.size());
    std::set<int> train(round.train.begin(), round.train.end());
    for (int idx : round.test) {
      EXPECT_EQ(train.count(idx), 0u);
      EXPECT_TRUE(all_val.insert(idx).second) << "fold overlap at " << idx;
    }
  }
  EXPECT_EQ(all_val.size(), labels.size());
}

TEST(SplitTest, KFoldKeepsClassBalancePerFold) {
  std::vector<int> labels(100);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i < 60 ? 0 : 1;
  Rng rng(13);
  auto rounds = StratifiedKFold(labels, 5, &rng);
  for (const auto& round : rounds) {
    int c0 = 0, c1 = 0;
    for (int idx : round.test) (labels[static_cast<std::size_t>(idx)] == 0 ? c0 : c1)++;
    EXPECT_EQ(c0, 12);
    EXPECT_EQ(c1, 8);
  }
}

TEST(BatchIteratorTest, CoversEverySampleEachEpoch) {
  Rng rng(17);
  BatchIterator it(23, 5, &rng);
  EXPECT_EQ(it.NumBatches(), 5);
  std::set<int> seen;
  for (int b = 0; b < 5; ++b) {
    for (int idx : it.Next()) EXPECT_TRUE(seen.insert(idx).second);
  }
  EXPECT_EQ(seen.size(), 23u);
  EXPECT_TRUE(it.EpochDone());
}

TEST(BatchIteratorTest, ReshufflesBetweenEpochs) {
  Rng rng(19);
  BatchIterator it(50, 50, &rng);
  std::vector<int> first = it.Next();
  std::vector<int> second = it.Next();
  EXPECT_NE(first, second);  // astronomically unlikely to match
}

TEST(SyntheticTest, UciNamesMatchTable2Order) {
  const auto& names = UciDatasetNames();
  ASSERT_EQ(names.size(), 11u);
  EXPECT_EQ(names.front(), "breast-canc");
  EXPECT_EQ(names.back(), "ionosphere");
}

struct Table2Row {
  const char* name;
  int samples;
  int features;
  const char* type;
};

class Table2Test : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Test, GeneratorMatchesPaperCharacteristics) {
  const Table2Row& row = GetParam();
  TabularData data = MakeUciLike(row.name, 1);
  EXPECT_EQ(data.num_samples(), row.samples);
  EXPECT_EQ(data.EncodedWidth(), row.features);
  EXPECT_EQ(data.FeatureTypeString(), row.type);
  EXPECT_TRUE(data.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, Table2Test,
    ::testing::Values(Table2Row{"breast-canc", 699, 81, "categorical"},
                      Table2Row{"breast-canc-dia", 569, 30, "continuous"},
                      Table2Row{"breast-canc-pro", 198, 33, "continuous"},
                      Table2Row{"climate-model", 540, 18, "continuous"},
                      Table2Row{"congress-voting", 435, 32, "categorical"},
                      Table2Row{"conn-sonar", 208, 60, "continuous"},
                      Table2Row{"credit-approval", 690, 42, "combined"},
                      Table2Row{"cylindar-bands", 541, 93, "combined"},
                      Table2Row{"hepatitis", 155, 34, "combined"},
                      Table2Row{"horse-colic", 368, 58, "combined"},
                      Table2Row{"ionosphere", 351, 33, "combined"}),
    [](const ::testing::TestParamInfo<Table2Row>& info) {
      std::string name = info.param.name;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(SyntheticTest, HospFaMatchesPaperDimensions) {
  TabularData data = MakeHospFaLike(1);
  EXPECT_EQ(data.num_samples(), 1755);
  EXPECT_EQ(data.EncodedWidth(), 375);
  EXPECT_TRUE(data.Validate().ok());
}

TEST(SyntheticTest, DeterministicInSeed) {
  TabularData a = MakeUciLike("conn-sonar", 5);
  TabularData b = MakeUciLike("conn-sonar", 5);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.columns[3].values, b.columns[3].values);
  TabularData c = MakeUciLike("conn-sonar", 6);
  EXPECT_NE(a.labels, c.labels);
}

TEST(SyntheticTest, ClassesRoughlyBalanced) {
  TabularData data = MakeUciLike("credit-approval", 2);
  auto counts = ClassCounts(data.labels, 2);
  double ratio = static_cast<double>(counts[0]) /
                 static_cast<double>(data.num_samples());
  EXPECT_GT(ratio, 0.35);
  EXPECT_LT(ratio, 0.65);
}

TEST(SyntheticTest, MissingRateApproximatelyRespected) {
  TabularData data = MakeUciLike("horse-colic", 3);  // missing_rate 0.2
  std::int64_t missing = 0, total = 0;
  for (const Column& col : data.columns) {
    if (col.type != ColumnType::kContinuous) continue;
    for (bool m : col.missing) {
      missing += m;
      ++total;
    }
  }
  double rate = static_cast<double>(missing) / static_cast<double>(total);
  EXPECT_NEAR(rate, 0.2, 0.05);
}

TEST(CifarLikeTest, ShapesAndDeterminism) {
  CifarLikeSpec spec;
  spec.num_train = 64;
  spec.num_test = 32;
  spec.height = 12;
  spec.width = 12;
  CifarLikePair a = MakeCifarLike(spec, 7);
  EXPECT_EQ(a.train.num_samples(), 64);
  EXPECT_EQ(a.test.num_samples(), 32);
  EXPECT_EQ(a.train.channels(), 3);
  EXPECT_EQ(a.train.height(), 12);
  CifarLikePair b = MakeCifarLike(spec, 7);
  EXPECT_EQ(a.train.labels, b.train.labels);
  EXPECT_FLOAT_EQ(a.train.images[100], b.train.images[100]);
}

TEST(CifarLikeTest, TrainSetIsPerPixelMeanSubtracted) {
  CifarLikeSpec spec;
  spec.num_train = 200;
  spec.num_test = 10;
  spec.height = 8;
  spec.width = 8;
  CifarLikePair pair = MakeCifarLike(spec, 9);
  std::int64_t chw = pair.train.images.size() / pair.train.num_samples();
  for (std::int64_t p = 0; p < chw; p += 17) {
    double mean = 0.0;
    for (std::int64_t i = 0; i < pair.train.num_samples(); ++i) {
      mean += pair.train.images[i * chw + p];
    }
    mean /= static_cast<double>(pair.train.num_samples());
    EXPECT_NEAR(mean, 0.0, 1e-4);
  }
}

TEST(CifarLikeTest, AllClassesPresent) {
  CifarLikeSpec spec;
  spec.num_train = 300;
  spec.num_test = 10;
  spec.height = 8;
  spec.width = 8;
  CifarLikePair pair = MakeCifarLike(spec, 11);
  auto counts = ClassCounts(pair.train.labels, 10);
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(GatherBatchTest, ImageBatchWithoutAugmentationCopies) {
  CifarLikeSpec spec;
  spec.num_train = 16;
  spec.num_test = 4;
  spec.height = 8;
  spec.width = 8;
  CifarLikePair pair = MakeCifarLike(spec, 13);
  Tensor out({2, 3, 8, 8});
  std::vector<int> labels;
  GatherImageBatch(pair.train, {3, 5}, false, 0, nullptr, &out, &labels);
  EXPECT_EQ(labels[0], pair.train.labels[3]);
  std::int64_t chw = 3 * 8 * 8;
  for (std::int64_t p = 0; p < chw; ++p) {
    EXPECT_FLOAT_EQ(out[p], pair.train.images[3 * chw + p]);
  }
}

TEST(GatherBatchTest, AugmentationIsShiftOrFlipOfSource) {
  CifarLikeSpec spec;
  spec.num_train = 4;
  spec.num_test = 4;
  spec.height = 8;
  spec.width = 8;
  CifarLikePair pair = MakeCifarLike(spec, 15);
  Rng rng(1);
  Tensor out({1, 3, 8, 8});
  std::vector<int> labels;
  GatherImageBatch(pair.train, {0}, true, 2, &rng, &out, &labels);
  // The augmented image's multiset of values is a subset of the source plus
  // zero padding; sanity-check that its energy does not exceed the source.
  double src = 0.0, dst = 0.0;
  std::int64_t chw = 3 * 8 * 8;
  for (std::int64_t p = 0; p < chw; ++p) {
    double v = pair.train.images[p];
    src += v * v;
    dst += static_cast<double>(out[p]) * out[p];
  }
  EXPECT_LE(dst, src + 1e-3);
}

TEST(GatherBatchTest, TabularBatch) {
  TabularData raw = TinyRaw();
  Preprocessor prep;
  Dataset d = prep.FitTransformAll(raw);
  Tensor out({2, d.num_features()});
  std::vector<int> labels;
  GatherTabularBatch(d, {1, 3}, &out, &labels);
  EXPECT_EQ(labels[1], d.labels[3]);
  EXPECT_FLOAT_EQ(out.At(0, 0), d.features.At(1, 0));
}

}  // namespace
}  // namespace gmreg
