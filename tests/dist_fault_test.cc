// Kill-and-resume fault tolerance of src/dist (docs/DISTRIBUTED.md), with
// real fork()ed worker processes and real std::_Exit crashes:
//
//  * worker kill: every worker crashes mid-epoch (crash_after_step), the
//    coordinator respawns and re-issues the round, and the result is still
//    bitwise identical to the fault-free reference;
//  * coordinator kill: the whole job dies at an epoch boundary
//    (crash_after_epoch), a resumed run picks up from the checkpoint, and
//    result + concatenated trace match an uninterrupted run bit for bit.
//
// fork + injected _Exit don't mix with sanitizer runtimes, so this binary
// carries only the `ci` label (see tests/CMakeLists.txt).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "dist/launcher.h"
#include "io/checkpoint.h"
#include "testutil/gmreg_testutil.h"
#include "util/fault.h"
#include "util/json_writer.h"
#include "util/metrics.h"

namespace gmreg {
namespace {

using ::gmreg::testing::ExpectTensorBitwiseEqual;
using ::gmreg::testing::TempPath;

std::uint64_t Bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

DistJobSpec MakeSpec() {
  DistJobSpec spec;
  spec.dataset = "climate-model";  // 540 rows / batch 32 = 16 steps/epoch
  spec.epochs = 2;
  spec.batch_size = 32;
  spec.hidden = 8;
  return spec;
}

void ExpectFinalStateBitwiseEqual(const DistRunResult& a,
                                  const DistRunResult& b,
                                  const std::string& what) {
  ASSERT_EQ(a.param_names, b.param_names) << what;
  for (std::size_t p = 0; p < a.params.size(); ++p) {
    ExpectTensorBitwiseEqual(a.params[p], b.params[p],
                             what + " param " + a.param_names[p]);
  }
  ASSERT_EQ(a.pi.size(), b.pi.size()) << what;
  for (std::size_t r = 0; r < a.pi.size(); ++r) {
    ASSERT_EQ(a.pi[r].size(), b.pi[r].size()) << what;
    for (std::size_t k = 0; k < a.pi[r].size(); ++k) {
      EXPECT_EQ(Bits(a.pi[r][k]), Bits(b.pi[r][k]))
          << what << " reg " << r << " pi " << k;
      EXPECT_EQ(Bits(a.lambda[r][k]), Bits(b.lambda[r][k]))
          << what << " reg " << r << " lambda " << k;
    }
  }
  for (std::size_t r = 0; r < a.gregs.size(); ++r) {
    ExpectTensorBitwiseEqual(a.gregs[r], b.gregs[r], what + " greg");
  }
}

TEST(DistFaultTest, WorkerCrashMidEpochRecoversBitIdentical) {
  // crash_after_step:5 is inherited by every fork()ed worker, so both
  // ranks _Exit right after serving step 5 (the reply is already on the
  // wire — TCP delivers buffered bytes on close). The coordinator sees the
  // dead connections on the step-6 round, respawns both ranks, re-issues
  // the round, and training continues. Exact-match semantics mean the
  // respawned workers (serving steps >= 6) never re-crash.
  std::int64_t reconnects_before =
      MetricsRegistry::Global().counter("gm.dist.worker_reconnects")->value();
  ASSERT_TRUE(FaultInjector::Global().Configure("crash_after_step:5").ok());

  DistJobSpec spec = MakeSpec();
  DistRunResult dist2;
  Status st = RunDistJob(spec, 2, WorkerLaunch::kFork, &dist2);
  FaultInjector::Global().Reset();
  ASSERT_TRUE(st.ok()) << st.ToString();

  std::int64_t reconnects =
      MetricsRegistry::Global().counter("gm.dist.worker_reconnects")->value() -
      reconnects_before;
  EXPECT_GE(reconnects, 2) << "both ranks should have been respawned";

  DistRunResult local2;
  ASSERT_TRUE(RunLocalShardedJob(spec, 2, &local2).ok());
  ASSERT_EQ(dist2.stats.size(), local2.stats.size());
  for (std::size_t e = 0; e < dist2.stats.size(); ++e) {
    EXPECT_EQ(Bits(dist2.stats[e].mean_loss), Bits(local2.stats[e].mean_loss))
        << "epoch " << e;
    EXPECT_EQ(Bits(dist2.stats[e].penalty), Bits(local2.stats[e].penalty))
        << "epoch " << e;
  }
  ExpectFinalStateBitwiseEqual(dist2, local2, "crashed dist(2) vs local(2)");
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Field-by-field trace comparison, skipping wall-clock-derived keys (the
// checkpoint_test.cc predicate: any key containing "seconds").
void ExpectSameDeterministicFields(const std::string& resumed_line,
                                   const std::string& ref_line, int epoch) {
  JsonValue a, b;
  ASSERT_TRUE(JsonValue::Parse(resumed_line, &a).ok()) << resumed_line;
  ASSERT_TRUE(JsonValue::Parse(ref_line, &b).ok()) << ref_line;
  ASSERT_TRUE(a.is_object());
  ASSERT_TRUE(b.is_object());
  ASSERT_EQ(a.members.size(), b.members.size()) << "epoch " << epoch;
  for (const auto& [key, value] : a.members) {
    if (key.find("seconds") != std::string::npos) continue;
    const JsonValue* other = b.Find(key);
    ASSERT_NE(other, nullptr) << "epoch " << epoch << " missing " << key;
    ASSERT_EQ(static_cast<int>(value.kind), static_cast<int>(other->kind))
        << "epoch " << epoch << " field " << key;
    switch (value.kind) {
      case JsonValue::Kind::kNumber:
        EXPECT_EQ(value.number, other->number)
            << "epoch " << epoch << " field " << key
            << " diverged: " << value.number << " vs " << other->number;
        break;
      case JsonValue::Kind::kString:
        EXPECT_EQ(value.string_value, other->string_value)
            << "epoch " << epoch << " field " << key;
        break;
      case JsonValue::Kind::kArray:
        ASSERT_EQ(value.items.size(), other->items.size())
            << "epoch " << epoch << " field " << key;
        for (std::size_t i = 0; i < value.items.size(); ++i) {
          EXPECT_EQ(value.items[i].number, other->items[i].number)
              << "epoch " << epoch << " field " << key << "[" << i << "]";
        }
        break;
      default:
        break;
    }
  }
}

TEST(DistFaultTest, CoordinatorCrashResumesBitIdentical) {
  std::string ckpt = TempPath("dist_coord_crash.ckpt");
  std::string trace = TempPath("dist_coord_crash.jsonl");
  std::string ref_ckpt = TempPath("dist_coord_ref.ckpt");
  std::string ref_trace = TempPath("dist_coord_ref.jsonl");
  for (const std::string& p :
       {ckpt, PreviousCheckpointPath(ckpt), trace, ref_ckpt,
        PreviousCheckpointPath(ref_ckpt), ref_trace}) {
    std::remove(p.c_str());
  }

  DistJobSpec spec = MakeSpec();
  spec.epochs = 3;
  spec.checkpoint_path = ckpt;
  spec.metrics_path = trace;
  spec.run_label = "dist_coord_crash";

  // Run the whole distributed job in a child process armed to die — like a
  // kill -9 of the coordinator — right after epoch 1's checkpoint. Its
  // fork()ed workers lose their coordinator socket and exit on EOF.
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (!FaultInjector::Global().Configure("crash_after_epoch:1").ok()) {
      std::_Exit(3);
    }
    DistRunResult ignored;
    Status st = RunDistJob(spec, 2, WorkerLaunch::kFork, &ignored);
    // Reaching here means the fault never fired.
    std::_Exit(st.ok() ? 0 : 4);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kFaultCrashExitCode)
      << "coordinator child did not die from the injected fault";
  ASSERT_EQ(ReadLines(trace).size(), 2u) << "expected epochs 0-1 on disk";

  // Resume from the checkpoint: epoch 2 runs distributed again and appends
  // to the same trace.
  spec.resume = true;
  DistRunResult resumed;
  Status st = RunDistJob(spec, 2, WorkerLaunch::kFork, &resumed);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(resumed.stats.size(), 1u);
  EXPECT_EQ(resumed.stats[0].epoch, 2);

  // The uninterrupted reference: same spec, fresh checkpoint/trace paths,
  // no crash, no resume.
  DistJobSpec ref_spec = spec;
  ref_spec.resume = false;
  ref_spec.checkpoint_path = ref_ckpt;
  ref_spec.metrics_path = ref_trace;
  DistRunResult reference;
  ASSERT_TRUE(RunDistJob(ref_spec, 2, WorkerLaunch::kFork, &reference).ok());
  ASSERT_EQ(reference.stats.size(), 3u);

  EXPECT_EQ(Bits(resumed.stats[0].mean_loss),
            Bits(reference.stats[2].mean_loss));
  EXPECT_EQ(Bits(resumed.stats[0].penalty), Bits(reference.stats[2].penalty));
  ExpectFinalStateBitwiseEqual(resumed, reference,
                               "resumed dist vs uninterrupted dist");

  // The concatenated trace (2 lines from the crashed run + 1 appended by
  // the resume) matches the uninterrupted trace on every deterministic
  // field.
  std::vector<std::string> resumed_lines = ReadLines(trace);
  std::vector<std::string> ref_lines = ReadLines(ref_trace);
  ASSERT_EQ(resumed_lines.size(), 3u);
  ASSERT_EQ(ref_lines.size(), 3u);
  for (std::size_t e = 0; e < ref_lines.size(); ++e) {
    ExpectSameDeterministicFields(resumed_lines[e], ref_lines[e],
                                  static_cast<int>(e));
  }
}

}  // namespace
}  // namespace gmreg
