// The determinism contract of src/dist (docs/DISTRIBUTED.md): a distributed
// run over W workers is bitwise identical to the single-process local-
// sharded reference over the same W, and W = 1 degenerates to the vanilla
// trainer. Workers here are std::threads over real loopback sockets
// (WorkerLaunch::kThread) so the whole exchange — weight broadcast,
// gradient fold, E-step slice merge — runs under the sanitizers too.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "dist/launcher.h"
#include "testutil/gmreg_testutil.h"
#include "util/json_writer.h"

namespace gmreg {
namespace {

using ::gmreg::testing::ExpectTensorBitwiseEqual;
using ::gmreg::testing::TempPath;

std::uint64_t Bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

DistJobSpec MakeSpec() {
  DistJobSpec spec;
  spec.dataset = "climate-model";  // 540 x 18: fast, still multi-batch
  spec.epochs = 2;
  spec.batch_size = 32;
  spec.hidden = 8;
  return spec;
}

// Everything RunDistJob surfaces must match bit for bit: per-epoch loss and
// penalty, the final weights, and each regularizer's learned mixture and
// cached greg. Wall clock is the only tolerated difference.
void ExpectResultsBitwiseEqual(const DistRunResult& a, const DistRunResult& b,
                               const std::string& what) {
  ASSERT_EQ(a.stats.size(), b.stats.size()) << what;
  for (std::size_t e = 0; e < a.stats.size(); ++e) {
    EXPECT_EQ(a.stats[e].epoch, b.stats[e].epoch) << what;
    EXPECT_EQ(Bits(a.stats[e].mean_loss), Bits(b.stats[e].mean_loss))
        << what << " epoch " << e << " mean_loss " << a.stats[e].mean_loss
        << " vs " << b.stats[e].mean_loss;
    EXPECT_EQ(Bits(a.stats[e].penalty), Bits(b.stats[e].penalty))
        << what << " epoch " << e << " penalty";
  }
  ASSERT_EQ(a.param_names, b.param_names) << what;
  ASSERT_EQ(a.params.size(), b.params.size()) << what;
  for (std::size_t p = 0; p < a.params.size(); ++p) {
    ExpectTensorBitwiseEqual(a.params[p], b.params[p],
                             what + " param " + a.param_names[p]);
  }
  ASSERT_EQ(a.pi.size(), b.pi.size()) << what;
  for (std::size_t r = 0; r < a.pi.size(); ++r) {
    ASSERT_EQ(a.pi[r].size(), b.pi[r].size()) << what;
    for (std::size_t k = 0; k < a.pi[r].size(); ++k) {
      EXPECT_EQ(Bits(a.pi[r][k]), Bits(b.pi[r][k]))
          << what << " reg " << r << " pi " << k;
      EXPECT_EQ(Bits(a.lambda[r][k]), Bits(b.lambda[r][k]))
          << what << " reg " << r << " lambda " << k;
    }
  }
  ASSERT_EQ(a.gregs.size(), b.gregs.size()) << what;
  for (std::size_t r = 0; r < a.gregs.size(); ++r) {
    ExpectTensorBitwiseEqual(a.gregs[r], b.gregs[r], what + " greg");
  }
}

TEST(DistTrainTest, WorldOfOneMatchesVanillaTrainer) {
  DistJobSpec spec = MakeSpec();
  DistRunResult single, dist1;
  ASSERT_TRUE(RunSingleProcessJob(spec, &single).ok());
  ASSERT_TRUE(RunDistJob(spec, 1, WorkerLaunch::kThread, &dist1).ok());
  ASSERT_EQ(dist1.stats.size(), 2u);
  ExpectResultsBitwiseEqual(dist1, single, "dist(1) vs single");
}

TEST(DistTrainTest, TwoWorkersMatchLocalShardedReference) {
  DistJobSpec spec = MakeSpec();
  DistRunResult local2, dist2;
  ASSERT_TRUE(RunLocalShardedJob(spec, 2, &local2).ok());
  ASSERT_TRUE(RunDistJob(spec, 2, WorkerLaunch::kThread, &dist2).ok());
  ExpectResultsBitwiseEqual(dist2, local2, "dist(2) vs local(2)");
}

TEST(DistTrainTest, FourWorkersMatchLocalShardedReference) {
  DistJobSpec spec = MakeSpec();
  DistRunResult local4, dist4;
  ASSERT_TRUE(RunLocalShardedJob(spec, 4, &local4).ok());
  ASSERT_TRUE(RunDistJob(spec, 4, WorkerLaunch::kThread, &dist4).ok());
  ExpectResultsBitwiseEqual(dist4, local4, "dist(4) vs local(4)");
}

TEST(DistTrainTest, UnregularizedJobStillMatches) {
  // No GM regularizer: the E-step path is off, only the gradient allreduce
  // is under test.
  DistJobSpec spec = MakeSpec();
  spec.use_gm_reg = false;
  DistRunResult local2, dist2;
  ASSERT_TRUE(RunLocalShardedJob(spec, 2, &local2).ok());
  ASSERT_TRUE(RunDistJob(spec, 2, WorkerLaunch::kThread, &dist2).ok());
  EXPECT_TRUE(dist2.pi.empty());
  ExpectResultsBitwiseEqual(dist2, local2, "no-reg dist(2) vs local(2)");
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Two trace lines must agree on every field except wall-clock-derived ones
// (same predicate as checkpoint_test.cc: any key containing "seconds").
void ExpectSameDeterministicFields(const std::string& dist_line,
                                   const std::string& ref_line, int epoch) {
  JsonValue a, b;
  ASSERT_TRUE(JsonValue::Parse(dist_line, &a).ok()) << dist_line;
  ASSERT_TRUE(JsonValue::Parse(ref_line, &b).ok()) << ref_line;
  ASSERT_TRUE(a.is_object());
  ASSERT_TRUE(b.is_object());
  ASSERT_EQ(a.members.size(), b.members.size()) << "epoch " << epoch;
  for (const auto& [key, value] : a.members) {
    if (key.find("seconds") != std::string::npos) continue;
    const JsonValue* other = b.Find(key);
    ASSERT_NE(other, nullptr) << "epoch " << epoch << " missing " << key;
    ASSERT_EQ(static_cast<int>(value.kind), static_cast<int>(other->kind))
        << "epoch " << epoch << " field " << key;
    switch (value.kind) {
      case JsonValue::Kind::kNumber:
        EXPECT_EQ(value.number, other->number)
            << "epoch " << epoch << " field " << key
            << " diverged: " << value.number << " vs " << other->number;
        break;
      case JsonValue::Kind::kString:
        EXPECT_EQ(value.string_value, other->string_value)
            << "epoch " << epoch << " field " << key;
        break;
      case JsonValue::Kind::kArray:
        ASSERT_EQ(value.items.size(), other->items.size())
            << "epoch " << epoch << " field " << key;
        for (std::size_t i = 0; i < value.items.size(); ++i) {
          EXPECT_EQ(value.items[i].number, other->items[i].number)
              << "epoch " << epoch << " field " << key << "[" << i << "]";
        }
        break;
      default:
        break;
    }
  }
}

TEST(DistTrainTest, TraceMatchesLocalReferenceFieldByField) {
  // The per-epoch JSONL trace — loss, penalty, lr, learned mixture, lazy-
  // update counters — is part of the contract, not just the in-memory
  // result. Compare every field except wall clock.
  std::string dist_trace = TempPath("dist_trace.jsonl");
  std::string ref_trace = TempPath("dist_ref_trace.jsonl");
  std::remove(dist_trace.c_str());
  std::remove(ref_trace.c_str());

  DistJobSpec spec = MakeSpec();
  spec.metrics_path = ref_trace;
  spec.run_label = "dist_trace_test";
  DistRunResult local2;
  ASSERT_TRUE(RunLocalShardedJob(spec, 2, &local2).ok());

  spec.metrics_path = dist_trace;
  DistRunResult dist2;
  ASSERT_TRUE(RunDistJob(spec, 2, WorkerLaunch::kThread, &dist2).ok());

  std::vector<std::string> dist_lines = ReadLines(dist_trace);
  std::vector<std::string> ref_lines = ReadLines(ref_trace);
  ASSERT_EQ(dist_lines.size(), ref_lines.size());
  ASSERT_EQ(dist_lines.size(), static_cast<std::size_t>(spec.epochs));
  for (std::size_t e = 0; e < dist_lines.size(); ++e) {
    ExpectSameDeterministicFields(dist_lines[e], ref_lines[e],
                                  static_cast<int>(e));
  }
}

}  // namespace
}  // namespace gmreg
