// Wire-layer tests of the distributed subsystem (src/dist/wire.h,
// core/merge.h suffstat codec, util/net.h framing): the encodings must
// round-trip every bit — the whole determinism contract of
// docs/DISTRIBUTED.md rests on serialize -> parse -> merge being
// indistinguishable from merging in process.

#include <sys/socket.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/em.h"
#include "core/gaussian_mixture.h"
#include "core/merge.h"
#include "dist/wire.h"
#include "testutil/gmreg_testutil.h"
#include "util/net.h"
#include "util/parallel.h"

namespace gmreg {
namespace {

using ::gmreg::testing::MakeBimodalWeights;

std::uint64_t Bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

std::uint32_t Bits(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

void ExpectStatsBitwiseEqual(const GmSuffStats& a, const GmSuffStats& b) {
  ASSERT_EQ(a.resp_sum.size(), b.resp_sum.size());
  EXPECT_EQ(a.count, b.count);
  for (std::size_t k = 0; k < a.resp_sum.size(); ++k) {
    EXPECT_EQ(Bits(a.resp_sum[k]), Bits(b.resp_sum[k])) << "resp_sum " << k;
    EXPECT_EQ(Bits(a.resp_w2_sum[k]), Bits(b.resp_w2_sum[k]))
        << "resp_w2_sum " << k;
  }
}

// --------------------------------------------------------------------------
// Suffstat hex-float codec (core/merge.h)
// --------------------------------------------------------------------------

TEST(SuffStatCodecTest, RoundTripsAdversarialBitPatterns) {
  GmSuffStats stats;
  stats.Reset(4);
  stats.count = (std::int64_t{1} << 40) + 17;
  // The values %g-style text would mangle: subnormals, negative zero, the
  // extremes of the double range, and a value with a full 53-bit mantissa.
  stats.resp_sum = {std::numeric_limits<double>::denorm_min(), -0.0,
                    std::numeric_limits<double>::max(),
                    0.1 + 0.2};  // 0.30000000000000004, not 0.3
  stats.resp_w2_sum = {std::numeric_limits<double>::min(), 1.0 / 3.0,
                       6.02214076e23, 5e-324};
  GmSuffStats decoded;
  Status st = DecodeGmSuffStats(EncodeGmSuffStats(stats), &decoded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ExpectStatsBitwiseEqual(stats, decoded);
}

TEST(SuffStatCodecTest, WireMergeMatchesInProcessMergeBitwise) {
  // Genuine per-slice statistics from real E-step passes, folded two ways:
  // in process (GmSuffStats::Merge) and through the wire codec
  // (MergeEncodedSuffStats) — the exact computation the coordinator runs
  // on worker replies. Bitwise equality is the claim dist training leans
  // on.
  GaussianMixture gm = GaussianMixture::Initialize(4, GmInitMethod::kLinear,
                                                   /*min_precision=*/2.5);
  std::vector<float> w = MakeBimodalWeights(4096, /*seed=*/123);
  const int kSlices = 4;
  GmSuffStats merged_direct;
  merged_direct.Reset(gm.num_components());
  std::vector<std::string> encoded;
  for (int s = 0; s < kSlices; ++s) {
    auto [begin, end] = ShardRange(s, kSlices, 0,
                                   static_cast<std::int64_t>(w.size()));
    GmSuffStats slice;
    slice.Reset(gm.num_components());
    EStep(gm, w.data() + begin, end - begin, /*greg_out=*/nullptr, &slice,
          /*num_threads=*/1);
    merged_direct.Merge(slice);
    encoded.push_back(EncodeGmSuffStats(slice));
  }
  GmSuffStats merged_wire;
  merged_wire.Reset(gm.num_components());
  Status st = MergeEncodedSuffStats(encoded, &merged_wire);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ExpectStatsBitwiseEqual(merged_direct, merged_wire);
}

TEST(SuffStatCodecTest, RejectsMalformedRecords) {
  GmSuffStats out;
  out.Reset(2);
  // Wrong magic / version.
  EXPECT_EQ(DecodeGmSuffStats("nonsense v1 2 0 0x0p+0 0x0p+0 0x0p+0 0x0p+0",
                              &out)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeGmSuffStats(
                "gm-suffstats v9 2 0 0x0p+0 0x0p+0 0x0p+0 0x0p+0", &out)
                .code(),
            StatusCode::kInvalidArgument);
  // K and count bounds.
  EXPECT_EQ(DecodeGmSuffStats("gm-suffstats v1 0 0", &out).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(DecodeGmSuffStats("gm-suffstats v1 1 -3 0x0p+0 0x0p+0", &out)
                .code(),
            StatusCode::kOutOfRange);
  // Truncation, non-finite values, trailing garbage.
  EXPECT_EQ(DecodeGmSuffStats("gm-suffstats v1 2 5 0x1p+0", &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeGmSuffStats("gm-suffstats v1 1 5 inf 0x0p+0", &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeGmSuffStats(
                "gm-suffstats v1 1 5 0x1p+0 0x1p+0 surprise", &out)
                .code(),
            StatusCode::kInvalidArgument);
  // A non-numeric token where a value belongs.
  EXPECT_EQ(
      DecodeGmSuffStats("gm-suffstats v1 1 5 zebra 0x1p+0", &out).code(),
      StatusCode::kInvalidArgument);
}

TEST(SuffStatCodecTest, MergeRejectsComponentCountMismatch) {
  GmSuffStats three;
  three.Reset(3);
  GmSuffStats out;
  out.Reset(2);
  Status st = MergeEncodedSuffStats({EncodeGmSuffStats(three)}, &out);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------------------------
// Message payload codecs (dist/wire.h)
// --------------------------------------------------------------------------

TEST(WireMessageTest, GradMessagesRoundTripExactFloats) {
  GradRequestMsg request;
  request.step = 12345678901LL;
  request.epoch = 7;
  request.params = {{1.5f, -0.0f, std::numeric_limits<float>::denorm_min()},
                    {std::numeric_limits<float>::max()},
                    {}};
  GradRequestMsg request2;
  Status st = GradRequestMsg::Decode(request.Encode(), &request2);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(request2.step, request.step);
  EXPECT_EQ(request2.epoch, request.epoch);
  ASSERT_EQ(request2.params.size(), request.params.size());
  for (std::size_t k = 0; k < request.params.size(); ++k) {
    ASSERT_EQ(request2.params[k].size(), request.params[k].size());
    for (std::size_t i = 0; i < request.params[k].size(); ++i) {
      EXPECT_EQ(Bits(request2.params[k][i]), Bits(request.params[k][i]));
    }
  }

  GradReplyMsg reply;
  reply.step = 42;
  reply.loss = 0.1 + 0.2;
  reply.grads = {{-1e-30f, 3.0f}, {0.0f}};
  GradReplyMsg reply2;
  st = GradReplyMsg::Decode(reply.Encode(), &reply2);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(reply2.step, reply.step);
  EXPECT_EQ(Bits(reply2.loss), Bits(reply.loss));
  ASSERT_EQ(reply2.grads.size(), 2u);
  EXPECT_EQ(Bits(reply2.grads[0][0]), Bits(reply.grads[0][0]));
}

TEST(WireMessageTest, EStepMessagesRoundTrip) {
  EStepRequestMsg request;
  request.seq = 9;
  request.want_greg = true;
  request.want_stats = true;
  request.pi = {0.25, 0.75};
  request.lambda = {1.0 / 3.0, 512.0};
  request.slice_begin = 1000;
  request.w = {0.5f, -0.5f, 1e-20f};
  EStepRequestMsg request2;
  Status st = EStepRequestMsg::Decode(request.Encode(), &request2);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(request2.seq, request.seq);
  EXPECT_TRUE(request2.want_greg);
  EXPECT_TRUE(request2.want_stats);
  EXPECT_EQ(Bits(request2.lambda[0]), Bits(request.lambda[0]));
  EXPECT_EQ(request2.slice_begin, 1000);
  ASSERT_EQ(request2.w.size(), 3u);
  EXPECT_EQ(Bits(request2.w[2]), Bits(request.w[2]));

  EStepReplyMsg reply;
  reply.seq = 9;
  reply.greg = {1.0f, 2.0f};
  reply.stats_encoded = "gm-suffstats v1 1 2 0x1p+0 0x1p+1";
  EStepReplyMsg reply2;
  st = EStepReplyMsg::Decode(reply.Encode(), &reply2);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(reply2.greg, reply.greg);
  EXPECT_EQ(reply2.stats_encoded, reply.stats_encoded);

  // Empty sections stay empty through the round trip.
  EStepReplyMsg sparse;
  sparse.seq = 10;
  EStepReplyMsg sparse2;
  st = EStepReplyMsg::Decode(sparse.Encode(), &sparse2);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(sparse2.greg.empty());
  EXPECT_TRUE(sparse2.stats_encoded.empty());
}

TEST(WireMessageTest, RejectsTruncatedAndOversizedPayloads) {
  GradRequestMsg request;
  request.step = 1;
  request.params = {{1.0f, 2.0f}};
  std::string payload = request.Encode();
  GradRequestMsg out;
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(GradRequestMsg::Decode(payload.substr(0, cut), &out).ok())
        << "prefix of " << cut << " bytes decoded";
  }
  // Trailing garbage is an error too.
  EXPECT_FALSE(GradRequestMsg::Decode(payload + "x", &out).ok());
  // A parameter-count header beyond the cap is rejected without allocating.
  WireWriter huge;
  huge.PutI64(0);
  huge.PutI64(0);
  huge.PutU32(1u << 20);
  EXPECT_FALSE(GradRequestMsg::Decode(huge.payload(), &out).ok());

  HelloMsg hello;
  EXPECT_FALSE(HelloMsg::Decode("abc", &hello).ok());
  // rank >= world is out of range.
  HelloMsg bad;
  bad.rank = 3;
  bad.world = 2;
  std::string encoded = bad.Encode();
  EXPECT_EQ(HelloMsg::Decode(encoded, &hello).code(),
            StatusCode::kOutOfRange);
}

// --------------------------------------------------------------------------
// Framing over a real socket pair (util/net.h)
// --------------------------------------------------------------------------

TEST(FrameIoTest, RoundTripsFramesOverSocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "binary\0payload" + std::string(1000, '\x7f');
  ASSERT_TRUE(WriteFrame(fds[0], 3, payload).ok());
  ASSERT_TRUE(WriteFrame(fds[0], 7, "").ok());
  std::uint8_t type = 0;
  std::string got;
  ASSERT_TRUE(ReadFrame(fds[1], &type, &got).ok());
  EXPECT_EQ(type, 3);
  EXPECT_EQ(got, payload);
  ASSERT_TRUE(ReadFrame(fds[1], &type, &got).ok());
  EXPECT_EQ(type, 7);
  EXPECT_TRUE(got.empty());
  CloseFd(fds[0]);
  // EOF surfaces as Unavailable, the signal the coordinator treats as a
  // dead worker.
  Status st = ReadFrame(fds[1], &type, &got);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  CloseFd(fds[1]);
}

TEST(FrameIoTest, EnforcesThePayloadCap) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteFrame(fds[0], 1, std::string(64, 'a')).ok());
  std::uint8_t type = 0;
  std::string got;
  Status st = ReadFrame(fds[1], &type, &got, /*max_payload=*/16);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  CloseFd(fds[0]);
  CloseFd(fds[1]);
}

}  // namespace
}  // namespace gmreg
