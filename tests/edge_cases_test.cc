// Boundary and degenerate-input behaviour across modules: the cases a
// downstream user hits first when wiring the library into their own stack.

#include <cmath>

#include "core/gm_regularizer.h"
#include "core/merge.h"
#include "data/batch.h"
#include "data/preprocess.h"
#include "data/split.h"
#include "data/tabular.h"
#include "gtest/gtest.h"
#include "models/resnet.h"
#include "reg/norms.h"
#include "tensor/tensor_ops.h"

namespace gmreg {
namespace {

TEST(BatchIteratorEdgeTest, BatchLargerThanDataset) {
  Rng rng(1);
  BatchIterator it(5, 100, &rng);
  EXPECT_EQ(it.NumBatches(), 1);
  EXPECT_EQ(it.Next().size(), 5u);
  EXPECT_TRUE(it.EpochDone());
}

TEST(BatchIteratorEdgeTest, BatchSizeOne) {
  Rng rng(2);
  BatchIterator it(3, 1, &rng);
  EXPECT_EQ(it.NumBatches(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(it.Next().size(), 1u);
  EXPECT_TRUE(it.EpochDone());
}

TEST(SplitEdgeTest, SingleSamplePerClassStaysInTrain) {
  std::vector<int> labels = {0, 1};
  Rng rng(3);
  TrainTestIndices split = StratifiedSplit(labels, 0.2, &rng);
  // With one sample per class, both sides cannot be non-empty per class;
  // the split must keep at least one training sample per class.
  EXPECT_EQ(split.train.size() + split.test.size(), 2u);
  EXPECT_FALSE(split.train.empty());
}

TEST(SplitEdgeTest, HighTestFraction) {
  std::vector<int> labels(20, 0);
  for (int i = 0; i < 10; ++i) labels.push_back(1);
  Rng rng(4);
  TrainTestIndices split = StratifiedSplit(labels, 0.9, &rng);
  // Every class keeps at least one training sample.
  int train0 = 0, train1 = 0;
  for (int i : split.train) (labels[static_cast<std::size_t>(i)] == 0 ? train0 : train1)++;
  EXPECT_GE(train0, 1);
  EXPECT_GE(train1, 1);
}

TEST(PreprocessorEdgeTest, AllMissingContinuousColumn) {
  TabularData raw;
  raw.name = "edge";
  Column c;
  c.type = ColumnType::kContinuous;
  c.values = {0.0, 0.0, 0.0};
  c.missing = {true, true, true};
  raw.columns = {c};
  raw.labels = {0, 1, 0};
  Preprocessor prep;
  ASSERT_TRUE(prep.Fit(raw, {0, 1, 2}).ok());
  Dataset d = prep.Transform(raw, {0, 1, 2});
  // Nothing to estimate: imputed values standardize to 0, not NaN.
  for (std::int64_t i = 0; i < d.features.size(); ++i) {
    EXPECT_EQ(d.features[i], 0.0f);
  }
}

TEST(PreprocessorEdgeTest, ConstantContinuousColumn) {
  TabularData raw;
  raw.name = "edge";
  Column c;
  c.type = ColumnType::kContinuous;
  c.values = {5.0, 5.0, 5.0, 5.0};
  c.missing = {false, false, false, false};
  raw.columns = {c};
  raw.labels = {0, 1, 0, 1};
  Preprocessor prep;
  ASSERT_TRUE(prep.Fit(raw, {0, 1, 2, 3}).ok());
  Dataset d = prep.Transform(raw, {0, 1, 2, 3});
  // Zero-variance column: stddev guard keeps the output finite (0).
  for (std::int64_t i = 0; i < d.features.size(); ++i) {
    EXPECT_TRUE(std::isfinite(d.features[i]));
    EXPECT_EQ(d.features[i], 0.0f);
  }
}

TEST(GmEdgeTest, SingleComponentResponsibilityIsOne) {
  GaussianMixture gm({1.0}, {7.0});
  double r[1];
  for (double x : {-5.0, 0.0, 0.3}) {
    gm.Responsibilities(x, r);
    EXPECT_DOUBLE_EQ(r[0], 1.0) << "x=" << x;
  }
}

TEST(GmEdgeTest, SingleComponentRegularizerIsAdaptiveL2) {
  // K = 1 collapses GM Reg to an L2 whose precision is learned: greg must
  // equal lambda * w exactly.
  GmOptions opts;
  opts.num_components = 1;
  GmRegularizer reg("w", 64, opts);
  Rng rng(5);
  Tensor w({64});
  for (std::int64_t i = 0; i < 64; ++i) {
    w[i] = static_cast<float>(rng.NextGaussian(0.0, 0.2));
  }
  Tensor grad({64});
  grad.SetZero();
  reg.AccumulateGradient(w, 0, 0, 1.0, &grad);
  double lambda = reg.mixture().lambda()[0];
  (void)lambda;
  // The greg was computed with the pre-M-step lambda (initial value).
  GaussianMixture init = GaussianMixture::Initialize(
      1, opts.init_method, opts.min_precision);
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(grad[i], init.lambda()[0] * w[i], 1e-4) << "i=" << i;
  }
}

TEST(GmEdgeTest, ZeroWeightVectorStaysFinite) {
  GmOptions opts;
  GmRegularizer reg("w", 32, opts);
  Tensor w({32});  // all zeros
  Tensor grad({32});
  for (int it = 0; it < 5; ++it) {
    grad.SetZero();
    reg.AccumulateGradient(w, it, 0, 1.0, &grad);
  }
  for (double l : reg.mixture().lambda()) {
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GT(l, 0.0);
  }
  for (std::int64_t i = 0; i < 32; ++i) EXPECT_EQ(grad[i], 0.0f);
}

TEST(GmEdgeTest, HugeWeightsClampedByBounds) {
  GmOptions opts;
  opts.bounds.lambda_min = 1e-3;
  GmRegularizer reg("w", 16, opts);
  Tensor w = Tensor::Full({16}, 1e6f);
  Tensor grad({16});
  for (int it = 0; it < 5; ++it) {
    grad.SetZero();
    reg.AccumulateGradient(w, it, 0, 1.0, &grad);
  }
  for (double l : reg.mixture().lambda()) {
    EXPECT_GE(l, opts.bounds.lambda_min);
    EXPECT_TRUE(std::isfinite(l));
  }
}

TEST(HuberEdgeTest, SmallMuApproachesL1) {
  HuberReg huber(2.0, 1e-4);
  L1Reg l1(2.0);
  Tensor w = Tensor::FromVector({0.5f, -1.5f, 3.0f});
  EXPECT_NEAR(huber.Penalty(w), l1.Penalty(w), 1e-3);
}

TEST(HuberEdgeTest, LargeMuMatchesScaledL2Inside) {
  // For |w| << mu, h(w) = w^2/(2 mu): beta_eff = beta/mu of L2.
  double mu = 100.0;
  HuberReg huber(3.0, mu);
  L2Reg l2(3.0 / mu);
  Tensor w = Tensor::FromVector({0.5f, -1.5f, 3.0f});
  EXPECT_NEAR(huber.Penalty(w), l2.Penalty(w), 1e-9);
}

TEST(ResNetEdgeTest, SingleBlockPerStage) {
  Rng rng(6);
  ResNetConfig cfg;
  cfg.blocks_per_stage = 1;  // 8 weighted layers
  cfg.input_hw = 12;
  auto net = BuildResNet(cfg, &rng);
  std::vector<ParamRef> params;
  net->CollectParams(&params);
  int convs = 0;
  for (const ParamRef& p : params) {
    if (p.is_weight) ++convs;
  }
  // 1 stem + 6 block convs + 2 projections + 1 dense.
  EXPECT_EQ(convs, 10);
  Tensor in({1, 3, 12, 12});
  Tensor out;
  net->Forward(in, &out, false);
  EXPECT_EQ(out.dim(1), 10);
}

TEST(TensorEdgeTest, GemmDegenerateDims) {
  // 1x1 matrices and empty accumulation paths.
  float a = 2.0f, b = 3.0f, c = 1.0f;
  Gemm(false, false, 1, 1, 1, 1.0f, &a, 1, &b, 1, 1.0f, &c, 1);
  EXPECT_FLOAT_EQ(c, 7.0f);
  Gemm(true, true, 1, 1, 1, 2.0f, &a, 1, &b, 1, 0.0f, &c, 1);
  EXPECT_FLOAT_EQ(c, 12.0f);
}

TEST(MergeEdgeTest, SingleComponentUnchanged) {
  GaussianMixture gm({1.0}, {42.0});
  GaussianMixture merged = MergeSimilarComponents(gm);
  ASSERT_EQ(merged.num_components(), 1);
  EXPECT_DOUBLE_EQ(merged.lambda()[0], 42.0);
}

}  // namespace
}  // namespace gmreg
