#include <cmath>

#include "data/preprocess.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "eval/method_grid.h"
#include "eval/small_data_experiment.h"
#include "gtest/gtest.h"

namespace gmreg {
namespace {

TEST(MetricsTest, MeanAndStdDev) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(SampleStdDev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(StdError(v), std::sqrt(5.0 / 3.0) / 2.0, 1e-12);
}

TEST(MetricsTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(StdError({1.0}), 0.0);
}

TEST(MethodGridTest, PaperMethodsInTableSevenOrderThenAdaptiveFamily) {
  auto methods = AllMethods();
  ASSERT_EQ(methods.size(), 7u);
  EXPECT_EQ(methods[0].name, "L1 Reg");
  EXPECT_EQ(methods[1].name, "L2 Reg");
  EXPECT_EQ(methods[2].name, "Elastic-net Reg");
  EXPECT_EQ(methods[3].name, "Huber Reg");
  EXPECT_EQ(methods[4].name, "GM Reg");
  EXPECT_EQ(methods[5].name, "EP-GIG Reg");
  EXPECT_EQ(methods[6].name, "Dynamic Prior Reg");
  for (const auto& m : methods) {
    EXPECT_FALSE(m.grid.empty()) << m.name;
  }
}

TEST(MethodGridTest, AdaptiveFamilyGridsBuildRegularizers) {
  for (const RegMethod& m : {EpGigMethod(), DynPriorMethod()}) {
    for (const RegCandidate& c : m.grid) {
      auto reg = c.make(/*num_dims=*/32, /*init_stddev=*/0.1);
      ASSERT_NE(reg, nullptr) << m.name << " " << c.label;
      EXPECT_FALSE(reg->Name().empty());
    }
  }
  EXPECT_EQ(EpGigMethod().grid.size(), 8u);
  EXPECT_EQ(DynPriorMethod().grid.size(), 8u);
}

TEST(MethodGridTest, GmGridSweepsPaperGammas) {
  RegMethod gm = GmMethod();
  EXPECT_EQ(gm.grid.size(), 8u);
  auto reg = gm.grid[0].make(100, 0.1);
  EXPECT_EQ(reg->Name(), "GM Reg");
}

TEST(MethodGridTest, CandidatesBuildFreshRegularizers) {
  RegMethod l2 = L2Method();
  auto a = l2.grid[0].make(10, 0.1);
  auto b = l2.grid[0].make(10, 0.1);
  EXPECT_NE(a.get(), b.get());
}

TEST(SmallDataExperimentTest, TrainEvalCandidateIsDeterministic) {
  TabularData raw = MakeUciLike("hepatitis", 3);
  Preprocessor prep;
  Dataset all = prep.FitTransformAll(raw);
  Rng rng(1);
  TrainTestIndices split = StratifiedSplit(all.labels, 0.2, &rng);
  Dataset train = SelectRows(all, split.train);
  Dataset test = SelectRows(all, split.test);
  LogisticRegression::Options lr;
  lr.epochs = 20;
  RegCandidate cand = L2Method().grid[4];
  double acc1 = TrainEvalCandidate(train, test, cand, lr, 7);
  double acc2 = TrainEvalCandidate(train, test, cand, lr, 7);
  EXPECT_DOUBLE_EQ(acc1, acc2);
  EXPECT_GT(acc1, 0.5);
}

TEST(SmallDataExperimentTest, CrossValidateReturnsSaneAccuracy) {
  TabularData raw = MakeUciLike("climate-model", 5);
  Preprocessor prep;
  Dataset all = prep.FitTransformAll(raw);
  LogisticRegression::Options lr;
  lr.epochs = 20;
  double cv = CrossValidateCandidate(all, L2Method().grid[4], 5, lr, 11);
  EXPECT_GT(cv, 0.6);
  EXPECT_LE(cv, 1.0);
}

TEST(SmallDataExperimentTest, ComparisonProducesAllMethodRows) {
  TabularData raw = MakeUciLike("hepatitis", 1);
  // Trimmed protocol so the test stays fast: 2 subsamples, 3 folds, tiny
  // grids.
  std::vector<RegMethod> methods;
  RegMethod l2{"L2 Reg", {L2Method().grid[2], L2Method().grid[5]}};
  RegMethod gm{"GM Reg", {GmMethod().grid[3]}};
  methods.push_back(l2);
  methods.push_back(gm);
  SmallDataOptions opts;
  opts.num_subsamples = 2;
  opts.cv_folds = 3;
  opts.lr.epochs = 15;
  auto results = RunSmallDataComparison(raw, methods, opts);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.per_subsample_accuracy.size(), 2u);
    EXPECT_GT(r.mean_accuracy, 0.5) << r.method;
    EXPECT_LE(r.mean_accuracy, 1.0);
    EXPECT_FALSE(r.representative_setting.empty());
  }
}

}  // namespace
}  // namespace gmreg
