// Malformed-config coverage for the regularizer factory. The generic cases
// iterate RegularizerKinds(), so a newly registered prior automatically
// inherits the whole battery: a kind cannot join the grammar without its
// misspellings failing loudly (core/factory.h documents the contract).

#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "gtest/gtest.h"
#include "reg/regularizer.h"
#include "util/status.h"

namespace gmreg {
namespace {

constexpr std::int64_t kDims = 128;

Status TryMake(const std::string& config, std::int64_t num_dims = kDims) {
  std::unique_ptr<Regularizer> reg;
  return MakeRegularizerFromConfig(config, num_dims, &reg);
}

// ---------------------------------------------------------------------------
// Generic battery over every registered kind.

TEST(FactoryNegativeTest, EveryExampleConfigBuilds) {
  for (const std::string& config : RegularizerExampleConfigs()) {
    std::unique_ptr<Regularizer> reg;
    Status s = MakeRegularizerFromConfig(config, kDims, &reg);
    EXPECT_TRUE(s.ok()) << config << ": " << s.ToString();
    ASSERT_NE(reg, nullptr) << config;
  }
}

TEST(FactoryNegativeTest, TrailingColonWithoutKeysIsMalformed) {
  for (const std::string& kind : RegularizerKinds()) {
    Status s = TryMake(kind + ":");
    EXPECT_FALSE(s.ok()) << kind << ": must not parse as all-defaults";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << kind;
  }
}

TEST(FactoryNegativeTest, UnknownKeyRejectedForEveryKind) {
  for (const std::string& kind : RegularizerKinds()) {
    Status s = TryMake(kind + ":bogus_key_xyz=1");
    EXPECT_FALSE(s.ok()) << kind;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << kind;
  }
}

TEST(FactoryNegativeTest, ItemWithoutEqualsIsMalformed) {
  for (const std::string& kind : RegularizerKinds()) {
    EXPECT_FALSE(TryMake(kind + ":novalue").ok()) << kind;
    EXPECT_FALSE(TryMake(kind + ":=1").ok()) << kind;
    EXPECT_FALSE(TryMake(kind + ":beta=1,junk").ok())
        << kind << ": trailing garbage after a valid pair must fail";
  }
}

TEST(FactoryNegativeTest, UnknownKindRejected) {
  for (const char* config :
       {"bogus", "bogus:beta=1", "L1:beta=1", "gm_prior:k=3", ""}) {
    Status s = TryMake(config);
    EXPECT_FALSE(s.ok()) << "'" << config << "'";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << config;
  }
}

// ---------------------------------------------------------------------------
// Per-kind value validation.

TEST(FactoryNegativeTest, NormFamilyBadValues) {
  EXPECT_FALSE(TryMake("l1").ok()) << "beta is required";
  EXPECT_FALSE(TryMake("l2").ok()) << "beta is required";
  EXPECT_EQ(TryMake("l1:beta=abc").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(TryMake("l1:beta=-1").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("l2:beta=-0.5").code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(TryMake("elastic:l1_ratio=0.5").ok()) << "beta is required";
  EXPECT_EQ(TryMake("elastic:beta=1,l1_ratio=1.5").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("elastic:beta=1,l1_ratio=-0.1").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("huber:beta=1,mu=0").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("huber:beta=1,mu=xyz").code(),
            StatusCode::kInvalidArgument);
}

TEST(FactoryNegativeTest, GmBadValues) {
  EXPECT_EQ(TryMake("gm:k=0").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("gm:k=65").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("gm:init=banana").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(TryMake("gm:gamma=-1").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("gm:im=0").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("gm:ig=0").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("gm:warmup=-1").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("gm:threads=65").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("gm", /*num_dims=*/0).code(),
            StatusCode::kFailedPrecondition)
      << "gm needs the parameter count M";
}

TEST(FactoryNegativeTest, EpGigBadValues) {
  EXPECT_EQ(TryMake("epgig:mode=cauchy").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TryMake("epgig:alpha=0").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("epgig:nu=-1").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("epgig:tau=0").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("epgig:interval=0").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("epgig:warmup=-2").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("epgig:alpha=nope").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TryMake("epgig", /*num_dims=*/0).code(),
            StatusCode::kFailedPrecondition)
      << "epgig needs the parameter count M";
}

TEST(FactoryNegativeTest, DynPriorBadValues) {
  EXPECT_EQ(TryMake("dynprior:schedule=banana").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TryMake("dynprior:decay=0").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("dynprior:decay=1.5").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("dynprior:beta=-1").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("dynprior:rate=-1").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("dynprior:beta=1,floor=3").code(),
            StatusCode::kOutOfRange)
      << "floor above beta";
  EXPECT_EQ(TryMake("dynprior:period=0").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TryMake("dynprior:beta=oops").code(),
            StatusCode::kInvalidArgument);
}

// dynprior and the norms ignore num_dims — they must build even when the
// caller has no parameter count at hand.
TEST(FactoryNegativeTest, DimFreeKindsBuildWithoutDims) {
  for (const char* config : {"none", "l1:beta=1", "dynprior:beta=1"}) {
    EXPECT_TRUE(TryMake(config, /*num_dims=*/0).ok()) << config;
  }
}

}  // namespace
}  // namespace gmreg
