// Conformance, determinism and NaN-semantics tests for the blocked GEMM
// (tensor/gemm_kernel.h) and the elementwise kernel tier. The packed-kernel
// battery runs once per compiled tier (scalar / AVX2 / AVX-512) via
// internal::ForceKernelTierForTesting, skipping tiers the running CPU does
// not support. docs/KERNELS.md states the contracts pinned here.

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "core/em.h"
#include "gtest/gtest.h"
#include "nn/conv.h"
#include "tensor/gemm_kernel.h"
#include "tensor/random.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gmreg {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

// Restores the global thread budget and kernel tier on scope exit so a
// failing test cannot poison its neighbours.
struct KernelEnvGuard {
  ~KernelEnvGuard() {
    SetDefaultNumThreads(0);
    internal::ClearKernelTierForTesting();
  }
};

const char* TierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::vector<float> RandomVec(Rng* rng, std::int64_t n) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = static_cast<float>(rng->NextUniform(-1.0, 1.0));
  return v;
}

// Double-accumulator reference GEMM, the conformance oracle.
void NaiveGemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const float* a, std::int64_t lda,
               const float* b, std::int64_t ldb, float beta, float* c,
               std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      float& out = c[i * ldc + j];
      out = (beta == 0.0f ? 0.0f : beta * out) +
            alpha * static_cast<float>(acc);
    }
  }
}

// ---------------------------------------------------------------------------
// Packed-kernel conformance: PackB + GemmPackedBlock directly, so every
// (m, n, k) corner exercises the micro-kernel and the packing layouts
// regardless of the small-GEMM dispatch threshold in Gemm(). Parameterized
// over (trans_a, trans_b, tier); unsupported tiers skip at runtime.
// ---------------------------------------------------------------------------

class PackedKernelTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, KernelTier>> {
 protected:
  void TearDown() override { internal::ClearKernelTierForTesting(); }
};

TEST_P(PackedKernelTest, MatchesNaiveReferenceAtTileCorners) {
  auto [trans_a, trans_b, tier] = GetParam();
  if (!internal::ForceKernelTierForTesting(tier)) {
    GTEST_SKIP() << "tier " << TierName(tier)
                 << " not compiled in or not supported by this CPU";
  }
  ASSERT_EQ(GetKernelOps().tier, tier);
  const GemmGeometry geo = GetGemmGeometry();
  Rng rng(0xC0FFEE);
  // Sides straddling every register-tile boundary across all tiers:
  // 1, 6 +- 1 (scalar/AVX2 MR), 14 +- 1 (AVX-512 MR), 16 +- 1
  // (scalar/AVX2 NR), 32 +- 1 (AVX-512 NR), and a prime beyond one panel.
  const std::int64_t sides[] = {1, 5, 6, 7, 13, 14, 15, 16, 17, 31, 32, 37};
  const std::pair<float, float> coeffs[] = {
      {1.0f, 0.0f}, {0.5f, 0.5f}, {1.0f, 1.0f}, {0.0f, 1.0f}};
  for (std::int64_t m : sides) {
    for (std::int64_t n : sides) {
      for (std::int64_t k : sides) {
        std::int64_t lda = trans_a ? m : k;
        std::int64_t ldb = trans_b ? k : n;
        std::vector<float> a = RandomVec(&rng, m * k);
        std::vector<float> b = RandomVec(&rng, k * n);
        std::vector<float> c0 = RandomVec(&rng, m * n);
        for (auto [alpha, beta] : coeffs) {
          std::vector<float> got = c0;
          std::vector<float> want = c0;
          std::vector<float> bp(
              static_cast<std::size_t>(PackedBFloats(k, n, geo)));
          PackB(trans_b, b.data(), ldb, k, n, bp.data(), geo);
          GemmPackedBlock(trans_a, 0, m, 0, n, n, k, alpha, a.data(), lda,
                          bp.data(), beta, got.data(), n, geo);
          NaiveGemm(trans_a, trans_b, m, n, k, alpha, a.data(), lda, b.data(),
                    ldb, beta, want.data(), n);
          double tol = 1e-5 * static_cast<double>(k) + 1e-6;
          for (std::int64_t i = 0; i < m * n; ++i) {
            ASSERT_NEAR(got[static_cast<std::size_t>(i)],
                        want[static_cast<std::size_t>(i)], tol)
                << "m=" << m << " n=" << n << " k=" << k
                << " alpha=" << alpha << " beta=" << beta << " i=" << i;
          }
        }
      }
    }
  }
}

// Tiles that start mid-matrix must read the right packed panels and leave
// the rest of C untouched: an interior (i0, j0) corner on the NR panel
// boundary with ragged i1/j1 edges, per tier.
TEST_P(PackedKernelTest, InteriorTileTouchesOnlyItsBlock) {
  auto [trans_a, trans_b, tier] = GetParam();
  if (!internal::ForceKernelTierForTesting(tier)) {
    GTEST_SKIP() << "tier " << TierName(tier)
                 << " not compiled in or not supported by this CPU";
  }
  const GemmGeometry geo = GetGemmGeometry();
  Rng rng(0xFACADE);
  const std::int64_t m = 2 * geo.mr + 3;
  const std::int64_t n = 2 * geo.nr + 5;
  const std::int64_t k = 19;
  std::int64_t lda = trans_a ? m : k;
  std::int64_t ldb = trans_b ? k : n;
  std::vector<float> a = RandomVec(&rng, m * k);
  std::vector<float> b = RandomVec(&rng, k * n);
  std::vector<float> c0 = RandomVec(&rng, m * n);
  std::vector<float> bp(static_cast<std::size_t>(PackedBFloats(k, n, geo)));
  PackB(trans_b, b.data(), ldb, k, n, bp.data(), geo);
  std::vector<float> want = c0;
  NaiveGemm(trans_a, trans_b, m, n, k, 1.0f, a.data(), lda, b.data(), ldb,
            0.0f, want.data(), n);
  // The block [i0, i1) x [j0, j1): an interior corner with ragged edges.
  const std::int64_t i0 = geo.mr, i1 = m;
  const std::int64_t j0 = geo.nr, j1 = n;
  std::vector<float> got = c0;
  GemmPackedBlock(trans_a, i0, i1, j0, j1, n, k, 1.0f, a.data(), lda,
                  bp.data(), 0.0f, got.data(), n, geo);
  double tol = 1e-5 * static_cast<double>(k) + 1e-6;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      auto idx = static_cast<std::size_t>(i * n + j);
      bool inside = i >= i0 && i < i1 && j >= j0 && j < j1;
      if (inside) {
        ASSERT_NEAR(got[idx], want[idx], tol) << "i=" << i << " j=" << j;
      } else {
        ASSERT_EQ(got[idx], c0[idx]) << "i=" << i << " j=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposesAllTiers, PackedKernelTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(KernelTier::kScalar, KernelTier::kAvx2,
                                         KernelTier::kAvx512)),
    [](const ::testing::TestParamInfo<PackedKernelTest::ParamType>& info) {
      return std::string(std::get<0>(info.param) ? "Ta" : "Na") +
             (std::get<1>(info.param) ? "Tb" : "Nb") + "_" +
             TierName(std::get<2>(info.param));
    });

// Public Gemm at shapes large enough for the blocked path (several KC slabs
// and MC blocks), all four transpose variants, per available tier.
TEST(GemmConformanceTest, BlockedPathLargeShapes) {
  KernelEnvGuard guard;
  Rng rng(7);
  const std::int64_t m = 73, n = 65, k = 300;
  for (KernelTier tier :
       {KernelTier::kScalar, KernelTier::kAvx2, KernelTier::kAvx512}) {
    if (!internal::ForceKernelTierForTesting(tier)) continue;
    for (bool trans_a : {false, true}) {
      for (bool trans_b : {false, true}) {
        std::int64_t lda = trans_a ? m : k;
        std::int64_t ldb = trans_b ? k : n;
        std::vector<float> a = RandomVec(&rng, m * k);
        std::vector<float> b = RandomVec(&rng, k * n);
        std::vector<float> got = RandomVec(&rng, m * n);
        std::vector<float> want = got;
        Gemm(trans_a, trans_b, m, n, k, 0.5f, a.data(), lda, b.data(), ldb,
             0.5f, got.data(), n);
        NaiveGemm(trans_a, trans_b, m, n, k, 0.5f, a.data(), lda, b.data(),
                  ldb, 0.5f, want.data(), n);
        for (std::int64_t i = 0; i < m * n; ++i) {
          ASSERT_NEAR(got[static_cast<std::size_t>(i)],
                      want[static_cast<std::size_t>(i)], 5e-3)
              << "tier=" << TierName(tier) << " trans_a=" << trans_a
              << " trans_b=" << trans_b << " i=" << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Autotuned blocking geometry: the KC/MC/NC rule must keep its invariants
// for every register tile whatever cache sizes the machine reports, and the
// fixed fallback must reproduce the historical KC = 256 at NR = 16.
// ---------------------------------------------------------------------------

TEST(GemmGeometryTest, AutotuneInvariantsAcrossCacheShapes) {
  const std::pair<std::int64_t, std::int64_t> tiles[] = {{6, 16}, {14, 32}};
  const internal::CacheGeometry caches[] = {
      {32 * 1024, 1024 * 1024},             // the fixed fallback table
      {48 * 1024, 2 * 1024 * 1024},         // common client parts
      {16 * 1024, 256 * 1024},              // small embedded-ish cache
      {1 * 1024, 4 * 1024},                 // absurdly tiny: clamps must hold
      {4 * 1024 * 1024, 64 * 1024 * 1024},  // absurdly huge: ditto
  };
  for (auto [mr, nr] : tiles) {
    for (const auto& cache : caches) {
      GemmGeometry geo = internal::AutotuneGeometry(mr, nr, cache);
      EXPECT_EQ(geo.mr, mr);
      EXPECT_EQ(geo.nr, nr);
      EXPECT_GE(geo.kc, 64) << "mr=" << mr << " l1=" << cache.l1d_bytes;
      EXPECT_LE(geo.kc, 512);
      EXPECT_EQ(geo.kc % 8, 0);
      EXPECT_GE(geo.mc, mr);
      EXPECT_LE(geo.mc, 192);
      EXPECT_EQ(geo.mc % mr, 0);
      EXPECT_GE(geo.nc, nr);
      EXPECT_EQ(geo.nc % nr, 0);
    }
  }
  // Fallback cache + the 6x16 tile reproduces the previous fixed KC = 256.
  GemmGeometry legacy =
      internal::AutotuneGeometry(6, 16, {32 * 1024, 1024 * 1024});
  EXPECT_EQ(legacy.kc, 256);
}

TEST(GemmGeometryTest, ProcessGeometryIsStableAndMatchesActiveTier) {
  GemmGeometry first = GetGemmGeometry();
  GemmGeometry second = GetGemmGeometry();
  EXPECT_EQ(first.mr, GetKernelOps().mr);
  EXPECT_EQ(first.nr, GetKernelOps().nr);
  EXPECT_EQ(first.kc, second.kc);
  EXPECT_EQ(first.mc, second.mc);
  EXPECT_EQ(first.nc, second.nc);
  internal::CacheGeometry cache = internal::GetCacheGeometry();
  EXPECT_GE(cache.l2_bytes, cache.l1d_bytes);
}

// ---------------------------------------------------------------------------
// NaN semantics. The old scalar GEMM skipped the inner loop when an A
// element was exactly zero, silently swallowing NaN/Inf from B; the packed
// kernel must propagate. Both dispatch paths (small and blocked) are pinned.
// ---------------------------------------------------------------------------

TEST(GemmNanTest, ZeroTimesNanPropagates) {
  for (std::int64_t side : {8, 64}) {  // 8^3: small path; 64^3: blocked path
    std::vector<float> a(static_cast<std::size_t>(side * side), 0.0f);
    std::vector<float> b(static_cast<std::size_t>(side * side), 1.0f);
    b[3] = kNan;
    std::vector<float> c(static_cast<std::size_t>(side * side), 0.0f);
    Gemm(false, false, side, side, side, 1.0f, a.data(), side, b.data(), side,
         1.0f, c.data(), side);
    // Column 3 of every C row saw 0 * NaN.
    EXPECT_TRUE(std::isnan(c[3])) << "side=" << side;
    EXPECT_TRUE(std::isnan(c[static_cast<std::size_t>(side + 3)]))
        << "side=" << side;
  }
}

TEST(GemmNanTest, BetaZeroOverwritesNanC) {
  for (std::int64_t side : {8, 64}) {
    Rng rng(3);
    std::vector<float> a = RandomVec(&rng, side * side);
    std::vector<float> b = RandomVec(&rng, side * side);
    std::vector<float> c(static_cast<std::size_t>(side * side), kNan);
    Gemm(false, false, side, side, side, 1.0f, a.data(), side, b.data(), side,
         0.0f, c.data(), side);
    for (float v : c) ASSERT_FALSE(std::isnan(v)) << "side=" << side;
  }
}

TEST(GemmNanTest, AlphaZeroNeverReadsAOrB) {
  const std::int64_t side = 16;
  std::vector<float> a(static_cast<std::size_t>(side * side), kNan);
  std::vector<float> b(static_cast<std::size_t>(side * side), kNan);
  std::vector<float> c(static_cast<std::size_t>(side * side), 2.0f);
  Gemm(false, false, side, side, side, 0.0f, a.data(), side, b.data(), side,
       1.0f, c.data(), side);
  for (float v : c) ASSERT_EQ(v, 2.0f);
  Gemm(false, false, side, side, side, 0.0f, a.data(), side, b.data(), side,
       0.0f, c.data(), side);
  for (float v : c) ASSERT_EQ(v, 0.0f);
}

// ---------------------------------------------------------------------------
// Determinism: bitwise-identical C at every thread budget for every tier,
// and a bounded, documented divergence between the scalar and SIMD tiers
// (FMA contraction only).
// ---------------------------------------------------------------------------

std::vector<float> RunGemmAtBudget(int budget) {
  SetDefaultNumThreads(budget);
  Rng rng(0xDECAF);
  const std::int64_t m = 600, n = 160, k = 96;  // several 2D tiles in flight
  std::vector<float> a = RandomVec(&rng, m * k);
  std::vector<float> b = RandomVec(&rng, k * n);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.25f);
  Gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.5f, c.data(),
       n);
  return c;
}

TEST(GemmDeterminismTest, BitIdenticalAcrossThreadBudgetsEveryTier) {
  KernelEnvGuard guard;
  for (KernelTier tier :
       {KernelTier::kScalar, KernelTier::kAvx2, KernelTier::kAvx512}) {
    if (!internal::ForceKernelTierForTesting(tier)) continue;
    std::vector<float> serial = RunGemmAtBudget(1);
    for (int budget : {2, 4, 8}) {
      std::vector<float> parallel = RunGemmAtBudget(budget);
      ASSERT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                               serial.size() * sizeof(float)))
          << "tier=" << TierName(tier) << " budget=" << budget;
    }
    SetDefaultNumThreads(0);
  }
}

TEST(GemmDeterminismTest, SimdMatchesScalarWithinFmaTolerance) {
  KernelEnvGuard guard;
  Rng rng(0xBEEF);
  const std::int64_t m = 72, n = 48, k = 256;
  std::vector<float> a = RandomVec(&rng, m * k);
  std::vector<float> b = RandomVec(&rng, k * n);
  std::vector<float> c0 = RandomVec(&rng, m * n);

  ASSERT_TRUE(internal::ForceKernelTierForTesting(KernelTier::kScalar));
  EXPECT_FALSE(SimdKernelsEnabled());
  std::vector<float> scalar = c0;
  Gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 1.0f,
       scalar.data(), n);

  for (KernelTier tier : {KernelTier::kAvx2, KernelTier::kAvx512}) {
    if (!internal::ForceKernelTierForTesting(tier)) continue;
    EXPECT_TRUE(SimdKernelsEnabled());
    std::vector<float> simd = c0;
    Gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 1.0f,
         simd.data(), n);
    // Same per-element accumulation order; the only divergence allowed is
    // FMA contraction (docs/KERNELS.md), bounded by ~k ulps of the running
    // sum.
    double tol = 1e-5 * static_cast<double>(k);
    for (std::int64_t i = 0; i < m * n; ++i) {
      ASSERT_NEAR(scalar[static_cast<std::size_t>(i)],
                  simd[static_cast<std::size_t>(i)], tol)
          << "tier=" << TierName(tier) << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Elementwise kernel tier: each op against its naive definition, active
// tier vs forced-scalar tier (exact for selection/add ops).
// ---------------------------------------------------------------------------

TEST(ElementwiseKernelTest, BroadcastAndSumOpsMatchNaive) {
  Rng rng(21);
  const std::int64_t rows = 13, cols = 37;
  std::vector<float> m = RandomVec(&rng, rows * cols);
  std::vector<float> row = RandomVec(&rng, cols);
  std::vector<float> col = RandomVec(&rng, rows);

  std::vector<float> got = m;
  AddRowBroadcast(rows, cols, row.data(), got.data());
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      auto idx = static_cast<std::size_t>(i * cols + j);
      ASSERT_EQ(got[idx], m[idx] + row[static_cast<std::size_t>(j)]);
    }
  }

  got = m;
  AddColBroadcast(rows, cols, col.data(), got.data());
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      auto idx = static_cast<std::size_t>(i * cols + j);
      ASSERT_EQ(got[idx], m[idx] + col[static_cast<std::size_t>(i)]);
    }
  }

  std::vector<float> csums(static_cast<std::size_t>(cols), 1.0f);
  ColSumsAccum(rows, cols, m.data(), csums.data());
  for (std::int64_t j = 0; j < cols; ++j) {
    double want = 1.0;
    for (std::int64_t i = 0; i < rows; ++i) {
      want += m[static_cast<std::size_t>(i * cols + j)];
    }
    ASSERT_NEAR(csums[static_cast<std::size_t>(j)], want, 1e-5);
  }

  std::vector<float> rsums(static_cast<std::size_t>(rows), 1.0f);
  RowSumsAccum(rows, cols, m.data(), rsums.data());
  for (std::int64_t i = 0; i < rows; ++i) {
    double want = 1.0;
    for (std::int64_t j = 0; j < cols; ++j) {
      want += m[static_cast<std::size_t>(i * cols + j)];
    }
    ASSERT_NEAR(rsums[static_cast<std::size_t>(i)], want, 1e-5);
  }
}

TEST(ElementwiseKernelTest, ReluOpsExactAcrossTiers) {
  KernelEnvGuard guard;
  Rng rng(5);
  const std::int64_t n = 1003;  // odd length: exercises vector tails
  std::vector<float> in = RandomVec(&rng, n);
  in[0] = 0.0f;  // boundary: not positive, masked off
  std::vector<float> gout = RandomVec(&rng, n);

  auto run = [&](KernelTier tier) {
    EXPECT_TRUE(internal::ForceKernelTierForTesting(tier));
    const KernelOps& ops = GetKernelOps();
    std::vector<float> fwd(static_cast<std::size_t>(n));
    std::vector<unsigned char> mask(static_cast<std::size_t>(n));
    std::vector<float> bwd(static_cast<std::size_t>(n));
    ops.relu_forward(n, in.data(), fwd.data(), mask.data());
    ops.relu_backward(n, gout.data(), mask.data(), bwd.data());
    return std::make_pair(fwd, bwd);
  };
  auto [fwd_scalar, bwd_scalar] = run(KernelTier::kScalar);
  internal::ClearKernelTierForTesting();
  auto [fwd_active, bwd_active] = run(GetKernelOps().tier);

  for (std::int64_t i = 0; i < n; ++i) {
    auto idx = static_cast<std::size_t>(i);
    float want_fwd = in[idx] > 0.0f ? in[idx] : 0.0f;
    float want_bwd = in[idx] > 0.0f ? gout[idx] : 0.0f;
    ASSERT_EQ(fwd_scalar[idx], want_fwd);
    ASSERT_EQ(bwd_scalar[idx], want_bwd);
    // Selection ops have no reassociation: tiers agree exactly.
    ASSERT_EQ(fwd_active[idx], want_fwd);
    ASSERT_EQ(bwd_active[idx], want_bwd);
  }
}

TEST(ElementwiseKernelTest, AxpyMatchesNaive) {
  Rng rng(9);
  const std::int64_t n = 517;
  std::vector<float> xs = RandomVec(&rng, n);
  Tensor x({n});
  Tensor y({n});
  std::copy(xs.begin(), xs.end(), x.data());
  std::vector<float> ys = RandomVec(&rng, n);
  std::copy(ys.begin(), ys.end(), y.data());
  Axpy(0.5f, x, &y);
  for (std::int64_t i = 0; i < n; ++i) {
    auto idx = static_cast<std::size_t>(i);
    ASSERT_EQ(y[i], ys[idx] + 0.5f * xs[idx]);
  }
}

// ---------------------------------------------------------------------------
// Conv backward: batch-parallel with per-chunk partial gradients merged in
// fixed chunk order — bitwise identical at every thread budget.
// ---------------------------------------------------------------------------

struct ConvGrads {
  std::vector<float> weight_grad;
  std::vector<float> bias_grad;
  std::vector<float> grad_in;
};

ConvGrads RunConvBackwardAtBudget(int budget) {
  SetDefaultNumThreads(budget);
  Rng rng(0xFEED);
  Conv2d conv("c", /*in_channels=*/3, /*out_channels=*/5, /*kernel=*/3,
              /*stride=*/1, /*padding=*/1, InitSpec::Gaussian(0.1), &rng);
  Tensor in({6, 3, 9, 9});
  FillGaussian(&rng, 0.0, 1.0, &in);
  Tensor out;
  conv.Forward(in, &out, /*train=*/true);
  Tensor gout(out.shape());
  FillGaussian(&rng, 0.0, 1.0, &gout);
  Tensor gin;
  conv.Backward(gout, &gin);
  std::vector<ParamRef> params;
  conv.CollectParams(&params);
  ConvGrads grads;
  for (const auto& p : params) {
    const Tensor& g = *p.grad;
    std::vector<float>& dst =
        p.name == "c/weight" ? grads.weight_grad : grads.bias_grad;
    dst.assign(g.data(), g.data() + g.size());
  }
  grads.grad_in.assign(gin.data(), gin.data() + gin.size());
  return grads;
}

TEST(ConvBackwardDeterminismTest, BitIdenticalAcrossThreadBudgets) {
  KernelEnvGuard guard;
  ConvGrads serial = RunConvBackwardAtBudget(1);
  ASSERT_FALSE(serial.weight_grad.empty());
  for (int budget : {2, 4, 8}) {
    ConvGrads parallel = RunConvBackwardAtBudget(budget);
    EXPECT_EQ(0, std::memcmp(serial.weight_grad.data(),
                             parallel.weight_grad.data(),
                             serial.weight_grad.size() * sizeof(float)))
        << "weight_grad budget=" << budget;
    EXPECT_EQ(0, std::memcmp(serial.bias_grad.data(),
                             parallel.bias_grad.data(),
                             serial.bias_grad.size() * sizeof(float)))
        << "bias_grad budget=" << budget;
    EXPECT_EQ(0, std::memcmp(serial.grad_in.data(), parallel.grad_in.data(),
                             serial.grad_in.size() * sizeof(float)))
        << "grad_in budget=" << budget;
  }
}

// The K-specialized E-step kernels must be bitwise identical to the generic
// Responsibilities() loop; K = 5 takes the generic path and serves as the
// contract's control, K in {1, 2, 3, 4, 8} take the unrolled kernels.
TEST(EStepFixedKTest, MatchesResponsibilitiesBitwise) {
  Rng rng(31);
  const std::int64_t n = 2000;
  std::vector<double> w(static_cast<std::size_t>(n));
  for (double& x : w) x = rng.NextUniform(-2.0, 2.0);
  for (int kk : {1, 2, 3, 4, 5, 8}) {
    std::vector<double> pi(static_cast<std::size_t>(kk),
                           1.0 / static_cast<double>(kk));
    std::vector<double> lambda;
    for (int k = 0; k < kk; ++k) lambda.push_back(std::pow(4.0, k));
    GaussianMixture gm(pi, lambda);
    std::vector<double> greg(static_cast<std::size_t>(n));
    GmSuffStats stats;
    stats.Reset(kk);
    EStep(gm, w.data(), n, greg.data(), &stats, /*num_threads=*/1);
    double r[64];
    std::vector<double> want_resp(static_cast<std::size_t>(kk), 0.0);
    for (std::int64_t m = 0; m < n; ++m) {
      double x = w[static_cast<std::size_t>(m)];
      gm.Responsibilities(x, r);
      double acc = 0.0;
      for (int k = 0; k < kk; ++k) {
        acc += r[k] * lambda[static_cast<std::size_t>(k)];
        want_resp[static_cast<std::size_t>(k)] += r[k];
      }
      ASSERT_EQ(greg[static_cast<std::size_t>(m)], acc * x)
          << "kk=" << kk << " m=" << m;
    }
    for (int k = 0; k < kk; ++k) {
      ASSERT_EQ(stats.resp_sum[static_cast<std::size_t>(k)],
                want_resp[static_cast<std::size_t>(k)])
          << "kk=" << kk << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace gmreg
