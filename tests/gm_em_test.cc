#include <cmath>

#include "core/em.h"
#include "core/merge.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace gmreg {
namespace {

GmHyperParams FlatHyper(int k) {
  // a = 1, b = 0, alpha = 1: the priors vanish and the M-step reduces to
  // plain maximum-likelihood EM — ideal for checking the formulas.
  GmHyperParams h;
  h.a = 1.0;
  h.b = 0.0;
  h.alpha.assign(static_cast<std::size_t>(k), 1.0);
  return h;
}

TEST(EStepTest, SufficientStatisticsSumToCount) {
  GaussianMixture gm({0.5, 0.5}, {1.0, 100.0});
  std::vector<double> data = {-1.0, -0.01, 0.0, 0.02, 0.5, 2.0};
  GmSuffStats stats;
  stats.Reset(2);
  EStep(gm, data.data(), static_cast<std::int64_t>(data.size()), nullptr,
        &stats);
  EXPECT_EQ(stats.count, 6);
  EXPECT_NEAR(stats.resp_sum[0] + stats.resp_sum[1], 6.0, 1e-9);
  // resp_w2 partitions sum of squares.
  double ss = 0.0;
  for (double v : data) ss += v * v;
  EXPECT_NEAR(stats.resp_w2_sum[0] + stats.resp_w2_sum[1], ss, 1e-9);
}

TEST(EStepTest, GregMatchesMixtureRegGradient) {
  GaussianMixture gm({0.3, 0.7}, {2.0, 50.0});
  std::vector<float> w = {-0.8f, -0.05f, 0.0f, 0.1f, 1.2f};
  std::vector<float> greg(w.size());
  EStep(gm, w.data(), static_cast<std::int64_t>(w.size()), greg.data(),
        nullptr);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(greg[i], gm.RegGradient(w[i]), 1e-5) << "i=" << i;
  }
}

TEST(MStepTest, HandComputedSingleComponent) {
  // One component: lambda = M / sum(w^2) under the flat prior; pi = 1.
  GaussianMixture gm({1.0}, {1.0});
  std::vector<double> data = {1.0, -1.0, 2.0};
  GmSuffStats stats;
  stats.Reset(1);
  EStep(gm, data.data(), 3, nullptr, &stats);
  MStep(stats, FlatHyper(1), GmBounds{}, &gm);
  EXPECT_NEAR(gm.lambda()[0], 3.0 / 6.0, 1e-12);
  EXPECT_NEAR(gm.pi()[0], 1.0, 1e-12);
}

TEST(MStepTest, SmoothingTermsActAsPseudoCounts) {
  // Eq. 13: lambda = (2(a-1) + sum r) / (2b + sum r w^2).
  GaussianMixture gm({1.0}, {1.0});
  std::vector<double> data = {1.0, -1.0};
  GmSuffStats stats;
  stats.Reset(1);
  EStep(gm, data.data(), 2, nullptr, &stats);
  GmHyperParams h;
  h.a = 2.0;   // adds 2 pseudo responsibilities
  h.b = 3.0;   // adds 6 pseudo squared mass
  h.alpha = {1.0};
  MStep(stats, h, GmBounds{}, &gm);
  EXPECT_NEAR(gm.lambda()[0], (2.0 + 2.0) / (6.0 + 2.0), 1e-12);
}

TEST(MStepTest, PiFormulaWithDirichlet) {
  // Two far-separated components so responsibilities are ~hard: 4 points
  // near 0 (precision 10000), 1 point at 10 (precision ~0.01).
  GaussianMixture gm({0.5, 0.5}, {0.01, 10000.0});
  std::vector<double> data = {0.001, -0.002, 0.0005, -0.001, 10.0};
  GmSuffStats stats;
  stats.Reset(2);
  EStep(gm, data.data(), 5, nullptr, &stats);
  GmHyperParams h = FlatHyper(2);
  h.alpha = {3.0, 3.0};  // adds (alpha-1)=2 pseudo members per component
  MStep(stats, h, GmBounds{}, &gm);
  // Eq. 17: pi_0 = (1 + 2) / (5 + 4), pi_1 = (4 + 2) / 9. Responsibilities
  // are soft (~1e-3 leakage between the far-separated components).
  EXPECT_NEAR(gm.pi()[0], 3.0 / 9.0, 2e-3);
  EXPECT_NEAR(gm.pi()[1], 6.0 / 9.0, 2e-3);
}

TEST(MStepTest, LargeAlphaEqualizesMixingCoefficients) {
  // Sec. III-C3: large alpha drives all pi_k to the same value, so a single
  // effective Gaussian is learned.
  GaussianMixture gm({0.5, 0.5}, {0.01, 10000.0});
  std::vector<double> data = {0.001, -0.002, 0.0005, -0.001, 10.0};
  GmSuffStats stats;
  stats.Reset(2);
  EStep(gm, data.data(), 5, nullptr, &stats);
  GmHyperParams h = FlatHyper(2);
  h.alpha = {1e6, 1e6};
  MStep(stats, h, GmBounds{}, &gm);
  EXPECT_NEAR(gm.pi()[0], 0.5, 1e-3);
  EXPECT_NEAR(gm.pi()[1], 0.5, 1e-3);
}

TEST(MStepTest, BoundsClampLambda) {
  GaussianMixture gm({1.0}, {1.0});
  std::vector<double> data = {1e-12};  // would give a huge lambda
  GmSuffStats stats;
  stats.Reset(1);
  EStep(gm, data.data(), 1, nullptr, &stats);
  GmBounds bounds;
  bounds.lambda_max = 500.0;
  MStep(stats, FlatHyper(1), bounds, &gm);
  EXPECT_DOUBLE_EQ(gm.lambda()[0], 500.0);
}

TEST(FitTest, RecoversPlantedTwoComponentMixture) {
  // Planted: 80% N(0, 0.05^2)  (precision 400), 20% N(0, 1) (precision 1).
  Rng rng(42);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back(rng.NextBernoulli(0.8) ? rng.NextGaussian(0.0, 0.05)
                                          : rng.NextGaussian(0.0, 1.0));
  }
  GaussianMixture init =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 0.5);
  GmHyperParams hyper = GmHyperParams::FromRules(
      static_cast<std::int64_t>(data.size()), 4, 0.0002, 0.01, 0.5);
  GaussianMixture fit =
      FitZeroMeanGm(data, init, hyper, GmBounds{}, /*iterations=*/200);
  GaussianMixture merged = MergeSimilarComponents(fit, 2.0);
  ASSERT_EQ(merged.num_components(), 2)
      << "fit: " << fit.ToString() << " merged: " << merged.ToString();
  // Small-variance (noise) component: pi ~ 0.8, lambda ~ 400.
  EXPECT_NEAR(merged.pi()[1], 0.8, 0.05);
  EXPECT_GT(merged.lambda()[1], 200.0);
  EXPECT_LT(merged.lambda()[1], 800.0);
  // Large-variance (signal) component: pi ~ 0.2, lambda ~ 1.
  EXPECT_NEAR(merged.pi()[0], 0.2, 0.05);
  EXPECT_GT(merged.lambda()[0], 0.5);
  EXPECT_LT(merged.lambda()[0], 2.0);
}

TEST(FitTest, SingleGaussianDataGetsOneDominantComponent) {
  // Pure N(0, 0.1^2) data (precision 100). The Dirichlet pseudo-counts keep
  // the extra components alive with a tiny share of the mass (they model
  // the tails), but one component must dominate with roughly the data
  // precision — the paper's "one effective Gaussian learned" outcome.
  Rng rng(43);
  std::vector<double> data;
  for (int i = 0; i < 5000; ++i) data.push_back(rng.NextGaussian(0.0, 0.1));
  GaussianMixture init =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  GmHyperParams hyper =
      GmHyperParams::FromRules(5000, 4, 0.001, 0.01, 0.5);
  GaussianMixture fit =
      FitZeroMeanGm(data, init, hyper, GmBounds{}, /*iterations=*/100);
  GaussianMixture merged = MergeSimilarComponents(fit, 2.0, /*pi_drop=*/0.05);
  std::size_t top = 0;
  for (std::size_t k = 1; k < merged.pi().size(); ++k) {
    if (merged.pi()[k] > merged.pi()[top]) top = k;
  }
  EXPECT_GT(merged.pi()[top], 0.85) << fit.ToString();
  EXPECT_GT(merged.lambda()[top], 50.0) << fit.ToString();
  EXPECT_LT(merged.lambda()[top], 150.0) << fit.ToString();
  EXPECT_EQ(fit.EffectiveComponents(0.05), 1) << fit.ToString();
}

TEST(FitTest, LikelihoodNonDecreasingUnderFlatPrior) {
  Rng rng(44);
  std::vector<double> data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back(rng.NextBernoulli(0.5) ? rng.NextGaussian(0.0, 0.02)
                                          : rng.NextGaussian(0.0, 0.5));
  }
  GaussianMixture gm =
      GaussianMixture::Initialize(3, GmInitMethod::kProportional, 1.0);
  GmHyperParams hyper = FlatHyper(3);
  auto log_lik = [&](const GaussianMixture& g) {
    double acc = 0.0;
    for (double v : data) acc += g.LogDensity(v);
    return acc;
  };
  double prev = log_lik(gm);
  for (int it = 0; it < 30; ++it) {
    GmSuffStats stats;
    stats.Reset(3);
    EStep(gm, data.data(), static_cast<std::int64_t>(data.size()), nullptr,
          &stats);
    MStep(stats, hyper, GmBounds{}, &gm);
    double cur = log_lik(gm);
    EXPECT_GE(cur, prev - 1e-6) << "iteration " << it;
    prev = cur;
  }
}

}  // namespace
}  // namespace gmreg
