// Property-style invariant tests of the GM/EM core over randomized inputs:
// the structural facts that must hold for ANY data the training loop feeds
// the regularizer, not just hand-picked fixtures. Run under both serial and
// sharded execution (see gm_parallel_test.cc for the determinism side).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/em.h"
#include "core/gm_regularizer.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace gmreg {
namespace {

// Flat prior (a=1, b=0, alpha=1): EM maximizes the pure likelihood, which
// makes the monotone-improvement property of EM exact.
GmHyperParams FlatHyper(int k) {
  GmHyperParams h;
  h.a = 1.0;
  h.b = 0.0;
  h.alpha.assign(static_cast<std::size_t>(k), 1.0);
  return h;
}

std::vector<double> RandomValues(std::int64_t n, Rng* rng, double spread) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) {
    x = rng->NextBernoulli(0.7) ? rng->NextGaussian(0.0, 0.02 * spread)
                                : rng->NextGaussian(0.0, spread);
  }
  return v;
}

double NegLogLikelihood(const std::vector<double>& values,
                        const GaussianMixture& gm) {
  double nll = 0.0;
  for (double x : values) nll -= gm.LogDensity(x);
  return nll;
}

// ---------------------------------------------------------------------------
// Responsibilities are a probability distribution over components for every
// input, including x = 0 and values far out in the tails.

TEST(ResponsibilityInvariantsTest, SumToOneAndNonNegative) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    int k = 1 + static_cast<int>(rng.NextUniform(0.0, 6.0));
    std::vector<double> pi(static_cast<std::size_t>(k));
    std::vector<double> lambda(static_cast<std::size_t>(k));
    double pi_sum = 0.0;
    for (int j = 0; j < k; ++j) {
      auto js = static_cast<std::size_t>(j);
      pi[js] = rng.NextUniform(0.05, 1.0);
      pi_sum += pi[js];
      lambda[js] = std::exp(rng.NextUniform(-3.0, 6.0));
    }
    for (double& p : pi) p /= pi_sum;
    GaussianMixture gm(pi, lambda);
    std::vector<double> probes = {0.0, 1e-30, -1e-30, 0.5, -0.5, 30.0, -30.0};
    for (int i = 0; i < 50; ++i) probes.push_back(rng.NextGaussian(0.0, 2.0));
    std::vector<double> r(static_cast<std::size_t>(k));
    for (double x : probes) {
      gm.Responsibilities(x, r.data());
      double sum = 0.0;
      for (int j = 0; j < k; ++j) {
        auto js = static_cast<std::size_t>(j);
        EXPECT_GE(r[js], 0.0) << "seed " << seed << " x=" << x;
        EXPECT_LE(r[js], 1.0 + 1e-12) << "seed " << seed << " x=" << x;
        sum += r[js];
      }
      EXPECT_NEAR(sum, 1.0, 1e-12) << "seed " << seed << " x=" << x;
    }
  }
}

// ---------------------------------------------------------------------------
// The M-step output stays a valid mixture: pi on the simplex, respecting the
// pi floor, lambda inside the configured bounds — for adversarial data too.

TEST(MStepInvariantsTest, PiSumsToOneAndRespectsFloor) {
  GmBounds bounds;
  bounds.pi_floor = 1e-4;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    GaussianMixture gm =
        GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
    // Data concentrated at zero starves the wide components, pushing their
    // pi toward the floor.
    std::vector<double> values = RandomValues(4000, &rng, 0.001);
    GmHyperParams hyper = GmHyperParams::FromRules(
        static_cast<std::int64_t>(values.size()), 4, 0.001, 0.01, 0.5);
    for (int it = 0; it < 10; ++it) {
      gm = FitZeroMeanGm(values, gm, hyper, bounds, 1);
      double sum = 0.0;
      for (double p : gm.pi()) {
        // The floor is applied before renormalization, so allow the
        // normalizer's small shrink.
        EXPECT_GE(p, bounds.pi_floor * 0.99) << "seed " << seed << " it " << it;
        sum += p;
      }
      EXPECT_NEAR(sum, 1.0, 1e-12) << "seed " << seed << " it " << it;
    }
  }
}

TEST(MStepInvariantsTest, LambdaStaysWithinBounds) {
  GmBounds tight;
  tight.lambda_min = 1e-2;
  tight.lambda_max = 1e2;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    GaussianMixture gm =
        GaussianMixture::Initialize(3, GmInitMethod::kLinear, 1.0);
    // Adversarial extremes: near-constant-zero data drives lambda -> inf,
    // huge-spread data drives lambda -> 0; the clamp must hold in both.
    std::vector<double> values =
        RandomValues(2000, &rng, seed % 2 == 0 ? 1e-6 : 1e4);
    for (int it = 0; it < 8; ++it) {
      gm = FitZeroMeanGm(values, gm, FlatHyper(3), tight, 1);
      for (double l : gm.lambda()) {
        EXPECT_GE(l, tight.lambda_min) << "seed " << seed << " it " << it;
        EXPECT_LE(l, tight.lambda_max) << "seed " << seed << " it " << it;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// EM monotonicity: with a flat prior and inactive bounds, every
// EStep+MStep alternation must not increase the negative log-likelihood.

TEST(EmMonotonicityTest, NegLogLikelihoodNeverIncreases) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    std::vector<double> values = RandomValues(3000, &rng, 1.0);
    GaussianMixture gm =
        GaussianMixture::Initialize(4, GmInitMethod::kLinear, 5.0);
    double prev = NegLogLikelihood(values, gm);
    for (int it = 0; it < 15; ++it) {
      gm = FitZeroMeanGm(values, gm, FlatHyper(4), GmBounds{}, 1);
      double cur = NegLogLikelihood(values, gm);
      // EM guarantees monotone improvement; the epsilon absorbs float
      // round-off near convergence.
      EXPECT_LE(cur, prev + 1e-9 * std::fabs(prev))
          << "seed " << seed << " iteration " << it;
      prev = cur;
    }
  }
}

// The same property through the training-facing API: repeated M-steps on a
// fixed weight tensor must not increase the regularizer's Penalty.

TEST(EmMonotonicityTest, PenaltyNonIncreasingUnderRepeatedUptGmParam) {
  constexpr std::int64_t kN = 20000;
  Rng rng(17);
  Tensor w({kN});
  for (std::int64_t i = 0; i < kN; ++i) {
    w[i] = static_cast<float>(rng.NextBernoulli(0.8)
                                  ? rng.NextGaussian(0.0, 0.05)
                                  : rng.NextGaussian(0.0, 0.8));
  }
  GmOptions opts;
  // Flat-ish hyper prior so the EM objective and Penalty (-sum log p) agree
  // up to the weak prior terms; the trend must still be non-increasing to
  // the tolerance below on stationary data.
  opts.gamma = 1e-7;
  opts.a_factor = 0.0;
  opts.alpha_exponent = 0.0;
  GmRegularizer reg("w", kN, opts);
  double prev = reg.Penalty(w);
  for (int it = 0; it < 12; ++it) {
    reg.UptGmParam(w);
    double cur = reg.Penalty(w);
    EXPECT_LE(cur, prev + 1e-6 * std::fabs(prev)) << "iteration " << it;
    prev = cur;
  }
}

// ---------------------------------------------------------------------------
// greg consistency: the fused E-step's greg must equal the mixture's own
// per-element RegGradient for every element (two independent code paths).

TEST(GregConsistencyTest, EStepGregMatchesPointwiseRegGradient) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    constexpr std::int64_t kN = 3000;
    std::vector<float> w(static_cast<std::size_t>(kN));
    for (float& x : w) {
      x = static_cast<float>(rng.NextGaussian(0.0, 0.5));
    }
    GaussianMixture gm =
        GaussianMixture::Initialize(4, GmInitMethod::kProportional, 2.0);
    std::vector<float> greg(static_cast<std::size_t>(kN));
    EStep(gm, w.data(), kN, greg.data(), nullptr);
    for (std::int64_t i = 0; i < kN; ++i) {
      auto is = static_cast<std::size_t>(i);
      double expect = gm.RegGradient(static_cast<double>(w[is]));
      EXPECT_NEAR(greg[is], expect,
                  1e-6 * std::max(1.0, std::fabs(expect)))
          << "seed " << seed << " element " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// LazySchedule validation (regression for the interval-zero divide): a
// schedule with greg_interval or gm_interval of 0 used to reach the modulo
// in ShouldUpdate* and crash there; now construction aborts with a check.

using LazyScheduleDeathTest = ::testing::Test;

TEST(LazyScheduleDeathTest, RejectsZeroGregInterval) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  GmOptions opts;
  opts.lazy.greg_interval = 0;
  EXPECT_DEATH(GmRegularizer("w", 16, opts), "greg_interval");
}

TEST(LazyScheduleDeathTest, RejectsZeroGmInterval) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  GmOptions opts;
  opts.lazy.gm_interval = 0;
  EXPECT_DEATH(GmRegularizer("w", 16, opts), "gm_interval");
}

TEST(LazyScheduleDeathTest, RejectsNegativeWarmup) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  GmOptions opts;
  opts.lazy.warmup_epochs = -1;
  EXPECT_DEATH(GmRegularizer("w", 16, opts), "warmup_epochs");
}

TEST(LazyScheduleTest, ValidScheduleStillWorksAtIntervalOne) {
  GmOptions opts;
  opts.lazy.warmup_epochs = 0;
  opts.lazy.greg_interval = 1;
  opts.lazy.gm_interval = 1;
  GmRegularizer reg("w", 64, opts);
  Tensor w({64}), grad({64});
  Rng rng(3);
  for (std::int64_t i = 0; i < 64; ++i) {
    w[i] = static_cast<float>(rng.NextGaussian(0.0, 0.3));
  }
  for (std::int64_t it = 0; it < 4; ++it) {
    reg.AccumulateGradient(w, it, /*epoch=*/5, 1.0, &grad);
  }
  EXPECT_EQ(reg.estep_count(), 4);
  EXPECT_EQ(reg.mstep_count(), 4);
}

}  // namespace
}  // namespace gmreg
