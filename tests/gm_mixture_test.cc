#include <cmath>

#include "core/gaussian_mixture.h"
#include "core/hyper.h"
#include "core/merge.h"
#include "gtest/gtest.h"

namespace gmreg {
namespace {

TEST(GaussianMixtureTest, SingleComponentIsGaussianDensity) {
  GaussianMixture gm({1.0}, {4.0});  // precision 4 => stddev 0.5
  // N(0 | 0, var=0.25) = 1/sqrt(2*pi*0.25)
  EXPECT_NEAR(gm.Density(0.0), 1.0 / std::sqrt(2.0 * M_PI * 0.25), 1e-9);
  EXPECT_NEAR(gm.Density(0.5),
              std::exp(-0.5) / std::sqrt(2.0 * M_PI * 0.25), 1e-9);
}

TEST(GaussianMixtureTest, DensityIntegratesToOne) {
  GaussianMixture gm({0.3, 0.7}, {0.5, 50.0});
  double integral = 0.0;
  double dx = 1e-3;
  for (double x = -20.0; x <= 20.0; x += dx) {
    integral += gm.Density(x) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(GaussianMixtureTest, PiRenormalizedOnConstruction) {
  GaussianMixture gm({2.0, 6.0}, {1.0, 1.0});
  EXPECT_NEAR(gm.pi()[0], 0.25, 1e-12);
  EXPECT_NEAR(gm.pi()[1], 0.75, 1e-12);
}

class ResponsibilityTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ResponsibilityTest, SumToOneAndNonNegative) {
  auto [x, spread] = GetParam();
  GaussianMixture gm({0.1, 0.2, 0.3, 0.4},
                     {1.0, 1.0 * spread, 2.0 * spread, 10.0 * spread});
  double r[4];
  gm.Responsibilities(x, r);
  double total = 0.0;
  for (double v : r) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ResponsibilityTest,
    ::testing::Combine(::testing::Values(-50.0, -1.0, -0.01, 0.0, 0.01, 1.0,
                                         50.0),
                       ::testing::Values(1.0, 10.0, 1000.0)));

TEST(GaussianMixtureTest, ResponsibilityMatchesBayesRule) {
  GaussianMixture gm({0.4, 0.6}, {1.0, 25.0});
  double x = 0.3;
  auto normal = [](double v, double lambda) {
    return std::sqrt(lambda / (2.0 * M_PI)) *
           std::exp(-0.5 * lambda * v * v);
  };
  double p0 = 0.4 * normal(x, 1.0);
  double p1 = 0.6 * normal(x, 25.0);
  double r[2];
  gm.Responsibilities(x, r);
  EXPECT_NEAR(r[0], p0 / (p0 + p1), 1e-12);
  EXPECT_NEAR(r[1], p1 / (p0 + p1), 1e-12);
}

TEST(GaussianMixtureTest, LargePrecisionComponentDominatesNearZero) {
  // Sec. III-C2: near zero the largest-precision component dominates, so
  // small weights get strong regularization; far from zero the
  // small-precision (large-variance) component takes over.
  GaussianMixture gm({0.5, 0.5}, {1.0, 100.0});
  double r[2];
  gm.Responsibilities(0.01, r);
  EXPECT_GT(r[1], 0.9);
  gm.Responsibilities(1.0, r);
  EXPECT_GT(r[0], 0.9);
}

TEST(GaussianMixtureTest, RegGradientMatchesNumericLogDensity) {
  GaussianMixture gm({0.3, 0.7}, {0.5, 40.0});
  double eps = 1e-6;
  for (double x : {-2.0, -0.3, -0.05, 0.05, 0.7, 3.0}) {
    double numeric =
        -(gm.LogDensity(x + eps) - gm.LogDensity(x - eps)) / (2 * eps);
    EXPECT_NEAR(gm.RegGradient(x), numeric, 1e-4 + 1e-4 * std::fabs(numeric))
        << "x=" << x;
  }
}

TEST(GaussianMixtureTest, RegGradientStrongerForSmallWeights) {
  // The effective per-unit shrinkage greg/x decreases with |x|: noisy
  // (small) weights are regularized harder than useful (large) ones.
  GaussianMixture gm({0.3, 0.7}, {1.0, 200.0});
  double shrink_small = gm.RegGradient(0.02) / 0.02;
  double shrink_large = gm.RegGradient(1.5) / 1.5;
  EXPECT_GT(shrink_small, 50.0 * shrink_large);
}

TEST(GaussianMixtureTest, LogDensityStableAtExtremes) {
  GaussianMixture gm({0.5, 0.5}, {1e-4, 1e6});
  EXPECT_TRUE(std::isfinite(gm.LogDensity(0.0)));
  EXPECT_TRUE(std::isfinite(gm.LogDensity(1e3)));
  EXPECT_TRUE(std::isfinite(gm.LogDensity(-1e3)));
  double r[2];
  gm.Responsibilities(1e3, r);
  EXPECT_NEAR(r[0] + r[1], 1.0, 1e-12);
}

TEST(GaussianMixtureTest, EffectiveComponents) {
  GaussianMixture gm({0.005, 0.495, 0.5}, {1.0, 10.0, 100.0});
  EXPECT_EQ(gm.EffectiveComponents(0.01), 2);
  EXPECT_EQ(gm.EffectiveComponents(0.001), 3);
}

TEST(GmInitTest, IdenticalMethod) {
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kIdentical, 10.0);
  for (double l : gm.lambda()) EXPECT_DOUBLE_EQ(l, 10.0);
  for (double p : gm.pi()) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(GmInitTest, LinearMethodSpansMinToKMin) {
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  EXPECT_DOUBLE_EQ(gm.lambda()[0], 10.0);
  EXPECT_DOUBLE_EQ(gm.lambda()[3], 40.0);
  EXPECT_DOUBLE_EQ(gm.lambda()[1], 20.0);
}

TEST(GmInitTest, ProportionalMethodDoubles) {
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kProportional, 10.0);
  EXPECT_DOUBLE_EQ(gm.lambda()[0], 10.0);
  EXPECT_DOUBLE_EQ(gm.lambda()[1], 20.0);
  EXPECT_DOUBLE_EQ(gm.lambda()[2], 40.0);
  EXPECT_DOUBLE_EQ(gm.lambda()[3], 80.0);
}

TEST(GmInitTest, SingleComponentAllMethodsAgree) {
  for (GmInitMethod m : {GmInitMethod::kIdentical, GmInitMethod::kLinear,
                         GmInitMethod::kProportional}) {
    GaussianMixture gm = GaussianMixture::Initialize(1, m, 5.0);
    EXPECT_DOUBLE_EQ(gm.lambda()[0], 5.0);
  }
}

TEST(GmInitTest, ParseRoundTrips) {
  for (GmInitMethod m : {GmInitMethod::kIdentical, GmInitMethod::kLinear,
                         GmInitMethod::kProportional}) {
    EXPECT_EQ(ParseGmInitMethod(GmInitMethodName(m)), m);
  }
}

TEST(HyperTest, RulesOfSectionVB1) {
  GmHyperParams h = GmHyperParams::FromRules(/*num_dims=*/10000,
                                             /*num_components=*/4,
                                             /*gamma=*/0.005,
                                             /*a_factor=*/0.01,
                                             /*alpha_exponent=*/0.5);
  EXPECT_DOUBLE_EQ(h.b, 50.0);
  EXPECT_DOUBLE_EQ(h.a, 1.5);
  ASSERT_EQ(h.alpha.size(), 4u);
  EXPECT_DOUBLE_EQ(h.alpha[0], 100.0);  // 10000^0.5
  EXPECT_DOUBLE_EQ(h.AlphaSumMinusK(), 4 * 99.0);
}

TEST(HyperTest, GammaGridMatchesPaper) {
  const auto& grid = GammaGrid();
  ASSERT_EQ(grid.size(), 8u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0002);
  EXPECT_DOUBLE_EQ(grid.back(), 0.05);
}

TEST(MergeTest, IdenticalComponentsCollapse) {
  GaussianMixture gm({0.25, 0.25, 0.25, 0.25}, {10.0, 10.0, 10.0, 10.0});
  GaussianMixture merged = MergeSimilarComponents(gm);
  ASSERT_EQ(merged.num_components(), 1);
  EXPECT_NEAR(merged.pi()[0], 1.0, 1e-12);
  EXPECT_NEAR(merged.lambda()[0], 10.0, 1e-9);
}

TEST(MergeTest, WellSeparatedComponentsSurvive) {
  GaussianMixture gm({0.3, 0.3, 0.4}, {1.0, 100.0, 10000.0});
  GaussianMixture merged = MergeSimilarComponents(gm);
  EXPECT_EQ(merged.num_components(), 3);
}

TEST(MergeTest, NearbyPairMergesWithWeightedVariance) {
  GaussianMixture gm({0.5, 0.5}, {10.0, 12.0});
  GaussianMixture merged = MergeSimilarComponents(gm, /*ratio=*/1.5);
  ASSERT_EQ(merged.num_components(), 1);
  // Merged variance = (0.5/10 + 0.5/12), precision its inverse.
  double var = 0.5 / 10.0 + 0.5 / 12.0;
  EXPECT_NEAR(merged.lambda()[0], 1.0 / var, 1e-9);
}

TEST(MergeTest, TinyComponentFoldedIntoNeighbour) {
  GaussianMixture gm({0.004, 0.496, 0.5}, {1.0, 50.0, 60.0});
  GaussianMixture merged = MergeSimilarComponents(gm, 1.5, 0.01);
  // 50/60 merge by ratio; the 0.004 component disappears into the rest.
  EXPECT_EQ(merged.num_components(), 1);
  EXPECT_NEAR(merged.pi()[0], 1.0, 1e-12);
}

}  // namespace
}  // namespace gmreg
