// Numerical-consistency tests: the log-space fast paths must agree with
// naive direct evaluation wherever the naive form does not under/overflow.

#include <cmath>

#include "core/em.h"
#include "core/gaussian_mixture.h"
#include "core/hyper.h"
#include "gtest/gtest.h"

namespace gmreg {
namespace {

double NaiveDensity(const GaussianMixture& gm, double x) {
  double acc = 0.0;
  for (int k = 0; k < gm.num_components(); ++k) {
    auto ks = static_cast<std::size_t>(k);
    double lambda = gm.lambda()[ks];
    acc += gm.pi()[ks] * std::sqrt(lambda / (2.0 * M_PI)) *
           std::exp(-0.5 * lambda * x * x);
  }
  return acc;
}

class NumericAgreementTest : public ::testing::TestWithParam<double> {};

TEST_P(NumericAgreementTest, LogDensityMatchesNaive) {
  double x = GetParam();
  GaussianMixture gm({0.25, 0.35, 0.4}, {0.5, 20.0, 900.0});
  double naive = NaiveDensity(gm, x);
  if (naive <= 0.0) return;  // naive underflowed; fast path is the point
  EXPECT_NEAR(gm.LogDensity(x), std::log(naive),
              1e-10 + 1e-10 * std::fabs(std::log(naive)));
  EXPECT_NEAR(gm.Density(x), naive, 1e-12 + 1e-9 * naive);
}

TEST_P(NumericAgreementTest, ResponsibilitiesMatchNaiveBayes) {
  double x = GetParam();
  GaussianMixture gm({0.25, 0.35, 0.4}, {0.5, 20.0, 900.0});
  double denom = NaiveDensity(gm, x);
  if (denom <= 1e-290) return;
  double r[3];
  gm.Responsibilities(x, r);
  for (int k = 0; k < 3; ++k) {
    auto ks = static_cast<std::size_t>(k);
    double lambda = gm.lambda()[ks];
    double naive_rk = gm.pi()[ks] * std::sqrt(lambda / (2.0 * M_PI)) *
                      std::exp(-0.5 * lambda * x * x) / denom;
    EXPECT_NEAR(r[k], naive_rk, 1e-10) << "k=" << k << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(XSweep, NumericAgreementTest,
                         ::testing::Values(0.0, 1e-6, 0.003, 0.05, 0.2, 0.7,
                                           1.5, 4.0, -0.05, -1.5));

TEST(NumericTest, EStepSingleElementMatchesScalarApi) {
  GaussianMixture gm({0.4, 0.6}, {3.0, 250.0});
  for (double x : {-1.2, -0.01, 0.0, 0.3}) {
    auto xf = static_cast<float>(x);
    float greg = 0.0f;
    GmSuffStats stats;
    stats.Reset(2);
    EStep(gm, &xf, 1, &greg, &stats);
    EXPECT_NEAR(greg, gm.RegGradient(xf), 1e-6);
    double r[2];
    gm.Responsibilities(xf, r);
    EXPECT_NEAR(stats.resp_sum[0], r[0], 1e-12);
    EXPECT_NEAR(stats.resp_w2_sum[1],
                r[1] * static_cast<double>(xf) * xf, 1e-12);
  }
}

class HyperRuleTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(HyperRuleTest, RulesScaleWithM) {
  std::int64_t m = GetParam();
  GmHyperParams h = GmHyperParams::FromRules(m, 4, 0.002, 0.1, 0.5);
  EXPECT_DOUBLE_EQ(h.b, 0.002 * static_cast<double>(m));
  EXPECT_DOUBLE_EQ(h.a, 1.0 + 0.1 * h.b);
  EXPECT_DOUBLE_EQ(h.alpha[0], std::sqrt(static_cast<double>(m)));
  // alpha >= 1 keeps Eq. 17's numerator non-negative for every M >= 1.
  EXPECT_GE(h.alpha[0], 1.0);
}

INSTANTIATE_TEST_SUITE_P(MSweep, HyperRuleTest,
                         ::testing::Values(1, 18, 81, 375, 89440, 270896));

TEST(NumericTest, PenaltyStyleSumMatchesElementwiseLogDensity) {
  GaussianMixture gm({0.3, 0.7}, {1.0, 100.0});
  std::vector<double> xs = {-0.4, 0.0, 0.02, 1.3};
  double sum_log = 0.0;
  for (double x : xs) sum_log += gm.LogDensity(x);
  double elementwise = 0.0;
  for (double x : xs) elementwise += std::log(NaiveDensity(gm, x));
  EXPECT_NEAR(sum_log, elementwise, 1e-9);
}

TEST(NumericTest, DensityMassSplitsAtCrossover) {
  // At the responsibility crossover point both components contribute the
  // same probability mass by definition; sanity-check via the naive form.
  GaussianMixture gm({0.5, 0.5}, {1.0, 100.0});
  // r0 = r1 where pi_0 N(x|0,l0) = pi_1 N(x|0,l1):
  // x^2 = log(l1/l0) / (l1 - l0)  (equal pi).
  double x = std::sqrt(std::log(100.0) / 99.0);
  double r[2];
  gm.Responsibilities(x, r);
  EXPECT_NEAR(r[0], 0.5, 1e-9);
  EXPECT_NEAR(r[1], 0.5, 1e-9);
}

}  // namespace
}  // namespace gmreg
