// Determinism and coverage tests of the parallel execution layer
// (util/parallel.h) and the sharded E-step/M-step built on it. The
// contract under test (docs/PARALLELISM.md):
//  * greg written by a parallel E-step is bitwise identical to serial;
//  * shard statistics merge in fixed shard order, so a given thread budget
//    is bitwise reproducible run-to-run and matches serial within 1e-12;
//  * ranges smaller than the grain (and empty ranges) stay serial and
//    behave identically.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/em.h"
#include "core/gm_regularizer.h"
#include "gtest/gtest.h"
#include "tensor/tensor.h"
#include "testutil/gmreg_testutil.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gmreg {
namespace {

// The canonical bimodal weight fixture now lives in gmreg_testutil — the
// property suite and bench drivers draw from the same distribution.
using ::gmreg::testing::MakeBimodalWeights;

std::vector<float> MakeWeights(std::int64_t n, std::uint64_t seed) {
  return MakeBimodalWeights(n, seed);
}

Tensor MakeWeightTensor(std::int64_t n, std::uint64_t seed) {
  return ::gmreg::testing::MakeBimodalWeightTensor(n, seed);
}

// ---------------------------------------------------------------------------
// ParallelFor / ParallelReduce / ComputeNumShards

TEST(ComputeNumShardsTest, RespectsGrainAndThreadBudget) {
  EXPECT_EQ(ComputeNumShards(0, 64, 4), 0);
  EXPECT_EQ(ComputeNumShards(-5, 64, 4), 0);
  EXPECT_EQ(ComputeNumShards(1, 64, 4), 1);
  EXPECT_EQ(ComputeNumShards(64, 64, 4), 1);   // exactly one grain
  EXPECT_EQ(ComputeNumShards(65, 64, 4), 2);   // just over one grain
  EXPECT_EQ(ComputeNumShards(std::int64_t{1} << 20, 64, 4), 4);
  EXPECT_EQ(ComputeNumShards(1000, 1, 1), 1);  // serial budget wins
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::int64_t kN = 100003;  // prime: uneven shard boundaries
  std::vector<int> hits(kN, 0);
  ParallelFor(
      0, kN, /*grain=*/64,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
      },
      /*num_threads=*/4);
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyAndSingleElementRanges) {
  int calls = 0;
  ParallelFor(0, 0, 16, [&](std::int64_t, std::int64_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  ParallelFor(
      7, 8, 16,
      [&](std::int64_t b, std::int64_t e) {
        EXPECT_EQ(b, 7);
        EXPECT_EQ(e, 8);
        ++calls;
      },
      4);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SerialBudgetRunsOnCallingThread) {
  std::thread::id caller = std::this_thread::get_id();
  ParallelFor(
      0, std::int64_t{1} << 16, /*grain=*/16,
      [&](std::int64_t, std::int64_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
      },
      /*num_threads=*/1);
}

TEST(ParallelForTest, ShardBoundariesAreDeterministic) {
  auto collect = [](int threads) {
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges(16);
    std::atomic<int> used{0};
    ParallelForShards(
        0, 1000, /*grain=*/10,
        [&](int s, std::int64_t b, std::int64_t e) {
          ranges[static_cast<std::size_t>(s)] = {b, e};
          used.fetch_add(1);
        },
        threads);
    ranges.resize(static_cast<std::size_t>(used.load()));
    return ranges;
  };
  auto a = collect(4);
  auto b = collect(4);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a, b);
  // Contiguous cover of [0, 1000) in shard order.
  std::int64_t expect_begin = 0;
  for (const auto& [rb, re] : a) {
    EXPECT_EQ(rb, expect_begin);
    expect_begin = re;
  }
  EXPECT_EQ(expect_begin, 1000);
}

TEST(ParallelReduceTest, MatchesSerialSumExactlyOnIntegers) {
  constexpr std::int64_t kN = 100000;
  auto map = [](std::int64_t b, std::int64_t e) {
    std::int64_t acc = 0;
    for (std::int64_t i = b; i < e; ++i) acc += i;
    return acc;
  };
  auto reduce = [](std::int64_t a, std::int64_t b) { return a + b; };
  std::int64_t serial = ParallelReduce(std::int64_t{0}, kN, std::int64_t{1000},
                                       std::int64_t{0}, map, reduce, 1);
  std::int64_t parallel = ParallelReduce(std::int64_t{0}, kN, std::int64_t{1000},
                                         std::int64_t{0}, map, reduce, 4);
  EXPECT_EQ(serial, kN * (kN - 1) / 2);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelReduceTest, ShardOrderReductionIsBitwiseReproducible) {
  std::vector<float> w = MakeWeights(1 << 16, 5);
  auto run = [&] {
    return ParallelReduce(
        std::int64_t{0}, static_cast<std::int64_t>(w.size()),
        std::int64_t{1024}, 0.0,
        [&](std::int64_t b, std::int64_t e) {
          double acc = 0.0;
          for (std::int64_t i = b; i < e; ++i) {
            acc += std::exp(-static_cast<double>(w[static_cast<std::size_t>(i)]) *
                            w[static_cast<std::size_t>(i)]);
          }
          return acc;
        },
        [](double a, double b) { return a + b; }, 4);
  };
  double first = run();
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(run(), first) << "repetition " << rep;
  }
}

TEST(ParallelNestingTest, NestedParallelCallsFallBackToSerial) {
  std::vector<int> hits(4096, 0);
  ParallelFor(
      0, 4096, /*grain=*/64,
      [&](std::int64_t b, std::int64_t e) {
        // Inner region must serialize instead of deadlocking the pool.
        EXPECT_TRUE(InParallelRegion());
        ParallelFor(
            b, e, 1,
            [&](std::int64_t ib, std::int64_t ie) {
              for (std::int64_t i = ib; i < ie; ++i) {
                ++hits[static_cast<std::size_t>(i)];
              }
            },
            4);
      },
      4);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// Sharded E-step determinism, across sizes below and above the grain.

class EStepDeterminismTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(EStepDeterminismTest, GregBitwiseMatchesSerial) {
  std::int64_t n = GetParam();
  std::vector<float> w = MakeWeights(n, 3);
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  std::vector<float> greg_serial(static_cast<std::size_t>(n), -1.0f);
  std::vector<float> greg_parallel(static_cast<std::size_t>(n), -2.0f);
  EStep(gm, w.data(), n, greg_serial.data(), nullptr, /*num_threads=*/1);
  EStep(gm, w.data(), n, greg_parallel.data(), nullptr, /*num_threads=*/4);
  for (std::int64_t i = 0; i < n; ++i) {
    // Exact float equality: disjoint slices + identical per-element math.
    ASSERT_EQ(greg_serial[static_cast<std::size_t>(i)],
              greg_parallel[static_cast<std::size_t>(i)])
        << "element " << i << " of " << n;
  }
}

TEST_P(EStepDeterminismTest, SuffStatsMatchSerialWithinTolerance) {
  std::int64_t n = GetParam();
  std::vector<float> w = MakeWeights(n, 9);
  GaussianMixture gm =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  GmSuffStats serial, parallel, parallel_again;
  serial.Reset(4);
  parallel.Reset(4);
  parallel_again.Reset(4);
  EStep(gm, w.data(), n, nullptr, &serial, /*num_threads=*/1);
  EStep(gm, w.data(), n, nullptr, &parallel, /*num_threads=*/4);
  EStep(gm, w.data(), n, nullptr, &parallel_again, /*num_threads=*/4);
  EXPECT_EQ(serial.count, n);
  EXPECT_EQ(parallel.count, n);
  for (int k = 0; k < 4; ++k) {
    auto ks = static_cast<std::size_t>(k);
    // Serial vs parallel differ only in double summation order: 1e-12 rel.
    EXPECT_NEAR(serial.resp_sum[ks], parallel.resp_sum[ks],
                1e-12 * std::max(1.0, std::fabs(serial.resp_sum[ks])));
    EXPECT_NEAR(serial.resp_w2_sum[ks], parallel.resp_w2_sum[ks],
                1e-12 * std::max(1.0, std::fabs(serial.resp_w2_sum[ks])));
    // Fixed-shard-order reduction: repeated parallel runs are bitwise equal.
    EXPECT_EQ(parallel.resp_sum[ks], parallel_again.resp_sum[ks]);
    EXPECT_EQ(parallel.resp_w2_sum[ks], parallel_again.resp_w2_sum[ks]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EStepDeterminismTest,
                         ::testing::Values(std::int64_t{0}, std::int64_t{1},
                                           std::int64_t{7}, std::int64_t{1000},
                                           kEStepGrain - 1, kEStepGrain + 1,
                                           std::int64_t{1} << 17));

// ---------------------------------------------------------------------------
// GmRegularizer: CalcRegGrad / UptGmParam / Penalty under a thread budget.

GmOptions ThreadedOptions(int num_threads) {
  GmOptions opts;
  opts.num_threads = num_threads;
  return opts;
}

TEST(GmRegularizerParallelTest, CalcRegGradBitwiseMatchesSerial) {
  constexpr std::int64_t kN = (std::int64_t{1} << 17) + 13;
  Tensor w = MakeWeightTensor(kN, 21);
  GmRegularizer serial("w", kN, ThreadedOptions(1));
  GmRegularizer parallel("w", kN, ThreadedOptions(4));
  serial.CalcRegGrad(w);
  parallel.CalcRegGrad(w);
  EXPECT_EQ(serial.estep_count(), 1);
  EXPECT_EQ(parallel.num_threads_resolved(), 4);
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(serial.greg()[i], parallel.greg()[i]) << "element " << i;
  }
}

TEST(GmRegularizerParallelTest, UptGmParamMatchesSerialWithinTolerance) {
  constexpr std::int64_t kN = (std::int64_t{1} << 17) + 13;
  Tensor w = MakeWeightTensor(kN, 22);
  GmRegularizer serial("w", kN, ThreadedOptions(1));
  GmRegularizer parallel("w", kN, ThreadedOptions(4));
  for (int step = 0; step < 3; ++step) {
    serial.UptGmParam(w);
    parallel.UptGmParam(w);
    for (int k = 0; k < serial.mixture().num_components(); ++k) {
      auto ks = static_cast<std::size_t>(k);
      EXPECT_NEAR(serial.mixture().pi()[ks], parallel.mixture().pi()[ks],
                  1e-12)
          << "step " << step << " component " << k;
      EXPECT_NEAR(serial.mixture().lambda()[ks],
                  parallel.mixture().lambda()[ks],
                  1e-12 * std::max(1.0, serial.mixture().lambda()[ks]))
          << "step " << step << " component " << k;
    }
  }
}

TEST(GmRegularizerParallelTest, ParallelRunsAreBitwiseReproducible) {
  constexpr std::int64_t kN = (std::int64_t{1} << 17) + 13;
  Tensor w = MakeWeightTensor(kN, 23);
  GmRegularizer a("w", kN, ThreadedOptions(4));
  GmRegularizer b("w", kN, ThreadedOptions(4));
  for (int step = 0; step < 3; ++step) {
    a.UptGmParam(w);
    b.UptGmParam(w);
    a.CalcRegGrad(w);
    b.CalcRegGrad(w);
  }
  for (int k = 0; k < a.mixture().num_components(); ++k) {
    auto ks = static_cast<std::size_t>(k);
    EXPECT_EQ(a.mixture().pi()[ks], b.mixture().pi()[ks]);
    EXPECT_EQ(a.mixture().lambda()[ks], b.mixture().lambda()[ks]);
  }
  for (std::int64_t i = 0; i < kN; i += 997) {
    ASSERT_EQ(a.greg()[i], b.greg()[i]) << "element " << i;
  }
  EXPECT_EQ(a.Penalty(w), b.Penalty(w));
}

TEST(GmRegularizerParallelTest, PenaltyMatchesSerialWithinTolerance) {
  constexpr std::int64_t kN = (std::int64_t{1} << 17) + 13;
  Tensor w = MakeWeightTensor(kN, 24);
  GmRegularizer serial("w", kN, ThreadedOptions(1));
  GmRegularizer parallel("w", kN, ThreadedOptions(4));
  double ps = serial.Penalty(w);
  double pp = parallel.Penalty(w);
  EXPECT_NEAR(ps, pp, 1e-12 * std::max(1.0, std::fabs(ps)));
}

TEST(GmRegularizerParallelTest, AccumulateGradientStaysCloseAcrossBudgets) {
  // End-to-end lazy loop: tiny reduction-order differences in the M-step
  // may drift the mixtures apart at the ulp level, so this is a tolerance
  // check, not a bitwise one.
  constexpr std::int64_t kN = (std::int64_t{1} << 15) + 5;
  Tensor w = MakeWeightTensor(kN, 25);
  GmOptions serial_opts = ThreadedOptions(1);
  GmOptions parallel_opts = ThreadedOptions(4);
  serial_opts.lazy.warmup_epochs = parallel_opts.lazy.warmup_epochs = 0;
  serial_opts.lazy.greg_interval = parallel_opts.lazy.greg_interval = 2;
  serial_opts.lazy.gm_interval = parallel_opts.lazy.gm_interval = 3;
  GmRegularizer serial("w", kN, serial_opts);
  GmRegularizer parallel("w", kN, parallel_opts);
  Tensor grad_serial({kN}), grad_parallel({kN});
  for (std::int64_t it = 0; it < 6; ++it) {
    serial.AccumulateGradient(w, it, /*epoch=*/1, 0.5, &grad_serial);
    parallel.AccumulateGradient(w, it, /*epoch=*/1, 0.5, &grad_parallel);
  }
  EXPECT_EQ(serial.estep_count(), parallel.estep_count());
  EXPECT_EQ(serial.mstep_count(), parallel.mstep_count());
  for (std::int64_t i = 0; i < kN; i += 101) {
    ASSERT_NEAR(grad_serial[i], grad_parallel[i],
                1e-5 * std::max(1.0f, std::fabs(grad_serial[i])))
        << "element " << i;
  }
}

TEST(GmRegularizerParallelTest, TimingCountersAdvance) {
  constexpr std::int64_t kN = std::int64_t{1} << 17;
  Tensor w = MakeWeightTensor(kN, 26);
  GmRegularizer reg("w", kN, ThreadedOptions(4));
  EXPECT_EQ(reg.estep_seconds(), 0.0);
  EXPECT_EQ(reg.mstep_seconds(), 0.0);
  reg.CalcRegGrad(w);
  reg.UptGmParam(w);
  EXPECT_GT(reg.estep_seconds(), 0.0);
  EXPECT_GT(reg.mstep_seconds(), 0.0);
  EXPECT_GE(reg.num_threads_resolved(), 1);
}

// ---------------------------------------------------------------------------
// Gradient check (satellite of tests/gradient_check.h): the cached greg of
// CalcRegGrad must equal the central finite difference of Penalty — probed
// on and around shard boundaries to catch any sharding off-by-one.

TEST(GregGradientCheckTest, MatchesFiniteDifferenceOfPenalty) {
  const std::int64_t n = 3 * kEStepGrain + 17;  // 4 uneven shards at 4 threads
  Rng rng(11);
  Tensor w = testing::RandomTensor({n}, &rng);
  GmRegularizer reg("w", n, ThreadedOptions(4));
  reg.UptGmParam(w);  // move the mixture off its init point first
  reg.CalcRegGrad(w);
  const Tensor& greg = reg.greg();

  std::set<std::int64_t> probes = {0,
                                   1,
                                   kEStepGrain - 1,
                                   kEStepGrain,
                                   kEStepGrain + 1,
                                   2 * kEStepGrain - 1,
                                   2 * kEStepGrain,
                                   3 * kEStepGrain,
                                   n - 2,
                                   n - 1};
  for (std::int64_t i = 0; i < n; i += n / 24) probes.insert(i);

  const double eps = 1e-3;
  for (std::int64_t i : probes) {
    float saved = w[i];
    w[i] = static_cast<float>(saved + eps);
    double lp = reg.Penalty(w);
    double wp = static_cast<double>(w[i]);
    w[i] = static_cast<float>(saved - eps);
    double lm = reg.Penalty(w);
    double wm = static_cast<double>(w[i]);
    w[i] = saved;
    double numeric = (lp - lm) / (wp - wm);
    double analytic = static_cast<double>(greg[i]);
    double tol =
        1e-3 * std::max(std::fabs(numeric), std::fabs(analytic)) + 1e-4;
    EXPECT_NEAR(numeric, analytic, tol) << "element " << i;
  }
}

}  // namespace
}  // namespace gmreg
