// Property-based tests of the GM regularization machinery: invariants that
// must hold across swept parameter ranges, not just hand-picked cases.

#include <algorithm>
#include <cmath>

#include "core/em.h"
#include "core/gm_regularizer.h"
#include "core/merge.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace gmreg {
namespace {

// ---------------------------------------------------------------------------
// Mixture invariants under random parameterizations.
// ---------------------------------------------------------------------------

class RandomMixtureTest : public ::testing::TestWithParam<int> {
 protected:
  GaussianMixture MakeRandom(Rng* rng, int k) {
    std::vector<double> pi(static_cast<std::size_t>(k));
    std::vector<double> lambda(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      pi[static_cast<std::size_t>(i)] = rng->NextUniform(0.05, 1.0);
      lambda[static_cast<std::size_t>(i)] =
          std::pow(10.0, rng->NextUniform(-2.0, 4.0));
    }
    return GaussianMixture(std::move(pi), std::move(lambda));
  }
};

TEST_P(RandomMixtureTest, PiAlwaysNormalized) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int rep = 0; rep < 20; ++rep) {
    GaussianMixture gm = MakeRandom(&rng, 2 + GetParam() % 5);
    double total = 0.0;
    for (double p : gm.pi()) total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST_P(RandomMixtureTest, DensitySymmetricAndPeakedAtZero) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
  GaussianMixture gm = MakeRandom(&rng, 3);
  for (double x : {0.01, 0.1, 0.5, 2.0, 10.0}) {
    EXPECT_NEAR(gm.Density(x), gm.Density(-x), 1e-12 + 1e-9 * gm.Density(x));
    // Zero-mean mixture of zero-mean Gaussians is maximal at 0.
    EXPECT_LE(gm.Density(x), gm.Density(0.0) + 1e-12);
  }
}

TEST_P(RandomMixtureTest, RegGradientOddAndSignPreserving) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 71);
  GaussianMixture gm = MakeRandom(&rng, 4);
  for (double x : {0.001, 0.05, 0.3, 1.5, 20.0}) {
    double g = gm.RegGradient(x);
    EXPECT_NEAR(gm.RegGradient(-x), -g, 1e-12 + 1e-9 * std::fabs(g));
    // -log p(|x|) is increasing in |x| for zero-mean mixtures: greg pulls
    // towards zero, never away.
    EXPECT_GE(g, 0.0) << "x=" << x;
  }
}

TEST_P(RandomMixtureTest, SmallestPrecisionDominatesFarFromZero) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 113);
  GaussianMixture gm = MakeRandom(&rng, 4);
  std::size_t widest = 0;
  for (std::size_t k = 1; k < gm.lambda().size(); ++k) {
    if (gm.lambda()[k] < gm.lambda()[widest]) widest = k;
  }
  // Unless another component has (nearly) the same precision, far enough
  // from zero the widest component takes all responsibility.
  double second = 1e300;
  for (std::size_t k = 0; k < gm.lambda().size(); ++k) {
    if (k != widest) second = std::min(second, gm.lambda()[k]);
  }
  if (second / gm.lambda()[widest] < 1.5) return;  // degenerate draw
  double r[8];
  double x = 20.0 / std::sqrt(gm.lambda()[widest]);
  gm.Responsibilities(x, r);
  EXPECT_GT(r[widest], 0.99);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMixtureTest,
                         ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// EM self-consistency: data sampled from a mixture is a near fixed point.
// ---------------------------------------------------------------------------

class SelfConsistencyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SelfConsistencyTest, MStepNearFixedPointOnOwnSample) {
  auto [pi0, lambda_ratio] = GetParam();
  std::vector<double> pi = {pi0, 1.0 - pi0};
  std::vector<double> lambda = {10.0, 10.0 * lambda_ratio};
  GaussianMixture truth(pi, lambda);
  Rng rng(static_cast<std::uint64_t>(pi0 * 1000 + lambda_ratio));
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    std::size_t comp = rng.NextBernoulli(truth.pi()[0]) ? 0u : 1u;
    data.push_back(rng.NextGaussian(0.0, 1.0 / std::sqrt(lambda[comp])));
  }
  // Flat-ish hyper priors so the fixed point is the ML one.
  GmHyperParams hyper;
  hyper.a = 1.0;
  hyper.b = 0.0;
  hyper.alpha = {1.0, 1.0};
  GmSuffStats stats;
  GaussianMixture gm = truth;
  stats.Reset(2);
  EStep(gm, data.data(), static_cast<std::int64_t>(data.size()), nullptr,
        &stats);
  MStep(stats, hyper, GmBounds{}, &gm);
  // One EM step from the truth stays near the truth (sampling noise only).
  EXPECT_NEAR(gm.pi()[0], truth.pi()[0], 0.05);
  EXPECT_NEAR(gm.lambda()[0] / lambda[0], 1.0, 0.25);
  EXPECT_NEAR(gm.lambda()[1] / lambda[1], 1.0, 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SelfConsistencyTest,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(30.0, 100.0, 1000.0)));

// ---------------------------------------------------------------------------
// Merging invariants.
// ---------------------------------------------------------------------------

TEST(MergePropertyTest, PreservesTotalMassAndVariance) {
  Rng rng(5);
  for (int rep = 0; rep < 30; ++rep) {
    int k = 2 + static_cast<int>(rng.NextBounded(5));
    std::vector<double> pi(static_cast<std::size_t>(k));
    std::vector<double> lambda(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      pi[static_cast<std::size_t>(i)] = rng.NextUniform(0.02, 1.0);
      lambda[static_cast<std::size_t>(i)] =
          std::pow(10.0, rng.NextUniform(-1.0, 3.0));
    }
    GaussianMixture gm(pi, lambda);
    GaussianMixture merged = MergeSimilarComponents(gm, 2.0, 0.01);
    double mass = 0.0, var = 0.0, var_orig = 0.0;
    for (std::size_t i = 0; i < merged.pi().size(); ++i) {
      mass += merged.pi()[i];
      var += merged.pi()[i] / merged.lambda()[i];
    }
    for (std::size_t i = 0; i < gm.pi().size(); ++i) {
      var_orig += gm.pi()[i] / gm.lambda()[i];
    }
    EXPECT_NEAR(mass, 1.0, 1e-9);
    EXPECT_NEAR(var, var_orig, 1e-6 + 1e-6 * var_orig) << "rep " << rep;
    EXPECT_LE(merged.num_components(), gm.num_components());
  }
}

TEST(MergePropertyTest, Idempotent) {
  Rng rng(9);
  for (int rep = 0; rep < 30; ++rep) {
    std::vector<double> pi, lambda;
    int k = 2 + static_cast<int>(rng.NextBounded(5));
    for (int i = 0; i < k; ++i) {
      pi.push_back(rng.NextUniform(0.02, 1.0));
      lambda.push_back(std::pow(10.0, rng.NextUniform(-1.0, 3.0)));
    }
    GaussianMixture once = MergeSimilarComponents(
        GaussianMixture(pi, lambda), 2.0, 0.01);
    GaussianMixture twice = MergeSimilarComponents(once, 2.0, 0.01);
    ASSERT_EQ(once.num_components(), twice.num_components()) << "rep " << rep;
    for (int i = 0; i < once.num_components(); ++i) {
      EXPECT_NEAR(once.pi()[static_cast<std::size_t>(i)],
                  twice.pi()[static_cast<std::size_t>(i)], 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// EStep overload agreement and schedule invariants.
// ---------------------------------------------------------------------------

TEST(EStepPropertyTest, FloatAndDoubleOverloadsAgree) {
  Rng rng(13);
  GaussianMixture gm({0.3, 0.7}, {1.0, 300.0});
  std::vector<float> wf(500);
  std::vector<double> wd(500);
  for (std::size_t i = 0; i < wf.size(); ++i) {
    wf[i] = static_cast<float>(rng.NextGaussian(0.0, 0.3));
    wd[i] = wf[i];
  }
  std::vector<float> gf(wf.size());
  std::vector<double> gd(wd.size());
  GmSuffStats sf, sd;
  sf.Reset(2);
  sd.Reset(2);
  EStep(gm, wf.data(), 500, gf.data(), &sf);
  EStep(gm, wd.data(), 500, gd.data(), &sd);
  for (std::size_t i = 0; i < wf.size(); ++i) {
    EXPECT_NEAR(gf[i], gd[i], 1e-3 + 1e-4 * std::fabs(gd[i]));
  }
  EXPECT_NEAR(sf.resp_sum[0], sd.resp_sum[0], 1e-6);
  EXPECT_NEAR(sf.resp_w2_sum[1], sd.resp_w2_sum[1], 1e-6);
}

class SchedulePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SchedulePropertyTest, GmNeverUpdatesMoreOftenThanGreg) {
  // With Ig >= Im (the paper's recommended regime, Sec. V-F2) the M-step
  // fires at most as often as the E-step outside warmup.
  auto [warmup, im, factor] = GetParam();
  LazySchedule lazy;
  lazy.warmup_epochs = warmup;
  lazy.greg_interval = im;
  lazy.gm_interval = static_cast<std::int64_t>(im) * factor;
  int greg = 0, gm = 0;
  for (std::int64_t it = 0; it < 500; ++it) {
    std::int64_t epoch = it / 50;
    greg += lazy.ShouldUpdateGreg(it, epoch);
    gm += lazy.ShouldUpdateGm(it, epoch);
    if (lazy.ShouldUpdateGm(it, epoch) && epoch >= warmup) {
      EXPECT_TRUE(lazy.ShouldUpdateGreg(it, epoch))
          << "M-step without E-step at it=" << it;
    }
  }
  EXPECT_LE(gm, greg);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedulePropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 3),
                       ::testing::Values(1, 5, 20),
                       ::testing::Values(1, 2, 10)));

TEST(GmInitPropertyTest, IdenticalInitCanNeverSplit) {
  // With exactly identical components the responsibilities are 1/K for
  // every observation, so the M-step maps identical components to
  // identical components: the mixture is trapped in a single effective
  // Gaussian forever. This is the mechanism behind the paper's Sec. V-E
  // finding that identical initialization performs worst — linear and
  // proportional initializations pre-break the symmetry.
  Rng rng(21);
  std::vector<double> data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back(rng.NextBernoulli(0.7) ? rng.NextGaussian(0.0, 0.05)
                                          : rng.NextGaussian(0.0, 1.0));
  }
  GmHyperParams hyper = GmHyperParams::FromRules(5000, 4, 0.001, 0.01, 0.5);
  GaussianMixture identical =
      GaussianMixture::Initialize(4, GmInitMethod::kIdentical, 10.0);
  GaussianMixture fit =
      FitZeroMeanGm(data, identical, hyper, GmBounds{}, 50);
  for (int k = 1; k < 4; ++k) {
    auto ks = static_cast<std::size_t>(k);
    EXPECT_DOUBLE_EQ(fit.lambda()[ks], fit.lambda()[0]);
    EXPECT_DOUBLE_EQ(fit.pi()[ks], fit.pi()[0]);
  }
  // The same data under linear initialization DOES split.
  GaussianMixture linear =
      GaussianMixture::Initialize(4, GmInitMethod::kLinear, 10.0);
  GaussianMixture fit_linear =
      FitZeroMeanGm(data, linear, hyper, GmBounds{}, 50);
  double lo = *std::min_element(fit_linear.lambda().begin(),
                                fit_linear.lambda().end());
  double hi = *std::max_element(fit_linear.lambda().begin(),
                                fit_linear.lambda().end());
  EXPECT_GT(hi / lo, 5.0) << fit_linear.ToString();
}

// ---------------------------------------------------------------------------
// GmRegularizer: penalty decreases as the mixture adapts to the data.
// ---------------------------------------------------------------------------

TEST(GmRegularizerPropertyTest, AdaptationImprovesPriorFit) {
  Rng rng(17);
  Tensor w({3000});
  for (std::int64_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.NextBernoulli(0.8)
                                  ? rng.NextGaussian(0.0, 0.03)
                                  : rng.NextGaussian(0.0, 0.5));
  }
  GmOptions opts;
  opts.gamma = 0.0005;
  GmRegularizer reg("w", w.size(), opts);
  double before = reg.Penalty(w);  // -log p(w) under the initial mixture
  Tensor grad({3000});
  for (int it = 0; it < 50; ++it) {
    grad.SetZero();
    reg.AccumulateGradient(w, it, 0, 1.0, &grad);
  }
  double after = reg.Penalty(w);
  EXPECT_LT(after, before)
      << "EM should increase the prior's fit to the observed parameters";
}

}  // namespace
}  // namespace gmreg
